(* Random-circuit property testing: generate arbitrary signal graphs,
   then check
   - the optimiser preserves cycle-accurate behaviour,
   - the simulator agrees with a direct functional evaluation for
     combinational circuits,
   - HDL emitters stay structurally sane on arbitrary netlists. *)

open Hwpat_rtl
open Hwpat_rtl.Signal
module Sim_util = Hwpat_test_support.Sim_util

(* The deterministic random circuit builder lives in the formal
   library ({!Hwpat_formal.Netgen}) so the SAT-based proof battery and
   this property suite draw from the same seeded distribution. *)
let build_random_circuit = Hwpat_formal.Netgen.build_random_circuit

let run_sim circuit ~inputs ~seed ~cycles =
  let sim = Cyclesim.create circuit in
  let rng = Random.State.make [| seed * 7919 |] in
  let traces = ref [] in
  for _ = 1 to cycles do
    List.iter
      (fun (name, w) ->
        (* Always draw the value, even for ports the optimiser removed
           as dead, so both runs see identical stimulus streams. *)
        let v = Bits.of_int ~width:w (Random.State.int rng (1 lsl min w 20)) in
        if List.mem_assoc name (Circuit.inputs circuit) then
          Cyclesim.in_port sim name := v)
      inputs;
    Cyclesim.cycle sim;
    let snapshot =
      List.map
        (fun (name, _) -> Bits.to_string !(Cyclesim.out_port sim name))
        (Circuit.outputs circuit)
    in
    traces := snapshot :: !traces
  done;
  List.rev !traces

let test_optimize_equivalence () =
  for seed = 1 to 60 do
    let circuit, inputs = build_random_circuit ~seed in
    let optimized = Optimize.circuit circuit in
    let t_raw = run_sim circuit ~inputs ~seed ~cycles:25 in
    let t_opt = run_sim optimized ~inputs ~seed ~cycles:25 in
    if t_raw <> t_opt then
      Alcotest.failf "seed %d: optimised circuit diverges" seed
  done

let test_optimize_never_grows () =
  for seed = 61 to 100 do
    let circuit, _ = build_random_circuit ~seed in
    let optimized = Optimize.circuit circuit in
    let luts c = (Hwpat_synthesis.Techmap.estimate c).Hwpat_synthesis.Techmap.luts in
    let ffs c = (Hwpat_synthesis.Techmap.estimate c).Hwpat_synthesis.Techmap.ffs in
    if luts optimized > luts circuit then
      Alcotest.failf "seed %d: optimisation grew LUTs (%d -> %d)" seed
        (luts circuit) (luts optimized);
    if ffs optimized > ffs circuit then
      Alcotest.failf "seed %d: optimisation grew FFs" seed
  done

let test_emitters_on_random_circuits () =
  let count_substring needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i acc =
      if i + nl > hl then acc
      else if String.sub hay i nl = needle then go (i + 1) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  in
  for seed = 101 to 130 do
    let circuit, _ = build_random_circuit ~seed in
    let vhdl = Vhdl.to_string circuit in
    if count_substring "process (" vhdl <> count_substring "end process;" vhdl
    then Alcotest.failf "seed %d: unbalanced VHDL processes" seed;
    let verilog = Verilog.to_string circuit in
    if not (count_substring "endmodule" verilog = 1) then
      Alcotest.failf "seed %d: bad Verilog module structure" seed
  done

(* --- Differential testing: reference vs compiled engine ----------------- *)

(* Step the naive reference interpreter and the compiled levelized
   engine through the same circuit in lock-step on identical stimulus,
   asserting identical outputs and register/sync-read state every
   cycle, and identical peeks of every signal at intervals.

   [drive] returns the named assignment it applied this cycle; the
   accumulated trace is replayed through {!Sim_util.replay_both} and
   printed on divergence, so a failure reports the offending stimulus
   rather than just a seed. *)
let lockstep ?(full_peek_every = 16) ~what ~cycles ~drive circuit =
  (* Elaborate and compile once per engine; the lockstep simulators —
     and the divergence replay below — are instances of these shared
     plans, never a recompilation. *)
  let ref_plan = Cyclesim.plan ~engine:Cyclesim.Reference circuit in
  let cmp_plan = Cyclesim.plan ~engine:Cyclesim.Compiled circuit in
  let ref_sim = Cyclesim.of_plan ref_plan in
  let cmp_sim = Cyclesim.of_plan cmp_plan in
  let regs =
    List.filter
      (fun s ->
        match prim s with Reg _ | Mem_read_sync _ -> true | _ -> false)
      (Circuit.signals circuit)
  in
  let all_signals = Circuit.signals circuit in
  let trace = ref [] in
  let fail_with_trace fmt =
    Printf.ksprintf
      (fun msg ->
        let stimulus = Sim_util.trace_to_string (List.rev !trace) in
        let confirmed =
          match
            Sim_util.replay_both ~plans:(ref_plan, cmp_plan) circuit
              (List.rev !trace)
          with
          | Some d ->
            Printf.sprintf
              "replay confirms: output %s diverges at cycle %d (%s vs %s)"
              d.Sim_util.port d.Sim_util.at
              (Bits.to_string d.Sim_util.reference)
              (Bits.to_string d.Sim_util.compiled)
          | None -> "replay of recorded stimulus does not itself diverge"
        in
        Alcotest.failf "%s\nstimulus:\n%s\n%s" msg stimulus confirmed)
      fmt
  in
  for cycle = 1 to cycles do
    trace := drive ref_sim cmp_sim cycle :: !trace;
    Cyclesim.cycle ref_sim;
    Cyclesim.cycle cmp_sim;
    List.iter
      (fun (name, _) ->
        let a = !(Cyclesim.out_port ref_sim name)
        and b = !(Cyclesim.out_port cmp_sim name) in
        if not (Bits.equal a b) then
          fail_with_trace "%s cycle %d: output %s diverges (%s vs %s)" what
            cycle name (Bits.to_string a) (Bits.to_string b))
      (Circuit.outputs circuit);
    List.iter
      (fun r ->
        let a = Cyclesim.peek_state ref_sim r
        and b = Cyclesim.peek_state cmp_sim r in
        if not (Bits.equal a b) then
          fail_with_trace "%s cycle %d: state of %s diverges (%s vs %s)" what
            cycle
            (Format.asprintf "%a" Signal.pp r)
            (Bits.to_string a) (Bits.to_string b))
      regs;
    if cycle mod full_peek_every = 0 then
      List.iter
        (fun s ->
          let a = Cyclesim.peek ref_sim s and b = Cyclesim.peek cmp_sim s in
          if not (Bits.equal a b) then
            fail_with_trace "%s cycle %d: peek of %s diverges (%s vs %s)" what
              cycle
              (Format.asprintf "%a" Signal.pp s)
              (Bits.to_string a) (Bits.to_string b))
        all_signals
  done

let random_driver ~inputs ~seed circuit =
  let rng = Random.State.make [| (seed * 7919) + 13 |] in
  fun ref_sim cmp_sim _cycle ->
    List.filter_map
      (fun (name, w) ->
        let v = Bits.of_int ~width:w (Random.State.int rng (1 lsl min w 20)) in
        if List.mem_assoc name (Circuit.inputs circuit) then begin
          Cyclesim.drive ref_sim name v;
          Cyclesim.drive cmp_sim name v;
          Some (name, v)
        end
        else None)
      inputs

(* The 40 differential circuits are independent: shard them across
   domains (each shard elaborates its own circuit and two sims; the
   seeded builder and drivers are domain-local). A failing shard's
   Alcotest exception propagates deterministically through
   Parallel.run. *)
let test_differential_random_circuits () =
  let seeds = Array.init 40 (fun i -> 161 + i) in
  ignore
    (Hwpat_core.Parallel.run (Array.length seeds) (fun i ->
         let seed = seeds.(i) in
         let circuit, inputs = build_random_circuit ~seed in
         lockstep
           ~what:(Printf.sprintf "seed %d" seed)
           ~cycles:250
           ~drive:(random_driver ~inputs ~seed circuit)
           circuit))

(* The three paper designs, driven with pseudorandom handshake traffic
   for thousands of cycles each — exercises FIFOs, SRAM substrates,
   sync and async memories, and the blur line buffers on both engines. *)
let test_differential_paper_designs () =
  let designs =
    [
      ( "saa2vga 1 (fifo)",
        Hwpat_core.Saa2vga.build ~substrate:Hwpat_core.Saa2vga.Fifo
          ~style:Hwpat_core.Saa2vga.Pattern () );
      ( "saa2vga 2 (sram)",
        Hwpat_core.Saa2vga.build ~substrate:Hwpat_core.Saa2vga.Sram
          ~style:Hwpat_core.Saa2vga.Pattern () );
      ( "blur",
        Hwpat_core.Blur_system.build ~image_width:8 ~max_rows:8
          ~style:Hwpat_core.Blur_system.Pattern () );
    ]
  in
  List.iteri
    (fun i (what, circuit) ->
      let inputs =
        List.map (fun (n, s) -> (n, width s)) (Circuit.inputs circuit)
      in
      lockstep ~what ~cycles:3000
        ~drive:(random_driver ~inputs ~seed:(1000 + i) circuit)
        circuit)
    designs

(* Fault campaigns must classify identically on both engines: same
   outcome for every injected fault, same baseline length. *)
let test_differential_faultsim () =
  let build () =
    Hwpat_core.Saa2vga.build ~substrate:Hwpat_core.Saa2vga.Sram
      ~style:Hwpat_core.Saa2vga.Pattern ()
  in
  let run engine =
    Hwpat_core.Faultsim.run_campaign ~engine ~seed:11 ~faults:12 ~frame_width:6
      ~frame_height:6 ~build ~design:"saa2vga_sram_pattern" ()
  in
  let a = run Cyclesim.Reference and b = run Cyclesim.Compiled in
  Alcotest.(check int)
    "baseline cycles agree" a.Hwpat_core.Faultsim.baseline_cycles
    b.Hwpat_core.Faultsim.baseline_cycles;
  let outcomes s =
    List.map
      (fun r ->
        Hwpat_core.Faultsim.outcome_name r.Hwpat_core.Faultsim.outcome)
      s.Hwpat_core.Faultsim.results
  in
  Alcotest.(check (list string)) "classifications agree" (outcomes a)
    (outcomes b)

(* The bit-parallel batched engine vs the naive interpreter: each
   random circuit runs 64 lanes at once, every lane fed its own random
   stimulus stream, with 64 naive simulations as the per-lane oracle.
   One batch clock advances all lanes (any lane view will do); each
   oracle is clocked individually. *)
let test_differential_batched () =
  let seeds = Array.init 10 (fun i -> 211 + i) in
  ignore
    (Hwpat_core.Parallel.run (Array.length seeds) (fun i ->
         let seed = seeds.(i) in
         let circuit, inputs = build_random_circuit ~seed in
         let lanes = Simbatch.lane_bits in
         let batch = Cyclesim.instantiate_batched (Cyclesim.plan circuit) in
         let views = Array.init lanes (Cyclesim.lane_view batch) in
         let oracles =
           Array.init lanes (fun _ ->
               Cyclesim.create ~engine:Cyclesim.Reference circuit)
         in
         let rngs =
           Array.init lanes (fun l ->
               Random.State.make [| (seed * 7919) + (101 * l) |])
         in
         for cycle = 1 to 40 do
           for l = 0 to lanes - 1 do
             List.iter
               (fun (name, w) ->
                 let v =
                   Bits.of_int ~width:w (Random.State.int rngs.(l) (1 lsl min w 20))
                 in
                 if List.mem_assoc name (Circuit.inputs circuit) then begin
                   Cyclesim.drive views.(l) name v;
                   Cyclesim.drive oracles.(l) name v
                 end)
               inputs
           done;
           Cyclesim.cycle views.(0);
           Array.iter Cyclesim.cycle oracles;
           for l = 0 to lanes - 1 do
             List.iter
               (fun (name, _) ->
                 let got = !(Cyclesim.out_port views.(l) name) in
                 let want = !(Cyclesim.out_port oracles.(l) name) in
                 if not (Bits.equal got want) then
                   Alcotest.failf
                     "seed %d lane %d cycle %d port %s: batched %s, naive %s"
                     seed l cycle name (Bits.to_string got)
                     (Bits.to_string want))
               (Circuit.outputs circuit)
           done
         done))

(* Idempotence: optimising twice equals optimising once (sizes). *)
let test_optimize_idempotent () =
  for seed = 131 to 160 do
    let circuit, _ = build_random_circuit ~seed in
    let once = Optimize.circuit circuit in
    let twice = Optimize.circuit once in
    let stats c = Netlist_stats.of_circuit c in
    let a = stats once and b = stats twice in
    if
      a.Netlist_stats.register_bits <> b.Netlist_stats.register_bits
      || a.Netlist_stats.op2_nodes < b.Netlist_stats.op2_nodes
    then Alcotest.failf "seed %d: second optimisation changed the netlist" seed
  done

let () =
  Alcotest.run "random-circuits"
    [
      ( "properties",
        [
          Alcotest.test_case "optimize preserves behaviour" `Slow
            test_optimize_equivalence;
          Alcotest.test_case "optimize never grows" `Quick
            test_optimize_never_grows;
          Alcotest.test_case "emitters survive anything" `Quick
            test_emitters_on_random_circuits;
          Alcotest.test_case "optimize idempotent" `Quick test_optimize_idempotent;
        ] );
      ( "differential",
        [
          Alcotest.test_case "random circuits: reference = compiled" `Quick
            test_differential_random_circuits;
          Alcotest.test_case "paper designs: reference = compiled" `Quick
            test_differential_paper_designs;
          Alcotest.test_case "faultsim classifications agree" `Quick
            test_differential_faultsim;
          Alcotest.test_case "random circuits x64 lanes: batched = naive"
            `Quick test_differential_batched;
        ] );
    ]
