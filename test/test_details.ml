(* Detail-level regression tests: emitter snapshot stability, timing
   model behaviours, power accounting, and container edge geometries. *)

open Hwpat_rtl
open Hwpat_rtl.Signal
open Hwpat_containers
open Hwpat_test_support.Sim_util

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Emitter snapshot --------------------------------------------------- *)

(* A tiny fixed circuit whose VHDL we pin exactly: catches accidental
   emitter format changes. Node uids vary with global allocation order,
   so normalise them before comparing. *)
let normalise text =
  let buf = Buffer.create (String.length text) in
  let n = String.length text in
  let i = ref 0 in
  while !i < n do
    let c = text.[!i] in
    if c = '_' && !i + 1 < n && text.[!i + 1] >= '0' && text.[!i + 1] <= '9' then begin
      Buffer.add_string buf "_N";
      incr i;
      while !i < n && text.[!i] >= '0' && text.[!i] <= '9' do
        incr i
      done
    end
    else begin
      Buffer.add_char buf c;
      incr i
    end
  done;
  Buffer.contents buf

let snapshot_circuit () =
  let a = input "a" 4 in
  let q = reg ~enable:(input "en" 1) (a +: one 4) -- "acc" in
  Circuit.create_exn ~name:"snap" [ ("q", q) ]

let vhdl_expected =
  normalise
    {|library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;

entity snap is
  port (
    clk : in std_logic;
    a : in std_logic_vector(3 downto 0);
    en : in std_logic_vector(0 downto 0);
    q : out std_logic_vector(3 downto 0)
  );
end snap;

architecture rtl of snap is
  signal s_3 : std_logic_vector(3 downto 0);
  signal acc_4 : std_logic_vector(3 downto 0);
begin
  s_3 <= std_logic_vector(unsigned(a) + unsigned("0001"));

  process (clk)
  begin
    if rising_edge(clk) then
      if en = "1" then
        acc_4 <= s_3;
      end if;
    end if;
  end process;

  q <= acc_4;
end rtl;
|}

let test_vhdl_snapshot () =
  Alcotest.(check string) "vhdl stable" vhdl_expected
    (normalise (Vhdl.to_string (snapshot_circuit ())))

let test_verilog_snapshot () =
  let text = normalise (Verilog.to_string (snapshot_circuit ())) in
  let expected =
    normalise
      {|module snap (clk, a, en, q);
  input clk;
  input [3:0] a;
  input en;
  output [3:0] q;

  wire [3:0] s_3;
  reg [3:0] acc_4;

  assign s_3 = a + 4'b0001;

  always @(posedge clk) begin
    if (en) acc_4 <= s_3;
  end

  assign q = acc_4;
endmodule
|}
  in
  Alcotest.(check string) "verilog stable" expected text

(* --- Timing: carry chains scale with width ------------------------------ *)

let test_timing_carry_scaling () =
  let fmax w =
    let s = input "a" w +: input "b" w in
    (Hwpat_synthesis.Timing.analyze (Circuit.create_exn ~name:"a" [ ("s", s) ]))
      .Hwpat_synthesis.Timing.fmax_mhz
  in
  check_bool "wider adders are slower" true (fmax 64 < fmax 8);
  (* but only via the carry term, so the gap is modest *)
  check_bool "carry cost is incremental" true (fmax 64 > 0.5 *. fmax 8)

let test_timing_wiring_free () =
  let a = input "a" 16 in
  let wrapped =
    concat_msb [ select a ~high:15 ~low:8; select a ~high:7 ~low:0 ]
  in
  let t =
    Hwpat_synthesis.Timing.analyze
      (Circuit.create_exn ~name:"w" [ ("y", wrapped) ])
  in
  check_int "no logic levels through wiring" 0 t.Hwpat_synthesis.Timing.logic_levels

(* --- Power: toggle accounting ------------------------------------------- *)

let test_power_toggle_accounting () =
  (* One register bit flipping every cycle: the register toggles once
     per cycle, plus its inverter input toggles once. *)
  let q = reg_fb ~width:1 (fun q -> ~:q) in
  let c = Circuit.create_exn ~name:"t" [ ("q", q) ] in
  let sim = Cyclesim.create c in
  let m = Hwpat_synthesis.Power.monitor sim in
  for _ = 1 to 41 do
    Cyclesim.cycle sim;
    Hwpat_synthesis.Power.sample m
  done;
  let p = Hwpat_synthesis.Power.estimate m in
  (* q and ~q each flip every cycle => 2 toggles/cycle (wires tracked
     through the feedback add a couple more; accept a small band). *)
  check_bool "toggles in expected band" true
    (p.Hwpat_synthesis.Power.toggles_per_cycle >= 2.0
    && p.Hwpat_synthesis.Power.toggles_per_cycle <= 4.0)

(* --- Containers at awkward geometries ------------------------------------ *)

let test_queue_non_power_of_two_depth () =
  let sim =
    seq_harness ~name:"q6" ~width:8 (fun d -> Queue_c.over_bram ~depth:6 ~width:8 d)
  in
  quiesce sim;
  (* Cycle three times the depth so the compare-wrap pointer logic is
     exercised past the 2^k boundary. *)
  for round = 0 to 2 do
    for v = 0 to 5 do
      ignore (seq_put sim ~width:8 ((round * 16) + v))
    done;
    Cyclesim.settle sim;
    check_int "full at 6" 1 (out_int sim "full");
    for v = 0 to 5 do
      check_int "order" ((round * 16) + v) (fst (seq_get sim))
    done;
    Cyclesim.settle sim;
    check_int "empty" 1 (out_int sim "empty")
  done

let test_assoc_capacity_exhaustion () =
  let d =
    {
      Container_intf.lookup_req = input "lookup_req" 1;
      insert_req = input "insert_req" 1;
      delete_req = input "delete_req" 1;
      key = input "key" 8;
      value_in = input "value_in" 8;
    }
  in
  let a = Assoc_array.over_bram ~slots:4 ~key_width:8 ~value_width:8 d in
  let c =
    Circuit.create_exn ~name:"tiny_assoc"
      [
        ("insert_ack", a.Container_intf.insert_ack);
        ("insert_ok", a.Container_intf.insert_ok);
        ("lookup_ack", a.Container_intf.lookup_ack);
        ("lookup_found", a.Container_intf.lookup_found);
        ("occupancy", a.Container_intf.occupancy);
      ]
  in
  let sim = Cyclesim.create c in
  List.iter
    (fun n -> set sim n ~width:1 0)
    [ "lookup_req"; "insert_req"; "delete_req" ];
  set sim "key" ~width:8 0;
  set sim "value_in" ~width:8 0;
  Cyclesim.cycle sim;
  let insert k =
    set sim "key" ~width:8 k;
    set sim "value_in" ~width:8 k;
    set sim "insert_req" ~width:1 1;
    ignore (cycles_until ~timeout:1000 sim "insert_ack");
    let ok = out_int sim "insert_ok" in
    set sim "insert_req" ~width:1 0;
    Cyclesim.cycle sim;
    ok
  in
  for k = 1 to 4 do
    check_int (Printf.sprintf "insert %d fits" k) 1 (insert k)
  done;
  Cyclesim.settle sim;
  check_int "table full" 4 (out_int sim "occupancy");
  check_int "fifth insert fails" 0 (insert 5);
  (* Updating an existing key still succeeds when full. *)
  check_int "update succeeds when full" 1 (insert 3);
  Cyclesim.settle sim;
  check_int "occupancy unchanged" 4 (out_int sim "occupancy")

(* --- Bits extras ---------------------------------------------------------- *)

let prop name count arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

let bits_props =
  [
    prop "sra equals arithmetic shift of signed value" 300
      QCheck.(pair (int_range 2 29) (int_range 0 31))
      (fun (w, n) ->
        let v = Random.int (1 lsl w) in
        let b = Bits.of_int ~width:w v in
        let signed = Bits.to_signed_int b in
        Bits.to_signed_int (Bits.sra b (min n (w - 1))) = signed asr min n (w - 1));
    prop "to_signed round trips" 300
      QCheck.(pair (int_range 2 30) (int_range 0 1000000))
      (fun (w, v) ->
        let v = v mod (1 lsl w) in
        let b = Bits.of_int ~width:w v in
        Bits.equal b (Bits.of_int ~width:w (Bits.to_signed_int b)));
    prop "mul associative (20-bit window)" 200
      QCheck.(triple (int_bound 1023) (int_bound 1023) (int_bound 1023))
      (fun (a, b, c) ->
        let w = 30 in
        let f = Bits.of_int ~width:w in
        Bits.equal
          (Bits.mul (Bits.mul (f a) (f b)) (f c))
          (Bits.mul (f a) (Bits.mul (f b) (f c))));
  ]

(* --- Output-file discipline --------------------------------------------- *)

let read_back path =
  let ic = open_in_bin path in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  contents

(* Every writer in the library funnels through Util.with_out_file,
   which streams into a temp file and renames over the target only
   after a clean close. A callback that raises must leave the previous
   contents of [path] untouched, clean up the temp file, and let the
   exception reach the caller untouched — a crashed writer never
   publishes a truncated artifact. *)
let test_writer_atomic_on_raise () =
  let path = Filename.temp_file "hwpat_util" ".txt" in
  Util.write_file path "previous";
  let escaped = ref false in
  (try
     Util.with_out_file path (fun oc ->
         output_string oc "partial";
         failwith "writer exploded")
   with Failure msg -> escaped := msg = "writer exploded");
  check_bool "exception propagates" true !escaped;
  check_bool "no orphaned temp file" false (Sys.file_exists (path ^ ".tmp"));
  let contents = read_back path in
  Sys.remove path;
  check_bool "previous contents survive a failed write" true
    (contents = "previous")

let test_write_file_roundtrip () =
  let path = Filename.temp_file "hwpat_util" ".txt" in
  Util.write_file path "hello\n";
  let contents = read_back path in
  Sys.remove path;
  check_bool "roundtrip" true (contents = "hello\n")

let () =
  Alcotest.run "details"
    [
      ( "emitters",
        [
          Alcotest.test_case "vhdl snapshot" `Quick test_vhdl_snapshot;
          Alcotest.test_case "verilog snapshot" `Quick test_verilog_snapshot;
        ] );
      ( "timing",
        [
          Alcotest.test_case "carry scaling" `Quick test_timing_carry_scaling;
          Alcotest.test_case "wiring free" `Quick test_timing_wiring_free;
        ] );
      ("power", [ Alcotest.test_case "toggle accounting" `Quick test_power_toggle_accounting ]);
      ( "geometries",
        [
          Alcotest.test_case "queue depth 6" `Quick test_queue_non_power_of_two_depth;
          Alcotest.test_case "assoc exhaustion" `Quick test_assoc_capacity_exhaustion;
        ] );
      ("bits properties", bits_props);
      ( "writers",
        [
          Alcotest.test_case "atomic on raise" `Quick test_writer_atomic_on_raise;
          Alcotest.test_case "write_file roundtrip" `Quick test_write_file_roundtrip;
        ] );
    ]
