(* The supervised execution layer: retry/backoff of transient
   failures, watchdog timeouts, fail-fast on fatal errors,
   deterministic outcomes across job counts, and the crash-safe
   checkpoint journal (torn final lines, resume skipping, config
   binding). *)

open Hwpat_core

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* Retries are deterministic: a shard that succeeds on its third
   attempt comes back [Done] under a 3-retry policy, and the retry
   count lands on the metrics. *)
let test_retry_until_success () =
  let policy = { Supervise.default_policy with retries = 3; backoff_s = 0.0 } in
  let metrics = Hwpat_obs.Metrics.create () in
  let outcomes =
    Supervise.run_shards ~jobs:1 ~policy ~metrics
      ~key:(fun i -> string_of_int i)
      1
      (fun ctx _ ->
        if Supervise.attempt ctx < 3 then
          raise (Supervise.Transient "flaky dependency");
        "ok")
  in
  (match outcomes.(0) with
  | Supervise.Done v -> check_string "value" "ok" v
  | Supervise.Unfinished { reason; _ } -> Alcotest.fail ("unfinished: " ^ reason));
  check_int "two retries recorded" 2
    (Hwpat_obs.Metrics.counter_value metrics "supervise.retries")

let test_retries_exhausted () =
  let policy = { Supervise.default_policy with retries = 2; backoff_s = 0.0 } in
  let metrics = Hwpat_obs.Metrics.create () in
  let calls = ref 0 in
  let outcomes =
    Supervise.run_shards ~jobs:1 ~policy ~metrics
      ~key:(fun i -> string_of_int i)
      1
      (fun _ _ ->
        incr calls;
        raise (Supervise.Transient "always down"))
  in
  (match outcomes.(0) with
  | Supervise.Done _ -> Alcotest.fail "should not succeed"
  | Supervise.Unfinished { reason; attempts } ->
    check_string "reason" "transient: always down" reason;
    check_int "attempts = 1 + retries" 3 attempts);
  check_int "every attempt ran" 3 !calls;
  check_int "unfinished counted" 1
    (Hwpat_obs.Metrics.counter_value metrics "supervise.unfinished")

(* The watchdog: a shard that never finishes is cut off at its
   deadline and reported, not hung.  [check] polls the clock, so the
   shard just has to call it from its inner loop. *)
let test_watchdog_timeout () =
  let policy =
    { Supervise.retries = 1; backoff_s = 0.0; shard_timeout_s = 0.02 }
  in
  let metrics = Hwpat_obs.Metrics.create () in
  let outcomes =
    Supervise.run_shards ~jobs:1 ~policy ~metrics
      ~key:(fun i -> string_of_int i)
      1
      (fun ctx _ ->
        while true do
          Supervise.check ctx
        done)
  in
  (match outcomes.(0) with
  | Supervise.Done _ -> Alcotest.fail "an infinite loop cannot finish"
  | Supervise.Unfinished { reason; attempts } ->
    check_bool "reason names the timeout" true
      (String.length reason >= 7 && String.sub reason 0 7 = "timeout");
    check_int "retried once" 2 attempts);
  check_int "both attempts timed out" 2
    (Hwpat_obs.Metrics.counter_value metrics "supervise.timeouts")

(* Outcome arrays are identical whatever the job count: crashes and
   give-ups land on the same shards with the same reasons. *)
let outcome_fingerprint outcomes =
  Array.to_list
    (Array.map
       (function
         | Supervise.Done v -> Printf.sprintf "done:%d" v
         | Supervise.Unfinished { reason; attempts } ->
           Printf.sprintf "unfinished:%s:%d" reason attempts)
       outcomes)

let test_jobs_deterministic () =
  let policy = { Supervise.default_policy with retries = 1; backoff_s = 0.0 } in
  let run jobs =
    Supervise.run_shards ~jobs ~policy
      ~key:(fun i -> string_of_int i)
      12
      (fun _ i ->
        if i mod 3 = 0 then
          raise (Supervise.Transient (Printf.sprintf "shard %d down" i));
        i * i)
  in
  Alcotest.(check (list string))
    "jobs:1 = jobs:4"
    (outcome_fingerprint (run 1))
    (outcome_fingerprint (run 4))

(* Fatal (non-transient) errors are not retried or absorbed: the
   lowest failing shard's exception escapes, identically at any job
   count. *)
let test_fatal_fail_fast () =
  let raised jobs =
    try
      ignore
        (Supervise.run_shards ~jobs
           ~key:(fun i -> string_of_int i)
           10
           (fun _ i ->
             if i = 4 || i = 8 then failwith (Printf.sprintf "fatal %d" i);
             i));
      "no exception"
    with Failure msg -> msg
  in
  check_string "serial" "fatal 4" (raised 1);
  check_string "parallel" "fatal 4" (raised 4)

let test_cancelled_before_start () =
  let cancel = Parallel.token () in
  Parallel.cancel cancel;
  let metrics = Hwpat_obs.Metrics.create () in
  let outcomes =
    Supervise.run_shards ~jobs:2 ~cancel ~metrics
      ~key:(fun i -> string_of_int i)
      4
      (fun _ i -> i)
  in
  Array.iter
    (function
      | Supervise.Done _ -> Alcotest.fail "nothing should run after cancel"
      | Supervise.Unfinished { reason; attempts } ->
        check_string "reason" "cancelled" reason;
        check_int "never attempted" 0 attempts)
    outcomes;
  check_int "all four counted" 4
    (Hwpat_obs.Metrics.counter_value metrics "supervise.cancelled")

(* --- the checkpoint journal ---------------------------------------------- *)

let with_temp_path f =
  let path = Filename.temp_file "hwpat_test_journal" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let encode = string_of_int
let decode _ data = int_of_string_opt data

(* Resume replays journaled shards without re-running them, and the
   merged outcomes equal an uninterrupted run's. *)
let test_resume_equals_uninterrupted () =
  with_temp_path @@ fun path ->
  let key i = Printf.sprintf "shard-%d" i in
  let n = 10 in
  let full _ i = 100 + i in
  let uninterrupted =
    let j = Journal.start ~path ~config:"test v1" ~resume:false in
    Fun.protect ~finally:(fun () -> Journal.close j) @@ fun () ->
    Supervise.run_shards ~jobs:1 ~journal:j ~key ~encode ~decode n full
  in
  (* Second journal: pretend the first run died after five shards by
     rebuilding a journal holding only shards 0-4, with the final line
     torn mid-record as a SIGKILL would leave it. *)
  with_temp_path @@ fun partial_path ->
  let lines =
    let ic = open_in path in
    Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
    let acc = ref [] in
    (try
       while true do
         acc := input_line ic :: !acc
       done
     with End_of_file -> ());
    List.rev !acc
  in
  check_int "journal = header + one line per shard" (n + 1)
    (List.length lines);
  let oc = open_out partial_path in
  List.iteri
    (fun i line ->
      if i <= 5 then (output_string oc line; output_char oc '\n'))
    lines;
  output_string oc "{\"key\": \"shard-6\", \"da";
  close_out oc;
  let ran = ref [] in
  let resumed =
    let j = Journal.start ~path:partial_path ~config:"test v1" ~resume:true in
    Fun.protect ~finally:(fun () -> Journal.close j) @@ fun () ->
    check_int "five surviving records loaded" 5 (Journal.resumed j);
    Supervise.run_shards ~jobs:1 ~journal:j ~key ~encode ~decode n
      (fun ctx i ->
        ran := i :: !ran;
        full ctx i)
  in
  Alcotest.(check (list string))
    "resumed outcomes equal uninterrupted"
    (outcome_fingerprint uninterrupted)
    (outcome_fingerprint resumed);
  Alcotest.(check (list int))
    "only the unjournaled shards re-ran" [ 5; 6; 7; 8; 9 ]
    (List.sort compare !ran)

(* A journal written under one campaign configuration refuses to
   resume another. *)
let test_config_mismatch () =
  with_temp_path @@ fun path ->
  let j = Journal.start ~path ~config:"faultsim seed=1" ~resume:false in
  Journal.record j ~key:"k" "v";
  Journal.close j;
  match Journal.start ~path ~config:"faultsim seed=2" ~resume:true with
  | _ -> Alcotest.fail "config mismatch must raise"
  | exception Journal.Config_mismatch { expected; found; _ } ->
    check_string "expected" "faultsim seed=2" expected;
    check_string "found" "faultsim seed=1" found

(* Without --resume an existing journal is overwritten, not
   validated: a fresh run under a new config starts clean. *)
let test_fresh_start_overwrites () =
  with_temp_path @@ fun path ->
  let j = Journal.start ~path ~config:"old config" ~resume:false in
  Journal.record j ~key:"stale" "1";
  Journal.close j;
  let j = Journal.start ~path ~config:"new config" ~resume:false in
  Fun.protect ~finally:(fun () -> Journal.close j) @@ fun () ->
  check_int "no stale records" 0 (Journal.completed j);
  check_bool "stale key gone" true (Journal.find j "stale" = None)

(* A non-journal file is rejected rather than silently rewritten. *)
let test_foreign_file_rejected () =
  with_temp_path @@ fun path ->
  let oc = open_out path in
  output_string oc "this is not a checkpoint\n";
  close_out oc;
  match Journal.start ~path ~config:"c" ~resume:true with
  | _ -> Alcotest.fail "foreign file must be rejected"
  | exception Failure msg ->
    check_bool "diagnostic names the file" true
      (String.length msg > 0 && msg <> "")

(* Decode rejecting a payload (corrupt or from an older encoding)
   must re-run the shard, not crash or trust the bytes. *)
let test_corrupt_payload_reruns () =
  with_temp_path @@ fun path ->
  let j = Journal.start ~path ~config:"c" ~resume:false in
  Journal.record j ~key:"shard-0" "not an int";
  Journal.close j;
  let ran = ref false in
  let outcomes =
    let j = Journal.start ~path ~config:"c" ~resume:true in
    Fun.protect ~finally:(fun () -> Journal.close j) @@ fun () ->
    Supervise.run_shards ~jobs:1 ~journal:j
      ~key:(fun i -> Printf.sprintf "shard-%d" i)
      ~encode ~decode 1
      (fun _ i ->
        ran := true;
        i + 7)
  in
  check_bool "shard re-ran" true !ran;
  match outcomes.(0) with
  | Supervise.Done v -> check_int "fresh value" 7 v
  | Supervise.Unfinished _ -> Alcotest.fail "should have completed"

let () =
  Alcotest.run "supervise"
    [
      ( "retry",
        [
          Alcotest.test_case "succeeds after transient failures" `Quick
            test_retry_until_success;
          Alcotest.test_case "exhausted retries report unfinished" `Quick
            test_retries_exhausted;
          Alcotest.test_case "watchdog cuts off a hung shard" `Quick
            test_watchdog_timeout;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "outcomes identical jobs:1 vs jobs:4" `Quick
            test_jobs_deterministic;
          Alcotest.test_case "fatal errors fail fast, lowest shard" `Quick
            test_fatal_fail_fast;
          Alcotest.test_case "cancellation marks shards unfinished" `Quick
            test_cancelled_before_start;
        ] );
      ( "journal",
        [
          Alcotest.test_case "torn-journal resume equals uninterrupted" `Quick
            test_resume_equals_uninterrupted;
          Alcotest.test_case "config mismatch rejected" `Quick
            test_config_mismatch;
          Alcotest.test_case "fresh start overwrites" `Quick
            test_fresh_start_overwrites;
          Alcotest.test_case "foreign file rejected" `Quick
            test_foreign_file_rejected;
          Alcotest.test_case "corrupt payload re-runs the shard" `Quick
            test_corrupt_payload_reruns;
        ] );
    ]
