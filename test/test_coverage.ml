(* Cross-cutting coverage: container/target combinations and scaling
   behaviours not exercised by the main suites. *)

open Hwpat_rtl
open Hwpat_rtl.Signal
open Hwpat_containers
open Hwpat_iterators
open Hwpat_algorithms
open Hwpat_test_support.Sim_util

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Assoc array over external SRAM ------------------------------------ *)

let test_assoc_over_sram () =
  let d =
    {
      Container_intf.lookup_req = input "lookup_req" 1;
      insert_req = input "insert_req" 1;
      delete_req = input "delete_req" 1;
      key = input "key" 8;
      value_in = input "value_in" 8;
    }
  in
  let a =
    Assoc_array.over_sram ~slots:16 ~key_width:8 ~value_width:8 ~wait_states:1 d
  in
  let c =
    Circuit.create_exn ~name:"assoc_sram"
      [
        ("lookup_ack", a.Container_intf.lookup_ack);
        ("lookup_found", a.Container_intf.lookup_found);
        ("lookup_data", a.Container_intf.lookup_data);
        ("insert_ack", a.Container_intf.insert_ack);
        ("insert_ok", a.Container_intf.insert_ok);
        ("delete_ack", a.Container_intf.delete_ack);
        ("delete_found", a.Container_intf.delete_found);
      ]
  in
  let sim = Cyclesim.create c in
  List.iter
    (fun n -> set sim n ~width:1 0)
    [ "lookup_req"; "insert_req"; "delete_req" ];
  set sim "key" ~width:8 0;
  set sim "value_in" ~width:8 0;
  Cyclesim.cycle sim;
  let op req ack ~key ?(value = 0) () =
    set sim "key" ~width:8 key;
    set sim "value_in" ~width:8 value;
    set sim req ~width:1 1;
    ignore (cycles_until ~timeout:4000 sim ack);
    let r =
      (out_int sim "lookup_found", out_int sim "lookup_data",
       out_int sim "insert_ok", out_int sim "delete_found")
    in
    set sim req ~width:1 0;
    Cyclesim.cycle sim;
    r
  in
  let _, _, ok, _ = op "insert_req" "insert_ack" ~key:99 ~value:55 () in
  check_int "insert over sram" 1 ok;
  let found, data, _, _ = op "lookup_req" "lookup_ack" ~key:99 () in
  check_bool "lookup over sram" true ((found, data) = (1, 55));
  let _, _, _, dfound = op "delete_req" "delete_ack" ~key:99 () in
  check_int "delete over sram" 1 dfound;
  (* No block RAM consumed: everything lives off-chip. *)
  check_int "no brams" 0 (Hwpat_synthesis.Techmap.estimate c).Hwpat_synthesis.Techmap.brams

(* --- Multi-word iterator over a wait-stated SRAM container ------------- *)

let test_multi_word_over_sram () =
  (* 24-bit elements through an 8-bit SRAM-backed queue with 2 wait
     states: width adaptation stacked on a slow, handshaked target. *)
  let in_driver =
    {
      (Iterator_intf.driver_stub ~data_width:24 ~pos_width:1) with
      Iterator_intf.read_req = input "read_req" 1;
      inc_req = input "inc_req" 1;
    }
  in
  let out_driver =
    {
      (Iterator_intf.driver_stub ~data_width:24 ~pos_width:1) with
      Iterator_intf.write_req = input "write_req" 1;
      inc_req = input "winc_req" 1;
      write_data = input "write_data" 24;
    }
  in
  let get_req_w = wire 1 and put_req_w = wire 1 and put_data_w = wire 8 in
  let q =
    Queue_c.over_sram ~depth:32 ~width:8 ~wait_states:2
      {
        Container_intf.get_req = get_req_w;
        put_req = put_req_w;
        put_data = put_data_w;
      }
  in
  let out_it, () =
    Multi_word_iterator.output ~elem_width:24 ~bus_width:8
      ~build:(fun ~put_req ~put_data ->
        put_req_w <== put_req;
        put_data_w <== put_data;
        (q, ()))
      out_driver
  in
  let in_it, () =
    Multi_word_iterator.input ~elem_width:24 ~bus_width:8
      ~build:(fun ~get_req ->
        get_req_w <== get_req;
        (q, ()))
      in_driver
  in
  let c =
    Circuit.create_exn ~name:"mw_sram"
      [
        ("read_ack", in_it.Iterator_intf.read_ack);
        ("read_data", in_it.Iterator_intf.read_data);
        ("write_ack", out_it.Iterator_intf.write_ack);
      ]
  in
  let sim = Cyclesim.create c in
  List.iter
    (fun n -> set sim n ~width:1 0)
    [ "read_req"; "inc_req"; "write_req"; "winc_req" ];
  Cyclesim.in_port sim "write_data" := Bits.zero 24;
  Cyclesim.cycle sim;
  let values = [ 0xC0FFEE; 0x123456; 0xFF00AA ] in
  List.iter
    (fun v ->
      Cyclesim.in_port sim "write_data" := Bits.of_int ~width:24 v;
      set sim "write_req" ~width:1 1;
      set sim "winc_req" ~width:1 1;
      ignore (cycles_until ~timeout:4000 sim "write_ack");
      set sim "write_req" ~width:1 0;
      set sim "winc_req" ~width:1 0;
      Cyclesim.cycle sim)
    values;
  let got =
    List.map
      (fun _ ->
        set sim "read_req" ~width:1 1;
        set sim "inc_req" ~width:1 1;
        ignore (cycles_until ~timeout:4000 sim "read_ack");
        let v = Bits.to_int !(Cyclesim.out_port sim "read_data") in
        set sim "read_req" ~width:1 0;
        set sim "inc_req" ~width:1 0;
        Cyclesim.cycle sim;
        v)
      values
  in
  Alcotest.(check (list int)) "round trip over slow SRAM" values got

(* --- Stream reversal through a stack ------------------------------------ *)

(* The copy algorithm is order-agnostic: pointing its iterators at a
   stack container reverses the stream — container semantics compose
   with algorithms exactly as in the STL. *)
let test_reverse_via_stack () =
  (* Gate the copy until the stack holds all five values; otherwise it
     would start popping during the fill and no reversal happens. *)
  let copy = Copy.create ~enable:(input "start" 1) ~limit:5 ~width:8 () in
  let src_it, put_ack =
    Seq_iterator.connect_input
      ~build:(fun ~get_req ->
        let s =
          Stack_c.over_lifo ~depth:16 ~width:8
            {
              Container_intf.get_req;
              put_req = input "put_req" 1;
              put_data = input "put_data" 8;
            }
        in
        (s, s.Container_intf.put_ack))
      copy.Transform.src_driver
  in
  let dst =
    Queue_c.over_fifo ~depth:16 ~width:8
      {
        Container_intf.get_req = input "get_req" 1;
        put_req = Seq_iterator.fused_put_req copy.Transform.dst_driver;
        put_data = copy.Transform.dst_driver.Iterator_intf.write_data;
      }
  in
  let dst_it = Seq_iterator.output dst copy.Transform.dst_driver in
  copy.Transform.connect ~src:src_it ~dst:dst_it;
  let c =
    Circuit.create_exn ~name:"reverse"
      [
        ("put_ack", put_ack);
        ("get_ack", dst.Container_intf.get_ack);
        ("get_data", dst.Container_intf.get_data);
        ("running", copy.Transform.running);
      ]
  in
  let sim = Cyclesim.create c in
  set sim "put_req" ~width:1 0;
  set sim "get_req" ~width:1 0;
  set sim "put_data" ~width:8 0;
  set sim "start" ~width:1 0;
  Cyclesim.cycle sim;
  List.iter (fun v -> ignore (seq_put sim ~width:8 v)) [ 1; 2; 3; 4; 5 ];
  set sim "start" ~width:1 1;
  let rec wait_halt n =
    if n > 2000 then Alcotest.fail "copy never halted";
    Cyclesim.cycle sim;
    if out_int sim "running" = 1 then wait_halt (n + 1)
  in
  wait_halt 0;
  let got = List.init 5 (fun _ -> fst (seq_get sim)) in
  Alcotest.(check (list int)) "reversed" [ 5; 4; 3; 2; 1 ] got

(* --- Blur scaling to real video line widths ----------------------------- *)

let test_blur_scales_to_video_lines () =
  (* At the paper's 640-pixel lines the line buffers outgrow single
     block RAMs; area must grow accordingly (EXPERIMENTS.md's claim). *)
  let small =
    Hwpat_core.Blur_system.build ~image_width:32 ~max_rows:32 ~style:Hwpat_core.Blur_system.Pattern ()
  in
  let vga =
    Hwpat_core.Blur_system.build ~image_width:640 ~max_rows:480 ~style:Hwpat_core.Blur_system.Pattern ()
  in
  let est c = Hwpat_synthesis.Techmap.estimate c in
  let s = est small and v = est vga in
  check_bool "more brams at 640" true
    (v.Hwpat_synthesis.Techmap.brams > s.Hwpat_synthesis.Techmap.brams);
  check_bool "line buffers dominate"
    true
    (v.Hwpat_synthesis.Techmap.brams >= 4)

(* --- Run-length encoder -------------------------------------------------- *)

let rle_harness ~count =
  let rle = Rle.create ~width:8 ~count () in
  let src_it, put_ack =
    Seq_iterator.connect_input
      ~build:(fun ~get_req ->
        let q =
          Queue_c.over_fifo ~depth:64 ~width:8
            {
              Container_intf.get_req;
              put_req = input "put_req" 1;
              put_data = input "put_data" 8;
            }
        in
        (q, q.Container_intf.put_ack))
      rle.Rle.src_driver
  in
  let dst =
    Queue_c.over_fifo ~depth:64 ~width:16
      {
        Container_intf.get_req = input "get_req" 1;
        put_req = Seq_iterator.fused_put_req rle.Rle.dst_driver;
        put_data = rle.Rle.dst_driver.Iterator_intf.write_data;
      }
  in
  let dst_it = Seq_iterator.output dst rle.Rle.dst_driver in
  rle.Rle.connect ~src:src_it ~dst:dst_it;
  let c =
    Circuit.create_exn ~name:"rle_harness"
      [
        ("put_ack", put_ack);
        ("get_ack", dst.Container_intf.get_ack);
        ("get_data", dst.Container_intf.get_data);
        ("done", rle.Rle.done_);
        ("pairs", rle.Rle.pairs);
      ]
  in
  Cyclesim.create c

let run_rle data =
  let sim = rle_harness ~count:(List.length data) in
  set sim "put_req" ~width:1 0;
  set sim "get_req" ~width:1 0;
  set sim "put_data" ~width:8 0;
  Cyclesim.cycle sim;
  List.iter (fun v -> ignore (seq_put sim ~width:8 v)) data;
  ignore (cycles_until ~timeout:8000 sim "done");
  Cyclesim.settle sim;
  let n_pairs = out_int sim "pairs" in
  List.init n_pairs (fun _ ->
      let packed, _ = seq_get sim in
      (packed lsr 8, packed land 255))

let test_rle_basic () =
  Alcotest.(check (list (pair int int)))
    "runs" [ (3, 7); (1, 2); (2, 7) ]
    (run_rle [ 7; 7; 7; 2; 7; 7 ]);
  Alcotest.(check (list (pair int int))) "single" [ (1, 5) ] (run_rle [ 5 ]);
  Alcotest.(check (list (pair int int)))
    "all distinct"
    [ (1, 1); (1, 2); (1, 3) ]
    (run_rle [ 1; 2; 3 ]);
  Alcotest.(check (list (pair int int))) "all same" [ (4, 9) ] (run_rle [ 9; 9; 9; 9 ])

let test_rle_vs_reference_random () =
  Random.init 12345;
  for _ = 1 to 8 do
    (* Skewed values make real runs likely. *)
    let data = List.init (5 + Random.int 30) (fun _ -> Random.int 3) in
    let expected = Rle.reference ~width:8 data in
    let got = run_rle data in
    if got <> expected then
      Alcotest.failf "rle mismatch on %s"
        (String.concat "," (List.map string_of_int data));
    (* Decoding recovers the input exactly. *)
    let decoded =
      List.concat_map (fun (run, v) -> List.init run (fun _ -> v)) got
    in
    Alcotest.(check (list int)) "lossless" data decoded
  done

(* --- Random op sequences against the model, random seeds ---------------- *)

let prop name count arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

(* Drive a queue-over-bram with an arbitrary op list and mirror it in
   OCaml's Queue. One shared harness per property invocation would leak
   state between cases, so build per case (small depth keeps it fast). *)
let queue_props =
  [
    prop "queue/bram equals model on arbitrary op sequences" 12
      QCheck.(list_of_size Gen.(int_range 1 40) (int_bound 511))
      (fun ops ->
        let sim =
          seq_harness ~name:"prop_q" ~width:8 (fun d ->
              Queue_c.over_bram ~depth:4 ~width:8 d)
        in
        quiesce sim;
        let model = Queue.create () in
        List.for_all
          (fun op ->
            if op land 1 = 0 then begin
              let v = (op lsr 1) land 255 in
              if Queue.length model < 4 then begin
                ignore (seq_put sim ~width:8 v);
                Queue.push v model
              end;
              true
            end
            else if Queue.length model > 0 then
              fst (seq_get sim) = Queue.pop model
            else true)
          ops);
  ]

let () =
  Alcotest.run "coverage"
    [
      ( "targets",
        [
          Alcotest.test_case "assoc over sram" `Quick test_assoc_over_sram;
          Alcotest.test_case "multi-word over slow sram" `Quick
            test_multi_word_over_sram;
        ] );
      ( "composition",
        [
          Alcotest.test_case "reverse via stack" `Quick test_reverse_via_stack;
          Alcotest.test_case "blur scales to 640" `Quick
            test_blur_scales_to_video_lines;
        ] );
      ( "rle",
        [
          Alcotest.test_case "basic runs" `Quick test_rle_basic;
          Alcotest.test_case "random vs reference + lossless" `Quick
            test_rle_vs_reference_random;
        ] );
      ("model properties", queue_props);
    ]
