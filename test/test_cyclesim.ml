open Hwpat_rtl
open Hwpat_rtl.Signal

let check_int = Alcotest.(check int)

let out_int sim name = Bits.to_int !(Cyclesim.out_port sim name)
let set sim name ~width v = Cyclesim.in_port sim name := Bits.of_int ~width v

let test_combinational () =
  let a = input "a" 8 and b = input "b" 8 in
  let c =
    Circuit.create_exn ~name:"alu"
      [
        ("sum", a +: b);
        ("diff", a -: b);
        ("prod", a *: b);
        ("conj", a &: b);
        ("disj", a |: b);
        ("xor", a ^: b);
        ("eq", a ==: b);
        ("lt", a <: b);
        ("inv", ~:a);
      ]
  in
  let sim = Cyclesim.create c in
  set sim "a" ~width:8 200;
  set sim "b" ~width:8 100;
  Cyclesim.cycle sim;
  check_int "sum" ((200 + 100) land 255) (out_int sim "sum");
  check_int "diff" 100 (out_int sim "diff");
  check_int "prod" (200 * 100 land 255) (out_int sim "prod");
  check_int "conj" (200 land 100) (out_int sim "conj");
  check_int "disj" (200 lor 100) (out_int sim "disj");
  check_int "xor" (200 lxor 100) (out_int sim "xor");
  check_int "eq" 0 (out_int sim "eq");
  check_int "lt" 0 (out_int sim "lt");
  check_int "inv" (lnot 200 land 255) (out_int sim "inv");
  set sim "b" ~width:8 200;
  Cyclesim.cycle sim;
  check_int "eq after change" 1 (out_int sim "eq")

let test_mux () =
  let s = input "s" 2 in
  let cases = [ of_int ~width:8 10; of_int ~width:8 20; of_int ~width:8 30 ] in
  let c = Circuit.create_exn ~name:"mux" [ ("y", mux s cases) ] in
  let sim = Cyclesim.create c in
  let try_sel v expect =
    set sim "s" ~width:2 v;
    Cyclesim.cycle sim;
    check_int (Printf.sprintf "sel=%d" v) expect (out_int sim "y")
  in
  try_sel 0 10;
  try_sel 1 20;
  try_sel 2 30;
  (* Out of range repeats the last case. *)
  try_sel 3 30

let test_counter () =
  let counter =
    reg_fb ~width:8 ~clear:(input "clr" 1) ~enable:(input "en" 1) (fun q ->
        q +: one 8)
  in
  let c = Circuit.create_exn ~name:"counter" [ ("q", counter) ] in
  let sim = Cyclesim.create c in
  set sim "clr" ~width:1 0;
  set sim "en" ~width:1 1;
  for _ = 1 to 5 do
    Cyclesim.cycle sim
  done;
  (* Output is the pre-edge value: after 5 cycles the output observed on
     the 5th call was 4. Settle to see the committed value. *)
  Cyclesim.settle sim;
  check_int "counted to 5" 5 (out_int sim "q");
  set sim "en" ~width:1 0;
  Cyclesim.cycle sim;
  Cyclesim.settle sim;
  check_int "hold when disabled" 5 (out_int sim "q");
  set sim "clr" ~width:1 1;
  Cyclesim.cycle sim;
  Cyclesim.settle sim;
  check_int "clear wins" 0 (out_int sim "q")

let test_reg_init () =
  let q = reg ~init:(Bits.of_int ~width:8 42) (input "d" 8) in
  let c = Circuit.create_exn ~name:"init" [ ("q", q) ] in
  let sim = Cyclesim.create c in
  set sim "d" ~width:8 7;
  Cyclesim.settle sim;
  check_int "init value" 42 (out_int sim "q");
  Cyclesim.cycle sim;
  Cyclesim.settle sim;
  check_int "loaded" 7 (out_int sim "q");
  Cyclesim.reset sim;
  check_int "reset restores init" 42 (out_int sim "q")

let test_memory_async () =
  let m = create_memory ~size:16 ~width:8 () in
  mem_write_port m ~enable:(input "we" 1) ~addr:(input "wa" 4) ~data:(input "wd" 8);
  let rd = mem_read_async m ~addr:(input "ra" 4) in
  let c = Circuit.create_exn ~name:"ram" [ ("rd", rd) ] in
  let sim = Cyclesim.create c in
  set sim "we" ~width:1 1;
  set sim "wa" ~width:4 3;
  set sim "wd" ~width:8 99;
  set sim "ra" ~width:4 3;
  Cyclesim.cycle sim;
  (* Write commits at the edge; during the same cycle the old value is
     read (read-before-write). *)
  check_int "read old value during write" 0 (out_int sim "rd");
  set sim "we" ~width:1 0;
  Cyclesim.cycle sim;
  check_int "read new value" 99 (out_int sim "rd")

let test_memory_sync () =
  let m = create_memory ~size:16 ~width:8 () in
  mem_write_port m ~enable:(input "we" 1) ~addr:(input "wa" 4) ~data:(input "wd" 8);
  let rd = mem_read_sync m ~addr:(input "ra" 4) () in
  let c = Circuit.create_exn ~name:"bram" [ ("rd", rd) ] in
  let sim = Cyclesim.create c in
  set sim "we" ~width:1 1;
  set sim "wa" ~width:4 5;
  set sim "wd" ~width:8 77;
  set sim "ra" ~width:4 5;
  Cyclesim.cycle sim;
  set sim "we" ~width:1 0;
  (* The sync read registered the pre-write value (read-first). *)
  Cyclesim.settle sim;
  check_int "sync read lags" 0 (out_int sim "rd");
  Cyclesim.cycle sim;
  Cyclesim.settle sim;
  check_int "sync read returns written" 77 (out_int sim "rd")

let test_shift_register () =
  let d = input "d" 1 in
  let s1 = reg d in
  let s2 = reg s1 in
  let s3 = reg s2 in
  let c = Circuit.create_exn ~name:"shift" [ ("q", s3) ] in
  let sim = Cyclesim.create c in
  let feed bits =
    List.map
      (fun b ->
        set sim "d" ~width:1 b;
        Cyclesim.cycle sim;
        Cyclesim.settle sim;
        out_int sim "q")
      bits
  in
  let outs = feed [ 1; 0; 1; 1; 0; 0 ] in
  Alcotest.(check (list int)) "delayed by 3" [ 0; 0; 1; 0; 1; 1 ] outs

let test_peek_and_vcd () =
  let a = input "a" 4 in
  let doubled = (a +: a) -- "doubled" in
  let c = Circuit.create_exn ~name:"peek" [ ("y", doubled) ] in
  let sim = Cyclesim.create c in
  let vcd = Vcd.create sim in
  set sim "a" ~width:4 3;
  Cyclesim.cycle sim;
  Vcd.sample vcd;
  check_int "peek" 6 (Bits.to_int (Cyclesim.peek sim doubled));
  set sim "a" ~width:4 5;
  Cyclesim.cycle sim;
  Vcd.sample vcd;
  let text = Vcd.to_string vcd in
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "vcd has var" true (contains "doubled" text);
  Alcotest.(check bool) "vcd has change" true (contains "b1010" text)

let test_vcd_structure () =
  (* The dump must declare every tracked var once, open with a header,
     and emit strictly increasing timestamps. *)
  let a = input "a" 4 in
  let q = reg a -- "q_reg" in
  let c = Circuit.create_exn ~name:"vcd" [ ("q", q) ] in
  let sim = Cyclesim.create c in
  let vcd = Vcd.create sim in
  for i = 1 to 5 do
    set sim "a" ~width:4 i;
    Cyclesim.cycle sim;
    Vcd.sample vcd
  done;
  let text = Vcd.to_string vcd in
  let lines = String.split_on_char '\n' text in
  let timestamps =
    List.filter_map
      (fun l ->
        if String.length l > 1 && l.[0] = '#' then
          int_of_string_opt (String.sub l 1 (String.length l - 1))
        else None)
      lines
  in
  check_int "five samples" 5 (List.length timestamps);
  Alcotest.(check (list int)) "monotonic" [ 0; 1; 2; 3; 4 ] timestamps;
  let count needle =
    List.length
      (List.filter
         (fun l ->
           String.length l >= String.length needle
           && String.sub l 0 (String.length needle) = needle)
         lines)
  in
  check_int "one enddefinitions" 1 (count "$enddefinitions");
  Alcotest.(check bool) "vars declared" true (count "$var wire" >= 2)

(* Regression: the dump must be valid VCD — a $dumpvars initial-value
   block right after the header, no #time markers for cycles where
   nothing changed, and identifier-safe reference names. *)
let test_vcd_validity () =
  let a = input "a" 1 in
  (* A name full of characters VCD viewers reject. *)
  let odd = (~:a) -- "3 bad:name!" in
  let c = Circuit.create_exn ~name:"vcd v" [ ("y", odd) ] in
  let sim = Cyclesim.create c in
  let vcd = Vcd.create sim in
  set sim "a" ~width:1 0;
  Cyclesim.cycle sim;
  Vcd.sample vcd;
  (* Three cycles with the input held: no changes, so no timestamps. *)
  for _ = 1 to 3 do
    Cyclesim.cycle sim;
    Vcd.sample vcd
  done;
  set sim "a" ~width:1 1;
  Cyclesim.cycle sim;
  Vcd.sample vcd;
  let text = Vcd.to_string vcd in
  let lines = String.split_on_char '\n' text in
  let starts p l =
    String.length l >= String.length p && String.sub l 0 (String.length p) = p
  in
  let index_of p =
    let rec go i = function
      | [] -> -1
      | l :: rest -> if starts p l then i else go (i + 1) rest
    in
    go 0 lines
  in
  (* $dumpvars initial block sits after $enddefinitions at time #0. *)
  Alcotest.(check bool) "has #0" true (index_of "#0" >= 0);
  Alcotest.(check bool) "dumpvars after enddefinitions" true
    (index_of "$enddefinitions" < index_of "#0"
    && index_of "#0" + 1 = index_of "$dumpvars");
  (* Every tracked signal has an initial value inside the block. *)
  let dump_start = index_of "$dumpvars" in
  let block_end =
    let rec go i = function
      | [] -> -1
      | l :: rest -> if l = "$end" && i > dump_start then i else go (i + 1) rest
    in
    go 0 lines
  in
  let initial_values = block_end - dump_start - 1 in
  Alcotest.(check bool) "initial value per var" true (initial_values >= 2);
  (* Idle cycles emit no timestamps: only #0 and the final change. *)
  let timestamps = List.filter (fun l -> starts "#" l) lines in
  Alcotest.(check (list string)) "no empty timesteps" [ "#0"; "#4" ] timestamps;
  (* Sanitized reference names: no spaces/colons/bangs, no leading digit. *)
  List.iter
    (fun l ->
      if starts "$var" l then begin
        let name =
          match String.split_on_char ' ' l with
          | _ :: _ :: _ :: _ :: name :: _ -> name
          | _ -> Alcotest.fail ("malformed $var line: " ^ l)
        in
        String.iter
          (fun ch ->
            let ok =
              (ch >= 'a' && ch <= 'z')
              || (ch >= 'A' && ch <= 'Z')
              || (ch >= '0' && ch <= '9')
              || ch = '_' || ch = '$'
            in
            Alcotest.(check bool) ("identifier char in " ^ name) true ok)
          name;
        Alcotest.(check bool) ("no leading digit in " ^ name) false
          (name.[0] >= '0' && name.[0] <= '9')
      end)
    lines;
  (* The scope name is sanitized too ("vcd v" has a space). *)
  Alcotest.(check bool) "scope sanitized" true
    (List.exists (starts "$scope module vcd_v") lines)

let test_circuit_port_errors () =
  let a = input "a" 4 in
  let c = Circuit.create_exn ~name:"p" [ ("y", ~:a) ] in
  let sim = Cyclesim.create c in
  Alcotest.check_raises "unknown input"
    (Invalid_argument "Cyclesim: no input port named ghost") (fun () ->
      ignore (Cyclesim.in_port sim "ghost"));
  Alcotest.check_raises "unknown output"
    (Invalid_argument "Cyclesim: no output port named ghost") (fun () ->
      ignore (Cyclesim.out_port sim "ghost"));
  Alcotest.check_raises "find_input"
    (Invalid_argument "Circuit: no input port named ghost") (fun () ->
      ignore (Circuit.find_input c "ghost"));
  Alcotest.check_raises "find_output"
    (Invalid_argument "Circuit: no output port named ghost") (fun () ->
      ignore (Circuit.find_output c "ghost"))

let test_wide_datapath () =
  let a = input "a" 100 in
  let c = Circuit.create_exn ~name:"wide" [ ("y", a +: a) ] in
  let sim = Cyclesim.create c in
  Cyclesim.in_port sim "a" := Bits.concat_msb [ Bits.one 50; Bits.zero 50 ];
  Cyclesim.cycle sim;
  let expected = Bits.concat_msb [ Bits.of_int ~width:50 2; Bits.zero 50 ] in
  Alcotest.(check bool) "wide add" true
    (Bits.equal expected !(Cyclesim.out_port sim "y"))

let test_input_width_check () =
  let a = input "a" 8 in
  let c = Circuit.create_exn ~name:"w" [ ("y", ~:a) ] in
  let sim = Cyclesim.create c in
  Cyclesim.in_port sim "a" := Bits.zero 4;
  Alcotest.check_raises "wrong input width"
    (Invalid_argument "Cyclesim: input a driven with width 4, expected 8")
    (fun () -> Cyclesim.cycle sim)

let test_out_port_initial_width () =
  (* Regression: output refs used to be initialized as [Bits.zero 1]
     regardless of the port's declared width, so [out_port] before the
     first settle returned a wrong-width value. *)
  List.iter
    (fun engine ->
      let a = input "a" 12 in
      let c = Circuit.create_exn ~name:"w" [ ("y", a +: a) ] in
      let sim = Cyclesim.create ~engine c in
      let v = !(Cyclesim.out_port sim "y") in
      check_int "initial out_port width" 12 (Bits.width v);
      Alcotest.(check bool) "initial out_port zeros" true
        (Bits.equal v (Bits.zero 12)))
    [ Cyclesim.Reference; Cyclesim.Compiled ]

let test_drive_width_check () =
  let a = input "a" 8 in
  let c = Circuit.create_exn ~name:"d" [ ("y", ~:a) ] in
  let sim = Cyclesim.create c in
  Alcotest.check_raises "wrong width rejected at the call site"
    (Invalid_argument "Cyclesim.drive: port a expects width 8, got 4")
    (fun () -> Cyclesim.drive sim "a" (Bits.zero 4));
  Alcotest.check_raises "unknown port"
    (Invalid_argument "Cyclesim: no input port named ghost") (fun () ->
      Cyclesim.drive sim "ghost" (Bits.zero 1));
  Cyclesim.drive sim "a" (Bits.of_int ~width:8 0xF0);
  Cyclesim.cycle sim;
  check_int "driven value simulates" 0x0F (out_int sim "y")

let test_activity_skipping () =
  let counter =
    reg_fb ~width:8 ~clear:(input "clr" 1) ~enable:(input "en" 1) (fun q ->
        q +: one 8)
  in
  let c = Circuit.create_exn ~name:"skip" [ ("q", counter) ] in
  let sim = Cyclesim.create ~engine:Cyclesim.Compiled c in
  set sim "clr" ~width:1 0;
  set sim "en" ~width:1 1;
  for _ = 1 to 4 do
    Cyclesim.cycle sim
  done;
  set sim "en" ~width:1 0;
  (* One cycle to absorb the enable change; after that neither inputs
     nor state change, so no combinational cone has a dirty source. *)
  Cyclesim.cycle sim;
  let before = (Cyclesim.activity sim).Cyclesim.node_evals in
  for _ = 1 to 10 do
    Cyclesim.cycle sim
  done;
  let act = Cyclesim.activity sim in
  check_int "stable cycles evaluate no nodes" 0 (act.Cyclesim.node_evals - before);
  Cyclesim.settle sim;
  check_int "state preserved across skipped cycles" 4 (out_int sim "q");
  set sim "en" ~width:1 1;
  Cyclesim.cycle sim;
  Cyclesim.settle sim;
  check_int "wakes up on input change" 5 (out_int sim "q")

let test_force_fans_out_compiled () =
  let a = input "a" 8 in
  let mid = (a +: one 8) -- "mid" in
  let c = Circuit.create_exn ~name:"force" [ ("y", mid +: one 8) ] in
  let sim = Cyclesim.create ~engine:Cyclesim.Compiled c in
  set sim "a" ~width:8 10;
  Cyclesim.cycle sim;
  check_int "unforced" 12 (out_int sim "y");
  Cyclesim.cycle sim;
  (* The forced node's fan-out must be marked dirty even though no
     input changed. *)
  Cyclesim.force sim mid (Bits.of_int ~width:8 100);
  Cyclesim.settle sim;
  check_int "forced value observed" 100 (Bits.to_int (Cyclesim.peek sim mid));
  check_int "force fans out" 101 (out_int sim "y");
  Cyclesim.release sim mid;
  Cyclesim.settle sim;
  check_int "release recomputes" 12 (out_int sim "y")

let () =
  Alcotest.run "cyclesim"
    [
      ( "cyclesim",
        [
          Alcotest.test_case "combinational ops" `Quick test_combinational;
          Alcotest.test_case "mux" `Quick test_mux;
          Alcotest.test_case "counter" `Quick test_counter;
          Alcotest.test_case "register init/reset" `Quick test_reg_init;
          Alcotest.test_case "async memory" `Quick test_memory_async;
          Alcotest.test_case "sync memory" `Quick test_memory_sync;
          Alcotest.test_case "shift register" `Quick test_shift_register;
          Alcotest.test_case "peek and vcd" `Quick test_peek_and_vcd;
          Alcotest.test_case "wide datapath" `Quick test_wide_datapath;
          Alcotest.test_case "vcd structure" `Quick test_vcd_structure;
          Alcotest.test_case "vcd validity (dumpvars, empty steps, labels)"
            `Quick test_vcd_validity;
          Alcotest.test_case "port errors" `Quick test_circuit_port_errors;
          Alcotest.test_case "input width check" `Quick test_input_width_check;
          Alcotest.test_case "out_port initial width" `Quick
            test_out_port_initial_width;
          Alcotest.test_case "drive width check" `Quick test_drive_width_check;
          Alcotest.test_case "activity skipping" `Quick test_activity_skipping;
          Alcotest.test_case "force fans out (compiled)" `Quick
            test_force_fans_out_compiled;
        ] );
    ]
