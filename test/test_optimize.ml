open Hwpat_rtl
open Hwpat_rtl.Signal

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let estimate c = Hwpat_synthesis.Techmap.estimate c

let is_const_out circuit name =
  Signal.is_const (Circuit.find_output circuit name)
  ||
  match Signal.prim (Circuit.find_output circuit name) with
  | Signal.Wire _ -> (
    match Signal.wire_driver (Circuit.find_output circuit name) with
    | Some d -> Signal.is_const d
    | None -> false)
  | _ -> false

let test_constant_folding () =
  let a = of_int ~width:8 3 and b = of_int ~width:8 4 in
  let c =
    Optimize.circuit
      (Circuit.create_exn ~name:"k"
         [
           ("sum", a +: b);
           ("conj", a &: b);
           ("cmp", a <: b);
           ("inv", ~:a);
           ("cat", concat_msb [ a; b ]);
           ("sel", select (concat_msb [ a; b ]) ~high:11 ~low:4);
         ])
  in
  check_int "fully folded" 0 (estimate c).Hwpat_synthesis.Techmap.luts;
  let sim = Cyclesim.create c in
  Cyclesim.settle sim;
  check_int "sum value" 7 (Bits.to_int !(Cyclesim.out_port sim "sum"));
  check_int "sel value" ((3 * 16 + 0) land 255) (Bits.to_int !(Cyclesim.out_port sim "sel"))

let test_identities () =
  let x = input "x" 8 in
  let c =
    Optimize.circuit
      (Circuit.create_exn ~name:"ids"
         [
           ("and0", x &: zero 8);
           ("and1", x &: ones 8);
           ("or0", x |: zero 8);
           ("or1", x |: ones 8);
           ("xor0", x ^: zero 8);
           ("notnot", ~:(~:x));
           ("add0", x +: zero 8);
         ])
  in
  check_int "identities cost nothing" 0 (estimate c).Hwpat_synthesis.Techmap.luts;
  let sim = Cyclesim.create c in
  Cyclesim.in_port sim "x" := Bits.of_int ~width:8 0xA5;
  Cyclesim.settle sim;
  let out name = Bits.to_int !(Cyclesim.out_port sim name) in
  check_int "and0" 0 (out "and0");
  check_int "and1" 0xA5 (out "and1");
  check_int "or0" 0xA5 (out "or0");
  check_int "or1" 0xFF (out "or1");
  check_int "xor0" 0xA5 (out "xor0");
  check_int "notnot" 0xA5 (out "notnot");
  check_int "add0" 0xA5 (out "add0")

let test_mux_folding () =
  let a = input "a" 8 and b = input "b" 8 in
  let c =
    Optimize.circuit
      (Circuit.create_exn ~name:"m"
         [
           ("const_sel", mux (of_int ~width:1 1) [ a; b ]);
           ("same_cases", mux (input "s" 2) [ a; a; a ]);
         ])
  in
  check_int "muxes gone" 0 (estimate c).Hwpat_synthesis.Techmap.luts;
  let sim = Cyclesim.create c in
  Cyclesim.in_port sim "a" := Bits.of_int ~width:8 1;
  Cyclesim.in_port sim "b" := Bits.of_int ~width:8 2;
  Cyclesim.settle sim;
  check_int "selected b" 2 (Bits.to_int !(Cyclesim.out_port sim "const_sel"));
  check_int "same collapses to a" 1
    (Bits.to_int !(Cyclesim.out_port sim "same_cases"))

let test_dead_register_folds () =
  let q = reg ~enable:gnd ~init:(Bits.of_int ~width:8 42) (input "d" 8) in
  let c = Optimize.circuit (Circuit.create_exn ~name:"dead" [ ("q", q) ]) in
  check_int "no ffs left" 0 (estimate c).Hwpat_synthesis.Techmap.ffs;
  check_bool "output is the init constant" true (is_const_out c "q");
  let sim = Cyclesim.create c in
  Cyclesim.settle sim;
  check_int "init value" 42 (Bits.to_int !(Cyclesim.out_port sim "q"))

let test_live_register_survives () =
  let q = reg ~enable:(input "en" 1) (input "d" 8) in
  let c = Optimize.circuit (Circuit.create_exn ~name:"live" [ ("q", q) ]) in
  check_int "register kept" 8 (estimate c).Hwpat_synthesis.Techmap.ffs

let test_unwritten_memory_folds () =
  let m = create_memory ~size:16 ~width:8 () in
  mem_write_port m ~enable:gnd ~addr:(input "wa" 4) ~data:(input "wd" 8);
  let rd = mem_read_async m ~addr:(input "ra" 4) in
  let c = Optimize.circuit (Circuit.create_exn ~name:"nw" [ ("rd", rd) ]) in
  let r = estimate c in
  check_int "memory gone" 0 r.Hwpat_synthesis.Techmap.lutram_luts;
  check_bool "reads constant zero" true (is_const_out c "rd")

let test_feedback_register_preserved () =
  (* A counter optimises to itself (no constants involved) and still
     counts. *)
  let counter = reg_fb ~width:8 (fun q -> q +: one 8) in
  let c = Optimize.circuit (Circuit.create_exn ~name:"cnt" [ ("q", counter) ]) in
  let sim = Cyclesim.create c in
  for _ = 1 to 5 do
    Cyclesim.cycle sim
  done;
  Cyclesim.settle sim;
  check_int "still counts" 5 (Bits.to_int !(Cyclesim.out_port sim "q"))

(* --- Edge cases, pinned by simulation AND a SAT equivalence proof ------- *)

let assert_optimize_equiv what raw =
  match Hwpat_formal.Equiv.check raw (Optimize.circuit raw) with
  | Hwpat_formal.Equiv.Proved -> ()
  | Hwpat_formal.Equiv.Counterexample _ ->
    Alcotest.failf "%s: optimiser changed behaviour" what
  | Hwpat_formal.Equiv.Unknown why ->
    Alcotest.failf "%s: equivalence undecided (%s)" what why

(* Drive only the ports the optimiser kept: a dead input disappearing
   from the optimised circuit is expected, not an error. *)
let drive_if_present sim circuit name v =
  if List.mem_assoc name (Circuit.inputs circuit) then Cyclesim.drive sim name v

let test_mux_oob_const_select () =
  (* Out-of-range constant selects clamp to the last case — the
     {!Signal.mux_index} rule. The folder must agree with the
     simulator on exactly where the clamp lands. *)
  let a = input "a" 8 and b = input "b" 8 and c_in = input "c" 8 in
  let raw =
    Circuit.create_exn ~name:"oob"
      [
        ("clamp_inputs", mux (of_int ~width:3 6) [ a; b; c_in ]);
        ( "clamp_consts",
          mux (of_int ~width:2 3)
            [ of_int ~width:4 1; of_int ~width:4 2; of_int ~width:4 9 ] );
        ("exact_last", mux (of_int ~width:2 2) [ a; b; c_in ]);
      ]
  in
  let c = Optimize.circuit raw in
  check_int "folded away" 0 (estimate c).Hwpat_synthesis.Techmap.luts;
  check_bool "oob constant mux folds" true (is_const_out c "clamp_consts");
  let sim = Cyclesim.create c in
  drive_if_present sim c "a" (Bits.of_int ~width:8 0x11);
  drive_if_present sim c "b" (Bits.of_int ~width:8 0x22);
  drive_if_present sim c "c" (Bits.of_int ~width:8 0x5A);
  Cyclesim.settle sim;
  let out name = Bits.to_int !(Cyclesim.out_port sim name) in
  check_int "oob select clamps to last case" 0x5A (out "clamp_inputs");
  check_int "oob constant clamps to last case" 9 (out "clamp_consts");
  check_int "in-range last case unchanged" 0x5A (out "exact_last");
  assert_optimize_equiv "mux oob select" raw

let test_adjacent_selects () =
  (* Selects flush against the word boundaries: the part left of the
     high slice (or right of the low slice) is zero-width, and
     rejoining the two adjacent halves is the identity. *)
  let x = input "x" 8 in
  let raw =
    Circuit.create_exn ~name:"sel"
      [
        ( "rejoin",
          concat_msb [ select x ~high:7 ~low:4; select x ~high:3 ~low:0 ] );
        ("msb_only", select x ~high:7 ~low:7);
        ("lsb_only", select x ~high:0 ~low:0);
        ("full", select x ~high:7 ~low:0);
      ]
  in
  let c = Optimize.circuit raw in
  check_int "all selects free" 0 (estimate c).Hwpat_synthesis.Techmap.luts;
  let sim = Cyclesim.create c in
  drive_if_present sim c "x" (Bits.of_int ~width:8 0xC3);
  Cyclesim.settle sim;
  let out name = Bits.to_int !(Cyclesim.out_port sim name) in
  check_int "adjacent halves rejoin to the word" 0xC3 (out "rejoin");
  check_int "top bit" 1 (out "msb_only");
  check_int "bottom bit" 1 (out "lsb_only");
  check_int "full-width select is the wire" 0xC3 (out "full");
  assert_optimize_equiv "adjacent selects" raw

let test_const_enable_registers () =
  (* enable=vdd folds the recirculating mux away but must keep the
     flop; enable=gnd folds the whole register to its init constant. *)
  let d = input "d" 8 in
  let raw =
    Circuit.create_exn ~name:"cen"
      [
        ("always_on", reg ~enable:vdd d);
        ("never_on", reg ~enable:gnd ~init:(Bits.of_int ~width:8 0x2A) d);
        ("fb", reg_fb ~enable:vdd ~width:4 (fun q -> q +: one 4));
      ]
  in
  let c = Optimize.circuit raw in
  check_int "only the live flops remain" 12 (estimate c).Hwpat_synthesis.Techmap.ffs;
  check_bool "gnd-enabled register is its init" true (is_const_out c "never_on");
  let sim = Cyclesim.create c in
  drive_if_present sim c "d" (Bits.of_int ~width:8 0x77);
  Cyclesim.cycle sim;
  Cyclesim.cycle sim;
  Cyclesim.settle sim;
  let out name = Bits.to_int !(Cyclesim.out_port sim name) in
  check_int "vdd-enabled register tracks d" 0x77 (out "always_on");
  check_int "gnd-enabled register holds init" 0x2A (out "never_on");
  check_int "feedback counter advances" 2 (out "fb");
  assert_optimize_equiv "constant enables" raw

(* Semantics preservation on a real system: optimised saa2vga produces
   the same frame as the raw netlist. *)
let test_system_equivalence () =
  let open Hwpat_core in
  let open Hwpat_video in
  let frame = Pattern.random ~seed:3 ~width:10 ~height:8 ~depth:8 () in
  List.iter
    (fun (substrate, style) ->
      let raw = Saa2vga.build ~depth:16 ~substrate ~style () in
      let optimized = Optimize.circuit raw in
      let run c =
        (Experiment.run_video_system c ~input:frame ~out_width:10 ~out_height:8)
          .Experiment.output
      in
      if not (Frame.equal (run raw) (run optimized)) then
        Alcotest.failf "%s: optimisation changed behaviour"
          (Saa2vga.name ~substrate ~style);
      (* And it never makes the design bigger. *)
      let r_raw = estimate raw and r_opt = estimate optimized in
      if r_opt.Hwpat_synthesis.Techmap.luts > r_raw.Hwpat_synthesis.Techmap.luts
      then
        Alcotest.failf "%s: optimisation grew the netlist"
          (Saa2vga.name ~substrate ~style))
    Saa2vga.all_variants

(* The A1 ablation at netlist level: a random iterator generated with
   the full Table 2 operation set versus one whose unused operations are
   tied off; optimisation must strip the dead machinery. *)
let test_pruning_via_optimizer () =
  let open Hwpat_containers in
  let open Hwpat_iterators in
  let build ~pruned =
    let driver =
      {
        Iterator_intf.inc_req = input "inc" 1;
        dec_req = (if pruned then gnd else input "dec" 1);
        read_req = input "rd" 1;
        write_req = (if pruned then gnd else input "wr" 1);
        write_data = (if pruned then zero 8 else input "wd" 8);
        index_req = (if pruned then gnd else input "ix" 1);
        index_pos = (if pruned then zero 5 else input "ip" 5);
      }
    in
    let rit =
      Random_iterator.create ~length:16
        ~vector:(Vector_c.over_bram ~length:16 ~width:8)
        driver
    in
    let it = rit.Random_iterator.iterator in
    Optimize.circuit
      (Circuit.create_exn ~name:(if pruned then "pruned" else "full")
         [
           ("read_ack", it.Iterator_intf.read_ack);
           ("read_data", it.Iterator_intf.read_data);
           ("inc_ack", it.Iterator_intf.inc_ack);
         ])
  in
  let full = estimate (build ~pruned:false) in
  let pruned = estimate (build ~pruned:true) in
  check_bool "pruning shrinks LUTs" true
    (pruned.Hwpat_synthesis.Techmap.luts < full.Hwpat_synthesis.Techmap.luts);
  check_bool "pruning shrinks FFs" true
    (pruned.Hwpat_synthesis.Techmap.ffs < full.Hwpat_synthesis.Techmap.ffs)

let () =
  Alcotest.run "optimize"
    [
      ( "folding",
        [
          Alcotest.test_case "constants" `Quick test_constant_folding;
          Alcotest.test_case "identities" `Quick test_identities;
          Alcotest.test_case "muxes" `Quick test_mux_folding;
          Alcotest.test_case "dead register" `Quick test_dead_register_folds;
          Alcotest.test_case "live register survives" `Quick
            test_live_register_survives;
          Alcotest.test_case "unwritten memory" `Quick test_unwritten_memory_folds;
          Alcotest.test_case "feedback preserved" `Quick
            test_feedback_register_preserved;
        ] );
      ( "edge-cases",
        [
          Alcotest.test_case "mux oob const select" `Quick
            test_mux_oob_const_select;
          Alcotest.test_case "boundary-adjacent selects" `Quick
            test_adjacent_selects;
          Alcotest.test_case "constant enables" `Quick
            test_const_enable_registers;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "systems unchanged" `Slow test_system_equivalence;
          Alcotest.test_case "pruning ablation" `Quick test_pruning_via_optimizer;
        ] );
    ]
