(* Shared test-bench helpers: drive request/ack handshakes against a
   running Cyclesim from OCaml test code. *)

open Hwpat_rtl

let set sim name ~width v = Cyclesim.in_port sim name := Bits.of_int ~width v
let out_int sim name = Bits.to_int !(Cyclesim.out_port sim name)

exception Timeout of string

(* Step cycles until the named 1-bit output is high (checked after each
   cycle's settled outputs). Returns the number of cycles stepped. *)
let cycles_until ?(timeout = 2000) sim name =
  let rec go n =
    if n > timeout then raise (Timeout (Printf.sprintf "waiting for %s" name));
    Cyclesim.cycle sim;
    if out_int sim name = 1 then n else go (n + 1)
  in
  go 1

(* A sequential-container client: put one value, honoring the
   hold-until-ack handshake. Returns latency in cycles. *)
let seq_put ?timeout sim ~width v =
  set sim "put_req" ~width:1 1;
  set sim "put_data" ~width v;
  let n = cycles_until ?timeout sim "put_ack" in
  set sim "put_req" ~width:1 0;
  Cyclesim.cycle sim;
  n

(* Get one value; returns (value, latency). *)
let seq_get ?timeout sim =
  set sim "get_req" ~width:1 1;
  let n = cycles_until ?timeout sim "get_ack" in
  let v = out_int sim "get_data" in
  set sim "get_req" ~width:1 0;
  Cyclesim.cycle sim;
  (v, n)

(* Build a simulator for a sequential container given its builder.
   Exposes get_req/put_req/put_data inputs and
   get_ack/get_data/put_ack/empty/full/size outputs. *)
let seq_harness ~name ~width build =
  let data_width = width in
  let open Hwpat_rtl.Signal in
  let driver =
    {
      Hwpat_containers.Container_intf.get_req = input "get_req" 1;
      put_req = input "put_req" 1;
      put_data = input "put_data" data_width;
    }
  in
  let c : Hwpat_containers.Container_intf.seq = build driver in
  let circuit =
    Circuit.create_exn ~name
      [
        ("get_ack", c.Hwpat_containers.Container_intf.get_ack);
        ("get_data", c.Hwpat_containers.Container_intf.get_data);
        ("put_ack", c.Hwpat_containers.Container_intf.put_ack);
        ("empty", c.Hwpat_containers.Container_intf.empty);
        ("full", c.Hwpat_containers.Container_intf.full);
        ("size", c.Hwpat_containers.Container_intf.size);
      ]
  in
  Cyclesim.create circuit

(* --- Counterexample replay ------------------------------------------ *)

(* A per-cycle named input assignment, as produced by the formal layer's
   counterexamples and by recording differential-test stimulus. *)

let assignment_to_string assignment =
  String.concat ", "
    (List.map (fun (n, v) -> Printf.sprintf "%s=%s" n (Bits.to_string v)) assignment)

let trace_to_string ?(max_cycles = 20) trace =
  let n = List.length trace in
  let skipped = max 0 (n - max_cycles) in
  let shown = List.filteri (fun i _ -> i >= skipped) trace in
  let header =
    if skipped > 0 then
      Printf.sprintf "  (... %d earlier cycles elided ...)\n" skipped
    else ""
  in
  header
  ^ String.concat "\n"
      (List.mapi
         (fun i a ->
           Printf.sprintf "  cycle %d: %s" (skipped + i) (assignment_to_string a))
         shown)

type engine_divergence = {
  at : int;  (* 0-based cycle index into the trace *)
  port : string;
  reference : Bits.t;
  compiled : Bits.t;
}

(* Drive a per-cycle named input assignment through BOTH simulation
   engines and diff every output port after every cycle. Returns the
   first divergence, or None if the engines agree over the whole
   trace. Ports named in the assignment but absent from the circuit
   are ignored (the convention for optimised-away inputs). [plans]
   reuses already-compiled (reference, compiled) plans of the same
   circuit — fresh instances, no recompilation. *)
let replay_both ?plans circuit trace =
  let ref_sim, cmp_sim =
    match plans with
    | Some (ref_plan, cmp_plan) ->
      (Cyclesim.of_plan ref_plan, Cyclesim.of_plan cmp_plan)
    | None ->
      ( Cyclesim.create ~engine:Cyclesim.Reference circuit,
        Cyclesim.create ~engine:Cyclesim.Compiled circuit )
  in
  let in_ports = Circuit.inputs circuit in
  let result = ref None in
  (try
     List.iteri
       (fun cycle assignment ->
         List.iter
           (fun (name, v) ->
             if List.mem_assoc name in_ports then begin
               Cyclesim.drive ref_sim name v;
               Cyclesim.drive cmp_sim name v
             end)
           assignment;
         Cyclesim.cycle ref_sim;
         Cyclesim.cycle cmp_sim;
         List.iter
           (fun (name, _) ->
             let a = !(Cyclesim.out_port ref_sim name)
             and b = !(Cyclesim.out_port cmp_sim name) in
             if not (Bits.equal a b) then begin
               result :=
                 Some { at = cycle; port = name; reference = a; compiled = b };
               raise Exit
             end)
           (Circuit.outputs circuit))
       trace
   with Exit -> ());
  !result

(* Idle the simulator with all requests low. *)
let quiesce sim =
  (try set sim "get_req" ~width:1 0 with Invalid_argument _ -> ());
  (try set sim "put_req" ~width:1 0 with Invalid_argument _ -> ());
  Cyclesim.cycle sim
