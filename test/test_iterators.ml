open Hwpat_rtl
open Hwpat_rtl.Signal
open Hwpat_containers
open Hwpat_iterators
open Hwpat_test_support.Sim_util

let check_int = Alcotest.(check int)

(* --- Sequential iterators are free ----------------------------------- *)

let test_seq_iterator_zero_cost () =
  (* Build the same queue twice: once accessed directly, once through
     an input iterator. The netlists must cost the same. *)
  let build_direct () =
    let d =
      {
        Container_intf.get_req = input "get_req" 1;
        put_req = input "put_req" 1;
        put_data = input "put_data" 8;
      }
    in
    let q = Queue_c.over_fifo ~depth:16 ~width:8 d in
    Circuit.create_exn ~name:"direct"
      [
        ("ack", q.Container_intf.get_ack);
        ("data", q.Container_intf.get_data);
      ]
  in
  let build_wrapped () =
    let driver =
      {
        (Iterator_intf.driver_stub ~data_width:8 ~pos_width:1) with
        Iterator_intf.read_req = input "read_req" 1;
        inc_req = input "inc_req" 1;
      }
    in
    let it, _ =
      Seq_iterator.connect_input
        ~build:(fun ~get_req ->
          let d =
            {
              Container_intf.get_req;
              put_req = input "put_req" 1;
              put_data = input "put_data" 8;
            }
          in
          (Queue_c.over_fifo ~depth:16 ~width:8 d, ()))
        driver
    in
    Circuit.create_exn ~name:"wrapped"
      [
        ("ack", it.Iterator_intf.read_ack);
        ("data", it.Iterator_intf.read_data);
      ]
  in
  let open Hwpat_synthesis in
  let direct = Techmap.estimate (build_direct ()) in
  let wrapped = Techmap.estimate (build_wrapped ()) in
  (* The wrapper itself is pure renaming; the only logic it can add is
     the single AND fusing read+inc into the container's get request
     (and real synthesis absorbs that into a downstream LUT input). *)
  Alcotest.(check bool) "at most the fused-request AND" true
    (wrapped.Techmap.luts - direct.Techmap.luts <= 1);
  check_int "same ffs" direct.Techmap.ffs wrapped.Techmap.ffs;
  check_int "same brams" direct.Techmap.brams wrapped.Techmap.brams

let test_unsupported_ops_never_ack () =
  let driver =
    {
      (Iterator_intf.driver_stub ~data_width:8 ~pos_width:1) with
      Iterator_intf.read_req = input "read_req" 1;
      inc_req = input "inc_req" 1;
      dec_req = input "dec_req" 1;
    }
  in
  let it, _ =
    Seq_iterator.connect_input
      ~build:(fun ~get_req ->
        let d =
          {
            Container_intf.get_req;
            put_req = input "put_req" 1;
            put_data = input "put_data" 8;
          }
        in
        (Queue_c.over_fifo ~depth:16 ~width:8 d, ()))
      driver
  in
  let c =
    Circuit.create_exn ~name:"tied"
      [
        ("dec_ack", it.Iterator_intf.dec_ack);
        ("write_ack", it.Iterator_intf.write_ack);
        ("index_ack", it.Iterator_intf.index_ack);
      ]
  in
  let sim = Cyclesim.create c in
  (* dec_req has no path to any output (the ack is tied low), so the
     port does not even exist — the strongest form of "never acks". *)
  Alcotest.check_raises "dec_req disconnected"
    (Invalid_argument "Cyclesim: no input port named dec_req") (fun () ->
      ignore (Cyclesim.in_port sim "dec_req"));
  for _ = 1 to 5 do
    Cyclesim.cycle sim;
    check_int "dec never acks" 0 (out_int sim "dec_ack");
    check_int "write never acks" 0 (out_int sim "write_ack");
    check_int "index never acks" 0 (out_int sim "index_ack")
  done

(* --- Random iterator -------------------------------------------------- *)

let random_iterator_harness () =
  let driver =
    {
      Iterator_intf.inc_req = input "inc_req" 1;
      dec_req = input "dec_req" 1;
      read_req = input "read_req" 1;
      write_req = input "write_req" 1;
      write_data = input "write_data" 8;
      index_req = input "index_req" 1;
      index_pos = input "index_pos" 5;
    }
  in
  let rit =
    Random_iterator.create ~length:16
      ~vector:(Vector_c.over_bram ~length:16 ~width:8)
      driver
  in
  let it = rit.Random_iterator.iterator in
  let c =
    Circuit.create_exn ~name:"rit"
      [
        ("inc_ack", it.Iterator_intf.inc_ack);
        ("dec_ack", it.Iterator_intf.dec_ack);
        ("read_ack", it.Iterator_intf.read_ack);
        ("read_data", it.Iterator_intf.read_data);
        ("write_ack", it.Iterator_intf.write_ack);
        ("index_ack", it.Iterator_intf.index_ack);
        ("at_end", it.Iterator_intf.at_end);
        ("position", rit.Random_iterator.position);
      ]
  in
  let sim = Cyclesim.create c in
  List.iter
    (fun n -> set sim n ~width:1 0)
    [ "inc_req"; "dec_req"; "read_req"; "write_req"; "index_req" ];
  set sim "write_data" ~width:8 0;
  set sim "index_pos" ~width:5 0;
  Cyclesim.cycle sim;
  sim

let op sim req ack =
  set sim req ~width:1 1;
  ignore (cycles_until sim ack);
  set sim req ~width:1 0;
  Cyclesim.cycle sim

let test_random_iterator_walk () =
  let sim = random_iterator_harness () in
  (* Write 10,11,12 at positions 0,1,2 walking forward. *)
  List.iter
    (fun v ->
      set sim "write_data" ~width:8 v;
      op sim "write_req" "write_ack";
      op sim "inc_req" "inc_ack")
    [ 10; 11; 12 ];
  Cyclesim.settle sim;
  check_int "position 3" 3 (out_int sim "position");
  (* Walk back and read them in reverse. *)
  let read_back () =
    op sim "dec_req" "dec_ack";
    set sim "read_req" ~width:1 1;
    ignore (cycles_until sim "read_ack");
    let v = out_int sim "read_data" in
    set sim "read_req" ~width:1 0;
    Cyclesim.cycle sim;
    v
  in
  Alcotest.(check (list int)) "reverse walk" [ 12; 11; 10 ]
    (List.init 3 (fun _ -> read_back ()));
  (* index jumps directly. *)
  set sim "index_pos" ~width:5 1;
  op sim "index_req" "index_ack";
  Cyclesim.settle sim;
  check_int "indexed" 1 (out_int sim "position")

let test_random_iterator_at_end () =
  let sim = random_iterator_harness () in
  set sim "index_pos" ~width:5 15;
  op sim "index_req" "index_ack";
  Cyclesim.settle sim;
  check_int "not at end at 15" 0 (out_int sim "at_end");
  op sim "inc_req" "inc_ack";
  Cyclesim.settle sim;
  check_int "at end at 16" 1 (out_int sim "at_end")

(* --- Multi-word iterator ---------------------------------------------- *)

let test_multi_word_words () =
  check_int "3 words" 3 (Multi_word_iterator.words ~elem_width:24 ~bus_width:8);
  check_int "1 word" 1 (Multi_word_iterator.words ~elem_width:8 ~bus_width:8);
  Alcotest.check_raises "bad split"
    (Invalid_argument
       "Multi_word_iterator: elem_width must be a multiple of bus_width")
    (fun () -> ignore (Multi_word_iterator.words ~elem_width:24 ~bus_width:7))

(* A 24-bit element over an 8-bit queue: write through the multi-word
   output iterator, read back through the multi-word input iterator. *)
let test_multi_word_round_trip () =
  let in_driver =
    {
      (Iterator_intf.driver_stub ~data_width:24 ~pos_width:1) with
      Iterator_intf.read_req = input "read_req" 1;
      inc_req = input "inc_req" 1;
    }
  in
  let out_driver =
    {
      (Iterator_intf.driver_stub ~data_width:24 ~pos_width:1) with
      Iterator_intf.write_req = input "write_req" 1;
      inc_req = input "winc_req" 1;
      write_data = input "write_data" 24;
    }
  in
  (* One shared narrow queue: the output iterator pushes, the input
     iterator pops. *)
  let get_req_w = wire 1 and put_req_w = wire 1 and put_data_w = wire 8 in
  let q =
    Queue_c.over_fifo ~depth:16 ~width:8
      {
        Container_intf.get_req = get_req_w;
        put_req = put_req_w;
        put_data = put_data_w;
      }
  in
  let out_it, () =
    Multi_word_iterator.output ~elem_width:24 ~bus_width:8
      ~build:(fun ~put_req ~put_data ->
        put_req_w <== put_req;
        put_data_w <== put_data;
        (q, ()))
      out_driver
  in
  let in_it, () =
    Multi_word_iterator.input ~elem_width:24 ~bus_width:8
      ~build:(fun ~get_req ->
        get_req_w <== get_req;
        (q, ()))
      in_driver
  in
  let c =
    Circuit.create_exn ~name:"mw"
      [
        ("read_ack", in_it.Iterator_intf.read_ack);
        ("read_data", in_it.Iterator_intf.read_data);
        ("write_ack", out_it.Iterator_intf.write_ack);
        ("size", q.Container_intf.size);
      ]
  in
  let sim = Cyclesim.create c in
  List.iter
    (fun n -> set sim n ~width:1 0)
    [ "read_req"; "inc_req"; "write_req"; "winc_req" ];
  set sim "write_data" ~width:24 0;
  Cyclesim.cycle sim;
  let write_elem v =
    Cyclesim.in_port sim "write_data" := Bits.of_int ~width:24 v;
    set sim "write_req" ~width:1 1;
    set sim "winc_req" ~width:1 1;
    ignore (cycles_until sim "write_ack");
    set sim "write_req" ~width:1 0;
    set sim "winc_req" ~width:1 0;
    Cyclesim.cycle sim
  in
  let read_elem () =
    set sim "read_req" ~width:1 1;
    set sim "inc_req" ~width:1 1;
    ignore (cycles_until sim "read_ack");
    let v = Bits.to_int !(Cyclesim.out_port sim "read_data") in
    set sim "read_req" ~width:1 0;
    set sim "inc_req" ~width:1 0;
    Cyclesim.cycle sim;
    v
  in
  write_elem 0xABCDEF;
  Cyclesim.settle sim;
  check_int "three words buffered" 3 (out_int sim "size");
  write_elem 0x123456;
  check_int "first element round trips" 0xABCDEF (read_elem ());
  check_int "second element round trips" 0x123456 (read_elem ());
  Cyclesim.settle sim;
  check_int "drained" 0 (out_int sim "size")

(* Random content round-trip through the width adapter. *)
let test_multi_word_random () =
  (* Re-use the harness per value set to keep the test independent. *)
  Random.init 3;
  let values = List.init 6 (fun _ -> Random.int (1 lsl 24)) in
  (* Build once, stream all values through. *)
  let in_driver =
    {
      (Iterator_intf.driver_stub ~data_width:24 ~pos_width:1) with
      Iterator_intf.read_req = input "read_req" 1;
      inc_req = input "inc_req" 1;
    }
  in
  let out_driver =
    {
      (Iterator_intf.driver_stub ~data_width:24 ~pos_width:1) with
      Iterator_intf.write_req = input "write_req" 1;
      inc_req = input "winc_req" 1;
      write_data = input "write_data" 24;
    }
  in
  let get_req_w = wire 1 and put_req_w = wire 1 and put_data_w = wire 8 in
  let q =
    Queue_c.over_bram ~depth:32 ~width:8
      {
        Container_intf.get_req = get_req_w;
        put_req = put_req_w;
        put_data = put_data_w;
      }
  in
  let out_it, () =
    Multi_word_iterator.output ~elem_width:24 ~bus_width:8
      ~build:(fun ~put_req ~put_data ->
        put_req_w <== put_req;
        put_data_w <== put_data;
        (q, ()))
      out_driver
  in
  let in_it, () =
    Multi_word_iterator.input ~elem_width:24 ~bus_width:8
      ~build:(fun ~get_req ->
        get_req_w <== get_req;
        (q, ()))
      in_driver
  in
  let c =
    Circuit.create_exn ~name:"mwr"
      [
        ("read_ack", in_it.Iterator_intf.read_ack);
        ("read_data", in_it.Iterator_intf.read_data);
        ("write_ack", out_it.Iterator_intf.write_ack);
      ]
  in
  let sim = Cyclesim.create c in
  List.iter
    (fun n -> set sim n ~width:1 0)
    [ "read_req"; "inc_req"; "write_req"; "winc_req" ];
  set sim "write_data" ~width:24 0;
  Cyclesim.cycle sim;
  List.iter
    (fun v ->
      Cyclesim.in_port sim "write_data" := Bits.of_int ~width:24 v;
      set sim "write_req" ~width:1 1;
      set sim "winc_req" ~width:1 1;
      ignore (cycles_until sim "write_ack");
      set sim "write_req" ~width:1 0;
      set sim "winc_req" ~width:1 0;
      Cyclesim.cycle sim)
    values;
  let got =
    List.map
      (fun _ ->
        set sim "read_req" ~width:1 1;
        set sim "inc_req" ~width:1 1;
        ignore (cycles_until sim "read_ack");
        let v = Bits.to_int !(Cyclesim.out_port sim "read_data") in
        set sim "read_req" ~width:1 0;
        set sim "inc_req" ~width:1 0;
        Cyclesim.cycle sim;
        v)
      values
  in
  Alcotest.(check (list int)) "all values round trip" values got

let () =
  Alcotest.run "iterators"
    [
      ( "sequential",
        [
          Alcotest.test_case "zero cost" `Quick test_seq_iterator_zero_cost;
          Alcotest.test_case "unsupported ops" `Quick test_unsupported_ops_never_ack;
        ] );
      ( "random",
        [
          Alcotest.test_case "walk" `Quick test_random_iterator_walk;
          Alcotest.test_case "at_end" `Quick test_random_iterator_at_end;
        ] );
      ( "multi-word",
        [
          Alcotest.test_case "word count" `Quick test_multi_word_words;
          Alcotest.test_case "round trip" `Quick test_multi_word_round_trip;
          Alcotest.test_case "random values" `Quick test_multi_word_random;
        ] );
    ]
