open Hwpat_meta

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let contains needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* --- Metamodel: Tables 1 and 2 -------------------------------------- *)

let test_table1_matches_paper () =
  let open Metamodel in
  let cap = capabilities in
  (* stack: sequential F input, B output, no random *)
  let s = cap Stack in
  check_bool "stack no random" true (not s.random_input && not s.random_output);
  check_bool "stack in F" true (s.sequential_input = Some Forward);
  check_bool "stack out B" true (s.sequential_output = Some Backward);
  (* queue: F/F *)
  let q = cap Queue in
  check_bool "queue F/F" true
    (q.sequential_input = Some Forward && q.sequential_output = Some Forward);
  (* read buffer: F input only *)
  let r = cap Read_buffer in
  check_bool "rbuffer input only" true
    (r.sequential_input = Some Forward && r.sequential_output = None);
  (* write buffer: F output only *)
  let w = cap Write_buffer in
  check_bool "wbuffer output only" true
    (w.sequential_input = None && w.sequential_output = Some Forward);
  (* vector: random + F,B both sides *)
  let v = cap Vector in
  check_bool "vector random" true (v.random_input && v.random_output);
  check_bool "vector seq both" true
    (v.sequential_input = Some Both && v.sequential_output = Some Both);
  (* assoc: random only *)
  let a = cap Assoc_array in
  check_bool "assoc random only" true
    (a.random_input && a.random_output && a.sequential_input = None
   && a.sequential_output = None)

let test_table2_operations () =
  let open Metamodel in
  check_string "inc meaning" "move forward" (operation_meaning Inc);
  check_string "dec applicability" "B / F, B" (operation_applicability Dec);
  check_string "index applicability" "random" (operation_applicability Index);
  (* Derived operation sets. *)
  let ops k = operations k in
  check_bool "queue has inc/read/write" true
    (List.mem Inc (ops Queue) && List.mem Read (ops Queue) && List.mem Write (ops Queue));
  check_bool "queue has no dec/index" true
    ((not (List.mem Dec (ops Queue))) && not (List.mem Index (ops Queue)));
  check_bool "stack has dec" true (List.mem Dec (ops Stack));
  check_bool "rbuffer read only" true
    (List.mem Read (ops Read_buffer) && not (List.mem Write (ops Read_buffer)));
  check_bool "wbuffer write only" true
    (List.mem Write (ops Write_buffer) && not (List.mem Read (ops Write_buffer)));
  check_bool "vector has everything" true
    (List.for_all (fun op -> List.mem op (ops Vector)) all_operations);
  check_bool "assoc has index" true (List.mem Index (ops Assoc_array));
  check_bool "assoc has no inc" true (not (List.mem Inc (ops Assoc_array)))

let test_rendered_tables () =
  let t1 = Metamodel.table1 and t2 = Metamodel.table2 in
  check_bool "t1 lists all containers" true
    (List.for_all
       (fun k -> contains (Metamodel.container_name k) t1)
       Metamodel.all_containers);
  check_bool "t2 lists all ops" true
    (List.for_all
       (fun op -> contains (Metamodel.operation_name op) t2)
       Metamodel.all_operations)

let test_legal_targets () =
  let open Metamodel in
  check_bool "queue over fifo" true (List.mem Fifo_core (legal_targets Queue));
  check_bool "stack over lifo" true (List.mem Lifo_core (legal_targets Stack));
  check_bool "stack not over fifo" true (not (List.mem Fifo_core (legal_targets Stack)));
  check_bool "everything over sram" true
    (List.for_all (fun k -> List.mem Ext_sram (legal_targets k)) all_containers);
  check_bool "vector only ram" true
    (List.for_all
       (fun t -> t = Block_ram || t = Ext_sram)
       (legal_targets Vector));
  check_bool "rbuffer over linebuf" true
    (List.mem Line_buffer3 (legal_targets Read_buffer))

(* --- Config --------------------------------------------------------- *)

let rbuffer_fifo_cfg =
  Config.make ~instance_name:"rbuffer" ~kind:Metamodel.Read_buffer
    ~target:Metamodel.Fifo_core ~elem_width:8 ~depth:512 ()

let rbuffer_sram_cfg =
  Config.make ~instance_name:"rbuffer" ~kind:Metamodel.Read_buffer
    ~target:Metamodel.Ext_sram ~elem_width:8 ~depth:512 ~addr_width:16 ()

let test_config_defaults () =
  check_int "bus = elem by default" 8 rbuffer_fifo_cfg.Config.bus_width;
  check_int "addr from depth" 9 rbuffer_fifo_cfg.Config.addr_width;
  check_int "one word per element" 1 (Config.words_per_element rbuffer_fifo_cfg);
  check_string "entity name" "rbuffer_fifo" (Config.entity_name rbuffer_fifo_cfg);
  check_string "sram entity name" "rbuffer_sram" (Config.entity_name rbuffer_sram_cfg)

let test_config_validation () =
  let expect_invalid f =
    try
      ignore (f ());
      Alcotest.fail "expected Invalid_argument"
    with Invalid_argument _ -> ()
  in
  (* stack over fifo is not a legal mapping *)
  expect_invalid (fun () ->
      Config.make ~instance_name:"s" ~kind:Metamodel.Stack
        ~target:Metamodel.Fifo_core ~elem_width:8 ~depth:16 ());
  (* rbuffer has no write op *)
  expect_invalid (fun () ->
      Config.make ~instance_name:"r" ~kind:Metamodel.Read_buffer
        ~target:Metamodel.Fifo_core ~elem_width:8 ~depth:16
        ~ops_used:[ Metamodel.Write ] ());
  (* element must be a multiple of the bus *)
  expect_invalid (fun () ->
      Config.make ~instance_name:"r" ~kind:Metamodel.Read_buffer
        ~target:Metamodel.Fifo_core ~elem_width:24 ~bus_width:7 ~depth:16 ())

let test_multi_word () =
  let cfg =
    Config.make ~instance_name:"rgb" ~kind:Metamodel.Queue
      ~target:Metamodel.Ext_sram ~elem_width:24 ~bus_width:8 ~depth:256 ()
  in
  check_int "three accesses per pixel" 3 (Config.words_per_element cfg)

(* --- Codegen: Figures 4 and 5 --------------------------------------- *)

let port_names ports = List.map (fun pt -> pt.Codegen.port_name) ports

let test_figure4_rbuffer_fifo () =
  let text = Codegen.generate_container rbuffer_fifo_cfg in
  check_bool "entity name" true (contains "entity rbuffer_fifo is" text);
  check_bool "methods section" true (contains "-- methods" text);
  check_bool "m_empty" true (contains "m_empty : in std_logic" text);
  check_bool "m_pop" true (contains "m_pop : in std_logic" text);
  check_bool "params section" true (contains "-- params" text);
  check_bool "implementation section" true
    (contains "-- implementation interface" text);
  (* Figure 4's implementation interface for a FIFO *)
  check_bool "p_empty in" true (contains "p_empty : in std_logic" text);
  check_bool "p_read out" true (contains "p_read : out std_logic" text);
  check_bool "p_data 8 bits" true
    (contains "p_data : in std_logic_vector(7 downto 0)" text);
  (* The architecture is a wrapper with no clocked process. *)
  check_bool "no process in fifo arch" true
    (not (contains "process" (Codegen.container_architecture rbuffer_fifo_cfg)))

let test_figure5_rbuffer_sram () =
  let text = Codegen.generate_container rbuffer_sram_cfg in
  (* Figure 5's delta: the SRAM implementation interface. *)
  check_bool "p_addr 16 bits" true
    (contains "p_addr : out std_logic_vector(15 downto 0)" text);
  check_bool "p_data 8 bits" true
    (contains "p_data : in std_logic_vector(7 downto 0)" text);
  check_bool "req out" true (contains "req : out std_logic" text);
  check_bool "ack in" true (contains "ack : in std_logic" text);
  (* The paper: "a little finite state machine ... begin and end
     pointers of the queue (implemented as a circular buffer)". *)
  let arch = Codegen.container_architecture rbuffer_sram_cfg in
  check_bool "has fsm" true (contains "state" arch);
  check_bool "has pointers" true
    (contains "ptr_begin" arch && contains "ptr_end" arch);
  check_bool "clocked" true (contains "rising_edge(clk)" arch)

let test_functional_interface_identical_across_targets () =
  (* The whole point of the pattern: the functional interface does not
     change when the target does. *)
  let f_fifo = port_names (Codegen.functional_ports rbuffer_fifo_cfg) in
  let f_sram = port_names (Codegen.functional_ports rbuffer_sram_cfg) in
  Alcotest.(check (list string)) "same functional ports" f_fifo f_sram

let test_pruning_removes_ports () =
  let full =
    Config.make ~instance_name:"q" ~kind:Metamodel.Queue
      ~target:Metamodel.Fifo_core ~elem_width:8 ~depth:16 ()
  in
  let read_only =
    Config.make ~instance_name:"q" ~kind:Metamodel.Queue
      ~target:Metamodel.Fifo_core ~elem_width:8 ~depth:16
      ~ops_used:[ Metamodel.Read; Metamodel.Inc ] ()
  in
  let full_ports = port_names (Codegen.functional_ports full) in
  let ro_ports = port_names (Codegen.functional_ports read_only) in
  check_bool "full has push" true (List.mem "m_push" full_ports);
  check_bool "pruned drops push" true (not (List.mem "m_push" ro_ports));
  check_bool "pruned drops data in" true (not (List.mem "a_data" ro_ports));
  check_bool "pruned keeps pop" true (List.mem "m_pop" ro_ports);
  check_bool "fewer ports" true (List.length ro_ports < List.length full_ports)

let test_iterator_is_wrapper () =
  let arch =
    Codegen.generate_iterator rbuffer_fifo_cfg
  in
  check_bool "entity" true (contains "entity rbuffer_it is" arch);
  check_bool "renames only" true (contains "renames signals only" arch);
  check_bool "fused pop" true (contains "c_m_pop <= it_read and it_inc;" arch);
  check_bool "no process" true (not (contains "process" arch))

(* --- Lint ------------------------------------------------------------ *)

let all_configs =
  List.concat_map
    (fun kind ->
      List.map
        (fun target ->
          Config.make
            ~instance_name:(String.map (fun c -> if c = ' ' || c = '.' then '_' else c)
                              (Metamodel.container_name kind))
            ~kind ~target ~elem_width:8 ~depth:64 ())
        (Metamodel.legal_targets kind))
    Metamodel.all_containers

let test_all_generated_lint_clean () =
  List.iter
    (fun cfg ->
      let text = Codegen.generate_container cfg in
      let issues = Vhdl_lint.check text in
      if issues <> [] then
        Alcotest.failf "%s: %s" (Config.entity_name cfg)
          (String.concat "; "
             (List.map (fun i -> i.Vhdl_lint.message) issues)))
    all_configs

let test_all_iterators_lint_clean () =
  List.iter
    (fun cfg ->
      let text = Codegen.generate_iterator cfg in
      if not (Vhdl_lint.is_clean text) then
        Alcotest.failf "iterator for %s fails lint" (Config.entity_name cfg))
    all_configs

let test_lint_catches_errors () =
  let bad_balance = "entity x is\nend x;\nprocess (clk)\nbegin\n" in
  check_bool "unbalanced process" true (not (Vhdl_lint.is_clean bad_balance));
  let undeclared =
    "entity x is\n  port (\n    a : in std_logic\n  );\nend x;\n\
     architecture rtl of x is\nbegin\n  ghost <= a;\nend rtl;\n"
  in
  check_bool "undeclared lhs" true (not (Vhdl_lint.is_clean undeclared));
  let wrong_entity =
    "entity x is\nend x;\narchitecture rtl of y is\nbegin\nend rtl;\n"
  in
  check_bool "unknown entity" true (not (Vhdl_lint.is_clean wrong_entity));
  let clean =
    "entity x is\n  port (\n    a : in std_logic;\n    b : out std_logic\n  );\n\
     end x;\narchitecture rtl of x is\nbegin\n  b <= a;\nend rtl;\n"
  in
  check_bool "clean accepted" true (Vhdl_lint.is_clean clean);
  (* Referencing an identifier that is never declared must be caught —
     the failure mode that once slipped a wrong method strobe into the
     vector templates. *)
  let ghost_rhs =
    "entity x is\n  port (\n    a : in std_logic;\n    b : out std_logic\n  );\n\
     end x;\narchitecture rtl of x is\nbegin\n  b <= a and m_pop;\nend rtl;\n"
  in
  check_bool "undeclared rhs reference" true (not (Vhdl_lint.is_clean ghost_rhs))

let test_package_generation () =
  let configs =
    [
      rbuffer_fifo_cfg;
      rbuffer_sram_cfg;
      Config.make ~instance_name:"wbuffer" ~kind:Metamodel.Write_buffer
        ~target:Metamodel.Fifo_core ~elem_width:8 ~depth:512 ();
    ]
  in
  let text = Codegen.generate_package ~name:"basic_components" configs in
  check_bool "package header" true (contains "package basic_components is" text);
  check_bool "package end" true (contains "end basic_components;" text);
  check_bool "component rbuffer_fifo" true (contains "component rbuffer_fifo" text);
  check_bool "component rbuffer_sram" true (contains "component rbuffer_sram" text);
  check_bool "component wbuffer_fifo" true (contains "component wbuffer_fifo" text);
  check_int "three components" 3
    (let rec count i acc =
       if i + 10 > String.length text then acc
       else if String.sub text i 10 = "component " then count (i + 1) (acc + 1)
       else count (i + 1) acc
     in
     count 0 0)

let test_multiword_generates_word_machinery () =
  let cfg =
    Config.make ~instance_name:"rgb" ~kind:Metamodel.Queue
      ~target:Metamodel.Ext_sram ~elem_width:24 ~bus_width:8 ~depth:256 ()
  in
  let arch = Codegen.container_architecture cfg in
  check_bool "word counter" true (contains "word_idx" arch);
  check_bool "shift register" true (contains "shreg" arch);
  let narrow =
    Config.make ~instance_name:"g" ~kind:Metamodel.Queue
      ~target:Metamodel.Ext_sram ~elem_width:8 ~depth:256 ()
  in
  check_bool "no word counter when widths match" true
    (not (contains "word_idx" (Codegen.container_architecture narrow)))


(* --- Generated protection hardware ----------------------------------- *)

let protected_queue_cfg =
  Config.make ~instance_name:"pqueue" ~kind:Metamodel.Queue
    ~target:Metamodel.Ext_sram ~elem_width:8 ~depth:64 ~parity:true
    ~op_timeout:16 ()

let test_protected_container_golden () =
  let text = Codegen.generate_container protected_queue_cfg in
  (* Structural lint including the protection-specific checks. *)
  (match Vhdl_lint.check_protected ~parity:true ~op_timeout:true text with
  | [] -> ()
  | issues ->
    Alcotest.failf "protected queue fails lint: %s"
      (String.concat "; " (List.map (fun i -> i.Vhdl_lint.message) issues)));
  check_bool "err port" true (contains "err : out std_logic" text);
  check_bool "timeout port" true (contains "timeout : out std_logic" text);
  check_bool "parity store" true (contains "signal par_mem" text);
  check_bool "parity reduction" true (contains "par_wr <= xor p_wdata;" text);
  check_bool "watchdog counter" true (contains "signal wd_cnt" text);
  check_bool "watchdog window" true
    (contains "if wd_cnt = to_unsigned(16, wd_cnt'length) then" text);
  check_bool "sticky err drive" true (contains "err <= err_r;" text);
  check_bool "sticky timeout drive" true (contains "timeout <= timeout_r;" text)

let test_unprotected_container_has_no_protection () =
  let cfg =
    Config.make ~instance_name:"pqueue" ~kind:Metamodel.Queue
      ~target:Metamodel.Ext_sram ~elem_width:8 ~depth:64 ()
  in
  let text = Codegen.generate_container cfg in
  (match Vhdl_lint.check_protected ~parity:false ~op_timeout:false text with
  | [] -> ()
  | issues ->
    Alcotest.failf "unprotected queue fails lint: %s"
      (String.concat "; " (List.map (fun i -> i.Vhdl_lint.message) issues)));
  check_bool "no err port" true (not (contains "err : out std_logic" text));
  check_bool "no timeout port" true (not (contains "timeout : out std_logic" text));
  check_bool "no parity store" true (not (contains "par_mem" text));
  check_bool "no watchdog" true (not (contains "wd_cnt" text))

let test_protected_configs_lint_clean () =
  (* Every legal (kind, target, protection) combination generates clean
     VHDL with the declared error ports. *)
  List.iter
    (fun kind ->
      List.iter
        (fun target ->
          let prots = Metamodel.legal_protections target in
          let parity = List.mem Metamodel.Parity prots in
          let wd = List.mem Metamodel.Op_watchdog prots in
          if parity || wd then begin
            let cfg =
              Config.make
                ~instance_name:
                  (String.map
                     (fun c -> if c = ' ' || c = '.' then '_' else c)
                     (Metamodel.container_name kind))
                ~kind ~target ~elem_width:8 ~depth:64 ~parity
                ?op_timeout:(if wd then Some 8 else None) ()
            in
            let text = Codegen.generate_container cfg in
            match Vhdl_lint.check_protected ~parity ~op_timeout:wd text with
            | [] -> ()
            | issues ->
              Alcotest.failf "%s: %s" (Config.entity_name cfg)
                (String.concat "; "
                   (List.map (fun i -> i.Vhdl_lint.message) issues))
          end)
        (Metamodel.legal_targets kind))
    Metamodel.all_containers

let test_protection_config_validation () =
  let bad f = match f () with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  check_bool "parity on fifo rejected" true
    (bad (fun () ->
         Config.make ~instance_name:"q" ~kind:Metamodel.Queue
           ~target:Metamodel.Fifo_core ~elem_width:8 ~depth:64 ~parity:true ()));
  check_bool "watchdog on bram rejected" true
    (bad (fun () ->
         Config.make ~instance_name:"q" ~kind:Metamodel.Queue
           ~target:Metamodel.Block_ram ~elem_width:8 ~depth:64 ~op_timeout:8 ()));
  check_bool "zero timeout rejected" true
    (bad (fun () ->
         Config.make ~instance_name:"q" ~kind:Metamodel.Queue
           ~target:Metamodel.Ext_sram ~elem_width:8 ~depth:64 ~op_timeout:0 ()));
  check_bool "parity on bram accepted" true
    (not
       (bad (fun () ->
            Config.make ~instance_name:"q" ~kind:Metamodel.Queue
              ~target:Metamodel.Block_ram ~elem_width:8 ~depth:64 ~parity:true ())));
  check_bool "describe mentions protection" true
    (contains "parity + watchdog 16" (Config.describe protected_queue_cfg))

(* --- Algorithm metamodels (the paper's future-work extension) -------- *)

let test_algorithm_meta_copy () =
  let text = Algorithm_meta.generate (Algorithm_meta.copy ~elem_width:8) in
  check_bool "entity" true (contains "entity copy is" text);
  check_bool "src ports" true (contains "src_read : out std_logic" text);
  check_bool "dst ports" true (contains "dst_write : out std_logic" text);
  check_bool "handshake" true (contains "if src_ack = '1' then" text);
  check_bool "loops forever" true (contains "state <= st_0" text);
  check_bool "lints clean" true (Vhdl_lint.is_clean text)

let test_algorithm_meta_transform () =
  let t = Algorithm_meta.transform ~elem_width:8 ~expr:"not data" in
  let text = Algorithm_meta.generate t in
  check_bool "expression applied at the store port" true
    (contains "dst_data <= (not data);" text);
  check_bool "lints clean" true (Vhdl_lint.is_clean text);
  (* Chained applies compose textually. *)
  let chained =
    {
      Algorithm_meta.algorithm_name = "chain";
      elem_width = 8;
      body =
        [
          Algorithm_meta.Fetch "src";
          Algorithm_meta.Apply "not data";
          Algorithm_meta.Apply "data and mask";
          Algorithm_meta.Store "dst";
        ];
    }
  in
  let text = Algorithm_meta.generate chained in
  check_bool "composition" true (contains "((not data) and mask)" text)

let test_algorithm_meta_validation () =
  let bad body =
    match
      Algorithm_meta.validate
        { Algorithm_meta.algorithm_name = "bad"; elem_width = 8; body }
    with
    | Error _ -> true
    | Ok () -> false
  in
  check_bool "empty body rejected" true (bad []);
  check_bool "store before fetch rejected" true (bad [ Algorithm_meta.Store "dst" ]);
  check_bool "duplicate iterator rejected" true
    (bad [ Algorithm_meta.Fetch "x"; Algorithm_meta.Store "x" ]);
  check_bool "copy validates" true
    (Algorithm_meta.validate (Algorithm_meta.copy ~elem_width:8) = Ok ());
  Alcotest.(check (list (pair string (Alcotest.testable (fun fmt d -> Format.pp_print_string fmt (match d with `Input -> "in" | `Output -> "out")) ( = )))))
    "iterators" [ ("src", `Input); ("dst", `Output) ]
    (Algorithm_meta.iterators (Algorithm_meta.copy ~elem_width:8))

let () =
  Alcotest.run "meta"
    [
      ( "metamodel",
        [
          Alcotest.test_case "table 1" `Quick test_table1_matches_paper;
          Alcotest.test_case "table 2" `Quick test_table2_operations;
          Alcotest.test_case "rendered tables" `Quick test_rendered_tables;
          Alcotest.test_case "legal targets" `Quick test_legal_targets;
        ] );
      ( "config",
        [
          Alcotest.test_case "defaults" `Quick test_config_defaults;
          Alcotest.test_case "validation" `Quick test_config_validation;
          Alcotest.test_case "multi-word" `Quick test_multi_word;
        ] );
      ( "codegen",
        [
          Alcotest.test_case "figure 4 (rbuffer_fifo)" `Quick test_figure4_rbuffer_fifo;
          Alcotest.test_case "figure 5 (rbuffer_sram)" `Quick test_figure5_rbuffer_sram;
          Alcotest.test_case "interface stable across targets" `Quick
            test_functional_interface_identical_across_targets;
          Alcotest.test_case "pruning" `Quick test_pruning_removes_ports;
          Alcotest.test_case "iterator is a wrapper" `Quick test_iterator_is_wrapper;
          Alcotest.test_case "multi-word machinery" `Quick
            test_multiword_generates_word_machinery;
          Alcotest.test_case "foundation package" `Quick test_package_generation;
        ] );
      ( "algorithm metamodels",
        [
          Alcotest.test_case "copy" `Quick test_algorithm_meta_copy;
          Alcotest.test_case "transform + composition" `Quick
            test_algorithm_meta_transform;
          Alcotest.test_case "validation" `Quick test_algorithm_meta_validation;
        ] );
      ( "lint",
        [
          Alcotest.test_case "all containers clean" `Quick test_all_generated_lint_clean;
          Alcotest.test_case "all iterators clean" `Quick test_all_iterators_lint_clean;
          Alcotest.test_case "catches errors" `Quick test_lint_catches_errors;
        ] );
      ( "protection",
        [
          Alcotest.test_case "protected queue golden" `Quick
            test_protected_container_golden;
          Alcotest.test_case "unprotected has none" `Quick
            test_unprotected_container_has_no_protection;
          Alcotest.test_case "all protected configs clean" `Quick
            test_protected_configs_lint_clean;
          Alcotest.test_case "config validation" `Quick
            test_protection_config_validation;
        ] );
    ]
