User errors must come back as a one-line `hwpat: ...` diagnostic
naming the valid choices, with the conventional usage-error exit
code 2 — not an uncaught exception with a backtrace and exit 125.

An unknown design:

  $ hwpat simulate --design nope
  hwpat: unknown design "nope" (valid: saa2vga-fifo, saa2vga-sram, blur, sobel)
  [2]

An unknown style:

  $ hwpat simulate --design blur --style baroque
  hwpat: unknown style "baroque" (valid: pattern, custom)
  [2]

An unknown simulation engine:

  $ hwpat simulate --design blur --engine turbo
  hwpat: unknown engine "turbo" (valid: compiled, reference)
  [2]

An unknown frame pattern:

  $ hwpat simulate --design blur --pattern plaid
  hwpat: unknown pattern "plaid" (valid: gradient, checker, random, bars)
  [2]

An unknown netlist language:

  $ hwpat emit --lang cobol
  hwpat: unknown language "cobol" (valid: vhdl, verilog, dot)
  [2]

Resilience flags: --resume is meaningless without a journal to resume
from, and negative supervision parameters are rejected up front.

  $ hwpat faultsim --resume
  hwpat: --resume requires --checkpoint
  [2]

  $ hwpat prove --smoke --retries=-1
  hwpat: --retries must be non-negative
  [2]

  $ hwpat sweep --shard-timeout=-2.5
  hwpat: --shard-timeout must be non-negative
  [2]

A checkpointed campaign journals every fault and resumes to the same
bytes.  (Campaign output is seed-deterministic, so the transcript is
stable.)

  $ hwpat faultsim --design saa2vga_sram_pattern --faults 2 --frame-size 4 \
  >   --jobs 1 --checkpoint ck.jsonl > first.txt
  $ grep -c '"key"' ck.jsonl
  2
  $ hwpat faultsim --design saa2vga_sram_pattern --faults 2 --frame-size 4 \
  >   --jobs 1 --checkpoint ck.jsonl --resume > second.txt
  $ cmp first.txt second.txt && echo byte-identical
  byte-identical

Resuming under a different campaign configuration is refused — the
journal is bound to the design, seed, fault count and frame size that
wrote it:

  $ hwpat faultsim --design saa2vga_sram_pattern --faults 3 --frame-size 4 \
  >   --jobs 1 --checkpoint ck.jsonl --resume
  hwpat: checkpoint ck.jsonl was written by a different campaign
    expected: faultsim design=saa2vga_sram_pattern seed=1 faults=3 frame=4x4
    found:    faultsim design=saa2vga_sram_pattern seed=1 faults=2 frame=4x4
  Pass a fresh --checkpoint path, or drop --resume to overwrite it.
  [2]

A file that is not a checkpoint journal is rejected, not overwritten:

  $ echo "precious data" > notes.txt
  $ hwpat faultsim --design saa2vga_sram_pattern --faults 2 --frame-size 4 \
  >   --checkpoint notes.txt --resume
  hwpat: checkpoint notes.txt is not a hwpat checkpoint journal
  [2]
  $ cat notes.txt
  precious data

A --shard-timeout that no shard can meet still terminates: every
fault is reported unfinished (exit 0 — nothing went silent, nothing
hung).

  $ hwpat faultsim --design saa2vga_sram_pattern --faults 2 --frame-size 4 \
  >   --jobs 1 --retries 0 --shard-timeout 0.000001 | grep 'faults:'
    faults: 2   detected: 0   masked: 0   silent: 0   unfinished: 2

An exhausted solver budget is an honest [UNK] and exit 1 — and the
portfolio path reports the exact same verdicts, statuses and exit
code as the single-solver path (the final racing round IS the user's
cap, and racer 0 wins all-indefinitive ties).  Only the wall-clock
suffix differs.

  $ hwpat prove --smoke --solver-budget 1/1 --jobs 1 > single.raw
  [1]
  $ hwpat prove --smoke --portfolio --solver-budget 1/1 --jobs 2 > racing.raw
  [1]
  $ sed -E 's/ \([0-9.]+s\)$//' single.raw > single.txt
  $ sed -E 's/ \([0-9.]+s\)$//' racing.raw > racing.txt
  $ cmp single.txt racing.txt && echo identical
  identical
  $ grep -c '^\[UNK\].*solver budget exhausted' single.txt
  7
  $ grep 'prove:' single.txt
  prove: 13 obligations, 6 proved, 0 failed, 7 unknown

A portfolio needs 2..4 configurations:

  $ hwpat prove --smoke --portfolio=7
  hwpat: --portfolio must be 2..4 (got 7)
  [2]
