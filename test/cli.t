User errors must come back as a one-line `hwpat: ...` diagnostic
naming the valid choices, with the conventional usage-error exit
code 2 — not an uncaught exception with a backtrace and exit 125.

An unknown design:

  $ hwpat simulate --design nope
  hwpat: unknown design "nope" (valid: saa2vga-fifo, saa2vga-sram, blur, sobel)
  [2]

An unknown style:

  $ hwpat simulate --design blur --style baroque
  hwpat: unknown style "baroque" (valid: pattern, custom)
  [2]

An unknown simulation engine:

  $ hwpat simulate --design blur --engine turbo
  hwpat: unknown engine "turbo" (valid: compiled, reference)
  [2]

An unknown frame pattern:

  $ hwpat simulate --design blur --pattern plaid
  hwpat: unknown pattern "plaid" (valid: gradient, checker, random, bars)
  [2]

An unknown netlist language:

  $ hwpat emit --lang cobol
  hwpat: unknown language "cobol" (valid: vhdl, verilog, dot)
  [2]
