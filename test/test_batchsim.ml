(* The bit-parallel batched simulation engine ({!Hwpat_rtl.Simbatch})
   and its consumers:
   - lane isolation: a fault (force, state poke) applied to one lane
     must not perturb any other lane, at any cycle;
   - batched fault campaigns are byte-identical to the scalar engine's
     at any lane count (1, 3, 64) and any job count;
   - checkpoint/resume composes with batching, including a journal
     written by a *scalar* campaign resumed by a batched one;
   - a zero-length checkpoint resumed is a fresh run with an explicit
     note, not a config mismatch;
   - {!Hwpat_core.Characterize.selfcheck} pins the batched engine to
     the naive oracle on a real container harness;
   - the API rejects out-of-range lanes and reference-engine plans. *)

open Hwpat_rtl
open Hwpat_rtl.Signal
open Hwpat_core

(* A small design with every stateful element the batched engine
   treats specially: a register with enable, an async and a sync
   memory read port, and combinational logic over all of them. *)
let build_small () =
  let d = input "d" 8 and en = input "en" 1 in
  let acc = reg_fb ~width:8 ~enable:en (fun q -> q +: d) in
  let m = create_memory ~size:16 ~width:8 () in
  mem_write_port m ~enable:en ~addr:(select acc ~high:3 ~low:0) ~data:d;
  let rd_sync = mem_read_sync m ~addr:(select d ~high:3 ~low:0) () in
  let rd_async = mem_read_async m ~addr:(select d ~high:3 ~low:0) in
  Circuit.create_exn ~name:"batch_small"
    [
      ("acc", acc);
      ("rd_sync", rd_sync);
      ("rd_async", rd_async);
      ("sum", acc +: d);
    ]

(* Drive lane [l] of the batch and its scalar oracle with the same
   per-lane random stimulus; any divergence on any output port fails.
   Mid-run, lane 1 (and only lane 1) is forced and state-poked — with
   the identical fault applied to lane 1's oracle, so every lane must
   *still* match its oracle: the fault lands where aimed and leaks
   nowhere else. *)
let test_lane_isolation () =
  let circuit = build_small () in
  let lanes = 4 in
  let batch = Cyclesim.instantiate_batched ~lanes (Cyclesim.plan circuit) in
  let views = Array.init lanes (Cyclesim.lane_view batch) in
  let oracles = Array.init lanes (fun _ -> Cyclesim.create circuit) in
  let rngs = Array.init lanes (fun l -> Random.State.make [| 0xb5a + l |]) in
  let sum_signal = List.assoc "sum" (Circuit.outputs circuit) in
  let acc_reg = List.hd (Circuit.registers circuit) in
  let compare_all cycle =
    Array.iteri
      (fun l view ->
        List.iter
          (fun (name, _) ->
            let got = !(Cyclesim.out_port view name) in
            let want = !(Cyclesim.out_port oracles.(l) name) in
            if not (Bits.equal got want) then
              Alcotest.failf "lane %d cycle %d port %s: batched %s, scalar %s"
                l cycle name (Bits.to_string got) (Bits.to_string want))
          (Circuit.outputs circuit))
      views
  in
  for cycle = 1 to 60 do
    for l = 0 to lanes - 1 do
      let d = Bits.of_int ~width:8 (Random.State.int rngs.(l) 256) in
      let en = Bits.of_int ~width:1 (Random.State.int rngs.(l) 2) in
      Cyclesim.drive views.(l) "d" d;
      Cyclesim.drive oracles.(l) "d" d;
      Cyclesim.drive views.(l) "en" en;
      Cyclesim.drive oracles.(l) "en" en
    done;
    (* The fault window: a stuck-at on [sum] and a register bit-flip,
       in lane 1 only. *)
    if cycle = 20 then begin
      let stuck = Bits.of_int ~width:8 0xa5 in
      Cyclesim.force views.(1) sum_signal stuck;
      Cyclesim.force oracles.(1) sum_signal stuck
    end;
    if cycle = 25 then begin
      let flip sim =
        Cyclesim.poke_state sim acc_reg
          (Bits.logxor (Cyclesim.peek_state sim acc_reg)
             (Bits.of_int ~width:8 0x40))
      in
      flip views.(1);
      flip oracles.(1)
    end;
    if cycle = 40 then begin
      Cyclesim.release views.(1) sum_signal;
      Cyclesim.release oracles.(1) sum_signal
    end;
    Cyclesim.cycle views.(0);
    Array.iter Cyclesim.cycle oracles;
    compare_all cycle;
    (* While the force is in, lane 1 must actually show it... *)
    if cycle >= 20 && cycle < 40 then
      Alcotest.(check string)
        "lane 1 sum is forced" "10100101"
        (Bits.to_string !(Cyclesim.out_port views.(1) "sum"))
  done;
  (* ...and the healthy lanes never did: their oracles were never
     faulted, so compare_all already proved isolation every cycle. *)
  Alcotest.(check bool) "batch ran" true (Cyclesim.cycle_count views.(0) = 60)

(* --- Campaign byte-identity ---------------------------------------------- *)

let campaign ?lanes ?checkpoint ?(resume = false) ~jobs () =
  Faultsim.run_campaign ?lanes ?checkpoint ~resume ~jobs ~seed:5 ~faults:10
    ~frame_width:6 ~frame_height:6
    ~build:(Faultsim.find_design "saa2vga_sram_pattern")
    ~design:"saa2vga_sram_pattern" ()

let test_lane_count_byte_identity () =
  let reference = Faultsim.summary_to_json (campaign ~jobs:2 ()) in
  List.iter
    (fun lanes ->
      Alcotest.(check string)
        (Printf.sprintf "lanes:%d = scalar" lanes)
        reference
        (Faultsim.summary_to_json (campaign ~lanes ~jobs:2 ())))
    [ 1; 3; 64 ]

(* With 10 faults and 3 lanes the campaign is 4 batches — enough to
   shard unevenly across 4 domains. *)
let test_batched_jobs_deterministic () =
  let run jobs = Faultsim.summary_to_json (campaign ~lanes:3 ~jobs ()) in
  Alcotest.(check string) "batched jobs:1 = jobs:4" (run 1) (run 4)

(* --- Checkpoint/resume over the batched path ----------------------------- *)

let with_temp_path f =
  let path = Filename.temp_file "hwpat_test_batch" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

(* A journal written by the *scalar* engine, torn mid-write, resumed
   by a *batched* campaign: the journal keys and the campaign config
   string exclude the engine and lane count, so the batched run
   replays the scalar verdicts and re-runs only the missing faults —
   byte-identically. *)
let test_scalar_journal_batched_resume () =
  let reference = Faultsim.summary_to_json (campaign ~jobs:2 ()) in
  with_temp_path @@ fun path ->
  ignore (campaign ~checkpoint:path ~jobs:2 ());
  let lines =
    let ic = open_in path in
    Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
    let acc = ref [] in
    (try
       while true do
         acc := input_line ic :: !acc
       done
     with End_of_file -> ());
    List.rev !acc
  in
  Alcotest.(check bool) "journal has records" true (List.length lines > 4);
  with_temp_path @@ fun partial ->
  let oc = open_out partial in
  List.iteri
    (fun i line ->
      if i <= 3 then (output_string oc line; output_char oc '\n'))
    lines;
  output_string oc "{\"key\": \"torn";
  close_out oc;
  let resumed = campaign ~checkpoint:partial ~resume:true ~lanes:4 ~jobs:2 () in
  Alcotest.(check string)
    "scalar journal + batched resume is byte-identical" reference
    (Faultsim.summary_to_json resumed)

(* A zero-length checkpoint (killed before the header flushed) resumed
   must behave exactly like a fresh run — with a note, never a
   Config_mismatch — on the batched path too. *)
let test_empty_checkpoint_fresh_run () =
  let reference = Faultsim.summary_to_json (campaign ~jobs:2 ()) in
  with_temp_path @@ fun path ->
  close_out (open_out path) (* truncate to zero length *);
  let resumed = campaign ~checkpoint:path ~resume:true ~lanes:4 ~jobs:2 () in
  Alcotest.(check string)
    "empty checkpoint resumes as a fresh run" reference
    (Faultsim.summary_to_json resumed)

let contains hay needle =
  let hl = String.length hay and nl = String.length needle in
  let rec go i =
    i + nl <= hl && (String.sub hay i nl = needle || go (i + 1))
  in
  go 0

let test_journal_note () =
  with_temp_path @@ fun path ->
  close_out (open_out path);
  let j = Journal.start ~path ~config:"c" ~resume:true in
  Journal.close j;
  Alcotest.(check int) "nothing replayed" 0 (Journal.resumed j);
  (match Journal.note j with
  | Some note ->
    Alcotest.(check bool)
      "note says the checkpoint was empty" true (contains note "was empty")
  | None -> Alcotest.fail "expected a note for an empty checkpoint");
  (* A fresh (non-resume) start and a resume of a *valid* journal get
     no note. *)
  with_temp_path @@ fun path2 ->
  let j2 = Journal.start ~path:path2 ~config:"c" ~resume:false in
  Journal.close j2;
  Alcotest.(check bool) "fresh start has no note" true (Journal.note j2 = None);
  let j3 = Journal.start ~path:path2 ~config:"c" ~resume:true in
  Journal.close j3;
  Alcotest.(check bool) "valid resume has no note" true (Journal.note j3 = None)

(* --- The Characterize consumer ------------------------------------------- *)

(* 64 random stimulus lanes on a queue-over-FIFO harness, naive engine
   as the per-lane oracle. The return value counts per-lane port
   comparisons: lanes * cycles * ports. *)
let test_characterize_selfcheck () =
  let point =
    {
      Characterize.container = "queue";
      target = "fifo";
      elem_width = 8;
      depth = 64;
      wait_states = 1;
    }
  in
  let checks = Characterize.selfcheck ~cycles:12 ~seed:3 point in
  Alcotest.(check int) "comparison count" (64 * 12 * 5) checks

(* --- API edges ----------------------------------------------------------- *)

let test_api_edges () =
  let circuit = build_small () in
  let plan = Cyclesim.plan circuit in
  let raises f =
    match f () with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "lanes:0 rejected" true
    (raises (fun () -> Cyclesim.instantiate_batched ~lanes:0 plan));
  Alcotest.(check bool) "lanes:65 rejected" true
    (raises (fun () -> Cyclesim.instantiate_batched ~lanes:65 plan));
  Alcotest.(check bool) "reference plan rejected" true
    (raises (fun () ->
         Cyclesim.instantiate_batched
           (Cyclesim.plan ~engine:Cyclesim.Reference circuit)));
  let batch = Cyclesim.instantiate_batched ~lanes:2 plan in
  Alcotest.(check bool) "lane out of range rejected" true
    (raises (fun () -> Cyclesim.lane_view batch 2));
  Alcotest.(check bool) "negative lane rejected" true
    (raises (fun () -> Cyclesim.lane_view batch (-1)));
  Alcotest.(check bool) "faultsim rejects reference+lanes" true
    (raises (fun () ->
         Faultsim.run_campaign ~engine:Cyclesim.Reference ~lanes:4 ~jobs:1
           ~seed:5 ~faults:2 ~frame_width:6 ~frame_height:6
           ~build:(Faultsim.find_design "saa2vga_sram_pattern")
           ~design:"saa2vga_sram_pattern" ()))

let () =
  Alcotest.run "batchsim"
    [
      ( "engine",
        [
          Alcotest.test_case "faults stay in their lane" `Quick
            test_lane_isolation;
          Alcotest.test_case "api edges" `Quick test_api_edges;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "lanes 1/3/64 byte-identical to scalar" `Quick
            test_lane_count_byte_identity;
          Alcotest.test_case "batched jobs:1 = jobs:4" `Quick
            test_batched_jobs_deterministic;
          Alcotest.test_case "scalar journal, batched resume" `Quick
            test_scalar_journal_batched_resume;
          Alcotest.test_case "empty checkpoint resumes fresh" `Quick
            test_empty_checkpoint_fresh_run;
          Alcotest.test_case "empty checkpoint sets the journal note" `Quick
            test_journal_note;
        ] );
      ( "characterize",
        [
          Alcotest.test_case "64-lane selfcheck vs naive oracle" `Quick
            test_characterize_selfcheck;
        ] );
    ]
