open Hwpat_rtl
open Hwpat_rtl.Signal
open Hwpat_synthesis

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_wiring_is_free () =
  let a = input "a" 8 in
  (* A pure wrapper: renames, slices and regroups — like an iterator. *)
  let wrapped =
    let w = wire 8 in
    w <== a;
    concat_msb [ select w ~high:7 ~low:4; select w ~high:3 ~low:0 ] -- "renamed"
  in
  let c = Circuit.create_exn ~name:"wrapper" [ ("y", ~:wrapped) ] in
  let r = Techmap.estimate c in
  check_int "wrapper costs nothing" 0 r.Techmap.luts;
  check_int "no ffs" 0 r.Techmap.ffs

let test_register_cost () =
  let q = reg (input "d" 13) in
  let c = Circuit.create_exn ~name:"r" [ ("q", q) ] in
  check_int "ff per bit" 13 (Techmap.estimate c).Techmap.ffs

let test_adder_cost () =
  let s = input "a" 16 +: input "b" 16 in
  let c = Circuit.create_exn ~name:"a" [ ("s", s) ] in
  check_int "carry chain" 16 (Techmap.estimate c).Techmap.luts

let test_mux_cost () =
  let m = mux (input "s" 2) [ input "a" 8; input "b" 8; input "c" 8; input "d" 8 ] in
  let c = Circuit.create_exn ~name:"m" [ ("y", m) ] in
  (* 3 2:1 muxes per bit, packed in pairs -> 2 per bit. *)
  check_int "mux packing" 16 (Techmap.estimate c).Techmap.luts

let test_bram_vs_lutram () =
  let build sync =
    let m = create_memory ~size:64 ~width:8 () in
    mem_write_port m ~enable:(input "we" 1) ~addr:(input "wa" 6)
      ~data:(input "wd" 8);
    let rd =
      if sync then mem_read_sync m ~addr:(input "ra" 6) ()
      else mem_read_async m ~addr:(input "ra" 6)
    in
    Circuit.create_exn ~name:"m" [ ("rd", rd) ]
  in
  let sync_r = Techmap.estimate (build true) in
  check_int "sync -> 1 bram" 1 sync_r.Techmap.brams;
  check_int "sync -> no lutram" 0 sync_r.Techmap.lutram_luts;
  let async_r = Techmap.estimate (build false) in
  check_int "async -> no bram" 0 async_r.Techmap.brams;
  (* 64x8 = 512 bits over 16-bit LUTs = 32 LUTs. *)
  check_int "async -> lutram" 32 async_r.Techmap.lutram_luts

let test_bram_width_splitting () =
  let m = create_memory ~size:128 ~width:32 () in
  mem_write_port m ~enable:(input "we" 1) ~addr:(input "wa" 7)
    ~data:(input "wd" 32);
  let rd = mem_read_sync m ~addr:(input "ra" 7) () in
  let c = Circuit.create_exn ~name:"wide" [ ("rd", rd) ] in
  (* 32-bit data needs two 16-bit-wide BRAM slices. *)
  check_int "split by width" 2 (Techmap.estimate c).Techmap.brams

let test_timing_deeper_is_slower () =
  let a = input "a" 8 and b = input "b" 8 in
  let shallow = Circuit.create_exn ~name:"sh" [ ("y", a +: b) ] in
  let deep =
    Circuit.create_exn ~name:"dp" [ ("y", a +: b +: a +: b +: a +: b +: a) ]
  in
  let t1 = Timing.analyze shallow and t2 = Timing.analyze deep in
  check_bool "deep slower" true (t2.Timing.fmax_mhz < t1.Timing.fmax_mhz);
  check_bool "levels grow" true (t2.Timing.logic_levels > t1.Timing.logic_levels);
  check_bool "positive fmax" true (t1.Timing.fmax_mhz > 0.0)

let test_timing_register_cuts_path () =
  let a = input "a" 8 and b = input "b" 8 in
  let long = a +: b +: a +: b +: a in
  let cut = reg (a +: b) +: reg (a +: b) +: reg a in
  let t_long = Timing.analyze (Circuit.create_exn ~name:"l" [ ("y", long) ]) in
  let t_cut = Timing.analyze (Circuit.create_exn ~name:"c" [ ("y", cut) ]) in
  check_bool "pipelining helps" true (t_cut.Timing.fmax_mhz > t_long.Timing.fmax_mhz)

let test_timing_plausible_range () =
  (* A simple stream datapath should land in the tens-of-MHz range the
     paper reports (96-98 MHz) — not 1 MHz, not 1 GHz. *)
  let a = input "a" 8 in
  let q = reg (mux2 (input "en" 1) (a +: one 8) a) in
  let t = Timing.analyze (Circuit.create_exn ~name:"p" [ ("q", q) ]) in
  check_bool "plausible" true (t.Timing.fmax_mhz > 50.0 && t.Timing.fmax_mhz < 250.0)

let test_board () =
  let b = Board.xsb300e in
  check_int "waits at 100 MHz" 0 (Board.sram_wait_states b ~clock_mhz:100.0);
  check_int "waits at 200 MHz" 1 (Board.sram_wait_states b ~clock_mhz:200.0);
  check_int "waits at 50 MHz" 0 (Board.sram_wait_states b ~clock_mhz:50.0);
  check_bool "bram capacity" true (b.Board.bram_bits = 4096)

let test_power_counts_activity () =
  let en = input "en" 1 in
  let q = reg_fb ~width:8 ~enable:en (fun q -> q +: one 8) in
  let c = Circuit.create_exn ~name:"p" [ ("q", q) ] in
  let sim = Cyclesim.create c in
  let run enabled =
    Cyclesim.reset sim;
    let m = Power.monitor sim in
    Cyclesim.in_port sim "en" := Bits.of_int ~width:1 (if enabled then 1 else 0);
    for _ = 1 to 50 do
      Cyclesim.cycle sim;
      Power.sample m
    done;
    (Power.estimate m).Power.dynamic_mw
  in
  let idle = run false and active = run true in
  check_bool "activity raises power" true (active > idle);
  check_bool "idle is near zero" true (idle < 0.2)

let test_design_space () =
  let mk label luts brams cycles mhz mw =
    {
      Design_space.label;
      container = "queue";
      target = label;
      elem_width = 8;
      depth = 512;
      luts;
      ffs = luts;
      brams;
      access_cycles = cycles;
      fmax_mhz = mhz;
      power_mw = mw;
      measured = true;
    }
  in
  (* fifo: fast, costs a BRAM. sram: slow, cheap. bad: dominated. *)
  let fifo = mk "fifo" 40 1 1.0 98.0 40.0 in
  let sram = mk "sram" 60 0 4.0 96.0 35.0 in
  let bad = mk "bad" 300 1 4.0 60.0 80.0 in
  let all = [ fifo; sram; bad ] in
  let front = Design_space.pareto_front all in
  check_int "front size" 2 (List.length front);
  check_bool "bad dominated" true
    (not (List.exists (fun c -> c.Design_space.label = "bad") front));
  let constrained =
    Design_space.region_of_interest
      { Design_space.no_constraints with Design_space.max_brams = Some 0 }
      all
  in
  check_int "only sram without brams" 1 (List.length constrained);
  Alcotest.(check string)
    "it is sram" "sram"
    (List.hd constrained).Design_space.label;
  check_bool "table renders" true
    (String.length (Design_space.to_table all) > 100)

let test_resource_report () =
  let a = input "a" 8 and b = input "b" 8 in
  let pattern = Circuit.create_exn ~name:"pat" [ ("y", reg (a +: b)) ] in
  let custom = Circuit.create_exn ~name:"cus" [ ("y", reg (a +: b)) ] in
  let cmp = Resource_report.compare_pair ~name:"same" pattern custom in
  check_bool "no overhead" true (Resource_report.overhead_percent cmp = 0.0);
  let row = Resource_report.table3_row cmp in
  check_bool "row mentions design" true (String.length row > 20)

let () =
  Alcotest.run "synthesis"
    [
      ( "techmap",
        [
          Alcotest.test_case "wiring is free" `Quick test_wiring_is_free;
          Alcotest.test_case "register cost" `Quick test_register_cost;
          Alcotest.test_case "adder cost" `Quick test_adder_cost;
          Alcotest.test_case "mux cost" `Quick test_mux_cost;
          Alcotest.test_case "bram vs lutram" `Quick test_bram_vs_lutram;
          Alcotest.test_case "bram width split" `Quick test_bram_width_splitting;
        ] );
      ( "timing",
        [
          Alcotest.test_case "deeper is slower" `Quick test_timing_deeper_is_slower;
          Alcotest.test_case "registers cut paths" `Quick
            test_timing_register_cuts_path;
          Alcotest.test_case "plausible range" `Quick test_timing_plausible_range;
        ] );
      ("board", [ Alcotest.test_case "constants" `Quick test_board ]);
      ("power", [ Alcotest.test_case "activity" `Quick test_power_counts_activity ]);
      ("design space", [ Alcotest.test_case "pareto" `Quick test_design_space ]);
      ("report", [ Alcotest.test_case "comparison" `Quick test_resource_report ]);
    ]
