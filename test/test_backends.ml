open Hwpat_rtl
open Hwpat_rtl.Signal

let contains needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let count_substring needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i acc =
    if i + nl > hl then acc
    else if String.sub hay i nl = needle then go (i + 1) (acc + 1)
    else go (i + 1) acc
  in
  go 0 0

(* A circuit exercising every primitive. *)
let full_circuit () =
  let a = input "a" 8 and b = input "b" 8 and sel = input "sel" 2 in
  let m = create_memory ~size:8 ~width:8 ~name:"scratch" () in
  mem_write_port m ~enable:(input "we" 1) ~addr:(input "wa" 3) ~data:a;
  let r_async = mem_read_async m ~addr:(input "ra" 3) in
  let r_sync = mem_read_sync m ~enable:(input "re" 1) ~addr:(input "ra2" 3) () in
  let muxed = mux sel [ a; b; a +: b; a -: b ] -- "muxed" in
  let q =
    reg
      ~enable:(input "en" 1)
      ~clear:(input "clr" 1)
      ~clear_to:(Bits.of_int ~width:8 7)
      muxed
  in
  let cat = concat_msb [ bit a 7; select b ~high:6 ~low:0 ] in
  Circuit.create_exn ~name:"everything"
    [
      ("q", q);
      ("r_async", r_async);
      ("r_sync", r_sync);
      ("cat", cat);
      ("is_eq", a ==: b);
      ("is_lt", a <: b);
      ("inv", ~:a);
      ("prod", a *: b);
      ("bits_or", a |: b);
      ("bits_xor", a ^: b);
    ]

let test_vhdl_structure () =
  let text = Vhdl.to_string (full_circuit ()) in
  let check name cond = Alcotest.(check bool) name true cond in
  check "entity" (contains "entity everything is" text);
  check "architecture" (contains "architecture rtl of everything is" text);
  check "clock port" (contains "clk : in std_logic" text);
  check "libraries" (contains "use ieee.numeric_std.all;" text);
  check "memory type" (contains "array (0 to 7)" text);
  check "rising edge" (contains "rising_edge(clk)" text);
  check "balanced processes"
    (count_substring "process (" text = count_substring "end process;" text);
  check "has mux chain" (contains "to_integer" text);
  check "clear constant" (contains "\"00000111\"" text)

let test_verilog_structure () =
  let text = Verilog.to_string (full_circuit ()) in
  let check name cond = Alcotest.(check bool) name true cond in
  check "module" (contains "module everything (" text);
  check "endmodule" (contains "endmodule" text);
  check "clock" (contains "posedge clk" text);
  check "memory decl" (contains "[0:7]" text);
  check "balanced begin/end"
    (count_substring "begin" text = count_substring "end\n" text)

let test_comb_only_no_clock () =
  let a = input "a" 4 in
  let c = Circuit.create_exn ~name:"nostate" [ ("y", ~:a) ] in
  Alcotest.(check bool) "vhdl: no clk port" false
    (contains "clk : in std_logic" (Vhdl.to_string c));
  Alcotest.(check bool) "verilog: no clk port" false
    (contains "input clk" (Verilog.to_string c))

let test_dot_export () =
  let text = Dot.to_string (full_circuit ()) in
  let check name cond = Alcotest.(check bool) name true cond in
  check "digraph" (contains "digraph everything {" text);
  check "register boxes" (contains "shape=box" text);
  check "edges" (contains " -> " text);
  check "outputs" (contains "out0" text);
  check "closes" (contains "}" text);
  (* every node id referenced in an edge is declared *)
  let lines = String.split_on_char '\n' text in
  let declared =
    List.filter_map
      (fun l ->
        let l = String.trim l in
        if String.length l > 2 && l.[0] = 'n' && contains "[label=" l then
          Some (List.hd (String.split_on_char ' ' l))
        else None)
      lines
  in
  List.iter
    (fun l ->
      let l = String.trim l in
      if contains " -> " l && String.length l > 0 && l.[0] = 'n' then begin
        let src = List.hd (String.split_on_char ' ' l) in
        check ("declared " ^ src) (List.mem src declared)
      end)
    lines

let test_netlist_stats () =
  let c = full_circuit () in
  let stats = Netlist_stats.of_circuit c in
  Alcotest.(check int) "one memory" 1 stats.Netlist_stats.memories;
  Alcotest.(check int) "memory bits" 64 stats.Netlist_stats.memory_bits;
  Alcotest.(check int) "register bits" 8 stats.Netlist_stats.register_bits;
  Alcotest.(check bool) "node count positive" true (stats.Netlist_stats.nodes > 10);
  Alcotest.(check int) "outputs" 10 stats.Netlist_stats.outputs

(* Every referenced identifier in the VHDL body must be declared:
   a lightweight lint that catches emitter name bugs. *)
let test_vhdl_no_undeclared () =
  let text = Vhdl.to_string (full_circuit ()) in
  (* All internal signals start with a name then _uid; collect
     declarations and uses of the "s_<n>" family. *)
  let declared = ref [] and used = ref [] in
  let add_matches prefix line bucket =
    let plen = String.length prefix in
    let rec scan i =
      if i + plen <= String.length line then
        if String.sub line i plen = prefix then begin
          let j = ref (i + plen) in
          while
            !j < String.length line
            && (match line.[!j] with '0' .. '9' -> true | _ -> false)
          do
            incr j
          done;
          if !j > i + plen then bucket := String.sub line i (!j - i) :: !bucket;
          scan !j
        end
        else scan (i + 1)
    in
    scan 0
  in
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         let is_decl =
           String.length line > 9 && String.sub line 0 9 = "  signal "
         in
         if is_decl then add_matches "s_" line declared
         else add_matches "s_" line used);
  List.iter
    (fun u ->
      Alcotest.(check bool) (Printf.sprintf "declared %s" u) true
        (List.mem u !declared))
    (List.sort_uniq String.compare !used)

(* Out-of-range mux select semantics must agree everywhere: both
   simulation engines clamp to the last case (via Signal.mux_index, the
   single shared helper), and both HDL back-ends encode the same rule
   structurally — every case but the last is guarded by a select
   comparison, and the last is the unconditional default arm. *)
let test_mux_default_arm_consistency () =
  let check msg b = Alcotest.(check bool) msg true b in
  let sel = input "sel" 2 in
  let cases = [ of_int ~width:8 11; of_int ~width:8 22; of_int ~width:8 33 ] in
  let c = Circuit.create_exn ~name:"muxclamp" [ ("y", mux sel cases) ] in
  List.iter
    (fun engine ->
      let sim = Cyclesim.create ~engine c in
      Cyclesim.drive sim "sel" (Bits.of_int ~width:2 3);
      Cyclesim.cycle sim;
      Alcotest.(check int) "sim clamps out-of-range select to last case" 33
        (Bits.to_int !(Cyclesim.out_port sim "y")))
    [ Cyclesim.Reference; Cyclesim.Compiled ];
  Alcotest.(check int) "mux_index clamps" 2
    (Signal.mux_index ~n_cases:3 (Bits.of_int ~width:2 3));
  (* Constant folding goes through the same helper. *)
  let folded =
    Optimize.signal (mux (of_int ~width:2 3) cases)
  in
  Alcotest.(check (option int)) "const fold clamps" (Some 33)
    (Option.map Bits.to_int (const_value folded));
  let vhdl = Vhdl.to_string c in
  check "vhdl guards case 0" (contains "= 0 else" vhdl);
  check "vhdl guards case 1" (contains "= 1 else" vhdl);
  check "vhdl default arm is unguarded" (not (contains "= 2 else" vhdl));
  let verilog = Verilog.to_string c in
  check "verilog guards case 0" (contains "== 0 ?" verilog);
  check "verilog guards case 1" (contains "== 1 ?" verilog);
  check "verilog default arm is unguarded" (not (contains "== 2 ?" verilog))

(* Over-width shift semantics must agree everywhere, mirroring the mux
   default-arm rule above: [Bits.sll]/[srl] saturate a shift of
   [n >= width] to all zeros, [Signal.sll]/[srl] elaborate the same
   rule structurally (the over-width shift *is* the zero constant), so
   both simulation engines read zero and both HDL back-ends emit a
   literal zero with no reference to the shifted operand. *)
let test_shift_saturation_consistency () =
  let check msg b = Alcotest.(check bool) msg true b in
  let a = input "a" 8 in
  let c =
    Circuit.create_exn ~name:"shiftsat"
      [
        ("full_l", sll a 8);
        ("full_r", srl a 8);
        ("over_l", sll a 20);
        ("part", sll a 3);
      ]
  in
  (* The value-level rule the structure must match. *)
  check "Bits.sll saturates"
    (Bits.equal (Bits.sll (Bits.ones 8) 8) (Bits.zero 8));
  check "Bits.srl saturates"
    (Bits.equal (Bits.srl (Bits.ones 8) 20) (Bits.zero 8));
  List.iter
    (fun engine ->
      let sim = Cyclesim.create ~engine c in
      Cyclesim.drive sim "a" (Bits.of_int ~width:8 0xff);
      Cyclesim.cycle sim;
      List.iter
        (fun port ->
          check
            (Printf.sprintf "sim reads %s as zero" port)
            (Bits.equal !(Cyclesim.out_port sim port) (Bits.zero 8)))
        [ "full_l"; "full_r"; "over_l" ];
      Alcotest.(check int) "partial shift still shifts" 0xf8
        (Bits.to_int !(Cyclesim.out_port sim "part")))
    [ Cyclesim.Reference; Cyclesim.Compiled ];
  let vhdl = Vhdl.to_string c in
  check "vhdl full shift is a zero literal"
    (contains "full_l <= \"00000000\";" vhdl);
  check "vhdl over-width shift is a zero literal"
    (contains "over_l <= \"00000000\";" vhdl);
  check "vhdl partial shift pads with zeros" (contains "& \"000\";" vhdl);
  let verilog = Verilog.to_string c in
  check "verilog full shift is a zero literal"
    (contains "full_l = 8'b00000000;" verilog);
  check "verilog over-width shift is a zero literal"
    (contains "over_l = 8'b00000000;" verilog);
  check "verilog partial shift pads with zeros" (contains ", 3'b000};" verilog)

let () =
  Alcotest.run "backends"
    [
      ( "vhdl",
        [
          Alcotest.test_case "structure" `Quick test_vhdl_structure;
          Alcotest.test_case "no undeclared signals" `Quick test_vhdl_no_undeclared;
        ] );
      ("verilog", [ Alcotest.test_case "structure" `Quick test_verilog_structure ]);
      ( "common",
        [
          Alcotest.test_case "comb-only has no clock" `Quick test_comb_only_no_clock;
          Alcotest.test_case "netlist stats" `Quick test_netlist_stats;
          Alcotest.test_case "dot export" `Quick test_dot_export;
          Alcotest.test_case "mux default-arm consistency" `Quick
            test_mux_default_arm_consistency;
          Alcotest.test_case "shift saturation consistency" `Quick
            test_shift_saturation_consistency;
        ] );
    ]
