(* The domain-parallel execution layer and its determinism guarantees:
   - the runner preserves submission order and propagates the
     lowest-numbered shard's exception;
   - concurrent circuit elaboration never mints duplicate signal uids
     (the [Signal.next_uid] atomic fix);
   - sharded fault campaigns and characterisation sweeps produce
     bit-identical summaries, classifications and JSON at any job
     count;
   - a characterisation point that trips the ack guard is recorded as
     unmeasurable and excluded from ranking instead of scored on
     garbage. *)

open Hwpat_rtl
open Hwpat_rtl.Signal
open Hwpat_core
open Hwpat_synthesis

(* --- The runner itself --------------------------------------------------- *)

let test_run_order () =
  let serial = Array.init 100 (fun i -> (i * i) + 3) in
  List.iter
    (fun jobs ->
      let parallel = Parallel.run ~jobs 100 (fun i -> (i * i) + 3) in
      Alcotest.(check (array int))
        (Printf.sprintf "jobs:%d matches serial" jobs)
        serial parallel)
    [ 1; 2; 4; 7 ];
  Alcotest.(check (array int)) "empty" [||] (Parallel.run ~jobs:4 0 (fun i -> i));
  Alcotest.(check (list string))
    "map preserves order"
    [ "a!"; "b!"; "c!" ]
    (Parallel.map ~jobs:3 (fun s -> s ^ "!") [ "a"; "b"; "c" ])

(* Regression: a shard failure must surface with the *shard's*
   backtrace (the runner re-raises with [Printexc.raise_with_backtrace]),
   so the raising site in this file is visible to the caller — not just
   the runner's own re-raise frame. *)
let[@inline never] raise_deep_in_shard () = failwith "shard backtrace probe"

let test_run_backtrace () =
  let prev = Printexc.backtrace_status () in
  Printexc.record_backtrace true;
  Fun.protect ~finally:(fun () -> Printexc.record_backtrace prev) @@ fun () ->
  let bt =
    try
      ignore
        (Parallel.run ~jobs:2 4 (fun i ->
             if i = 2 then raise_deep_in_shard ();
             i));
      "no exception"
    with Failure _ -> Printexc.get_backtrace ()
  in
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "backtrace reaches the shard's raise site" true
    (contains "test_parallel" bt)

let test_run_exception () =
  let failing_run jobs =
    let attempted = Atomic.make 0 in
    let raised =
      try
        ignore
          (Parallel.run ~jobs 10 (fun i ->
               Atomic.incr attempted;
               if i = 3 || i = 7 then failwith (Printf.sprintf "shard %d" i);
               i));
        "no exception"
      with Failure msg -> msg
    in
    (raised, Atomic.get attempted)
  in
  (* Serial: evaluation stops at the failing shard. *)
  let raised, attempted = failing_run 1 in
  Alcotest.(check string) "serial: lowest shard's exception" "shard 3" raised;
  Alcotest.(check int) "serial: fail-fast stops at the failure" 4 attempted;
  (* Parallel: shards past the failure may be dropped (fail-fast), but
     the exception that propagates is deterministically the lowest
     failing shard's — exactly what the serial run raises. The failure
     mark only decreases, so every index below the final mark was
     evaluated whatever the work-stealing schedule. *)
  let raised, attempted = failing_run 4 in
  Alcotest.(check string) "parallel: lowest shard's exception" "shard 3" raised;
  Alcotest.(check bool)
    "parallel: shards up to the failure all ran" true (attempted >= 4);
  Alcotest.(check bool) "parallel: no shard ran twice" true (attempted <= 10)

let test_clamp () =
  Alcotest.(check int) "zero clamps up" 1 (Parallel.clamp_jobs 0);
  Alcotest.(check int) "negative clamps up" 1 (Parallel.clamp_jobs (-3));
  Alcotest.(check int) "in range unchanged" 5 (Parallel.clamp_jobs 5);
  Alcotest.(check int)
    "huge clamps down" Parallel.max_jobs
    (Parallel.clamp_jobs 100_000);
  Alcotest.(check bool)
    "default is positive" true
    (Parallel.default_jobs () >= 1)

(* The work-stealing scheduler must rebalance deliberately uneven
   shard durations without perturbing the merged output: the early
   shards are much heavier than the late ones, so the workers that
   drain their initial chunk steal from the loaded ones mid-run. *)
let test_uneven_shards_deterministic () =
  let n = 64 in
  let work i =
    let spin = (n - i) * 4000 in
    let acc = ref i in
    for k = 1 to spin do
      acc := ((!acc * 7) + k) land 0xffff
    done;
    !acc
  in
  let serial = Parallel.run ~jobs:1 n work in
  List.iter
    (fun jobs ->
      Alcotest.(check (array int))
        (Printf.sprintf "uneven shards, jobs:%d = serial" jobs)
        serial
        (Parallel.run ~jobs n work))
    [ 2; 4; 7 ]

(* Worker-local state: [local] runs at most once per worker domain and
   its value is threaded to every shard that worker executes — the
   hook per-domain simulator reuse is built on. *)
let test_worker_local_state () =
  let created = Atomic.make 0 in
  let results =
    Parallel.run_partial_local ~jobs:4
      ~local:(fun () ->
        Atomic.incr created;
        ref 0)
      100
      (fun counter i ->
        incr counter;
        i * 3)
  in
  Array.iteri
    (fun i r ->
      match r with
      | Some v -> Alcotest.(check int) "shard result" (i * 3) v
      | None -> Alcotest.failf "shard %d skipped without cancellation" i)
    results;
  let made = Atomic.get created in
  Alcotest.(check bool)
    "local state built once per worker, not per shard" true
    (made >= 1 && made <= 4)

(* --- Domain-safe uid minting --------------------------------------------- *)

let test_two_domain_uid_uniqueness () =
  let n = 50_000 in
  let mint () = Array.init n (fun _ -> uid (wire 1)) in
  let d1 = Domain.spawn mint and d2 = Domain.spawn mint in
  let a = Domain.join d1 and b = Domain.join d2 in
  let seen = Hashtbl.create (4 * n) in
  Array.iter
    (fun u ->
      if Hashtbl.mem seen u then
        Alcotest.failf "duplicate uid %d minted across domains" u;
      Hashtbl.add seen u ())
    (Array.append a b);
  Alcotest.(check int) "all uids distinct" (2 * n) (Hashtbl.length seen)

(* Whole circuits elaborated concurrently stay structurally identical
   (same port names, same netlist size) — the sharded campaigns rely
   on rebuild-equivalence. *)
let test_concurrent_elaboration () =
  let build () =
    Saa2vga.build ~substrate:Saa2vga.Sram ~style:Saa2vga.Pattern ()
  in
  let circuits = Parallel.run ~jobs:4 4 (fun _ -> build ()) in
  let shape c =
    ( List.map fst (Circuit.inputs c),
      List.map fst (Circuit.outputs c),
      List.length (Circuit.signals c),
      List.length (Circuit.registers c),
      List.length (Circuit.memories c) )
  in
  let reference = shape (build ()) in
  Array.iter
    (fun c ->
      if shape c <> reference then
        Alcotest.fail "concurrently elaborated circuit differs structurally")
    circuits

(* --- Shared simulation plans --------------------------------------------- *)

(* Satellite regression: running faults through one shared plan with a
   *reused* instance (reset between runs) must classify exactly as
   fresh-simulator runs — no force/poke residue, no monitor state, no
   stale inputs leaking between work items. *)
let test_instance_reuse_matches_fresh () =
  let circuit = Faultsim.find_design "saa2vga_sram_pattern" () in
  let frame =
    Hwpat_video.Pattern.gradient ~width:6 ~height:6 ~depth:8
  in
  let budget = 8_000 in
  let events = Fault.random_campaign ~seed:11 ~n:4 ~max_cycle:400 circuit in
  let plan = Cyclesim.plan circuit in
  let sim = Cyclesim.of_plan plan in
  let fingerprint (collected, cycles, monitor, monitors, err_flag) =
    ( collected,
      cycles,
      Monitor.ok monitor,
      Option.map
        (fun v -> Format.asprintf "%a" Monitor.pp_violation v)
        (Monitor.first_violation monitor),
      monitors,
      err_flag )
  in
  List.iteri
    (fun k event ->
      let fresh =
        fingerprint (Faultsim.run_once ~events:[ event ] ~budget ~frame circuit)
      in
      let reused =
        fingerprint
          (Faultsim.run_once ~sim ~events:[ event ] ~budget ~frame circuit)
      in
      Alcotest.(check bool)
        (Printf.sprintf "fault %d: reused instance = fresh sim" k)
        true (fresh = reused))
    events;
  (* A fault-free run through the residue-laden instance must match a
     fresh fault-free run: the previous faults forced signals, poked
     state and flipped memory bits. *)
  let fresh = fingerprint (Faultsim.run_once ~budget ~frame circuit) in
  let reused = fingerprint (Faultsim.run_once ~sim ~budget ~frame circuit) in
  Alcotest.(check bool)
    "fault-free run after faulty ones: no residue" true (fresh = reused)

(* Satellite regression: instances stamped from one plan must never
   alias mutable state (register state, sync-read state, memory
   words). Hammer one instance from another domain — cycles, pokes,
   memory writes, forces — and check its sibling is byte-identical to
   a brand-new instance, statically and dynamically. *)
let test_plan_instances_isolated () =
  let circuit =
    Saa2vga.build ~substrate:Saa2vga.Sram ~style:Saa2vga.Pattern ()
  in
  let plan = Cyclesim.plan circuit in
  let hammered = Cyclesim.of_plan plan in
  let sibling = Cyclesim.of_plan plan in
  let reg = List.hd (Circuit.registers circuit) in
  let mem = List.hd (Circuit.memories circuit) in
  let d =
    Domain.spawn (fun () ->
        for _ = 1 to 50 do
          Cyclesim.cycle hammered
        done;
        Cyclesim.poke_state hammered reg (Bits.ones (width reg));
        (Cyclesim.memory_contents hammered mem).(0) <-
          Bits.ones (Signal.memory_width mem);
        Cyclesim.force hammered reg (Bits.ones (width reg));
        Cyclesim.settle hammered)
  in
  Domain.join d;
  (* sanity: the hammering actually landed on [hammered] *)
  Alcotest.(check bool)
    "hammered instance was mutated" true
    (Cyclesim.forced hammered reg <> None);
  let fresh = Cyclesim.of_plan plan in
  Alcotest.(check bool)
    "sibling holds no force" true
    (Cyclesim.forced sibling reg = None);
  Alcotest.(check bool)
    "sibling register state untouched" true
    (Bits.equal (Cyclesim.peek_state sibling reg) (Cyclesim.peek_state fresh reg));
  Alcotest.(check bool)
    "sibling memory words untouched" true
    (Array.for_all2 Bits.equal
       (Cyclesim.memory_contents sibling mem)
       (Cyclesim.memory_contents fresh mem));
  List.iter
    (fun s ->
      if not (Bits.equal (Cyclesim.peek sibling s) (Cyclesim.peek fresh s)) then
        Alcotest.failf "sibling diverges from fresh instance on %s"
          (Format.asprintf "%a" Signal.pp s))
    (Circuit.signals circuit);
  (* dynamic check: the sibling evolves exactly like a fresh instance *)
  for cycle = 1 to 100 do
    Cyclesim.cycle sibling;
    Cyclesim.cycle fresh;
    List.iter
      (fun (name, _) ->
        let a = !(Cyclesim.out_port sibling name)
        and b = !(Cyclesim.out_port fresh name) in
        if not (Bits.equal a b) then
          Alcotest.failf "cycle %d: sibling output %s diverges" cycle name)
      (Circuit.outputs circuit)
  done

(* --- Determinism: campaigns and sweeps at jobs:1 vs jobs:4 --------------- *)

let campaign ?checkpoint ?(resume = false) ~jobs () =
  Faultsim.run_campaign ?checkpoint ~resume ~jobs ~seed:5 ~faults:10
    ~frame_width:6 ~frame_height:6
    ~build:(Faultsim.find_design "saa2vga_sram_pattern")
    ~design:"saa2vga_sram_pattern" ()

let test_faultsim_jobs_deterministic () =
  let a = campaign ~jobs:1 () and b = campaign ~jobs:4 () in
  Alcotest.(check int)
    "baseline cycles" a.Faultsim.baseline_cycles b.Faultsim.baseline_cycles;
  let outcomes s =
    List.map
      (fun (r : Faultsim.result) -> Faultsim.outcome_name r.outcome)
      s.Faultsim.results
  in
  Alcotest.(check (list string)) "classifications" (outcomes a) (outcomes b);
  Alcotest.(check string) "rendered summary" (Faultsim.render a)
    (Faultsim.render b);
  Alcotest.(check string) "JSON bytes" (Faultsim.summary_to_json a)
    (Faultsim.summary_to_json b)

let sweep_points =
  [
    { Characterize.container = "queue"; target = "fifo"; elem_width = 8;
      depth = 64; wait_states = 0 };
    { Characterize.container = "queue"; target = "sram"; elem_width = 8;
      depth = 64; wait_states = 1 };
    { Characterize.container = "stack"; target = "bram"; elem_width = 8;
      depth = 64; wait_states = 0 };
    { Characterize.container = "vector"; target = "bram"; elem_width = 8;
      depth = 64; wait_states = 0 };
  ]

let test_sweep_jobs_deterministic () =
  let a = Characterize.sweep ~jobs:1 ~points:sweep_points () in
  let b = Characterize.sweep ~jobs:4 ~points:sweep_points () in
  Alcotest.(check string) "table" (Design_space.to_table a)
    (Design_space.to_table b);
  Alcotest.(check string) "JSON bytes" (Design_space.to_json a)
    (Design_space.to_json b);
  Alcotest.(check bool)
    "all points measured" true
    (List.for_all (fun c -> c.Design_space.measured) a)

(* Fault descriptions must be uid-independent: two builds of the same
   design in one process mint different uids, yet the rendered
   campaign must not change. *)
let test_descriptions_rebuild_stable () =
  let describe_all () =
    let circuit =
      Saa2vga.build ~substrate:Saa2vga.Sram ~style:Saa2vga.Pattern ()
    in
    let events =
      Fault.random_campaign ~seed:9 ~n:16 ~max_cycle:500 circuit
    in
    List.map (Fault.describe_event_in circuit) events
  in
  Alcotest.(check (list string))
    "same descriptions across rebuilds" (describe_all ()) (describe_all ())

(* Satellite: the prove battery merged under work-stealing must be
   verdict- and order-identical at any job count. [seconds] is
   wall-clock — legitimately nondeterministic — so the fingerprint
   strips it and compares everything else. *)
let test_prove_jobs_deterministic () =
  let fingerprint (r : Prove.result) =
    Printf.sprintf "%s|%s|%b|%b|%s" r.Prove.name r.Prove.kind r.Prove.ok
      r.Prove.unknown r.Prove.status
  in
  let run jobs = List.map fingerprint (Prove.run ~smoke:true ~jobs ()) in
  let serial = run 1 in
  Alcotest.(check bool) "smoke battery is non-empty" true (serial <> []);
  Alcotest.(check (list string)) "prove jobs:1 = jobs:4" serial (run 4)

(* Satellite: the solver portfolio races obligations under several
   configurations, but the winner is picked by deterministic
   operation-count rounds — so the merged verdicts are identical at
   any job count, and (on a battery where racer 0 is never outrun to
   a *different* verdict) identical to the single-solver path too.
   [seconds] is stripped as above. *)
let test_prove_portfolio_deterministic () =
  let fingerprint (r : Prove.result) =
    Printf.sprintf "%s|%s|%b|%b|%s" r.Prove.name r.Prove.kind r.Prove.ok
      r.Prove.unknown r.Prove.status
  in
  let run ?portfolio ?budget jobs =
    List.map fingerprint (Prove.run ~smoke:true ~jobs ?portfolio ?budget ())
  in
  let serial = run ~portfolio:3 1 in
  Alcotest.(check (list string))
    "portfolio jobs:1 = jobs:4" serial (run ~portfolio:3 4);
  Alcotest.(check (list string))
    "portfolio verdicts = single-solver verdicts" (run 2) serial;
  (* Capped so hard that no racer can answer: the portfolio must fall
     back to the single-solver path's verbatim budget-exhausted
     Unknowns (racer 0 wins the all-indefinitive final round). *)
  let tiny =
    { Hwpat_formal.Solver.max_conflicts = 1; max_propagations = 1 }
  in
  Alcotest.(check (list string))
    "capped portfolio = capped single-solver"
    (run ~budget:tiny 2)
    (run ~portfolio:2 ~budget:tiny 2)

(* Satellite: checkpoint/resume composed with plan sharing. A campaign
   killed mid-flight (journal truncated to the header plus five
   completed faults, final line torn) and resumed at jobs:4 must
   render byte-identically to an uncheckpointed run — the resumed
   workers instantiate the shared plan afresh, replay the journaled
   verdicts, and re-run only the missing faults. *)
let test_resume_byte_identical () =
  let with_temp_path f =
    let path = Filename.temp_file "hwpat_test_parscale" ".jsonl" in
    Fun.protect
      ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
      (fun () -> f path)
  in
  let reference = Faultsim.summary_to_json (campaign ~jobs:4 ()) in
  with_temp_path @@ fun path ->
  ignore (campaign ~checkpoint:path ~jobs:4 ());
  let lines =
    let ic = open_in path in
    Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
    let acc = ref [] in
    (try
       while true do
         acc := input_line ic :: !acc
       done
     with End_of_file -> ());
    List.rev !acc
  in
  Alcotest.(check bool)
    "journal holds a header and the faults" true
    (List.length lines > 6);
  with_temp_path @@ fun partial_path ->
  let oc = open_out partial_path in
  List.iteri
    (fun i line ->
      if i <= 5 then (output_string oc line; output_char oc '\n'))
    lines;
  output_string oc "{\"key\": \"torn";
  close_out oc;
  let resumed = campaign ~checkpoint:partial_path ~resume:true ~jobs:4 () in
  Alcotest.(check string)
    "resumed summary is byte-identical"
    reference
    (Faultsim.summary_to_json resumed)

(* --- The ack-guard timeout bugfix ---------------------------------------- *)

(* A harness with the measurement port convention whose acks never
   rise: the workload's 200-cycle guard must trip and be *reported*,
   not silently folded into a cycles-per-access figure. *)
let deaf_harness () =
  let get_req = input "get_req" 1 in
  let put_req = input "put_req" 1 in
  let put_data = input "put_data" 8 in
  Circuit.create_exn ~name:"deaf"
    [
      ("get_ack", get_req &: gnd);
      ("get_data", put_data &: zero 8);
      ("put_ack", put_req &: gnd);
    ]

let test_measure_timeout_recorded () =
  let sim = Cyclesim.create (deaf_harness ()) in
  let per_access, _monitor, timed_out = Characterize.measure sim in
  Alcotest.(check bool) "timeout recorded" true timed_out;
  Alcotest.(check bool)
    "no bogus cycles-per-access" true
    (per_access = infinity)

let test_unmeasurable_excluded () =
  let mk label measured cycles =
    {
      Design_space.label;
      container = "queue";
      target = label;
      elem_width = 8;
      depth = 64;
      luts = 50;
      ffs = 50;
      brams = 0;
      access_cycles = cycles;
      fmax_mhz = 90.0;
      power_mw = 40.0;
      measured;
    }
  in
  let good = mk "good" true 4.0 in
  (* The bogus figure a silent timeout used to produce would dominate
     every honest candidate. *)
  let broken = mk "broken" false 0.1 in
  let all = [ broken; good ] in
  let front = Design_space.pareto_front all in
  Alcotest.(check (list string))
    "front excludes unmeasurable" [ "good" ]
    (List.map (fun c -> c.Design_space.label) front);
  Alcotest.(check (list string))
    "feasible excludes unmeasurable" [ "good" ]
    (List.map
       (fun c -> c.Design_space.label)
       (Design_space.feasible Design_space.no_constraints all));
  Alcotest.(check (list string))
    "unmeasurable reported" [ "broken" ]
    (List.map (fun c -> c.Design_space.label) (Design_space.unmeasurable all));
  let report =
    Characterize.region_report ~constraints:Design_space.no_constraints all
  in
  Alcotest.(check bool)
    "region report names the timeout" true
    (let needle = "unmeasurable" in
     let rec find i =
       i + String.length needle <= String.length report
       && (String.sub report i (String.length needle) = needle || find (i + 1))
     in
     find 0);
  let table = Design_space.to_table all in
  Alcotest.(check bool)
    "table marks the timeout" true
    (let needle = "timeout" in
     let rec find i =
       i + String.length needle <= String.length table
       && (String.sub table i (String.length needle) = needle || find (i + 1))
     in
     find 0)

let () =
  Alcotest.run "parallel"
    [
      ( "runner",
        [
          Alcotest.test_case "preserves submission order" `Quick test_run_order;
          Alcotest.test_case "propagates lowest shard exception" `Quick
            test_run_exception;
          Alcotest.test_case "preserves the shard's backtrace" `Quick
            test_run_backtrace;
          Alcotest.test_case "job clamping" `Quick test_clamp;
          Alcotest.test_case "uneven shards steal deterministically" `Quick
            test_uneven_shards_deterministic;
          Alcotest.test_case "worker-local state built once per domain" `Quick
            test_worker_local_state;
        ] );
      ( "domain-safety",
        [
          Alcotest.test_case "two-domain uid uniqueness" `Quick
            test_two_domain_uid_uniqueness;
          Alcotest.test_case "concurrent elaboration is structural" `Quick
            test_concurrent_elaboration;
        ] );
      ( "plan-sharing",
        [
          Alcotest.test_case "reused instance classifies like fresh sim" `Quick
            test_instance_reuse_matches_fresh;
          Alcotest.test_case "plan instances never alias state" `Quick
            test_plan_instances_isolated;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "faultsim jobs:1 = jobs:4" `Quick
            test_faultsim_jobs_deterministic;
          Alcotest.test_case "sweep jobs:1 = jobs:4" `Quick
            test_sweep_jobs_deterministic;
          Alcotest.test_case "descriptions stable across rebuilds" `Quick
            test_descriptions_rebuild_stable;
          Alcotest.test_case "prove jobs:1 = jobs:4" `Quick
            test_prove_jobs_deterministic;
          Alcotest.test_case "portfolio prove is schedule-independent" `Quick
            test_prove_portfolio_deterministic;
          Alcotest.test_case "resume is byte-identical" `Quick
            test_resume_byte_identical;
        ] );
      ( "timeout-guard",
        [
          Alcotest.test_case "measure records tripped guard" `Quick
            test_measure_timeout_recorded;
          Alcotest.test_case "unmeasurable points excluded and reported" `Quick
            test_unmeasurable_excluded;
        ] );
    ]
