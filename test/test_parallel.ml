(* The domain-parallel execution layer and its determinism guarantees:
   - the runner preserves submission order and propagates the
     lowest-numbered shard's exception;
   - concurrent circuit elaboration never mints duplicate signal uids
     (the [Signal.next_uid] atomic fix);
   - sharded fault campaigns and characterisation sweeps produce
     bit-identical summaries, classifications and JSON at any job
     count;
   - a characterisation point that trips the ack guard is recorded as
     unmeasurable and excluded from ranking instead of scored on
     garbage. *)

open Hwpat_rtl
open Hwpat_rtl.Signal
open Hwpat_core
open Hwpat_synthesis

(* --- The runner itself --------------------------------------------------- *)

let test_run_order () =
  let serial = Array.init 100 (fun i -> (i * i) + 3) in
  List.iter
    (fun jobs ->
      let parallel = Parallel.run ~jobs 100 (fun i -> (i * i) + 3) in
      Alcotest.(check (array int))
        (Printf.sprintf "jobs:%d matches serial" jobs)
        serial parallel)
    [ 1; 2; 4; 7 ];
  Alcotest.(check (array int)) "empty" [||] (Parallel.run ~jobs:4 0 (fun i -> i));
  Alcotest.(check (list string))
    "map preserves order"
    [ "a!"; "b!"; "c!" ]
    (Parallel.map ~jobs:3 (fun s -> s ^ "!") [ "a"; "b"; "c" ])

(* Regression: a shard failure must surface with the *shard's*
   backtrace (the runner re-raises with [Printexc.raise_with_backtrace]),
   so the raising site in this file is visible to the caller — not just
   the runner's own re-raise frame. *)
let[@inline never] raise_deep_in_shard () = failwith "shard backtrace probe"

let test_run_backtrace () =
  let prev = Printexc.backtrace_status () in
  Printexc.record_backtrace true;
  Fun.protect ~finally:(fun () -> Printexc.record_backtrace prev) @@ fun () ->
  let bt =
    try
      ignore
        (Parallel.run ~jobs:2 4 (fun i ->
             if i = 2 then raise_deep_in_shard ();
             i));
      "no exception"
    with Failure _ -> Printexc.get_backtrace ()
  in
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "backtrace reaches the shard's raise site" true
    (contains "test_parallel" bt)

let test_run_exception () =
  let failing_run jobs =
    let attempted = Atomic.make 0 in
    let raised =
      try
        ignore
          (Parallel.run ~jobs 10 (fun i ->
               Atomic.incr attempted;
               if i = 3 || i = 7 then failwith (Printf.sprintf "shard %d" i);
               i));
        "no exception"
      with Failure msg -> msg
    in
    (raised, Atomic.get attempted)
  in
  (* Serial: evaluation stops at the failing shard. *)
  let raised, attempted = failing_run 1 in
  Alcotest.(check string) "serial: lowest shard's exception" "shard 3" raised;
  Alcotest.(check int) "serial: fail-fast stops at the failure" 4 attempted;
  (* Parallel: shards past the failure may be skipped (fail-fast), but
     the exception that propagates is deterministically the lowest
     failing shard's — exactly what the serial run raises. Indices are
     claimed in increasing order, so the failing shard and everything
     below it always ran. *)
  let raised, attempted = failing_run 4 in
  Alcotest.(check string) "parallel: lowest shard's exception" "shard 3" raised;
  Alcotest.(check bool)
    "parallel: shards up to the failure all ran" true (attempted >= 4);
  Alcotest.(check bool) "parallel: no shard ran twice" true (attempted <= 10)

let test_clamp () =
  Alcotest.(check int) "zero clamps up" 1 (Parallel.clamp_jobs 0);
  Alcotest.(check int) "negative clamps up" 1 (Parallel.clamp_jobs (-3));
  Alcotest.(check int) "in range unchanged" 5 (Parallel.clamp_jobs 5);
  Alcotest.(check int)
    "huge clamps down" Parallel.max_jobs
    (Parallel.clamp_jobs 100_000);
  Alcotest.(check bool)
    "default is positive" true
    (Parallel.default_jobs () >= 1)

(* --- Domain-safe uid minting --------------------------------------------- *)

let test_two_domain_uid_uniqueness () =
  let n = 50_000 in
  let mint () = Array.init n (fun _ -> uid (wire 1)) in
  let d1 = Domain.spawn mint and d2 = Domain.spawn mint in
  let a = Domain.join d1 and b = Domain.join d2 in
  let seen = Hashtbl.create (4 * n) in
  Array.iter
    (fun u ->
      if Hashtbl.mem seen u then
        Alcotest.failf "duplicate uid %d minted across domains" u;
      Hashtbl.add seen u ())
    (Array.append a b);
  Alcotest.(check int) "all uids distinct" (2 * n) (Hashtbl.length seen)

(* Whole circuits elaborated concurrently stay structurally identical
   (same port names, same netlist size) — the sharded campaigns rely
   on rebuild-equivalence. *)
let test_concurrent_elaboration () =
  let build () =
    Saa2vga.build ~substrate:Saa2vga.Sram ~style:Saa2vga.Pattern ()
  in
  let circuits = Parallel.run ~jobs:4 4 (fun _ -> build ()) in
  let shape c =
    ( List.map fst (Circuit.inputs c),
      List.map fst (Circuit.outputs c),
      List.length (Circuit.signals c),
      List.length (Circuit.registers c),
      List.length (Circuit.memories c) )
  in
  let reference = shape (build ()) in
  Array.iter
    (fun c ->
      if shape c <> reference then
        Alcotest.fail "concurrently elaborated circuit differs structurally")
    circuits

(* --- Determinism: campaigns and sweeps at jobs:1 vs jobs:4 --------------- *)

let campaign ~jobs =
  Faultsim.run_campaign ~jobs ~seed:5 ~faults:10 ~frame_width:6 ~frame_height:6
    ~build:(Faultsim.find_design "saa2vga_sram_pattern")
    ~design:"saa2vga_sram_pattern" ()

let test_faultsim_jobs_deterministic () =
  let a = campaign ~jobs:1 and b = campaign ~jobs:4 in
  Alcotest.(check int)
    "baseline cycles" a.Faultsim.baseline_cycles b.Faultsim.baseline_cycles;
  let outcomes s =
    List.map
      (fun (r : Faultsim.result) -> Faultsim.outcome_name r.outcome)
      s.Faultsim.results
  in
  Alcotest.(check (list string)) "classifications" (outcomes a) (outcomes b);
  Alcotest.(check string) "rendered summary" (Faultsim.render a)
    (Faultsim.render b);
  Alcotest.(check string) "JSON bytes" (Faultsim.summary_to_json a)
    (Faultsim.summary_to_json b)

let sweep_points =
  [
    { Characterize.container = "queue"; target = "fifo"; elem_width = 8;
      depth = 64; wait_states = 0 };
    { Characterize.container = "queue"; target = "sram"; elem_width = 8;
      depth = 64; wait_states = 1 };
    { Characterize.container = "stack"; target = "bram"; elem_width = 8;
      depth = 64; wait_states = 0 };
    { Characterize.container = "vector"; target = "bram"; elem_width = 8;
      depth = 64; wait_states = 0 };
  ]

let test_sweep_jobs_deterministic () =
  let a = Characterize.sweep ~jobs:1 ~points:sweep_points () in
  let b = Characterize.sweep ~jobs:4 ~points:sweep_points () in
  Alcotest.(check string) "table" (Design_space.to_table a)
    (Design_space.to_table b);
  Alcotest.(check string) "JSON bytes" (Design_space.to_json a)
    (Design_space.to_json b);
  Alcotest.(check bool)
    "all points measured" true
    (List.for_all (fun c -> c.Design_space.measured) a)

(* Fault descriptions must be uid-independent: two builds of the same
   design in one process mint different uids, yet the rendered
   campaign must not change. *)
let test_descriptions_rebuild_stable () =
  let describe_all () =
    let circuit =
      Saa2vga.build ~substrate:Saa2vga.Sram ~style:Saa2vga.Pattern ()
    in
    let events =
      Fault.random_campaign ~seed:9 ~n:16 ~max_cycle:500 circuit
    in
    List.map (Fault.describe_event_in circuit) events
  in
  Alcotest.(check (list string))
    "same descriptions across rebuilds" (describe_all ()) (describe_all ())

(* --- The ack-guard timeout bugfix ---------------------------------------- *)

(* A harness with the measurement port convention whose acks never
   rise: the workload's 200-cycle guard must trip and be *reported*,
   not silently folded into a cycles-per-access figure. *)
let deaf_harness () =
  let get_req = input "get_req" 1 in
  let put_req = input "put_req" 1 in
  let put_data = input "put_data" 8 in
  Circuit.create_exn ~name:"deaf"
    [
      ("get_ack", get_req &: gnd);
      ("get_data", put_data &: zero 8);
      ("put_ack", put_req &: gnd);
    ]

let test_measure_timeout_recorded () =
  let sim = Cyclesim.create (deaf_harness ()) in
  let per_access, _monitor, timed_out = Characterize.measure sim in
  Alcotest.(check bool) "timeout recorded" true timed_out;
  Alcotest.(check bool)
    "no bogus cycles-per-access" true
    (per_access = infinity)

let test_unmeasurable_excluded () =
  let mk label measured cycles =
    {
      Design_space.label;
      container = "queue";
      target = label;
      elem_width = 8;
      depth = 64;
      luts = 50;
      ffs = 50;
      brams = 0;
      access_cycles = cycles;
      fmax_mhz = 90.0;
      power_mw = 40.0;
      measured;
    }
  in
  let good = mk "good" true 4.0 in
  (* The bogus figure a silent timeout used to produce would dominate
     every honest candidate. *)
  let broken = mk "broken" false 0.1 in
  let all = [ broken; good ] in
  let front = Design_space.pareto_front all in
  Alcotest.(check (list string))
    "front excludes unmeasurable" [ "good" ]
    (List.map (fun c -> c.Design_space.label) front);
  Alcotest.(check (list string))
    "feasible excludes unmeasurable" [ "good" ]
    (List.map
       (fun c -> c.Design_space.label)
       (Design_space.feasible Design_space.no_constraints all));
  Alcotest.(check (list string))
    "unmeasurable reported" [ "broken" ]
    (List.map (fun c -> c.Design_space.label) (Design_space.unmeasurable all));
  let report =
    Characterize.region_report ~constraints:Design_space.no_constraints all
  in
  Alcotest.(check bool)
    "region report names the timeout" true
    (let needle = "unmeasurable" in
     let rec find i =
       i + String.length needle <= String.length report
       && (String.sub report i (String.length needle) = needle || find (i + 1))
     in
     find 0);
  let table = Design_space.to_table all in
  Alcotest.(check bool)
    "table marks the timeout" true
    (let needle = "timeout" in
     let rec find i =
       i + String.length needle <= String.length table
       && (String.sub table i (String.length needle) = needle || find (i + 1))
     in
     find 0)

let () =
  Alcotest.run "parallel"
    [
      ( "runner",
        [
          Alcotest.test_case "preserves submission order" `Quick test_run_order;
          Alcotest.test_case "propagates lowest shard exception" `Quick
            test_run_exception;
          Alcotest.test_case "preserves the shard's backtrace" `Quick
            test_run_backtrace;
          Alcotest.test_case "job clamping" `Quick test_clamp;
        ] );
      ( "domain-safety",
        [
          Alcotest.test_case "two-domain uid uniqueness" `Quick
            test_two_domain_uid_uniqueness;
          Alcotest.test_case "concurrent elaboration is structural" `Quick
            test_concurrent_elaboration;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "faultsim jobs:1 = jobs:4" `Quick
            test_faultsim_jobs_deterministic;
          Alcotest.test_case "sweep jobs:1 = jobs:4" `Quick
            test_sweep_jobs_deterministic;
          Alcotest.test_case "descriptions stable across rebuilds" `Quick
            test_descriptions_rebuild_stable;
        ] );
      ( "timeout-guard",
        [
          Alcotest.test_case "measure records tripped guard" `Quick
            test_measure_timeout_recorded;
          Alcotest.test_case "unmeasurable points excluded and reported" `Quick
            test_unmeasurable_excluded;
        ] );
    ]
