(* The formal verification layer, end to end:
   - the CDCL solver on hand-built CNF,
   - SAT equivalence of optimised and pruned variants (paper designs,
     random netlists, container elaborations),
   - counterexamples from deliberately mutated circuits, replayed
     through both simulation engines,
   - bounded model checking of the protocol-monitor properties,
     including the known violation of a Fault_wrap-broken device. *)

open Hwpat_rtl
open Hwpat_rtl.Signal
open Hwpat_formal
module Sim_util = Hwpat_test_support.Sim_util

(* --- Solver ------------------------------------------------------------- *)

let test_solver_basics () =
  let s = Solver.create () in
  let a = Solver.new_var s and b = Solver.new_var s in
  Solver.add_clause s [ a; b ];
  Solver.add_clause s [ -a; b ];
  (match Solver.solve s with
  | Solver.Sat -> Alcotest.(check bool) "b is true" true (Solver.value s b)
  | Solver.Unsat -> Alcotest.fail "satisfiable instance reported unsat"
  | Solver.Unknown -> Alcotest.fail "unknown without a budget");
  Solver.add_clause s [ -b ];
  match Solver.solve s with
  | Solver.Unsat -> ()
  | Solver.Sat -> Alcotest.fail "unsat instance reported sat"
  | Solver.Unknown -> Alcotest.fail "unknown without a budget"

let test_solver_assumptions () =
  let s = Solver.create () in
  let a = Solver.new_var s and b = Solver.new_var s in
  Solver.add_clause s [ -a; b ];
  (match Solver.solve s ~assumptions:[ a; -b ] with
  | Solver.Unsat -> ()
  | Solver.Sat -> Alcotest.fail "a & ~b should contradict a -> b"
  | Solver.Unknown -> Alcotest.fail "unknown without a budget");
  (* The same solver must stay usable after an assumption failure. *)
  match Solver.solve s ~assumptions:[ a ] with
  | Solver.Sat -> Alcotest.(check bool) "implied b" true (Solver.value s b)
  | Solver.Unsat -> Alcotest.fail "a alone is consistent with a -> b"
  | Solver.Unknown -> Alcotest.fail "unknown without a budget"

(* A pigeonhole-flavoured stress: 4 pigeons, 3 holes — unsat, and
   forces real conflict analysis rather than pure propagation. *)
let test_solver_pigeonhole () =
  let s = Solver.create () in
  let v = Array.init 4 (fun _ -> Array.init 3 (fun _ -> Solver.new_var s)) in
  for p = 0 to 3 do
    Solver.add_clause s (Array.to_list v.(p))
  done;
  for h = 0 to 2 do
    for p1 = 0 to 3 do
      for p2 = p1 + 1 to 3 do
        Solver.add_clause s [ -v.(p1).(h); -v.(p2).(h) ]
      done
    done
  done;
  match Solver.solve s with
  | Solver.Unsat -> ()
  | Solver.Sat -> Alcotest.fail "pigeonhole 4-into-3 reported sat"
  | Solver.Unknown -> Alcotest.fail "unknown without a budget"

(* --- Budgets and interrupts ---------------------------------------------- *)

let pigeonhole_solver ~pigeons ~holes =
  let s = Solver.create () in
  let v =
    Array.init pigeons (fun _ -> Array.init holes (fun _ -> Solver.new_var s))
  in
  for p = 0 to pigeons - 1 do
    Solver.add_clause s (Array.to_list v.(p))
  done;
  for h = 0 to holes - 1 do
    for p1 = 0 to pigeons - 1 do
      for p2 = p1 + 1 to pigeons - 1 do
        Solver.add_clause s [ -v.(p1).(h); -v.(p2).(h) ]
      done
    done
  done;
  s

(* A conflict budget must trip at the same solver-operation count in
   every run — the caps count work, not wall clock — and the tripped
   solver must stay usable. *)
let test_solver_budget_deterministic () =
  let budget = { Solver.max_conflicts = 5; max_propagations = 0 } in
  let one () =
    let s = pigeonhole_solver ~pigeons:6 ~holes:5 in
    (match Solver.solve ~budget s with
    | Solver.Unknown -> ()
    | Solver.Sat | Solver.Unsat ->
      Alcotest.fail "6-into-5 pigeonhole decided within 5 conflicts");
    let st = Solver.stats s in
    Alcotest.(check int) "one unknown counted" 1 st.Solver.unknowns;
    (* The tripped solver finishes the job when given free rein. *)
    (match Solver.solve s with
    | Solver.Unsat -> ()
    | Solver.Sat -> Alcotest.fail "pigeonhole reported sat after a trip"
    | Solver.Unknown -> Alcotest.fail "unknown without a budget");
    (st.Solver.conflicts, st.Solver.propagations, st.Solver.decisions)
  in
  let a = one () and b = one () in
  Alcotest.(check (triple int int int)) "budget trip is replay-stable" a b

let test_solver_propagation_budget () =
  let s = pigeonhole_solver ~pigeons:6 ~holes:5 in
  match
    Solver.solve ~budget:{ Solver.max_conflicts = 0; max_propagations = 1 } s
  with
  | Solver.Unknown -> ()
  | Solver.Sat | Solver.Unsat ->
    Alcotest.fail "decided within a single propagation"

exception Poked

let test_solver_interrupt () =
  let s = pigeonhole_solver ~pigeons:6 ~holes:5 in
  let calls = ref 0 in
  (match
     Solver.solve
       ~interrupt:(fun () ->
         incr calls;
         if !calls > 10 then raise Poked)
       s
   with
  | exception Poked -> ()
  | Solver.Sat | Solver.Unsat | Solver.Unknown ->
    Alcotest.fail "interrupt did not fire within 10 iterations");
  (* An interrupted solver is not poisoned. *)
  match Solver.solve s with
  | Solver.Unsat -> ()
  | Solver.Sat -> Alcotest.fail "pigeonhole reported sat after interrupt"
  | Solver.Unknown -> Alcotest.fail "unknown without a budget"

(* --- Push/pop scopes ------------------------------------------------------ *)

let test_solver_push_pop () =
  let s = Solver.create () in
  let a = Solver.new_var s and b = Solver.new_var s in
  Solver.add_clause s [ a; b ];
  Alcotest.(check int) "no scope open" 0 (Solver.scope_depth s);
  Solver.push s;
  Solver.add_clause s [ -a ];
  Solver.push s;
  Solver.add_clause s [ -b ];
  Alcotest.(check int) "two scopes open" 2 (Solver.scope_depth s);
  (match Solver.solve s with
  | Solver.Unsat -> ()
  | _ -> Alcotest.fail "(a|b) & ~a & ~b should be unsat");
  (* Popping the inner scope retires ~b only: b must come back. *)
  Solver.pop s;
  (match Solver.solve s with
  | Solver.Sat ->
    Alcotest.(check bool) "b forced by the outer scope" true (Solver.value s b)
  | _ -> Alcotest.fail "sat after popping the inner scope");
  Solver.pop s;
  Alcotest.(check int) "all scopes closed" 0 (Solver.scope_depth s);
  (* Both scoped clauses gone: a & ~b is compatible with the base. *)
  match Solver.solve s ~assumptions:[ a; -b ] with
  | Solver.Sat -> ()
  | _ -> Alcotest.fail "scoped clauses must not survive their pop"

(* Learned clauses survive a pop (that is the point of scopes): the
   conflicts spent inside a scope make the solve after the pop
   cheaper, never incorrect. *)
let test_solver_scope_keeps_learning () =
  let s = pigeonhole_solver ~pigeons:5 ~holes:4 in
  Solver.push s;
  (match Solver.solve s with
  | Solver.Unsat -> ()
  | _ -> Alcotest.fail "pigeonhole sat inside a scope");
  let inside = (Solver.stats s).Solver.conflicts in
  Solver.pop s;
  (match Solver.solve s with
  | Solver.Unsat -> ()
  | _ -> Alcotest.fail "pigeonhole sat after pop");
  let after = (Solver.stats s).Solver.conflicts in
  Alcotest.(check bool)
    (Printf.sprintf "re-solve reuses learning (%d then %d more)" inside
       (after - inside))
    true
    (after - inside <= inside)

(* A configuration must replay bit-identically: same instance, same
   config, same operation counts. *)
let test_solver_config_replay_stable () =
  let agile =
    {
      Solver.restart_base = 50;
      restart_factor = 1.2;
      decay = 0.90;
      init_phase = false;
    }
  in
  let one config =
    let s = Solver.create ~config () in
    let v = Array.init 6 (fun _ -> Array.init 5 (fun _ -> Solver.new_var s)) in
    for p = 0 to 5 do
      Solver.add_clause s (Array.to_list v.(p))
    done;
    for h = 0 to 4 do
      for p1 = 0 to 5 do
        for p2 = p1 + 1 to 5 do
          Solver.add_clause s [ -v.(p1).(h); -v.(p2).(h) ]
        done
      done
    done;
    (match Solver.solve s with
    | Solver.Unsat -> ()
    | _ -> Alcotest.fail "pigeonhole 6-into-5 not refuted");
    let st = Solver.stats s in
    (st.Solver.conflicts, st.Solver.propagations, st.Solver.decisions)
  in
  Alcotest.(check (triple int int int))
    "agile config replays identically" (one agile) (one agile);
  Alcotest.(check (triple int int int))
    "default config replays identically"
    (one Solver.default_config)
    (one Solver.default_config)

(* --- Optimizer equivalence ----------------------------------------------- *)

let check_proved what = function
  | Equiv.Proved -> ()
  | Equiv.Counterexample cex ->
    Alcotest.failf "%s: behaviour differs:\n%s" what
      (Equiv.counterexample_to_string cex)
  | Equiv.Unknown why -> Alcotest.failf "%s: not decided (%s)" what why

let test_equiv_random_circuits () =
  for seed = 1 to 40 do
    let c, _ = Netgen.build_random_circuit ~seed in
    check_proved
      (Printf.sprintf "seed %d vs optimised" seed)
      (Equiv.check c (Optimize.circuit c))
  done

let paper_designs () =
  [
    ( "saa2vga fifo",
      Hwpat_core.Saa2vga.build ~depth:16 ~substrate:Hwpat_core.Saa2vga.Fifo
        ~style:Hwpat_core.Saa2vga.Pattern () );
    ( "saa2vga sram",
      Hwpat_core.Saa2vga.build ~depth:16 ~substrate:Hwpat_core.Saa2vga.Sram
        ~style:Hwpat_core.Saa2vga.Pattern () );
    ( "blur",
      Hwpat_core.Blur_system.build ~image_width:8 ~max_rows:8
        ~style:Hwpat_core.Blur_system.Pattern () );
  ]

let test_equiv_paper_designs () =
  List.iter
    (fun (what, c) ->
      check_proved (what ^ " vs optimised") (Equiv.check c (Optimize.circuit c)))
    (paper_designs ())

let test_optimize_run_verify_hook () =
  let c, _ = Netgen.build_random_circuit ~seed:7 in
  (* The rtl-side hook with the formal checker plugged in. *)
  ignore (Equiv.optimize ~verify:true c)

(* --- Counterexamples from mutated circuits ------------------------------- *)

(* A 4-bit wrapping counter; [broken] injects a stuck-at fault on the
   carry path: when the count reaches 11 the increment is silently
   dropped. The divergence needs 12 enabled cycles to surface, so the
   counterexample exercises the sequential (unrolled) search, not just
   the combinational miter. *)
let counter_circuit ~broken =
  let en = input "en" 1 in
  let count = wire 4 in
  let stuck = count ==: of_int ~width:4 11 in
  let inc =
    if broken then mux2 stuck count (count +: of_int ~width:4 1)
    else count +: of_int ~width:4 1
  in
  count <== reg ~enable:en ~init:(Bits.zero 4) inc;
  Circuit.create_exn
    ~name:(if broken then "counter_broken" else "counter")
    [ ("count", count) ]

let test_mutated_circuit_counterexample () =
  let good = counter_circuit ~broken:false in
  let bad = counter_circuit ~broken:true in
  match Equiv.check good bad with
  | Equiv.Proved -> Alcotest.fail "mutated counter reported equivalent"
  | Equiv.Unknown why -> Alcotest.failf "mutated counter undecided (%s)" why
  | Equiv.Counterexample cex ->
    if List.length cex < 12 then
      Alcotest.failf "counterexample too short (%d cycles) to reach the fault"
        (List.length cex);
    (* Equiv already replayed it internally; replay once more here, by
       hand, and check the divergence is real in Cyclesim. *)
    let final c =
      let sim = Cyclesim.create c in
      List.iter
        (fun assignment ->
          List.iter (fun (n, v) -> Cyclesim.drive sim n v) assignment;
          Cyclesim.cycle sim)
        cex;
      !(Cyclesim.out_port sim "count")
    in
    if Bits.equal (final good) (final bad) then
      Alcotest.fail "counterexample does not diverge in Cyclesim";
    (* And both engines agree on the trace for each circuit alone. *)
    List.iter
      (fun c ->
        match Sim_util.replay_both c cex with
        | None -> ()
        | Some d ->
          Alcotest.failf "engines disagree replaying the cex at cycle %d"
            d.Sim_util.at)
      [ good; bad ]

(* A combinational mutation takes the single-frame miter path. *)
let test_combinational_counterexample () =
  let a = input "a" 4 and b = input "b" 4 in
  let good = Circuit.create_exn ~name:"add" [ ("s", a +: b) ] in
  let a' = input "a" 4 and b' = input "b" 4 in
  let bad = Circuit.create_exn ~name:"add_bad" [ ("s", a' |: b') ] in
  match Equiv.check good bad with
  | Equiv.Counterexample [ assignment ] ->
    (* one cycle suffices, and the assignment names the inputs *)
    Alcotest.(check bool) "names a" true (List.mem_assoc "a" assignment);
    Alcotest.(check bool) "names b" true (List.mem_assoc "b" assignment)
  | Equiv.Counterexample cex ->
    Alcotest.failf "expected a 1-cycle counterexample, got %d cycles"
      (List.length cex)
  | Equiv.Proved -> Alcotest.fail "add vs or reported equivalent"
  | Equiv.Unknown why -> Alcotest.failf "add vs or undecided (%s)" why

(* Port-matching conventions. *)
let test_port_conventions () =
  (* Exclusive inputs are tied to zero: x + y vs x are equivalent
     exactly when y is constrained to 0. *)
  let x = input "x" 4 and y = input "y" 4 in
  let wide = Circuit.create_exn ~name:"wide" [ ("o", x +: y) ] in
  let narrow = Circuit.create_exn ~name:"narrow" [ ("o", input "x" 4) ] in
  check_proved "x + 0 vs x" (Equiv.check wide narrow);
  (* Mismatched widths on a shared port are a caller error. *)
  let w1 = Circuit.create_exn ~name:"w1" [ ("o", uresize (input "p" 2) 4) ] in
  let w2 = Circuit.create_exn ~name:"w2" [ ("o", uresize (input "p" 3) 4) ] in
  (match Equiv.check w1 w2 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "shared port with differing widths must be rejected");
  (* No shared outputs is vacuous and must be rejected, too. *)
  let o1 = Circuit.create_exn ~name:"o1" [ ("a", input "i" 1) ] in
  let o2 = Circuit.create_exn ~name:"o2" [ ("b", input "i" 1) ] in
  match Equiv.check o1 o2 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "disjoint output names must be rejected"

(* --- Structural hashing --------------------------------------------------- *)

(* Drive the original and its strash-rewritten form in lockstep under
   Cyclesim on deterministic random stimulus, diffing every output
   port after every cycle.  This pins {!Strash.rewrite} — and with it
   the whole hash-consing/rewrite algebra the strash proof engine is
   built on — to the simulator's cycle-accurate semantics. *)
let lockstep_compare what a b ~cycles ~seed =
  let port_set l = List.sort compare (List.map (fun (n, s) -> (n, width s)) l) in
  Alcotest.(check (list (pair string int)))
    (what ^ ": input ports preserved")
    (port_set (Circuit.inputs a))
    (port_set (Circuit.inputs b));
  Alcotest.(check (list (pair string int)))
    (what ^ ": output ports preserved")
    (port_set (Circuit.outputs a))
    (port_set (Circuit.outputs b));
  let rng = Random.State.make [| 0x5ee0 + seed |] in
  let sim_a = Cyclesim.create a and sim_b = Cyclesim.create b in
  let inputs = List.map (fun (n, s) -> (n, width s)) (Circuit.inputs a) in
  for cycle = 1 to cycles do
    List.iter
      (fun (n, w) ->
        let v = Bits.of_int ~width:w (Random.State.int rng (1 lsl min w 30)) in
        Cyclesim.drive sim_a n v;
        Cyclesim.drive sim_b n v)
      inputs;
    Cyclesim.cycle sim_a;
    Cyclesim.cycle sim_b;
    List.iter
      (fun (n, _) ->
        let va = !(Cyclesim.out_port sim_a n)
        and vb = !(Cyclesim.out_port sim_b n) in
        if not (Bits.equal va vb) then
          Alcotest.failf "%s: output %s diverges at cycle %d (%s vs %s)" what n
            cycle (Bits.to_string va) (Bits.to_string vb))
      (Circuit.outputs a)
  done

let test_strash_rewrite_differential () =
  List.iter
    (fun (what, c) -> lockstep_compare what c (Strash.rewrite c) ~cycles:200 ~seed:1)
    (paper_designs ());
  for seed = 1 to 40 do
    let c, _ = Netgen.build_random_circuit ~seed in
    lockstep_compare
      (Printf.sprintf "netgen seed %d" seed)
      c (Strash.rewrite c) ~cycles:64 ~seed
  done

(* The blast and strash engines must return the same verdicts — on
   equivalent pairs, on a sequentially-divergent pair (both sides'
   counterexamples replay through Equiv's internal confirmation), and
   on a combinational miter. *)
let test_equiv_strash_parity () =
  List.iter
    (fun seed ->
      let c, _ = Netgen.build_random_circuit ~seed in
      let o = Optimize.circuit c in
      check_proved (Printf.sprintf "seed %d (strash)" seed) (Equiv.check c o);
      check_proved
        (Printf.sprintf "seed %d (blast)" seed)
        (Equiv.check ~strash:false c o))
    [ 3; 11; 27 ];
  let good = counter_circuit ~broken:false in
  let bad = counter_circuit ~broken:true in
  List.iter
    (fun strash ->
      let engine = if strash then "strash" else "blast" in
      match Equiv.check ~strash good bad with
      | Equiv.Counterexample cex ->
        if List.length cex < 12 then
          Alcotest.failf "%s cex too short (%d cycles)" engine
            (List.length cex)
      | Equiv.Proved ->
        Alcotest.failf "%s: mutated counter reported equivalent" engine
      | Equiv.Unknown why -> Alcotest.failf "%s: undecided (%s)" engine why)
    [ true; false ];
  let x = input "x" 4 and y = input "y" 4 in
  let add = Circuit.create_exn ~name:"add" [ ("s", x +: y) ] in
  let x' = input "x" 4 and y' = input "y" 4 in
  let orr = Circuit.create_exn ~name:"orr" [ ("s", x' |: y') ] in
  List.iter
    (fun strash ->
      match Equiv.check ~strash add orr with
      | Equiv.Counterexample [ _ ] -> ()
      | _ -> Alcotest.fail "combinational miter parity broken")
    [ true; false ]

(* --- Stats merge exactly once --------------------------------------------- *)

(* Satellite regression: a check abandoned by its interrupt hook (the
   supervision watchdog about to retry) must merge nothing — the retry
   merges its own complete run, and the pair together must equal a
   single uninterrupted run, not double it. *)
let test_stats_merge_once_on_retry () =
  let good = counter_circuit ~broken:false in
  let bad = counter_circuit ~broken:true in
  let expect_cex what = function
    | Equiv.Counterexample _ -> ()
    | Equiv.Proved -> Alcotest.failf "%s: reported equivalent" what
    | Equiv.Unknown why -> Alcotest.failf "%s: undecided (%s)" what why
  in
  let oracle = Hwpat_obs.Metrics.create () in
  expect_cex "oracle" (Equiv.check ~metrics:oracle good bad);
  let m = Hwpat_obs.Metrics.create () in
  let fired = ref false in
  (* Attempt 1: aborted from inside SAT search, as a watchdog would. *)
  (try
     ignore
       (Equiv.check ~metrics:m
          ~interrupt:(fun () ->
            fired := true;
            raise Poked)
          good bad)
   with Poked -> ());
  Alcotest.(check bool) "interrupt hook fired" true !fired;
  Alcotest.(check int) "aborted attempt merged nothing" 0
    (Hwpat_obs.Metrics.counter_value m "solver.decisions");
  (* Attempt 2: the retry, run to completion. *)
  expect_cex "retry" (Equiv.check ~metrics:m good bad);
  List.iter
    (fun c ->
      let key = "solver." ^ c in
      Alcotest.(check int)
        (key ^ " equals a single uninterrupted run")
        (Hwpat_obs.Metrics.counter_value oracle key)
        (Hwpat_obs.Metrics.counter_value m key))
    [ "decisions"; "conflicts"; "propagations"; "learned"; "sat"; "unsat" ]

(* --- Portfolio ingredients ------------------------------------------------ *)

let test_portfolio_ingredients () =
  (match Portfolio.racers ~n:1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "n=1 is not a race");
  (match Portfolio.racers ~n:(Portfolio.max_racers + 1) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "n beyond the racer table must be rejected");
  let r = Portfolio.racers ~n:3 in
  Alcotest.(check int) "three racers" 3 (List.length r);
  Alcotest.(check bool)
    "racer 0 is the default config" true
    ((List.hd r).Portfolio.config = Solver.default_config);
  List.iteri
    (fun i racer ->
      Alcotest.(check int) "racer indices are positional" i
        racer.Portfolio.index)
    r;
  (* Uncapped ladder ends unlimited; capped ladder ends at the cap. *)
  let last l = List.nth l (List.length l - 1) in
  Alcotest.(check bool)
    "uncapped ladder ends unlimited" true
    (last (Portfolio.rounds ~cap:Solver.no_budget) = Solver.no_budget);
  let tiny = { Solver.max_conflicts = 1; max_propagations = 1 } in
  Alcotest.(check bool)
    "a tiny cap is the whole ladder" true
    (Portfolio.rounds ~cap:tiny = [ tiny ]);
  let mid = { Solver.max_conflicts = 50_000; max_propagations = 20_000_000 } in
  let ladder = Portfolio.rounds ~cap:mid in
  Alcotest.(check bool) "mid cap keeps lighter rounds" true
    (List.length ladder > 1);
  Alcotest.(check bool) "mid-capped ladder ends at the cap" true
    (last ladder = mid);
  Alcotest.(check bool)
    "budget-exhausted statuses are indefinitive" true
    (Portfolio.budget_limited
       "unknown: solver budget exhausted at frame 3 (no violation in frames \
        0..2)");
  Alcotest.(check bool)
    "structural give-ups are definitive" false
    (Portfolio.budget_limited "unknown: k-induction inconclusive at k=24")

(* --- Pruned containers --------------------------------------------------- *)

let test_pruned_container_equivalence () =
  let open Hwpat_meta in
  let pairs =
    [
      Config.make ~instance_name:"tq" ~kind:Metamodel.Queue
        ~target:Metamodel.Fifo_core ~elem_width:4 ~depth:8
        ~ops_used:[ Metamodel.Write ] ();
      Config.make ~instance_name:"ts" ~kind:Metamodel.Stack
        ~target:Metamodel.Block_ram ~elem_width:4 ~depth:8
        ~ops_used:[ Metamodel.Read ] ();
      Config.make ~instance_name:"tv" ~kind:Metamodel.Vector
        ~target:Metamodel.Ext_sram ~elem_width:4 ~depth:4 ~wait_states:1
        ~ops_used:[ Metamodel.Read; Metamodel.Index ] ();
    ]
  in
  List.iter
    (fun cfg ->
      let full = Hwpat_containers.Elaborate.full cfg in
      let pruned = Hwpat_containers.Elaborate.pruned cfg in
      (* Pruning must actually remove the unused request ports... *)
      if
        List.length (Circuit.inputs pruned) >= List.length (Circuit.inputs full)
      then
        Alcotest.failf "%s: pruning removed no ports" (Config.entity_name cfg);
      (* ...and stay equivalent on the retained interface. *)
      check_proved (Config.entity_name cfg) (Equiv.check full pruned))
    pairs

(* --- Bounded model checking ---------------------------------------------- *)

let test_bmc_paper_designs_hold () =
  List.iter
    (fun (what, c) ->
      Alcotest.(check bool)
        (what ^ " has monitored pairs")
        true
        (Bmc.derive_properties c <> []);
      match Bmc.check_auto ~depth:20 c with
      | Bmc.Holds d -> Alcotest.(check int) (what ^ " depth") 20 d
      | Bmc.Violation v ->
        Alcotest.failf "%s: %s violated at cycle %d" what v.Bmc.property
          v.Bmc.at
      | Bmc.Unknown why -> Alcotest.failf "%s: unknown (%s)" what why)
    (paper_designs ())

(* Starved of propagations, both checkers must give an honest Unknown —
   never hang, never claim a verdict. *)
let test_budget_unknown_verdicts () =
  let tiny = { Solver.max_conflicts = 0; max_propagations = 1 } in
  (match
     Bmc.check_auto ~budget:tiny ~depth:20
       (Hwpat_core.Saa2vga.build ~depth:16
          ~substrate:Hwpat_core.Saa2vga.Fifo
          ~style:Hwpat_core.Saa2vga.Pattern ())
   with
  | Bmc.Unknown why ->
    Alcotest.(check bool)
      "bmc reason mentions the budget" true
      (String.length why >= 6 && String.sub why 0 6 = "solver")
  | Bmc.Holds _ | Bmc.Violation _ ->
    Alcotest.fail "bmc decided within one propagation");
  let good = counter_circuit ~broken:false in
  let bad = counter_circuit ~broken:true in
  match Equiv.check ~budget:tiny good bad with
  | Equiv.Unknown why ->
    Alcotest.(check bool)
      "equiv reason mentions the budget" true
      (String.length why >= 6 && String.sub why 0 6 = "solver")
  | Equiv.Proved | Equiv.Counterexample _ ->
    Alcotest.fail "equiv decided within one propagation"

(* The known-broken device: an external SRAM behind a fault wrapper
   that can suppress acknowledges, guarded by a watchdog that forces a
   fake one after the timeout. A client that trusts the watchdog-forced
   acknowledge drops its request while the SRAM is still mid-access, so
   the raw device-level req/ack pair violates the handshake protocol.
   With the fault control tied low the same pair is provably safe. *)
let broken_device_circuit ~faulty =
  let faults =
    if faulty then Hwpat_devices.Fault_wrap.inputs ~width:4 ()
    else Hwpat_devices.Fault_wrap.no_faults ~width:4
  in
  let req = wire 1 in
  let dev =
    Hwpat_devices.Fault_wrap.sram ~name:"dev" ~words:4 ~width:4 ~wait_states:1
      ~faults ~req ~we:gnd ~addr:(zero 2) ~wr_data:(zero 4) ()
  in
  let wd =
    Hwpat_containers.Protect.watchdog ~timeout:6 ~retries:0 ~req
      ~ack:dev.Hwpat_devices.Sram.ack ()
  in
  (* One-shot client: request held from power-on until the (possibly
     watchdog-forced) acknowledge, then dropped for good. *)
  req
  <== reg ~init:(Bits.one 1) (req &: ~:(wd.Hwpat_containers.Protect.wd_ack));
  Circuit.create_exn
    ~name:(if faulty then "dev_broken" else "dev_safe")
    [
      ("busy", dev.Hwpat_devices.Sram.busy);
      ("rd_data", dev.Hwpat_devices.Sram.rd_data);
      ("wd_err", wd.Hwpat_containers.Protect.wd_err);
    ]

let test_bmc_broken_device () =
  (* Fault control tied low: the raw dev_req/dev_ack pair is safe. *)
  (match Bmc.check_auto ~depth:20 (broken_device_circuit ~faulty:false) with
  | Bmc.Holds 20 -> ()
  | Bmc.Holds d -> Alcotest.failf "safe device: expected depth 20, got %d" d
  | Bmc.Violation v ->
    Alcotest.failf "safe device: spurious violation of %s at %d" v.Bmc.property
      v.Bmc.at
  | Bmc.Unknown why -> Alcotest.failf "safe device: unknown (%s)" why);
  (* Fault control free: BMC must find the protocol violation. *)
  match Bmc.check_auto ~depth:20 (broken_device_circuit ~faulty:true) with
  | Bmc.Holds _ ->
    Alcotest.fail "fault-wrapped device: violation not found to depth 20"
  | Bmc.Unknown why ->
    Alcotest.failf "fault-wrapped device: unknown (%s)" why
  | Bmc.Violation v ->
    Alcotest.(check bool)
      "violation names the dev pair" true
      (String.length v.Bmc.property >= 3
      && String.sub v.Bmc.property 0 3 = "dev");
    Alcotest.(check bool) "trace is non-trivial" true (v.Bmc.at > 0)

(* A hand-rolled FIFO-invariant break: an occupancy register that jumps
   from 0 to 2 on the first push. BMC over the derived count/empty
   properties must refute it. *)
let test_bmc_fifo_invariant_break () =
  let push = input "push" 1 in
  let count = wire 3 in
  let bump = mux2 (count ==: zero 3) (of_int ~width:3 2) (one 3) in
  let next = mux2 push (count +: bump) count in
  count <== reg ~init:(Bits.zero 3) next -- "box_count";
  let empty = (count ==: zero 3) -- "box_empty" in
  let c = Circuit.create_exn ~name:"bad_box" [ ("occ", count); ("e", empty) ] in
  match Bmc.check_auto ~depth:10 c with
  | Bmc.Violation v ->
    Alcotest.(check bool)
      "names box pair" true
      (String.length v.Bmc.property >= 3 && String.sub v.Bmc.property 0 3 = "box")
  | Bmc.Holds _ -> Alcotest.fail "off-by-one occupancy not refuted"
  | Bmc.Unknown why -> Alcotest.failf "off-by-one occupancy unknown (%s)" why

let () =
  Alcotest.run "formal"
    [
      ( "solver",
        [
          Alcotest.test_case "basics" `Quick test_solver_basics;
          Alcotest.test_case "assumptions" `Quick test_solver_assumptions;
          Alcotest.test_case "pigeonhole" `Quick test_solver_pigeonhole;
          Alcotest.test_case "budget trips deterministically" `Quick
            test_solver_budget_deterministic;
          Alcotest.test_case "propagation budget" `Quick
            test_solver_propagation_budget;
          Alcotest.test_case "interrupt hook" `Quick test_solver_interrupt;
          Alcotest.test_case "push/pop scopes" `Quick test_solver_push_pop;
          Alcotest.test_case "scopes keep learned clauses" `Quick
            test_solver_scope_keeps_learning;
          Alcotest.test_case "configs replay bit-identically" `Quick
            test_solver_config_replay_stable;
        ] );
      ( "strash",
        [
          Alcotest.test_case "rewrite is cycle-accurate (43 circuits)" `Slow
            test_strash_rewrite_differential;
          Alcotest.test_case "blast and strash verdicts agree" `Slow
            test_equiv_strash_parity;
        ] );
      ( "portfolio",
        [
          Alcotest.test_case "racers, rounds and definitiveness" `Quick
            test_portfolio_ingredients;
          Alcotest.test_case "stats merge once across a retry" `Quick
            test_stats_merge_once_on_retry;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "optimizer on 40 random circuits" `Slow
            test_equiv_random_circuits;
          Alcotest.test_case "optimizer on the paper designs" `Slow
            test_equiv_paper_designs;
          Alcotest.test_case "Optimize.run verify hook" `Quick
            test_optimize_run_verify_hook;
          Alcotest.test_case "mutated counter yields replayable cex" `Quick
            test_mutated_circuit_counterexample;
          Alcotest.test_case "combinational miter cex" `Quick
            test_combinational_counterexample;
          Alcotest.test_case "port-matching conventions" `Quick
            test_port_conventions;
          Alcotest.test_case "pruned containers equal full models" `Slow
            test_pruned_container_equivalence;
        ] );
      ( "bmc",
        [
          Alcotest.test_case "paper designs hold to depth 20" `Slow
            test_bmc_paper_designs_hold;
          Alcotest.test_case "fault-wrapped device violates handshake" `Quick
            test_bmc_broken_device;
          Alcotest.test_case "off-by-one occupancy refuted" `Quick
            test_bmc_fifo_invariant_break;
          Alcotest.test_case "budget exhaustion reports unknown" `Quick
            test_budget_unknown_verdicts;
        ] );
    ]
