open Hwpat_rtl
open Hwpat_rtl.Signal
open Hwpat_video
open Hwpat_core
open Hwpat_test_support.Sim_util
module Protect = Hwpat_containers.Protect
module Mem_target = Hwpat_containers.Mem_target
module Container_intf = Hwpat_containers.Container_intf
module Sram_arbiter = Hwpat_devices.Sram_arbiter

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---------------------------------------------------------------- *)
(* Monitors stay silent on every healthy design.                      *)
(* ---------------------------------------------------------------- *)

(* run_campaign's fault-free reference run raises if the design hangs
   or trips a monitor, so a zero-fault campaign IS the check. *)
let test_monitors_silent_all_designs () =
  List.iter
    (fun (design, build) ->
      let s =
        Faultsim.run_campaign ~faults:0 ~frame_width:6 ~frame_height:6 ~build
          ~design ()
      in
      check_int (design ^ ": zero faults ran") 0 (List.length s.Faultsim.results))
    Faultsim.designs

let test_monitors_attach_by_convention () =
  List.iter
    (fun design ->
      let s =
        Faultsim.run_campaign ~faults:0 ~frame_width:6 ~frame_height:6
          ~build:(Faultsim.find_design design) ~design ()
      in
      check_bool (design ^ ": monitors auto-attached") true (s.Faultsim.monitors > 0))
    [ "saa2vga_sram_pattern"; "saa2vga_sram_custom"; "saa2vga_sram_protected" ]

let prop name count arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

let qcheck_monitors_silent =
  prop "monitors silent on random frames" 6
    QCheck.(triple (int_range 2 6) (int_range 2 6) (int_range 0 1000))
    (fun (w, h, seed) ->
      let frame = Hwpat_video.Pattern.random ~seed ~width:w ~height:h ~depth:8 () in
      List.for_all
        (fun design ->
          let circuit = Faultsim.find_design design () in
          let collected, _, monitor, _, err =
            Faultsim.run_once ~budget:(400 * w * h) ~frame circuit
          in
          List.length collected = Frame.pixels frame
          && Monitor.ok monitor && not err)
        [ "saa2vga_fifo_pattern"; "saa2vga_sram_pattern"; "saa2vga_sram_protected" ])

(* ---------------------------------------------------------------- *)
(* Every injected handshake-protocol violation is flagged.            *)
(* ---------------------------------------------------------------- *)

(* A harness whose req/ack/payload are plain inputs, so the test can
   break the protocol on purpose and check the monitor notices. *)
let handshake_harness () =
  let req = input "m_req" 1 in
  let ack = input "m_ack" 1 in
  let payload = input "m_payload" 4 in
  let circuit =
    Circuit.create_exn ~name:"hs_harness"
      [ ("req_o", req); ("ack_o", ack); ("payload_o", payload) ]
  in
  let sim = Cyclesim.create circuit in
  let monitor = Monitor.create sim in
  Monitor.add_handshake monitor ~name:"m" ~payload ~req ~ack ();
  (sim, monitor)

let drive_handshake sim monitor steps =
  List.iter
    (fun (r, a, p) ->
      set sim "m_req" ~width:1 r;
      set sim "m_ack" ~width:1 a;
      set sim "m_payload" ~width:4 p;
      Cyclesim.cycle sim;
      Monitor.sample monitor)
    steps

let first_signal monitor =
  match Monitor.first_violation monitor with
  | Some v -> v.Monitor.signal
  | None -> "(none)"

let test_handshake_violations_all_flagged () =
  (* Each protocol breach, injected deliberately, must be flagged —
     and attributed to the right signal. *)
  let scenarios =
    [
      ("spurious ack", [ (0, 0, 0); (0, 1, 0) ], "ack");
      ("dropped request", [ (1, 0, 3); (0, 0, 3) ], "req");
      ("payload changed", [ (1, 0, 3); (1, 0, 5) ], "payload");
    ]
  in
  List.iter
    (fun (label, steps, expect) ->
      let sim, monitor = handshake_harness () in
      drive_handshake sim monitor steps;
      check_bool (label ^ ": flagged") false (Monitor.ok monitor);
      Alcotest.(check string) (label ^ ": attributed") expect (first_signal monitor))
    scenarios;
  (* And a clean transaction raises nothing: req held to ack, then idle. *)
  let sim, monitor = handshake_harness () in
  drive_handshake sim monitor [ (1, 0, 9); (1, 1, 9); (0, 0, 0) ];
  check_bool "clean transaction silent" true (Monitor.ok monitor)

let fifo_harness () =
  let count = input "f_count" 4 in
  let empty = input "f_empty" 1 in
  let full = input "f_full" 1 in
  let circuit =
    Circuit.create_exn ~name:"fifo_harness"
      [ ("c_o", count); ("e_o", empty); ("f_o", full) ]
  in
  let sim = Cyclesim.create circuit in
  let monitor = Monitor.create sim in
  Monitor.add_fifo monitor ~name:"f" ~depth:8 ~full ~count ~empty ();
  (sim, monitor)

let drive_fifo sim monitor steps =
  List.iter
    (fun (c, e, f) ->
      set sim "f_count" ~width:4 c;
      set sim "f_empty" ~width:1 e;
      set sim "f_full" ~width:1 f;
      Cyclesim.cycle sim;
      Monitor.sample monitor)
    steps

let test_fifo_invariants_all_flagged () =
  let scenarios =
    [
      ("empty flag lies", [ (0, 1, 0); (3, 1, 0) ], "empty");
      ("occupancy jump", [ (0, 1, 0); (2, 0, 0) ], "count");
      ("full and empty", [ (0, 1, 1) ], "full");
      ("overflow", [ (12, 0, 0) ], "count");
    ]
  in
  List.iter
    (fun (label, steps, expect) ->
      let sim, monitor = fifo_harness () in
      drive_fifo sim monitor steps;
      check_bool (label ^ ": flagged") false (Monitor.ok monitor);
      Alcotest.(check string) (label ^ ": attributed") expect (first_signal monitor))
    scenarios;
  let sim, monitor = fifo_harness () in
  drive_fifo sim monitor [ (0, 1, 0); (1, 0, 0); (2, 0, 0); (1, 0, 0); (0, 1, 0) ];
  check_bool "legal occupancy trace silent" true (Monitor.ok monitor)

let test_add_auto_finds_conventions () =
  let req = input "m_req" 1 and ack = input "m_ack" 1 in
  let count = input "f_count" 4 and empty = input "f_empty" 1 in
  let full = input "f_full" 1 in
  let circuit =
    Circuit.create_exn ~name:"auto_harness"
      [ ("o1", req); ("o2", ack); ("o3", count); ("o4", empty); ("o5", full) ]
  in
  let sim = Cyclesim.create circuit in
  let monitor = Monitor.create sim in
  check_int "auto-attached both monitors" 2 (Monitor.add_auto monitor);
  set sim "m_req" ~width:1 0;
  set sim "m_ack" ~width:1 1;
  set sim "f_count" ~width:4 3;
  set sim "f_empty" ~width:1 1;
  set sim "f_full" ~width:1 0;
  Cyclesim.cycle sim;
  Monitor.sample monitor;
  check_int "both breaches flagged" 2 (List.length (Monitor.violations monitor));
  check_bool "vcd window renders" true (String.length (Monitor.vcd_window monitor) > 0)

(* ---------------------------------------------------------------- *)
(* Parity detects every single-bit corruption of protected storage.   *)
(* ---------------------------------------------------------------- *)

let parity_width = 8
let parity_words = 16

let parity_harness () =
  let open Container_intf in
  let target w = Mem_target.bram ~name:"pmem" ~size:parity_words ~width:w in
  let wrapped, errs =
    Protect.apply ~name:"p" ~width:parity_width ~parity:true ~op_timeout:None
      target
  in
  let request =
    {
      mem_req = input "req" 1;
      mem_we = input "we" 1;
      mem_addr = input "addr" (Util.address_bits parity_words);
      mem_wdata = input "wdata" parity_width;
    }
  in
  let port = wrapped request in
  Circuit.create_exn ~name:"parity_harness"
    [
      ("ack", port.mem_ack);
      ("rdata", port.mem_rdata);
      ("perr", errs.Protect.parity_err);
    ]

let mem_write sim v =
  set sim "req" ~width:1 1;
  set sim "we" ~width:1 1;
  set sim "addr" ~width:4 0;
  set sim "wdata" ~width:8 v;
  ignore (cycles_until sim "ack");
  set sim "req" ~width:1 0;
  Cyclesim.cycle sim

let mem_read sim =
  set sim "req" ~width:1 1;
  set sim "we" ~width:1 0;
  set sim "addr" ~width:4 0;
  ignore (cycles_until sim "ack");
  let v = out_int sim "rdata" in
  set sim "req" ~width:1 0;
  (* the sticky error flag latches on the edge ending the ack cycle *)
  Cyclesim.cycle sim;
  v

let test_parity_detects_every_bit_flip () =
  let circuit = parity_harness () in
  let storage =
    match Circuit.memories circuit with
    | [ m ] -> m
    | ms -> Alcotest.failf "expected one protected memory, found %d" (List.length ms)
  in
  (* Every bit of the widened word — payload bits 0..7 AND the parity
     bit at position 8 — must be caught when flipped. *)
  for bit = 0 to parity_width do
    let sim = Cyclesim.create circuit in
    let injector = Fault.create sim in
    set sim "req" ~width:1 0;
    Cyclesim.cycle sim;
    mem_write sim 0xA5;
    Fault.inject injector (Fault.Mem_flip { memory = storage; addr = 0; bit });
    ignore (mem_read sim);
    check_int (Printf.sprintf "bit %d flip detected" bit) 1 (out_int sim "perr")
  done;
  (* Control: an uncorrupted word reads back clean with the flag low. *)
  let sim = Cyclesim.create circuit in
  set sim "req" ~width:1 0;
  Cyclesim.cycle sim;
  mem_write sim 0xA5;
  check_int "clean read-back" 0xA5 (mem_read sim);
  check_int "no false alarm" 0 (out_int sim "perr")

let test_disabled_protection_is_identity () =
  (* parity:false + op_timeout:None must add zero hardware: the wrapped
     and bare targets elaborate to structurally identical circuits. *)
  let open Container_intf in
  let build wrap =
    let target w = Mem_target.bram ~name:"pmem" ~size:parity_words ~width:w in
    let mk =
      if wrap then
        fst
          (Protect.apply ~name:"p" ~width:parity_width ~parity:false
             ~op_timeout:None target)
      else target parity_width
    in
    let request =
      {
        mem_req = input "req" 1;
        mem_we = input "we" 1;
        mem_addr = input "addr" (Util.address_bits parity_words);
        mem_wdata = input "wdata" parity_width;
      }
    in
    let port = mk request in
    Circuit.create_exn ~name:"bare_harness"
      [ ("ack", port.mem_ack); ("rdata", port.mem_rdata) ]
  in
  let wrapped = build true and bare = build false in
  check_int "same node count"
    (List.length (Circuit.signals bare))
    (List.length (Circuit.signals wrapped))

(* ---------------------------------------------------------------- *)
(* Watchdog: a dead acknowledge degrades gracefully instead of        *)
(* hanging, and raises the error flag.                                *)
(* ---------------------------------------------------------------- *)

let test_watchdog_unhangs_dead_ack () =
  let circuit =
    Saa2vga.build_protected ~depth:16 ~op_timeout:(Some 8) ~faulty:true ()
  in
  let frame = Hwpat_video.Pattern.gradient ~width:6 ~height:6 ~depth:8 in
  let drop = Circuit.find_input circuit "in_sram_fault_drop_ack" in
  let events =
    [
      {
        Fault.at = 30;
        fault = Fault.Stuck_at { signal = drop; value = Bits.one 1; cycles = 0 };
      };
    ]
  in
  let collected, _, _, _, err =
    Faultsim.run_once ~events ~budget:20_000 ~frame circuit
  in
  check_int "all pixels still delivered" (Frame.pixels frame)
    (List.length collected);
  check_bool "degradation flagged on err" true err

let test_protected_faultfree_bit_exact () =
  let frame = Hwpat_video.Pattern.gradient ~width:8 ~height:8 ~depth:8 in
  let reference, _, _, _, _ =
    Faultsim.run_once ~budget:30_000 ~frame
      (Saa2vga.build ~substrate:Saa2vga.Sram ~style:Saa2vga.Pattern ())
  in
  let collected, _, monitor, _, err =
    Faultsim.run_once ~budget:30_000 ~frame (Saa2vga.build_protected ())
  in
  Alcotest.(check (list int)) "bit-identical with unprotected" reference collected;
  check_bool "monitors silent" true (Monitor.ok monitor);
  check_bool "err low" false err

(* ---------------------------------------------------------------- *)
(* Campaigns are deterministic in the seed.                           *)
(* ---------------------------------------------------------------- *)

let fingerprint (s : Faultsim.summary) =
  List.map
    (fun (r : Faultsim.result) ->
      ( r.Faultsim.description,
        (Faultsim.outcome_name r.outcome, (r.err_flag, r.completed, r.cycles)) ))
    s.results

let test_campaign_deterministic () =
  let run () =
    Faultsim.run_campaign ~seed:5 ~faults:8 ~frame_width:6 ~frame_height:6
      ~build:(Faultsim.find_design "saa2vga_sram_pattern")
      ~design:"saa2vga_sram_pattern" ()
  in
  let a = run () and b = run () in
  Alcotest.(check (list (pair string (pair string (triple bool bool int)))))
    "same seed, same outcomes" (fingerprint a) (fingerprint b)

(* ---------------------------------------------------------------- *)
(* Shared-SRAM arbiter: no starvation, bounded waits under            *)
(* randomized two-client contention.                                  *)
(* ---------------------------------------------------------------- *)

let arbiter_words = 16

let arbiter_harness () =
  let abits = Util.address_bits arbiter_words in
  let client pfx =
    {
      Sram_arbiter.req = input (pfx ^ "_req") 1;
      we = input (pfx ^ "_we") 1;
      addr = input (pfx ^ "_addr") abits;
      wr_data = input (pfx ^ "_wd") 8;
    }
  in
  let a = client "a" and b = client "b" in
  let t = Sram_arbiter.create ~words:arbiter_words ~width:8 ~wait_states:1 ~a ~b () in
  let circuit =
    Circuit.create_exn ~name:"arb_harness"
      Sram_arbiter.
        [
          ("a_ack", t.a.ack);
          ("a_rd", t.a.rd_data);
          ("b_ack", t.b.ack);
          ("b_rd", t.b.rd_data);
        ]
  in
  let sim = Cyclesim.create circuit in
  List.iter
    (fun p ->
      set sim (p ^ "_req") ~width:1 0;
      set sim (p ^ "_we") ~width:1 0;
      set sim (p ^ "_addr") ~width:4 0;
      set sim (p ^ "_wd") ~width:8 0)
    [ "a"; "b" ];
  Cyclesim.cycle sim;
  sim

let test_arbiter_no_starvation () =
  let sim = arbiter_harness () in
  (* Both clients hammer back-to-back reads; alternating priority must
     split the bandwidth essentially evenly. *)
  set sim "a_req" ~width:1 1;
  set sim "b_req" ~width:1 1;
  let a_acks = ref 0 and b_acks = ref 0 in
  for _ = 1 to 400 do
    Cyclesim.cycle sim;
    if out_int sim "a_ack" = 1 then incr a_acks;
    if out_int sim "b_ack" = 1 then incr b_acks
  done;
  check_bool "client a served" true (!a_acks > 10);
  check_bool "client b served" true (!b_acks > 10);
  check_bool
    (Printf.sprintf "balanced service (a=%d b=%d)" !a_acks !b_acks)
    true
    (abs (!a_acks - !b_acks) <= 2)

let test_arbiter_bounded_wait () =
  let sim = arbiter_harness () in
  let rng = Random.State.make [| 0xA3B1 |] in
  let prefixes = [| "a"; "b" |] in
  let requesting = [| false; false |] in
  let wait = [| 0; 0 |] in
  let served = [| 0; 0 |] in
  let worst = ref 0 in
  for _ = 1 to 600 do
    for i = 0 to 1 do
      if (not requesting.(i)) && Random.State.bool rng then begin
        requesting.(i) <- true;
        (* payload chosen at request time and held until ack *)
        set sim (prefixes.(i) ^ "_req") ~width:1 1;
        set sim (prefixes.(i) ^ "_we") ~width:1 (Random.State.int rng 2);
        set sim (prefixes.(i) ^ "_addr") ~width:4 (Random.State.int rng arbiter_words);
        set sim (prefixes.(i) ^ "_wd") ~width:8 (Random.State.int rng 256)
      end
    done;
    Cyclesim.cycle sim;
    for i = 0 to 1 do
      if requesting.(i) then
        if out_int sim (prefixes.(i) ^ "_ack") = 1 then begin
          served.(i) <- served.(i) + 1;
          worst := max !worst wait.(i);
          wait.(i) <- 0;
          requesting.(i) <- false;
          set sim (prefixes.(i) ^ "_req") ~width:1 0
        end
        else wait.(i) <- wait.(i) + 1
    done
  done;
  check_bool "client a progressed" true (served.(0) > 20);
  check_bool "client b progressed" true (served.(1) > 20);
  check_bool
    (Printf.sprintf "worst-case wait bounded (%d cycles)" !worst)
    true (!worst <= 20)

(* ---------------------------------------------------------------- *)

let () =
  Alcotest.run "robustness"
    [
      ( "monitors",
        [
          Alcotest.test_case "silent on all healthy designs" `Slow
            test_monitors_silent_all_designs;
          Alcotest.test_case "auto-attach on saa2vga designs" `Slow
            test_monitors_attach_by_convention;
          qcheck_monitors_silent;
          Alcotest.test_case "every handshake violation flagged" `Quick
            test_handshake_violations_all_flagged;
          Alcotest.test_case "every fifo invariant breach flagged" `Quick
            test_fifo_invariants_all_flagged;
          Alcotest.test_case "add_auto finds naming conventions" `Quick
            test_add_auto_finds_conventions;
        ] );
      ( "protection",
        [
          Alcotest.test_case "parity detects every bit flip" `Quick
            test_parity_detects_every_bit_flip;
          Alcotest.test_case "disabled protection adds nothing" `Quick
            test_disabled_protection_is_identity;
          Alcotest.test_case "watchdog unhangs dead ack" `Quick
            test_watchdog_unhangs_dead_ack;
          Alcotest.test_case "protected design bit-exact fault-free" `Quick
            test_protected_faultfree_bit_exact;
        ] );
      ( "campaigns",
        [
          Alcotest.test_case "deterministic in the seed" `Slow
            test_campaign_deterministic;
        ] );
      ( "arbiter",
        [
          Alcotest.test_case "no starvation" `Quick test_arbiter_no_starvation;
          Alcotest.test_case "bounded wait under contention" `Quick
            test_arbiter_bounded_wait;
        ] );
    ]
