(* The design-service daemon: JSON framing, canonical cache keys, LRU
   correctness, the worker pool, and full request/response sessions
   over socketpairs — including cached-vs-fresh byte-identity,
   concurrent clients against a shared cache, per-request deadlines,
   admission control and both shutdown paths. *)

open Hwpat_serve

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* --- Json ----------------------------------------------------------------- *)

let test_json_roundtrip () =
  let text = {|{"b":[1,2.5,"x",true,null],"a":{"k":"\u0041"}}|} in
  match Json.parse text with
  | Error e -> Alcotest.fail e
  | Ok v ->
    check_string "compact deterministic rendering"
      {|{"b":[1,2.5,"x",true,null],"a":{"k":"A"}}|}
      (Json.to_string v)

let test_json_rejects () =
  let bad input =
    match Json.parse input with
    | Ok _ -> Alcotest.fail (Printf.sprintf "accepted %S" input)
    | Error e ->
      check_bool "error names a byte offset" true
        (String.length e > 0
        && String.split_on_char ' ' e |> List.exists (fun w -> w = "byte"))
  in
  bad "not json";
  bad "{\"a\":1,}";
  bad "{\"a\":1} trailing";
  bad "\"unterminated";
  bad "[1,2,";
  bad "\"\\ud800\"" (* unpaired surrogate *)

let test_json_depth_capped () =
  let deep = String.make 400 '[' ^ String.make 400 ']' in
  match Json.parse deep with
  | Ok _ -> Alcotest.fail "accepted 400-deep nesting"
  | Error _ -> ()

let test_json_surrogate_pair () =
  match Json.parse "\"\\ud83d\\ude00\"" with
  | Ok (Json.String s) -> check_string "utf8" "\xf0\x9f\x98\x80" s
  | Ok _ | Error _ -> Alcotest.fail "surrogate pair should decode"

let test_json_float_format () =
  check_string "integral float keeps .0" "[1.0,0.5]"
    (Json.to_string (Json.List [ Json.Float 1.0; Json.Float 0.5 ]))

(* --- Canon ---------------------------------------------------------------- *)

let params_of_string s =
  match Json.parse s with Ok v -> v | Error e -> Alcotest.fail e

(* Member order, container aliases, spelled-out defaults and operation
   order/duplicates all canonicalize away: one key, one config. *)
let test_canon_orderings_same_key () =
  let a =
    params_of_string
      {|{"container":"rbuffer","target":"sram","width":8,"depth":512,"ops":["read","inc"]}|}
  in
  let b =
    params_of_string
      {|{"ops":["inc","read","inc"],"depth":512,"target":"sram","wait_states":1,"container":"read-buffer","bus":8,"width":8}|}
  in
  let ka = Canon.config_key (Canon.config_of_params a) in
  let kb = Canon.config_key (Canon.config_of_params b) in
  check_string "same canonical key" ka kb

let test_canon_distinct_keys () =
  let key s = Canon.config_key (Canon.config_of_params (params_of_string s)) in
  let a = key {|{"container":"queue","target":"fifo","width":8}|} in
  let b = key {|{"container":"queue","target":"fifo","width":16}|} in
  check_bool "width is part of the identity" true (a <> b)

let test_canon_invalid_params () =
  (match
     Canon.config_of_params
       (params_of_string {|{"container":"heap","target":"fifo"}|})
   with
  | _ -> Alcotest.fail "unknown container should be rejected"
  | exception Protocol.Error (Protocol.Invalid_params, _) -> ());
  match
    Canon.config_of_params (params_of_string {|{"container":"queue"}|})
  with
  | _ -> Alcotest.fail "missing target should be rejected"
  | exception Protocol.Error (Protocol.Invalid_params, _) -> ()

(* --- Cache ---------------------------------------------------------------- *)

let test_cache_hit_miss () =
  let c = Cache.create ~name:"t" ~capacity:4 () in
  let computed = ref 0 in
  let v1 = Cache.find_or_add c "k" (fun () -> incr computed; 42) in
  let v2 = Cache.find_or_add c "k" (fun () -> incr computed; 43) in
  check_int "computed once" 1 !computed;
  check_int "first" 42 v1;
  check_int "second served from cache" 42 v2;
  let cnt = Cache.counters c in
  check_int "hits" 1 cnt.Cache.hits;
  check_int "misses" 1 cnt.Cache.misses

let test_cache_lru_eviction () =
  let c = Cache.create ~name:"t" ~capacity:2 () in
  Cache.add c "a" 1;
  Cache.add c "b" 2;
  (* touch a so b becomes the least recently used *)
  check_bool "a present" true (Cache.find c "a" = Some 1);
  Cache.add c "c" 3;
  check_bool "b evicted" true (Cache.find c "b" = None);
  check_bool "a survives" true (Cache.find c "a" = Some 1);
  check_bool "c present" true (Cache.find c "c" = Some 3);
  check_int "one eviction" 1 (Cache.counters c).Cache.evictions;
  check_int "bounded" 2 (Cache.length c)

let test_cache_disabled () =
  let c = Cache.create ~name:"t" ~capacity:0 () in
  let computed = ref 0 in
  ignore (Cache.find_or_add c "k" (fun () -> incr computed; 1));
  ignore (Cache.find_or_add c "k" (fun () -> incr computed; 1));
  check_int "computes every time" 2 !computed;
  check_int "retains nothing" 0 (Cache.length c)

let test_cache_failed_compute_not_inserted () =
  let c = Cache.create ~name:"t" ~capacity:4 () in
  (try
     ignore (Cache.find_or_add c "k" (fun () -> failwith "boom"))
   with Failure _ -> ());
  check_int "nothing inserted" 0 (Cache.length c);
  check_int "still a miss afterwards" 42
    (Cache.find_or_add c "k" (fun () -> 42))

(* --- Parallel.Pool -------------------------------------------------------- *)

let test_pool_runs_everything () =
  let pool = Hwpat_core.Parallel.Pool.create ~jobs:4 () in
  let hits = Atomic.make 0 in
  for _ = 1 to 100 do
    check_bool "accepted" true
      (Hwpat_core.Parallel.Pool.submit pool (fun () -> Atomic.incr hits))
  done;
  Hwpat_core.Parallel.Pool.drain pool;
  check_int "all tasks ran" 100 (Atomic.get hits);
  Hwpat_core.Parallel.Pool.shutdown pool;
  check_bool "rejects after shutdown" false
    (Hwpat_core.Parallel.Pool.submit pool (fun () -> ()))

let test_pool_survives_raising_task () =
  let pool = Hwpat_core.Parallel.Pool.create ~jobs:2 () in
  let ok = Atomic.make 0 in
  ignore (Hwpat_core.Parallel.Pool.submit pool (fun () -> failwith "boom"));
  for _ = 1 to 10 do
    ignore (Hwpat_core.Parallel.Pool.submit pool (fun () -> Atomic.incr ok))
  done;
  Hwpat_core.Parallel.Pool.drain pool;
  check_int "later tasks unaffected" 10 (Atomic.get ok);
  check_int "escape recorded" 1 (Hwpat_core.Parallel.Pool.escaped pool);
  Hwpat_core.Parallel.Pool.shutdown pool

(* --- Supervise.run_one ----------------------------------------------------- *)

let test_run_one_deadline () =
  let policy =
    {
      Hwpat_core.Supervise.retries = 0;
      backoff_s = 0.0;
      shard_timeout_s = 0.05;
    }
  in
  match
    Hwpat_core.Supervise.run_one ~policy (fun ctx ->
        let until = Unix.gettimeofday () +. 5.0 in
        while Unix.gettimeofday () < until do
          Hwpat_core.Supervise.check ctx;
          Unix.sleepf 0.001
        done)
  with
  | Hwpat_core.Supervise.Done () -> Alcotest.fail "deadline should trip"
  | Hwpat_core.Supervise.Unfinished { attempts; _ } ->
    check_int "no retries configured" 1 attempts

(* --- Server sessions over socketpairs ------------------------------------- *)

let config ?(jobs = 1) ?(cache_size = 32) ?(max_inflight = 64)
    ?(queue_bound = 32) ?(max_request_bytes = 1 lsl 20) () =
  {
    Server.jobs;
    campaign_jobs = 1;
    cache_size;
    max_inflight;
    queue_bound;
    max_request_bytes;
    trace = Hwpat_obs.Trace.null;
    metrics = Hwpat_obs.Metrics.null;
  }

type client = {
  fd : Unix.file_descr;
  buf : Buffer.t;
  mutable pending : string list;
}

let rec write_all fd s off len =
  if len > 0 then begin
    let n = Unix.write_substring fd s off len in
    write_all fd s (off + n) (len - n)
  end

let send c line =
  let line = line ^ "\n" in
  write_all c.fd line 0 (String.length line)

let rec recv c =
  match c.pending with
  | l :: rest ->
    c.pending <- rest;
    l
  | [] ->
    let chunk = Bytes.create 4096 in
    let n = Unix.read c.fd chunk 0 (Bytes.length chunk) in
    if n = 0 then Alcotest.fail "server closed the stream early";
    Buffer.add_subbytes c.buf chunk 0 n;
    let s = Buffer.contents c.buf in
    (match String.rindex_opt s '\n' with
    | None -> ()
    | Some i ->
      Buffer.clear c.buf;
      Buffer.add_string c.buf (String.sub s (i + 1) (String.length s - i - 1));
      c.pending <- String.split_on_char '\n' (String.sub s 0 i));
    recv c

let rpc c line =
  send c line;
  recv c

let with_server ?(cfg = config ()) f =
  let server = Server.create cfg in
  Fun.protect
    ~finally:(fun () ->
      Server.stop server;
      Server.shutdown server)
    (fun () -> f server)

let with_conn server f =
  let client_fd, server_fd =
    Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0
  in
  let d =
    Domain.spawn (fun () -> Server.serve_connection server server_fd server_fd)
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close client_fd with Unix.Unix_error _ -> ());
      Domain.join d;
      try Unix.close server_fd with Unix.Unix_error _ -> ())
    (fun () -> f { fd = client_fd; buf = Buffer.create 1024; pending = [] })

let error_code line =
  match Json.parse line with
  | Ok doc -> (
    match Json.member "error" doc with
    | Some err -> Json.get_string err "code" ~default:""
    | None -> "")
  | Error e -> Alcotest.fail e

let is_ok line = error_code line = ""

(* A canonically repeated request is answered byte-identically whether
   it comes from the results cache or is recomputed (cache=false). *)
let test_cached_vs_fresh_identical () =
  with_server @@ fun server ->
  with_conn server @@ fun c ->
  let p1 =
    {|{"id":"e","method":"elaborate","params":{"container":"queue","target":"bram","width":8,"depth":64}}|}
  in
  let p2 =
    {|{"id":"e","method":"elaborate","params":{"depth":64,"width":8,"target":"bram","container":"queue"}}|}
  in
  let p3 =
    {|{"id":"e","method":"elaborate","params":{"container":"queue","target":"bram","width":8,"depth":64,"cache":false}}|}
  in
  let r1 = rpc c p1 in
  let r2 = rpc c p2 in
  let r3 = rpc c p3 in
  check_bool "first answered" true (is_ok r1);
  check_string "reordered params: cache hit, same bytes" r1 r2;
  check_string "fresh recompute: same bytes" r1 r3;
  let stats = rpc c {|{"id":"s","method":"stats"}|} in
  match Json.parse stats with
  | Error e -> Alcotest.fail e
  | Ok doc ->
    let results =
      Json.member "result" doc
      |> Option.get |> Json.member "caches" |> Option.get
      |> Json.member "results" |> Option.get
    in
    check_int "one results-cache hit visible in stats" 1
      (Json.get_int results "hits" ~default:(-1))

let test_simulate_plan_cache () =
  with_server @@ fun server ->
  with_conn server @@ fun c ->
  let req =
    {|{"id":1,"method":"simulate","params":{"design":"blur","width":8,"height":8}}|}
  in
  let r1 = rpc c req in
  let r2 = rpc c req in
  check_bool "simulate succeeds" true (is_ok r1);
  check_string "warm request byte-identical" r1 r2;
  let fresh =
    rpc c
      {|{"id":1,"method":"simulate","params":{"design":"blur","width":8,"height":8,"cache":false}}|}
  in
  check_string "recomputed on a cached plan: same bytes" r1 fresh

(* Tiny LRU: evicting circuits must never change what a later request
   for the evicted key answers. *)
let test_eviction_correctness () =
  with_server ~cfg:(config ~cache_size:1 ()) @@ fun server ->
  with_conn server @@ fun c ->
  let e w =
    Printf.sprintf
      {|{"id":"e%d","method":"elaborate","params":{"container":"queue","target":"bram","width":%d,"depth":64}}|}
      w w
  in
  let first8 = rpc c (e 8) in
  let first16 = rpc c (e 16) in
  let again8 = rpc c (e 8) in
  let again16 = rpc c (e 16) in
  check_bool "distinct configs differ" true (first8 <> first16);
  check_string "recomputed after eviction: same bytes" first8 again8;
  check_string "and for the other key" first16 again16;
  let stats = rpc c {|{"id":"s","method":"stats"}|} in
  match Json.parse stats with
  | Error e -> Alcotest.fail e
  | Ok doc ->
    let circuits =
      Json.member "result" doc
      |> Option.get |> Json.member "caches" |> Option.get
      |> Json.member "circuits" |> Option.get
    in
    check_bool "evictions recorded" true
      (Json.get_int circuits "evictions" ~default:0 >= 1);
    check_int "capacity respected" 1
      (Json.get_int circuits "entries" ~default:(-1))

(* N concurrent clients hammering a shared cache get exactly the
   responses a serial session gets. *)
let test_parallel_clients_equal_serial () =
  let script =
    [
      {|{"id":1,"method":"elaborate","params":{"container":"queue","target":"bram","width":8,"depth":64}}|};
      {|{"id":2,"method":"simulate","params":{"design":"blur","width":8,"height":8}}|};
      {|{"id":3,"method":"elaborate","params":{"container":"stack","target":"lifo","width":8,"depth":64}}|};
      {|{"id":4,"method":"simulate","params":{"design":"saa2vga-fifo","width":8,"height":8}}|};
      {|{"id":5,"method":"ping"}|};
    ]
  in
  let run_script c = List.map (rpc c) script in
  let serial =
    with_server @@ fun server -> with_conn server @@ run_script
  in
  with_server ~cfg:(config ~jobs:4 ()) @@ fun server ->
  let domains =
    List.init 4 (fun _ ->
        let client_fd, server_fd =
          Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0
        in
        let sd =
          Domain.spawn (fun () ->
              Server.serve_connection server server_fd server_fd)
        in
        let cd =
          Domain.spawn (fun () ->
              let c = { fd = client_fd; buf = Buffer.create 1024; pending = [] } in
              let rs = run_script c in
              Unix.close client_fd;
              rs)
        in
        (sd, cd, server_fd))
  in
  List.iter
    (fun (sd, cd, server_fd) ->
      let responses = Domain.join cd in
      Domain.join sd;
      (try Unix.close server_fd with Unix.Unix_error _ -> ());
      List.iter2
        (fun expected got -> check_string "matches serial session" expected got)
        serial responses)
    domains

(* A deadline-cancelled request answers [deadline] and leaves the pool
   and caches serving later requests normally. *)
let test_deadline_leaves_server_healthy () =
  with_server @@ fun server ->
  with_conn server @@ fun c ->
  let r =
    rpc c {|{"id":1,"method":"sleep","params":{"seconds":30.0,"deadline_s":0.1}}|}
  in
  check_string "deadline error" "deadline" (error_code r);
  let r2 = rpc c {|{"id":2,"method":"ping"}|} in
  check_bool "pool healthy afterwards" true (is_ok r2);
  let r3 =
    rpc c
      {|{"id":3,"method":"simulate","params":{"design":"blur","width":8,"height":8}}|}
  in
  check_bool "pipeline healthy afterwards" true (is_ok r3)

let test_oversized_line () =
  with_server ~cfg:(config ~max_request_bytes:300 ()) @@ fun server ->
  with_conn server @@ fun c ->
  let long =
    Printf.sprintf {|{"id":1,"method":"ping","params":{"pad":"%s"}}|}
      (String.make 400 'x')
  in
  let r = rpc c long in
  check_string "oversized rejected" "oversized" (error_code r);
  let r2 = rpc c {|{"id":2,"method":"ping"}|} in
  check_bool "next request unaffected" true (is_ok r2)

let test_overload_rejection () =
  with_server ~cfg:(config ~jobs:1 ~max_inflight:2 ~queue_bound:2 ())
  @@ fun server ->
  with_conn server @@ fun c ->
  send c {|{"id":1,"method":"sleep","params":{"seconds":0.3}}|};
  send c {|{"id":2,"method":"sleep","params":{"seconds":0.3}}|};
  send c {|{"id":3,"method":"ping"}|};
  let r1 = recv c in
  let r2 = recv c in
  let r3 = recv c in
  check_bool "first admitted" true (is_ok r1);
  check_bool "second admitted" true (is_ok r2);
  check_string "third rejected cleanly" "overloaded" (error_code r3);
  let r4 = rpc c {|{"id":4,"method":"ping"}|} in
  check_bool "accepts again once drained" true (is_ok r4)

(* Stop ends intake: once the server is stopping, a connection only
   processes what it has already read, so the post-shutdown request
   must ride the same write as the shutdown itself to be answered (a
   later write would meet a drained, closed stream instead). *)
let test_shutdown_method () =
  with_server @@ fun server ->
  with_conn server @@ fun c ->
  let lines =
    {|{"id":1,"method":"elaborate","params":{"container":"queue","target":"fifo","width":8,"depth":64}}|}
    ^ "\n" ^ {|{"id":2,"method":"shutdown"}|} ^ "\n"
    ^ {|{"id":3,"method":"ping"}|} ^ "\n"
  in
  write_all c.fd lines 0 (String.length lines);
  let r1 = recv c in
  let r2 = recv c in
  let r3 = recv c in
  check_bool "request before shutdown served" true (is_ok r1);
  check_bool "shutdown acknowledged" true (is_ok r2);
  check_string "after shutdown: rejected" "shutting-down" (error_code r3);
  check_bool "server stopping" true (Server.stopping server)

let test_batch_request () =
  with_server @@ fun server ->
  with_conn server @@ fun c ->
  let r =
    rpc c
      {|{"id":1,"method":"batch","params":{"requests":[{"method":"elaborate","params":{"container":"queue","target":"bram","width":8,"depth":64}},{"method":"elaborate","params":{"depth":64,"width":8,"target":"bram","container":"queue"}},{"method":"nope"}]}}|}
  in
  match Json.parse r with
  | Error e -> Alcotest.fail e
  | Ok doc ->
    let result = Json.member "result" doc |> Option.get in
    check_int "all items answered" 3 (Json.get_int result "count" ~default:0);
    (match Json.get_list_opt result "results" with
    | Some [ a; b; bad ] ->
      check_string "canonically equal items answered identically"
        (Json.to_string a) (Json.to_string b);
      check_bool "bad item reports its error in place" true
        (Json.member "error" bad <> None)
    | _ -> Alcotest.fail "expected three batch items")

let test_faultsim_request_cached () =
  with_server @@ fun server ->
  with_conn server @@ fun c ->
  let req =
    {|{"id":1,"method":"faultsim","params":{"design":"saa2vga_sram_pattern","faults":3,"frame_size":6}}|}
  in
  let r1 = rpc c req in
  check_bool "campaign ran" true (is_ok r1);
  let r2 = rpc c req in
  check_string "campaign summary served from cache, same bytes" r1 r2

let test_unix_socket_listener () =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "hwpat_serve_test_%d.sock" (Unix.getpid ()))
  in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let server = Server.create (config ()) in
  let listener = Domain.spawn (fun () -> Server.run_socket server ~path) in
  let deadline = Unix.gettimeofday () +. 5.0 in
  while (not (Sys.file_exists path)) && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.01
  done;
  check_bool "socket appears" true (Sys.file_exists path);
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  let c = { fd; buf = Buffer.create 256; pending = [] } in
  let r = rpc c {|{"id":1,"method":"ping"}|} in
  check_bool "ping over the socket" true (is_ok r);
  let r2 = rpc c {|{"id":2,"method":"shutdown"}|} in
  check_bool "shutdown over the socket" true (is_ok r2);
  Unix.close fd;
  Domain.join listener;
  check_bool "socket file removed on exit" false (Sys.file_exists path)

(* A client that disconnects before reading its responses must not
   kill the daemon (SIGPIPE is ignored) or wedge it (the write error
   must release the connection mutex and drop the parked responses):
   the connection drains, and a later client is served normally. *)
let test_dead_client_harmless () =
  with_server @@ fun server ->
  let client_fd, server_fd =
    Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0
  in
  let d =
    Domain.spawn (fun () -> Server.serve_connection server server_fd server_fd)
  in
  let req =
    {|{"id":"x","method":"elaborate","params":{"container":"queue","target":"bram","width":8,"depth":64}}|}
    ^ "\n"
  in
  write_all client_fd req 0 (String.length req);
  write_all client_fd req 0 (String.length req);
  (* gone before reading either response *)
  Unix.close client_fd;
  Domain.join d;
  (try Unix.close server_fd with Unix.Unix_error _ -> ());
  with_conn server @@ fun c ->
  check_bool "server still answers a fresh connection" true
    (is_ok
       (rpc c
          {|{"id":"y","method":"elaborate","params":{"container":"queue","target":"bram","width":8,"depth":64}}|}))

(* run_socket must not displace whatever already lives at the path
   unless it is a stale socket. *)
let test_socket_path_not_clobbered () =
  let path = Filename.temp_file "hwpat_serve_test" ".txt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      with_server @@ fun server ->
      (match Server.run_socket server ~path with
      | () -> Alcotest.fail "expected Failure on a non-socket path"
      | exception Failure _ -> ());
      check_bool "existing file left in place" true (Sys.file_exists path))

let () =
  Alcotest.run "serve"
    [
      ( "json",
        [
          Alcotest.test_case "parse/print round trip" `Quick test_json_roundtrip;
          Alcotest.test_case "malformed inputs rejected" `Quick test_json_rejects;
          Alcotest.test_case "nesting depth capped" `Quick test_json_depth_capped;
          Alcotest.test_case "surrogate pairs decode" `Quick
            test_json_surrogate_pair;
          Alcotest.test_case "float format fixed" `Quick test_json_float_format;
        ] );
      ( "canon",
        [
          Alcotest.test_case "orderings and aliases share a key" `Quick
            test_canon_orderings_same_key;
          Alcotest.test_case "different configs differ" `Quick
            test_canon_distinct_keys;
          Alcotest.test_case "invalid params rejected" `Quick
            test_canon_invalid_params;
        ] );
      ( "cache",
        [
          Alcotest.test_case "hit/miss accounting" `Quick test_cache_hit_miss;
          Alcotest.test_case "LRU evicts the right entry" `Quick
            test_cache_lru_eviction;
          Alcotest.test_case "capacity 0 disables" `Quick test_cache_disabled;
          Alcotest.test_case "failed compute not inserted" `Quick
            test_cache_failed_compute_not_inserted;
        ] );
      ( "pool",
        [
          Alcotest.test_case "runs everything, rejects after shutdown" `Quick
            test_pool_runs_everything;
          Alcotest.test_case "survives raising tasks" `Quick
            test_pool_survives_raising_task;
          Alcotest.test_case "run_one deadline" `Quick test_run_one_deadline;
        ] );
      ( "server",
        [
          Alcotest.test_case "cached vs fresh byte-identical" `Quick
            test_cached_vs_fresh_identical;
          Alcotest.test_case "warm simulate byte-identical" `Quick
            test_simulate_plan_cache;
          Alcotest.test_case "tiny LRU stays correct" `Quick
            test_eviction_correctness;
          Alcotest.test_case "4 clients equal serial" `Quick
            test_parallel_clients_equal_serial;
          Alcotest.test_case "deadline leaves server healthy" `Quick
            test_deadline_leaves_server_healthy;
          Alcotest.test_case "oversized line rejected" `Quick
            test_oversized_line;
          Alcotest.test_case "overload rejected cleanly" `Quick
            test_overload_rejection;
          Alcotest.test_case "shutdown method drains" `Quick
            test_shutdown_method;
          Alcotest.test_case "batch answers every item" `Quick
            test_batch_request;
          Alcotest.test_case "faultsim campaign cached" `Quick
            test_faultsim_request_cached;
          Alcotest.test_case "unix socket listener" `Quick
            test_unix_socket_listener;
          Alcotest.test_case "dead client harmless" `Quick
            test_dead_client_harmless;
          Alcotest.test_case "non-socket path not clobbered" `Quick
            test_socket_path_not_clobbered;
        ] );
    ]
