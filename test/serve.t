The serve daemon's golden transcript.  Everything runs at -j 1 so the
single pool worker answers strictly in intake order and every counter
in the final stats is determined by the script alone; the stats request
is the LAST line of the session because intake-side counters for any
later line would race the stats snapshot.  The "timing" subobject is
the only wall-clock field in a response and is masked.

Session 1 — the happy path and every parse-layer error.  Requests 2
and 3 are the same config with members in different orders: canonical
keys make them one cache entry, so the two responses are byte-identical
and the final stats shows the hit.  Requests 4 and 5 warm and then hit
the compiled-plan and result caches.

  $ cat > session1.txt <<'EOF'
  > {"id":1,"method":"ping"}
  > {"id":2,"method":"elaborate","params":{"container":"queue","target":"bram","width":8,"depth":64}}
  > {"id":3,"method":"elaborate","params":{"depth":64,"width":8,"target":"bram","container":"queue"}}
  > {"id":4,"method":"simulate","params":{"design":"blur","width":6,"height":6}}
  > {"id":5,"method":"simulate","params":{"design":"blur","width":6,"height":6}}
  > not json
  > {"id":6,"method":"nope"}
  > {"method":"ping","extra":1}
  > {"id":7,"method":"elaborate","params":{"container":"queue","target":"bram","width":"wide"}}
  > {"id":8,"method":"stats"}
  > EOF
  $ hwpat serve -j 1 < session1.txt 2>/dev/null | sed -e 's/"timing":{[^}]*}/"timing":{}/'
  {"id":1,"result":{"pong":true,"methods":["batch","codegen","elaborate","emit","faultsim","ping","prove","simulate","sleep","sweep"]}}
  {"id":2,"result":{"key":"cfg/queue/bram/inst=gen/w=8/d=64/bus=8/addr=6/ops=inc+read+write/ws=1/par=false/to=none/pruned=false","entity":"gen_bram","pruned":false,"nodes":68,"register_bits":22,"memory_bits":512,"memories":1,"inputs":3,"outputs":6}}
  {"id":3,"result":{"key":"cfg/queue/bram/inst=gen/w=8/d=64/bus=8/addr=6/ops=inc+read+write/ws=1/par=false/to=none/pruned=false","entity":"gen_bram","pruned":false,"nodes":68,"register_bits":22,"memory_bits":512,"memories":1,"inputs":3,"outputs":6}}
  {"id":4,"result":{"key":"simulate/plan/blur/pattern/6x6/compiled/p=gradient","design":"blur_pattern","width":6,"height":6,"pattern":"gradient","cycles":90,"cycles_per_pixel":5.625,"matches_reference":true}}
  {"id":5,"result":{"key":"simulate/plan/blur/pattern/6x6/compiled/p=gradient","design":"blur_pattern","width":6,"height":6,"pattern":"gradient","cycles":90,"cycles_per_pixel":5.625,"matches_reference":true}}
  {"id":null,"error":{"code":"parse-error","message":"invalid literal (expected null) at byte 0"}}
  {"id":6,"error":{"code":"unknown-method","message":"unknown method \"nope\" (valid: batch, codegen, elaborate, emit, faultsim, ping, prove, simulate, sleep, sweep, stats, shutdown)"}}
  {"id":null,"error":{"code":"invalid-request","message":"unknown request field \"extra\""}}
  {"id":7,"error":{"code":"invalid-params","message":"width must be an integer"}}
  {"id":8,"result":{"requests":{"accepted":8,"ok":6,"errors":2,"rejected":2},"caches":{"circuits":{"hits":1,"misses":1,"evictions":0,"entries":1},"plans":{"hits":1,"misses":1,"evictions":0,"entries":1},"results":{"hits":2,"misses":2,"evictions":0,"entries":2}},"pool":{"jobs":1,"pending":0,"running":1},"timing":{}}}

Session 2 — the shutdown method.  Stop ends intake: lines the reader
has already buffered are still answered, but anything other than
lifecycle methods is rejected shutting-down.  Reading from a file, all
three lines arrive in the reader's first chunk, so the post-shutdown
ping deterministically gets the rejection rather than silence.

  $ cat > session2.txt <<'EOF'
  > {"id":1,"method":"simulate","params":{"design":"blur","width":6,"height":6}}
  > {"id":2,"method":"shutdown"}
  > {"id":3,"method":"ping"}
  > EOF
  $ hwpat serve -j 1 < session2.txt 2>/dev/null
  {"id":1,"result":{"key":"simulate/plan/blur/pattern/6x6/compiled/p=gradient","design":"blur_pattern","width":6,"height":6,"pattern":"gradient","cycles":90,"cycles_per_pixel":5.625,"matches_reference":true}}
  {"id":2,"result":{"stopping":true}}
  {"id":3,"error":{"code":"shutting-down","message":"server is shutting down"}}

Session 3 — the admission boundary for request size.  An over-long
line is rejected without being parsed (the reader discards it as it
streams past), and the connection keeps serving.

  $ { printf '{"id":1,"method":"ping"}\n'
  >   printf '{"id":2,"method":"elaborate","params":{"container":"queue","target":"bram","note":"%s"}}\n' \
  >     "$(printf 'x%.0s' $(seq 1 400))"
  >   printf '{"id":3,"method":"ping"}\n'
  > } > session3.txt
  $ hwpat serve -j 1 --max-request-bytes 300 < session3.txt 2>/dev/null
  {"id":1,"result":{"pong":true,"methods":["batch","codegen","elaborate","emit","faultsim","ping","prove","simulate","sleep","sweep"]}}
  {"id":null,"error":{"code":"oversized","message":"request line exceeds 300 bytes"}}
  {"id":3,"result":{"pong":true,"methods":["batch","codegen","elaborate","emit","faultsim","ping","prove","simulate","sleep","sweep"]}}
