(* The observability layer: span nesting, disabled-handle no-ops,
   histogram bucketing, and well-formedness of the JSON exporters. *)

open Hwpat_obs

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let contains needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* A tiny JSON syntax checker — enough grammar to vet what the
   exporters emit (objects, arrays, strings with escapes, numbers,
   true/false/null).  [valid] iff the whole input is one JSON value. *)
let json_valid s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      incr pos
    done
  in
  let fail = ref false in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos else fail := true
  in
  let string_lit () =
    expect '"';
    let fin = ref false in
    while (not !fin) && (not !fail) && !pos < n do
      match s.[!pos] with
      | '"' -> incr pos; fin := true
      | '\\' ->
        incr pos;
        (match peek () with
        | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') -> incr pos
        | Some 'u' ->
          incr pos;
          for _ = 1 to 4 do
            (match peek () with
            | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> incr pos
            | _ -> fail := true)
          done
        | _ -> fail := true)
      | c when Char.code c < 0x20 -> fail := true
      | _ -> incr pos
    done;
    if not !fin then fail := true
  in
  let number () =
    let start = !pos in
    if peek () = Some '-' then incr pos;
    while
      !pos < n
      && (match s.[!pos] with '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true | _ -> false)
    do
      incr pos
    done;
    if !pos = start then fail := true
  in
  let literal word =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then pos := !pos + l
    else fail := true
  in
  let rec value () =
    skip_ws ();
    (match peek () with
    | Some '{' ->
      incr pos;
      skip_ws ();
      if peek () = Some '}' then incr pos
      else begin
        let more = ref true in
        while !more && not !fail do
          skip_ws ();
          string_lit ();
          skip_ws ();
          expect ':';
          value ();
          skip_ws ();
          match peek () with
          | Some ',' -> incr pos
          | Some '}' -> incr pos; more := false
          | _ -> fail := true
        done
      end
    | Some '[' ->
      incr pos;
      skip_ws ();
      if peek () = Some ']' then incr pos
      else begin
        let more = ref true in
        while !more && not !fail do
          value ();
          skip_ws ();
          match peek () with
          | Some ',' -> incr pos
          | Some ']' -> incr pos; more := false
          | _ -> fail := true
        done
      end
    | Some '"' -> string_lit ()
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | _ -> number ());
    skip_ws ()
  in
  value ();
  skip_ws ();
  (not !fail) && !pos = n

(* --- Trace ---------------------------------------------------------------- *)

let test_span_nesting () =
  let t = Trace.create () in
  let r =
    Trace.span t "outer" (fun () ->
        Trace.span t "inner" (fun () -> ());
        Trace.span t "inner" (fun () -> ());
        17)
  in
  check_int "span returns body value" 17 r;
  Trace.span t "other" (fun () -> ());
  let json = Trace.to_chrome_json t in
  check_bool "outer event" true (contains "\"name\":\"outer\"" json);
  check_bool "inner event" true (contains "\"name\":\"inner\"" json);
  let s = Trace.summary t in
  (* Aggregated by path: the two [inner] calls fold into one line,
     indented under [outer]; [other] is a root at column 0. *)
  check_bool "summary aggregates inner" true (contains "inner" s);
  check_bool "inner indented under outer" true (contains "\n  inner" s);
  check_bool "other at root, unindented" true
    (contains "other" s && not (contains "  other" s));
  check_bool "two inner calls" true (contains " 2 call" s)

let test_span_exception () =
  let t = Trace.create () in
  (try
     Trace.span t "boom" (fun () -> failwith "inside")
   with Failure _ -> ());
  let json = Trace.to_chrome_json t in
  check_bool "span recorded despite raise" true
    (contains "\"name\":\"boom\"" json);
  (* The stack must have been popped: a following span is a root, not
     nested (= indented) under the raising one. *)
  Trace.span t "after" (fun () -> ());
  let s = Trace.summary t in
  check_bool "stack popped after raise" true
    (contains "after" s && not (contains "  after" s))

let test_annotate () =
  let t = Trace.create () in
  Trace.span t "work" (fun () ->
      Trace.annotate t "verdict" (Trace.String "ok");
      Trace.annotate t "verdict" (Trace.String "better");
      Trace.annotate t "n" (Trace.Int 3));
  let json = Trace.to_chrome_json t in
  check_bool "last annotation wins" true (contains "\"better\"" json);
  check_bool "overwritten value gone" false (contains "\"ok\"" json);
  check_bool "int annotation" true (contains "\"n\":3" json)

let test_null_trace () =
  check_bool "null disabled" false (Trace.enabled Trace.null);
  check_bool "active enabled" true (Trace.enabled (Trace.create ()));
  let ran = ref false in
  let r = Trace.span Trace.null "ignored" (fun () -> ran := true; 5) in
  check_int "null span runs body" 5 r;
  check_bool "body ran" true !ran;
  Trace.instant Trace.null "nothing";
  Trace.annotate Trace.null "k" (Trace.Bool true);
  let json = Trace.to_chrome_json Trace.null in
  check_bool "null json valid" true (json_valid json);
  check_bool "null json has no events" false (contains "\"name\"" json)

let test_trace_json_well_formed () =
  let t = Trace.create () in
  Trace.span t "needs \"escaping\"\n\\here" (fun () ->
      Trace.instant t "marker" ~args:[ ("f", Trace.Float 1.5) ];
      Trace.counter t "gauge" [ ("series", 2.0) ]);
  Trace.span t "args"
    ~args:
      [
        ("i", Trace.Int (-3));
        ("f", Trace.Float nan);
        ("s", Trace.String "x");
        ("b", Trace.Bool false);
      ]
    (fun () -> ());
  let json = Trace.to_chrome_json t in
  check_bool "chrome json parses" true (json_valid json);
  check_bool "complete events" true (contains "\"ph\":\"X\"" json);
  check_bool "instant event" true (contains "\"ph\":\"i\"" json);
  check_bool "counter event" true (contains "\"ph\":\"C\"" json);
  (* NaN must not leak into the JSON as a bare token. *)
  check_bool "no nan token" false (contains "nan" json)

(* --- Metrics -------------------------------------------------------------- *)

let test_bucketing () =
  check_int "v<=0 in bucket 0" 0 (Metrics.bucket_of 0);
  check_int "negative in bucket 0" 0 (Metrics.bucket_of (-7));
  check_int "1 in bucket 1" 1 (Metrics.bucket_of 1);
  check_int "2 in bucket 2" 2 (Metrics.bucket_of 2);
  check_int "3 in bucket 2" 2 (Metrics.bucket_of 3);
  check_int "4 in bucket 3" 3 (Metrics.bucket_of 4);
  check_int "1023 in bucket 10" 10 (Metrics.bucket_of 1023);
  check_int "1024 in bucket 11" 11 (Metrics.bucket_of 1024);
  (* max_int has 62 significant bits, so it lands in bucket 62 — still
     inside the array even before clamping kicks in. *)
  check_int "max_int bucket" 62 (Metrics.bucket_of max_int);
  check_bool "every bucket in range" true
    (Metrics.bucket_of max_int < Metrics.buckets)

(* Satellite regression: the zero/negative boundary is contract.
   Every [v <= 0] lands in bucket 0 — never a negative index — and
   each power of two opens the next bucket, so bucket [k >= 1] covers
   exactly [2^(k-1) .. 2^k - 1] until the final clamp. Checked both on
   [bucket_of] directly and end-to-end through [observe]. *)
let test_bucket_boundaries () =
  List.iter
    (fun v ->
      check_int (Printf.sprintf "%d in bucket 0" v) 0 (Metrics.bucket_of v))
    [ 0; -1; -2; -1024; min_int ];
  for k = 1 to 62 do
    check_int
      (Printf.sprintf "2^%d opens bucket %d" (k - 1) k)
      (min (Metrics.buckets - 1) k)
      (Metrics.bucket_of (1 lsl (k - 1)));
    check_int
      (Printf.sprintf "2^%d - 1 closes bucket %d" k k)
      (min (Metrics.buckets - 1) k)
      (Metrics.bucket_of ((1 lsl k) - 1))
  done;
  (* Zero and negative observations survive the round trip into the
     histogram's bucket 0 (and the sum, which may go negative). *)
  let m = Metrics.create () in
  Metrics.observe m "h" 0;
  Metrics.observe m "h" (-5);
  Metrics.observe m "h" 3;
  let json = Metrics.to_json m in
  check_bool "metrics json parses" true (json_valid json);
  check_bool "count 3" true (contains "\"count\": 3" json);
  check_bool "sum -2" true (contains "\"sum\": -2" json);
  check_bool "buckets [2, 0, 1" true (contains "[2, 0, 1" json)

(* Satellite regression: the SAT solver pre-aggregates its
   learned-clause size histogram and hands it to [add_histogram], so
   its bucketing function must be THE [Metrics.bucket_of] convention —
   same bucket for every value, same array length — or the merged
   histogram silently shears. The solver was once the deviating side. *)
let test_solver_bucket_alignment () =
  let module Solver = Hwpat_formal.Solver in
  for v = -3 to 5000 do
    check_int
      (Printf.sprintf "size_bucket %d = bucket_of %d" v v)
      (Metrics.bucket_of v) (Solver.size_bucket v)
  done;
  List.iter
    (fun v ->
      check_int
        (Printf.sprintf "size_bucket %d = bucket_of %d" v v)
        (Metrics.bucket_of v) (Solver.size_bucket v))
    [ 1 lsl 20; (1 lsl 30) - 1; 1 lsl 45; max_int; min_int ];
  (* And the histogram a real solver emits has the Metrics shape. *)
  let s = Solver.create () in
  let a = Solver.new_var s and b = Solver.new_var s and c = Solver.new_var s in
  List.iter (Solver.add_clause s)
    [ [ a; b ]; [ a; -b; c ]; [ -a; c ]; [ -c; b ]; [ -a; -b; -c ] ];
  ignore (Solver.solve s);
  check_int "solver histogram is Metrics-shaped" Metrics.buckets
    (Array.length (Solver.stats s).Solver.learned_size_buckets)

let test_counters () =
  let m = Metrics.create () in
  check_int "absent counter reads 0" 0 (Metrics.counter_value m "none");
  Metrics.incr m "a";
  Metrics.incr m ~by:4 "a";
  check_int "incr accumulates" 5 (Metrics.counter_value m "a");
  Metrics.incr Metrics.null "a";
  check_int "null counter stays 0" 0 (Metrics.counter_value Metrics.null "a");
  check_bool "null disabled" false (Metrics.enabled Metrics.null)

let test_histogram_merge () =
  let m = Metrics.create () in
  Metrics.observe m "h" 3;
  Metrics.observe m "h" 100;
  (* Merge pre-aggregated buckets the way Solver_obs does. *)
  let pre = Array.make 16 0 in
  pre.(Metrics.bucket_of 3) <- 2;
  Metrics.add_histogram m "h" ~count:2 ~sum:6 pre;
  let json = Metrics.to_json m in
  check_bool "metrics json parses" true (json_valid json);
  check_bool "merged count" true (contains "\"count\": 4" json);
  check_bool "merged sum" true (contains "\"sum\": 109" json);
  (* Bucket 2 holds the direct 3 plus the two merged 3s. *)
  check_bool "bucket 2 = 3 observations" true (contains "[0, 0, 3" json)

let test_metrics_json_deterministic () =
  let build order =
    let m = Metrics.create () in
    List.iter (fun k -> Metrics.incr m k) order;
    Metrics.gauge m "g" 2.5;
    Metrics.to_json m
  in
  check_string "sorted keys, insertion order irrelevant"
    (build [ "b"; "a"; "c" ])
    (build [ "c"; "a"; "b" ]);
  check_bool "null metrics json parses" true
    (json_valid (Metrics.to_json Metrics.null))

let () =
  Alcotest.run "obs"
    [
      ( "trace",
        [
          Alcotest.test_case "span nesting and summary" `Quick
            test_span_nesting;
          Alcotest.test_case "span records on raise" `Quick
            test_span_exception;
          Alcotest.test_case "annotate innermost span" `Quick test_annotate;
          Alcotest.test_case "null trace is inert" `Quick test_null_trace;
          Alcotest.test_case "chrome json well-formed" `Quick
            test_trace_json_well_formed;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "log2 bucketing" `Quick test_bucketing;
          Alcotest.test_case "solver size_bucket = Metrics.bucket_of" `Quick
            test_solver_bucket_alignment;
          Alcotest.test_case "bucket boundaries (zero/negative/powers)" `Quick
            test_bucket_boundaries;
          Alcotest.test_case "counters" `Quick test_counters;
          Alcotest.test_case "histogram merge" `Quick test_histogram_merge;
          Alcotest.test_case "json deterministic and valid" `Quick
            test_metrics_json_deterministic;
        ] );
    ]
