open Hwpat_rtl

let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)
let check_bool = Alcotest.(check bool)

(* Generator for (width, value) pairs with the value within range. *)
let arb_sized_value =
  let open QCheck in
  let gen =
    Gen.(
      int_range 1 130 >>= fun width ->
      let max_v = if width >= 62 then max_int else (1 lsl width) - 1 in
      map (fun v -> (width, v)) (int_bound max_v))
  in
  make ~print:(fun (w, v) -> Printf.sprintf "width=%d value=%d" w v) gen

let arb_pair_same_width =
  let open QCheck in
  let gen =
    Gen.(
      int_range 1 61 >>= fun width ->
      let bound = (1 lsl width) - 1 in
      map2 (fun a b -> (width, a, b)) (int_bound bound) (int_bound bound))
  in
  make ~print:(fun (w, a, b) -> Printf.sprintf "w=%d a=%d b=%d" w a b) gen

let test_construct () =
  check_int "width of zero" 8 (Bits.width (Bits.zero 8));
  check_string "zero" "00000000" (Bits.to_string (Bits.zero 8));
  check_string "ones" "11111111" (Bits.to_string (Bits.ones 8));
  check_string "one" "00000001" (Bits.to_string (Bits.one 8));
  check_int "of_int round trip" 42 (Bits.to_int (Bits.of_int ~width:8 42));
  check_int "of_int truncates" 1 (Bits.to_int (Bits.of_int ~width:2 5));
  check_int "negative wraps" 255 (Bits.to_int (Bits.of_int ~width:8 (-1)));
  check_string "of_string" "1010" (Bits.to_string (Bits.of_string "1010"));
  check_string "of_string underscores" "10100101"
    (Bits.to_string (Bits.of_string "1010_0101"));
  Alcotest.check_raises "empty literal" (Invalid_argument "Bits.of_string: empty literal")
    (fun () -> ignore (Bits.of_string ""));
  check_bool "of_bool true" true (Bits.to_bool (Bits.of_bool true));
  check_bool "of_bool false" false (Bits.to_bool (Bits.of_bool false))

(* Regression: conversions that cannot fit an OCaml int must raise
   (or return None), never silently truncate. *)
let test_to_int_overflow () =
  let wide_one = Bits.concat_msb [ Bits.zero 80; Bits.one 20 ] in
  check_int "wide value that fits converts" 1 (Bits.to_int wide_one);
  Alcotest.(check (option int)) "to_int_opt on fitting value" (Some 1)
    (Bits.to_int_opt wide_one);
  let too_wide = Bits.ones 100 in
  Alcotest.check_raises "to_int raises on overflow"
    (Invalid_argument "Bits.to_int: value too large") (fun () ->
      ignore (Bits.to_int too_wide));
  Alcotest.(check (option int)) "to_int_opt on overflow" None
    (Bits.to_int_opt too_wide);
  (* 63 bits of ones exceeds max_int (62 significant bits). *)
  Alcotest.check_raises "63-bit ones raises"
    (Invalid_argument "Bits.to_int: value too large") (fun () ->
      ignore (Bits.to_int (Bits.ones 63)));
  (* The largest representable value still converts. *)
  check_int "max_int round trips" max_int
    (Bits.to_int (Bits.of_int ~width:62 max_int))

let test_wide () =
  let w = 100 in
  let a = Bits.concat_msb [ Bits.ones 50; Bits.zero 50 ] in
  check_int "wide width" w (Bits.width a);
  check_bool "wide msb" true (Bits.msb a);
  check_bool "wide lsb" false (Bits.lsb a);
  check_string "wide select hi" (String.make 25 '1')
    (Bits.to_string (Bits.select a ~high:99 ~low:75));
  check_string "wide select straddle" ("1" ^ String.make 24 '0')
    (Bits.to_string (Bits.select a ~high:50 ~low:26));
  let incremented = Bits.add a (Bits.one w) in
  check_bool "wide add changes" false (Bits.equal a incremented);
  check_bool "wide add low bit" true (Bits.lsb incremented)

let test_arith_edges () =
  let full = Bits.ones 8 in
  check_int "ones + 1 wraps" 0 (Bits.to_int (Bits.add full (Bits.one 8)));
  check_int "0 - 1 wraps" 255 (Bits.to_int (Bits.sub (Bits.zero 8) (Bits.one 8)));
  check_int "neg 1" 255 (Bits.to_int (Bits.neg (Bits.one 8)));
  check_int "neg 0" 0 (Bits.to_int (Bits.neg (Bits.zero 8)));
  check_int "mul truncates" ((200 * 200) land 255)
    (Bits.to_int (Bits.mul (Bits.of_int ~width:8 200) (Bits.of_int ~width:8 200)));
  (* 64-bit boundary: carries across the limb. *)
  let a64 = Bits.ones 64 in
  let b = Bits.uresize a64 65 in
  check_bool "65-bit add carry" true (Bits.bit (Bits.add b b) 64)

let test_signed () =
  check_int "to_signed positive" 5 (Bits.to_signed_int (Bits.of_int ~width:8 5));
  check_int "to_signed negative" (-1) (Bits.to_signed_int (Bits.ones 8));
  check_int "to_signed min" (-128) (Bits.to_signed_int (Bits.of_int ~width:8 128));
  check_string "sresize extends sign" "1111_1110"
    (Bits.to_string (Bits.sresize (Bits.of_int ~width:4 14) 8)
    |> fun s -> String.sub s 0 4 ^ "_" ^ String.sub s 4 4);
  check_string "uresize zero fills" "00001110"
    (Bits.to_string (Bits.uresize (Bits.of_int ~width:4 14) 8))

let test_shift () =
  let v = Bits.of_int ~width:8 0b1001_0110 in
  check_int "sll" 0b0101_1000 (Bits.to_int (Bits.sll v 2));
  check_int "srl" 0b0010_0101 (Bits.to_int (Bits.srl v 2));
  check_int "sra sign" 0b1110_0101 (Bits.to_int (Bits.sra v 2));
  check_int "sll full" 0 (Bits.to_int (Bits.sll v 8));
  check_int "srl full" 0 (Bits.to_int (Bits.srl v 8));
  check_int "sra full" 255 (Bits.to_int (Bits.sra v 8));
  check_int "shift by zero" (Bits.to_int v) (Bits.to_int (Bits.sll v 0))

(* Shift amounts at and past the width saturate — [sll]/[srl] to all
   zeros, [sra] to all sign bits — on single- and multi-limb vectors
   alike, and negative amounts raise. The simulation engines and HDL
   back-ends share these semantics (test_backends.ml pins them to the
   generated VHDL/Verilog). *)
let test_shift_saturation () =
  List.iter
    (fun w ->
      let neg = Bits.ones w in
      let pos = if w = 1 then Bits.zero 1 else Bits.srl (Bits.ones w) 1 in
      List.iter
        (fun n ->
          let name op = Printf.sprintf "%s w=%d n=%d" op w n in
          check_bool (name "sll zeros") true
            (Bits.equal (Bits.sll neg n) (Bits.zero w));
          check_bool (name "srl zeros") true
            (Bits.equal (Bits.srl neg n) (Bits.zero w));
          check_bool (name "sra sign fills") true
            (Bits.equal (Bits.sra neg n) (Bits.ones w));
          check_bool (name "sra zero fills") true
            (Bits.equal (Bits.sra pos n) (Bits.zero w)))
        [ w; w + 1; 2 * w; 1000 ])
    [ 1; 8; 63; 64; 65; 100; 128 ];
  List.iter
    (fun (op_name, op) ->
      Alcotest.check_raises
        (op_name ^ " negative shift")
        (Invalid_argument ("Bits." ^ op_name ^ ": negative shift"))
        (fun () -> ignore (op (Bits.ones 8) (-1))))
    [ ("sll", Bits.sll); ("srl", Bits.srl); ("sra", Bits.sra) ]

(* Truncating multiply past the 64-bit limb boundary, against a
   bit-serial shift-and-add reference. The schoolbook kernel works in
   32-bit half-limbs; these widths make the cross-limb partial
   products and carry chains actually fire. *)
let test_wide_mul () =
  let mul_reference a b =
    let w = Bits.width a in
    let acc = ref (Bits.zero w) in
    for i = 0 to w - 1 do
      if Bits.to_bool (Bits.select b ~high:i ~low:i) then
        acc := Bits.add !acc (Bits.sll a i)
    done;
    !acc
  in
  let check_mul what a b =
    let expect = mul_reference a b in
    check_bool (what ^ " mul") true (Bits.equal (Bits.mul a b) expect);
    check_bool (what ^ " mul commutes") true
      (Bits.equal (Bits.mul b a) expect);
    let dst = Bits.zero (Bits.width a) in
    Bits.mul_into ~dst a b;
    check_bool (what ^ " mul_into") true (Bits.equal dst expect)
  in
  List.iter
    (fun w ->
      let ones = Bits.ones w in
      check_mul (Printf.sprintf "ones*ones w=%d" w) ones ones;
      (* A single bit riding the limb boundary. *)
      let bit64 = Bits.sll (Bits.one w) 64 in
      check_mul (Printf.sprintf "bit64 w=%d" w) bit64 (Bits.of_int ~width:w 3);
      (* Alternating and block patterns that cross half-limb seams. *)
      let alt =
        Bits.of_string (String.init w (fun i -> if i mod 2 = 0 then '1' else '0'))
      in
      let blocks =
        Bits.of_string (String.init w (fun i -> if i mod 64 < 32 then '1' else '0'))
      in
      check_mul (Printf.sprintf "alt*blocks w=%d" w) alt blocks;
      for seed = 1 to 10 do
        Random.init ((w * 1000) + seed);
        check_mul
          (Printf.sprintf "random w=%d seed=%d" w seed)
          (Bits.random ~width:w) (Bits.random ~width:w)
      done)
    [ 65; 96; 100; 128; 130 ]

let test_concat_select () =
  let a = Bits.of_string "101" and b = Bits.of_string "01" in
  check_string "concat" "10101" (Bits.to_string (Bits.concat_msb [ a; b ]));
  check_string "repeat" "101101" (Bits.to_string (Bits.repeat a 2));
  check_string "select" "11" (Bits.to_string (Bits.select (Bits.of_string "0011") ~high:1 ~low:0))
  |> ignore;
  check_string "select mid" "10"
    (Bits.to_string (Bits.select (Bits.of_string "0100") ~high:2 ~low:1));
  Alcotest.check_raises "select out of range"
    (Invalid_argument "Bits.select: bad range [4:0] of width 4") (fun () ->
      ignore (Bits.select (Bits.of_string "0100") ~high:4 ~low:0))

let test_reduce () =
  check_bool "reduce_or zero" false (Bits.to_bool (Bits.reduce_or (Bits.zero 13)));
  check_bool "reduce_or some" true
    (Bits.to_bool (Bits.reduce_or (Bits.of_int ~width:13 64)));
  check_bool "reduce_and ones" true (Bits.to_bool (Bits.reduce_and (Bits.ones 13)));
  check_bool "reduce_and partial" false
    (Bits.to_bool (Bits.reduce_and (Bits.of_int ~width:13 64)));
  check_int "popcount" 3 (Bits.popcount (Bits.of_string "101001"))

let prop name count arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

let props =
  [
    prop "to_string/of_string round trip" 500 arb_sized_value (fun (w, v) ->
        let b = Bits.of_int ~width:w v in
        Bits.equal b (Bits.of_string (Bits.to_string b)));
    prop "add matches int" 500 arb_pair_same_width (fun (w, a, b) ->
        let mask = (1 lsl w) - 1 in
        Bits.to_int (Bits.add (Bits.of_int ~width:w a) (Bits.of_int ~width:w b))
        = (a + b) land mask);
    prop "sub matches int" 500 arb_pair_same_width (fun (w, a, b) ->
        let mask = (1 lsl w) - 1 in
        Bits.to_int (Bits.sub (Bits.of_int ~width:w a) (Bits.of_int ~width:w b))
        = (a - b) land mask);
    prop "mul matches int (<=30 bits)" 500
      (let open QCheck in
       make
         ~print:(fun (w, a, b) -> Printf.sprintf "w=%d a=%d b=%d" w a b)
         Gen.(
           int_range 1 30 >>= fun w ->
           let bound = (1 lsl w) - 1 in
           map2 (fun a b -> (w, a, b)) (int_bound bound) (int_bound bound)))
      (fun (w, a, b) ->
        let mask = (1 lsl w) - 1 in
        Bits.to_int (Bits.mul (Bits.of_int ~width:w a) (Bits.of_int ~width:w b))
        = a * b land mask);
    prop "logic matches int" 500 arb_pair_same_width (fun (w, a, b) ->
        let ba = Bits.of_int ~width:w a and bb = Bits.of_int ~width:w b in
        Bits.to_int (Bits.logand ba bb) = a land b
        && Bits.to_int (Bits.logor ba bb) = a lor b
        && Bits.to_int (Bits.logxor ba bb) = a lxor b);
    prop "lognot involutive" 500 arb_sized_value (fun (w, v) ->
        let b = Bits.of_int ~width:w v in
        Bits.equal b (Bits.lognot (Bits.lognot b)));
    prop "compare matches int" 500 arb_pair_same_width (fun (w, a, b) ->
        let c = Bits.compare (Bits.of_int ~width:w a) (Bits.of_int ~width:w b) in
        (c < 0) = (a < b) && (c = 0) = (a = b));
    prop "add commutative (wide)" 200
      (let open QCheck in
       make ~print:(fun w -> Printf.sprintf "w=%d" w) Gen.(int_range 1 130))
      (fun w ->
        let a = Bits.random ~width:w and b = Bits.random ~width:w in
        Bits.equal (Bits.add a b) (Bits.add b a));
    prop "add associative (wide)" 200
      (let open QCheck in
       make ~print:(fun w -> Printf.sprintf "w=%d" w) Gen.(int_range 1 130))
      (fun w ->
        let a = Bits.random ~width:w
        and b = Bits.random ~width:w
        and c = Bits.random ~width:w in
        Bits.equal (Bits.add a (Bits.add b c)) (Bits.add (Bits.add a b) c));
    prop "x + neg x = 0" 200
      (let open QCheck in
       make ~print:(fun w -> Printf.sprintf "w=%d" w) Gen.(int_range 1 130))
      (fun w ->
        let a = Bits.random ~width:w in
        Bits.equal (Bits.add a (Bits.neg a)) (Bits.zero w));
    prop "concat then select recovers parts" 200
      (let open QCheck in
       make
         ~print:(fun (w1, w2) -> Printf.sprintf "w1=%d w2=%d" w1 w2)
         Gen.(pair (int_range 1 70) (int_range 1 70)))
      (fun (w1, w2) ->
        let a = Bits.random ~width:w1 and b = Bits.random ~width:w2 in
        let c = Bits.concat_msb [ a; b ] in
        Bits.equal a (Bits.select c ~high:(w1 + w2 - 1) ~low:w2)
        && Bits.equal b (Bits.select c ~high:(w2 - 1) ~low:0));
    prop "srl then sll clears low bits" 200
      (let open QCheck in
       make
         ~print:(fun (w, n) -> Printf.sprintf "w=%d n=%d" w n)
         Gen.(int_range 2 64 >>= fun w -> map (fun n -> (w, n)) (int_bound (w - 1))))
      (fun (w, n) ->
        let a = Bits.random ~width:w in
        let round = Bits.sll (Bits.srl a n) n in
        (* Low n bits must be zero; the rest must match a. *)
        (n = 0 || not (Bits.to_bool (Bits.select round ~high:(max 0 (n - 1)) ~low:0)))
        && Bits.equal
             (Bits.select round ~high:(w - 1) ~low:n)
             (Bits.select a ~high:(w - 1) ~low:n));
    prop "shift >= width saturates" 200
      (let open QCheck in
       make
         ~print:(fun (w, n) -> Printf.sprintf "w=%d n=%d" w n)
         Gen.(pair (int_range 1 130) (int_range 0 200)))
      (fun (w, extra) ->
        let n = w + extra in
        let a = Bits.random ~width:w in
        Bits.equal (Bits.sll a n) (Bits.zero w)
        && Bits.equal (Bits.srl a n) (Bits.zero w)
        && Bits.equal (Bits.sra a n)
             (if Bits.msb a then Bits.ones w else Bits.zero w));
    prop "wide mul matches shift-add reference" 200
      (let open QCheck in
       make ~print:(fun w -> Printf.sprintf "w=%d" w) Gen.(int_range 65 140))
      (fun w ->
        let a = Bits.random ~width:w and b = Bits.random ~width:w in
        let acc = ref (Bits.zero w) in
        for i = 0 to w - 1 do
          if Bits.to_bool (Bits.select b ~high:i ~low:i) then
            acc := Bits.add !acc (Bits.sll a i)
        done;
        Bits.equal (Bits.mul a b) !acc);
  ]

let () =
  Alcotest.run "bits"
    [
      ( "unit",
        [
          Alcotest.test_case "construction" `Quick test_construct;
          Alcotest.test_case "to_int overflow" `Quick test_to_int_overflow;
          Alcotest.test_case "wide vectors" `Quick test_wide;
          Alcotest.test_case "arithmetic edges" `Quick test_arith_edges;
          Alcotest.test_case "signed views" `Quick test_signed;
          Alcotest.test_case "shifts" `Quick test_shift;
          Alcotest.test_case "shift saturation at width" `Quick
            test_shift_saturation;
          Alcotest.test_case "wide multiply (>64 bits)" `Quick test_wide_mul;
          Alcotest.test_case "concat/select" `Quick test_concat_select;
          Alcotest.test_case "reductions" `Quick test_reduce;
        ] );
      ("properties", props);
    ]
