open Hwpat_rtl
open Container_intf

(** Generated protection hardware for memory-backed containers — the
    Signal-builder counterpart of the VHDL parity/watchdog blocks
    emitted by [Hwpat_meta.Codegen] when [Config.parity] or
    [Config.op_timeout] is set.

    {b Parity} widens each stored word by one bit holding the even
    parity of the payload; the check runs at every read acknowledge
    and latches a sticky error, so every single-bit corruption of
    protected storage is detected at the next read of that word.

    {b Watchdog} bounds how long the container may wait for a
    memory-side acknowledge. Each window of [timeout] consecutive
    unacknowledged cycles ends a retry; after [retries] fruitless
    windows it forces a fake acknowledge (graceful degradation — the
    client observes a completed, possibly wrong, operation instead of
    hanging) and latches a sticky error. *)

val reduce_xor : Signal.t -> Signal.t
(** XOR-fold of all bits: the even-parity bit of a word. *)

val parity :
  ?name:string ->
  width:int ->
  (int -> mem_request -> mem_port) ->
  mem_request ->
  mem_port * Signal.t
(** [parity ~width target request] builds the target with storage
    [width + 1] bits wide, parity in the top bit. Returns the
    downstream port (payload only) and the sticky error flag. *)

type watchdog = {
  wd_ack : Signal.t;  (** downstream ack, or a forced one on give-up *)
  wd_err : Signal.t;  (** sticky: a forced acknowledge has occurred *)
  timed_out : Signal.t;  (** pulse: a retry window just expired *)
  forced : Signal.t;  (** pulse: this ack cycle was fabricated *)
}

val watchdog :
  ?name:string ->
  timeout:int ->
  ?retries:int ->
  req:Signal.t ->
  ack:Signal.t ->
  unit ->
  watchdog
(** [retries] defaults to 1; [retries = 0] forces on the first
    expiry. *)

type errs = { parity_err : Signal.t; timeout_err : Signal.t }
(** Unused layers report a constant-low flag. *)

val no_errs : errs

val apply :
  ?name:string ->
  width:int ->
  parity:bool ->
  op_timeout:int option ->
  ?retries:int ->
  (int -> mem_request -> mem_port) ->
  (mem_request -> mem_port) * errs
(** Wrap a width-parameterized memory target in the configured
    protection layers. The error flags are wires driven when the
    returned target is applied — apply it exactly once. With
    [parity:false] and [op_timeout:None] the target is returned
    unchanged (zero overhead). *)
