open Hwpat_rtl
open Hwpat_rtl.Signal
open Hwpat_meta

let seq_builder (cfg : Config.t) =
  let depth = cfg.depth and width = cfg.elem_width in
  let name = cfg.instance_name in
  match (cfg.kind, cfg.target) with
  | Metamodel.Queue, Metamodel.Fifo_core -> Queue_c.over_fifo ~name ~depth ~width
  | Metamodel.Queue, Metamodel.Block_ram -> Queue_c.over_bram ~name ~depth ~width
  | Metamodel.Queue, Metamodel.Ext_sram ->
    Queue_c.over_sram ~name ~depth ~width ~wait_states:cfg.wait_states
  | Metamodel.Stack, Metamodel.Lifo_core -> Stack_c.over_lifo ~name ~depth ~width
  | Metamodel.Stack, Metamodel.Block_ram -> Stack_c.over_bram ~name ~depth ~width
  | Metamodel.Stack, Metamodel.Ext_sram ->
    Stack_c.over_sram ~name ~depth ~width ~wait_states:cfg.wait_states
  | _ ->
    invalid_arg
      (Printf.sprintf "Elaborate: unsupported kind/target %s/%s"
         (Metamodel.container_name cfg.kind)
         (Metamodel.target_name cfg.target))

let random_builder (cfg : Config.t) =
  let length = cfg.depth and width = cfg.elem_width in
  let name = cfg.instance_name in
  match cfg.target with
  | Metamodel.Block_ram -> Vector_c.over_bram ~name ~length ~width
  | Metamodel.Ext_sram ->
    Vector_c.over_sram ~name ~length ~width ~wait_states:cfg.wait_states
  | _ ->
    invalid_arg
      (Printf.sprintf "Elaborate: unsupported vector target %s"
         (Metamodel.target_name cfg.target))

let seq_circuit (cfg : Config.t) ~prune =
  let keep op = (not prune) || List.mem op cfg.ops_used in
  let driver =
    {
      Container_intf.get_req =
        (if keep Metamodel.Read then input "get_req" 1 else gnd);
      put_req = (if keep Metamodel.Write then input "put_req" 1 else gnd);
      put_data =
        (if keep Metamodel.Write then input "put_data" cfg.elem_width
         else zero cfg.elem_width);
    }
  in
  let s = seq_builder cfg driver in
  Circuit.create_exn
    ~name:(Config.entity_name cfg ^ if prune then "_pruned" else "_full")
    [
      ("get_ack", s.Container_intf.get_ack);
      ("get_data", s.Container_intf.get_data);
      ("put_ack", s.Container_intf.put_ack);
      ("empty", s.Container_intf.empty);
      ("full", s.Container_intf.full);
      ("size", s.Container_intf.size);
    ]

let random_circuit (cfg : Config.t) ~prune =
  let keep op = (not prune) || List.mem op cfg.ops_used in
  (* The index port stays even when pruning: any retained operation
     needs an address to act on. *)
  let driver =
    {
      Container_intf.read_req =
        (if keep Metamodel.Read then input "read_req" 1 else gnd);
      write_req = (if keep Metamodel.Write then input "write_req" 1 else gnd);
      addr = input "addr" (Util.address_bits cfg.depth);
      write_data =
        (if keep Metamodel.Write then input "write_data" cfg.elem_width
         else zero cfg.elem_width);
    }
  in
  let r = random_builder cfg driver in
  Circuit.create_exn
    ~name:(Config.entity_name cfg ^ if prune then "_pruned" else "_full")
    [
      ("read_ack", r.Container_intf.read_ack);
      ("read_data", r.Container_intf.read_data);
      ("write_ack", r.Container_intf.write_ack);
      ("length", r.Container_intf.length);
    ]

let build ?(trace = Hwpat_obs.Trace.null) (cfg : Config.t) ~prune =
  let module Trace = Hwpat_obs.Trace in
  Trace.span trace "elaborate"
    ~args:
      [
        ("entity", Trace.String (Config.entity_name cfg));
        ("kind", Trace.String (Metamodel.container_name cfg.kind));
        ("prune", Trace.Bool prune);
      ]
  @@ fun () ->
  (* Mirror the code generator's pruning decision as annotations: which
     operations keep live driver ports, which get tied to zero. *)
  if Trace.enabled trace && prune then begin
    let cut =
      List.filter
        (fun op -> not (List.mem op cfg.ops_used))
        (Metamodel.operations cfg.kind)
    in
    let names ops = String.concat "," (List.map Metamodel.operation_name ops) in
    Trace.annotate trace "ops_kept" (Trace.String (names cfg.ops_used));
    Trace.annotate trace "ops_tied_off" (Trace.String (names cut))
  end;
  match cfg.kind with
  | Metamodel.Queue | Metamodel.Stack -> seq_circuit cfg ~prune
  | Metamodel.Vector -> random_circuit cfg ~prune
  | k ->
    invalid_arg
      (Printf.sprintf "Elaborate: unsupported container kind %s"
         (Metamodel.container_name k))

let full ?trace cfg = build ?trace cfg ~prune:false

let pruned ?trace cfg =
  Optimize.circuit (build ?trace cfg ~prune:true)
