open Hwpat_rtl
open Hwpat_rtl.Signal
open Container_intf

(* Generated protection hardware for memory-backed containers: parity
   over the stored word (error detection) and a watchdog on the
   memory-side handshake (bounded retries, then a forced acknowledge
   with a sticky error flag so the system degrades instead of
   hanging). These are the Signal-builder counterparts of the VHDL
   blocks emitted by Hwpat_meta.Codegen for [Config.parity] and
   [Config.op_timeout]. *)

let reduce_xor s =
  let w = Signal.width s in
  let rec fold acc i = if i >= w then acc else fold (acc ^: bit s i) (i + 1) in
  fold (bit s 0) 1

(* --- Parity ------------------------------------------------------------- *)

(* The target builder is width-parameterized because protection widens
   the stored word by one bit: bit [width] of each stored word is the
   even parity of the payload below it. The check runs at every read
   acknowledge; the error output is sticky. *)
let parity ?(name = "par") ~width (target : int -> mem_request -> mem_port)
    (r : mem_request) =
  let p_wr = reduce_xor r.mem_wdata -- (name ^ "_wr") in
  let port =
    target (width + 1) { r with mem_wdata = concat_msb [ p_wr; r.mem_wdata ] }
  in
  let rdata = select port.mem_rdata ~high:(width - 1) ~low:0 in
  let mismatch = reduce_xor rdata ^: bit port.mem_rdata width in
  let bad = port.mem_ack &: ~:(r.mem_we) &: mismatch in
  let err = Hwpat_devices.Handshake.sticky ~set:bad ~clear:gnd -- (name ^ "_err") in
  ({ mem_ack = port.mem_ack; mem_rdata = rdata }, err)

(* --- Watchdog ----------------------------------------------------------- *)

type watchdog = {
  wd_ack : Signal.t;
  wd_err : Signal.t;
  timed_out : Signal.t;
  forced : Signal.t;
}

(* Counts consecutive request-without-acknowledge cycles. Each time the
   count reaches [timeout] a retry window ends (the counter restarts);
   after [retries] fruitless windows the next expiry forces a fake
   acknowledge so the client can move on, and latches the sticky
   error. *)
let watchdog ?(name = "wd") ~timeout ?(retries = 1) ~req ~ack () =
  if timeout < 1 then invalid_arg "Protect.watchdog: timeout must be >= 1";
  if retries < 0 then invalid_arg "Protect.watchdog: negative retries";
  let waiting = req &: ~:ack in
  let cbits = Util.bits_to_represent timeout in
  let cnt_w = wire cbits in
  let cnt = reg cnt_w -- (name ^ "_cnt") in
  let expired = waiting &: (cnt ==: of_int ~width:cbits timeout) in
  cnt_w
  <== mux2 waiting (mux2 expired (zero cbits) (cnt +: one cbits)) (zero cbits);
  let tbits = Util.bits_to_represent retries in
  let try_w = wire tbits in
  let tries = reg try_w -- (name ^ "_try") in
  let forced = (expired &: (tries ==: of_int ~width:tbits retries)) -- (name ^ "_forced") in
  try_w
  <== mux2 (ack |: forced) (zero tbits)
        (mux2 expired (tries +: one tbits) tries);
  let wd_err = Hwpat_devices.Handshake.sticky ~set:forced ~clear:gnd -- (name ^ "_err") in
  { wd_ack = ack |: forced; wd_err; timed_out = expired -- (name ^ "_expired"); forced }

(* --- Combined application ----------------------------------------------- *)

type errs = { parity_err : Signal.t; timeout_err : Signal.t }

let no_errs = { parity_err = gnd; timeout_err = gnd }

(* Wraps a width-parameterized memory target in the configured
   protection layers and exposes the error flags through wires, so
   callers can get at them before the container applies the target.
   The returned target must be applied exactly once. *)
let apply ?(name = "prot") ~width ~parity:want_parity ~op_timeout ?retries
    (target : int -> mem_request -> mem_port) =
  if (not want_parity) && op_timeout = None then (target width, no_errs)
  else begin
    let parity_err = wire 1 -- (name ^ "_parity_err") in
    let timeout_err = wire 1 -- (name ^ "_timeout_err") in
    let wrapped (r : mem_request) =
      let port, perr =
        if want_parity then parity ~name:(name ^ "_par") ~width target r
        else (target width r, gnd)
      in
      let ack, terr =
        match op_timeout with
        | Some timeout ->
          let wd =
            watchdog ~name:(name ^ "_wd") ~timeout ?retries ~req:r.mem_req
              ~ack:port.mem_ack ()
          in
          (wd.wd_ack, wd.wd_err)
        | None -> (port.mem_ack, gnd)
      in
      parity_err <== perr;
      timeout_err <== terr;
      { mem_ack = ack; mem_rdata = port.mem_rdata }
    in
    (wrapped, { parity_err; timeout_err })
  end
