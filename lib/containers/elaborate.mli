(** Elaborate a {!Hwpat_meta.Config.t} into a closed {!Circuit.t}, in
    both unpruned and pruned form, so the two can be compared by the
    formal layer.

    [full] exposes an input port for every operation the container
    kind supports; [pruned] ties the request (and data) ports of
    operations outside [ops_used] to constant zero and runs
    {!Hwpat_rtl.Optimize.circuit}, mirroring what the code generator's
    pruning does. The pruned circuit therefore has a subset of the
    full circuit's input ports; on the shared ("retained") interface
    the two must be sequentially equivalent, which is exactly the
    convention [Equiv.check] implements (exclusive inputs tied to
    zero).

    Supported kinds: [Queue] and [Stack] (sequential interface:
    [get_req], [put_req], [put_data] in; [get_ack], [get_data],
    [put_ack], [empty], [full], [size] out) and [Vector] (random
    interface: [read_req], [write_req], [addr], [write_data] in;
    [read_ack], [read_data], [write_ack], [length] out). Other kinds
    raise [Invalid_argument]. *)

open Hwpat_rtl

val full : ?trace:Hwpat_obs.Trace.t -> Hwpat_meta.Config.t -> Circuit.t
val pruned : ?trace:Hwpat_obs.Trace.t -> Hwpat_meta.Config.t -> Circuit.t
(** [trace] (default disabled) records an [elaborate] span; for the
    pruned form it is annotated with the pruning decision — the
    operations whose driver ports stay live ([ops_kept]) and those
    tied to constant zero ([ops_tied_off]). *)
