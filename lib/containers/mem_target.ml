open Hwpat_rtl
open Hwpat_rtl.Signal
open Container_intf

let bram ?(name = "bram") ~size ~width (r : mem_request) =
  if Signal.width r.mem_wdata <> width then
    invalid_arg "Mem_target.bram: wdata width mismatch";
  let mem = create_memory ~size ~width ~name:(name ^ "_ram") () in
  let req = r.mem_req -- (name ^ "_req") in
  (* One-cycle handshake: ack pulses the cycle after a fresh request. *)
  let ack = reg_fb ~width:1 (fun q -> req &: ~:q) -- (name ^ "_ack") in
  let accept = req &: ~:ack in
  mem_write_port mem ~enable:(accept &: r.mem_we) ~addr:r.mem_addr
    ~data:r.mem_wdata;
  let rdata =
    mem_read_sync mem ~enable:(accept &: ~:(r.mem_we)) ~addr:r.mem_addr ()
    -- (name ^ "_rdata")
  in
  { mem_ack = ack; mem_rdata = rdata }

let sram ?(name = "sram") ~words ~width ~wait_states (r : mem_request) =
  let dev =
    Hwpat_devices.Sram.create ~name ~words ~width ~wait_states ~req:r.mem_req
      ~we:r.mem_we ~addr:r.mem_addr ~wr_data:r.mem_wdata ()
  in
  { mem_ack = dev.Hwpat_devices.Sram.ack; mem_rdata = dev.Hwpat_devices.Sram.rd_data }

let of_arbiter_grant (g : Hwpat_devices.Sram_arbiter.grant) =
  {
    mem_ack = g.Hwpat_devices.Sram_arbiter.ack;
    mem_rdata = g.Hwpat_devices.Sram_arbiter.rd_data;
  }

let to_arbiter_client (r : mem_request) =
  {
    Hwpat_devices.Sram_arbiter.req = r.mem_req;
    we = r.mem_we;
    addr = r.mem_addr;
    wr_data = r.mem_wdata;
  }
