open Hwpat_rtl
open Hwpat_rtl.Signal
open Container_intf

let over_fifo ?(name = "queue") ~depth ~width (d : seq_driver) =
  let rd_en = wire 1 in
  let fifo =
    Hwpat_devices.Fifo_core.create ~name ~depth ~width
      ~wr_en:d.put_req ~wr_data:d.put_data ~rd_en ()
  in
  let open Hwpat_devices.Fifo_core in
  (* One pop in flight at a time; no refire during the ack cycle, since
     the client deasserts its request only on the next cycle. *)
  let pending =
    reg_fb ~width:1 (fun q -> mux2 rd_en vdd (mux2 fifo.rd_valid gnd q))
    -- (name ^ "_pending")
  in
  rd_en <== (d.get_req &: ~:(fifo.empty) &: ~:pending &: ~:(fifo.rd_valid));
  {
    get_ack = fifo.rd_valid;
    get_data = fifo.rd_data;
    put_ack = d.put_req &: ~:(fifo.full);
    empty = fifo.empty;
    full = fifo.full;
    size = fifo.count;
  }

let st_idle = 0
let st_get = 1
let st_put = 2

let over_mem ?(name = "queue") ~depth ~width ~target (d : seq_driver) =
  if Signal.width d.put_data <> width then
    invalid_arg "Queue_c.over_mem: put_data width mismatch";
  let abits = Util.address_bits depth in
  let cbits = Util.bits_to_represent depth in
  let fsm = Fsm.create ~name:(name ^ "_state") ~states:3 () in
  let in_get = Fsm.is fsm st_get and in_put = Fsm.is fsm st_put in
  let last = of_int ~width:abits (depth - 1) in
  let bump ptr = mux2 (ptr ==: last) (zero abits) (ptr +: one abits) in
  let count_w = wire cbits in
  let count = reg count_w -- (name ^ "_count") in
  let empty = (count ==: zero cbits) -- (name ^ "_empty") in
  let full = (count ==: of_int ~width:cbits depth) -- (name ^ "_full") in
  let port_w = { mem_ack = wire 1; mem_rdata = wire width } in
  let done_get = in_get &: port_w.mem_ack in
  let done_put = in_put &: port_w.mem_ack in
  let ptr_begin =
    reg_fb ~width:abits (fun q -> mux2 done_get (bump q) q) -- (name ^ "_begin")
  in
  let ptr_end =
    reg_fb ~width:abits (fun q -> mux2 done_put (bump q) q) -- (name ^ "_end")
  in
  count_w
  <== (count
      +: mux2 done_put (one cbits) (zero cbits)
      -: mux2 done_get (one cbits) (zero cbits));
  Fsm.transitions fsm
    [
      ( st_idle,
        [ (d.get_req &: ~:empty, st_get); (d.put_req &: ~:full, st_put) ] );
      (st_get, [ (port_w.mem_ack, st_idle) ]);
      (st_put, [ (port_w.mem_ack, st_idle) ]);
    ];
  let request =
    {
      (* Named so runtime monitors can auto-attach to the memory-side
         handshake (Monitor.add_auto). *)
      mem_req = (in_get |: in_put) -- (name ^ "_op_req");
      mem_we = in_put;
      mem_addr = mux2 in_put ptr_end ptr_begin;
      mem_wdata = d.put_data;
    }
  in
  let port = target request in
  ignore (port.mem_ack -- (name ^ "_op_ack"));
  port_w.mem_ack <== port.mem_ack;
  port_w.mem_rdata <== port.mem_rdata;
  {
    get_ack = done_get;
    get_data = port.mem_rdata;
    put_ack = done_put;
    empty;
    full;
    size = count;
  }

let over_bram ?(name = "queue") ~depth ~width d =
  over_mem ~name ~depth ~width
    ~target:(Mem_target.bram ~name:(name ^ "_bram") ~size:depth ~width)
    d

let over_sram ?(name = "queue") ~depth ~width ~wait_states d =
  over_mem ~name ~depth ~width
    ~target:(Mem_target.sram ~name:(name ^ "_sram") ~words:depth ~width ~wait_states)
    d
