(** Minimal JSON: the value type, a strict parser and a deterministic
    printer — just enough for the serve protocol, with zero
    dependencies (the rest of the repo only ever {e emits} JSON by
    hand; the daemon is the first consumer that must {e parse} it).

    Determinism contract: {!to_string} is a pure function of the value
    — object members print in the order held in the [Obj] list, floats
    print through one fixed format — so a response built from the same
    data serializes to the same bytes.  The cached-vs-fresh
    byte-identity guarantee of the serve cache rests on this. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Strict RFC-8259 parse of one document (surrounding whitespace
    allowed, trailing bytes rejected).  Numbers without [.], [e] or
    [E] that fit an OCaml [int] parse as [Int], everything else as
    [Float].  [\uXXXX] escapes decode to UTF-8 (surrogate pairs
    handled).  Nesting is capped (guards the daemon against
    stack-smashing inputs); errors name the byte offset. *)

val to_string : t -> string
(** Compact rendering ([,] and [:] separators, no whitespace).
    Non-finite floats render as [null]. *)

val member : string -> t -> t option
(** Object member lookup; [None] on non-objects. *)

(** {1 Typed accessors for request parameters}

    Each takes [(params, key)] and returns the default when the key is
    absent or the params are not an object; a present member of the
    wrong type raises {!Type_error} — the dispatcher maps it to an
    [invalid-params] error response naming the key. *)

exception Type_error of string

val get_int : t -> string -> default:int -> int
(** Accepts [Int]; also [Float] with an integral value. *)

val get_bool : t -> string -> default:bool -> bool
val get_float : t -> string -> default:float -> float
val get_string : t -> string -> default:string -> string

val get_string_opt : t -> string -> string option
val get_int_opt : t -> string -> int option
val get_list_opt : t -> string -> t list option
