type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Parsing: recursive descent over the input string.  [exception Fail]
   carries the offset and message; [parse] catches it into a result.  *)
(* ------------------------------------------------------------------ *)

exception Fail of int * string

let max_depth = 256

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "invalid literal (expected %s)" word)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = ref 0 in
    for _ = 1 to 4 do
      let d =
        match s.[!pos] with
        | '0' .. '9' as c -> Char.code c - Char.code '0'
        | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
        | _ -> fail "invalid \\u escape"
      in
      v := (!v * 16) + d;
      advance ()
    done;
    !v
  in
  let add_utf8 buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let string_body () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' ->
        advance ();
        Buffer.contents buf
      | '\\' ->
        advance ();
        if !pos >= n then fail "unterminated escape";
        let c = s.[!pos] in
        advance ();
        (match c with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
          let cp = hex4 () in
          if cp >= 0xD800 && cp <= 0xDBFF then begin
            (* high surrogate: require the low half *)
            if
              !pos + 2 <= n
              && s.[!pos] = '\\'
              && s.[!pos + 1] = 'u'
            then begin
              advance ();
              advance ();
              let lo = hex4 () in
              if lo < 0xDC00 || lo > 0xDFFF then fail "invalid surrogate pair";
              add_utf8 buf
                (0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00))
            end
            else fail "unpaired surrogate"
          end
          else if cp >= 0xDC00 && cp <= 0xDFFF then fail "unpaired surrogate"
          else add_utf8 buf cp
        | _ -> fail "invalid escape");
        go ()
      | c when Char.code c < 0x20 -> fail "control character in string"
      | c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ()
  in
  let number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then advance ();
    let digits () =
      let d0 = !pos in
      while
        !pos < n && match s.[!pos] with '0' .. '9' -> true | _ -> false
      do
        advance ()
      done;
      if !pos = d0 then fail "invalid number"
    in
    digits ();
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
      is_float := true;
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ());
    let text = String.sub s start (!pos - start) in
    if !is_float then Float (float_of_string text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> Float (float_of_string text)
  in
  let rec value depth =
    if depth > max_depth then fail "nesting too deep";
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let key = string_body () in
          skip_ws ();
          expect ':';
          let v = value (depth + 1) in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((key, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((key, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (members [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec elements acc =
          let v = value (depth + 1) in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        List (elements [])
      end
    | Some '"' -> String (string_body ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> number ()
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  match
    let v = value 0 in
    skip_ws ();
    if !pos < n then fail "trailing bytes after document";
    v
  with
  | v -> Ok v
  | exception Fail (off, msg) ->
    Error (Printf.sprintf "%s at byte %d" msg off)

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape_into buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* One fixed float format: shortest of %.12g that is still JSON-valid
   (a bare integer mantissa gets a ".0" so it round-trips as a float). *)
let float_text f =
  if not (Float.is_finite f) then "null"
  else begin
    let s = Printf.sprintf "%.12g" f in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
    else s ^ ".0"
  end

let to_string v =
  let buf = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_text f)
    | String s -> escape_into buf s
    | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          go x)
        xs;
      Buffer.add_char buf ']'
    | Obj members ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, x) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_into buf k;
          Buffer.add_char buf ':';
          go x)
        members;
      Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

exception Type_error of string

let member key = function
  | Obj members -> List.assoc_opt key members
  | _ -> None

let wrong key kind =
  raise (Type_error (Printf.sprintf "%s must be %s" key kind))

let get_int params key ~default =
  match member key params with
  | None -> default
  | Some (Int i) -> i
  | Some (Float f) when Float.is_integer f -> int_of_float f
  | Some _ -> wrong key "an integer"

let get_bool params key ~default =
  match member key params with
  | None -> default
  | Some (Bool b) -> b
  | Some _ -> wrong key "a boolean"

let get_float params key ~default =
  match member key params with
  | None -> default
  | Some (Float f) -> f
  | Some (Int i) -> float_of_int i
  | Some _ -> wrong key "a number"

let get_string params key ~default =
  match member key params with
  | None -> default
  | Some (String s) -> s
  | Some _ -> wrong key "a string"

let get_string_opt params key =
  match member key params with
  | None | Some Null -> None
  | Some (String s) -> Some s
  | Some _ -> wrong key "a string"

let get_int_opt params key =
  match member key params with
  | None | Some Null -> None
  | Some (Int i) -> Some i
  | Some (Float f) when Float.is_integer f -> Some (int_of_float f)
  | Some _ -> wrong key "an integer"

let get_list_opt params key =
  match member key params with
  | None | Some Null -> None
  | Some (List xs) -> Some xs
  | Some _ -> wrong key "a list"
