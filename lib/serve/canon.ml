open Hwpat_meta

let container_of_string s =
  match String.lowercase_ascii s with
  | "stack" | "lifo-stack" -> Metamodel.Stack
  | "queue" | "fifo-queue" -> Metamodel.Queue
  | "rbuffer" | "read-buffer" -> Metamodel.Read_buffer
  | "wbuffer" | "write-buffer" -> Metamodel.Write_buffer
  | "vector" -> Metamodel.Vector
  | "assoc" | "assoc-array" -> Metamodel.Assoc_array
  | _ ->
    Protocol.invalid_params
      "unknown container %S (valid: stack, queue, rbuffer, wbuffer, vector, \
       assoc)"
      s

let target_of_string s =
  match String.lowercase_ascii s with
  | "fifo" -> Metamodel.Fifo_core
  | "lifo" -> Metamodel.Lifo_core
  | "bram" -> Metamodel.Block_ram
  | "sram" -> Metamodel.Ext_sram
  | "linebuf" | "linebuf3" -> Metamodel.Line_buffer3
  | _ ->
    Protocol.invalid_params
      "unknown target %S (valid: fifo, lifo, bram, sram, linebuf3)" s

let operation_of_string s =
  match String.lowercase_ascii s with
  | "inc" -> Metamodel.Inc
  | "dec" -> Metamodel.Dec
  | "read" -> Metamodel.Read
  | "write" -> Metamodel.Write
  | "index" -> Metamodel.Index
  | _ ->
    Protocol.invalid_params
      "unknown operation %S (valid: inc, dec, read, write, index)" s

(* The canonical operation order is the metamodel's own (Table 2);
   request order and duplicates must not leak into the cache key or
   the generated text. *)
let normalize_ops ops =
  List.filter (fun op -> List.mem op ops) Metamodel.all_operations

let config_of_params params =
  let str key = Json.get_string_opt params key in
  let container =
    match str "container" with
    | Some s -> container_of_string s
    | None -> Protocol.invalid_params "missing container"
  in
  let target =
    match str "target" with
    | Some s -> target_of_string s
    | None -> Protocol.invalid_params "missing target"
  in
  let ops_used =
    match Json.get_list_opt params "ops" with
    | None -> None
    | Some items ->
      let names =
        List.map
          (function
            | Json.String s -> operation_of_string s
            | _ -> Protocol.invalid_params "ops must be a list of strings")
          items
      in
      Some (normalize_ops names)
  in
  try
    Config.make
      ?bus_width:(Json.get_int_opt params "bus")
      ?addr_width:(Json.get_int_opt params "addr_width")
      ?ops_used
      ~wait_states:(Json.get_int params "wait_states" ~default:1)
      ~parity:(Json.get_bool params "parity" ~default:false)
      ?op_timeout:(Json.get_int_opt params "op_timeout")
      ~instance_name:(Json.get_string params "instance" ~default:"gen")
      ~kind:container ~target
      ~elem_width:(Json.get_int params "width" ~default:8)
      ~depth:(Json.get_int params "depth" ~default:512)
      ()
  with Invalid_argument msg -> raise (Protocol.Error (Invalid_params, msg))

(* Every resolved field in one fixed order.  Operation names join on
   '+' (they never contain one); container names can contain spaces
   ("read buffer") but the key is never parsed back, only compared. *)
let config_key (c : Config.t) =
  let ops =
    String.concat "+" (List.map Metamodel.operation_name c.ops_used)
  in
  Printf.sprintf
    "cfg/%s/%s/inst=%s/w=%d/d=%d/bus=%d/addr=%d/ops=%s/ws=%d/par=%b/to=%s"
    (Metamodel.container_name c.kind)
    (Metamodel.target_name c.target)
    c.instance_name c.elem_width c.depth c.bus_width c.addr_width ops
    c.wait_states c.parity
    (match c.op_timeout with None -> "none" | Some t -> string_of_int t)

let plan_key ~design ~style ~frame_w ~frame_h ~engine =
  Printf.sprintf "plan/%s/%s/%dx%d/%s"
    (String.lowercase_ascii design)
    (String.lowercase_ascii style)
    frame_w frame_h
    (match engine with
    | Hwpat_rtl.Cyclesim.Reference -> "reference"
    | Hwpat_rtl.Cyclesim.Compiled -> "compiled")
