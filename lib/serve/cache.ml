type 'a entry = { value : 'a; mutable stamp : int }

type 'a t = {
  m : Mutex.t;
  tbl : (string, 'a entry) Hashtbl.t;
  capacity : int;
  name : string;
  metrics : Hwpat_obs.Metrics.t;
  mutable tick : int;  (* recency clock: bumped on every touch *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type counters = { hits : int; misses : int; evictions : int }

let create ?(metrics = Hwpat_obs.Metrics.null) ~name ~capacity () =
  {
    m = Mutex.create ();
    tbl = Hashtbl.create 64;
    capacity;
    name;
    metrics;
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let count t what =
  Hwpat_obs.Metrics.incr t.metrics
    (Printf.sprintf "serve.cache.%s.%s" t.name what)

let touch t e =
  t.tick <- t.tick + 1;
  e.stamp <- t.tick

(* O(n) scan for the oldest stamp — capacities here are tens of
   entries, and eviction only runs on insert past capacity. *)
let evict_oldest t =
  let victim = ref None in
  Hashtbl.iter
    (fun k e ->
      match !victim with
      | Some (_, stamp) when stamp <= e.stamp -> ()
      | _ -> victim := Some (k, e.stamp))
    t.tbl;
  match !victim with
  | None -> ()
  | Some (k, _) ->
    Hashtbl.remove t.tbl k;
    t.evictions <- t.evictions + 1;
    count t "evictions"

let find t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | Some e ->
        t.hits <- t.hits + 1;
        count t "hits";
        touch t e;
        Some e.value
      | None ->
        t.misses <- t.misses + 1;
        count t "misses";
        None)

let add t key value =
  if t.capacity > 0 then
    locked t (fun () ->
        if not (Hashtbl.mem t.tbl key) then begin
          if Hashtbl.length t.tbl >= t.capacity then evict_oldest t;
          let e = { value; stamp = 0 } in
          touch t e;
          Hashtbl.add t.tbl key e
        end)

let find_or_add t key compute =
  match find t key with
  | Some v -> v
  | None ->
    let v = compute () in
    add t key v;
    v

let length t = locked t (fun () -> Hashtbl.length t.tbl)

let counters t =
  locked t (fun () ->
      { hits = t.hits; misses = t.misses; evictions = t.evictions })

let name t = t.name
let clear t = locked t (fun () -> Hashtbl.reset t.tbl)
