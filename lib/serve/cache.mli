(** Size-bounded LRU cache with hit/miss/eviction accounting.

    One cache per artifact kind (elaborated circuits, compiled
    simulation plans, rendered result payloads), keyed by the
    {!Canon} canonical strings.  Lookups are guarded by a mutex;
    {e computation happens outside the lock}, so a slow elaboration
    never blocks unrelated requests.  Two concurrent misses on the
    same key may both compute — the repo's artifacts are deterministic,
    so whichever insert lands last is byte-identical to the other and
    correctness is unaffected; the duplicate work is accepted in
    exchange for never holding the lock across user code. *)

type 'a t

val create :
  ?metrics:Hwpat_obs.Metrics.t -> name:string -> capacity:int -> unit -> 'a t
(** [capacity <= 0] disables caching (every lookup misses and nothing
    is retained).  When a metrics registry is given, the counters
    [serve.cache.<name>.{hits,misses,evictions}] mirror this cache's
    accounting. *)

val find_or_add : 'a t -> string -> (unit -> 'a) -> 'a
(** Return the cached value for the key, or compute, insert and return
    it.  Insertion past capacity evicts the least-recently-used entry.
    If the compute function raises, nothing is inserted. *)

val find : 'a t -> string -> 'a option
(** Lookup without computing; counts as a hit or miss and refreshes
    recency on hit. *)

val add : 'a t -> string -> 'a -> unit
(** Insert without looking up (first writer wins on an existing key).
    For values that are only cacheable conditionally — a campaign
    summary is inserted only when it ran to completion, since one cut
    short by a request deadline contains unfinished shards. *)

val length : 'a t -> int

type counters = { hits : int; misses : int; evictions : int }

val counters : 'a t -> counters
val name : 'a t -> string

val clear : 'a t -> unit
(** Drop every entry (counters are retained). *)
