(** Request handlers: the daemon's method table over the existing
    pipeline (elaborate, codegen, netlist emit, simulate, fault
    campaigns, characterisation sweeps, proof battery).

    Handlers never touch sockets or framing — they map validated
    request params to a JSON result, raising {!Protocol.Error} for
    request-level failures.  The server wraps each call in
    {!Hwpat_core.Supervise.run_one}; the [ctx] argument is that
    supervision context, polled (directly or through the pipeline's
    [?check] hooks) so a per-request deadline interrupts a simulation
    mid-cycle instead of after it.

    Caching: elaborated circuits, compiled simulation plans and
    deterministic whole-result payloads live in three {!Cache}s keyed
    by {!Canon} strings.  A repeated canonically-equal request is
    answered from the results cache byte-identically.  Campaign
    results (faultsim, sweep) are cached only when the request ran
    without a deadline — a deadline can cut shards short, and a
    truncated summary must never be replayed to a later caller.
    [prove] results are never cached (they embed measured seconds). *)

type t = {
  circuits : Hwpat_rtl.Circuit.t Cache.t;
  plans : (Hwpat_rtl.Cyclesim.plan * Hwpat_core.Designs.flavor) Cache.t;
  results : Json.t Cache.t;
  trace : Hwpat_obs.Trace.t;
  metrics : Hwpat_obs.Metrics.t;
  jobs : int;  (** default shard count for in-request campaigns *)
}

val create :
  ?trace:Hwpat_obs.Trace.t ->
  ?metrics:Hwpat_obs.Metrics.t ->
  ?cache_size:int ->
  ?jobs:int ->
  unit ->
  t
(** [cache_size] (default 32) bounds each of the three caches
    individually; [jobs] defaults to 1 — the daemon parallelises
    {e across} requests by default, and a request asks for in-request
    sharding explicitly via its [jobs] param. *)

val methods : string list
(** Every method {!handle} dispatches, sorted — the wire-visible
    catalog (ping, elaborate, codegen, emit, simulate, faultsim,
    sweep, prove, batch, sleep).  [stats] and [shutdown] are handled
    by the server itself and are not in this list. *)

val handle : t -> Hwpat_core.Supervise.ctx -> Protocol.request -> Json.t
(** Dispatch one request.  Raises {!Protocol.Error} for protocol-level
    failures; [Failure]/[Invalid_argument] escaping the pipeline are
    the caller's to map to [invalid-params]. *)

val cache_stats_json : t -> Json.t
(** Per-cache hit/miss/eviction/entry counts for the [stats] response. *)
