(** Canonicalization of request parameters into typed configs and
    stable cache keys.

    Two requests that mean the same thing — object members in a
    different order, defaults spelled out versus omitted, container
    aliases ("rbuffer" / "read-buffer"), operation lists in any order —
    must canonicalize to the {e same} [Config.t] and the same key, so
    the second one hits the cache and its response is byte-identical
    to the first's.  The key renders {e every} field of the resolved
    config (defaults applied) in one fixed order; nothing about the
    request's surface syntax survives into it. *)

val container_of_string : string -> Hwpat_meta.Metamodel.container_kind
(** Accepts the CLI spellings (stack, queue, rbuffer/read-buffer,
    wbuffer/write-buffer, vector, assoc/assoc-array); raises
    {!Protocol.Error} [Invalid_params] otherwise. *)

val target_of_string : string -> Hwpat_meta.Metamodel.target
(** fifo, lifo, bram, sram, linebuf/linebuf3. *)

val operation_of_string : string -> Hwpat_meta.Metamodel.operation
(** inc, dec, read, write, index. *)

val config_of_params : Json.t -> Hwpat_meta.Config.t
(** Build a validated config from request params: [container] and
    [target] (required), [width] (default 8), [depth] (default 512),
    [instance] (default "gen"), [bus], [addr_width], [ops] (list of
    operation names, normalized into Table-2 order and deduplicated),
    [wait_states], [parity], [op_timeout].  Validation failures
    ({!Hwpat_meta.Config.make}'s [Invalid_argument]) surface as
    {!Protocol.Error} [Invalid_params]. *)

val config_key : Hwpat_meta.Config.t -> string
(** Stable rendering of every resolved field, the cache identity. *)

val plan_key :
  design:string -> style:string -> frame_w:int -> frame_h:int ->
  engine:Hwpat_rtl.Cyclesim.engine -> string
(** Cache identity of a compiled simulation plan for a named video
    design (design/style lower-cased). *)
