(** The serve wire protocol: line-delimited JSON request/response.

    One request per line: [{"id": ..., "method": "...", "params":
    {...}}].  [id] is echoed verbatim in the response and may be any
    JSON value (default [null]); [params] defaults to [{}].  One
    response per line, in {e request order} per connection:
    [{"id": ..., "result": ...}] on success, [{"id": ..., "error":
    {"code": "...", "message": "..."}}] on failure.  Error codes are
    stable strings, part of the protocol. *)

type request = { id : Json.t; meth : string; params : Json.t }

type error_code =
  | Parse_error  (** the line was not JSON *)
  | Invalid_request  (** JSON, but not a request object *)
  | Unknown_method
  | Invalid_params
  | Overloaded  (** admission control rejected the request *)
  | Deadline  (** the request's deadline expired mid-execution *)
  | Oversized  (** the request line exceeded the byte bound *)
  | Shutting_down  (** received after shutdown began *)
  | Internal  (** handler bug — the catch-all *)

val code_string : error_code -> string
(** The stable wire rendering, e.g. ["invalid-params"]. *)

exception Error of error_code * string
(** Raised by handlers; the dispatcher turns it into an error
    response. *)

val invalid_params : ('a, unit, string, 'b) format4 -> 'a
(** [raise (Error (Invalid_params, ...))] with a formatted message. *)

val parse_request : Json.t -> (request, string) result
(** Validate a parsed line into a request ([Error] text goes into an
    [invalid-request] response). *)

val response_ok : id:Json.t -> Json.t -> string
(** Serialized success response line (no trailing newline). *)

val response_error : id:Json.t -> error_code -> string -> string
(** Serialized error response line (no trailing newline). *)
