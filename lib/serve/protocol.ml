type request = { id : Json.t; meth : string; params : Json.t }

type error_code =
  | Parse_error
  | Invalid_request
  | Unknown_method
  | Invalid_params
  | Overloaded
  | Deadline
  | Oversized
  | Shutting_down
  | Internal

let code_string = function
  | Parse_error -> "parse-error"
  | Invalid_request -> "invalid-request"
  | Unknown_method -> "unknown-method"
  | Invalid_params -> "invalid-params"
  | Overloaded -> "overloaded"
  | Deadline -> "deadline"
  | Oversized -> "oversized"
  | Shutting_down -> "shutting-down"
  | Internal -> "internal"

exception Error of error_code * string

let invalid_params fmt =
  Printf.ksprintf (fun msg -> raise (Error (Invalid_params, msg))) fmt

let parse_request json =
  match json with
  | Json.Obj members ->
    let unknown =
      List.find_opt
        (fun (k, _) -> k <> "id" && k <> "method" && k <> "params")
        members
    in
    (match unknown with
    | Some (k, _) -> Result.Error (Printf.sprintf "unknown request field %S" k)
    | None -> (
      match Json.member "method" json with
      | Some (Json.String meth) when meth <> "" -> (
        let id = Option.value (Json.member "id" json) ~default:Json.Null in
        match Json.member "params" json with
        | None -> Result.Ok { id; meth; params = Json.Obj [] }
        | Some (Json.Obj _ as p) -> Result.Ok { id; meth; params = p }
        | Some _ -> Result.Error "params must be an object")
      | Some _ -> Result.Error "method must be a non-empty string"
      | None -> Result.Error "missing method"))
  | _ -> Result.Error "request must be a JSON object"

let response_ok ~id result =
  Json.to_string (Json.Obj [ ("id", id); ("result", result) ])

let response_error ~id code message =
  Json.to_string
    (Json.Obj
       [
         ("id", id);
         ( "error",
           Json.Obj
             [
               ("code", Json.String (code_string code));
               ("message", Json.String message);
             ] );
       ])
