open Hwpat_core

type config = {
  jobs : int;
  campaign_jobs : int;
  cache_size : int;
  max_inflight : int;
  queue_bound : int;
  max_request_bytes : int;
  trace : Hwpat_obs.Trace.t;
  metrics : Hwpat_obs.Metrics.t;
}

let default_config =
  {
    jobs = 1;
    campaign_jobs = 1;
    cache_size = 32;
    max_inflight = 64;
    queue_bound = 32;
    max_request_bytes = 1 lsl 20;
    trace = Hwpat_obs.Trace.null;
    metrics = Hwpat_obs.Metrics.null;
  }

type t = {
  config : config;
  handlers : Handlers.t;
  pool : Parallel.Pool.t;
  stop_flag : bool Atomic.t;
  started : float;
  accepted : int Atomic.t;
  ok : int Atomic.t;
  errors : int Atomic.t;
  rejected : int Atomic.t;
}

let create config =
  (* A client that disconnects before reading its responses must not
     take the daemon down: turn SIGPIPE into EPIPE from write(2), which
     [complete] handles per-connection. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let jobs = Parallel.clamp_jobs config.jobs in
  {
    config = { config with jobs };
    handlers =
      Handlers.create ~trace:config.trace ~metrics:config.metrics
        ~cache_size:config.cache_size ~jobs:config.campaign_jobs ();
    pool = Parallel.Pool.create ~jobs ();
    stop_flag = Atomic.make false;
    started = Unix.gettimeofday ();
    accepted = Atomic.make 0;
    ok = Atomic.make 0;
    errors = Atomic.make 0;
    rejected = Atomic.make 0;
  }

let handlers t = t.handlers
let stop t = Atomic.set t.stop_flag true
let stopping t = Atomic.get t.stop_flag
let shutdown t = Parallel.Pool.shutdown t.pool

let stats_json t =
  Json.Obj
    [
      ( "requests",
        Json.Obj
          [
            ("accepted", Json.Int (Atomic.get t.accepted));
            ("ok", Json.Int (Atomic.get t.ok));
            ("errors", Json.Int (Atomic.get t.errors));
            ("rejected", Json.Int (Atomic.get t.rejected));
          ] );
      ("caches", Handlers.cache_stats_json t.handlers);
      ( "pool",
        Json.Obj
          [
            ("jobs", Json.Int (Parallel.Pool.jobs t.pool));
            ("pending", Json.Int (Parallel.Pool.pending t.pool));
            ("running", Json.Int (Parallel.Pool.running t.pool));
          ] );
      ( "timing",
        Json.Obj
          [ ("uptime_s", Json.Float (Unix.gettimeofday () -. t.started)) ] );
    ]

(* ------------------------------------------------------------------ *)
(* Request execution (on a pool worker)                                *)
(* ------------------------------------------------------------------ *)

let count_response t line is_ok =
  Atomic.incr (if is_ok then t.ok else t.errors);
  Hwpat_obs.Metrics.incr t.config.metrics
    (if is_ok then "serve.responses.ok" else "serve.responses.error");
  Hwpat_obs.Metrics.observe t.config.metrics "serve.response_bytes"
    (String.length line)

(* Returns the serialized response line and whether it is a success. *)
let execute t (req : Protocol.request) =
  let id = req.Protocol.id in
  let t0 = Unix.gettimeofday () in
  let line, is_ok =
    match
      Hwpat_obs.Trace.span t.config.trace ("serve:" ^ req.Protocol.meth)
        (fun () ->
          let deadline =
            Json.get_float req.Protocol.params "deadline_s" ~default:0.0
          in
          if deadline < 0.0 then
            Protocol.invalid_params "deadline_s must be non-negative";
          let policy =
            {
              Supervise.retries = 0;
              backoff_s = 0.0;
              shard_timeout_s = deadline;
            }
          in
          Supervise.run_one ~policy ~metrics:t.config.metrics (fun ctx ->
              Handlers.handle t.handlers ctx req))
    with
    | Supervise.Done result -> (Protocol.response_ok ~id result, true)
    | Supervise.Unfinished { reason; _ } ->
      (Protocol.response_error ~id Protocol.Deadline reason, false)
    | exception Protocol.Error (code, msg) ->
      (Protocol.response_error ~id code msg, false)
    | exception (Failure msg | Invalid_argument msg) ->
      (Protocol.response_error ~id Protocol.Invalid_params msg, false)
    | exception Json.Type_error msg ->
      (Protocol.response_error ~id Protocol.Invalid_params msg, false)
    | exception e ->
      (Protocol.response_error ~id Protocol.Internal (Printexc.to_string e), false)
  in
  Hwpat_obs.Metrics.observe t.config.metrics "serve.latency_us"
    (int_of_float ((Unix.gettimeofday () -. t0) *. 1e6));
  (line, is_ok)

(* ------------------------------------------------------------------ *)
(* Per-connection state: bounded line intake, reorder-buffer output    *)
(* ------------------------------------------------------------------ *)

let rec write_all fd s off len =
  if len > 0 then begin
    let n =
      try Unix.write_substring fd s off len
      with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    write_all fd s (off + n) (len - n)
  end

type conn = {
  out_fd : Unix.file_descr;
  m : Mutex.t;
  drained : Condition.t;
  parked : (int, string) Hashtbl.t;
  mutable next_assign : int;
  mutable next_emit : int;
  mutable dead : bool;  (* write failed: drop remaining responses *)
}

let make_conn out_fd =
  {
    out_fd;
    m = Mutex.create ();
    drained = Condition.create ();
    parked = Hashtbl.create 16;
    next_assign = 0;
    next_emit = 0;
    dead = false;
  }

let locked conn f =
  Mutex.lock conn.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock conn.m) f

let assign conn =
  locked conn (fun () ->
      let seq = conn.next_assign in
      conn.next_assign <- seq + 1;
      seq)

(* Park a finished response and flush the consecutive prefix.  A write
   failure (EPIPE/ECONNRESET from a departed client — SIGPIPE is
   ignored in [create]) marks the connection dead; later responses
   still advance [next_emit] (so [wait_drained] terminates) but are
   dropped instead of written. *)
let complete conn seq line =
  locked conn (fun () ->
      Fun.protect
        ~finally:(fun () -> Condition.broadcast conn.drained)
        (fun () ->
          Hashtbl.replace conn.parked seq line;
          let rec flush () =
            match Hashtbl.find_opt conn.parked conn.next_emit with
            | None -> ()
            | Some line ->
              Hashtbl.remove conn.parked conn.next_emit;
              conn.next_emit <- conn.next_emit + 1;
              (if not conn.dead then
                 try
                   write_all conn.out_fd (line ^ "\n") 0
                     (String.length line + 1)
                 with Unix.Unix_error _ -> conn.dead <- true);
              flush ()
          in
          flush ()))

let wait_drained conn =
  locked conn (fun () ->
      while conn.next_emit < conn.next_assign do
        Condition.wait conn.drained conn.m
      done)

(* Bounded line reader.  Polls with a select timeout so a {!stop}
   request (SIGINT) interrupts a connection that is idle mid-read;
   lines beyond the byte bound are reported once and discarded without
   being buffered. *)
type reader = {
  in_fd : Unix.file_descr;
  chunk : Bytes.t;
  acc : Buffer.t;
  lines : [ `Line of string | `Oversized ] Queue.t;
  mutable discarding : bool;
  mutable eof : bool;
}

let make_reader in_fd =
  {
    in_fd;
    chunk = Bytes.create 65536;
    acc = Buffer.create 256;
    lines = Queue.create ();
    discarding = false;
    eof = false;
  }

let strip_cr line =
  let n = String.length line in
  if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line

let ingest r ~max_bytes n =
  for i = 0 to n - 1 do
    match Bytes.get r.chunk i with
    | '\n' ->
      if r.discarding then r.discarding <- false
      else begin
        Queue.push (`Line (strip_cr (Buffer.contents r.acc))) r.lines;
        Buffer.clear r.acc
      end
    | c ->
      if not r.discarding then begin
        Buffer.add_char r.acc c;
        if Buffer.length r.acc > max_bytes then begin
          Buffer.clear r.acc;
          r.discarding <- true;
          Queue.push `Oversized r.lines
        end
      end
  done

let reader_eof r =
  r.eof <- true;
  (* a final unterminated line still counts *)
  if Buffer.length r.acc > 0 && not r.discarding then begin
    Queue.push (`Line (strip_cr (Buffer.contents r.acc))) r.lines;
    Buffer.clear r.acc
  end

let rec next_line t r ~max_bytes =
  match Queue.take_opt r.lines with
  | Some (`Line _ as ev) | Some (`Oversized as ev) -> ev
  | None ->
    if r.eof then `Eof
    else if stopping t then `Stopped
    else begin
      (match Unix.select [ r.in_fd ] [] [] 0.2 with
      | [], _, _ -> ()
      | _ -> (
        match Unix.read r.in_fd r.chunk 0 (Bytes.length r.chunk) with
        | 0 -> reader_eof r
        | n -> ingest r ~max_bytes n
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        (* ECONNRESET and friends from a resetting client: same as a
           hangup, not a daemon-level failure *)
        | exception Unix.Unix_error _ -> reader_eof r)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      next_line t r ~max_bytes
    end

(* ------------------------------------------------------------------ *)
(* Intake                                                              *)
(* ------------------------------------------------------------------ *)

let reject t conn seq ~id code msg =
  Atomic.incr t.rejected;
  Hwpat_obs.Metrics.incr t.config.metrics
    (Printf.sprintf "serve.rejected.%s" (Protocol.code_string code));
  complete conn seq (Protocol.response_error ~id code msg)

let admit t =
  let pending = Parallel.Pool.pending t.pool in
  let inflight = pending + Parallel.Pool.running t.pool in
  if pending >= t.config.queue_bound || inflight >= t.config.max_inflight then
    Error
      (Printf.sprintf "%d requests in flight (max %d queued, %d total)"
         inflight t.config.queue_bound t.config.max_inflight)
  else Ok ()

let handle_line t conn line =
  let seq = assign conn in
  match Json.parse line with
  | Error msg ->
    reject t conn seq ~id:Json.Null Protocol.Parse_error msg
  | Ok doc -> (
    match Protocol.parse_request doc with
    | Error msg -> reject t conn seq ~id:Json.Null Protocol.Invalid_request msg
    | Ok req -> (
      let id = req.Protocol.id in
      match req.Protocol.meth with
      (* stats rides the pool queue (exempt from admission control, so
         it stays answerable under overload): behind one worker it runs
         after every earlier request has finished, which makes its
         counters a deterministic function of the session — the golden
         transcripts depend on that.  Lifecycle stays at intake. *)
      | "stats" ->
        Atomic.incr t.accepted;
        let task () =
          Atomic.incr t.ok;
          complete conn seq (Protocol.response_ok ~id (stats_json t))
        in
        if not (Parallel.Pool.submit t.pool task) then begin
          Atomic.incr t.ok;
          complete conn seq (Protocol.response_ok ~id (stats_json t))
        end
      | "shutdown" ->
        Atomic.incr t.accepted;
        Atomic.incr t.ok;
        complete conn seq
          (Protocol.response_ok ~id (Json.Obj [ ("stopping", Json.Bool true) ]));
        stop t
      | _ ->
        if stopping t then
          reject t conn seq ~id Protocol.Shutting_down
            "server is shutting down"
        else (
          match admit t with
          | Error msg -> reject t conn seq ~id Protocol.Overloaded msg
          | Ok () ->
            Atomic.incr t.accepted;
            Hwpat_obs.Metrics.incr t.config.metrics "serve.requests";
            let task () =
              let line, is_ok = execute t req in
              count_response t line is_ok;
              complete conn seq line
            in
            if not (Parallel.Pool.submit t.pool task) then
              reject t conn seq ~id Protocol.Shutting_down
                "server is shutting down")))

let serve_connection t in_fd out_fd =
  let conn = make_conn out_fd in
  let r = make_reader in_fd in
  let rec loop () =
    match next_line t r ~max_bytes:t.config.max_request_bytes with
    | `Eof | `Stopped -> ()
    | `Oversized ->
      let seq = assign conn in
      reject t conn seq ~id:Json.Null Protocol.Oversized
        (Printf.sprintf "request line exceeds %d bytes"
           t.config.max_request_bytes);
      loop ()
    | `Line "" -> loop ()
    | `Line line ->
      handle_line t conn line;
      loop ()
  in
  loop ();
  wait_drained conn

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let run_stdio t =
  Fun.protect
    ~finally:(fun () -> shutdown t)
    (fun () -> serve_connection t Unix.stdin Unix.stdout)

(* Make [path] bindable without displacing anything live: refuse
   non-socket files outright, probe an existing socket and refuse it
   too if a daemon still answers; only a stale socket is unlinked. *)
let claim_socket_path path =
  match Unix.lstat path with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  | { Unix.st_kind = Unix.S_SOCK; _ } ->
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      Fun.protect
        ~finally:(fun () ->
          try Unix.close probe with Unix.Unix_error _ -> ())
        (fun () ->
          match Unix.connect probe (Unix.ADDR_UNIX path) with
          | () -> true
          | exception Unix.Unix_error _ -> false)
    in
    if live then
      failwith
        (Printf.sprintf "%s: a server is already listening on this socket"
           path);
    (try Unix.unlink path with Unix.Unix_error _ -> ())
  | _ ->
    failwith
      (Printf.sprintf "%s: refusing to remove: existing file is not a socket"
         path)

let run_socket t ~path =
  claim_socket_path path;
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (* Connection domains carry a done flag so the accept loop can reap
     finished ones as it goes (OCaml caps live domains) instead of
     accumulating them until shutdown.  [join ~all:true] at shutdown
     blocks on the still-running ones; every join is exception-safe so
     one poisoned connection cannot abort the cleanup of the rest. *)
  let conns = ref [] in
  let reap ~all =
    conns :=
      List.filter
        (fun (d, finished) ->
          if all || Atomic.get finished then begin
            (try Domain.join d with _ -> ());
            false
          end
          else true)
        !conns
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      reap ~all:true;
      shutdown t;
      try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.bind listen_fd (Unix.ADDR_UNIX path);
      Unix.listen listen_fd 16;
      while not (stopping t) do
        match Unix.select [ listen_fd ] [] [] 0.2 with
        | [], _, _ -> ()
        | _ -> (
          match Unix.accept listen_fd with
          | fd, _ -> (
            reap ~all:false;
            let finished = Atomic.make false in
            match
              Domain.spawn (fun () ->
                  Fun.protect
                    ~finally:(fun () ->
                      (try Unix.close fd with Unix.Unix_error _ -> ());
                      Atomic.set finished true)
                    (fun () ->
                      (* a connection failure stays that connection's
                         problem, never the daemon's *)
                      try serve_connection t fd fd with _ -> ()))
            with
            | d -> conns := (d, finished) :: !conns
            | exception _ ->
              (* out of domains: drop the connection, keep serving *)
              (try Unix.close fd with Unix.Unix_error _ -> ()))
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      done)
