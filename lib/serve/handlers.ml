open Hwpat_core

type t = {
  circuits : Hwpat_rtl.Circuit.t Cache.t;
  plans : (Hwpat_rtl.Cyclesim.plan * Designs.flavor) Cache.t;
  results : Json.t Cache.t;
  trace : Hwpat_obs.Trace.t;
  metrics : Hwpat_obs.Metrics.t;
  jobs : int;
}

let create ?(trace = Hwpat_obs.Trace.null)
    ?(metrics = Hwpat_obs.Metrics.null) ?(cache_size = 32) ?(jobs = 1) () =
  {
    circuits = Cache.create ~metrics ~name:"circuits" ~capacity:cache_size ();
    plans = Cache.create ~metrics ~name:"plans" ~capacity:cache_size ();
    results = Cache.create ~metrics ~name:"results" ~capacity:cache_size ();
    trace;
    metrics;
    jobs = Parallel.clamp_jobs jobs;
  }

let methods =
  [
    "batch"; "codegen"; "elaborate"; "emit"; "faultsim"; "ping"; "prove";
    "simulate"; "sleep"; "sweep";
  ]

let cache_stats_json t =
  let one cache =
    let c = Cache.counters cache in
    ( Cache.name cache,
      Json.Obj
        [
          ("hits", Json.Int c.Cache.hits);
          ("misses", Json.Int c.Cache.misses);
          ("evictions", Json.Int c.Cache.evictions);
          ("entries", Json.Int (Cache.length cache));
        ] )
  in
  Json.Obj [ one t.circuits; one t.plans; one t.results ]

(* Result-cache policy: [cache=false] in the params bypasses the
   lookup *and* the insert — the request recomputes through the lower
   caches, which is how the cached-vs-fresh byte-identity tests obtain
   an independently computed response.  [cacheable] gates the insert
   for requests whose payload may have been truncated by a deadline. *)
let with_result_cache t ~key ~params ?(cacheable = fun _ -> true) compute =
  if not (Json.get_bool params "cache" ~default:true) then compute ()
  else
    match Cache.find t.results key with
    | Some v -> v
    | None ->
      let v = compute () in
      if cacheable v then Cache.add t.results key v;
      v

let reparse label text =
  match Json.parse text with
  | Ok v -> v
  | Error e ->
    raise
      (Protocol.Error
         (Internal, Printf.sprintf "%s produced invalid JSON: %s" label e))

(* Request [jobs] param: in-request campaign sharding, defaulting to
   the server-wide setting. *)
let request_jobs t params =
  match Json.get_int_opt params "jobs" with
  | None -> t.jobs
  | Some j -> Parallel.clamp_jobs j

(* The remaining request budget becomes the campaign's per-shard
   watchdog; 0.0 disables it, matching an unlimited request. *)
let campaign_policy ctx =
  let remaining = Supervise.remaining ctx in
  {
    Supervise.default_policy with
    Supervise.shard_timeout_s = (if remaining = infinity then 0.0 else remaining);
  }

let no_deadline ctx = Supervise.remaining ctx = infinity

(* --- ping ---------------------------------------------------------------- *)

let ping _t _ctx _params =
  Json.Obj [ ("pong", Json.Bool true); ("methods", Json.List (List.map (fun m -> Json.String m) methods)) ]

(* --- elaborate ----------------------------------------------------------- *)

let circuit_of_config t cfg ~pruned =
  let key =
    Printf.sprintf "%s/pruned=%b" (Canon.config_key cfg) pruned
  in
  ( key,
    Cache.find_or_add t.circuits key (fun () ->
        if pruned then Hwpat_containers.Elaborate.pruned ~trace:t.trace cfg
        else Hwpat_containers.Elaborate.full ~trace:t.trace cfg) )

let elaborate t _ctx params =
  let cfg = Canon.config_of_params params in
  let pruned = Json.get_bool params "pruned" ~default:false in
  let key, circuit = circuit_of_config t cfg ~pruned in
  let result_key = "elaborate/" ^ key in
  with_result_cache t ~key:result_key ~params (fun () ->
      let s = Hwpat_rtl.Netlist_stats.of_circuit circuit in
      Json.Obj
        [
          ("key", Json.String key);
          ("entity", Json.String (Hwpat_meta.Config.entity_name cfg));
          ("pruned", Json.Bool pruned);
          ("nodes", Json.Int s.Hwpat_rtl.Netlist_stats.nodes);
          ("register_bits", Json.Int s.Hwpat_rtl.Netlist_stats.register_bits);
          ("memory_bits", Json.Int s.Hwpat_rtl.Netlist_stats.memory_bits);
          ("memories", Json.Int s.Hwpat_rtl.Netlist_stats.memories);
          ("inputs", Json.Int s.Hwpat_rtl.Netlist_stats.inputs);
          ("outputs", Json.Int s.Hwpat_rtl.Netlist_stats.outputs);
        ])

(* --- codegen ------------------------------------------------------------- *)

let codegen t _ctx params =
  let cfg = Canon.config_of_params params in
  let unit_ =
    match Json.get_string params "unit" ~default:"container" with
    | "container" -> `Container
    | "iterator" -> `Iterator
    | other ->
      Protocol.invalid_params "unknown unit %S (valid: container, iterator)"
        other
  in
  let key =
    Printf.sprintf "codegen/%s/%s"
      (match unit_ with `Container -> "container" | `Iterator -> "iterator")
      (Canon.config_key cfg)
  in
  with_result_cache t ~key ~params (fun () ->
      let text =
        match unit_ with
        | `Container -> Hwpat_meta.Codegen.generate_container ~trace:t.trace cfg
        | `Iterator -> Hwpat_meta.Codegen.generate_iterator ~trace:t.trace cfg
      in
      Json.Obj
        [
          ("key", Json.String key);
          ("entity", Json.String (Hwpat_meta.Config.entity_name cfg));
          ("language", Json.String "vhdl");
          ("text", Json.String text);
        ])

(* --- emit: whole-design netlist back-ends -------------------------------- *)

let emit t _ctx params =
  let design = Json.get_string params "design" ~default:"saa2vga-fifo" in
  let style = Json.get_string params "style" ~default:"pattern" in
  let lang =
    String.lowercase_ascii (Json.get_string params "lang" ~default:"vhdl")
  in
  let optimize = Json.get_bool params "optimize" ~default:false in
  let key =
    Printf.sprintf "emit/%s/%s/%s/opt=%b"
      (String.lowercase_ascii design)
      (String.lowercase_ascii style)
      lang optimize
  in
  with_result_cache t ~key ~params (fun () ->
      let circuit, _ =
        Designs.build ~design ~style ~frame_w:16 ~frame_h:16
      in
      let circuit =
        if optimize then Hwpat_rtl.Optimize.circuit circuit else circuit
      in
      let text =
        match lang with
        | "vhdl" -> Hwpat_rtl.Vhdl.to_string circuit
        | "verilog" -> Hwpat_rtl.Verilog.to_string circuit
        | "dot" -> Hwpat_rtl.Dot.to_string circuit
        | other ->
          Protocol.invalid_params
            "unknown language %S (valid: vhdl, verilog, dot)" other
      in
      Json.Obj
        [
          ("key", Json.String key);
          ("design", Json.String (Hwpat_rtl.Circuit.name circuit));
          ("language", Json.String lang);
          ("text", Json.String text);
        ])

(* --- simulate ------------------------------------------------------------ *)

let plan_of_design t ~design ~style ~frame_w ~frame_h ~engine =
  let key = Canon.plan_key ~design ~style ~frame_w ~frame_h ~engine in
  ( key,
    Cache.find_or_add t.plans key (fun () ->
        let circuit, flavor = Designs.build ~design ~style ~frame_w ~frame_h in
        (Hwpat_rtl.Cyclesim.plan ~engine circuit, flavor)) )

let simulate t ctx params =
  let design = Json.get_string params "design" ~default:"saa2vga-fifo" in
  let style = Json.get_string params "style" ~default:"pattern" in
  let width = Json.get_int params "width" ~default:16 in
  let height = Json.get_int params "height" ~default:16 in
  let pattern = Json.get_string params "pattern" ~default:"gradient" in
  let engine =
    Designs.engine_of_string
      (Json.get_string params "engine" ~default:"compiled")
  in
  if width < 3 || height < 3 then
    Protocol.invalid_params "frame must be at least 3x3";
  let plan_key, (plan, flavor) =
    plan_of_design t ~design ~style ~frame_w:width ~frame_h:height ~engine
  in
  let key = Printf.sprintf "simulate/%s/p=%s" plan_key pattern in
  with_result_cache t ~key ~params (fun () ->
      let frame = Designs.frame ~pattern ~width ~height in
      let out_w, out_h = Designs.output_shape flavor ~width ~height in
      let reference = Designs.reference flavor frame in
      let sim = Hwpat_rtl.Cyclesim.of_plan plan in
      let r =
        try
          Experiment.run_video_system ~trace:t.trace ~metrics:t.metrics ~sim
            ~check:(fun () -> Supervise.check ctx)
            (Hwpat_rtl.Cyclesim.plan_circuit plan)
            ~input:frame ~out_width:out_w ~out_height:out_h
        with Experiment.Timeout d ->
          raise (Protocol.Error (Internal, Experiment.describe_timeout d))
      in
      let ok = Hwpat_video.Frame.equal r.Experiment.output reference in
      Json.Obj
        [
          ("key", Json.String key);
          ( "design",
            Json.String
              (Hwpat_rtl.Circuit.name (Hwpat_rtl.Cyclesim.plan_circuit plan)) );
          ("width", Json.Int width);
          ("height", Json.Int height);
          ("pattern", Json.String pattern);
          ("cycles", Json.Int r.Experiment.cycles);
          ("cycles_per_pixel", Json.Float r.Experiment.cycles_per_pixel);
          ("matches_reference", Json.Bool ok);
        ])

(* --- faultsim ------------------------------------------------------------ *)

let faultsim t ctx params =
  let design =
    Json.get_string params "design" ~default:"saa2vga_sram_pattern"
  in
  let seed = Json.get_int params "seed" ~default:1 in
  let faults = Json.get_int params "faults" ~default:20 in
  let frame_size = Json.get_int params "frame_size" ~default:8 in
  let lanes = Json.get_int_opt params "lanes" in
  if faults < 0 then Protocol.invalid_params "faults must be non-negative";
  if frame_size < 1 then
    Protocol.invalid_params "frame_size must be at least 1";
  (match lanes with
  | Some l when l < 1 || l > Hwpat_rtl.Simbatch.lane_bits ->
    Protocol.invalid_params "lanes must be in 1..%d" Hwpat_rtl.Simbatch.lane_bits
  | _ -> ());
  let build = Faultsim.find_design design in
  (* lanes and jobs are execution hints — the summary is byte-identical
     at any value of either, so neither is part of the cache identity. *)
  let key =
    Printf.sprintf "faultsim/%s/seed=%d/faults=%d/frame=%d" design seed faults
      frame_size
  in
  with_result_cache t ~key ~params
    ~cacheable:(fun _ -> no_deadline ctx)
    (fun () ->
      let plan_key =
        Canon.plan_key ~design ~style:"faultsim" ~frame_w:frame_size
          ~frame_h:frame_size ~engine:Hwpat_rtl.Cyclesim.Compiled
      in
      let plan, _ =
        Cache.find_or_add t.plans plan_key (fun () ->
            (Hwpat_rtl.Cyclesim.plan (build ()), Designs.Copy))
      in
      let summary =
        Faultsim.run_campaign ~trace:t.trace ~metrics:t.metrics ~plan ?lanes
          ~jobs:(request_jobs t params) ~policy:(campaign_policy ctx) ~seed
          ~faults ~frame_width:frame_size ~frame_height:frame_size ~build
          ~design ()
      in
      let body = reparse "faultsim" (Faultsim.summary_to_json summary) in
      Json.Obj
        [
          ("key", Json.String key);
          ("summary", body);
          ("coverage", Json.Float (Faultsim.coverage summary));
          ("silent", Json.Int (Faultsim.count summary Faultsim.Silent));
          ( "unfinished",
            Json.Int (Faultsim.count summary Faultsim.Unfinished) );
        ])

(* --- sweep --------------------------------------------------------------- *)

let point_of_json j =
  match j with
  | Json.Obj _ ->
    {
      Characterize.container = Json.get_string j "container" ~default:"queue";
      target = Json.get_string j "target" ~default:"fifo";
      elem_width = Json.get_int j "width" ~default:8;
      depth = Json.get_int j "depth" ~default:64;
      wait_states = Json.get_int j "wait_states" ~default:1;
    }
  | _ -> Protocol.invalid_params "points must be a list of objects"

let sweep t ctx params =
  let points =
    match Json.get_list_opt params "points" with
    | None -> Characterize.default_points
    | Some [] -> Protocol.invalid_params "points must not be empty"
    | Some items -> List.map point_of_json items
  in
  let key =
    "sweep/"
    ^ String.concat ";" (List.map Characterize.point_label points)
  in
  with_result_cache t ~key ~params
    ~cacheable:(fun _ -> no_deadline ctx)
    (fun () ->
      let candidates =
        Characterize.sweep ~trace:t.trace ~metrics:t.metrics
          ~jobs:(request_jobs t params) ~policy:(campaign_policy ctx) ~points ()
      in
      Json.Obj
        [
          ("key", Json.String key);
          ("points", Json.Int (List.length points));
          ( "unmeasurable",
            Json.Int
              (List.length
                 (Hwpat_synthesis.Design_space.unmeasurable candidates)) );
          ( "candidates",
            reparse "sweep" (Hwpat_synthesis.Design_space.to_json candidates)
          );
        ])

(* --- prove --------------------------------------------------------------- *)

(* Never cached: each result embeds its measured solve time. *)
let prove t ctx params =
  let smoke = Json.get_bool params "smoke" ~default:true in
  let budget =
    {
      Hwpat_formal.Solver.max_conflicts =
        Json.get_int params "max_conflicts" ~default:0;
      max_propagations = Json.get_int params "max_propagations" ~default:0;
    }
  in
  if budget.Hwpat_formal.Solver.max_conflicts < 0
     || budget.Hwpat_formal.Solver.max_propagations < 0
  then Protocol.invalid_params "solver budget must be non-negative";
  let jobs = request_jobs t params in
  let results =
    Prove.run ~trace:t.trace ~metrics:t.metrics ~jobs
      ~policy:(campaign_policy ctx) ~budget ~smoke ()
  in
  Json.Obj
    [
      ("smoke", Json.Bool smoke);
      ("ok", Json.Bool (Prove.all_ok results));
      ("battery", reparse "prove" (Prove.to_json ~jobs ~smoke results));
    ]

(* --- sleep: deterministic deadline target for the tests ------------------ *)

let sleep _t ctx params =
  let seconds = Json.get_float params "seconds" ~default:0.05 in
  if seconds < 0.0 then Protocol.invalid_params "seconds must be non-negative";
  let until = Unix.gettimeofday () +. seconds in
  while Unix.gettimeofday () < until do
    Supervise.check ctx;
    Unix.sleepf 0.001
  done;
  Json.Obj [ ("slept", Json.Float seconds) ]

(* --- dispatch ------------------------------------------------------------ *)

let rec handle t ctx (req : Protocol.request) =
  let p = req.Protocol.params in
  match req.Protocol.meth with
  | "ping" -> ping t ctx p
  | "elaborate" -> elaborate t ctx p
  | "codegen" -> codegen t ctx p
  | "emit" -> emit t ctx p
  | "simulate" -> simulate t ctx p
  | "faultsim" -> faultsim t ctx p
  | "sweep" -> sweep t ctx p
  | "prove" -> prove t ctx p
  | "sleep" -> sleep t ctx p
  | "batch" -> batch t ctx p
  | other ->
    raise
      (Protocol.Error
         ( Unknown_method,
           Printf.sprintf "unknown method %S (valid: %s, stats, shutdown)"
             other
             (String.concat ", " methods) ))

(* --- batch: many sub-requests in one round trip -------------------------- *)

(* Sub-requests run sequentially under the enclosing request's
   supervision context, each answered from the caches where possible;
   one failing item reports its error in place without failing the
   batch. *)
and batch t ctx params =
  let items =
    match Json.get_list_opt params "requests" with
    | Some items -> items
    | None -> Protocol.invalid_params "missing requests"
  in
  let run item =
    match Protocol.parse_request item with
    | Error msg ->
      Json.Obj
        [
          ( "error",
            Json.Obj
              [
                ( "code",
                  Json.String (Protocol.code_string Protocol.Invalid_request)
                );
                ("message", Json.String msg);
              ] );
        ]
    | Ok sub -> (
      match handle t ctx sub with
      | result -> Json.Obj [ ("result", result) ]
      | exception Protocol.Error (code, msg) ->
        Json.Obj
          [
            ( "error",
              Json.Obj
                [
                  ("code", Json.String (Protocol.code_string code));
                  ("message", Json.String msg);
                ] );
          ]
      | exception (Failure msg | Invalid_argument msg) ->
        Json.Obj
          [
            ( "error",
              Json.Obj
                [
                  ( "code",
                    Json.String (Protocol.code_string Protocol.Invalid_params)
                  );
                  ("message", Json.String msg);
                ] );
          ])
  in
  let results = List.map run items in
  Json.Obj
    [ ("count", Json.Int (List.length results)); ("results", Json.List results) ]
