(** The design-service daemon: line-delimited JSON over stdio or a
    Unix socket, dispatched concurrently over a persistent
    {!Hwpat_core.Parallel.Pool}.

    {2 Ordering}

    Requests on one connection execute concurrently, but responses are
    emitted {e in request order}: each request takes a sequence number
    at intake, finished responses park in a per-connection reorder
    buffer, and the writer flushes the consecutive prefix.  With one
    worker this makes a scripted session's transcript byte-stable —
    the golden tests rely on it — while more workers only change
    latency, never the response order.

    {2 Admission and deadlines}

    A request is rejected with an [overloaded] error when the pool
    backlog reaches [queue_bound] or total in-flight work reaches
    [max_inflight]; a line longer than [max_request_bytes] is answered
    with [oversized] and discarded without buffering.  Each accepted
    request runs under {!Hwpat_core.Supervise.run_one}; a
    [deadline_s] param becomes the supervision watchdog, and expiry
    surfaces as a [deadline] error while the worker, pool and caches
    stay healthy.

    {2 Shutdown}

    {!stop} (the CLI's SIGINT hook), a [shutdown] request, or
    end-of-input on stdio all end intake; in-flight requests drain,
    their responses flush, and the run function returns so the caller
    can write its observability files and exit cleanly. *)

type config = {
  jobs : int;  (** pool worker domains *)
  campaign_jobs : int;  (** default in-request campaign sharding *)
  cache_size : int;  (** per-cache LRU capacity *)
  max_inflight : int;
  queue_bound : int;
  max_request_bytes : int;
  trace : Hwpat_obs.Trace.t;
  metrics : Hwpat_obs.Metrics.t;
}

val default_config : config
(** jobs 1, campaign_jobs 1, cache_size 32, max_inflight 64,
    queue_bound 32, max_request_bytes 1 MiB, observability disabled. *)

type t

val create : config -> t
(** Spawns the worker pool. *)

val handlers : t -> Handlers.t

val stop : t -> unit
(** Begin shutdown: intake loops and accept loops wind down, requests
    already admitted still complete.  Idempotent, signal-safe in the
    sense of only setting a flag. *)

val stopping : t -> bool

val serve_connection : t -> Unix.file_descr -> Unix.file_descr -> unit
(** Serve one connection (read requests from the first descriptor,
    write responses to the second) until end-of-input or {!stop};
    returns after every admitted request's response has been written.
    Does not close the descriptors.  Exposed for the tests, which run
    the server over [socketpair]s without a listener. *)

val run_stdio : t -> unit
(** Serve stdin/stdout, then drain the pool. *)

val run_socket : t -> path:string -> unit
(** Listen on a Unix domain socket, serving each accepted connection
    on its own domain (reaped as connections finish), until {!stop};
    then joins the connections, drains the pool and removes the socket
    file.  A stale socket left at [path] by a dead daemon is replaced;
    raises [Failure] if [path] is a non-socket file or a daemon still
    answers on it. *)

val shutdown : t -> unit
(** Drain and join the worker pool.  Idempotent; the run functions
    call it on their way out. *)

val stats_json : t -> Json.t
(** The [stats] result payload: request counters, cache counters,
    pool occupancy, and a flat ["timing"] subobject (the only
    wall-clock-dependent values in any response — tests mask it). *)
