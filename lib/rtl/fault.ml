(* Seeded, deterministic fault campaigns over a Cyclesim instance. *)

type fault =
  | Reg_flip of { reg : Signal.t; bit : int }
  | Mem_flip of { memory : Signal.memory; addr : int; bit : int }
  | Stuck_at of { signal : Signal.t; value : Bits.t; cycles : int }

type event = { at : int; fault : fault }

let signal_label s =
  match Signal.names s with
  | n :: _ -> n
  | [] -> Printf.sprintf "uid%d" (Signal.uid s)

let describe = function
  | Reg_flip { reg; bit } ->
    Printf.sprintf "seu reg %s bit %d" (signal_label reg) bit
  | Mem_flip { memory; addr; bit } ->
    Printf.sprintf "seu mem %s[%d] bit %d" (Signal.memory_name memory) addr bit
  | Stuck_at { signal; value; cycles } ->
    Printf.sprintf "stuck %s = %s for %s" (signal_label signal)
      (Bits.to_string value)
      (if cycles <= 0 then "ever" else Printf.sprintf "%d cycles" cycles)

let describe_event e = Printf.sprintf "@%d %s" e.at (describe e.fault)

(* Uid-independent description: uids are minted from a process-global
   counter, so the [uid%d] fallback above differs between two builds of
   the same design (and between serial and sharded campaigns, which
   elaborate one fresh circuit per shard). Within one circuit the
   schedule position of a register is structural — identical across
   rebuilds — so unnamed signals are labelled by position instead. *)
let signal_label_in circuit s =
  match Signal.names s with
  | n :: _ -> n
  | [] -> (
    let position =
      List.find_index
        (fun r -> Signal.uid r = Signal.uid s)
        (Circuit.registers circuit)
    in
    match position with
    | Some i -> Printf.sprintf "reg#%d" i
    | None -> Printf.sprintf "uid%d" (Signal.uid s))

let describe_in circuit = function
  | Reg_flip { reg; bit } ->
    Printf.sprintf "seu reg %s bit %d" (signal_label_in circuit reg) bit
  | Mem_flip _ as f -> describe f
  | Stuck_at { signal; value; cycles } ->
    Printf.sprintf "stuck %s = %s for %s"
      (signal_label_in circuit signal)
      (Bits.to_string value)
      (if cycles <= 0 then "ever" else Printf.sprintf "%d cycles" cycles)

let describe_event_in circuit e =
  Printf.sprintf "@%d %s" e.at (describe_in circuit e.fault)

type t = {
  sim : Cyclesim.t;
  mutable pending : event list; (* sorted by [at] *)
  mutable releases : (int * Signal.t) list;
  mutable applied : event list; (* newest first *)
}

let create sim = { sim; pending = []; releases = []; applied = [] }

let schedule t ~at fault =
  t.pending <-
    List.stable_sort (fun a b -> compare a.at b.at) ({ at; fault } :: t.pending)

let inject t fault =
  (match fault with
  | Reg_flip { reg; bit } ->
    let state = Cyclesim.peek_state t.sim reg in
    let w = Bits.width state in
    if bit < 0 || bit >= w then invalid_arg "Fault.inject: bit out of range";
    let mask = Bits.sll (Bits.one w) bit in
    Cyclesim.poke_state t.sim reg (Bits.logxor state mask)
  | Mem_flip { memory; addr; bit } ->
    let arr = Cyclesim.memory_contents t.sim memory in
    if addr < 0 || addr >= Array.length arr then
      invalid_arg "Fault.inject: address out of range";
    let w = Signal.memory_width memory in
    if bit < 0 || bit >= w then invalid_arg "Fault.inject: bit out of range";
    let mask = Bits.sll (Bits.one w) bit in
    arr.(addr) <- Bits.logxor arr.(addr) mask
  | Stuck_at { signal; value; cycles } ->
    Cyclesim.force t.sim signal value;
    if cycles > 0 then
      t.releases <-
        (Cyclesim.cycle_count t.sim + cycles, signal) :: t.releases);
  t.applied <- { at = Cyclesim.cycle_count t.sim; fault } :: t.applied

(* Apply everything due at the current cycle count. Call once per
   simulation step, before [Cyclesim.cycle]. *)
let step t =
  let now = Cyclesim.cycle_count t.sim in
  let due, rest = List.partition (fun e -> e.at <= now) t.pending in
  t.pending <- rest;
  List.iter (fun e -> inject t e.fault) due;
  let expired, live = List.partition (fun (c, _) -> c <= now) t.releases in
  t.releases <- live;
  List.iter (fun (_, s) -> Cyclesim.release t.sim s) expired

let applied t = List.rev t.applied
let pending t = t.pending

(* --- Campaign generation ------------------------------------------------ *)

let random_fault rng circuit =
  let regs = Array.of_list (Circuit.registers circuit) in
  let mems =
    Array.of_list
      (List.filter
         (fun m -> Signal.memory_size m > 0)
         (Circuit.memories circuit))
  in
  let pick_reg () =
    let reg = regs.(Random.State.int rng (Array.length regs)) in
    Reg_flip { reg; bit = Random.State.int rng (Signal.width reg) }
  in
  let pick_mem () =
    let memory = mems.(Random.State.int rng (Array.length mems)) in
    Mem_flip
      {
        memory;
        addr = Random.State.int rng (Signal.memory_size memory);
        bit = Random.State.int rng (Signal.memory_width memory);
      }
  in
  let pick_stuck () =
    let reg = regs.(Random.State.int rng (Array.length regs)) in
    let w = Signal.width reg in
    Stuck_at
      {
        signal = reg;
        value =
          (if Random.State.bool rng then Bits.zero w
           else Bits.ones w);
        cycles = 1 + Random.State.int rng 32;
      }
  in
  if Array.length regs = 0 && Array.length mems = 0 then
    invalid_arg "Fault.random_fault: circuit has no state to corrupt";
  let choices =
    (if Array.length regs > 0 then [ pick_reg; pick_stuck ] else [])
    @ if Array.length mems > 0 then [ pick_mem ] else []
  in
  (List.nth choices (Random.State.int rng (List.length choices))) ()

let random_campaign ~seed ~n ~max_cycle circuit =
  if n < 0 then invalid_arg "Fault.random_campaign: negative fault count";
  if max_cycle < 1 then invalid_arg "Fault.random_campaign: max_cycle < 1";
  let rng = Random.State.make [| 0x4655; seed |] in
  List.init n (fun _ ->
      { at = Random.State.int rng max_cycle; fault = random_fault rng circuit })
