(** Hardware signal graphs.

    A signal is a node in a directed netlist graph: constants, named
    inputs, combinational operators, registers, memory read ports and
    assignable wires. Graphs are built by applying the combinators below
    and closed into a {!Circuit.t} for simulation or HDL emission.

    The design is single-clock: registers and synchronous memory ports
    are all clocked by the implicit global clock, with optional
    synchronous clear and enable. *)

type t

type op2 = Add | Sub | Mul | And | Or | Xor | Eq | Lt

(** A multi-port memory. Write ports are attached imperatively with
    {!mem_write_port}; read ports are created with {!mem_read_async}
    (distributed / LUT RAM semantics) or {!mem_read_sync} (block RAM
    semantics: the read value appears one cycle after the address). *)
type memory

type prim =
  | Const of Bits.t
  | Input of string
  | Op2 of op2 * t * t
  | Not of t
  | Concat of t list  (** MSB first *)
  | Select of { src : t; high : int; low : int }
  | Mux of { select : t; cases : t list }
      (** [cases] indexed by [select]; the last case repeats for any
          out-of-range select value. *)
  | Reg of { d : t; enable : t option; clear : t option; clear_to : Bits.t; init : Bits.t }
  | Mem_read_async of { memory : memory; addr : t }
  | Mem_read_sync of { memory : memory; addr : t; enable : t option }
  | Wire of { mutable driver : t option }

val uid : t -> int
val width : t -> int
val prim : t -> prim
val names : t -> string list

val ( -- ) : t -> string -> t
(** [s -- name] attaches a name used by HDL emitters and VCD dumps.
    Returns [s] itself. *)

(** {1 Sources} *)

val input : string -> int -> t
val const : Bits.t -> t
val of_int : width:int -> int -> t
val of_string : string -> t
val zero : int -> t
val one : int -> t
val ones : int -> t
val vdd : t
(** 1-bit constant 1. *)

val gnd : t
(** 1-bit constant 0. *)

(** {1 Combinational operators} *)

val ( +: ) : t -> t -> t
val ( -: ) : t -> t -> t
val ( *: ) : t -> t -> t
val ( &: ) : t -> t -> t
val ( |: ) : t -> t -> t
val ( ^: ) : t -> t -> t
val ( ~: ) : t -> t
val ( ==: ) : t -> t -> t
val ( <>: ) : t -> t -> t
val ( <: ) : t -> t -> t
val ( <=: ) : t -> t -> t
val ( >: ) : t -> t -> t
val ( >=: ) : t -> t -> t

val concat_msb : t list -> t
val select : t -> high:int -> low:int -> t
val bit : t -> int -> t
val msb : t -> t
val lsb : t -> t
val repeat : t -> int -> t
val uresize : t -> int -> t
val sresize : t -> int -> t
val sll : t -> int -> t
val srl : t -> int -> t

val mux : t -> t list -> t
(** [mux select cases]; [cases] must be non-empty, all the same width,
    and no longer than [2^(width select)]. *)

val mux2 : t -> t -> t -> t
(** [mux2 cond t f] is [t] when [cond] is 1. [cond] must be 1 bit. *)

val mux_index : n_cases:int -> Bits.t -> int
(** The case index a mux with [n_cases] cases selects for a given
    select value: out-of-range selects clamp to the last case. The
    single source of truth for this rule, shared by the simulators and
    the constant folder; the HDL back-ends match it by emitting the
    last case as the unconditional default arm. *)

(** {1 Node-kind classification}

    Coarse buckets for simulator activity statistics: both simulation
    engines count per-node evaluations by this code, so profiles are
    comparable across engines. *)

val n_prim_kinds : int

val prim_kind_names : string array
(** [prim_kind_names.(prim_kind s)] names the bucket of [s]. *)

val prim_kind : t -> int
(** In [0 .. n_prim_kinds - 1]. *)

val reduce_or : t -> t
val reduce_and : t -> t

(** {1 State} *)

val reg : ?enable:t -> ?clear:t -> ?clear_to:Bits.t -> ?init:Bits.t -> t -> t
(** [reg d] is a D flip-flop. [clear] takes priority over [enable].
    [init] is the power-on simulation value (default zeros);
    [clear_to] defaults to zeros. *)

val reg_fb : ?enable:t -> ?clear:t -> ?clear_to:Bits.t -> ?init:Bits.t ->
  width:int -> (t -> t) -> t
(** [reg_fb ~width f] builds a register whose next value is [f q] where
    [q] is the register output — the usual feedback idiom. *)

val create_memory :
  size:int -> width:int -> ?name:string -> ?external_:bool -> unit -> memory
(** [external_] marks a memory that models an off-chip device (board
    SRAM): simulators treat it normally, but technology mapping must
    not count it as FPGA resources. Default [false]. *)

val memory_is_external : memory -> bool
val memory_size : memory -> int
val memory_width : memory -> int
val memory_name : memory -> string
val memory_uid : memory -> int

val mem_write_port : memory -> enable:t -> addr:t -> data:t -> unit
(** Synchronous write port. [addr] values beyond [size-1] are ignored
    at simulation time. *)

val mem_read_async : memory -> addr:t -> t
val mem_read_sync : memory -> ?enable:t -> addr:t -> unit -> t

val memory_write_ports : memory -> (t * t * t) list
(** [(enable, addr, data)] per write port, in attachment order. *)

(** {1 Wires} *)

val wire : int -> t
val ( <== ) : t -> t -> unit
(** Assign a wire's driver. Raises if the target is not a wire, is
    already driven, or widths differ. *)

val wire_driver : t -> t option

(** {1 Traversal} *)

val deps : t -> t list
(** Direct dependencies of a node, including through memories for read
    ports (write-port signals are deps of the read port). *)

val is_const : t -> bool
val const_value : t -> Bits.t option

val pp : Format.formatter -> t -> unit
