(** Value-change-dump (VCD) waveform capture for a running simulation.

    Tracks every named signal in the circuit plus all ports. Call
    {!sample} once per simulated cycle after [Cyclesim.cycle]. *)

type t

val create : ?signals:Signal.t list -> Cyclesim.t -> t
(** Track the given signals (default: all named signals and all circuit
    ports). *)

val sample : t -> unit
(** Record the current settled values at the next timestep.  The first
    sample becomes the [$dumpvars] initial-value block; later samples
    emit a [#time] marker only when some tracked signal changed. *)

val to_string : t -> string
(** Render the complete VCD file: header, [$enddefinitions], the
    [$dumpvars] block (when at least one sample was taken), then the
    change stream.  Signal labels are sanitized to [[a-zA-Z0-9_$]]. *)

val write_file : t -> string -> unit
