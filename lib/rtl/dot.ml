let node_id s = Printf.sprintf "n%d" (Signal.uid s)

let label s =
  let base =
    match Signal.prim s with
    | Signal.Const b -> Printf.sprintf "#%s" (Bits.to_string b)
    | Signal.Input n -> n
    | Signal.Op2 (op, _, _) -> (
      match op with
      | Signal.Add -> "+"
      | Signal.Sub -> "-"
      | Signal.Mul -> "*"
      | Signal.And -> "&"
      | Signal.Or -> "|"
      | Signal.Xor -> "^"
      | Signal.Eq -> "=="
      | Signal.Lt -> "<")
    | Signal.Not _ -> "~"
    | Signal.Concat _ -> "cat"
    | Signal.Select { high; low; _ } -> Printf.sprintf "[%d:%d]" high low
    | Signal.Mux _ -> "mux"
    | Signal.Reg _ -> "reg"
    | Signal.Mem_read_async _ -> "ram(async)"
    | Signal.Mem_read_sync _ -> "ram(sync)"
    | Signal.Wire _ -> "wire"
  in
  let named =
    match Signal.names s with name :: _ -> name ^ "\\n" ^ base | [] -> base
  in
  Printf.sprintf "%s\\n%db" named (Signal.width s)

let shape s =
  match Signal.prim s with
  | Signal.Reg _ | Signal.Mem_read_sync _ -> "box"
  | Signal.Input _ -> "oval"
  | Signal.Const _ -> "plaintext"
  | _ -> "ellipse"

let to_string circuit =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "digraph %s {\n  rankdir=LR;\n  node [fontsize=10];\n"
       (Circuit.name circuit));
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "  %s [label=\"%s\", shape=%s];\n" (node_id s) (label s)
           (shape s)))
    (Circuit.signals circuit);
  List.iter
    (fun s ->
      List.iter
        (fun d ->
          Buffer.add_string buf
            (Printf.sprintf "  %s -> %s;\n" (node_id d) (node_id s)))
        (Signal.deps s))
    (Circuit.signals circuit);
  List.iteri
    (fun i (name, s) ->
      Buffer.add_string buf
        (Printf.sprintf
           "  out%d [label=\"%s\", shape=oval, style=bold];\n  %s -> out%d;\n" i
           name (node_id s) i))
    (Circuit.outputs circuit);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_file circuit path = Util.write_file path (to_string circuit)
