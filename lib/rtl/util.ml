let clog2 n =
  if n < 1 then invalid_arg "Util.clog2: argument must be >= 1";
  let rec go acc v = if v >= n then acc else go (acc + 1) (v * 2) in
  go 0 1

let address_bits n = max 1 (clog2 n)
let bits_to_represent n = max 1 (clog2 (n + 1))
let is_power_of_two n = n > 0 && n land (n - 1) = 0

(* All writers funnel through a temp-file + rename scheme: the
   callback streams into [path ^ ".tmp"] in the target directory
   and the finished file is renamed over [path] only after a clean
   close.  A crash, kill or raised exception mid-write therefore never
   leaves a truncated artifact under the published name — the previous
   contents (if any) survive intact and the orphaned temp file is
   removed on the exception path.  Rename within one directory is
   atomic on POSIX. *)
let with_out_file path f =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  match f oc with
  | v ->
    close_out oc;
    Sys.rename tmp path;
    v
  | exception e ->
    let bt = Printexc.get_raw_backtrace () in
    close_out_noerr oc;
    (try Sys.remove tmp with Sys_error _ -> ());
    Printexc.raise_with_backtrace e bt

let write_file path contents =
  with_out_file path (fun oc -> output_string oc contents)
