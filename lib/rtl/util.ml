let clog2 n =
  if n < 1 then invalid_arg "Util.clog2: argument must be >= 1";
  let rec go acc v = if v >= n then acc else go (acc + 1) (v * 2) in
  go 0 1

let address_bits n = max 1 (clog2 n)
let bits_to_represent n = max 1 (clog2 (n + 1))
let is_power_of_two n = n > 0 && n land (n - 1) = 0

let with_out_file path f =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> f oc)

let write_file path contents =
  with_out_file path (fun oc -> output_string oc contents)
