(* Two engines behind one API.

   [Naive] is the original tree-walking interpreter: it re-pattern-
   matches every node on every settle and allocates fresh values for
   every operation. It is slow but trivially auditable, which makes it
   the reference the compiled engine (in {!Simcompile}) is held
   cycle-equivalent to by the differential test suite. *)

module Naive = struct
  type node_state = {
    signal : Signal.t;
    value : Bits.t ref;
    (* Registers and synchronous memory reads hold state across cycles. *)
    mutable state : Bits.t;
    mutable next_state : Bits.t;
  }

  type t = {
    circuit : Circuit.t;
    nodes : node_state array; (* in schedule order *)
    by_uid : (int, node_state) Hashtbl.t;
    input_refs : (string * Bits.t ref) list;
    output_refs : (string * Bits.t ref) list;
    mem_arrays : (int, Bits.t array) Hashtbl.t;
    (* Stuck-at overrides (fault injection): uid -> forced value,
       applied after every combinational evaluation of the node. *)
    forces : (int, Bits.t) Hashtbl.t;
    mutable cycles : int;
    mutable settles : int;
    mutable node_evals : int;
  }

  let node t s =
    match Hashtbl.find_opt t.by_uid (Signal.uid s) with
    | Some ns -> ns
    | None -> invalid_arg "Cyclesim: signal not part of this circuit"

  let value t s = !((node t s).value)

  let create circuit =
    let schedule = Circuit.signals circuit in
    let by_uid = Hashtbl.create 997 in
    let nodes =
      Array.of_list
        (List.map
           (fun s ->
             let init =
               match Signal.prim s with
               | Signal.Reg { init; _ } -> init
               | _ -> Bits.zero (Signal.width s)
             in
             let ns =
               { signal = s; value = ref init; state = init; next_state = init }
             in
             Hashtbl.replace by_uid (Signal.uid s) ns;
             ns)
           schedule)
    in
    let mem_arrays = Hashtbl.create 7 in
    List.iter
      (fun m ->
        Hashtbl.replace mem_arrays (Signal.memory_uid m)
          (Array.make (Signal.memory_size m)
             (Bits.zero (Signal.memory_width m))))
      (Circuit.memories circuit);
    let input_refs =
      List.map
        (fun (n, s) ->
          let ns = Hashtbl.find by_uid (Signal.uid s) in
          (n, ns.value))
        (Circuit.inputs circuit)
    in
    let output_refs =
      List.map
        (fun (n, s) -> (n, ref (Bits.zero (Signal.width s))))
        (Circuit.outputs circuit)
    in
    {
      circuit;
      nodes;
      by_uid;
      input_refs;
      output_refs;
      mem_arrays;
      forces = Hashtbl.create 7;
      cycles = 0;
      settles = 0;
      node_evals = 0;
    }

  let circuit t = t.circuit

  let find_ref kind refs name =
    match List.assoc_opt name refs with
    | Some r -> r
    | None ->
      invalid_arg (Printf.sprintf "Cyclesim: no %s port named %s" kind name)

  let in_port t name = find_ref "input" t.input_refs name
  let out_port t name = find_ref "output" t.output_refs name

  let mem_array t memory = Hashtbl.find t.mem_arrays (Signal.memory_uid memory)

  let eval_node t ns =
    let v s = value t s in
    let result =
      match Signal.prim ns.signal with
      | Signal.Const b -> b
      | Signal.Input name ->
        let b = !(ns.value) in
        if Bits.width b <> Signal.width ns.signal then
          invalid_arg
            (Printf.sprintf
               "Cyclesim: input %s driven with width %d, expected %d" name
               (Bits.width b) (Signal.width ns.signal))
        else b
      | Signal.Op2 (op, a, b) -> (
        let a = v a and b = v b in
        match op with
        | Signal.Add -> Bits.add a b
        | Signal.Sub -> Bits.sub a b
        | Signal.Mul -> Bits.mul a b
        | Signal.And -> Bits.logand a b
        | Signal.Or -> Bits.logor a b
        | Signal.Xor -> Bits.logxor a b
        | Signal.Eq -> Bits.eq a b
        | Signal.Lt -> Bits.lt a b)
      | Signal.Not a -> Bits.lognot (v a)
      | Signal.Concat parts -> Bits.concat_msb (List.map v parts)
      | Signal.Select { src; high; low } -> Bits.select (v src) ~high ~low
      | Signal.Mux { select; cases } ->
        let idx = Signal.mux_index ~n_cases:(List.length cases) (v select) in
        v (List.nth cases idx)
      | Signal.Reg _ | Signal.Mem_read_sync _ -> ns.state
      | Signal.Mem_read_async { memory; addr } ->
        let arr = mem_array t memory in
        (match Bits.to_int_opt (v addr) with
        | Some a when a < Array.length arr -> arr.(a)
        | Some _ | None -> Bits.zero (Signal.memory_width memory))
      | Signal.Wire { driver = Some d } -> v d
      | Signal.Wire { driver = None } -> assert false
    in
    ns.value :=
      (match Hashtbl.find_opt t.forces (Signal.uid ns.signal) with
      | Some forced -> forced
      | None -> result)

  let settle_internal t =
    t.settles <- t.settles + 1;
    t.node_evals <- t.node_evals + Array.length t.nodes;
    Array.iter (fun ns -> eval_node t ns) t.nodes

  let refresh_outputs t =
    List.iter2
      (fun (_, s) (_, r) -> r := value t s)
      (Circuit.outputs t.circuit)
      t.output_refs

  let settle t =
    settle_internal t;
    refresh_outputs t

  let clock_edge t =
    let v s = value t s in
    (* Phase 1: sample next state for registers and sync reads using
       settled pre-edge values (sync reads see pre-edge memory
       contents: read-first semantics). *)
    Array.iter
      (fun ns ->
        match Signal.prim ns.signal with
        | Signal.Reg { d; enable; clear; clear_to; _ } ->
          let clear_active =
            match clear with Some c -> Bits.to_bool (v c) | None -> false
          in
          let enabled =
            match enable with Some e -> Bits.to_bool (v e) | None -> true
          in
          ns.next_state <-
            (if clear_active then clear_to
             else if enabled then v d
             else ns.state)
        | Signal.Mem_read_sync { memory; addr; enable } ->
          let enabled =
            match enable with Some e -> Bits.to_bool (v e) | None -> true
          in
          if enabled then begin
            let arr = mem_array t memory in
            ns.next_state <-
              (match Bits.to_int_opt (v addr) with
              | Some a when a < Array.length arr -> arr.(a)
              | Some _ | None -> Bits.zero (Signal.memory_width memory))
          end
          else ns.next_state <- ns.state
        | _ -> ())
      t.nodes;
    (* Phase 2: memory writes. *)
    List.iter
      (fun m ->
        let arr = mem_array t m in
        List.iter
          (fun (enable, addr, data) ->
            if Bits.to_bool (v enable) then
              match Bits.to_int_opt (v addr) with
              | Some a when a < Array.length arr -> arr.(a) <- v data
              | Some _ | None -> ())
          (Signal.memory_write_ports m))
      (Circuit.memories t.circuit);
    (* Phase 3: commit. *)
    Array.iter
      (fun ns ->
        match Signal.prim ns.signal with
        | Signal.Reg _ | Signal.Mem_read_sync _ -> ns.state <- ns.next_state
        | _ -> ())
      t.nodes

  let cycle t =
    settle_internal t;
    refresh_outputs t;
    clock_edge t;
    t.cycles <- t.cycles + 1

  let force t s b =
    let ns = node t s in
    if Bits.width b <> Signal.width ns.signal then
      invalid_arg
        (Printf.sprintf "Cyclesim.force: value width %d, signal width %d"
           (Bits.width b) (Signal.width ns.signal));
    Hashtbl.replace t.forces (Signal.uid ns.signal) b

  let release t s = Hashtbl.remove t.forces (Signal.uid (node t s).signal)
  let release_all t = Hashtbl.reset t.forces
  let forced t s = Hashtbl.find_opt t.forces (Signal.uid (node t s).signal)

  let is_stateful s =
    match Signal.prim s with
    | Signal.Reg _ | Signal.Mem_read_sync _ -> true
    | _ -> false

  let peek_state t s =
    let ns = node t s in
    if not (is_stateful ns.signal) then
      invalid_arg "Cyclesim.peek_state: signal holds no state";
    ns.state

  let poke_state t s b =
    let ns = node t s in
    if not (is_stateful ns.signal) then
      invalid_arg "Cyclesim.poke_state: signal holds no state";
    if Bits.width b <> Bits.width ns.state then
      invalid_arg "Cyclesim.poke_state: width mismatch";
    ns.state <- b

  let reset t =
    Hashtbl.reset t.forces;
    Array.iter
      (fun ns ->
        match Signal.prim ns.signal with
        | Signal.Reg { init; _ } ->
          ns.state <- init;
          ns.next_state <- init
        | Signal.Mem_read_sync { memory; _ } ->
          let z = Bits.zero (Signal.memory_width memory) in
          ns.state <- z;
          ns.next_state <- z
        | _ -> ())
      t.nodes;
    Hashtbl.iter
      (fun _ arr ->
        Array.fill arr 0 (Array.length arr) (Bits.zero (Bits.width arr.(0))))
      t.mem_arrays;
    (* Input ports back to zero, so a reused simulator starts from the
       same state a freshly created one would (input refs alias the
       input nodes' value refs). *)
    List.iter2
      (fun (_, s) (_, r) -> r := Bits.zero (Signal.width s))
      (Circuit.inputs t.circuit) t.input_refs;
    t.cycles <- 0;
    settle t

  let cycle_count t = t.cycles
  let peek t s = value t s
  let memory_contents t m = mem_array t m
end

type engine = Reference | Compiled

(* [Lane] is one lane of a batched simulator presented through the
   scalar API: campaign code written against [t] (monitors, fault
   injectors, stimulus drivers) runs unchanged against a lane. The one
   global operation is the clock — [cycle]/[settle]/[reset] on a lane
   view advance the WHOLE batch, so batch drivers must clock once per
   step for all lanes, not once per lane. *)
type t = Naive of Naive.t | Comp of Simcompile.t | Lane of Simbatch.t * int
type activity = {
  settles : int;
  node_evals : int;
  total_nodes : int;
  kind_evals : (string * int) list;
}

(* A compiled plan is the immutable, shareable half of a simulator:
   campaigns build one plan per circuit configuration and hand each
   worker domain its own cheap instance. The reference engine has no
   compile step to amortize, so its plan is just the elaborated
   circuit (still shared: elaboration itself is not repeated). *)
type plan = Naive_plan of Circuit.t | Comp_plan of Simcompile.plan

let plan ?(engine = Compiled) circuit =
  match engine with
  | Reference -> Naive_plan circuit
  | Compiled -> Comp_plan (Simcompile.plan circuit)

let of_plan = function
  | Naive_plan c -> Naive (Naive.create c)
  | Comp_plan p -> Comp (Simcompile.instantiate p)

let plan_engine = function
  | Naive_plan _ -> Reference
  | Comp_plan _ -> Compiled

let plan_circuit = function
  | Naive_plan c -> c
  | Comp_plan p -> Simcompile.plan_circuit p

let instantiate_batched ?lanes = function
  | Comp_plan p -> Simbatch.instantiate ?lanes p
  | Naive_plan _ ->
    invalid_arg "Cyclesim.instantiate_batched: only compiled plans can be batched"

let lane_view b lane =
  if lane < 0 || lane >= Simbatch.lanes b then
    invalid_arg
      (Printf.sprintf "Cyclesim.lane_view: lane %d out of range (0..%d)" lane
         (Simbatch.lanes b - 1));
  Lane (b, lane)

let create ?(engine = Compiled) circuit =
  match engine with
  | Reference -> Naive (Naive.create circuit)
  | Compiled -> Comp (Simcompile.compile circuit)

let engine = function Naive _ -> Reference | Comp _ | Lane _ -> Compiled

let circuit = function
  | Naive n -> Naive.circuit n
  | Comp c -> Simcompile.circuit c
  | Lane (b, _) -> Simbatch.circuit b

let in_port t name =
  match t with
  | Naive n -> Naive.in_port n name
  | Comp c -> Simcompile.in_port c name
  | Lane (b, lane) -> Simbatch.in_port b ~lane name

let out_port t name =
  match t with
  | Naive n -> Naive.out_port n name
  | Comp c -> Simcompile.out_port c name
  | Lane (b, lane) -> Simbatch.out_port b ~lane name

let drive t name b =
  let r = in_port t name in
  let w = Signal.width (Circuit.find_input (circuit t) name) in
  if Bits.width b <> w then
    invalid_arg
      (Printf.sprintf "Cyclesim.drive: port %s expects width %d, got %d" name w
         (Bits.width b));
  r := b

let cycle = function
  | Naive n -> Naive.cycle n
  | Comp c -> Simcompile.cycle c
  | Lane (b, _) -> Simbatch.cycle b

let settle = function
  | Naive n -> Naive.settle n
  | Comp c -> Simcompile.settle c
  | Lane (b, _) -> Simbatch.settle b

let reset = function
  | Naive n -> Naive.reset n
  | Comp c -> Simcompile.reset c
  | Lane (b, _) -> Simbatch.reset b

let force t s b =
  match t with
  | Naive n -> Naive.force n s b
  | Comp c -> Simcompile.force c s b
  | Lane (bt, lane) -> Simbatch.force bt ~lane s b

let release t s =
  match t with
  | Naive n -> Naive.release n s
  | Comp c -> Simcompile.release c s
  | Lane (b, lane) -> Simbatch.release b ~lane s

let release_all = function
  | Naive n -> Naive.release_all n
  | Comp c -> Simcompile.release_all c
  | Lane (b, lane) -> Simbatch.release_all b ~lane

let forced t s =
  match t with
  | Naive n -> Naive.forced n s
  | Comp c -> Simcompile.forced c s
  | Lane (b, lane) -> Simbatch.forced b ~lane s

let peek_state t s =
  match t with
  | Naive n -> Naive.peek_state n s
  | Comp c -> Simcompile.peek_state c s
  | Lane (b, lane) -> Simbatch.peek_state b ~lane s

let poke_state t s b =
  match t with
  | Naive n -> Naive.poke_state n s b
  | Comp c -> Simcompile.poke_state c s b
  | Lane (bt, lane) -> Simbatch.poke_state bt ~lane s b

let cycle_count = function
  | Naive n -> Naive.cycle_count n
  | Comp c -> Simcompile.cycle_count c
  | Lane (b, _) -> Simbatch.cycle_count b

let peek t s =
  match t with
  | Naive n -> Naive.peek n s
  | Comp c -> Simcompile.peek c s
  | Lane (b, lane) -> Simbatch.peek b ~lane s

let memory_contents t m =
  match t with
  | Naive n -> Naive.memory_contents n m
  | Comp c -> Simcompile.memory_contents c m
  | Lane (b, lane) -> Simbatch.memory_contents b ~lane m

let named_kind_evals counts =
  List.filter
    (fun (_, n) -> n > 0)
    (Array.to_list (Array.mapi (fun k n -> (Signal.prim_kind_names.(k), n)) counts))

let activity = function
  | Naive n ->
    (* The naive engine evaluates every node on every settle, so the
       per-kind profile is just the per-kind node count scaled. *)
    let counts = Array.make Signal.n_prim_kinds 0 in
    Array.iter
      (fun ns ->
        let k = Signal.prim_kind ns.Naive.signal in
        counts.(k) <- counts.(k) + n.Naive.settles)
      n.Naive.nodes;
    {
      settles = n.Naive.settles;
      node_evals = n.Naive.node_evals;
      total_nodes = Array.length n.Naive.nodes;
      kind_evals = named_kind_evals counts;
    }
  | Comp c ->
    {
      settles = Simcompile.settles c;
      node_evals = Simcompile.node_evals c;
      total_nodes = Simcompile.total_nodes c;
      kind_evals = named_kind_evals (Simcompile.kind_evals c);
    }
  | Lane (b, _) ->
    (* Counters are global to the batch: one node evaluation covers
       every lane at once. *)
    {
      settles = Simbatch.settles b;
      node_evals = Simbatch.node_evals b;
      total_nodes = Simbatch.total_nodes b;
      kind_evals = named_kind_evals (Simbatch.kind_evals b);
    }
