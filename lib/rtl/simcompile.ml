(* Compiled, levelized simulation engine.

   Compilation is split in two so that the expensive part can be shared
   across domains:

   - [plan] walks the scheduled netlist once and produces an immutable
     description of the circuit's execution: the levelized schedule,
     per-node operation descriptors with operand positions resolved to
     schedule indices, the combinational fan-out relation, clock-edge
     descriptors and memory geometry.  A plan holds no mutable
     simulation state and is safe to share read-only between domains.

   - [instantiate] turns a plan into a runnable simulator by allocating
     the per-instance mutable state (value buffers, dirty flags, force
     slots, register/memory state) and building per-node closures whose
     operand buffers were resolved from the plan's indices — the hot
     loop never touches a Hashtbl, an assoc list or a pattern match.
     Instances share the plan's descriptor arrays (never written after
     [plan] returns) but never share a mutable buffer: every Bits value
     reachable from the plan is only ever used as a blit/copy *source*.

   Closures compute into a private destination buffer (using the
   [Bits.*_into] in-place variants) and then "publish": compare against
   the node's current buffer, blit only on change, and mark
   combinational fan-out dirty. Because the schedule is topologically
   sorted, fan-out indices are always greater than the producer's, so
   one ascending sweep over the dirty flags settles the whole netlist;
   the sweep stops early once no dirty node remains.

   Activity-based skipping falls out of the dirty flags: a cone whose
   register/memory/input sources did not change since the last settle
   is never marked and never re-evaluated. Dirtiness sources are:
   - inputs whose driven value differs from the published one,
   - registers and sync reads whose committed state changed at the edge,
   - memory writes (mark the memory's async readers),
   - [force]/[release]/[poke_state], and [memory_contents] (the caller
     may mutate the array, so its async readers are conservatively
     marked),
   - [reset] (everything).

   Internal buffers are mutated in place and never handed out: [peek],
   [peek_state] and output-ref refreshes return copies. Memory elements
   stay immutable values — a write replaces the element with a copy of
   the data buffer — so the arrays exposed by [memory_contents] behave
   exactly like the reference engine's. *)

type input = { in_name : string; in_index : int; in_ref : Bits.t ref }

(* Per-node operation descriptors: operands resolved to schedule
   indices at plan time, buffers at instantiate time. *)
type op =
  | O_const
  | O_input of int (* slot in the inputs array *)
  | O_op2 of Signal.op2 * int * int
  | O_not of int
  | O_concat of int array
  | O_select of { src : int; high : int; low : int }
  | O_mux of { select : int; cases : int array }
  | O_state (* Reg / Mem_read_sync present their committed state *)
  | O_mem_read_async of { mem_uid : int; mem_width : int; addr : int }
  | O_wire of int

(* Clock-edge descriptors, in schedule order (the order the phase
   loops run in — identical across instances and to the pre-split
   engine). *)
type edge =
  | E_reg of {
      index : int;
      d : int;
      enable : int option;
      clear : int option;
      clear_to : Bits.t; (* blit source only; shared, never written *)
    }
  | E_sync_read of {
      index : int;
      mem_uid : int;
      mem_width : int;
      addr : int;
      enable : int option;
    }

type write_port = { wp_mem_uid : int; wp_enable : int; wp_addr : int; wp_data : int }
type mem_spec = { m_uid : int; m_size : int; m_width : int }

type plan = {
  p_circuit : Circuit.t;
  p_signals : Signal.t array; (* in schedule order *)
  p_index_of_uid : (int, int) Hashtbl.t; (* read-only after [plan] *)
  p_fanout : int array array; (* combinational dependents; always later *)
  p_kinds : int array; (* Signal.prim_kind per node *)
  p_buf_init : Bits.t array; (* copy templates: const / reg init / zero *)
  p_state_init : Bits.t option array; (* Reg / Mem_read_sync only *)
  p_ops : op array;
  p_edges : edge array;
  p_write_ports : write_port array;
  p_mems : mem_spec array;
  p_mem_readers : (int, int array) Hashtbl.t; (* read-only after [plan] *)
  p_inputs : (string * int) array; (* port name, schedule index *)
  p_outputs : (string * int) list;
}

type t = {
  plan : plan;
  signals : Signal.t array; (* == plan.p_signals (shared, immutable) *)
  bufs : Bits.t array; (* published value per node, mutated in place *)
  evals : (unit -> unit) array;
  fanout : int array array; (* == plan.p_fanout (shared, immutable) *)
  dirty : bool array;
  mutable ndirty : int;
  forces : Bits.t option array;
  state : Bits.t option array; (* Reg / Mem_read_sync only *)
  next_state : Bits.t option array;
  index_of_uid : (int, int) Hashtbl.t; (* == plan's (shared, read-only) *)
  mem_arrays : (int, Bits.t array) Hashtbl.t; (* per-instance arrays *)
  mem_readers : (int, int array) Hashtbl.t; (* == plan's (shared) *)
  inputs : input array;
  output_refs : (string * int * Bits.t ref) list;
  (* Edge closures are built after the record exists (they capture it
     for [mark]), hence mutable and assigned in place — never replace
     the record itself: evaluation closures alias it. *)
  mutable edge1 : (unit -> unit) array; (* sample next state (pre-edge) *)
  mutable writes : (unit -> unit) array; (* memory write ports *)
  mutable commits : (unit -> unit) array; (* commit, marks changed nodes *)
  mutable cycles : int;
  mutable settles : int;
  mutable node_evals : int;
  kinds : int array; (* == plan.p_kinds (shared, immutable) *)
  kind_evals : int array;
}

let mark t j =
  if not t.dirty.(j) then begin
    t.dirty.(j) <- true;
    t.ndirty <- t.ndirty + 1
  end

(* Publish [v] as node [i]'s settled value: blit-on-change and mark the
   combinational fan-out. [v] must have the node's width. *)
let publish t i v =
  if Bits.blit_changed ~src:v ~dst:t.bufs.(i) then begin
    let fo = t.fanout.(i) in
    for k = 0 to Array.length fo - 1 do
      mark t fo.(k)
    done
  end

(* What can change a node's settled value within one settle — the edge
   relation the dirty flags propagate along. State-presenting nodes
   have no combinational inputs; async reads depend only on the
   address (array contents change at clock edges, handled separately). *)
let comb_deps s =
  match Signal.prim s with
  | Signal.Reg _ | Signal.Mem_read_sync _ -> []
  | Signal.Mem_read_async { addr; _ } -> [ addr ]
  | _ -> Signal.deps s

let plan circuit =
  let signals = Array.of_list (Circuit.signals circuit) in
  let n = Array.length signals in
  let index_of_uid = Hashtbl.create (max 17 (2 * n)) in
  Array.iteri (fun i s -> Hashtbl.replace index_of_uid (Signal.uid s) i) signals;
  let idx s = Hashtbl.find index_of_uid (Signal.uid s) in
  let buf_init =
    Array.map
      (fun s ->
        match Signal.prim s with
        | Signal.Const b -> b
        | Signal.Reg { init; _ } -> init
        | _ -> Bits.zero (Signal.width s))
      signals
  in
  let fan = Array.make n [] in
  Array.iteri
    (fun i s ->
      List.iter (fun d -> fan.(idx d) <- i :: fan.(idx d)) (comb_deps s))
    signals;
  let fanout = Array.map (fun l -> Array.of_list (List.rev l)) fan in
  let state_init = Array.make n None in
  Array.iteri
    (fun i s ->
      match Signal.prim s with
      | Signal.Reg { init; _ } -> state_init.(i) <- Some init
      | Signal.Mem_read_sync { memory; _ } ->
        state_init.(i) <- Some (Bits.zero (Signal.memory_width memory))
      | _ -> ())
    signals;
  let inputs =
    Array.of_list
      (List.map (fun (name, s) -> (name, idx s)) (Circuit.inputs circuit))
  in
  let input_slot name =
    let rec go k =
      if k >= Array.length inputs then assert false
      else if String.equal (fst inputs.(k)) name then k
      else go (k + 1)
    in
    go 0
  in
  let ops =
    Array.map
      (fun s ->
        match Signal.prim s with
        | Signal.Const _ -> O_const
        | Signal.Input name -> O_input (input_slot name)
        | Signal.Op2 (op, a, b) -> O_op2 (op, idx a, idx b)
        | Signal.Not a -> O_not (idx a)
        | Signal.Concat parts ->
          O_concat (Array.of_list (List.map idx parts))
        | Signal.Select { src; high; low } ->
          O_select { src = idx src; high; low }
        | Signal.Mux { select; cases } ->
          O_mux
            { select = idx select; cases = Array.of_list (List.map idx cases) }
        | Signal.Reg _ | Signal.Mem_read_sync _ -> O_state
        | Signal.Mem_read_async { memory; addr } ->
          O_mem_read_async
            {
              mem_uid = Signal.memory_uid memory;
              mem_width = Signal.memory_width memory;
              addr = idx addr;
            }
        | Signal.Wire { driver = Some d } -> O_wire (idx d)
        | Signal.Wire { driver = None } -> assert false)
      signals
  in
  let edges = ref [] in
  Array.iteri
    (fun i s ->
      match Signal.prim s with
      | Signal.Reg { d; enable; clear; clear_to; _ } ->
        edges :=
          E_reg
            {
              index = i;
              d = idx d;
              enable = Option.map idx enable;
              clear = Option.map idx clear;
              clear_to;
            }
          :: !edges
      | Signal.Mem_read_sync { memory; addr; enable } ->
        edges :=
          E_sync_read
            {
              index = i;
              mem_uid = Signal.memory_uid memory;
              mem_width = Signal.memory_width memory;
              addr = idx addr;
              enable = Option.map idx enable;
            }
          :: !edges
      | _ -> ())
    signals;
  let write_ports = ref [] in
  List.iter
    (fun m ->
      List.iter
        (fun (enable, addr, data) ->
          write_ports :=
            {
              wp_mem_uid = Signal.memory_uid m;
              wp_enable = idx enable;
              wp_addr = idx addr;
              wp_data = idx data;
            }
            :: !write_ports)
        (Signal.memory_write_ports m))
    (Circuit.memories circuit);
  let mems =
    Array.of_list
      (List.map
         (fun m ->
           {
             m_uid = Signal.memory_uid m;
             m_size = Signal.memory_size m;
             m_width = Signal.memory_width m;
           })
         (Circuit.memories circuit))
  in
  let mem_readers = Hashtbl.create 7 in
  Array.iteri
    (fun i s ->
      match Signal.prim s with
      | Signal.Mem_read_async { memory; _ } ->
        let u = Signal.memory_uid memory in
        let cur =
          match Hashtbl.find_opt mem_readers u with Some l -> l | None -> []
        in
        Hashtbl.replace mem_readers u (i :: cur)
      | _ -> ())
    signals;
  let mem_readers =
    let h = Hashtbl.create 7 in
    Hashtbl.iter (fun u l -> Hashtbl.replace h u (Array.of_list l)) mem_readers;
    h
  in
  let outputs =
    List.map (fun (name, s) -> (name, idx s)) (Circuit.outputs circuit)
  in
  {
    p_circuit = circuit;
    p_signals = signals;
    p_index_of_uid = index_of_uid;
    p_fanout = fanout;
    p_kinds = Array.map Signal.prim_kind signals;
    p_buf_init = buf_init;
    p_state_init = state_init;
    p_ops = ops;
    p_edges = Array.of_list (List.rev !edges);
    p_write_ports = Array.of_list (List.rev !write_ports);
    p_mems = mems;
    p_mem_readers = mem_readers;
    p_inputs = inputs;
    p_outputs = outputs;
  }

let plan_circuit p = p.p_circuit

(* Read-only plan introspection for the batched engine (Simbatch):
   it instantiates its own lane-transposed state from the same shared
   descriptor arrays. Everything returned is owned by the plan and must
   be treated as immutable. *)
let plan_n p = Array.length p.p_signals
let plan_signal p i = p.p_signals.(i)
let plan_kinds p = p.p_kinds
let plan_buf_init p = p.p_buf_init
let plan_state_init p = p.p_state_init
let plan_fanout p = p.p_fanout
let plan_ops p = p.p_ops
let plan_edges p = p.p_edges
let plan_write_ports p = p.p_write_ports
let plan_mems p = p.p_mems

let plan_mem_readers p uid =
  match Hashtbl.find_opt p.p_mem_readers uid with Some a -> a | None -> [||]

let plan_inputs p = p.p_inputs
let plan_outputs p = p.p_outputs
let plan_index_of_uid p s = Hashtbl.find_opt p.p_index_of_uid (Signal.uid s)

let instantiate plan =
  let n = Array.length plan.p_signals in
  let width_of i = Signal.width plan.p_signals.(i) in
  let bufs = Array.map Bits.copy plan.p_buf_init in
  let state = Array.map (Option.map Bits.copy) plan.p_state_init in
  let next_state = Array.map (Option.map Bits.copy) plan.p_state_init in
  let mem_arrays = Hashtbl.create 7 in
  Array.iter
    (fun m ->
      Hashtbl.replace mem_arrays m.m_uid
        (Array.make m.m_size (Bits.zero m.m_width)))
    plan.p_mems;
  let inputs =
    Array.map
      (fun (name, i) ->
        { in_name = name; in_index = i; in_ref = ref (Bits.zero (width_of i)) })
      plan.p_inputs
  in
  let output_refs =
    List.map
      (fun (name, i) -> (name, i, ref (Bits.zero (width_of i))))
      plan.p_outputs
  in
  let t =
    {
      plan;
      signals = plan.p_signals;
      bufs;
      evals = Array.make n (fun () -> ());
      fanout = plan.p_fanout;
      dirty = Array.make n true;
      ndirty = n;
      forces = Array.make n None;
      state;
      next_state;
      index_of_uid = plan.p_index_of_uid;
      mem_arrays;
      mem_readers = plan.p_mem_readers;
      inputs;
      output_refs;
      edge1 = [||];
      writes = [||];
      commits = [||];
      cycles = 0;
      settles = 0;
      node_evals = 0;
      kinds = plan.p_kinds;
      kind_evals = Array.make Signal.n_prim_kinds 0;
    }
  in
  (* Evaluation closures: operand indices from the plan resolved to
     this instance's buffers, once, here. *)
  Array.iteri
    (fun i op ->
      let eval =
        match op with
        | O_const ->
          (* The buffer already holds the constant and never changes. *)
          fun () -> ()
        | O_input k ->
          let r = inputs.(k).in_ref in
          fun () -> publish t i !r
        | O_op2 (op, a, b) ->
          let a = bufs.(a) and b = bufs.(b) in
          let dst = Bits.zero (width_of i) in
          let compute =
            match op with
            | Signal.Add -> fun () -> Bits.add_into ~dst a b
            | Signal.Sub -> fun () -> Bits.sub_into ~dst a b
            | Signal.Mul -> fun () -> Bits.mul_into ~dst a b
            | Signal.And -> fun () -> Bits.logand_into ~dst a b
            | Signal.Or -> fun () -> Bits.logor_into ~dst a b
            | Signal.Xor -> fun () -> Bits.logxor_into ~dst a b
            | Signal.Eq -> fun () -> Bits.eq_into ~dst a b
            | Signal.Lt -> fun () -> Bits.lt_into ~dst a b
          in
          fun () ->
            compute ();
            publish t i dst
        | O_not a ->
          let a = bufs.(a) in
          let dst = Bits.zero (width_of i) in
          fun () ->
            Bits.lognot_into ~dst a;
            publish t i dst
        | O_concat parts ->
          let parts = Array.map (fun j -> bufs.(j)) parts in
          let dst = Bits.zero (width_of i) in
          fun () ->
            Bits.concat_msb_into ~dst parts;
            publish t i dst
        | O_select { src; high; low } ->
          let src = bufs.(src) in
          let dst = Bits.zero (width_of i) in
          fun () ->
            Bits.select_into ~dst src ~high ~low;
            publish t i dst
        | O_mux { select; cases } ->
          let sel = bufs.(select) in
          let cases = Array.map (fun j -> bufs.(j)) cases in
          let n_cases = Array.length cases in
          fun () -> publish t i cases.(Signal.mux_index ~n_cases sel)
        | O_state ->
          let st = Option.get state.(i) in
          fun () -> publish t i st
        | O_mem_read_async { mem_uid; mem_width; addr } ->
          let arr = Hashtbl.find mem_arrays mem_uid in
          let addr = bufs.(addr) in
          let z = Bits.zero mem_width in
          fun () ->
            publish t i
              (match Bits.to_int_opt addr with
              | Some a when a < Array.length arr -> arr.(a)
              | Some _ | None -> z)
        | O_wire d ->
          let d = bufs.(d) in
          fun () -> publish t i d
      in
      t.evals.(i) <- eval)
    plan.p_ops;
  (* Clock-edge closures. Phase 1 samples next state from settled
     pre-edge buffers (sync reads see pre-edge memory contents:
     read-first); phase 2 applies memory writes; phase 3 commits and
     marks nodes whose presented state actually changed. *)
  let edge1 = ref [] in
  let commits = ref [] in
  Array.iter
    (function
      | E_reg { index = i; d; enable; clear; clear_to } ->
        let st = Option.get state.(i) and nx = Option.get next_state.(i) in
        let d = bufs.(d) in
        let enable = Option.map (fun j -> bufs.(j)) enable in
        let clear = Option.map (fun j -> bufs.(j)) clear in
        let sample () =
          let clear_active =
            match clear with Some c -> Bits.to_bool c | None -> false
          in
          let enabled =
            match enable with Some e -> Bits.to_bool e | None -> true
          in
          if clear_active then Bits.blit ~src:clear_to ~dst:nx
          else if enabled then Bits.blit ~src:d ~dst:nx
          else Bits.blit ~src:st ~dst:nx
        in
        let commit () = if Bits.blit_changed ~src:nx ~dst:st then mark t i in
        edge1 := sample :: !edge1;
        commits := commit :: !commits
      | E_sync_read { index = i; mem_uid; mem_width; addr; enable } ->
        let st = Option.get state.(i) and nx = Option.get next_state.(i) in
        let arr = Hashtbl.find mem_arrays mem_uid in
        let addr = bufs.(addr) in
        let enable = Option.map (fun j -> bufs.(j)) enable in
        let z = Bits.zero mem_width in
        let sample () =
          let enabled =
            match enable with Some e -> Bits.to_bool e | None -> true
          in
          if enabled then begin
            let src =
              match Bits.to_int_opt addr with
              | Some a when a < Array.length arr -> arr.(a)
              | Some _ | None -> z
            in
            Bits.blit ~src ~dst:nx
          end
          else Bits.blit ~src:st ~dst:nx
        in
        let commit () = if Bits.blit_changed ~src:nx ~dst:st then mark t i in
        edge1 := sample :: !edge1;
        commits := commit :: !commits)
    plan.p_edges;
  let writes = ref [] in
  Array.iter
    (fun { wp_mem_uid; wp_enable; wp_addr; wp_data } ->
      let arr = Hashtbl.find mem_arrays wp_mem_uid in
      let readers =
        match Hashtbl.find_opt plan.p_mem_readers wp_mem_uid with
        | Some a -> a
        | None -> [||]
      in
      let enable = bufs.(wp_enable)
      and addr = bufs.(wp_addr)
      and data = bufs.(wp_data) in
      let write () =
        if Bits.to_bool enable then
          match Bits.to_int_opt addr with
          | Some a when a < Array.length arr ->
            if not (Bits.equal arr.(a) data) then begin
              arr.(a) <- Bits.copy data;
              Array.iter (fun j -> mark t j) readers
            end
          | Some _ | None -> ()
      in
      writes := write :: !writes)
    plan.p_write_ports;
  t.edge1 <- Array.of_list (List.rev !edge1);
  t.writes <- Array.of_list (List.rev !writes);
  t.commits <- Array.of_list (List.rev !commits);
  t

let compile circuit = instantiate (plan circuit)

let circuit t = t.plan.p_circuit

let index t s =
  match Hashtbl.find_opt t.index_of_uid (Signal.uid s) with
  | Some i -> i
  | None -> invalid_arg "Cyclesim: signal not part of this circuit"

let in_port t name =
  let rec go k =
    if k >= Array.length t.inputs then
      invalid_arg (Printf.sprintf "Cyclesim: no input port named %s" name)
    else if String.equal t.inputs.(k).in_name name then t.inputs.(k).in_ref
    else go (k + 1)
  in
  go 0

let out_port t name =
  let rec go = function
    | [] -> invalid_arg (Printf.sprintf "Cyclesim: no output port named %s" name)
    | (n, _, r) :: rest -> if String.equal n name then r else go rest
  in
  go t.output_refs

let settle_comb t =
  t.settles <- t.settles + 1;
  for k = 0 to Array.length t.inputs - 1 do
    let { in_name; in_index; in_ref } = t.inputs.(k) in
    let b = !in_ref in
    let w = Signal.width t.signals.(in_index) in
    if Bits.width b <> w then
      invalid_arg
        (Printf.sprintf "Cyclesim: input %s driven with width %d, expected %d"
           in_name (Bits.width b) w);
    if not (Bits.equal b t.bufs.(in_index)) then mark t in_index
  done;
  let n = Array.length t.evals in
  let i = ref 0 in
  while t.ndirty > 0 && !i < n do
    let j = !i in
    if t.dirty.(j) then begin
      t.dirty.(j) <- false;
      t.ndirty <- t.ndirty - 1;
      t.node_evals <- t.node_evals + 1;
      t.kind_evals.(t.kinds.(j)) <- t.kind_evals.(t.kinds.(j)) + 1;
      match t.forces.(j) with
      | Some f -> publish t j f
      | None -> t.evals.(j) ()
    end;
    incr i
  done

let refresh_outputs t =
  List.iter
    (fun (_, i, r) ->
      if not (Bits.equal !r t.bufs.(i)) then r := Bits.copy t.bufs.(i))
    t.output_refs

let settle t =
  settle_comb t;
  refresh_outputs t

let clock_edge t =
  for k = 0 to Array.length t.edge1 - 1 do
    t.edge1.(k) ()
  done;
  for k = 0 to Array.length t.writes - 1 do
    t.writes.(k) ()
  done;
  for k = 0 to Array.length t.commits - 1 do
    t.commits.(k) ()
  done

let cycle t =
  settle t;
  clock_edge t;
  t.cycles <- t.cycles + 1

let force t s b =
  let i = index t s in
  let w = Signal.width t.signals.(i) in
  if Bits.width b <> w then
    invalid_arg
      (Printf.sprintf "Cyclesim.force: value width %d, signal width %d"
         (Bits.width b) w);
  t.forces.(i) <- Some (Bits.copy b);
  mark t i

let release t s =
  let i = index t s in
  if t.forces.(i) <> None then begin
    t.forces.(i) <- None;
    mark t i
  end

let release_all t =
  for i = 0 to Array.length t.forces - 1 do
    if t.forces.(i) <> None then begin
      t.forces.(i) <- None;
      mark t i
    end
  done

let forced t s = t.forces.(index t s)

let peek t s = Bits.copy t.bufs.(index t s)

let peek_state t s =
  match t.state.(index t s) with
  | Some st -> Bits.copy st
  | None -> invalid_arg "Cyclesim.peek_state: signal holds no state"

let poke_state t s b =
  let i = index t s in
  match t.state.(i) with
  | None -> invalid_arg "Cyclesim.poke_state: signal holds no state"
  | Some st ->
    if Bits.width b <> Bits.width st then
      invalid_arg "Cyclesim.poke_state: width mismatch";
    Bits.blit ~src:b ~dst:st;
    mark t i

let memory_contents t m =
  let arr = Hashtbl.find t.mem_arrays (Signal.memory_uid m) in
  (* The caller may mutate the array (fault injection does), so its
     async readers can no longer be assumed clean. *)
  (match Hashtbl.find_opt t.mem_readers (Signal.memory_uid m) with
  | Some readers -> Array.iter (fun j -> mark t j) readers
  | None -> ());
  arr

let reset t =
  Array.fill t.forces 0 (Array.length t.forces) None;
  Array.iteri
    (fun i s ->
      match Signal.prim s with
      | Signal.Reg { init; _ } ->
        Bits.blit ~src:init ~dst:(Option.get t.state.(i));
        Bits.blit ~src:init ~dst:(Option.get t.next_state.(i))
      | Signal.Mem_read_sync _ ->
        let st = Option.get t.state.(i) and nx = Option.get t.next_state.(i) in
        let z = Bits.zero (Bits.width st) in
        Bits.blit ~src:z ~dst:st;
        Bits.blit ~src:z ~dst:nx
      | _ -> ())
    t.signals;
  Hashtbl.iter
    (fun _ arr ->
      Array.fill arr 0 (Array.length arr) (Bits.zero (Bits.width arr.(0))))
    t.mem_arrays;
  (* Input ports go back to zero so a reused instance starts from the
     same state a freshly instantiated one would — without this, a
     stale driven value would leak into the next work item. *)
  Array.iter
    (fun { in_index; in_ref; _ } ->
      in_ref := Bits.zero (Signal.width t.signals.(in_index)))
    t.inputs;
  Array.fill t.dirty 0 (Array.length t.dirty) true;
  t.ndirty <- Array.length t.dirty;
  t.cycles <- 0;
  settle t

let cycle_count t = t.cycles
let settles t = t.settles
let node_evals t = t.node_evals
let total_nodes t = Array.length t.signals
let kind_evals t = Array.copy t.kind_evals
