type op2 = Add | Sub | Mul | And | Or | Xor | Eq | Lt

type t = { uid : int; width : int; mutable names : string list; prim : prim }

and prim =
  | Const of Bits.t
  | Input of string
  | Op2 of op2 * t * t
  | Not of t
  | Concat of t list
  | Select of { src : t; high : int; low : int }
  | Mux of { select : t; cases : t list }
  | Reg of { d : t; enable : t option; clear : t option; clear_to : Bits.t; init : Bits.t }
  | Mem_read_async of { memory : memory; addr : t }
  | Mem_read_sync of { memory : memory; addr : t; enable : t option }
  | Wire of { mutable driver : t option }

and memory = {
  mem_uid : int;
  mem_size : int;
  mem_width : int;
  mem_name : string;
  mem_external : bool;
  mutable write_ports : write_port list;
}

and write_port = { wp_enable : t; wp_addr : t; wp_data : t }

(* Uids are minted from an [Atomic] counter so that circuits can be
   elaborated concurrently from several domains (sharded campaigns and
   sweeps build one fresh circuit per shard). A plain [ref] here lets
   two domains read-modify-write the same counter and mint duplicate
   uids, silently corrupting every uid-keyed table downstream (Cyclesim
   node maps, VCD identifier dedup, the Optimize memo). Uids stay
   monotonic within any single domain's elaboration, so structural
   orderings derived from them are unchanged. *)
let uid_counter = Atomic.make 0

let next_uid () = Atomic.fetch_and_add uid_counter 1 + 1

let make width prim = { uid = next_uid (); width; names = []; prim }

let uid t = t.uid
let width t = t.width
let prim t = t.prim
let names t = List.rev t.names

let ( -- ) t name =
  t.names <- name :: t.names;
  t

let const b = make (Bits.width b) (Const b)
let of_int ~width n = const (Bits.of_int ~width n)
let of_string s = const (Bits.of_string s)
let zero w = const (Bits.zero w)
let one w = const (Bits.one w)
let ones w = const (Bits.ones w)
let vdd = one 1
let gnd = zero 1

let input name w =
  if w < 1 then invalid_arg "Signal.input: width must be >= 1";
  make w (Input name)

let check_same_width name a b =
  if a.width <> b.width then
    invalid_arg
      (Printf.sprintf "Signal.%s: width mismatch (%d vs %d)" name a.width b.width)

let op2 op name a b =
  check_same_width name a b;
  let w = match op with Eq | Lt -> 1 | _ -> a.width in
  make w (Op2 (op, a, b))

let ( +: ) a b = op2 Add "(+:)" a b
let ( -: ) a b = op2 Sub "(-:)" a b
let ( *: ) a b = op2 Mul "(*:)" a b
let ( &: ) a b = op2 And "(&:)" a b
let ( |: ) a b = op2 Or "(|:)" a b
let ( ^: ) a b = op2 Xor "(^:)" a b
let ( ==: ) a b = op2 Eq "(==:)" a b
let ( <: ) a b = op2 Lt "(<:)" a b
let ( ~: ) a = make a.width (Not a)
let ( <>: ) a b = ~:(a ==: b)
let ( >=: ) a b = ~:(a <: b)
let ( >: ) a b = b <: a
let ( <=: ) a b = ~:(b <: a)

let concat_msb parts =
  (match parts with
  | [] -> invalid_arg "Signal.concat_msb: empty list"
  | _ -> ());
  let w = List.fold_left (fun acc p -> acc + p.width) 0 parts in
  make w (Concat parts)

let select src ~high ~low =
  if low < 0 || high >= src.width || high < low then
    invalid_arg
      (Printf.sprintf "Signal.select: bad range [%d:%d] of width %d" high low
         src.width);
  if low = 0 && high = src.width - 1 then src
  else make (high - low + 1) (Select { src; high; low })

let bit t i = select t ~high:i ~low:i
let msb t = bit t (t.width - 1)
let lsb t = bit t 0
let repeat t n = concat_msb (List.init n (fun _ -> t))

let uresize t w =
  if w = t.width then t
  else if w < t.width then select t ~high:(w - 1) ~low:0
  else concat_msb [ zero (w - t.width); t ]

let sresize t w =
  if w = t.width then t
  else if w < t.width then select t ~high:(w - 1) ~low:0
  else concat_msb [ repeat (msb t) (w - t.width); t ]

let sll t n =
  if n < 0 then invalid_arg "Signal.sll: negative shift";
  if n = 0 then t
  else if n >= t.width then zero t.width
  else concat_msb [ select t ~high:(t.width - 1 - n) ~low:0; zero n ]

let srl t n =
  if n < 0 then invalid_arg "Signal.srl: negative shift";
  if n = 0 then t
  else if n >= t.width then zero t.width
  else concat_msb [ zero n; select t ~high:(t.width - 1) ~low:n ]

let mux select cases =
  (match cases with
  | [] -> invalid_arg "Signal.mux: no cases"
  | first :: rest ->
    List.iter (fun c -> check_same_width "mux" first c) rest);
  let max_cases = if select.width >= 30 then max_int else 1 lsl select.width in
  if List.length cases > max_cases then
    invalid_arg "Signal.mux: more cases than the select can address";
  make (List.hd cases).width (Mux { select; cases })

let mux2 cond t f =
  if cond.width <> 1 then invalid_arg "Signal.mux2: condition must be 1 bit";
  mux cond [ f; t ]

(* The single source of truth for mux out-of-range semantics: clamp to
   the last case. Every consumer (both simulation engines, the constant
   folder) must go through this helper; the HDL back-ends encode the
   same rule structurally by making the last case the unconditional
   default arm of the emitted selector. *)
(* Coarse node-kind classification for simulator activity statistics:
   both engines bucket their per-node evaluation counts by this code so
   profiles are comparable across engines. *)
let n_prim_kinds = 10

let prim_kind_names =
  [|
    "const"; "input"; "op2"; "not"; "concat"; "select"; "mux"; "reg";
    "mem_read"; "wire";
  |]

let prim_kind s =
  match prim s with
  | Const _ -> 0
  | Input _ -> 1
  | Op2 _ -> 2
  | Not _ -> 3
  | Concat _ -> 4
  | Select _ -> 5
  | Mux _ -> 6
  | Reg _ -> 7
  | Mem_read_async _ | Mem_read_sync _ -> 8
  | Wire _ -> 9

let mux_index ~n_cases select_value =
  match Bits.to_int_opt select_value with
  | Some idx when idx < n_cases -> idx
  | Some _ | None -> n_cases - 1

let rec reduce_or t =
  if t.width = 1 then t
  else
    let mid = t.width / 2 in
    reduce_or (select t ~high:(t.width - 1) ~low:mid)
    |: reduce_or (select t ~high:(mid - 1) ~low:0)

let rec reduce_and t =
  if t.width = 1 then t
  else
    let mid = t.width / 2 in
    reduce_and (select t ~high:(t.width - 1) ~low:mid)
    &: reduce_and (select t ~high:(mid - 1) ~low:0)

let reg ?enable ?clear ?clear_to ?init d =
  let clear_to = match clear_to with Some b -> b | None -> Bits.zero d.width in
  let init = match init with Some b -> b | None -> Bits.zero d.width in
  if Bits.width clear_to <> d.width then invalid_arg "Signal.reg: clear_to width mismatch";
  if Bits.width init <> d.width then invalid_arg "Signal.reg: init width mismatch";
  (match enable with
  | Some e when e.width <> 1 -> invalid_arg "Signal.reg: enable must be 1 bit"
  | _ -> ());
  (match clear with
  | Some c when c.width <> 1 -> invalid_arg "Signal.reg: clear must be 1 bit"
  | _ -> ());
  make d.width (Reg { d; enable; clear; clear_to; init })

let wire w = make w (Wire { driver = None })

let ( <== ) target driver =
  match target.prim with
  | Wire r -> (
    match r.driver with
    | Some _ -> invalid_arg "Signal.(<==): wire already driven"
    | None ->
      check_same_width "(<==)" target driver;
      r.driver <- Some driver)
  | _ -> invalid_arg "Signal.(<==): target is not a wire"

let wire_driver t = match t.prim with Wire r -> r.driver | _ -> None

let reg_fb ?enable ?clear ?clear_to ?init ~width f =
  let q_wire = wire width in
  let q = reg ?enable ?clear ?clear_to ?init q_wire in
  q_wire <== f q;
  q

let create_memory ~size ~width ?name ?(external_ = false) () =
  if size < 1 then invalid_arg "Signal.create_memory: size must be >= 1";
  if width < 1 then invalid_arg "Signal.create_memory: width must be >= 1";
  let uid = next_uid () in
  let name = match name with Some n -> n | None -> Printf.sprintf "mem_%d" uid in
  {
    mem_uid = uid;
    mem_size = size;
    mem_width = width;
    mem_name = name;
    mem_external = external_;
    write_ports = [];
  }

let memory_size m = m.mem_size
let memory_width m = m.mem_width
let memory_name m = m.mem_name
let memory_uid m = m.mem_uid
let memory_is_external m = m.mem_external

let mem_write_port m ~enable ~addr ~data =
  if enable.width <> 1 then invalid_arg "Signal.mem_write_port: enable must be 1 bit";
  if data.width <> m.mem_width then
    invalid_arg "Signal.mem_write_port: data width mismatch";
  m.write_ports <-
    m.write_ports @ [ { wp_enable = enable; wp_addr = addr; wp_data = data } ]

let mem_read_async m ~addr = make m.mem_width (Mem_read_async { memory = m; addr })

let mem_read_sync m ?enable ~addr () =
  (match enable with
  | Some e when e.width <> 1 ->
    invalid_arg "Signal.mem_read_sync: enable must be 1 bit"
  | _ -> ());
  make m.mem_width (Mem_read_sync { memory = m; addr; enable })

let memory_write_ports m =
  List.map (fun wp -> (wp.wp_enable, wp.wp_addr, wp.wp_data)) m.write_ports

let opt_to_list = function Some s -> [ s ] | None -> []

let deps t =
  match t.prim with
  | Const _ | Input _ -> []
  | Op2 (_, a, b) -> [ a; b ]
  | Not a -> [ a ]
  | Concat parts -> parts
  | Select { src; _ } -> [ src ]
  | Mux { select; cases } -> select :: cases
  | Reg { d; enable; clear; _ } -> (d :: opt_to_list enable) @ opt_to_list clear
  | Mem_read_async { memory; addr } | Mem_read_sync { memory; addr; enable = None } ->
    addr
    :: List.concat_map
         (fun wp -> [ wp.wp_enable; wp.wp_addr; wp.wp_data ])
         memory.write_ports
  | Mem_read_sync { memory; addr; enable = Some e } ->
    addr :: e
    :: List.concat_map
         (fun wp -> [ wp.wp_enable; wp.wp_addr; wp.wp_data ])
         memory.write_ports
  | Wire { driver } -> opt_to_list driver

let is_const t = match t.prim with Const _ -> true | _ -> false
let const_value t = match t.prim with Const b -> Some b | _ -> None

let pp fmt t =
  let kind =
    match t.prim with
    | Const b -> Printf.sprintf "const %s" (Bits.to_string b)
    | Input n -> Printf.sprintf "input %s" n
    | Op2 (op, _, _) ->
      let s =
        match op with
        | Add -> "add" | Sub -> "sub" | Mul -> "mul" | And -> "and"
        | Or -> "or" | Xor -> "xor" | Eq -> "eq" | Lt -> "lt"
      in
      "op2 " ^ s
    | Not _ -> "not"
    | Concat _ -> "concat"
    | Select { high; low; _ } -> Printf.sprintf "select[%d:%d]" high low
    | Mux _ -> "mux"
    | Reg _ -> "reg"
    | Mem_read_async _ -> "mem_read_async"
    | Mem_read_sync _ -> "mem_read_sync"
    | Wire _ -> "wire"
  in
  let names = match names t with [] -> "" | ns -> " (" ^ String.concat "," ns ^ ")" in
  Format.fprintf fmt "#%d:%d %s%s" t.uid t.width kind names
