(** Batched (bit-parallel) compiled simulation engine.

    Packs up to 64 independent instances of one circuit into the
    bit-lanes of each machine word — the classic parallel-pattern
    fault-simulation trick. A width-[w] signal's batched value is a
    {!Bits.t} of width [w * 64] stored transposed: limb [b] is the
    bit-plane of bit [b] across all lanes, so the bitwise kernels
    (And/Or/Xor/Not, Select, Concat) evaluate all lanes with the
    ordinary scalar [Bits] operations, arithmetic and comparisons run
    plane-serially with 64-lane carry/borrow words, and only
    multiplies and memory ports fall back to per-lane evaluation.

    Instances are built from the same immutable {!Simcompile.plan} the
    scalar engine uses, and follow the same levelized dirty-flag
    settle, publish-on-change, and three-phase clock edge — each lane's
    trajectory is bit-identical to a scalar simulation of the same
    stimulus (the differential suite holds this). All per-lane
    observation and fault-injection entry points take an explicit
    [~lane]; [cycle]/[settle]/[reset] advance the whole batch at once.

    Use {!Cyclesim.instantiate_batched} and {!Cyclesim.lane_view}
    rather than this module directly unless you need engine
    internals. *)

type t

val lane_bits : int
(** Lanes per machine word: 64. *)

val instantiate : ?lanes:int -> Simcompile.plan -> t
(** Fresh batched simulator over a shared plan. [lanes] defaults to
    {!lane_bits}; must be within [1..lane_bits]. All lanes start at
    power-on state with zeroed inputs and memories. *)

val lanes : t -> int
val plan : t -> Simcompile.plan
val circuit : t -> Circuit.t

(** {1 Whole-batch stepping}

    One call advances every lane together; there is no per-lane
    clock. *)

val cycle : t -> unit
val settle : t -> unit

val reset : t -> unit
(** Every lane back to power-on state: forces cleared, registers to
    init, memories zeroed, inputs zeroed, re-settled — indistinguishable
    from a fresh [instantiate] of the same plan and lane count. *)

val cycle_count : t -> int

(** {1 Per-lane ports and observation}

    Lane indices are checked against the instantiated lane count. *)

val in_port : t -> lane:int -> string -> Bits.t ref
(** Scalar input ref for one lane; packed into the transposed batch at
    the next settle (width-checked there, like the scalar engines). *)

val out_port : t -> lane:int -> string -> Bits.t ref
(** Scalar settled output for one lane, refreshed after each settle. *)

val peek : t -> lane:int -> Signal.t -> Bits.t
val peek_state : t -> lane:int -> Signal.t -> Bits.t
val poke_state : t -> lane:int -> Signal.t -> Bits.t -> unit

val memory_contents : t -> lane:int -> Signal.memory -> Bits.t array
(** The lane's private backing store (each lane owns one); mutations
    are lane-isolated, and async readers are conservatively re-read at
    the next settle. *)

(** {1 Per-lane fault injection}

    Forces are lane-addressed: a force in lane [k] blends only lane
    [k]'s bits of the node's published value, so concurrent faults in
    different lanes never interact. *)

val force : t -> lane:int -> Signal.t -> Bits.t -> unit
val release : t -> lane:int -> Signal.t -> unit

val release_all : t -> lane:int -> unit
(** Release every force in one lane (other lanes' forces survive). *)

val forced : t -> lane:int -> Signal.t -> Bits.t option

(** {1 Plane-level access}

    For batched harnesses (stimulus drivers, monitors, collectors)
    that operate on whole bit-planes instead of per-lane scalars: one
    64-lane word read or written per plane. Resolve indices once at
    construction; the per-cycle path is then a few word operations. *)

val node_index : t -> Signal.t -> int
(** Plan index of a signal, for {!read_plane}. *)

val input_index : t -> string -> int
(** Index of a named input port, for {!write_input_plane}. *)

val out_node : t -> string -> int
(** Plan index of a named output port's node, for {!read_plane}. *)

val read_plane : t -> int -> plane:int -> int64
(** Bit-plane [plane] of node [i]'s published (settled) value: bit [l]
    is bit [plane] of lane [l]. Same phase as {!peek} — the settled
    pre-edge value of the cycle that just completed. *)

val write_input_plane : t -> int -> plane:int -> mask:int64 -> bits:int64 -> unit
(** Overwrite the [mask] lanes of input [k]'s bit-plane [plane] with
    the corresponding bits of [bits]; other lanes keep their previous
    value. Takes effect at the next settle, like ref assignment. Do
    not mix with per-lane ref drives of the same port: a ref
    assignment to lane [l] overwrites all of lane [l]'s planes at the
    next settle. *)

(** {1 Activity counters}

    Same meaning as {!Simcompile}'s: one node evaluation covers all
    lanes at once. *)

val settles : t -> int
val node_evals : t -> int
val total_nodes : t -> int
val kind_evals : t -> int array
