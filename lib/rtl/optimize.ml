open Signal

(* Structural "provably never true" check used for write-port pruning:
   conservative, treats registers and memory reads as unknown. *)
let rec always_false s =
  match prim s with
  | Const b -> not (Bits.to_bool b)
  | Wire { driver = Some d } -> always_false d
  | Op2 (And, a, b) -> always_false a || always_false b
  | Op2 (Or, a, b) -> always_false a && always_false b
  | Mux { cases; _ } -> List.for_all always_false cases
  | Concat parts -> List.for_all always_false parts
  | _ -> false

type ctx = {
  memo : (int, Signal.t) Hashtbl.t;
  mem_memo : (int, memory option) Hashtbl.t;
      (* None = memory folded away (never written) *)
}

let const_of s = const_value s

(* Keep user names on rebuilt stateful nodes so waveforms stay
   readable after optimisation. *)
let copy_names src dst =
  if uid src <> uid dst then
    List.iter (fun n -> ignore (dst -- n)) (names src);
  dst

let rec opt ctx s =
  match Hashtbl.find_opt ctx.memo (uid s) with
  | Some s' -> s'
  | None -> (
    match prim s with
    | Const _ | Input _ ->
      Hashtbl.replace ctx.memo (uid s) s;
      s
    | _ ->
      (* Memoise a placeholder before descending: any path that loops
         back to this node (through a register) must reuse it, or the
         cone would be rebuilt twice. The placeholder is a free wire. *)
      let placeholder = wire (width s) in
      Hashtbl.replace ctx.memo (uid s) placeholder;
      let result =
        match prim s with
        | Const _ | Input _ -> assert false
        | Wire { driver = Some d } -> opt ctx d
        | Wire { driver = None } -> invalid_arg "Optimize: undriven wire"
        | Not a -> opt_not ctx a
        | Op2 (op, a, b) -> opt_op2 ctx op a b
        | Concat parts -> opt_concat ctx parts
        | Select { src; high; low } -> opt_select ctx src high low
        | Mux { select = sel; cases } -> opt_mux ctx sel cases
        | Reg _ -> opt_reg ctx s
        | Mem_read_async _ | Mem_read_sync _ -> opt_mem_read ctx s
      in
      placeholder <== result;
      Hashtbl.replace ctx.memo (uid s) result;
      result)

and opt_not ctx a =
  let a = opt ctx a in
  match (const_of a, prim a) with
  | Some v, _ -> const (Bits.lognot v)
  | None, Not inner -> inner
  | None, _ -> ~:a

and opt_op2 ctx op a b =
  let a = opt ctx a and b = opt ctx b in
  match (const_of a, const_of b) with
  | Some va, Some vb ->
    let v =
      match op with
      | Add -> Bits.add va vb
      | Sub -> Bits.sub va vb
      | Mul -> Bits.mul va vb
      | And -> Bits.logand va vb
      | Or -> Bits.logor va vb
      | Xor -> Bits.logxor va vb
      | Eq -> Bits.eq va vb
      | Lt -> Bits.lt va vb
    in
    const v
  | ca, cb -> (
    let w = width a in
    let is_zero = function Some v -> not (Bits.to_bool v) | None -> false in
    let is_ones = function
      | Some v -> Bits.equal v (Bits.ones (Bits.width v))
      | None -> false
    in
    match op with
    | And when is_zero ca || is_zero cb -> const (Bits.zero w)
    | And when is_ones ca -> b
    | And when is_ones cb -> a
    | Or when is_ones ca || is_ones cb -> const (Bits.ones w)
    | Or when is_zero ca -> b
    | Or when is_zero cb -> a
    | Xor when is_zero ca -> b
    | Xor when is_zero cb -> a
    | Add when is_zero ca -> b
    | Add when is_zero cb -> a
    | Sub when is_zero cb -> a
    | _ -> (
      match op with
      | Add -> a +: b
      | Sub -> a -: b
      | Mul -> a *: b
      | And -> a &: b
      | Or -> a |: b
      | Xor -> a ^: b
      | Eq -> a ==: b
      | Lt -> a <: b))

and opt_concat ctx parts =
  let parts = List.map (opt ctx) parts in
  let consts = List.map const_of parts in
  if List.for_all Option.is_some consts then
    const (Bits.concat_msb (List.map Option.get consts))
  else concat_msb parts

and opt_select ctx src high low =
  let src = opt ctx src in
  match const_of src with
  | Some v -> const (Bits.select v ~high ~low)
  | None -> select src ~high ~low

and opt_mux ctx sel cases =
  let sel = opt ctx sel in
  let cases = List.map (opt ctx) cases in
  match const_of sel with
  | Some v ->
    let idx = mux_index ~n_cases:(List.length cases) v in
    List.nth cases idx
  | None -> (
    match cases with
    | first :: rest when List.for_all (fun c -> uid c = uid first) rest -> first
    | _ -> mux sel cases)

and opt_reg ctx s =
  match prim s with
  | Reg { d; enable; clear; clear_to; init } -> (
    let d = opt ctx d in
    let enable = Option.map (opt ctx) enable in
    let clear = Option.map (opt ctx) clear in
    let enable_false =
      match enable with Some e -> always_false e | None -> false
    in
    let clear_false = match clear with Some c -> always_false c | None -> true in
    let enable_true =
      match enable with
      | Some e -> ( match const_of e with Some v -> Bits.to_bool v | None -> false)
      | None -> true
    in
    let fold_to_const v = const v in
    if enable_false && (clear_false || Bits.equal clear_to init) then
      (* Never loads; clears (if any) rewrite the same value. *)
      fold_to_const init
    else
      match (const_of d, enable_true, clear_false) with
      | Some v, true, true when Bits.equal v init ->
        (* Always reloads its own initial value. *)
        fold_to_const v
      | _ ->
        let enable =
          match enable with
          | Some e when const_of e <> None && enable_true -> None
          | e -> e
        in
        let clear = if clear_false then None else clear in
        copy_names s (reg ?enable ?clear ~clear_to ~init d))
  | _ -> assert false

and rebuild_memory ctx m =
  match Hashtbl.find_opt ctx.mem_memo (Signal.memory_uid m) with
  | Some r -> r
  | None ->
    let live_ports =
      List.filter
        (fun (enable, _, _) -> not (always_false enable))
        (memory_write_ports m)
    in
    if live_ports = [] then begin
      Hashtbl.replace ctx.mem_memo (Signal.memory_uid m) None;
      None
    end
    else begin
      let fresh =
        create_memory ~size:(memory_size m) ~width:(memory_width m)
          ~name:(memory_name m)
          ~external_:(memory_is_external m)
          ()
      in
      (* Register before optimising port signals: they may read back
         from this same memory. *)
      Hashtbl.replace ctx.mem_memo (Signal.memory_uid m) (Some fresh);
      List.iter
        (fun (enable, addr, data) ->
          mem_write_port fresh ~enable:(opt ctx enable) ~addr:(opt ctx addr)
            ~data:(opt ctx data))
        live_ports;
      Some fresh
    end

and opt_mem_read ctx s =
  match prim s with
  | Mem_read_async { memory; addr } -> (
    match rebuild_memory ctx memory with
    | None -> const (Bits.zero (memory_width memory))
    | Some fresh -> mem_read_async fresh ~addr:(opt ctx addr))
  | Mem_read_sync { memory; addr; enable } -> (
    match rebuild_memory ctx memory with
    | None -> const (Bits.zero (memory_width memory))
    | Some fresh ->
      let enable = Option.map (opt ctx) enable in
      copy_names s (mem_read_sync fresh ?enable ~addr:(opt ctx addr) ()))
  | _ -> assert false

let fresh_ctx () = { memo = Hashtbl.create 997; mem_memo = Hashtbl.create 7 }

let signal s = opt (fresh_ctx ()) s

let circuit c =
  let ctx = fresh_ctx () in
  let outputs =
    List.map (fun (name, s) -> (name, opt ctx s)) (Circuit.outputs c)
  in
  Circuit.create_exn ~name:(Circuit.name c) outputs

let run ?verify c =
  let optimised = circuit c in
  (match verify with Some f -> f c optimised | None -> ());
  optimised
