type tracked = {
  signal : Signal.t;
  id : string; (* VCD short identifier *)
  label : string;
  mutable last : Bits.t option;
}

type t = {
  sim : Cyclesim.t;
  tracked : tracked list;
  initial : Buffer.t; (* every tracked value at #0, for $dumpvars *)
  changes : Buffer.t;
  mutable time : int;
}

let ident_of_index i =
  (* Printable VCD identifiers over '!'..'~'. *)
  let base = 94 and first = 33 in
  let rec go i acc =
    let c = Char.chr (first + (i mod base)) in
    let acc = String.make 1 c ^ acc in
    if i < base then acc else go ((i / base) - 1) acc
  in
  go i ""

let default_signals sim =
  let circuit = Cyclesim.circuit sim in
  let named =
    List.filter (fun s -> Signal.names s <> []) (Circuit.signals circuit)
  in
  let ports = List.map snd (Circuit.inputs circuit @ Circuit.outputs circuit) in
  (* Dedup by uid, keep stable order. *)
  let seen = Hashtbl.create 37 in
  List.filter
    (fun s ->
      if Hashtbl.mem seen (Signal.uid s) then false
      else begin
        Hashtbl.replace seen (Signal.uid s) ();
        true
      end)
    (ports @ named)

(* VCD reference names: keep [a-zA-Z0-9_$], replace anything else, and
   never start with a digit — viewers treat such names as malformed. *)
let sanitize_label s =
  let ok c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_' || c = '$'
  in
  let s = if s = "" then "unnamed" else s in
  let s = String.map (fun c -> if ok c then c else '_') s in
  if s.[0] >= '0' && s.[0] <= '9' then "s_" ^ s else s

let label_of s =
  sanitize_label
    (match Signal.prim s with
    | Signal.Input n -> n
    | _ -> (
      match Signal.names s with
      | n :: _ -> Printf.sprintf "%s_%d" n (Signal.uid s)
      | [] -> Printf.sprintf "s_%d" (Signal.uid s)))

let create ?signals sim =
  let signals = match signals with Some s -> s | None -> default_signals sim in
  let tracked =
    List.mapi
      (fun i s -> { signal = s; id = ident_of_index i; label = label_of s; last = None })
      signals
  in
  {
    sim;
    tracked;
    initial = Buffer.create 1024;
    changes = Buffer.create 4096;
    time = 0;
  }

let change_line tr v =
  if Bits.width v = 1 then
    Printf.sprintf "%c%s\n" (if Bits.to_bool v then '1' else '0') tr.id
  else Printf.sprintf "b%s %s\n" (Bits.to_string v) tr.id

let sample t =
  if t.time = 0 then
    (* First sample: record every tracked signal for the $dumpvars
       initial-value block instead of the change stream. *)
    List.iter
      (fun tr ->
        let v = Cyclesim.peek t.sim tr.signal in
        tr.last <- Some v;
        Buffer.add_string t.initial (change_line tr v))
      t.tracked
  else begin
    (* Buffer the timestamp: a #time marker is only emitted when at
       least one tracked signal actually changed this cycle. *)
    let stamped = ref false in
    List.iter
      (fun tr ->
        let v = Cyclesim.peek t.sim tr.signal in
        let changed =
          match tr.last with None -> true | Some p -> not (Bits.equal p v)
        in
        if changed then begin
          tr.last <- Some v;
          if not !stamped then begin
            stamped := true;
            Buffer.add_string t.changes (Printf.sprintf "#%d\n" t.time)
          end;
          Buffer.add_string t.changes (change_line tr v)
        end)
      t.tracked
  end;
  t.time <- t.time + 1

let to_string t =
  let buf = Buffer.create (Buffer.length t.changes + 1024) in
  Buffer.add_string buf "$date reproduction run $end\n";
  Buffer.add_string buf "$version hwpat $end\n";
  Buffer.add_string buf "$timescale 1ns $end\n";
  Buffer.add_string buf
    (Printf.sprintf "$scope module %s $end\n"
       (sanitize_label (Circuit.name (Cyclesim.circuit t.sim))));
  List.iter
    (fun tr ->
      Buffer.add_string buf
        (Printf.sprintf "$var wire %d %s %s $end\n" (Signal.width tr.signal) tr.id
           tr.label))
    t.tracked;
  Buffer.add_string buf "$upscope $end\n$enddefinitions $end\n";
  if t.time > 0 then begin
    Buffer.add_string buf "#0\n$dumpvars\n";
    Buffer.add_buffer buf t.initial;
    Buffer.add_string buf "$end\n"
  end;
  Buffer.add_buffer buf t.changes;
  Buffer.contents buf

let write_file t path = Util.write_file path (to_string t)
