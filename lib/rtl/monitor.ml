(* Runtime protocol monitors over a Cyclesim instance. *)

type violation = { cycle : int; monitor : string; signal : string; message : string }

let pp_violation fmt v =
  Format.fprintf fmt "cycle %d: [%s] %s: %s" v.cycle v.monitor v.signal v.message

type tracked = { signal : Signal.t; label : string }

type t = {
  sim : Cyclesim.t;
  window : int;
  mutable tracked : tracked list; (* reverse attach order *)
  mutable checks : (int -> unit) list;
  mutable violations : violation list; (* newest first *)
  mutable history : (int * (int * Bits.t) list) list; (* newest first *)
  mutable ticks : int;
}

let create ?(window = 48) sim =
  {
    sim;
    window;
    tracked = [];
    checks = [];
    violations = [];
    history = [];
    ticks = 0;
  }

let violate t cycle monitor signal message =
  t.violations <- { cycle; monitor; signal; message } :: t.violations

let violations t = List.rev t.violations
let ok t = t.violations = []

let first_violation t =
  match List.rev t.violations with v :: _ -> Some v | [] -> None

let watch t label s =
  if not (List.exists (fun tr -> Signal.uid tr.signal = Signal.uid s) t.tracked)
  then t.tracked <- { signal = s; label } :: t.tracked

let peek t s = Cyclesim.peek t.sim s
let peek_bool t s = Bits.to_bool (peek t s)

(* --- Checkers ----------------------------------------------------------- *)

(* The library-wide req/ack convention (see Handshake): the requester
   holds [req] high, with any payload stable, until the cycle where
   [ack] is high; [ack] never fires without a request pending. *)
let add_handshake t ~name ?payload ~req ~ack () =
  watch t (name ^ "_req") req;
  watch t (name ^ "_ack") ack;
  Option.iter (fun p -> watch t (name ^ "_payload") p) payload;
  let prev_req = ref false and prev_ack = ref false in
  let prev_payload = ref None in
  let check cycle =
    let r = peek_bool t req and a = peek_bool t ack in
    let p = Option.map (peek t) payload in
    if a && not r then
      violate t cycle name "ack" "ack asserted with no request pending";
    if !prev_req && not !prev_ack then begin
      if not r then
        violate t cycle name "req" "request dropped before acknowledge";
      match (p, !prev_payload) with
      | Some now, Some before when r && not (Bits.equal now before) ->
        violate t cycle name "payload" "payload changed while request pending"
      | _ -> ()
    end;
    prev_req := r;
    prev_ack := a;
    prev_payload := p
  in
  t.checks <- check :: t.checks

(* Iterator-op sequencing: each operation obeys the handshake rule and
   operations declared mutually exclusive never fire together. *)
let add_iterator t ~name ?(mutex = []) ~ops () =
  List.iter
    (fun (op, req, ack) -> add_handshake t ~name:(name ^ "." ^ op) ~req ~ack ())
    ops;
  List.iter
    (fun (label, a, b) ->
      watch t (name ^ "." ^ label ^ "_a") a;
      watch t (name ^ "." ^ label ^ "_b") b;
      let check cycle =
        if peek_bool t a && peek_bool t b then
          violate t cycle name label "mutually exclusive operations both asserted"
      in
      t.checks <- check :: t.checks)
    mutex

(* FIFO/queue occupancy invariants: the count tracks the empty flag,
   never steps by more than one element per cycle, never exceeds the
   capacity (when known), and full/empty never hold together. *)
let add_fifo t ~name ?depth ?full ~count ~empty () =
  watch t (name ^ "_count") count;
  watch t (name ^ "_empty") empty;
  Option.iter (fun f -> watch t (name ^ "_full") f) full;
  let prev_count = ref None in
  let check cycle =
    let c = Bits.to_int (peek t count) in
    let e = peek_bool t empty in
    if e <> (c = 0) then
      violate t cycle name "empty"
        (Printf.sprintf "empty flag %b inconsistent with count %d" e c);
    (match full with
    | Some f ->
      if peek_bool t f && e then
        violate t cycle name "full" "full and empty asserted together"
    | None -> ());
    (match depth with
    | Some d ->
      if c > d then
        violate t cycle name "count"
          (Printf.sprintf "occupancy %d exceeds capacity %d (overflow)" c d)
    | None -> ());
    (match !prev_count with
    | Some p ->
      if abs (c - p) > 1 then
        violate t cycle name "count"
          (Printf.sprintf "occupancy stepped %d -> %d in one cycle" p c)
    | None -> ());
    prev_count := Some c
  in
  t.checks <- check :: t.checks

(* --- Automatic attachment by naming convention -------------------------- *)

let signals_by_name circuit =
  let tbl = Hashtbl.create 97 in
  let note n s = if not (Hashtbl.mem tbl n) then Hashtbl.replace tbl n s in
  List.iter
    (fun s -> List.iter (fun n -> note n s) (Signal.names s))
    (Circuit.signals circuit);
  (* Input ports carry their name in the port list, not on the node. *)
  List.iter (fun (n, s) -> note n s) (Circuit.inputs circuit);
  tbl

let strip_suffix ~suffix name =
  let nl = String.length name and sl = String.length suffix in
  if nl > sl && String.sub name (nl - sl) sl = suffix then
    Some (String.sub name 0 (nl - sl))
  else None

(* The naming-convention scan, shared between the scalar and batched
   monitors: every [X_req]/[X_ack] pair is a handshake, every
   [X_count]/[X_empty] pair (plus [X_full] when present) a FIFO. The
   name sort fixes attach order, so scalar and batched runs check in
   the same sequence. *)
let auto_specs circuit =
  let tbl = signals_by_name circuit in
  let names = Hashtbl.fold (fun n _ acc -> n :: acc) tbl [] in
  let names = List.sort_uniq compare names in
  let handshakes =
    List.filter_map
      (fun n ->
        match strip_suffix ~suffix:"_req" n with
        | Some base ->
          Option.map
            (fun ack -> (base, Hashtbl.find tbl n, ack))
            (Hashtbl.find_opt tbl (base ^ "_ack"))
        | None -> None)
      names
  in
  let fifos =
    List.filter_map
      (fun n ->
        match strip_suffix ~suffix:"_count" n with
        | Some base ->
          Option.map
            (fun empty ->
              (base, Hashtbl.find tbl n, empty, Hashtbl.find_opt tbl (base ^ "_full")))
            (Hashtbl.find_opt tbl (base ^ "_empty"))
        | None -> None)
      names
  in
  (handshakes, fifos)

(* Attach monitors by scanning the circuit's signal names. Returns how
   many monitors were attached. *)
let add_auto t =
  let handshakes, fifos = auto_specs (Cyclesim.circuit t.sim) in
  List.iter
    (fun (base, req, ack) -> add_handshake t ~name:base ~req ~ack ())
    handshakes;
  List.iter
    (fun (base, count, empty, full) -> add_fifo t ~name:base ?full ~count ~empty ())
    fifos;
  List.length handshakes + List.length fifos

(* --- Sampling ----------------------------------------------------------- *)

(* Call once per simulation step, after [Cyclesim.cycle]: runs every
   attached check against the settled values of the cycle that just
   completed and records watched signals in the history ring. *)
let sample t =
  let cycle = t.ticks in
  List.iter (fun check -> check cycle) (List.rev t.checks);
  let snapshot =
    List.rev_map (fun tr -> (Signal.uid tr.signal, peek t tr.signal)) t.tracked
  in
  t.history <- (cycle, snapshot) :: t.history;
  let rec trim n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: trim (n - 1) rest
  in
  t.history <- trim t.window t.history;
  t.ticks <- t.ticks + 1

let ticks t = t.ticks

(* --- VCD window dump ---------------------------------------------------- *)

let vcd_id i =
  (* Printable short identifiers starting at '!' as in Vcd. *)
  let base = Char.code '!' in
  let range = 94 in
  if i < range then String.make 1 (Char.chr (base + i))
  else
    String.make 1 (Char.chr (base + (i / range)))
    ^ String.make 1 (Char.chr (base + (i mod range)))

let vcd_value b =
  if Bits.width b = 1 then (if Bits.to_bool b then "1" else "0")
  else "b" ^ Bits.to_string b ^ " "

(* Render the retained window of watched signals as VCD text, typically
   written to a file after a violation so the offending cycles can be
   inspected in a waveform viewer. *)
let vcd_window t =
  let buf = Buffer.create 1024 in
  let tracked = List.rev t.tracked in
  let ids = List.mapi (fun i tr -> (Signal.uid tr.signal, (vcd_id i, tr))) tracked in
  Buffer.add_string buf "$timescale 1 ns $end\n";
  Buffer.add_string buf "$scope module monitor $end\n";
  List.iter
    (fun (_, (id, tr)) ->
      Buffer.add_string buf
        (Printf.sprintf "$var wire %d %s %s $end\n" (Signal.width tr.signal) id
           tr.label))
    ids;
  Buffer.add_string buf "$upscope $end\n$enddefinitions $end\n";
  List.iter
    (fun (cycle, snapshot) ->
      Buffer.add_string buf (Printf.sprintf "#%d\n" cycle);
      List.iter
        (fun (uid, (id, _)) ->
          match List.assoc_opt uid snapshot with
          | Some b -> Buffer.add_string buf (vcd_value b ^ id ^ "\n")
          | None -> ())
        ids)
    (List.rev t.history);
  Buffer.contents buf

(* --- Batched monitors ----------------------------------------------------- *)

(* The same checkers evaluated on the bit-planes of a batched engine:
   one pass over a handful of 64-bit words covers every lane at once,
   and lanes are only touched individually when a rule's violation
   mask is non-zero (rare — fault campaigns are mostly violation-free
   cycles). Each rule reproduces the scalar checker bit for bit, in
   the same order, with the same message text, so a lane's violation
   list is identical to what a scalar {!t} over that lane would have
   recorded. No waveform history is retained: campaign classification
   never renders a VCD window, and dropping the per-lane snapshot is
   most of the batching win. *)
module Batch = struct
  type check = active:int64 -> cycle:int -> unit

  type bt = {
    sb : Simbatch.t;
    mutable checks : check list; (* attach order *)
    violations : violation list array; (* newest first, per lane *)
  }

  let create sb =
    { sb; checks = []; violations = Array.make (Simbatch.lanes sb) [] }

  let violations t ~lane = List.rev t.violations.(lane)
  let ok t ~lane = t.violations.(lane) = []

  let first_violation t ~lane =
    match List.rev t.violations.(lane) with v :: _ -> Some v | [] -> None

  let violate t lane cycle monitor signal message =
    t.violations.(lane) <- { cycle; monitor; signal; message } :: t.violations.(lane)

  let iter_lanes m f =
    if not (Int64.equal m 0L) then
      for l = 0 to 63 do
        if Int64.logand (Int64.shift_right_logical m l) 1L = 1L then f l
      done

  (* Lane-wise truthiness: the OR of the signal's planes — the batched
     [peek_bool]. *)
  let or_planes t i w =
    let acc = ref 0L in
    for b = 0 to w - 1 do
      acc := Int64.logor !acc (Simbatch.read_plane t.sb i ~plane:b)
    done;
    !acc

  (* Per-lane small-integer readback, for violation message text only. *)
  let lane_int planes n l =
    let v = ref 0 in
    for b = 0 to n - 1 do
      if Int64.logand (Int64.shift_right_logical planes.(b) l) 1L = 1L then
        v := !v lor (1 lsl b)
    done;
    !v

  let add_handshake t ~name ?payload ~req ~ack () =
    let ri = Simbatch.node_index t.sb req and rw = Signal.width req in
    let ai = Simbatch.node_index t.sb ack and aw = Signal.width ack in
    let pay =
      Option.map
        (fun p ->
          ( Simbatch.node_index t.sb p,
            Signal.width p,
            Array.make (Signal.width p) 0L ))
        payload
    in
    let prev_req = ref 0L and prev_ack = ref 0L in
    let check ~active ~cycle =
      let r = or_planes t ri rw and a = or_planes t ai aw in
      iter_lanes
        (Int64.logand (Int64.logand a (Int64.lognot r)) active)
        (fun l ->
          violate t l cycle name "ack" "ack asserted with no request pending");
      let pend = Int64.logand !prev_req (Int64.lognot !prev_ack) in
      iter_lanes
        (Int64.logand (Int64.logand pend (Int64.lognot r)) active)
        (fun l ->
          violate t l cycle name "req" "request dropped before acknowledge");
      (match pay with
      | Some (pi, pw, prev) ->
        (* First sample can never fire the rule (pend is empty until a
           request has been seen), matching the scalar checker's
           [prev_payload = None] guard. *)
        let diff = ref 0L in
        for b = 0 to pw - 1 do
          diff :=
            Int64.logor !diff
              (Int64.logxor (Simbatch.read_plane t.sb pi ~plane:b) prev.(b))
        done;
        iter_lanes
          (Int64.logand (Int64.logand (Int64.logand pend r) !diff) active)
          (fun l ->
            violate t l cycle name "payload"
              "payload changed while request pending");
        for b = 0 to pw - 1 do
          prev.(b) <- Simbatch.read_plane t.sb pi ~plane:b
        done
      | None -> ());
      prev_req := r;
      prev_ack := a
    in
    t.checks <- t.checks @ [ check ]

  let add_fifo t ~name ?depth ?full ~count ~empty () =
    let ci = Simbatch.node_index t.sb count and cw = Signal.width count in
    let ei = Simbatch.node_index t.sb empty and ew = Signal.width empty in
    let ful =
      Option.map (fun f -> (Simbatch.node_index t.sb f, Signal.width f)) full
    in
    let c_planes = Array.make cw 0L in
    (* The step rule subtracts over [cw + 1] planes (both operands
       zero-extended), so a full-range jump like 0 -> 2^cw - 1 can
       never alias the difference -1. *)
    let prev = Array.make (cw + 1) 0L in
    let dd = Array.make (cw + 1) 0L in
    let has_prev = ref 0L in
    let check ~active ~cycle =
      for b = 0 to cw - 1 do
        c_planes.(b) <- Simbatch.read_plane t.sb ci ~plane:b
      done;
      let nonzero = ref 0L in
      for b = 0 to cw - 1 do
        nonzero := Int64.logor !nonzero c_planes.(b)
      done;
      let e = or_planes t ei ew in
      iter_lanes
        (Int64.logand (Int64.logxor e (Int64.lognot !nonzero)) active)
        (fun l ->
          let eb = Int64.logand (Int64.shift_right_logical e l) 1L = 1L in
          violate t l cycle name "empty"
            (Printf.sprintf "empty flag %b inconsistent with count %d" eb
               (lane_int c_planes cw l)));
      (match ful with
      | Some (fi, fw) ->
        let fm = or_planes t fi fw in
        iter_lanes
          (Int64.logand (Int64.logand fm e) active)
          (fun l ->
            violate t l cycle name "full" "full and empty asserted together")
      | None -> ());
      (match depth with
      | Some d ->
        (* Unsigned [count > depth], LSB-to-MSB over enough planes to
           cover both operands (count planes past [cw] are zero). *)
        let np =
          let rec bits k n = if n = 0 then k else bits (k + 1) (n lsr 1) in
          max cw (bits 0 d)
        in
        let gt = ref 0L in
        for b = 0 to np - 1 do
          let cp = if b < cw then c_planes.(b) else 0L in
          let dp = if b < 62 && (d lsr b) land 1 = 1 then -1L else 0L in
          gt :=
            Int64.logor
              (Int64.logand cp (Int64.lognot dp))
              (Int64.logand (Int64.lognot (Int64.logxor cp dp)) !gt)
        done;
        iter_lanes (Int64.logand !gt active) (fun l ->
            violate t l cycle name "count"
              (Printf.sprintf "occupancy %d exceeds capacity %d (overflow)"
                 (lane_int c_planes cw l) d))
      | None -> ());
      (* |count - prev| > 1: plane-serial subtract, then the difference
         must be 0, 1 or -1 (all-ones). *)
      let carry = ref (-1L) in
      for b = 0 to cw do
        let x = if b < cw then c_planes.(b) else 0L in
        let y = Int64.lognot prev.(b) in
        let axy = Int64.logxor x y in
        dd.(b) <- Int64.logxor axy !carry;
        carry := Int64.logor (Int64.logand x y) (Int64.logand !carry axy)
      done;
      let eq0 = ref (-1L) and eq1 = ref (-1L) and eqm1 = ref (-1L) in
      for b = 0 to cw do
        eq0 := Int64.logand !eq0 (Int64.lognot dd.(b));
        eq1 := Int64.logand !eq1 (if b = 0 then dd.(b) else Int64.lognot dd.(b));
        eqm1 := Int64.logand !eqm1 dd.(b)
      done;
      iter_lanes
        (Int64.logand
           (Int64.logand
              (Int64.lognot (Int64.logor !eq0 (Int64.logor !eq1 !eqm1)))
              !has_prev)
           active)
        (fun l ->
          violate t l cycle name "count"
            (Printf.sprintf "occupancy stepped %d -> %d in one cycle"
               (lane_int prev cw l) (lane_int c_planes cw l)));
      for b = 0 to cw - 1 do
        prev.(b) <- c_planes.(b)
      done;
      has_prev := Int64.logor !has_prev active
    in
    t.checks <- t.checks @ [ check ]

  let add_auto t =
    let handshakes, fifos = auto_specs (Simbatch.circuit t.sb) in
    List.iter
      (fun (base, req, ack) -> add_handshake t ~name:base ~req ~ack ())
      handshakes;
    List.iter
      (fun (base, count, empty, full) ->
        add_fifo t ~name:base ?full ~count ~empty ())
      fifos;
    List.length handshakes + List.length fifos

  (* Call once per batch cycle, after [Simbatch.cycle], with the mask
     of still-active lanes: checks run for exactly the lanes a scalar
     campaign would still be sampling. *)
  let sample t ~active ~cycle =
    List.iter (fun check -> check ~active ~cycle) t.checks
end
