(* Runtime protocol monitors over a Cyclesim instance. *)

type violation = { cycle : int; monitor : string; signal : string; message : string }

let pp_violation fmt v =
  Format.fprintf fmt "cycle %d: [%s] %s: %s" v.cycle v.monitor v.signal v.message

type tracked = { signal : Signal.t; label : string }

type t = {
  sim : Cyclesim.t;
  window : int;
  mutable tracked : tracked list; (* reverse attach order *)
  mutable checks : (int -> unit) list;
  mutable violations : violation list; (* newest first *)
  mutable history : (int * (int * Bits.t) list) list; (* newest first *)
  mutable ticks : int;
}

let create ?(window = 48) sim =
  {
    sim;
    window;
    tracked = [];
    checks = [];
    violations = [];
    history = [];
    ticks = 0;
  }

let violate t cycle monitor signal message =
  t.violations <- { cycle; monitor; signal; message } :: t.violations

let violations t = List.rev t.violations
let ok t = t.violations = []

let first_violation t =
  match List.rev t.violations with v :: _ -> Some v | [] -> None

let watch t label s =
  if not (List.exists (fun tr -> Signal.uid tr.signal = Signal.uid s) t.tracked)
  then t.tracked <- { signal = s; label } :: t.tracked

let peek t s = Cyclesim.peek t.sim s
let peek_bool t s = Bits.to_bool (peek t s)

(* --- Checkers ----------------------------------------------------------- *)

(* The library-wide req/ack convention (see Handshake): the requester
   holds [req] high, with any payload stable, until the cycle where
   [ack] is high; [ack] never fires without a request pending. *)
let add_handshake t ~name ?payload ~req ~ack () =
  watch t (name ^ "_req") req;
  watch t (name ^ "_ack") ack;
  Option.iter (fun p -> watch t (name ^ "_payload") p) payload;
  let prev_req = ref false and prev_ack = ref false in
  let prev_payload = ref None in
  let check cycle =
    let r = peek_bool t req and a = peek_bool t ack in
    let p = Option.map (peek t) payload in
    if a && not r then
      violate t cycle name "ack" "ack asserted with no request pending";
    if !prev_req && not !prev_ack then begin
      if not r then
        violate t cycle name "req" "request dropped before acknowledge";
      match (p, !prev_payload) with
      | Some now, Some before when r && not (Bits.equal now before) ->
        violate t cycle name "payload" "payload changed while request pending"
      | _ -> ()
    end;
    prev_req := r;
    prev_ack := a;
    prev_payload := p
  in
  t.checks <- check :: t.checks

(* Iterator-op sequencing: each operation obeys the handshake rule and
   operations declared mutually exclusive never fire together. *)
let add_iterator t ~name ?(mutex = []) ~ops () =
  List.iter
    (fun (op, req, ack) -> add_handshake t ~name:(name ^ "." ^ op) ~req ~ack ())
    ops;
  List.iter
    (fun (label, a, b) ->
      watch t (name ^ "." ^ label ^ "_a") a;
      watch t (name ^ "." ^ label ^ "_b") b;
      let check cycle =
        if peek_bool t a && peek_bool t b then
          violate t cycle name label "mutually exclusive operations both asserted"
      in
      t.checks <- check :: t.checks)
    mutex

(* FIFO/queue occupancy invariants: the count tracks the empty flag,
   never steps by more than one element per cycle, never exceeds the
   capacity (when known), and full/empty never hold together. *)
let add_fifo t ~name ?depth ?full ~count ~empty () =
  watch t (name ^ "_count") count;
  watch t (name ^ "_empty") empty;
  Option.iter (fun f -> watch t (name ^ "_full") f) full;
  let prev_count = ref None in
  let check cycle =
    let c = Bits.to_int (peek t count) in
    let e = peek_bool t empty in
    if e <> (c = 0) then
      violate t cycle name "empty"
        (Printf.sprintf "empty flag %b inconsistent with count %d" e c);
    (match full with
    | Some f ->
      if peek_bool t f && e then
        violate t cycle name "full" "full and empty asserted together"
    | None -> ());
    (match depth with
    | Some d ->
      if c > d then
        violate t cycle name "count"
          (Printf.sprintf "occupancy %d exceeds capacity %d (overflow)" c d)
    | None -> ());
    (match !prev_count with
    | Some p ->
      if abs (c - p) > 1 then
        violate t cycle name "count"
          (Printf.sprintf "occupancy stepped %d -> %d in one cycle" p c)
    | None -> ());
    prev_count := Some c
  in
  t.checks <- check :: t.checks

(* --- Automatic attachment by naming convention -------------------------- *)

let signals_by_name circuit =
  let tbl = Hashtbl.create 97 in
  let note n s = if not (Hashtbl.mem tbl n) then Hashtbl.replace tbl n s in
  List.iter
    (fun s -> List.iter (fun n -> note n s) (Signal.names s))
    (Circuit.signals circuit);
  (* Input ports carry their name in the port list, not on the node. *)
  List.iter (fun (n, s) -> note n s) (Circuit.inputs circuit);
  tbl

let strip_suffix ~suffix name =
  let nl = String.length name and sl = String.length suffix in
  if nl > sl && String.sub name (nl - sl) sl = suffix then
    Some (String.sub name 0 (nl - sl))
  else None

(* Attach monitors by scanning the circuit's signal names: every
   [X_req]/[X_ack] pair gets a handshake checker and every
   [X_count]/[X_empty] pair (plus [X_full] when present) gets the
   occupancy invariants. Returns how many monitors were attached. *)
let add_auto t =
  let tbl = signals_by_name (Cyclesim.circuit t.sim) in
  let names = Hashtbl.fold (fun n _ acc -> n :: acc) tbl [] in
  let names = List.sort_uniq compare names in
  let attached = ref 0 in
  List.iter
    (fun n ->
      match strip_suffix ~suffix:"_req" n with
      | Some base -> (
        match Hashtbl.find_opt tbl (base ^ "_ack") with
        | Some ack ->
          add_handshake t ~name:base ~req:(Hashtbl.find tbl n) ~ack ();
          incr attached
        | None -> ())
      | None -> ())
    names;
  List.iter
    (fun n ->
      match strip_suffix ~suffix:"_count" n with
      | Some base -> (
        match Hashtbl.find_opt tbl (base ^ "_empty") with
        | Some empty ->
          add_fifo t ~name:base
            ?full:(Hashtbl.find_opt tbl (base ^ "_full"))
            ~count:(Hashtbl.find tbl n) ~empty ();
          incr attached
        | None -> ())
      | None -> ())
    names;
  !attached

(* --- Sampling ----------------------------------------------------------- *)

(* Call once per simulation step, after [Cyclesim.cycle]: runs every
   attached check against the settled values of the cycle that just
   completed and records watched signals in the history ring. *)
let sample t =
  let cycle = t.ticks in
  List.iter (fun check -> check cycle) (List.rev t.checks);
  let snapshot =
    List.rev_map (fun tr -> (Signal.uid tr.signal, peek t tr.signal)) t.tracked
  in
  t.history <- (cycle, snapshot) :: t.history;
  let rec trim n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: trim (n - 1) rest
  in
  t.history <- trim t.window t.history;
  t.ticks <- t.ticks + 1

let ticks t = t.ticks

(* --- VCD window dump ---------------------------------------------------- *)

let vcd_id i =
  (* Printable short identifiers starting at '!' as in Vcd. *)
  let base = Char.code '!' in
  let range = 94 in
  if i < range then String.make 1 (Char.chr (base + i))
  else
    String.make 1 (Char.chr (base + (i / range)))
    ^ String.make 1 (Char.chr (base + (i mod range)))

let vcd_value b =
  if Bits.width b = 1 then (if Bits.to_bool b then "1" else "0")
  else "b" ^ Bits.to_string b ^ " "

(* Render the retained window of watched signals as VCD text, typically
   written to a file after a violation so the offending cycles can be
   inspected in a waveform viewer. *)
let vcd_window t =
  let buf = Buffer.create 1024 in
  let tracked = List.rev t.tracked in
  let ids = List.mapi (fun i tr -> (Signal.uid tr.signal, (vcd_id i, tr))) tracked in
  Buffer.add_string buf "$timescale 1 ns $end\n";
  Buffer.add_string buf "$scope module monitor $end\n";
  List.iter
    (fun (_, (id, tr)) ->
      Buffer.add_string buf
        (Printf.sprintf "$var wire %d %s %s $end\n" (Signal.width tr.signal) id
           tr.label))
    ids;
  Buffer.add_string buf "$upscope $end\n$enddefinitions $end\n";
  List.iter
    (fun (cycle, snapshot) ->
      Buffer.add_string buf (Printf.sprintf "#%d\n" cycle);
      List.iter
        (fun (uid, (id, _)) ->
          match List.assoc_opt uid snapshot with
          | Some b -> Buffer.add_string buf (vcd_value b ^ id ^ "\n")
          | None -> ())
        ids)
    (List.rev t.history);
  Buffer.contents buf
