(** Cycle-accurate simulation of a {!Circuit.t}.

    The simulator evaluates the combinational graph from the current
    register/memory state and the input port values, then performs the
    clock edge (register updates, memory writes, synchronous reads).

    Usage per cycle: write input refs (or {!drive}), call {!cycle},
    read output refs. Output refs hold the settled pre-edge values —
    what a register downstream would capture at that edge.

    Two engines implement these semantics. [Compiled] (the default) is
    {!Simcompile}: a one-time compile pass producing specialized
    per-node closures with activity-based skipping; steady-state cycles
    allocate near zero. [Reference] is the original tree-walking
    interpreter, kept as the trusted baseline the compiled engine is
    differentially tested against. Both are observationally identical
    through this API. *)

type t

type engine =
  | Reference  (** naive interpreter — slow, auditable baseline *)
  | Compiled  (** compiled levelized engine with activity skipping *)

val create : ?engine:engine -> Circuit.t -> t
(** Defaults to [Compiled]. Equivalent to [of_plan (plan circuit)]. *)

val engine : t -> engine

(** {1 Shared compiled plans}

    The expensive half of [create] — elaboration bookkeeping and (for
    the compiled engine) the netlist compile pass — is reified as an
    immutable {!plan}. Campaigns that simulate one circuit
    configuration many times build the plan once and stamp out a cheap
    instance per worker domain; a plan holds no mutable simulation
    state and is safe to share read-only across domains, while
    instances never alias each other's buffers. *)

type plan

val plan : ?engine:engine -> Circuit.t -> plan
(** Compile a shareable plan. Defaults to [Compiled]. *)

val of_plan : plan -> t
(** A fresh simulator over the plan: power-on state, zeroed inputs and
    memories, no forces. Instances are fully independent. *)

val plan_engine : plan -> engine
val plan_circuit : plan -> Circuit.t

(** {1 Batched (bit-parallel) simulation}

    {!Simbatch} packs up to 64 independent instances of the circuit
    into the bit-lanes of each machine word and evaluates them
    together. [instantiate_batched] builds a batch from a shared
    compiled plan; [lane_view] presents one lane through the scalar
    [t] API so monitors, fault injectors and stimulus drivers run
    unchanged per lane.

    The one global operation is the clock: {!cycle}, {!settle} and
    {!reset} on a lane view advance the {e whole batch}. A batch
    driver must therefore clock once per time step for all lanes
    (e.g. via any single lane view), never once per lane. Everything
    else on a lane view — ports, [peek]/[poke], [force]/[release],
    [memory_contents] — touches only that lane. *)

val instantiate_batched : ?lanes:int -> plan -> Simbatch.t
(** Fresh batched simulator over a compiled plan. [lanes] defaults to
    {!Simbatch.lane_bits} (64) and must be within that range. Raises
    [Invalid_argument] on a [Reference] plan: only the compiled engine
    has a batched form. *)

val lane_view : Simbatch.t -> int -> t
(** Scalar view of one lane. Raises on an out-of-range lane. *)

val circuit : t -> Circuit.t

val in_port : t -> string -> Bits.t ref
(** Mutable input port value. Raises if the name is unknown. Widths are
    checked when the cycle runs; prefer {!drive} to catch a wrong-width
    value at the call site that wrote it. *)

val drive : t -> string -> Bits.t -> unit
(** [drive t name value] sets the input port, validating the width
    immediately — raises [Invalid_argument] naming the port if [value]
    is not the port's declared width, instead of failing later inside
    the next settle. *)

val out_port : t -> string -> Bits.t ref
(** Settled output value as of the last {!cycle}. Initialized to zeros
    at the port's declared width before the first settle. *)

val cycle : t -> unit
(** Settle combinational logic, record outputs, then apply the clock
    edge. *)

val settle : t -> unit
(** Settle combinational logic and refresh the output refs without
    clocking — useful to observe outputs after changing inputs
    mid-cycle. *)

val reset : t -> unit
(** Restore registers to their init values, clear memories to zero,
    release all forced signals, drive all input ports back to zero,
    and re-settle. After [reset] a simulator is indistinguishable from
    a freshly created one — the property per-shard instance reuse in
    campaigns relies on. *)

(** {1 Fault-injection hooks}

    Used by {!Fault} to model stuck-at faults and single-event upsets;
    see that module for campaign-level helpers. *)

val force : t -> Signal.t -> Bits.t -> unit
(** Stuck-at override: from the next settle on, the signal evaluates to
    the given value regardless of its drivers, until {!release}d.
    Registers keep updating their internal state from their (possibly
    forced) inputs; only the forced node's observed value is pinned. *)

val release : t -> Signal.t -> unit
val release_all : t -> unit

val forced : t -> Signal.t -> Bits.t option
(** The active override on a signal, if any. *)

val peek_state : t -> Signal.t -> Bits.t
(** Internal state of a register or synchronous-read node (the value it
    will present at the next settle). Raises on stateless nodes. *)

val poke_state : t -> Signal.t -> Bits.t -> unit
(** Overwrite that state — an SEU bit-flip is
    [poke_state sim r (Bits.logxor (peek_state sim r) mask)]. Takes
    effect at the next settle. *)

val cycle_count : t -> int

val peek : t -> Signal.t -> Bits.t
(** Current settled value of any signal in the circuit (for debugging
    and waveform dumps). Raises if the signal is not in the circuit. *)

val memory_contents : t -> Signal.memory -> Bits.t array
(** Live view of a memory's backing store. Elements may be replaced
    (fault injection does); the compiled engine conservatively assumes
    the caller will and re-reads affected nodes at the next settle. *)

(** {1 Activity instrumentation} *)

type activity = {
  settles : int;  (** settle passes run so far *)
  node_evals : int;  (** node evaluations actually performed *)
  total_nodes : int;  (** nodes in the schedule *)
  kind_evals : (string * int) list;
      (** [node_evals] bucketed by {!Signal.prim_kind_names}; zero
          buckets omitted *)
}

val activity : t -> activity
(** Monotonic counters. On the compiled engine, [node_evals] grows only
    for nodes whose sources changed — the skipping tests and benches
    assert on its deltas. On the reference engine every settle
    evaluates every node (so [kind_evals] is the per-kind node count
    times [settles]). *)
