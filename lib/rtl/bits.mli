(** Arbitrary-width immutable bit vectors.

    Values are unsigned two's-complement words of a fixed [width] (at
    least 1 bit). All arithmetic is modulo [2^width]; all comparisons
    are unsigned unless the function name says otherwise. Bit 0 is the
    least significant bit. *)

type t

(** {1 Construction} *)

val width : t -> int

val zero : int -> t
(** [zero w] is the all-zeros vector of width [w]. *)

val ones : int -> t
(** [ones w] is the all-ones vector of width [w]. *)

val one : int -> t
(** [one w] is the value 1 at width [w]. *)

val of_int : width:int -> int -> t
(** [of_int ~width n] truncates [n] (taken as an infinite two's
    complement integer) to [width] bits. *)

val of_int64 : width:int -> int64 -> t

val of_string : string -> t
(** [of_string "0110"] parses a binary literal, MSB first. Underscores
    are ignored. Raises [Invalid_argument] on empty or non-binary
    input. *)

val of_bool : bool -> t
(** 1-bit vector: [true] is 1, [false] is 0. *)

val random : width:int -> t
(** Uniformly random vector (uses [Random] global state). *)

(** {1 Conversion} *)

val to_int : t -> int
(** Low [Sys.int_size - 1] bits as a non-negative OCaml int. Raises
    [Invalid_argument] if the value does not fit. *)

val to_int_opt : t -> int option
(** [Some v] when the value fits, [None] otherwise — for callers that
    have their own out-of-range policy (e.g. address bound checks).
    There is deliberately no truncating conversion: silently dropping
    high bits of wide values corrupted diagnostics. *)

val to_int64 : t -> int64
(** Low 64 bits. *)

val to_string : t -> string
(** Binary, MSB first, exactly [width] characters. *)

val to_bool : t -> bool
(** [true] iff any bit is set. *)

val pp : Format.formatter -> t -> unit

(** {1 Bit access and structure} *)

val bit : t -> int -> bool
(** [bit t i] is bit [i]; raises [Invalid_argument] if out of range. *)

val select : t -> high:int -> low:int -> t
(** [select t ~high ~low] extracts bits [high..low] inclusive. *)

val msb : t -> bool
val lsb : t -> bool

val concat_msb : t list -> t
(** [concat_msb [a; b; c]] has [a] in the most significant position. *)

val repeat : t -> int -> t
(** [repeat t n] concatenates [n] copies of [t]; [n >= 1]. *)

val uresize : t -> int -> t
(** Zero-extend or truncate to the given width. *)

val sresize : t -> int -> t
(** Sign-extend or truncate to the given width. *)

(** {1 Arithmetic (widths must match; result has the same width)} *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
(** Truncating multiply: result width = width of the operands. *)

val neg : t -> t

(** {1 Logic} *)

val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t
val lognot : t -> t

val sll : t -> int -> t
(** Shift left logical by a constant; result width unchanged.

    Shift amounts saturate: for [n >= width] the result is all zeros
    ([sll]/[srl]) or all sign bits ([sra]), exactly as if the shift had
    been applied one bit at a time. Negative shift amounts raise
    [Invalid_argument]. The simulation engines and the HDL back-ends
    share these semantics (see the shift consistency test in
    test/test_backends.ml). *)

val srl : t -> int -> t
(** Shift right logical; zero-fill, saturating like {!sll}. *)

val sra : t -> int -> t
(** Shift right arithmetic; sign-fill, [n >= width] yields a vector of
    copies of the original sign bit. *)

(** {1 Comparison (unsigned; result is a 1-bit vector)} *)

val eq : t -> t -> t
val lt : t -> t -> t

val equal : t -> t -> bool
(** Structural equality (same width and value). *)

val compare : t -> t -> int
(** Unsigned comparison of same-width vectors. *)

(** {1 Destination-buffer variants}

    In-place operations for the compiled simulator's hot loop: each
    writes its result into [dst], which must have been created at
    exactly the result width, instead of allocating a fresh vector.
    The element-wise operations ([add_into] .. [lognot_into],
    [eq_into], [lt_into]) tolerate [dst] aliasing an operand's storage;
    [select_into] and [concat_msb_into] do not. All raise
    [Invalid_argument] on width mismatches, like their allocating
    counterparts. *)

val copy : t -> t
(** A physically fresh vector with the same width and value. *)

val blit : src:t -> dst:t -> unit
(** Overwrite [dst]'s value with [src]'s. Widths must match. *)

val blit_changed : src:t -> dst:t -> bool
(** Copy [src] into [dst] and report whether [dst]'s value changed, in
    a single traversal. Widths must match. *)

val add_into : dst:t -> t -> t -> unit
val sub_into : dst:t -> t -> t -> unit
val mul_into : dst:t -> t -> t -> unit
val logand_into : dst:t -> t -> t -> unit
val logor_into : dst:t -> t -> t -> unit
val logxor_into : dst:t -> t -> t -> unit
val lognot_into : dst:t -> t -> unit

val eq_into : dst:t -> t -> t -> unit
(** [dst] must be 1 bit wide. *)

val lt_into : dst:t -> t -> t -> unit
(** [dst] must be 1 bit wide. *)

val select_into : dst:t -> t -> high:int -> low:int -> unit
(** [dst] must be [high - low + 1] bits wide and must not alias the
    source. *)

val concat_msb_into : dst:t -> t array -> unit
(** Parts are given MSB first, as in {!concat_msb}; [dst] must have the
    summed width and must not alias any part. *)

(** {1 Limb (bit-plane) access}

    Raw access to the underlying 64-bit limbs, LSB limb first. The
    batched simulator lays a width-[W] signal over 64 lanes out as a
    width-[W*64] vector whose limb [b] is the bit-plane of bit [b]
    across all lanes; its plane-serial kernels (ripple add, compare,
    mux masks) work limb-at-a-time through these. *)

val limb_count : t -> int
(** Number of 64-bit limbs backing the vector. *)

val get_limb : t -> int -> int64
(** [get_limb t i] is limb [i] (bits [64*i .. 64*i+63], zero-padded in
    the top limb). *)

val set_limb : t -> int -> int64 -> unit
(** [set_limb t i v] overwrites limb [i]; bits beyond [width] in the
    top limb are masked off to keep the vector normalized. *)

val unsafe_get_limb : t -> int -> int64
(** [get_limb] without the bounds check. The caller must guarantee
    [0 <= i < limb_count t]. *)

val unsafe_set_limb : t -> int -> int64 -> unit
(** [set_limb] without the bounds check or the top-limb masking. Only
    sound when [0 <= i < limb_count t] {e and} the width is a whole
    number of limbs ([width mod 64 = 0]), as every batched simulation
    buffer is — an unnormalized top limb breaks [equal]/[compare]. *)

val unsafe_data : t -> int64 array
(** The backing limb array itself, aliased, not copied. For inner-loop
    kernels (the batched simulation engine) that cannot afford a call
    per limb access. Writing through it bypasses normalization: only
    sound under the same whole-limb-width condition as
    {!unsafe_set_limb}. *)

(** {1 Reduction} *)

val reduce_or : t -> t
(** 1-bit OR of all bits. *)

val reduce_and : t -> t
val popcount : t -> int

(** {1 Signed views} *)

val to_signed_int : t -> int
(** Interpret as two's complement; raises if it does not fit an int. *)
