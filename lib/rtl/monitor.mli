(** Runtime protocol monitors attached to a {!Cyclesim} run.

    A monitor watches settled signal values each cycle and records
    violations of the library's interface conventions:

    - {!add_handshake} — the req/ack rules documented in the device
      layer: a request is held until acknowledged, its payload stays
      stable while pending, and an ack never fires with no request.
    - {!add_iterator} — per-operation handshakes plus mutual exclusion
      between operations that must never fire together.
    - {!add_fifo} — occupancy invariants: [empty] tracks a zero count,
      the count moves by at most one element per cycle, never exceeds
      the declared capacity, and [full]/[empty] never hold together.
    - {!add_auto} — scans the circuit's signal names and attaches the
      above wherever the [_req]/[_ack] and [_count]/[_empty]/[_full]
      naming conventions appear.

    Drive the simulation as usual and call {!sample} once after every
    [Cyclesim.cycle]; {!violations} then lists each breach with the
    first offending cycle and signal, and {!vcd_window} renders the
    last few cycles of every watched signal as VCD text for waveform
    inspection. *)

type t

type violation = {
  cycle : int;  (** Monitor tick (number of {!sample} calls before it). *)
  monitor : string;  (** Name given when the checker was attached. *)
  signal : string;  (** Role of the offending signal, e.g. ["ack"]. *)
  message : string;
}

val pp_violation : Format.formatter -> violation -> unit

val create : ?window:int -> Cyclesim.t -> t
(** [window] bounds how many cycles of watched-signal history are
    retained for {!vcd_window} (default 48). *)

val add_handshake :
  t -> name:string -> ?payload:Signal.t -> req:Signal.t -> ack:Signal.t -> unit -> unit

val add_iterator :
  t ->
  name:string ->
  ?mutex:(string * Signal.t * Signal.t) list ->
  ops:(string * Signal.t * Signal.t) list ->
  unit ->
  unit
(** [ops] is a list of [(op_name, req, ack)] triples; [mutex] lists
    [(label, a, b)] pairs of signals that must never be high together
    (e.g. an iterator's inc and dec requests). *)

val add_fifo :
  t ->
  name:string ->
  ?depth:int ->
  ?full:Signal.t ->
  count:Signal.t ->
  empty:Signal.t ->
  unit ->
  unit

val add_auto : t -> int
(** Attach monitors by naming convention over the whole circuit;
    returns the number of monitors attached. *)

val sample : t -> unit
(** Run all checks against the current settled values and record the
    watched signals. Call once after each [Cyclesim.cycle]. *)

val ticks : t -> int
(** Number of {!sample} calls so far. *)

val violations : t -> violation list
(** All recorded violations, oldest first. *)

val first_violation : t -> violation option
val ok : t -> bool

val vcd_window : t -> string

(** Plane-level monitors over a whole {!Simbatch} batch: the same
    checkers as above, evaluated once per cycle for all lanes at once
    on the engine's bit-planes. Per-lane work happens only when a
    rule's violation mask is non-zero, so a violation-free cycle costs
    a few dozen word operations regardless of lane count. Each lane's
    violation list — cycle, ordering, and message text — is identical
    to what a scalar monitor over that lane would have recorded; no
    waveform history is retained. *)
module Batch : sig
  type bt

  val create : Simbatch.t -> bt

  val add_handshake :
    bt ->
    name:string ->
    ?payload:Signal.t ->
    req:Signal.t ->
    ack:Signal.t ->
    unit ->
    unit

  val add_fifo :
    bt ->
    name:string ->
    ?depth:int ->
    ?full:Signal.t ->
    count:Signal.t ->
    empty:Signal.t ->
    unit ->
    unit

  val add_auto : bt -> int
  (** Same naming-convention scan (and attach order) as the scalar
      {!add_auto}. *)

  val sample : bt -> active:int64 -> cycle:int -> unit
  (** Run all checks for the lanes in [active] against the settled
      values of cycle [cycle]. Call once after each [Simbatch.cycle]
      with the mask of lanes a scalar campaign would still be
      sampling. *)

  val violations : bt -> lane:int -> violation list
  (** Oldest first, like the scalar {!violations}. *)

  val first_violation : bt -> lane:int -> violation option
  val ok : bt -> lane:int -> bool
end
(** The retained history window rendered as VCD text. *)
