type t = { width : int; data : int64 array }

let limb_bits = 64
let limbs_for width = (width + limb_bits - 1) / limb_bits

(* Mask of the valid bits in the top limb. *)
let top_mask width =
  let r = width mod limb_bits in
  if r = 0 then -1L else Int64.sub (Int64.shift_left 1L r) 1L

let normalize t =
  let n = Array.length t.data in
  if n > 0 then t.data.(n - 1) <- Int64.logand t.data.(n - 1) (top_mask t.width);
  t

let create width =
  if width < 1 then invalid_arg "Bits: width must be >= 1";
  { width; data = Array.make (limbs_for width) 0L }

let width t = t.width
let zero w = create w

let ones w =
  let t = { width = w; data = Array.make (limbs_for w) (-1L) } in
  normalize t

let of_int64 ~width n =
  let t = create width in
  t.data.(0) <- n;
  (* Sign-extend negative inputs across higher limbs. *)
  if Int64.compare n 0L < 0 then
    for i = 1 to Array.length t.data - 1 do
      t.data.(i) <- -1L
    done;
  normalize t

let of_int ~width n = of_int64 ~width (Int64.of_int n)
let one w = of_int ~width:w 1
let of_bool b = of_int ~width:1 (if b then 1 else 0)

let of_string s =
  let s = String.concat "" (String.split_on_char '_' s) in
  let w = String.length s in
  if w = 0 then invalid_arg "Bits.of_string: empty literal";
  let t = create w in
  String.iteri
    (fun i c ->
      let bitpos = w - 1 - i in
      match c with
      | '0' -> ()
      | '1' ->
        let limb = bitpos / limb_bits and off = bitpos mod limb_bits in
        t.data.(limb) <- Int64.logor t.data.(limb) (Int64.shift_left 1L off)
      | _ -> invalid_arg "Bits.of_string: expected '0' or '1'")
    s;
  t

let random ~width =
  let t = create width in
  for i = 0 to Array.length t.data - 1 do
    t.data.(i) <- Random.int64 Int64.max_int;
    if Random.bool () then t.data.(i) <- Int64.logor t.data.(i) Int64.min_int
  done;
  normalize t

let bit t i =
  if i < 0 || i >= t.width then invalid_arg "Bits.bit: index out of range";
  let limb = i / limb_bits and off = i mod limb_bits in
  Int64.logand (Int64.shift_right_logical t.data.(limb) off) 1L = 1L

let to_bool t = Array.exists (fun l -> l <> 0L) t.data

let to_int64 t = t.data.(0)

let to_int_opt t =
  let high_clear =
    Array.for_all (fun l -> l = 0L) (Array.sub t.data 1 (Array.length t.data - 1))
  in
  let v = t.data.(0) in
  let fits = Int64.compare v 0L >= 0 && Int64.compare v (Int64.of_int max_int) <= 0 in
  if high_clear && fits then Some (Int64.to_int v) else None

let to_int t =
  match to_int_opt t with
  | Some v -> v
  | None -> invalid_arg "Bits.to_int: value too large"

let to_string t =
  String.init t.width (fun i -> if bit t (t.width - 1 - i) then '1' else '0')

let pp fmt t = Format.fprintf fmt "%d'b%s" t.width (to_string t)

let msb t = bit t (t.width - 1)
let lsb t = bit t 0

let check_same_width name a b =
  if a.width <> b.width then
    invalid_arg (Printf.sprintf "Bits.%s: width mismatch (%d vs %d)" name a.width b.width)

let map2 f a b =
  let t = create a.width in
  for i = 0 to Array.length t.data - 1 do
    t.data.(i) <- f a.data.(i) b.data.(i)
  done;
  normalize t

let logand a b = check_same_width "logand" a b; map2 Int64.logand a b
let logor a b = check_same_width "logor" a b; map2 Int64.logor a b
let logxor a b = check_same_width "logxor" a b; map2 Int64.logxor a b

let lognot a =
  let t = create a.width in
  for i = 0 to Array.length t.data - 1 do
    t.data.(i) <- Int64.lognot a.data.(i)
  done;
  normalize t

(* Add with carry across limbs. *)
let add a b =
  check_same_width "add" a b;
  let t = create a.width in
  let carry = ref 0L in
  for i = 0 to Array.length t.data - 1 do
    let x = a.data.(i) and y = b.data.(i) in
    let s = Int64.add (Int64.add x y) !carry in
    (* Unsigned carry detection: carry-out iff s < x (when carry-in is 0)
       or s <= x (when carry-in is 1), in unsigned order. *)
    let lt_u p q = Int64.unsigned_compare p q < 0 in
    let cout =
      if !carry = 0L then lt_u s x else if lt_u s x || s = x then true else false
    in
    t.data.(i) <- s;
    carry := if cout then 1L else 0L
  done;
  normalize t

let neg a = add (lognot a) (one a.width)

let sub a b =
  check_same_width "sub" a b;
  add a (neg b)

let select t ~high ~low =
  if low < 0 || high >= t.width || high < low then
    invalid_arg
      (Printf.sprintf "Bits.select: bad range [%d:%d] of width %d" high low t.width);
  let w = high - low + 1 in
  let r = create w in
  for i = 0 to w - 1 do
    let src = low + i in
    if bit t src then begin
      let limb = i / limb_bits and off = i mod limb_bits in
      r.data.(limb) <- Int64.logor r.data.(limb) (Int64.shift_left 1L off)
    end
  done;
  r

let concat_msb parts =
  if parts = [] then invalid_arg "Bits.concat_msb: empty list";
  let w = List.fold_left (fun acc p -> acc + p.width) 0 parts in
  let r = create w in
  let pos = ref w in
  let blit part =
    pos := !pos - part.width;
    for i = 0 to part.width - 1 do
      if bit part i then begin
        let dst = !pos + i in
        let limb = dst / limb_bits and off = dst mod limb_bits in
        r.data.(limb) <- Int64.logor r.data.(limb) (Int64.shift_left 1L off)
      end
    done
  in
  List.iter blit parts;
  r

let repeat t n =
  if n < 1 then invalid_arg "Bits.repeat: count must be >= 1";
  concat_msb (List.init n (fun _ -> t))

let uresize t w =
  if w = t.width then t
  else if w < t.width then select t ~high:(w - 1) ~low:0
  else concat_msb [ zero (w - t.width); t ]

let sresize t w =
  if w = t.width then t
  else if w < t.width then select t ~high:(w - 1) ~low:0
  else
    let fill = if msb t then ones (w - t.width) else zero (w - t.width) in
    concat_msb [ fill; t ]

let sll t n =
  if n < 0 then invalid_arg "Bits.sll: negative shift";
  if n = 0 then t
  else if n >= t.width then zero t.width
  else concat_msb [ select t ~high:(t.width - 1 - n) ~low:0; zero n ]

let srl t n =
  if n < 0 then invalid_arg "Bits.srl: negative shift";
  if n = 0 then t
  else if n >= t.width then zero t.width
  else concat_msb [ zero n; select t ~high:(t.width - 1) ~low:n ]

let sra t n =
  if n < 0 then invalid_arg "Bits.sra: negative shift";
  if n = 0 then t
  else
    let fill_w = min n t.width in
    let fill = if msb t then ones fill_w else zero fill_w in
    if n >= t.width then fill
    else concat_msb [ fill; select t ~high:(t.width - 1) ~low:n ]

let equal a b =
  a.width = b.width
  &&
  let n = Array.length a.data in
  let rec go i = i >= n || (Int64.equal a.data.(i) b.data.(i) && go (i + 1)) in
  go 0

let compare a b =
  check_same_width "compare" a b;
  let rec go i =
    if i < 0 then 0
    else
      let c = Int64.unsigned_compare a.data.(i) b.data.(i) in
      if c <> 0 then c else go (i - 1)
  in
  go (Array.length a.data - 1)

let eq a b = of_bool (equal a b)
let lt a b = of_bool (compare a b < 0)

(* Truncating schoolbook multiply over 32-bit half-limbs. *)
let mul a b =
  check_same_width "mul" a b;
  let w = a.width in
  let n = limbs_for w in
  let halves t =
    Array.init (2 * n) (fun i ->
        let limb = t.data.(i / 2) in
        if i mod 2 = 0 then Int64.logand limb 0xFFFFFFFFL
        else Int64.shift_right_logical limb 32)
  in
  let ah = halves a and bh = halves b in
  let acc = Array.make (2 * n + 1) 0L in
  for i = 0 to (2 * n) - 1 do
    for j = 0 to (2 * n) - 1 - i do
      let p = Int64.mul ah.(i) bh.(j) in
      (* Accumulate the 64-bit partial product into 32-bit buckets. *)
      let k = i + j in
      if k < 2 * n then begin
        let lo = Int64.logand p 0xFFFFFFFFL in
        let hi = Int64.shift_right_logical p 32 in
        acc.(k) <- Int64.add acc.(k) lo;
        if k + 1 < 2 * n + 1 then acc.(k + 1) <- Int64.add acc.(k + 1) hi
      end
    done;
    (* Propagate carries eagerly to keep buckets within 64 bits. *)
    for k = 0 to 2 * n - 1 do
      let carry = Int64.shift_right_logical acc.(k) 32 in
      acc.(k) <- Int64.logand acc.(k) 0xFFFFFFFFL;
      acc.(k + 1) <- Int64.add acc.(k + 1) carry
    done
  done;
  let t = create w in
  for i = 0 to n - 1 do
    t.data.(i) <- Int64.logor acc.(2 * i) (Int64.shift_left acc.((2 * i) + 1) 32)
  done;
  normalize t

(* --- Destination-buffer (in-place) variants ----------------------------- *)

(* These exist for the compiled simulator's hot loop: each writes its
   result into [dst] (preallocated at the result width) instead of
   allocating a fresh vector. The element-wise operations tolerate
   [dst] aliasing an operand; [select_into] and [concat_msb_into] do
   not. *)

let copy t = { width = t.width; data = Array.copy t.data }

let blit ~src ~dst =
  if src.width <> dst.width then
    invalid_arg
      (Printf.sprintf "Bits.blit: width mismatch (%d vs %d)" src.width dst.width);
  Array.blit src.data 0 dst.data 0 (Array.length src.data)

(* Compare-and-copy in one pass: returns [true] (after copying) iff
   [dst] differed from [src]. The simulator's publish step runs this on
   every evaluated node, so it avoids the separate [equal] + [blit]
   traversals. *)
let blit_changed ~src ~dst =
  if src.width <> dst.width then
    invalid_arg
      (Printf.sprintf "Bits.blit_changed: width mismatch (%d vs %d)" src.width
         dst.width);
  let n = Array.length src.data in
  let changed = ref false in
  for i = 0 to n - 1 do
    let v = src.data.(i) in
    if not (Int64.equal v dst.data.(i)) then begin
      dst.data.(i) <- v;
      changed := true
    end
  done;
  !changed

let check_dst name dst w =
  if dst.width <> w then
    invalid_arg
      (Printf.sprintf "Bits.%s: dst width %d, result width %d" name dst.width w)

let add_with_carry_into ~dst ~carry0 a b_of_i =
  let carry = ref carry0 in
  for i = 0 to Array.length dst.data - 1 do
    let x = a.data.(i) and y = b_of_i i in
    let s = Int64.add (Int64.add x y) !carry in
    let lt_u p q = Int64.unsigned_compare p q < 0 in
    let cout = if !carry = 0L then lt_u s x else lt_u s x || s = x in
    dst.data.(i) <- s;
    carry := if cout then 1L else 0L
  done;
  ignore (normalize dst)

let add_into ~dst a b =
  check_same_width "add_into" a b;
  check_dst "add_into" dst a.width;
  add_with_carry_into ~dst ~carry0:0L a (fun i -> b.data.(i))

(* a - b as a + lognot b + 1, limb-wise with carry-in 1. *)
let sub_into ~dst a b =
  check_same_width "sub_into" a b;
  check_dst "sub_into" dst a.width;
  add_with_carry_into ~dst ~carry0:1L a (fun i -> Int64.lognot b.data.(i))

let map2_into name f ~dst a b =
  check_same_width name a b;
  check_dst name dst a.width;
  for i = 0 to Array.length dst.data - 1 do
    dst.data.(i) <- f a.data.(i) b.data.(i)
  done;
  ignore (normalize dst)

let logand_into ~dst a b = map2_into "logand_into" Int64.logand ~dst a b
let logor_into ~dst a b = map2_into "logor_into" Int64.logor ~dst a b
let logxor_into ~dst a b = map2_into "logxor_into" Int64.logxor ~dst a b

let lognot_into ~dst a =
  check_dst "lognot_into" dst a.width;
  for i = 0 to Array.length dst.data - 1 do
    dst.data.(i) <- Int64.lognot a.data.(i)
  done;
  ignore (normalize dst)

let eq_into ~dst a b =
  check_same_width "eq_into" a b;
  check_dst "eq_into" dst 1;
  dst.data.(0) <- (if Array.for_all2 Int64.equal a.data b.data then 1L else 0L)

let lt_into ~dst a b =
  check_same_width "lt_into" a b;
  check_dst "lt_into" dst 1;
  dst.data.(0) <- (if compare a b < 0 then 1L else 0L)

let mul_into ~dst a b =
  (* Multiplies are rare in the designs; the truncating schoolbook
     multiply keeps its internal scratch, only the result is copied. *)
  check_same_width "mul_into" a b;
  check_dst "mul_into" dst a.width;
  blit ~src:(mul a b) ~dst

let select_into ~dst src ~high ~low =
  if low < 0 || high >= src.width || high < low then
    invalid_arg
      (Printf.sprintf "Bits.select_into: bad range [%d:%d] of width %d" high low
         src.width);
  check_dst "select_into" dst (high - low + 1);
  let base = low / limb_bits and off = low mod limb_bits in
  let srcn = Array.length src.data in
  for i = 0 to Array.length dst.data - 1 do
    let lo =
      if base + i < srcn then Int64.shift_right_logical src.data.(base + i) off
      else 0L
    in
    let hi =
      if off = 0 || base + i + 1 >= srcn then 0L
      else Int64.shift_left src.data.(base + i + 1) (limb_bits - off)
    in
    dst.data.(i) <- Int64.logor lo hi
  done;
  ignore (normalize dst)

(* OR a (normalized) vector into dst starting at bit [at]. *)
let or_blit_at dst ~at src =
  let base = at / limb_bits and off = at mod limb_bits in
  let dn = Array.length dst.data in
  for i = 0 to Array.length src.data - 1 do
    let v = src.data.(i) in
    if base + i < dn then
      dst.data.(base + i) <-
        Int64.logor dst.data.(base + i) (Int64.shift_left v off);
    if off > 0 && base + i + 1 < dn then
      dst.data.(base + i + 1) <-
        Int64.logor
          dst.data.(base + i + 1)
          (Int64.shift_right_logical v (limb_bits - off))
  done

let concat_msb_into ~dst parts =
  let total = Array.fold_left (fun acc p -> acc + p.width) 0 parts in
  check_dst "concat_msb_into" dst total;
  Array.fill dst.data 0 (Array.length dst.data) 0L;
  let pos = ref total in
  Array.iter
    (fun p ->
      pos := !pos - p.width;
      or_blit_at dst ~at:!pos p)
    parts

(* --- Limb (bit-plane) access -------------------------------------------- *)

(* The batched simulator treats a width-W signal over 64 lanes as a
   width-(W*64) vector whose limb [b] is the bit-plane of bit [b]
   across all lanes. These accessors expose the raw limbs for the
   plane-serial kernels (ripple add, comparisons, mux masks). *)

let limb_count t = Array.length t.data
let get_limb t i = t.data.(i)

let set_limb t i v =
  t.data.(i) <-
    (if i = Array.length t.data - 1 then Int64.logand v (top_mask t.width) else v)

let unsafe_get_limb t i = Array.unsafe_get t.data i
let unsafe_set_limb t i v = Array.unsafe_set t.data i v
let unsafe_data t = t.data

let reduce_or t = of_bool (to_bool t)
let reduce_and t = of_bool (equal t (ones t.width))

let popcount t =
  let count = ref 0 in
  for i = 0 to t.width - 1 do
    if bit t i then incr count
  done;
  !count

let to_signed_int t =
  if msb t then -(to_int (neg t)) else to_int t
