(** Small numeric helpers shared across the RTL libraries. *)

val clog2 : int -> int
(** Ceiling log2: [clog2 1 = 0], [clog2 2 = 1], [clog2 5 = 3].
    Raises [Invalid_argument] for values < 1. *)

val address_bits : int -> int
(** Bits needed to address [n] locations: [max 1 (clog2 n)]. *)

val bits_to_represent : int -> int
(** Bits needed to hold the value [n] itself: [bits_to_represent 8 = 4]. *)

val is_power_of_two : int -> bool

(** {1 Output files}

    All writers in the library funnel through these so an exception
    mid-write can never leak an open channel: the file is closed (and
    therefore flushed as far as it got) on both paths. *)

val with_out_file : string -> (out_channel -> 'a) -> 'a
(** Open [path] for writing, run the callback, and close the channel
    whether the callback returns or raises. *)

val write_file : string -> string -> unit
