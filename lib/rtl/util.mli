(** Small numeric helpers shared across the RTL libraries. *)

val clog2 : int -> int
(** Ceiling log2: [clog2 1 = 0], [clog2 2 = 1], [clog2 5 = 3].
    Raises [Invalid_argument] for values < 1. *)

val address_bits : int -> int
(** Bits needed to address [n] locations: [max 1 (clog2 n)]. *)

val bits_to_represent : int -> int
(** Bits needed to hold the value [n] itself: [bits_to_represent 8 = 4]. *)

val is_power_of_two : int -> bool

(** {1 Output files}

    All writers in the library funnel through these so a crashed,
    killed or raising run can never leave a truncated artifact under
    the published name: the callback streams into [path ^ ".tmp"] and
    the temp file is renamed over [path] (atomic within a directory on
    POSIX) only after a clean close.  On an exception the temp file is
    removed and any previous contents of [path] survive intact. *)

val with_out_file : string -> (out_channel -> 'a) -> 'a
(** Open [path ^ ".tmp"] for writing, run the callback, close, and
    atomically rename the result to [path]. If the callback raises,
    the channel is closed, the temp file removed, and the exception
    re-raised with its backtrace; [path] is left untouched. *)

val write_file : string -> string -> unit
