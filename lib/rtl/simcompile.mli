(** Compiled, levelized simulation engine behind {!Cyclesim}.

    [compile] runs a one-time pass over the scheduled netlist and
    produces specialized per-node closures with operands resolved to
    direct buffers, plus per-node dirty flags for activity-based
    skipping: combinational cones whose register/memory/input sources
    did not change since the last settle are not re-evaluated.

    This module is the engine only; use {!Cyclesim} (the stable public
    API) unless you need engine internals such as the activity
    counters. Semantics — evaluation order, clock-edge phases,
    read-first memories, force/peek/poke behaviour, error messages —
    match the reference interpreter exactly; the differential test
    suite holds the two engines cycle-equivalent. *)

type t

val compile : Circuit.t -> t
val circuit : t -> Circuit.t

val in_port : t -> string -> Bits.t ref
val out_port : t -> string -> Bits.t ref

val settle : t -> unit
val cycle : t -> unit
val reset : t -> unit
val cycle_count : t -> int

val force : t -> Signal.t -> Bits.t -> unit
val release : t -> Signal.t -> unit
val release_all : t -> unit
val forced : t -> Signal.t -> Bits.t option

val peek : t -> Signal.t -> Bits.t
val peek_state : t -> Signal.t -> Bits.t
val poke_state : t -> Signal.t -> Bits.t -> unit
val memory_contents : t -> Signal.memory -> Bits.t array

(** {1 Activity counters}

    Monotonic instrumentation for tests and benchmarks. *)

val settles : t -> int
(** Number of settle passes run so far. *)

val node_evals : t -> int
(** Number of node evaluations actually performed (skipped nodes are
    not counted) — the skipping tests assert on deltas of this. *)

val total_nodes : t -> int
(** Number of nodes in the compiled schedule. *)

val kind_evals : t -> int array
(** [node_evals] bucketed by {!Signal.prim_kind} (a fresh copy,
    indexed by kind code). *)
