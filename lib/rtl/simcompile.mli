(** Compiled, levelized simulation engine behind {!Cyclesim}.

    Compilation is split into an immutable {!plan} and cheap mutable
    instances. [plan] runs the one-time pass over the scheduled netlist
    — levelized schedule, per-node operation descriptors with operands
    resolved to schedule indices, combinational fan-out, clock-edge and
    memory descriptors. [instantiate] allocates the per-simulator
    mutable state (value buffers, dirty flags, force slots,
    register/memory state) and builds the specialized per-node closures
    over those buffers. A plan holds no mutable simulation state, so
    one plan may be shared read-only across domains, each of which
    instantiates its own simulator; instances never alias a mutable
    buffer. [compile] is [instantiate] of a fresh single-use plan.

    This module is the engine only; use {!Cyclesim} (the stable public
    API) unless you need engine internals such as the activity
    counters. Semantics — evaluation order, clock-edge phases,
    read-first memories, force/peek/poke behaviour, error messages —
    match the reference interpreter exactly; the differential test
    suite holds the two engines cycle-equivalent. *)

type plan
(** Immutable compiled artifact: schedule, operand wiring, fan-out,
    edge and memory descriptors. Safe to share across domains. *)

type t

val plan : Circuit.t -> plan
val plan_circuit : plan -> Circuit.t

val instantiate : plan -> t
(** Fresh simulator over [plan]: new value/state buffers, cleared
    forces and dirty flags, zeroed inputs and memories. Equivalent to
    [compile (plan_circuit plan)] but skips the netlist walk. *)

val compile : Circuit.t -> t
val circuit : t -> Circuit.t

val in_port : t -> string -> Bits.t ref
val out_port : t -> string -> Bits.t ref

val settle : t -> unit
val cycle : t -> unit

val reset : t -> unit
(** Back to power-on state: forces cleared, registers to their init
    values, sync-read state and memories zeroed, input ports driven
    back to zero, everything marked dirty and re-settled. A reused
    instance after [reset] is indistinguishable from a fresh
    [instantiate] of the same plan. *)

val cycle_count : t -> int

val force : t -> Signal.t -> Bits.t -> unit
val release : t -> Signal.t -> unit
val release_all : t -> unit
val forced : t -> Signal.t -> Bits.t option

val peek : t -> Signal.t -> Bits.t
val peek_state : t -> Signal.t -> Bits.t
val poke_state : t -> Signal.t -> Bits.t -> unit
val memory_contents : t -> Signal.memory -> Bits.t array

(** {1 Activity counters}

    Monotonic instrumentation for tests and benchmarks. *)

val settles : t -> int
(** Number of settle passes run so far. *)

val node_evals : t -> int
(** Number of node evaluations actually performed (skipped nodes are
    not counted) — the skipping tests assert on deltas of this. *)

val total_nodes : t -> int
(** Number of nodes in the compiled schedule. *)

val kind_evals : t -> int array
(** [node_evals] bucketed by {!Signal.prim_kind} (a fresh copy,
    indexed by kind code). *)
