(** Compiled, levelized simulation engine behind {!Cyclesim}.

    Compilation is split into an immutable {!plan} and cheap mutable
    instances. [plan] runs the one-time pass over the scheduled netlist
    — levelized schedule, per-node operation descriptors with operands
    resolved to schedule indices, combinational fan-out, clock-edge and
    memory descriptors. [instantiate] allocates the per-simulator
    mutable state (value buffers, dirty flags, force slots,
    register/memory state) and builds the specialized per-node closures
    over those buffers. A plan holds no mutable simulation state, so
    one plan may be shared read-only across domains, each of which
    instantiates its own simulator; instances never alias a mutable
    buffer. [compile] is [instantiate] of a fresh single-use plan.

    This module is the engine only; use {!Cyclesim} (the stable public
    API) unless you need engine internals such as the activity
    counters. Semantics — evaluation order, clock-edge phases,
    read-first memories, force/peek/poke behaviour, error messages —
    match the reference interpreter exactly; the differential test
    suite holds the two engines cycle-equivalent. *)

type plan
(** Immutable compiled artifact: schedule, operand wiring, fan-out,
    edge and memory descriptors. Safe to share across domains. *)

type t

val plan : Circuit.t -> plan
val plan_circuit : plan -> Circuit.t

val instantiate : plan -> t
(** Fresh simulator over [plan]: new value/state buffers, cleared
    forces and dirty flags, zeroed inputs and memories. Equivalent to
    [compile (plan_circuit plan)] but skips the netlist walk. *)

val compile : Circuit.t -> t
val circuit : t -> Circuit.t

val in_port : t -> string -> Bits.t ref
val out_port : t -> string -> Bits.t ref

val settle : t -> unit
val cycle : t -> unit

val reset : t -> unit
(** Back to power-on state: forces cleared, registers to their init
    values, sync-read state and memories zeroed, input ports driven
    back to zero, everything marked dirty and re-settled. A reused
    instance after [reset] is indistinguishable from a fresh
    [instantiate] of the same plan. *)

val cycle_count : t -> int

val force : t -> Signal.t -> Bits.t -> unit
val release : t -> Signal.t -> unit
val release_all : t -> unit
val forced : t -> Signal.t -> Bits.t option

val peek : t -> Signal.t -> Bits.t
val peek_state : t -> Signal.t -> Bits.t
val poke_state : t -> Signal.t -> Bits.t -> unit
val memory_contents : t -> Signal.memory -> Bits.t array

(** {1 Plan introspection (engine internals)}

    The batched engine ({!Simbatch}) instantiates lane-transposed
    mutable state from the same shared plan; these accessors expose the
    plan's immutable descriptor arrays for that purpose. Everything
    returned is owned by the plan: treat it as read-only. Operand
    positions are schedule indices into the plan's topological order. *)

type op =
  | O_const
  | O_input of int  (** slot in the inputs array *)
  | O_op2 of Signal.op2 * int * int
  | O_not of int
  | O_concat of int array
  | O_select of { src : int; high : int; low : int }
  | O_mux of { select : int; cases : int array }
  | O_state  (** Reg / Mem_read_sync present their committed state *)
  | O_mem_read_async of { mem_uid : int; mem_width : int; addr : int }
  | O_wire of int

type edge =
  | E_reg of {
      index : int;
      d : int;
      enable : int option;
      clear : int option;
      clear_to : Bits.t;  (** blit source only; shared, never written *)
    }
  | E_sync_read of {
      index : int;
      mem_uid : int;
      mem_width : int;
      addr : int;
      enable : int option;
    }

type write_port = { wp_mem_uid : int; wp_enable : int; wp_addr : int; wp_data : int }
type mem_spec = { m_uid : int; m_size : int; m_width : int }

val plan_n : plan -> int
(** Number of nodes in the schedule. *)

val plan_signal : plan -> int -> Signal.t
(** Signal at a schedule index. *)

val plan_kinds : plan -> int array
(** {!Signal.prim_kind} per node. *)

val plan_buf_init : plan -> Bits.t array
(** Copy templates for the initial value buffers (const / reg init /
    zero). *)

val plan_state_init : plan -> Bits.t option array
(** Initial committed state; [Some] for Reg / Mem_read_sync only. *)

val plan_fanout : plan -> int array array
(** Combinational dependents per node; always later in the schedule. *)

val plan_ops : plan -> op array
val plan_edges : plan -> edge array
val plan_write_ports : plan -> write_port array
val plan_mems : plan -> mem_spec array

val plan_mem_readers : plan -> int -> int array
(** Async-read nodes of the memory with the given uid ([[||]] if
    none). *)

val plan_inputs : plan -> (string * int) array
val plan_outputs : plan -> (string * int) list

val plan_index_of_uid : plan -> Signal.t -> int option
(** Schedule index of a signal, [None] if not part of the circuit. *)

(** {1 Activity counters}

    Monotonic instrumentation for tests and benchmarks. *)

val settles : t -> int
(** Number of settle passes run so far. *)

val node_evals : t -> int
(** Number of node evaluations actually performed (skipped nodes are
    not counted) — the skipping tests assert on deltas of this. *)

val total_nodes : t -> int
(** Number of nodes in the compiled schedule. *)

val kind_evals : t -> int array
(** [node_evals] bucketed by {!Signal.prim_kind} (a fresh copy,
    indexed by kind code). *)
