(** Netlist optimisation: constant propagation and trivial-logic
    simplification, as any synthesis front-end performs before
    technology mapping.

    This is what makes operation pruning measurable at the netlist
    level: logic behind a request tied to ground folds to constants and
    drops out of the reachable cone. Semantics are preserved — the test
    suite simulates optimised and raw circuits against each other.

    Rules applied (to a fixed point, structurally):
    - operators with constant operands fold ({!Bits} arithmetic);
    - identities: [x & 0 = 0], [x & 1s = x], [x | 0 = x], [x | 1s = 1s],
      [x ^ 0 = x], [not (not x) = x];
    - muxes with a constant select reduce to the chosen case; muxes
      whose cases are all the same node reduce to that node;
    - selects/concats of constants fold;
    - registers with enable tied low (and clear low or absent) fold to
      their initial value;
    - memory write ports with enable tied low are dropped; memories
      left with no write ports read as constant zero;
    - wires are inlined. *)

val circuit : Circuit.t -> Circuit.t
(** Rebuild the circuit with the rules above applied. Port names and
    order are preserved. *)

val run : ?verify:(Circuit.t -> Circuit.t -> unit) -> Circuit.t -> Circuit.t
(** {!circuit} with a proof hook: [verify original optimised] is called
    after the rewrite and should raise if it cannot show the two
    circuits equivalent. The formal layer plugs its SAT-based
    equivalence checker in here ([Hwpat_formal.Equiv.optimize]); the
    hook lives on this side so the optimiser does not depend on the
    checker. *)

val signal : Signal.t -> Signal.t
(** Optimise a single cone (memoised per call). Prefer {!circuit} for
    whole designs so memories are rebuilt consistently. *)
