(* Batched (bit-parallel) compiled simulation engine.

   The classic parallel-pattern fault-simulation trick: up to 64
   independent instances of one circuit are packed into the bit-lanes
   of each machine word and evaluated together. A width-[w] signal's
   batched value is a [Bits.t] of width [w * 64] laid out *transposed*:
   limb [b] is the bit-plane of bit [b] across all lanes — bit [l] of
   limb [b] is bit [b] of lane [l]'s value. Because [w * 64] is always
   a multiple of 64 there are exactly [w] limbs and every plane is one
   whole limb, so:

   - the bitwise kernels (And/Or/Xor/Not) are *lane-oblivious*: the
     scalar [Bits.*_into] ops applied to the batched vectors evaluate
     all 64 lanes at once;
   - Select and Concat stay lane-oblivious too, since plane boundaries
     are limb boundaries: [select ~high:(64h+63) ~low:(64l)] moves
     whole planes, and concatenation of plane stacks is a plane stack;
   - arithmetic and comparisons become *plane-serial*: a ripple adder
     over planes with a 64-lane carry word (sum = a xor b xor c,
     carry = a&b | c&(a xor b)), Eq as the NOR of difference planes,
     Lt as an LSB-to-MSB unsigned compare recurrence;
   - Mux select becomes per-case lane-equality masks (a lane matches
     case [c] iff every select plane agrees with the bits of [c]); the
     final case doubles as the out-of-range default arm, which matches
     {!Signal.mux_index}'s clamp semantics exactly;
   - register edges blend per-plane with per-lane clear/enable masks
     (the lane-wise OR of the control planes — the batched analogue of
     [Bits.to_bool]);
   - multiplies and memory ports are genuinely per-lane: values are
     extracted from / packed back into their lane one at a time, and
     each lane owns its own memory array so fault injection via
     [memory_contents ~lane] stays lane-isolated.

   Everything else — the plan, the levelized schedule, the dirty-flag
   settle sweep, publish-on-change, the three clock-edge phases — is
   shared with {!Simcompile} structurally; the plan descriptor arrays
   are literally the same values, used read-only. Lanes beyond
   [lanes] (when fewer than 64 are requested) hold deterministic
   zero-derived garbage that no per-lane accessor ever reads; kernels
   are pure bitwise functions per lane, so garbage lanes can never
   perturb real ones. *)

let lane_bits = 64

(* Batched width of a scalar width. *)
let bw w = w * lane_bits

(* Replicate a scalar value into every lane: plane [b] is all-ones iff
   bit [b] is set. *)
let broadcast scalar =
  let w = Bits.width scalar in
  let r = Bits.zero (bw w) in
  for b = 0 to w - 1 do
    if Bits.bit scalar b then Bits.unsafe_set_limb r b (-1L)
  done;
  r

(* Overwrite lane [lane] of [dst] with a scalar value (all [w] bits of
   the lane are written, set or cleared). *)
let pack_lane ~dst ~lane scalar =
  let m = Int64.shift_left 1L lane in
  let nm = Int64.lognot m in
  let dd = Bits.unsafe_data dst in
  let sd = Bits.unsafe_data scalar in
  for b = 0 to Bits.width scalar - 1 do
    let v =
      Int64.logand
        (Int64.shift_right_logical (Array.unsafe_get sd (b lsr 6)) (b land 63))
        1L
    in
    let p = Array.unsafe_get dd b in
    let p' = if Int64.equal v 1L then Int64.logor p m else Int64.logand p nm in
    if not (Int64.equal p' p) then Array.unsafe_set dd b p'
  done

(* Lane [lane] of a batched value as a fresh scalar of width [w]. *)
let extract_lane src ~lane w =
  let r = Bits.zero w in
  let sd = Bits.unsafe_data src in
  let rd = Bits.unsafe_data r in
  if w <= 64 then begin
    (* Single-limb fast path: gather into one word, write once. *)
    let acc = ref 0L in
    for b = 0 to w - 1 do
      acc :=
        Int64.logor !acc
          (Int64.shift_left
             (Int64.logand
                (Int64.shift_right_logical (Array.unsafe_get sd b) lane)
                1L)
             b)
    done;
    if not (Int64.equal !acc 0L) then Array.unsafe_set rd 0 !acc
  end
  else
    for b = 0 to w - 1 do
      if
        Int64.logand
          (Int64.shift_right_logical (Array.unsafe_get sd b) lane)
          1L
        = 1L
      then
        Array.unsafe_set rd (b lsr 6)
          (Int64.logor (Array.unsafe_get rd (b lsr 6))
             (Int64.shift_left 1L (b land 63)))
    done;
  r

(* Per-lane truthiness mask: bit [l] set iff lane [l] has any bit set —
   the batched analogue of [Bits.to_bool], used for enables/clears. *)
let lane_or batched =
  let d = Bits.unsafe_data batched in
  let acc = ref 0L in
  for b = 0 to Array.length d - 1 do
    acc := Int64.logor !acc (Array.unsafe_get d b)
  done;
  !acc

let lane_bit m l = Int64.logand (Int64.shift_right_logical m l) 1L = 1L

type input = {
  in_name : string;
  in_index : int;
  in_refs : Bits.t ref array; (* one scalar ref per lane *)
  in_packed : Bits.t; (* the transposed batch the eval publishes *)
  in_last : Bits.t array;
      (* The physical [Bits.t] last packed from each lane's ref.  The
         settle sweep skips repacking a lane whose ref still holds the
         same value object — so driving a lane means *assigning* its
         ref (as [Cyclesim.drive] does); batched stimulus that writes
         planes directly (see {!write_input_plane}) is then never
         clobbered by the sweep. *)
  mutable in_dirty : bool;
      (* [in_packed] may have moved since the last settle (a plane
         write or a lane repack): the settle must re-compare it with
         the published buffer.  A quiet input costs one flag test. *)
}

type t = {
  plan : Simcompile.plan;
  lanes : int;
  signals : Signal.t array; (* shared with the plan, immutable *)
  bufs : Bits.t array; (* batched published values *)
  evals : (unit -> unit) array;
  fanout : int array array; (* shared with the plan, immutable *)
  dirty : bool array;
  mutable ndirty : int;
  force_mask : int64 array; (* per-node mask of forced lanes *)
  force_vals : Bits.t option array; (* batched forced values *)
  state : Bits.t option array; (* batched; Reg / Mem_read_sync only *)
  next_state : Bits.t option array;
  mem_arrays : (int, Bits.t array array) Hashtbl.t; (* uid -> lane -> addr *)
  mem_gens : (int, int ref) Hashtbl.t;
      (* Per-memory write generation, bumped whenever any lane's
         contents change (write port or [memory_contents] escape) —
         lets the sync-read kernels memoise like the register ones. *)
  inputs : input array;
  output_refs : (string * int * Bits.t ref array) array; (* scalar per lane *)
  buf_gen : int array; (* bumped whenever bufs.(i) changes *)
  out_gen : int array; (* buf_gen at last refresh, per output *)
  mutable out_refs_used : bool;
      (* Whether [out_port] has ever handed out a per-lane ref.  Until
         it has, settles skip the per-lane output extraction entirely —
         plane-level harnesses read outputs through {!read_plane} and
         never pay for refs nobody holds.  The flag is sticky: once a
         ref escapes, every settle refreshes it (callers may hold refs
         across cycles, like the scalar engine's). *)
  mutable in_refs_used : bool;
      (* Same idea on the input side: until [in_port] hands out a ref,
         no per-lane driver exists, so the settle sweep skips the
         per-lane repack scan and trusts [write_input_plane]'s dirty
         flags alone. *)
  mutable edge1 : (unit -> unit) array;
  mutable writes : (unit -> unit) array;
  mutable commits : (unit -> unit) array;
  mutable cycles : int;
  mutable settles : int;
  mutable node_evals : int;
  kinds : int array; (* shared with the plan, immutable *)
  kind_evals : int array;
  poked : bool array;
      (* Per-node "state was mutated behind the engine's back" flag
         ([poke_state], [reset]): invalidates the edge kernels'
         generation memo so the next edge recomputes from scratch. *)
}

let mark t j =
  if not t.dirty.(j) then begin
    t.dirty.(j) <- true;
    t.ndirty <- t.ndirty + 1
  end

(* Value of node [i] changed: bump its generation and dirty its fanout. *)
let touched t i =
  t.buf_gen.(i) <- t.buf_gen.(i) + 1;
  let fo = t.fanout.(i) in
  for k = 0 to Array.length fo - 1 do
    mark t fo.(k)
  done

let publish t i v =
  if Bits.blit_changed ~src:v ~dst:t.bufs.(i) then touched t i

(* Compare-and-set of one plane, accumulating "did anything move".
   The hot kernels compute straight into the node's published buffer
   with this — one pass, no scratch copy, no separate compare sweep.
   They work on the raw limb arrays ([Bits.unsafe_data]): batch
   buffers are whole limbs (width = w * 64), so raw stores never need
   the top-limb masking of a general [Bits.set_limb], and the loops
   stay free of per-limb cross-module calls. *)
let store ~changed (arr : int64 array) p v =
  if not (Int64.equal v (Array.unsafe_get arr p)) then begin
    Array.unsafe_set arr p v;
    changed := true
  end

(* Blend forced lanes into the just-published value of node [j]:
   plane' = (plane & ~mask) | (forced_plane & mask). Runs after the
   node's own eval, so unforced lanes keep their computed value. *)
let apply_force t j m =
  match t.force_vals.(j) with
  | None -> ()
  | Some fv ->
    let buf = t.bufs.(j) in
    let nm = Int64.lognot m in
    let changed = ref false in
    for b = 0 to Bits.limb_count buf - 1 do
      let old = Bits.unsafe_get_limb buf b in
      let nv = Int64.logor (Int64.logand old nm) (Int64.logand (Bits.unsafe_get_limb fv b) m) in
      if not (Int64.equal nv old) then begin
        Bits.unsafe_set_limb buf b nv;
        changed := true
      end
    done;
    if !changed then begin
      t.buf_gen.(j) <- t.buf_gen.(j) + 1;
      let fo = t.fanout.(j) in
      for k = 0 to Array.length fo - 1 do
        mark t fo.(k)
      done
    end

let instantiate ?(lanes = lane_bits) plan =
  if lanes < 1 || lanes > lane_bits then
    invalid_arg (Printf.sprintf "Simbatch: lanes must be in 1..%d" lane_bits);
  let n = Simcompile.plan_n plan in
  let width_of i = Signal.width (Simcompile.plan_signal plan i) in
  let bufs = Array.map broadcast (Simcompile.plan_buf_init plan) in
  let state = Array.map (Option.map broadcast) (Simcompile.plan_state_init plan) in
  let next_state =
    Array.map (Option.map broadcast) (Simcompile.plan_state_init plan)
  in
  let mem_arrays = Hashtbl.create 7 in
  let mem_gens = Hashtbl.create 7 in
  Array.iter
    (fun { Simcompile.m_uid; m_size; m_width } ->
      Hashtbl.replace mem_arrays m_uid
        (Array.init lanes (fun _ -> Array.make m_size (Bits.zero m_width)));
      Hashtbl.replace mem_gens m_uid (ref 0))
    (Simcompile.plan_mems plan);
  let mem_gen_of uid = Hashtbl.find mem_gens uid in
  let inputs =
    Array.map
      (fun (name, i) ->
        let w = width_of i in
        {
          in_name = name;
          in_index = i;
          in_refs = Array.init lanes (fun _ -> ref (Bits.zero w));
          in_packed = Bits.zero (bw w);
          (* Fresh objects, physically distinct from the refs' initial
             contents, so the first settle packs every lane. *)
          in_last = Array.init lanes (fun _ -> Bits.zero w);
          in_dirty = true;
        })
      (Simcompile.plan_inputs plan)
  in
  let output_refs =
    Array.of_list
      (List.map
         (fun (name, i) ->
           (name, i, Array.init lanes (fun _ -> ref (Bits.zero (width_of i)))))
         (Simcompile.plan_outputs plan))
  in
  let t =
    {
      plan;
      lanes;
      signals = Array.init n (Simcompile.plan_signal plan);
      bufs;
      evals = Array.make n (fun () -> ());
      fanout = Simcompile.plan_fanout plan;
      dirty = Array.make n true;
      ndirty = n;
      force_mask = Array.make n 0L;
      force_vals = Array.make n None;
      state;
      next_state;
      mem_arrays;
      mem_gens;
      inputs;
      output_refs;
      buf_gen = Array.make n 0;
      out_gen = Array.make (Array.length output_refs) (-1);
      out_refs_used = false;
      in_refs_used = false;
      edge1 = [||];
      writes = [||];
      commits = [||];
      cycles = 0;
      settles = 0;
      node_evals = 0;
      kinds = Simcompile.plan_kinds plan;
      kind_evals = Array.make Signal.n_prim_kinds 0;
      poked = Array.make n true;
    }
  in
  Array.iteri
    (fun i op ->
      let eval =
        match op with
        | Simcompile.O_const -> fun () -> ()
        | Simcompile.O_input k ->
          let p = inputs.(k).in_packed in
          fun () -> publish t i p
        | Simcompile.O_op2 (op, a, b) ->
          let a = bufs.(a) and b = bufs.(b) in
          let w = width_of i in
          (* The word-parallel kernels write straight into the node's
             published buffer, fusing compute / compare / publish into
             one pass per plane over the raw limb arrays. Only Mul
             still goes through a scratch buffer (it is per-lane
             anyway). *)
          let ad = Bits.unsafe_data a and bd = Bits.unsafe_data b in
          let dd = Bits.unsafe_data bufs.(i) in
          (match op with
          | Signal.And ->
            fun () ->
              let changed = ref false in
              for p = 0 to w - 1 do
                store ~changed dd p
                  (Int64.logand (Array.unsafe_get ad p) (Array.unsafe_get bd p))
              done;
              if !changed then touched t i
          | Signal.Or ->
            fun () ->
              let changed = ref false in
              for p = 0 to w - 1 do
                store ~changed dd p
                  (Int64.logor (Array.unsafe_get ad p) (Array.unsafe_get bd p))
              done;
              if !changed then touched t i
          | Signal.Xor ->
            fun () ->
              let changed = ref false in
              for p = 0 to w - 1 do
                store ~changed dd p
                  (Int64.logxor (Array.unsafe_get ad p) (Array.unsafe_get bd p))
              done;
              if !changed then touched t i
          | Signal.Add ->
            fun () ->
              let changed = ref false in
              let carry = ref 0L in
              for p = 0 to w - 1 do
                let x = Array.unsafe_get ad p and y = Array.unsafe_get bd p in
                let axy = Int64.logxor x y in
                store ~changed dd p (Int64.logxor axy !carry);
                carry :=
                  Int64.logor (Int64.logand x y) (Int64.logand !carry axy)
              done;
              if !changed then touched t i
          | Signal.Sub ->
            (* a - b = a + ~b + 1, plane-wise with carry-in all-ones. *)
            fun () ->
              let changed = ref false in
              let carry = ref (-1L) in
              for p = 0 to w - 1 do
                let x = Array.unsafe_get ad p
                and y = Int64.lognot (Array.unsafe_get bd p) in
                let axy = Int64.logxor x y in
                store ~changed dd p (Int64.logxor axy !carry);
                carry :=
                  Int64.logor (Int64.logand x y) (Int64.logand !carry axy)
              done;
              if !changed then touched t i
          | Signal.Eq ->
            let aw = Array.length ad in
            fun () ->
              let diff = ref 0L in
              for p = 0 to aw - 1 do
                diff :=
                  Int64.logor !diff
                    (Int64.logxor (Array.unsafe_get ad p) (Array.unsafe_get bd p))
              done;
              let changed = ref false in
              store ~changed dd 0 (Int64.lognot !diff);
              if !changed then touched t i
          | Signal.Lt ->
            (* Unsigned compare, LSB to MSB:
               lt' = (~a & b) | (a xnor b) & lt. *)
            let aw = Array.length ad in
            fun () ->
              let lt = ref 0L in
              for p = 0 to aw - 1 do
                let x = Array.unsafe_get ad p and y = Array.unsafe_get bd p in
                let same = Int64.lognot (Int64.logxor x y) in
                lt :=
                  Int64.logor
                    (Int64.logand (Int64.lognot x) y)
                    (Int64.logand same !lt)
              done;
              let changed = ref false in
              store ~changed dd 0 !lt;
              if !changed then touched t i
          | Signal.Mul ->
            let aw = Bits.limb_count a in
            let scratch = Bits.zero (bw w) in
            fun () ->
              for l = 0 to lanes - 1 do
                let av = extract_lane a ~lane:l aw
                and bv = extract_lane b ~lane:l aw in
                pack_lane ~dst:scratch ~lane:l (Bits.mul av bv)
              done;
              publish t i scratch)
        | Simcompile.O_not a ->
          let ad = Bits.unsafe_data bufs.(a) in
          let w = width_of i in
          let dd = Bits.unsafe_data bufs.(i) in
          fun () ->
            let changed = ref false in
            for p = 0 to w - 1 do
              store ~changed dd p (Int64.lognot (Array.unsafe_get ad p))
            done;
            if !changed then touched t i
        | Simcompile.O_concat parts ->
          let parts = Array.map (fun j -> bufs.(j)) parts in
          let dst = Bits.zero (bw (width_of i)) in
          fun () ->
            Bits.concat_msb_into ~dst parts;
            publish t i dst
        | Simcompile.O_select { src; high; low } ->
          let src = bufs.(src) in
          let dst = Bits.zero (bw (width_of i)) in
          let high = (high * lane_bits) + lane_bits - 1
          and low = low * lane_bits in
          fun () ->
            Bits.select_into ~dst src ~high ~low;
            publish t i dst
        | Simcompile.O_mux { select; cases } ->
          let sel = bufs.(select) in
          let cases = Array.map (fun j -> bufs.(j)) cases in
          let n_cases = Array.length cases in
          let w = width_of i in
          if n_cases = 1 then (fun () -> publish t i cases.(0))
          else begin
            let dd = Bits.unsafe_data bufs.(i) in
            let seld = Bits.unsafe_data sel in
            let sw = Array.length seld in
            let cased = Array.map Bits.unsafe_data cases in
            let masks = Array.make (n_cases - 1) 0L in
            fun () ->
              (* A lane matches case [c] iff every select plane agrees
                 with the corresponding bit of [c]; lanes matching no
                 case (out-of-range or too-wide selects) fall through
                 to the last case, like Signal.mux_index. *)
              let any = ref 0L in
              for c = 0 to n_cases - 2 do
                let m = ref (-1L) in
                for b = 0 to sw - 1 do
                  let p = Array.unsafe_get seld b in
                  let want = b < 62 && (c lsr b) land 1 = 1 in
                  m := Int64.logand !m (if want then p else Int64.lognot p)
                done;
                masks.(c) <- !m;
                any := Int64.logor !any !m
              done;
              let last_mask = Int64.lognot !any in
              let last = cased.(n_cases - 1) in
              let changed = ref false in
              for b = 0 to w - 1 do
                let acc = ref (Int64.logand last_mask (Array.unsafe_get last b)) in
                for c = 0 to n_cases - 2 do
                  acc :=
                    Int64.logor !acc
                      (Int64.logand
                         (Array.unsafe_get masks c)
                         (Array.unsafe_get (Array.unsafe_get cased c) b))
                done;
                store ~changed dd b !acc
              done;
              if !changed then touched t i
          end
        | Simcompile.O_state ->
          let st = Option.get state.(i) in
          fun () -> publish t i st
        | Simcompile.O_mem_read_async { mem_uid; mem_width; addr } ->
          let arrs = Hashtbl.find mem_arrays mem_uid in
          let addr = bufs.(addr) in
          let aw = Bits.limb_count addr in
          let z = Bits.zero mem_width in
          let dst = Bits.zero (bw mem_width) in
          fun () ->
            for l = 0 to lanes - 1 do
              let av = extract_lane addr ~lane:l aw in
              let v =
                match Bits.to_int_opt av with
                | Some a when a < Array.length arrs.(l) -> arrs.(l).(a)
                | Some _ | None -> z
              in
              pack_lane ~dst ~lane:l v
            done;
            publish t i dst
        | Simcompile.O_wire d ->
          let d = bufs.(d) in
          fun () -> publish t i d
      in
      t.evals.(i) <- eval)
    (Simcompile.plan_ops plan);
  let edge1 = ref [] in
  let commits = ref [] in
  Array.iter
    (function
      | Simcompile.E_reg { index = i; d; enable; clear; clear_to } ->
        let st = Option.get state.(i) and nx = Option.get next_state.(i) in
        let d_idx = d and en_idx = enable and cl_idx = clear in
        let dd = Bits.unsafe_data bufs.(d) in
        let enable = Option.map (fun j -> bufs.(j)) enable in
        let clear = Option.map (fun j -> bufs.(j)) clear in
        let ctd = Bits.unsafe_data (broadcast clear_to) in
        let std = Bits.unsafe_data st and nxd = Bits.unsafe_data nx in
        let w = Array.length std in
        (* Generation memo: with d / enable / clear unchanged since the
           last recompute and the previous commit a no-op, the register
           is at a fixpoint (enabled lanes already hold d, cleared
           lanes hold clear_to, the rest hold themselves) — the whole
           sample/commit pair collapses to three int compares. *)
        let gd = ref (-1) and ge = ref (-1) and gc = ref (-1) in
        let stable = ref false in
        let ran = ref false in
        let sample () =
          let cgd = t.buf_gen.(d_idx)
          and cge = (match en_idx with Some j -> t.buf_gen.(j) | None -> 0)
          and cgc = (match cl_idx with Some j -> t.buf_gen.(j) | None -> 0) in
          if
            (not !stable) || t.poked.(i) || cgd <> !gd || cge <> !ge
            || cgc <> !gc
          then begin
            t.poked.(i) <- false;
            gd := cgd;
            ge := cge;
            gc := cgc;
            let cm = match clear with Some c -> lane_or c | None -> 0L in
            let em = match enable with Some e -> lane_or e | None -> -1L in
            let ncm = Int64.lognot cm and nem = Int64.lognot em in
            for b = 0 to w - 1 do
              Array.unsafe_set nxd b
                (Int64.logor
                   (Int64.logand cm (Array.unsafe_get ctd b))
                   (Int64.logand ncm
                      (Int64.logor
                         (Int64.logand em (Array.unsafe_get dd b))
                         (Int64.logand nem (Array.unsafe_get std b)))))
            done;
            ran := true
          end
        in
        let commit () =
          if !ran then begin
            ran := false;
            if Bits.blit_changed ~src:nx ~dst:st then begin
              mark t i;
              (* nx reads st: recompute next edge from the new state. *)
              stable := false
            end
            else stable := true
          end
        in
        edge1 := sample :: !edge1;
        commits := commit :: !commits
      | Simcompile.E_sync_read { index = i; mem_uid; mem_width; addr; enable } ->
        let st = Option.get state.(i) and nx = Option.get next_state.(i) in
        let arrs = Hashtbl.find mem_arrays mem_uid in
        let addr_idx = addr and en_idx = enable in
        let addr = bufs.(addr) in
        let aw = Bits.limb_count addr in
        let enable = Option.map (fun j -> bufs.(j)) enable in
        let z = Bits.zero mem_width in
        let mem_gen = mem_gen_of mem_uid in
        let ga = ref (-1) and ge = ref (-1) and gm = ref (-1) in
        let stable = ref false in
        let ran = ref false in
        let sample () =
          let cga = t.buf_gen.(addr_idx)
          and cge = (match en_idx with Some j -> t.buf_gen.(j) | None -> 0)
          and cgm = !mem_gen in
          if
            (not !stable) || t.poked.(i) || cga <> !ga || cge <> !ge
            || cgm <> !gm
          then begin
            t.poked.(i) <- false;
            ga := cga;
            ge := cge;
            gm := cgm;
            Bits.blit ~src:st ~dst:nx;
            let em = match enable with Some e -> lane_or e | None -> -1L in
            for l = 0 to lanes - 1 do
              if lane_bit em l then begin
                let av = extract_lane addr ~lane:l aw in
                let v =
                  match Bits.to_int_opt av with
                  | Some a when a < Array.length arrs.(l) -> arrs.(l).(a)
                  | Some _ | None -> z
                in
                pack_lane ~dst:nx ~lane:l v
              end
            done;
            ran := true
          end
        in
        let commit () =
          if !ran then begin
            ran := false;
            if Bits.blit_changed ~src:nx ~dst:st then begin
              mark t i;
              stable := false
            end
            else stable := true
          end
        in
        edge1 := sample :: !edge1;
        commits := commit :: !commits)
    (Simcompile.plan_edges plan);
  let writes = ref [] in
  Array.iter
    (fun { Simcompile.wp_mem_uid; wp_enable; wp_addr; wp_data } ->
      let arrs = Hashtbl.find mem_arrays wp_mem_uid in
      let gen = mem_gen_of wp_mem_uid in
      let readers = Simcompile.plan_mem_readers plan wp_mem_uid in
      let enable = bufs.(wp_enable)
      and addr = bufs.(wp_addr)
      and data = bufs.(wp_data) in
      let aw = Bits.limb_count addr and dw = Bits.limb_count data in
      let write () =
        let em = lane_or enable in
        if not (Int64.equal em 0L) then begin
          let any = ref false in
          for l = 0 to lanes - 1 do
            if lane_bit em l then begin
              let av = extract_lane addr ~lane:l aw in
              match Bits.to_int_opt av with
              | Some a when a < Array.length arrs.(l) ->
                let dv = extract_lane data ~lane:l dw in
                if not (Bits.equal arrs.(l).(a) dv) then begin
                  arrs.(l).(a) <- dv;
                  any := true
                end
              | Some _ | None -> ()
            end
          done;
          if !any then begin
            incr gen;
            Array.iter (fun j -> mark t j) readers
          end
        end
      in
      writes := write :: !writes)
    (Simcompile.plan_write_ports plan);
  t.edge1 <- Array.of_list (List.rev !edge1);
  t.writes <- Array.of_list (List.rev !writes);
  t.commits <- Array.of_list (List.rev !commits);
  t

let lanes t = t.lanes
let plan t = t.plan
let circuit t = Simcompile.plan_circuit t.plan

let check_lane t lane =
  if lane < 0 || lane >= t.lanes then
    invalid_arg (Printf.sprintf "Simbatch: lane %d out of range (0..%d)" lane (t.lanes - 1))

let index t s =
  match Simcompile.plan_index_of_uid t.plan s with
  | Some i -> i
  | None -> invalid_arg "Cyclesim: signal not part of this circuit"

let in_port t ~lane name =
  check_lane t lane;
  (* A ref is escaping: from now on every settle must scan the lanes
     for re-assigned refs (see [in_refs_used]). *)
  t.in_refs_used <- true;
  let rec go k =
    if k >= Array.length t.inputs then
      invalid_arg (Printf.sprintf "Cyclesim: no input port named %s" name)
    else if String.equal t.inputs.(k).in_name name then t.inputs.(k).in_refs.(lane)
    else go (k + 1)
  in
  go 0

let settle_comb t =
  t.settles <- t.settles + 1;
  for k = 0 to Array.length t.inputs - 1 do
    let inp = t.inputs.(k) in
    if t.in_refs_used then begin
      let w = Signal.width t.signals.(inp.in_index) in
      for l = 0 to t.lanes - 1 do
        let b = !(inp.in_refs.(l)) in
        if b != inp.in_last.(l) then begin
          if Bits.width b <> w then
            invalid_arg
              (Printf.sprintf
                 "Cyclesim: input %s driven with width %d, expected %d"
                 inp.in_name (Bits.width b) w);
          pack_lane ~dst:inp.in_packed ~lane:l b;
          inp.in_last.(l) <- b;
          inp.in_dirty <- true
        end
      done
    end;
    if inp.in_dirty then begin
      inp.in_dirty <- false;
      if not (Bits.equal inp.in_packed t.bufs.(inp.in_index)) then
        mark t inp.in_index
    end
  done;
  let n = Array.length t.evals in
  let i = ref 0 in
  while t.ndirty > 0 && !i < n do
    let j = !i in
    if t.dirty.(j) then begin
      t.dirty.(j) <- false;
      t.ndirty <- t.ndirty - 1;
      t.node_evals <- t.node_evals + 1;
      t.kind_evals.(t.kinds.(j)) <- t.kind_evals.(t.kinds.(j)) + 1;
      t.evals.(j) ();
      let m = t.force_mask.(j) in
      if not (Int64.equal m 0L) then apply_force t j m
    end;
    incr i
  done

let refresh_outputs t =
  if t.out_refs_used then
    Array.iteri
      (fun k (_, i, refs) ->
        (* Output values only move when the node's buffer does; the
           generation stamp lets a settle with quiet outputs skip the
           per-lane extraction entirely. *)
        let g = t.buf_gen.(i) in
        if g <> t.out_gen.(k) then begin
          t.out_gen.(k) <- g;
          let w = Signal.width t.signals.(i) in
          for l = 0 to t.lanes - 1 do
            let v = extract_lane t.bufs.(i) ~lane:l w in
            if not (Bits.equal !(refs.(l)) v) then refs.(l) := v
          done
        end)
      t.output_refs

let out_port t ~lane name =
  check_lane t lane;
  if not t.out_refs_used then begin
    (* First ref handed out: bring every ref up to date now (the
       buffers are settled), then keep them fresh on every settle. *)
    t.out_refs_used <- true;
    refresh_outputs t
  end;
  let rec go k =
    if k >= Array.length t.output_refs then
      invalid_arg (Printf.sprintf "Cyclesim: no output port named %s" name)
    else
      let n, _, rs = t.output_refs.(k) in
      if String.equal n name then rs.(lane) else go (k + 1)
  in
  go 0

let settle t =
  settle_comb t;
  refresh_outputs t

let clock_edge t =
  for k = 0 to Array.length t.edge1 - 1 do
    t.edge1.(k) ()
  done;
  for k = 0 to Array.length t.writes - 1 do
    t.writes.(k) ()
  done;
  for k = 0 to Array.length t.commits - 1 do
    t.commits.(k) ()
  done

let cycle t =
  settle t;
  clock_edge t;
  t.cycles <- t.cycles + 1

let force t ~lane s b =
  check_lane t lane;
  let i = index t s in
  let w = Signal.width t.signals.(i) in
  if Bits.width b <> w then
    invalid_arg
      (Printf.sprintf "Cyclesim.force: value width %d, signal width %d"
         (Bits.width b) w);
  let fv =
    match t.force_vals.(i) with
    | Some fv -> fv
    | None ->
      let fv = Bits.zero (bw w) in
      t.force_vals.(i) <- Some fv;
      fv
  in
  pack_lane ~dst:fv ~lane b;
  t.force_mask.(i) <- Int64.logor t.force_mask.(i) (Int64.shift_left 1L lane);
  mark t i

let release t ~lane s =
  check_lane t lane;
  let i = index t s in
  let m = Int64.logand t.force_mask.(i) (Int64.lognot (Int64.shift_left 1L lane)) in
  if not (Int64.equal m t.force_mask.(i)) then begin
    t.force_mask.(i) <- m;
    if Int64.equal m 0L then t.force_vals.(i) <- None;
    mark t i
  end

let release_all t ~lane =
  check_lane t lane;
  let nm = Int64.lognot (Int64.shift_left 1L lane) in
  for i = 0 to Array.length t.force_mask - 1 do
    let m = Int64.logand t.force_mask.(i) nm in
    if not (Int64.equal m t.force_mask.(i)) then begin
      t.force_mask.(i) <- m;
      if Int64.equal m 0L then t.force_vals.(i) <- None;
      mark t i
    end
  done

let forced t ~lane s =
  check_lane t lane;
  let i = index t s in
  if lane_bit t.force_mask.(i) lane then
    Option.map
      (fun fv -> extract_lane fv ~lane (Signal.width t.signals.(i)))
      t.force_vals.(i)
  else None

let peek t ~lane s =
  check_lane t lane;
  let i = index t s in
  extract_lane t.bufs.(i) ~lane (Signal.width t.signals.(i))

let peek_state t ~lane s =
  check_lane t lane;
  let i = index t s in
  match t.state.(i) with
  | Some st -> extract_lane st ~lane (Signal.width t.signals.(i))
  | None -> invalid_arg "Cyclesim.peek_state: signal holds no state"

let poke_state t ~lane s b =
  check_lane t lane;
  let i = index t s in
  match t.state.(i) with
  | None -> invalid_arg "Cyclesim.poke_state: signal holds no state"
  | Some st ->
    if bw (Bits.width b) <> Bits.width st then
      invalid_arg "Cyclesim.poke_state: width mismatch";
    pack_lane ~dst:st ~lane b;
    (* The edge kernel's memo thinks [st] still matches its inputs;
       invalidate it or the poked value would survive the next edge on
       enabled lanes, diverging from the scalar engine. *)
    t.poked.(i) <- true;
    mark t i

let memory_contents t ~lane m =
  check_lane t lane;
  let arrs = Hashtbl.find t.mem_arrays (Signal.memory_uid m) in
  (* The caller may mutate the array (fault injection does), so the
     memory's async readers can no longer be assumed clean, and the
     sync-read kernels' write-generation memo is stale. *)
  incr (Hashtbl.find t.mem_gens (Signal.memory_uid m));
  Array.iter (fun j -> mark t j)
    (Simcompile.plan_mem_readers t.plan (Signal.memory_uid m));
  arrs.(lane)

let reset t =
  Array.fill t.force_mask 0 (Array.length t.force_mask) 0L;
  Array.fill t.force_vals 0 (Array.length t.force_vals) None;
  Array.iteri
    (fun i init ->
      match init with
      | Some init_scalar ->
        let b = broadcast init_scalar in
        Bits.blit ~src:b ~dst:(Option.get t.state.(i));
        Bits.blit ~src:b ~dst:(Option.get t.next_state.(i))
      | None -> ())
    (Simcompile.plan_state_init t.plan);
  Hashtbl.iter
    (fun _ arrs ->
      Array.iter
        (fun arr ->
          Array.fill arr 0 (Array.length arr) (Bits.zero (Bits.width arr.(0))))
        arrs)
    t.mem_arrays;
  Array.iter
    (fun inp ->
      let w = Signal.width t.signals.(inp.in_index) in
      Array.iter (fun r -> r := Bits.zero w) inp.in_refs;
      (* Invalidate the pack memo so every lane repacks from its
         fresh zero, and zero the packed image directly — with no refs
         in use the settle sweep trusts the image alone. *)
      Array.iteri (fun l _ -> inp.in_last.(l) <- Bits.zero w) inp.in_last;
      for p = 0 to Bits.limb_count inp.in_packed - 1 do
        Bits.unsafe_set_limb inp.in_packed p 0L
      done;
      inp.in_dirty <- true)
    t.inputs;
  Array.fill t.dirty 0 (Array.length t.dirty) true;
  t.ndirty <- Array.length t.dirty;
  (* State and memories were re-initialised behind the kernels' backs:
     drop every generation memo. *)
  Array.fill t.poked 0 (Array.length t.poked) true;
  Hashtbl.iter (fun _ g -> incr g) t.mem_gens;
  t.cycles <- 0;
  settle t

let cycle_count t = t.cycles
let settles t = t.settles
let node_evals t = t.node_evals
let total_nodes t = Array.length t.signals
let kind_evals t = Array.copy t.kind_evals

(* --- Plane-level access (batched harnesses) ------------------------------ *)

(* Batched stimulus, monitors and collectors avoid the per-lane scalar
   API entirely: one bit-plane read or write touches all lanes at once.
   These are deliberately thin — indices are resolved once at harness
   construction, then the per-cycle path is a handful of word ops. *)

let node_index t s = index t s

let input_index t name =
  let rec go k =
    if k >= Array.length t.inputs then
      invalid_arg (Printf.sprintf "Cyclesim: no input port named %s" name)
    else if String.equal t.inputs.(k).in_name name then k
    else go (k + 1)
  in
  go 0

let out_node t name =
  let rec go k =
    if k >= Array.length t.output_refs then
      invalid_arg (Printf.sprintf "Cyclesim: no output port named %s" name)
    else
      let n, i, _ = t.output_refs.(k) in
      if String.equal n name then i else go (k + 1)
  in
  go 0

let read_plane t i ~plane = Bits.get_limb t.bufs.(i) plane

(* Overwrite the [mask] lanes of one input bit-plane with [bits];
   lanes outside [mask] keep their previous value, exactly as a scalar
   driver that does not touch them would leave their refs alone. Takes
   effect at the next settle, like ref assignment (the settle sweep
   compares the packed image against the published value). Do not mix
   with per-lane ref drives of the same port: a ref assignment to lane
   [l] overwrites all of lane [l]'s planes at the next settle. *)
let write_input_plane t k ~plane ~mask ~bits =
  let inp = t.inputs.(k) in
  let ip = inp.in_packed in
  let old = Bits.get_limb ip plane in
  let nv =
    Int64.logor (Int64.logand old (Int64.lognot mask)) (Int64.logand bits mask)
  in
  if not (Int64.equal nv old) then begin
    Bits.set_limb ip plane nv;
    inp.in_dirty <- true
  end
