(** The metaprogramming VHDL generator (§3.4).

    Produces customised VHDL entity/architecture pairs for containers
    and iterators from a {!Config.t}: only the requested operations get
    ports and logic (pruning), the implementation interface matches the
    selected physical target, and multi-word transfers are generated
    when the element is wider than the physical bus.

    The generated text reproduces the artefact level of the paper's
    Figures 4 and 5: a functional interface (method strobes [m_*] and
    parameter ports), plus a per-target implementation interface
    ([p_*], [req]/[ack]). *)

type direction = In | Out

type port = { port_name : string; dir : direction; width : int }
(** [width = 1] renders as [std_logic], otherwise [std_logic_vector]. *)

val functional_ports : Config.t -> port list
(** Method strobes and parameter ports, before the implementation
    interface. Pruned to [ops_used]. Includes {!protection_ports}. *)

val protection_ports : Config.t -> port list
(** The sticky error outputs of the generated protection hardware:
    [err] when [Config.parity] is set, [timeout] when
    [Config.op_timeout] is set. Empty for unprotected configs. *)

val implementation_ports : Config.t -> port list
(** Target-specific ports: FIFO ([p_empty]/[p_read]/[p_data]), SRAM
    ([p_addr]/[p_data]/[req]/[ack]), block RAM, LIFO, or line buffer. *)

val container_entity : Config.t -> string
(** The entity declaration, Figures 4/5 style. *)

val container_architecture : Config.t -> string

val generate_container : ?trace:Hwpat_obs.Trace.t -> Config.t -> string
(** Complete VHDL design unit: libraries, entity, architecture.
    [trace] (default disabled) records a [codegen:container] span
    annotated with the pruning decision — which of the kind's
    operations were kept ([ops_kept]), which were cut ([ops_pruned]),
    and the resulting method strobes ([methods]). *)

val iterator_entity : Config.t -> string
(** The iterator over this container: a renaming wrapper exposing the
    Table 2 operations that [ops_used] retains. *)

val generate_iterator : ?trace:Hwpat_obs.Trace.t -> Config.t -> string
(** Same [trace] convention as {!generate_container}, under a
    [codegen:iterator] span. *)

val generate_package : name:string -> Config.t list -> string
(** A VHDL package declaring one component per configuration — the
    "standardized foundation libraries combining the most successful
    patterns" the paper calls for. Component ports match
    {!container_entity}. *)

val port_to_string : port -> string
