type container_kind =
  | Stack
  | Queue
  | Read_buffer
  | Write_buffer
  | Vector
  | Assoc_array

type operation = Inc | Dec | Read | Write | Index

type target = Fifo_core | Lifo_core | Block_ram | Ext_sram | Line_buffer3

type access = Random_access | Sequential_access
type traversal = Forward | Backward | Both

type capability = {
  random_input : bool;
  random_output : bool;
  sequential_input : traversal option;
  sequential_output : traversal option;
}

(* Table 1. A stack is read forward (popping walks down the stored
   sequence) and written backward; a queue streams forward on both
   sides; buffers are one-directional; a vector supports everything;
   an associative array only random access. *)
let capabilities = function
  | Stack ->
    {
      random_input = false;
      random_output = false;
      sequential_input = Some Forward;
      sequential_output = Some Backward;
    }
  | Queue ->
    {
      random_input = false;
      random_output = false;
      sequential_input = Some Forward;
      sequential_output = Some Forward;
    }
  | Read_buffer ->
    {
      random_input = false;
      random_output = false;
      sequential_input = Some Forward;
      sequential_output = None;
    }
  | Write_buffer ->
    {
      random_input = false;
      random_output = false;
      sequential_input = None;
      sequential_output = Some Forward;
    }
  | Vector ->
    {
      random_input = true;
      random_output = true;
      sequential_input = Some Both;
      sequential_output = Some Both;
    }
  | Assoc_array ->
    {
      random_input = true;
      random_output = true;
      sequential_input = None;
      sequential_output = None;
    }

let legal_targets = function
  | Stack -> [ Lifo_core; Block_ram; Ext_sram ]
  | Queue -> [ Fifo_core; Block_ram; Ext_sram ]
  | Read_buffer -> [ Fifo_core; Block_ram; Ext_sram; Line_buffer3 ]
  | Write_buffer -> [ Fifo_core; Block_ram; Ext_sram ]
  | Vector -> [ Block_ram; Ext_sram ]
  | Assoc_array -> [ Block_ram; Ext_sram ]

let operations kind =
  let c = capabilities kind in
  let seq_ops =
    match (c.sequential_input, c.sequential_output) with
    | None, None -> []
    | _ ->
      let fwd t = match t with Some Forward | Some Both -> true | _ -> false in
      let bwd t = match t with Some Backward | Some Both -> true | _ -> false in
      (if fwd c.sequential_input || fwd c.sequential_output then [ Inc ] else [])
      @ if bwd c.sequential_input || bwd c.sequential_output then [ Dec ] else []
  in
  let rw =
    (if c.random_input || c.sequential_input <> None then [ Read ] else [])
    @ if c.random_output || c.sequential_output <> None then [ Write ] else []
  in
  let idx = if c.random_input || c.random_output then [ Index ] else [] in
  seq_ops @ rw @ idx

let operation_meaning = function
  | Inc -> "move forward"
  | Dec -> "move backwards"
  | Read -> "get the element"
  | Write -> "put the element"
  | Index -> "set the current position"

let operation_applicability = function
  | Inc -> "F / F, B"
  | Dec -> "B / F, B"
  | Read -> "random / F, B"
  | Write -> "random / F, B"
  | Index -> "random"

let container_name = function
  | Stack -> "stack"
  | Queue -> "queue"
  | Read_buffer -> "read buffer"
  | Write_buffer -> "write buffer"
  | Vector -> "vector"
  | Assoc_array -> "assoc. array"

let target_name = function
  | Fifo_core -> "fifo"
  | Lifo_core -> "lifo"
  | Block_ram -> "bram"
  | Ext_sram -> "sram"
  | Line_buffer3 -> "linebuf3"

let operation_name = function
  | Inc -> "inc"
  | Dec -> "dec"
  | Read -> "read"
  | Write -> "write"
  | Index -> "index"

let all_containers = [ Stack; Queue; Read_buffer; Write_buffer; Vector; Assoc_array ]
let all_operations = [ Inc; Dec; Read; Write; Index ]
let all_targets = [ Fifo_core; Lifo_core; Block_ram; Ext_sram; Line_buffer3 ]

(* Optional protection hardware the generator can weave into a mapped
   container. Parity needs widenable word storage, so it applies to the
   RAM-backed targets; the operation watchdog guards a multi-cycle
   acknowledge, which only the external SRAM path has. *)
type protection = Parity | Op_watchdog

let protection_name = function
  | Parity -> "parity"
  | Op_watchdog -> "watchdog"

let protection_meaning = function
  | Parity -> "per-word parity bit, checked on read, sticky error flag"
  | Op_watchdog ->
    "bounded retries on the memory handshake, then forced ack + error"

let legal_protections = function
  | Block_ram -> [ Parity ]
  | Ext_sram -> [ Parity; Op_watchdog ]
  | Fifo_core | Lifo_core | Line_buffer3 -> []

let all_protections = [ Parity; Op_watchdog ]

let traversal_cell = function
  | None -> "-"
  | Some Forward -> "F"
  | Some Backward -> "B"
  | Some Both -> "F, B"

let random_cell b = if b then "~" else "-"

let table1 =
  let header =
    [
      Printf.sprintf "%-14s | %-6s %-6s | %-10s %-10s" "Containers" "Random" ""
        "Sequential" "";
      Printf.sprintf "%-14s | %-6s %-6s | %-10s %-10s" "" "Input" "Output" "Input"
        "Output";
      String.make 56 '-';
    ]
  in
  let rows =
    List.map
      (fun k ->
        let c = capabilities k in
        Printf.sprintf "%-14s | %-6s %-6s | %-10s %-10s" (container_name k)
          (random_cell c.random_input) (random_cell c.random_output)
          (traversal_cell c.sequential_input)
          (traversal_cell c.sequential_output))
      all_containers
  in
  String.concat "\n" (header @ rows)

let table2 =
  let header =
    [
      Printf.sprintf "%-9s | %-24s | %-14s" "Operation" "Meaning" "Applicability";
      String.make 53 '-';
    ]
  in
  let rows =
    List.map
      (fun op ->
        Printf.sprintf "%-9s | %-24s | %-14s" (operation_name op)
          (operation_meaning op)
          (operation_applicability op))
      all_operations
  in
  String.concat "\n" (header @ rows)
