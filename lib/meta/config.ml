type t = {
  instance_name : string;
  kind : Metamodel.container_kind;
  target : Metamodel.target;
  elem_width : int;
  depth : int;
  bus_width : int;
  addr_width : int;
  ops_used : Metamodel.operation list;
  wait_states : int;
  parity : bool;
  op_timeout : int option;
}

let make ?bus_width ?addr_width ?ops_used ?(wait_states = 1) ?(parity = false)
    ?op_timeout ~instance_name ~kind ~target ~elem_width ~depth () =
  if elem_width < 1 then invalid_arg "Config.make: elem_width must be >= 1";
  if depth < 1 then invalid_arg "Config.make: depth must be >= 1";
  let bus_width = match bus_width with Some w -> w | None -> elem_width in
  let addr_width =
    match addr_width with
    | Some w -> w
    | None -> Hwpat_rtl.Util.address_bits depth
  in
  if elem_width mod bus_width <> 0 then
    invalid_arg "Config.make: elem_width must be a multiple of bus_width";
  if not (List.mem target (Metamodel.legal_targets kind)) then
    invalid_arg
      (Printf.sprintf "Config.make: %s cannot be implemented over %s"
         (Metamodel.container_name kind)
         (Metamodel.target_name target));
  let supported = Metamodel.operations kind in
  let ops_used = match ops_used with Some ops -> ops | None -> supported in
  List.iter
    (fun op ->
      if not (List.mem op supported) then
        invalid_arg
          (Printf.sprintf "Config.make: %s does not support operation %s"
             (Metamodel.container_name kind)
             (Metamodel.operation_name op)))
    ops_used;
  let require_protection p =
    if not (List.mem p (Metamodel.legal_protections target)) then
      invalid_arg
        (Printf.sprintf "Config.make: %s protection is not available on %s"
           (Metamodel.protection_name p)
           (Metamodel.target_name target))
  in
  if parity then require_protection Metamodel.Parity;
  (match op_timeout with
  | Some n ->
    require_protection Metamodel.Op_watchdog;
    if n < 1 then invalid_arg "Config.make: op_timeout must be >= 1"
  | None -> ());
  {
    instance_name;
    kind;
    target;
    elem_width;
    depth;
    bus_width;
    addr_width;
    ops_used;
    wait_states;
    parity;
    op_timeout;
  }

let protected t = t.parity || t.op_timeout <> None

let words_per_element t = t.elem_width / t.bus_width

let entity_name t =
  Printf.sprintf "%s_%s" t.instance_name (Metamodel.target_name t.target)

let describe t =
  let protection =
    match (t.parity, t.op_timeout) with
    | false, None -> ""
    | true, None -> ", parity"
    | false, Some n -> Printf.sprintf ", watchdog %d" n
    | true, Some n -> Printf.sprintf ", parity + watchdog %d" n
  in
  Printf.sprintf "%s: %s over %s, %d x %d bits (bus %d, ops %s%s)"
    t.instance_name
    (Metamodel.container_name t.kind)
    (Metamodel.target_name t.target)
    t.depth t.elem_width t.bus_width
    (String.concat "," (List.map Metamodel.operation_name t.ops_used))
    protection
