type direction = In | Out

type port = { port_name : string; dir : direction; width : int }

let p name dir width = { port_name = name; dir; width }

let vhdl_type width =
  if width = 1 then "std_logic"
  else Printf.sprintf "std_logic_vector(%d downto 0)" (width - 1)

let port_to_string port =
  Printf.sprintf "%s : %s %s" port.port_name
    (match port.dir with In -> "in" | Out -> "out")
    (vhdl_type port.width)

let has_op cfg op = List.mem op cfg.Config.ops_used

(* Method strobes exposed by each container kind, derived from the
   operations kept after pruning. Sequential read is the fused
   pop (read + inc); sequential write is the fused push. *)
let method_names cfg =
  let open Metamodel in
  let seq_read = has_op cfg Read && has_op cfg Inc in
  let seq_write = has_op cfg Write && has_op cfg Inc in
  match cfg.Config.kind with
  | Read_buffer -> (if seq_read then [ "pop" ] else []) @ [ "empty"; "size" ]
  | Write_buffer -> (if seq_write then [ "push" ] else []) @ [ "full"; "size" ]
  | Queue | Stack ->
    (if seq_write then [ "push" ] else [])
    @ (if seq_read then [ "pop" ] else [])
    @ [ "empty"; "full"; "size" ]
  | Vector ->
    (if has_op cfg Read then [ "read" ] else [])
    @ (if has_op cfg Write then [ "write" ] else [])
    @ [ "size" ]
  | Assoc_array ->
    (if has_op cfg Read then [ "lookup" ] else [])
    @ (if has_op cfg Write then [ "insert"; "delete" ] else [])
    @ [ "size" ]

let size_width cfg = Hwpat_rtl.Util.bits_to_represent cfg.Config.depth

(* Error outputs of the generated protection hardware (§Config.parity /
   §Config.op_timeout): both are sticky flags raised by the woven-in
   parity checker and handshake watchdog. *)
let protection_ports cfg =
  (if cfg.Config.parity then [ p "err" Out 1 ] else [])
  @
  match cfg.Config.op_timeout with
  | Some _ -> [ p "timeout" Out 1 ]
  | None -> []

let functional_ports cfg =
  let open Metamodel in
  let methods = List.map (fun m -> p ("m_" ^ m) In 1) (method_names cfg) in
  let elem = cfg.Config.elem_width in
  let data_in =
    if
      has_op cfg Write
      && cfg.Config.kind <> Read_buffer (* read buffers are source-only *)
    then [ p "a_data" In elem ]
    else []
  in
  let addr_in =
    match cfg.Config.kind with
    | Vector -> [ p "a_index" In cfg.Config.addr_width ]
    | Assoc_array -> [ p "a_key" In cfg.Config.addr_width ]
    | Stack | Queue | Read_buffer | Write_buffer -> []
  in
  let data_out = if has_op cfg Read then [ p "r_data" Out elem ] else [] in
  let found =
    match cfg.Config.kind with Assoc_array -> [ p "r_found" Out 1 ] | _ -> []
  in
  let status =
    [ p "r_empty" Out 1; p "r_full" Out 1; p "r_size" Out (size_width cfg) ]
  in
  let ack = [ p "r_ack" Out 1 ] in
  methods @ data_in @ addr_in @ data_out @ found @ status @ ack
  @ protection_ports cfg

let implementation_ports cfg =
  let bus = cfg.Config.bus_width in
  let addr = cfg.Config.addr_width in
  match cfg.Config.target with
  | Metamodel.Fifo_core ->
    [
      p "p_empty" In 1;
      p "p_full" In 1;
      p "p_read" Out 1;
      p "p_write" Out 1;
      p "p_din" Out bus;
      p "p_data" In bus;
    ]
  | Metamodel.Lifo_core ->
    [
      p "p_empty" In 1;
      p "p_full" In 1;
      p "p_push" Out 1;
      p "p_pop" Out 1;
      p "p_din" Out bus;
      p "p_data" In bus;
    ]
  | Metamodel.Block_ram ->
    [
      p "p_addr" Out addr;
      p "p_we" Out 1;
      p "p_wdata" Out bus;
      p "p_rdata" In bus;
    ]
  | Metamodel.Ext_sram ->
    [
      p "p_addr" Out addr;
      p "p_data" In bus;
      p "p_wdata" Out bus;
      p "p_we" Out 1;
      p "req" Out 1;
      p "ack" In 1;
    ]
  | Metamodel.Line_buffer3 ->
    [
      p "p_top" In bus;
      p "p_mid" In bus;
      p "p_bot" In bus;
      p "p_valid" In 1;
      p "p_advance" Out 1;
    ]

let needs_clock cfg =
  match cfg.Config.target with
  | Metamodel.Fifo_core | Metamodel.Lifo_core | Metamodel.Line_buffer3 ->
    Config.words_per_element cfg > 1
  | Metamodel.Block_ram | Metamodel.Ext_sram -> true

let section buf title = Buffer.add_string buf (Printf.sprintf "    -- %s\n" title)

let container_entity cfg =
  let buf = Buffer.create 1024 in
  let name = Config.entity_name cfg in
  Buffer.add_string buf (Printf.sprintf "entity %s is\n  port (\n" name);
  let clocked = needs_clock cfg in
  if clocked then Buffer.add_string buf "    clk : in std_logic;\n";
  section buf "methods";
  let f_ports = functional_ports cfg in
  let i_ports = implementation_ports cfg in
  let params_marked = ref false in
  List.iter
    (fun port ->
      if port.dir = Out && not !params_marked then begin
        params_marked := true;
        section buf "params"
      end;
      Buffer.add_string buf (Printf.sprintf "    %s;\n" (port_to_string port)))
    f_ports;
  section buf "implementation interface";
  let n_i = List.length i_ports in
  List.iteri
    (fun i port ->
      Buffer.add_string buf
        (Printf.sprintf "    %s%s\n" (port_to_string port)
           (if i = n_i - 1 then "" else ";")))
    i_ports;
  Buffer.add_string buf (Printf.sprintf "  );\nend %s;\n" name);
  Buffer.contents buf

(* Architectures. The FIFO/LIFO wrappers are pure renaming, "hardly any
   logic" as the paper notes; the RAM targets carry the little FSM with
   begin/end pointer registers. *)

let arch_header name = Printf.sprintf "architecture generated of %s is\n" name

(* Method strobes used by the RAM-backed architectures, per kind. *)
let read_method cfg =
  match cfg.Config.kind with
  | Metamodel.Vector -> "m_read"
  | Metamodel.Assoc_array -> "m_lookup"
  | Metamodel.Stack | Metamodel.Queue | Metamodel.Read_buffer
  | Metamodel.Write_buffer ->
    "m_pop"

let write_method cfg =
  match cfg.Config.kind with
  | Metamodel.Vector -> "m_write"
  | Metamodel.Assoc_array -> "m_insert"
  | Metamodel.Stack | Metamodel.Queue | Metamodel.Read_buffer
  | Metamodel.Write_buffer ->
    "m_push"

let fifo_arch cfg =
  let name = Config.entity_name cfg in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (arch_header name);
  Buffer.add_string buf "begin\n";
  let read_sig, write_sig =
    match cfg.Config.target with
    | Metamodel.Lifo_core -> ("p_pop", "p_push")
    | _ -> ("p_read", "p_write")
  in
  let open Metamodel in
  (match cfg.Config.kind with
  | Read_buffer | Queue | Stack ->
    if has_op cfg Read then begin
      Buffer.add_string buf (Printf.sprintf "  %s <= m_pop;\n" read_sig);
      Buffer.add_string buf "  r_data <= p_data;\n";
      Buffer.add_string buf "  r_ack <= m_pop and not p_empty;\n"
    end
  | Write_buffer | Vector | Assoc_array -> ());
  (match cfg.Config.kind with
  | Write_buffer | Queue | Stack ->
    if has_op cfg Write then begin
      Buffer.add_string buf (Printf.sprintf "  %s <= m_push;\n" write_sig);
      Buffer.add_string buf "  p_din <= a_data;\n"
    end
  | Read_buffer | Vector | Assoc_array -> ());
  Buffer.add_string buf "  r_empty <= p_empty;\n";
  Buffer.add_string buf "  r_full <= p_full;\n";
  Buffer.add_string buf "  r_size <= (others => '0'); -- provided by the core\n";
  Buffer.add_string buf "end generated;\n";
  Buffer.contents buf

(* Protection hardware woven into the RAM-backed architectures. The
   parity checker keeps one parity bit per stored bus word and latches
   a sticky [err] when a read disagrees; the watchdog counts
   unacknowledged request cycles, allows one retry window, then latches
   the sticky [timeout] flag. Mirrors Hwpat_containers.Protect. *)

let storage_words cfg = cfg.Config.depth * Config.words_per_element cfg

let protection_decls cfg buf =
  if cfg.Config.parity then
    Buffer.add_string buf
      (Printf.sprintf
         "  -- protection: one parity bit per stored word\n\
          \  signal par_wr  : std_logic;\n\
          \  signal par_mem : std_logic_vector(%d downto 0);\n\
          \  signal err_r   : std_logic;\n"
         (storage_words cfg - 1));
  match cfg.Config.op_timeout with
  | Some timeout ->
    Buffer.add_string buf
      (Printf.sprintf
         "  -- protection: watchdog on the memory handshake\n\
          \  signal wd_cnt    : unsigned(%d downto 0);\n\
          \  signal wd_try    : unsigned(1 downto 0);\n\
          \  signal timeout_r : std_logic;\n"
         (Hwpat_rtl.Util.bits_to_represent timeout - 1))
  | None -> ()

let protection_body cfg buf =
  let is_sram = cfg.Config.target = Metamodel.Ext_sram in
  if cfg.Config.parity then begin
    Buffer.add_string buf "  par_wr <= xor p_wdata;\n";
    if is_sram then
      Buffer.add_string buf
        "  process (clk)\n\
         \  begin\n\
         \    if rising_edge(clk) then\n\
         \      if ack = '1' then\n\
         \        if p_we = '1' then\n\
         \          par_mem(to_integer(unsigned(p_addr))) <= par_wr;\n\
         \        elsif (xor p_data) /= par_mem(to_integer(unsigned(p_addr))) then\n\
         \          err_r <= '1';\n\
         \        end if;\n\
         \      end if;\n\
         \    end if;\n\
         \  end process;\n"
    else
      Buffer.add_string buf
        "  process (clk)\n\
         \  begin\n\
         \    if rising_edge(clk) then\n\
         \      if p_we = '1' then\n\
         \        par_mem(to_integer(unsigned(p_addr))) <= par_wr;\n\
         \      elsif r_ack = '1' and (xor p_rdata) /= par_mem(to_integer(unsigned(p_addr))) then\n\
         \        err_r <= '1';\n\
         \      end if;\n\
         \    end if;\n\
         \  end process;\n";
    Buffer.add_string buf "  err <= err_r;\n"
  end;
  match cfg.Config.op_timeout with
  | Some timeout ->
    Buffer.add_string buf
      (Printf.sprintf
         "  process (clk)\n\
          \  begin\n\
          \    if rising_edge(clk) then\n\
          \      if req = '1' and ack = '0' then\n\
          \        wd_cnt <= wd_cnt + 1;\n\
          \        if wd_cnt = to_unsigned(%d, wd_cnt'length) then\n\
          \          wd_cnt <= (others => '0');\n\
          \          if wd_try = to_unsigned(1, wd_try'length) then\n\
          \            timeout_r <= '1';\n\
          \            wd_try <= (others => '0');\n\
          \          else\n\
          \            wd_try <= wd_try + 1;\n\
          \          end if;\n\
          \        end if;\n\
          \      else\n\
          \        wd_cnt <= (others => '0');\n\
          \        if ack = '1' then\n\
          \          wd_try <= (others => '0');\n\
          \        end if;\n\
          \      end if;\n\
          \    end if;\n\
          \  end process;\n"
         timeout);
    Buffer.add_string buf "  timeout <= timeout_r;\n"
  | None -> ()

let sram_arch cfg =
  let name = Config.entity_name cfg in
  let words = Config.words_per_element cfg in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf (arch_header name);
  Buffer.add_string buf
    (Printf.sprintf
       "  -- circular buffer over the static RAM: begin/end pointers\n\
        \  signal ptr_begin : unsigned(%d downto 0);\n\
        \  signal ptr_end   : unsigned(%d downto 0);\n\
        \  signal count     : unsigned(%d downto 0);\n"
       (cfg.Config.addr_width - 1) (cfg.Config.addr_width - 1)
       (size_width cfg - 1));
  if words > 1 then
    Buffer.add_string buf
      (Printf.sprintf
         "  -- element is %d bus words wide: word counter for multi-access\n\
          \  signal word_idx : unsigned(%d downto 0);\n\
          \  signal shreg    : std_logic_vector(%d downto 0);\n"
         words
         (Hwpat_rtl.Util.bits_to_represent words - 1)
         (cfg.Config.elem_width - 1));
  Buffer.add_string buf
    "  type state_t is (st_idle, st_access, st_done);\n  signal state : state_t;\n";
  protection_decls cfg buf;
  Buffer.add_string buf "begin\n";
  Buffer.add_string buf
    "  process (clk)\n  begin\n    if rising_edge(clk) then\n      case state is\n";
  Buffer.add_string buf "        when st_idle =>\n";
  let open Metamodel in
  if has_op cfg Read then
    Buffer.add_string buf
      (Printf.sprintf
         "          if %s = '1' and count /= 0 then\n\
       \            req <= '1'; p_we <= '0';\n\
       \            p_addr <= std_logic_vector(ptr_begin);\n\
       \            state <= st_access;\n\
       \          end if;\n" (read_method cfg));
  if has_op cfg Write && cfg.Config.kind <> Read_buffer then
    Buffer.add_string buf
      (Printf.sprintf
         "          if %s = '1' and count /= to_unsigned(%d, count'length) then\n\
       \            req <= '1'; p_we <= '1';\n\
       \            p_addr <= std_logic_vector(ptr_end);\n\
       \            p_wdata <= a_data(p_wdata'range);\n\
       \            state <= st_access;\n\
       \          end if;\n" (write_method cfg) cfg.Config.depth);
  Buffer.add_string buf
    "        when st_access =>\n\
     \          if ack = '1' then\n\
     \            req <= '0';\n";
  if words > 1 then
    Buffer.add_string buf
      "            -- assemble/advance multi-word element\n\
       \            word_idx <= word_idx + 1;\n";
  Buffer.add_string buf
    "            state <= st_done;\n\
     \          end if;\n\
     \        when st_done =>\n\
     \          r_ack <= '1';\n\
     \          state <= st_idle;\n\
     \      end case;\n\
     \    end if;\n\
     \  end process;\n";
  if has_op cfg Read then
    Buffer.add_string buf
      (if words > 1 then
         "  r_data <= p_data & shreg(shreg'high downto p_data'length);\n"
       else "  r_data <= p_data;\n");
  protection_body cfg buf;
  Buffer.add_string buf "end generated;\n";
  Buffer.contents buf

let bram_arch cfg =
  (* Same pointer FSM as SRAM minus the wait-state handshake. *)
  let name = Config.entity_name cfg in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (arch_header name);
  Buffer.add_string buf
    (Printf.sprintf
       "  signal ptr_begin : unsigned(%d downto 0);\n\
        \  signal ptr_end   : unsigned(%d downto 0);\n\
        \  signal count     : unsigned(%d downto 0);\n"
       (cfg.Config.addr_width - 1) (cfg.Config.addr_width - 1)
       (size_width cfg - 1));
  protection_decls cfg buf;
  Buffer.add_string buf "begin\n";
  Buffer.add_string buf
    "  process (clk)\n  begin\n    if rising_edge(clk) then\n";
  let open Metamodel in
  if has_op cfg Read then
    Buffer.add_string buf
      (Printf.sprintf
         "      if %s = '1' and count /= 0 then\n\
       \        p_addr <= std_logic_vector(ptr_begin);\n\
       \        ptr_begin <= ptr_begin + 1;\n\
       \        count <= count - 1;\n\
       \        r_ack <= '1';\n\
       \      end if;\n" (read_method cfg));
  if has_op cfg Write && cfg.Config.kind <> Read_buffer then
    Buffer.add_string buf
      (Printf.sprintf
         "      if %s = '1' then\n\
       \        p_addr <= std_logic_vector(ptr_end);\n\
       \        p_we <= '1';\n\
       \        ptr_end <= ptr_end + 1;\n\
       \        count <= count + 1;\n\
       \      end if;\n" (write_method cfg));
  Buffer.add_string buf "    end if;\n  end process;\n";
  if has_op cfg Read then Buffer.add_string buf "  r_data <= p_rdata;\n";
  protection_body cfg buf;
  Buffer.add_string buf "end generated;\n";
  Buffer.contents buf

let linebuf_arch cfg =
  let name = Config.entity_name cfg in
  Printf.sprintf
    "architecture generated of %s is\nbegin\n\
     \  -- 3-line buffer presents a 3-pixel column per access\n\
     \  p_advance <= m_pop;\n\
     \  r_data <= p_top & p_mid & p_bot;\n\
     \  r_ack <= p_valid;\n\
     \  r_empty <= not p_valid;\n\
     \  r_full <= '0';\n\
     \  r_size <= (others => '0');\nend generated;\n"
    name

(* Vector: direct addressing, no pointers. Over block RAM the access
   is single-cycle; over SRAM it rides the req/ack handshake. *)
let vector_arch cfg =
  let name = Config.entity_name cfg in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (arch_header name);
  Buffer.add_string buf "  signal busy : std_logic;\n";
  protection_decls cfg buf;
  Buffer.add_string buf "begin\n";
  Buffer.add_string buf
    "  process (clk)\n  begin\n    if rising_edge(clk) then\n";
  let is_sram = cfg.Config.target = Metamodel.Ext_sram in
  if has_op cfg Read then
    Buffer.add_string buf
      (if is_sram then
         "      if m_read = '1' and busy = '0' then\n\
          \        p_addr <= a_index;\n\
          \        p_we <= '0';\n\
          \        req <= '1';\n\
          \        busy <= '1';\n\
          \      end if;\n\
          \      if ack = '1' then\n\
          \        req <= '0';\n\
          \        busy <= '0';\n\
          \        r_ack <= '1';\n\
          \      end if;\n"
       else
         "      if m_read = '1' then\n\
          \        p_addr <= a_index;\n\
          \        r_ack <= '1';\n\
          \      end if;\n");
  if has_op cfg Write then
    Buffer.add_string buf
      (if is_sram then
         "      if m_write = '1' and busy = '0' then\n\
          \        p_addr <= a_index;\n\
          \        p_wdata <= a_data(p_wdata'range);\n\
          \        p_we <= '1';\n\
          \        req <= '1';\n\
          \        busy <= '1';\n\
          \      end if;\n"
       else
         "      if m_write = '1' then\n\
          \        p_addr <= a_index;\n\
          \        p_wdata <= a_data(p_wdata'range);\n\
          \        p_we <= '1';\n\
          \      end if;\n");
  Buffer.add_string buf "    end if;\n  end process;\n";
  if has_op cfg Read then
    Buffer.add_string buf
      (if is_sram then "  r_data <= p_data;\n" else "  r_data <= p_rdata;\n");
  protection_body cfg buf;
  Buffer.add_string buf "end generated;\n";
  Buffer.contents buf

(* Associative array: hash-probe FSM skeleton (linear probing with
   tombstones, mirroring the signal-level builder). *)
let assoc_arch cfg =
  let name = Config.entity_name cfg in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf (arch_header name);
  Buffer.add_string buf
    (Printf.sprintf
       "  -- slot word: [state(2) | key | value]\n\
        \  type state_t is (st_idle, st_probe, st_store, st_done);\n\
        \  signal state : state_t;\n\
        \  signal probe_addr : unsigned(%d downto 0);\n\
        \  signal probe_cnt  : unsigned(%d downto 0);\n"
       (cfg.Config.addr_width - 1) cfg.Config.addr_width);
  protection_decls cfg buf;
  Buffer.add_string buf "begin\n";
  Buffer.add_string buf
    "  process (clk)\n  begin\n    if rising_edge(clk) then\n      case state is\n";
  Buffer.add_string buf
    "        when st_idle =>\n\
     \          if m_lookup = '1' or m_insert = '1' or m_delete = '1' then\n\
     \            probe_addr <= unsigned(a_key(probe_addr'range));\n\
     \            probe_cnt <= (others => '0');\n\
     \            state <= st_probe;\n\
     \          end if;\n";
  Buffer.add_string buf
    "        when st_probe =>\n\
     \          -- read the slot, compare key / slot state, advance or decide\n\
     \          probe_addr <= probe_addr + 1;\n\
     \          probe_cnt <= probe_cnt + 1;\n\
     \          if probe_cnt = to_unsigned(0, probe_cnt'length) then\n\
     \            state <= st_store;\n\
     \          end if;\n";
  Buffer.add_string buf
    "        when st_store =>\n\
     \          state <= st_done;\n\
     \        when st_done =>\n\
     \          r_ack <= '1';\n\
     \          state <= st_idle;\n      end case;\n    end if;\n  end process;\n";
  if has_op cfg Read then
    Buffer.add_string buf
      (if cfg.Config.target = Metamodel.Ext_sram then "  r_data <= p_data;\n"
       else "  r_data <= p_rdata;\n");
  protection_body cfg buf;
  Buffer.add_string buf "end generated;\n";
  Buffer.contents buf

let container_architecture cfg =
  match (cfg.Config.kind, cfg.Config.target) with
  | Metamodel.Vector, _ -> vector_arch cfg
  | Metamodel.Assoc_array, _ -> assoc_arch cfg
  | _, (Metamodel.Fifo_core | Metamodel.Lifo_core) -> fifo_arch cfg
  | _, Metamodel.Ext_sram -> sram_arch cfg
  | _, Metamodel.Block_ram -> bram_arch cfg
  | _, Metamodel.Line_buffer3 -> linebuf_arch cfg

let libraries =
  "library ieee;\nuse ieee.std_logic_1164.all;\nuse ieee.numeric_std.all;\n\n"

(* Render the pruning decision a config implies: which of the kind's
   operations survive into the generated entity, and which are cut.
   Recorded as span annotations so a trace of a generation run shows
   *why* each entity has the ports it has. *)
let op_list ops = String.concat "," (List.map Metamodel.operation_name ops)

let pruned_ops cfg =
  List.filter
    (fun op -> not (List.mem op cfg.Config.ops_used))
    (Metamodel.operations cfg.Config.kind)

let annotate_pruning trace cfg =
  let module Trace = Hwpat_obs.Trace in
  if Trace.enabled trace then begin
    Trace.annotate trace "ops_kept" (Trace.String (op_list cfg.Config.ops_used));
    Trace.annotate trace "ops_pruned" (Trace.String (op_list (pruned_ops cfg)));
    Trace.annotate trace "methods"
      (Trace.String (String.concat "," (method_names cfg)))
  end

let generate_container ?(trace = Hwpat_obs.Trace.null) cfg =
  let module Trace = Hwpat_obs.Trace in
  Trace.span trace "codegen:container"
    ~args:
      [
        ("entity", Trace.String cfg.Config.instance_name);
        ("kind", Trace.String (Metamodel.container_name cfg.Config.kind));
        ("target", Trace.String (Metamodel.target_name cfg.Config.target));
      ]
  @@ fun () ->
  annotate_pruning trace cfg;
  String.concat "\n" [ libraries ^ container_entity cfg; container_architecture cfg ]

(* Iterators: one metamodel per container kind; for sequential
   containers they are renaming wrappers (no logic), exactly the
   observation the paper makes about them dissolving at synthesis. *)

let iterator_ports cfg =
  let open Metamodel in
  let op_ports =
    List.concat_map
      (fun op ->
        match op with
        | Inc -> [ p "it_inc" In 1 ]
        | Dec -> [ p "it_dec" In 1 ]
        | Read -> [ p "it_read" In 1; p "it_data" Out cfg.Config.elem_width ]
        | Write -> [ p "it_write" In 1; p "it_wdata" In cfg.Config.elem_width ]
        | Index -> [ p "it_index" In 1; p "it_pos" In cfg.Config.addr_width ])
      cfg.Config.ops_used
  in
  op_ports @ [ p "it_ack" Out 1 ]

let container_facing_ports cfg =
  (* Mirror of the container's functional interface, seen from the
     iterator. *)
  List.map
    (fun port ->
      {
        port with
        port_name = "c_" ^ port.port_name;
        dir = (match port.dir with In -> Out | Out -> In);
      })
    (functional_ports cfg)

let iterator_entity cfg =
  let buf = Buffer.create 1024 in
  let name = Printf.sprintf "%s_it" cfg.Config.instance_name in
  Buffer.add_string buf (Printf.sprintf "entity %s is\n  port (\n" name);
  section buf "iterator operations (table 2)";
  List.iter
    (fun port ->
      Buffer.add_string buf (Printf.sprintf "    %s;\n" (port_to_string port)))
    (iterator_ports cfg);
  section buf "container interface";
  let c_ports = container_facing_ports cfg in
  let n = List.length c_ports in
  List.iteri
    (fun i port ->
      Buffer.add_string buf
        (Printf.sprintf "    %s%s\n" (port_to_string port)
           (if i = n - 1 then "" else ";")))
    c_ports;
  Buffer.add_string buf (Printf.sprintf "  );\nend %s;\n" name);
  Buffer.contents buf

let iterator_architecture cfg =
  let name = Printf.sprintf "%s_it" cfg.Config.instance_name in
  let buf = Buffer.create 512 in
  Buffer.add_string buf (arch_header name);
  Buffer.add_string buf "begin\n  -- a pure wrapper: renames signals only\n";
  let open Metamodel in
  (match cfg.Config.kind with
  | Read_buffer | Queue | Stack ->
    if has_op cfg Read then begin
      Buffer.add_string buf "  c_m_pop <= it_read and it_inc;\n";
      Buffer.add_string buf "  it_data <= c_r_data;\n"
    end;
    if has_op cfg Write && cfg.Config.kind <> Read_buffer then begin
      Buffer.add_string buf "  c_m_push <= it_write and it_inc;\n";
      Buffer.add_string buf "  c_a_data <= it_wdata;\n"
    end
  | Write_buffer ->
    if has_op cfg Write then begin
      Buffer.add_string buf "  c_m_push <= it_write and it_inc;\n";
      Buffer.add_string buf "  c_a_data <= it_wdata;\n"
    end
  | Vector | Assoc_array ->
    Buffer.add_string buf "  -- random iterator: position register elsewhere\n");
  Buffer.add_string buf "  it_ack <= c_r_ack;\nend generated;\n";
  Buffer.contents buf

let generate_iterator ?(trace = Hwpat_obs.Trace.null) cfg =
  let module Trace = Hwpat_obs.Trace in
  Trace.span trace "codegen:iterator"
    ~args:
      [
        ("entity", Trace.String (cfg.Config.instance_name ^ "_it"));
        ("kind", Trace.String (Metamodel.container_name cfg.Config.kind));
      ]
  @@ fun () ->
  annotate_pruning trace cfg;
  String.concat "\n" [ libraries ^ iterator_entity cfg; iterator_architecture cfg ]

(* A foundation-library package: component declarations for a set of
   generated containers, ready for `use work.<name>.all`. *)
let generate_package ~name configs =
  let buf = Buffer.create 4096 in
  let emit buf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  Buffer.add_string buf libraries;
  emit buf "package %s is\n\n" name;
  List.iter
    (fun cfg ->
      emit buf "  component %s\n    port (\n" (Config.entity_name cfg);
      let clocked = needs_clock cfg in
      let ports =
        (if clocked then [ p "clk" In 1 ] else [])
        @ functional_ports cfg @ implementation_ports cfg
      in
      let n = List.length ports in
      List.iteri
        (fun i port ->
          emit buf "      %s%s\n" (port_to_string port)
            (if i = n - 1 then "" else ";"))
        ports;
      emit buf "    );\n  end component;\n\n")
    configs;
  emit buf "end %s;\n" name;
  Buffer.contents buf
