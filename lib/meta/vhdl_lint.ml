type issue = { line : int; message : string }

let pp_issue fmt i = Format.fprintf fmt "line %d: %s" i.line i.message

(* VHDL keywords, standard functions and library names that may appear
   in generated text without a local declaration. *)
let known_words =
  [
    "and"; "or"; "not"; "xor"; "nand"; "nor"; "if"; "then"; "else"; "elsif";
    "end"; "process"; "case"; "when"; "others"; "begin"; "is"; "in"; "out";
    "inout"; "signal"; "type"; "array"; "of"; "downto"; "to"; "loop"; "while";
    "for"; "rising_edge"; "falling_edge"; "unsigned"; "signed"; "std_logic";
    "std_logic_vector"; "to_integer"; "to_unsigned"; "to_signed"; "resize";
    "clk"; "range"; "length"; "high"; "low"; "left"; "right"; "event";
    "architecture"; "entity"; "port"; "map"; "generic"; "library"; "use";
    "all"; "ieee"; "std_logic_1164"; "numeric_std"; "work"; "null"; "variable";
    "constant"; "integer"; "natural"; "boolean"; "true"; "false"; "wait";
    "until"; "after"; "ns"; "generate"; "component"; "abs"; "mod"; "rem";
    "sll"; "srl"; "report"; "severity"; "assert"; "shift_left"; "shift_right";
  ]

let is_ident_char c =
  match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false

(* Tokenise a line into lowercase words, stripping comments. *)
let words_of_line line =
  let line =
    match String.index_opt line '-' with
    | Some i when i + 1 < String.length line && line.[i + 1] = '-' ->
      String.sub line 0 i
    | _ -> line
  in
  let words = ref [] in
  let buf = Buffer.create 16 in
  let flush () =
    if Buffer.length buf > 0 then begin
      words := String.lowercase_ascii (Buffer.contents buf) :: !words;
      Buffer.clear buf
    end
  in
  String.iter
    (fun c -> if is_ident_char c then Buffer.add_char buf c else flush ())
    line;
  flush ();
  List.rev !words

let check text =
  let lines = String.split_on_char '\n' text in
  let issues = ref [] in
  let add line message = issues := { line; message } :: !issues in
  let entities = ref [] in
  let ends = ref [] in
  let declared = ref [] in
  let assigned = ref [] in
  let referenced = ref [] in
  let processes = ref 0 and end_processes = ref 0 in
  let ifs = ref 0 and end_ifs = ref 0 in
  let cases = ref 0 and end_cases = ref 0 in
  let arch_entity = ref None in
  List.iteri
    (fun idx line ->
      let lineno = idx + 1 in
      let words = words_of_line line in
      (* Structure counting. *)
      let rec scan = function
        | "end" :: "process" :: rest ->
          incr end_processes;
          scan rest
        | "end" :: "if" :: rest ->
          incr end_ifs;
          scan rest
        | "end" :: "case" :: rest ->
          incr end_cases;
          scan rest
        | "end" :: name :: rest ->
          ends := name :: !ends;
          scan rest
        | "process" :: rest ->
          incr processes;
          scan rest
        | "elsif" :: rest -> scan rest
        | "if" :: rest ->
          incr ifs;
          scan rest
        | "case" :: rest ->
          incr cases;
          scan rest
        | "entity" :: name :: rest ->
          entities := name :: !entities;
          scan rest
        | "architecture" :: _arch_name :: "of" :: ent :: rest ->
          arch_entity := Some (ent, lineno);
          scan rest
        | _ :: rest -> scan rest
        | [] -> ()
      in
      scan words;
      (* Declarations: ports ("name : in/out ..."), signals, and type
         enumerations (which declare their literals too). *)
      (match words with
      | "signal" :: name :: _ -> declared := name :: !declared
      | "type" :: name :: "is" :: literals ->
        declared := name :: (literals @ !declared)
      | name :: ("in" | "out") :: _ -> declared := name :: !declared
      | _ -> ());
      (* Every identifier used anywhere must resolve to a declaration,
         a keyword or a standard function. Numeric-leading tokens are
         literals. *)
      List.iter
        (fun word ->
          match word.[0] with
          | '0' .. '9' -> ()
          | _ ->
            if not (List.mem word known_words) then
              referenced := (word, lineno) :: !referenced)
        words;
      (* Assignments: "lhs <= ...". *)
      let rec find_assign i =
        if i + 1 < String.length line then
          if line.[i] = '<' && line.[i + 1] = '=' then Some i
          else find_assign (i + 1)
        else None
      in
      match find_assign 0 with
      | Some i ->
        let lhs = String.trim (String.sub line 0 i) in
        let base =
          match String.index_opt lhs '(' with
          | Some j -> String.trim (String.sub lhs 0 j)
          | None -> lhs
        in
        if base <> "" && String.for_all is_ident_char base then
          assigned := (String.lowercase_ascii base, lineno) :: !assigned
      | None -> ())
    lines;
  if !processes <> !end_processes then
    add 0
      (Printf.sprintf "unbalanced process/end process (%d vs %d)" !processes
         !end_processes);
  if !ifs <> !end_ifs then
    add 0 (Printf.sprintf "unbalanced if/end if (%d vs %d)" !ifs !end_ifs);
  if !cases <> !end_cases then
    add 0 (Printf.sprintf "unbalanced case/end case (%d vs %d)" !cases !end_cases);
  List.iter
    (fun ent ->
      if not (List.mem ent !ends) then
        add 0 (Printf.sprintf "entity %s has no matching 'end %s;'" ent ent))
    !entities;
  (match !arch_entity with
  | Some (ent, lineno) ->
    if not (List.mem ent !entities) then
      add lineno (Printf.sprintf "architecture of unknown entity %s" ent)
  | None -> ());
  List.iter
    (fun (name, lineno) ->
      if not (List.mem name !declared) then
        add lineno (Printf.sprintf "assignment to undeclared identifier %s" name))
    !assigned;
  (* Architecture/entity names and end labels are declarations of a
     sort for reference checking. *)
  let resolvable = !declared @ !entities @ !ends @ [ "generated"; "rtl" ] in
  List.iter
    (fun (name, lineno) ->
      if not (List.mem name resolvable) then
        add lineno (Printf.sprintf "reference to undeclared identifier %s" name))
    (List.sort_uniq compare !referenced);
  List.rev !issues

let is_clean text = check text = []

(* --- Protection-hardware checks ----------------------------------------- *)

let contains_line text pred =
  List.exists pred (List.map String.trim (String.split_on_char '\n' text))

let has_port text name =
  let prefix = name ^ " : out std_logic" in
  contains_line text (fun l ->
      String.length l >= String.length prefix
      && String.sub l 0 (String.length prefix) = prefix)

let has_word text word =
  contains_line text (fun l -> List.mem word (words_of_line l))

let check_protected ~parity ~op_timeout text =
  let issues = ref (check text) in
  let add message = issues := !issues @ [ { line = 0; message } ] in
  let expect present name what =
    match (present, name) with
    | true, false -> add (Printf.sprintf "protected design lacks %s" what)
    | false, true -> add (Printf.sprintf "unprotected design declares %s" what)
    | _ -> ()
  in
  expect parity (has_port text "err") "an 'err : out std_logic' port";
  expect parity (has_word text "par_mem") "the parity store (par_mem)";
  expect op_timeout (has_port text "timeout") "a 'timeout : out std_logic' port";
  expect op_timeout (has_word text "wd_cnt") "the watchdog counter (wd_cnt)";
  !issues
