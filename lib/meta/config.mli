(** Generation parameters for one concrete container or iterator
    instance — the input to the metaprogramming code generator. *)

type t = {
  instance_name : string;             (** e.g. "rbuffer" *)
  kind : Metamodel.container_kind;
  target : Metamodel.target;
  elem_width : int;                   (** element (base type) width in bits *)
  depth : int;                        (** capacity in elements *)
  bus_width : int;                    (** physical data bus width *)
  addr_width : int;                   (** physical address bus width *)
  ops_used : Metamodel.operation list; (** operations to generate (pruning) *)
  wait_states : int;                  (** external SRAM only *)
  parity : bool;                      (** per-word parity + [err] output *)
  op_timeout : int option;            (** watchdog window on the memory
                                          handshake + [timeout] output *)
}

val make :
  ?bus_width:int ->
  ?addr_width:int ->
  ?ops_used:Metamodel.operation list ->
  ?wait_states:int ->
  ?parity:bool ->
  ?op_timeout:int ->
  instance_name:string ->
  kind:Metamodel.container_kind ->
  target:Metamodel.target ->
  elem_width:int ->
  depth:int ->
  unit ->
  t
(** Defaults: [bus_width = elem_width], [addr_width] wide enough for
    [depth], [ops_used] = every operation the container supports,
    [wait_states = 1], no protection hardware.

    Raises [Invalid_argument] if the target is not legal for the
    container kind (per {!Metamodel.legal_targets}), if an operation in
    [ops_used] is not supported by the kind, if [elem_width] is not
    a multiple of [bus_width], or if a requested protection is not
    legal for the target (per {!Metamodel.legal_protections}). *)

val protected : t -> bool
(** True when any protection hardware is configured. *)

val words_per_element : t -> int
(** How many physical bus transfers one element needs (§3.3's pixel
    format discussion: a 24-bit pixel over an 8-bit bus takes 3). *)

val entity_name : t -> string
(** "<instance>_<target>", as in the paper's [rbuffer_fifo] /
    [rbuffer_sram]. *)

val describe : t -> string
