(** A lightweight structural linter for generated VHDL text.

    Not a parser — a set of sanity checks that catch the common
    generator bugs: unbalanced constructs, ports referenced but never
    declared, entity/architecture name mismatches. Used by the test
    suite on every generated artefact. *)

type issue = { line : int; message : string }

val check : string -> issue list
(** Empty list = clean. Checks performed:
    - every [entity X] has a matching [end X;]
    - [process]/[end process], [case]/[end case], [if]/[end if] balance
    - architecture references an entity declared in the same text
    - identifiers used on the left of [<=] inside the architecture are
      declared as ports or signals *)

val is_clean : string -> bool

val check_protected : parity:bool -> op_timeout:bool -> string -> issue list
(** {!check} plus structural checks on generated protection hardware:
    when [parity] is set the text must declare an [err : out std_logic]
    port and the parity store; when [op_timeout] is set, a
    [timeout : out std_logic] port and the watchdog counter. When a
    flag is off the corresponding artefacts must be absent. *)

val pp_issue : Format.formatter -> issue -> unit
