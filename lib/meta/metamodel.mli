(** The metamodels behind the basic component library (§3.2).

    A metamodel captures what the paper's code generator needs to know
    about a component family: which operations exist, which physical
    targets can implement it, and which iterator kinds it supports.
    Tables 1 and 2 of the paper are encoded here and everything else
    (signal-level builders, VHDL templates, the capability matrices
    printed by the benchmark harness) derives from these definitions. *)

(** The six containers of Table 1. *)
type container_kind =
  | Stack
  | Queue
  | Read_buffer
  | Write_buffer
  | Vector
  | Assoc_array

(** The iterator operations of Table 2. *)
type operation = Inc | Dec | Read | Write | Index

(** Physical targets a container can be mapped onto (§3.4). *)
type target =
  | Fifo_core   (** on-chip FIFO primitive *)
  | Lifo_core   (** on-chip LIFO primitive *)
  | Block_ram   (** on-chip dual-port RAM *)
  | Ext_sram    (** external asynchronous SRAM behind a controller *)
  | Line_buffer3 (** the specialised 3-line video buffer (blur, §4) *)

type access = Random_access | Sequential_access
type traversal = Forward | Backward | Both

(** One side of Table 1: whether a container supports reading
    (input) or writing (output), and how it can be traversed. *)
type capability = {
  random_input : bool;
  random_output : bool;
  sequential_input : traversal option;
  sequential_output : traversal option;
}

val capabilities : container_kind -> capability
(** Table 1, row by row. *)

val legal_targets : container_kind -> target list
(** §3.4: every container maps onto RAM (block RAM or external SRAM);
    stacks additionally onto LIFO cores; queues and read/write buffers
    additionally onto FIFO cores; read buffers also onto the 3-line
    buffer for windowed algorithms. *)

val operations : container_kind -> operation list
(** Operations an iterator over this container exposes (Table 2 applied
    to the container's capabilities). *)

val operation_applicability : operation -> string
(** The "Applicability" column of Table 2, as printed in the paper. *)

val operation_meaning : operation -> string
(** The "Meaning" column of Table 2. *)

val container_name : container_kind -> string
val target_name : target -> string
val operation_name : operation -> string

(** Optional protection hardware the generator can weave into a mapped
    container (error detection and graceful degradation). *)
type protection = Parity | Op_watchdog

val legal_protections : target -> protection list
(** Parity applies to the RAM-backed targets (the stored word can be
    widened by one bit); the operation watchdog applies only to the
    external SRAM, whose multi-cycle acknowledge can be lost. *)

val protection_name : protection -> string
val protection_meaning : protection -> string

val all_containers : container_kind list
val all_operations : operation list
val all_targets : target list
val all_protections : protection list

val table1 : string
(** Rendered capability matrix in the layout of the paper's Table 1. *)

val table2 : string
(** Rendered operation table in the layout of the paper's Table 2. *)
