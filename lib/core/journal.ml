(* Crash-safe checkpoint journal for resumable campaigns.

   The format is line-oriented JSON: a header line binding the journal
   to one campaign configuration, then one line per completed shard,
   appended and flushed as each shard finishes.  Keys are the
   campaigns' uid-independent shard descriptions, so a journal written
   by one process (serial or sharded, any job count) replays in any
   other.

   Crash safety comes from the append-and-flush discipline plus a
   tolerant reader: a SIGKILL can tear at most the final line, and the
   loader simply stops at the first line that does not parse — every
   fully-flushed record before it is preserved.  (The final summary
   artifacts go through [Util.with_out_file]'s atomic tmp+rename
   scheme instead; the journal is the one file that must survive
   being killed mid-write, which is exactly what append-only gives.)

   Strings are escaped with OCaml's [%S] — a superset of JSON string
   escaping for the printable-ASCII descriptions the campaigns emit —
   and parsed back with [Scanf]'s [%S], so a record round-trips
   byte-exactly without a JSON parser. *)

type entry = { e_key : string; e_data : string }

type t = {
  path : string;
  config : string;
  mutable oc : out_channel option;
  mutex : Mutex.t;
  completed : (string, string) Hashtbl.t;
  mutable resumed : int;  (* entries loaded from disk at open time *)
  note : string option;  (* anomaly worth telling the user, e.g. empty file *)
}

exception Config_mismatch of { path : string; expected : string; found : string }

let header_line config =
  Printf.sprintf "{\"hwpat_checkpoint\": 1, \"config\": %S}" config

let parse_header line =
  try Scanf.sscanf line "{\"hwpat_checkpoint\": 1, \"config\": %S}" (fun c -> Some c)
  with Scanf.Scan_failure _ | Failure _ | End_of_file -> None

let entry_line ~key data = Printf.sprintf "{\"key\": %S, \"data\": %S}" key data

let parse_entry line =
  try
    Scanf.sscanf line "{\"key\": %S, \"data\": %S}" (fun k d ->
        Some { e_key = k; e_data = d })
  with Scanf.Scan_failure _ | Failure _ | End_of_file -> None

(* Read every parseable record; stop at the first torn or foreign
   line (a crash can tear only the final one). *)
let load_entries ic =
  let entries = ref [] in
  let stop = ref false in
  (try
     while not !stop do
       match input_line ic with
       | line -> (
         match parse_entry line with
         | Some e -> entries := e :: !entries
         | None -> stop := true)
       | exception End_of_file -> stop := true
     done
   with Sys_error _ -> ());
  List.rev !entries

let start ~path ~config ~resume =
  let completed = Hashtbl.create 97 in
  let resumed = ref 0 in
  let note = ref None in
  if resume && Sys.file_exists path then begin
    let ic = open_in path in
    Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
    (match input_line ic with
    | header -> (
      match parse_header header with
      | Some found when String.equal found config -> ()
      | Some found -> raise (Config_mismatch { path; expected = config; found })
      | None ->
        failwith
          (Printf.sprintf "checkpoint %s is not a hwpat checkpoint journal"
             path))
    | exception End_of_file ->
      (* Zero-length file: a crash landed before even the header was
         flushed. There is nothing to replay and nothing inconsistent —
         behave exactly like a fresh run, but say so out loud rather
         than silently discarding the --resume request. *)
      let msg =
        Printf.sprintf "checkpoint %s was empty; starting a fresh run" path
      in
      note := Some msg;
      Printf.eprintf "hwpat: note: %s\n%!" msg);
    List.iter
      (fun e ->
        if not (Hashtbl.mem completed e.e_key) then incr resumed;
        Hashtbl.replace completed e.e_key e.e_data)
      (load_entries ic)
  end;
  (* Rewrite the journal from the surviving records (through the
     atomic tmp+rename writer), dropping any torn tail, then reopen in
     append mode for the new run's records. *)
  Hwpat_rtl.Util.with_out_file path (fun oc ->
      output_string oc (header_line config);
      output_char oc '\n';
      Hashtbl.fold (fun k d acc -> (k, d) :: acc) completed []
      |> List.sort compare
      |> List.iter (fun (k, d) ->
             output_string oc (entry_line ~key:k d);
             output_char oc '\n'));
  let oc = open_out_gen [ Open_append; Open_wronly ] 0o644 path in
  {
    path;
    config;
    oc = Some oc;
    mutex = Mutex.create ();
    completed;
    resumed = !resumed;
    note = !note;
  }

let find t key = Hashtbl.find_opt t.completed key
let resumed t = t.resumed
let note t = t.note
let completed t = Hashtbl.length t.completed
let path t = t.path

let record t ~key data =
  Mutex.protect t.mutex (fun () ->
      match t.oc with
      | None -> ()
      | Some oc ->
        Hashtbl.replace t.completed key data;
        output_string oc (entry_line ~key data);
        output_char oc '\n';
        (* Flush per record: after this returns the shard's result
           survives any crash; a kill mid-write tears only this line
           and the loader drops it. *)
        flush oc)

let close t =
  Mutex.protect t.mutex (fun () ->
      match t.oc with
      | None -> ()
      | Some oc ->
        t.oc <- None;
        close_out_noerr oc)
