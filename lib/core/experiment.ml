open Hwpat_rtl
open Hwpat_video

type run = { output : Frame.t; cycles : int; cycles_per_pixel : float }

type timeout_diagnosis = {
  design : string;
  cycles : int;
  expected_pixels : int;
  collected_pixels : int;
  px_valid : bool;
  px_ready : bool;
  out_valid : bool;
  out_ready : bool;
}

exception Timeout of timeout_diagnosis

let describe_timeout d =
  let hs b = if b then "high" else "low" in
  Printf.sprintf
    "%s: timed out after %d cycles with %d/%d pixels collected\n\
     \  input handshake:  px_valid %s, px_ready %s%s\n\
     \  output handshake: out_valid %s, out_ready %s"
    d.design d.cycles d.collected_pixels d.expected_pixels (hs d.px_valid)
    (hs d.px_ready)
    (if d.px_valid && not d.px_ready then "  (source blocked)" else "")
    (hs d.out_valid) (hs d.out_ready)

let () =
  Printexc.register_printer (function
    | Timeout d -> Some (describe_timeout d)
    | _ -> None)

let run_video_system ?(trace = Hwpat_obs.Trace.null)
    ?(metrics = Hwpat_obs.Metrics.null) ?engine ?sim ?check
    ?(timeout_per_pixel = 400) ?vcd_path circuit ~input ~out_width ~out_height =
  let module Trace = Hwpat_obs.Trace in
  let module Metrics = Hwpat_obs.Metrics in
  Trace.span trace "simulate"
    ~args:[ ("design", Trace.String (Circuit.name circuit)) ]
  @@ fun () ->
  let sim =
    match sim with
    | Some s ->
      (* Reused plan instance (the serve daemon's warm path): a reset
         makes it indistinguishable from a fresh simulator. *)
      Trace.span trace "reset" (fun () ->
          Cyclesim.reset s;
          s)
    | None ->
      Trace.span trace "compile" (fun () -> Cyclesim.create ?engine circuit)
  in
  (* Activity counters are monotonic across the simulator's lifetime;
     snapshot them so a reused instance reports this run's deltas. *)
  let act0 = Cyclesim.activity sim in
  let vcd = Option.map (fun _ -> Vcd.create sim) vcd_path in
  let source = Video_source.create sim input in
  let sink = Vga_sink.create sim () in
  let expected = out_width * out_height in
  let budget = timeout_per_pixel * Frame.pixels input in
  let cycles = ref 0 in
  let run_seconds = ref 0.0 in
  (* The simulator's own counters feed the metrics registry whether the
     run completes or times out — a hung run's activity profile is
     exactly what the diagnosis needs. *)
  let record_sim_metrics () =
    if Metrics.enabled metrics then begin
      let act = Cyclesim.activity sim in
      let settles = act.Cyclesim.settles - act0.Cyclesim.settles in
      let node_evals = act.Cyclesim.node_evals - act0.Cyclesim.node_evals in
      Metrics.incr metrics ~by:!cycles "sim.cycles";
      Metrics.incr metrics ~by:settles "sim.settles";
      Metrics.incr metrics ~by:node_evals "sim.node_evals";
      Metrics.gauge metrics "sim.total_nodes"
        (float_of_int act.Cyclesim.total_nodes);
      let kind0 kind =
        match List.assoc_opt kind act0.Cyclesim.kind_evals with
        | Some n -> n
        | None -> 0
      in
      List.iter
        (fun (kind, n) ->
          let d = n - kind0 kind in
          if d > 0 then Metrics.incr metrics ~by:d ("sim.evals." ^ kind))
        act.Cyclesim.kind_evals;
      let full = settles * act.Cyclesim.total_nodes in
      if full > 0 then
        Metrics.gauge metrics "sim.dirty_skip_rate"
          (1.0 -. (float_of_int node_evals /. float_of_int full));
      if !run_seconds > 0.0 then
        Metrics.gauge metrics "sim.cycles_per_sec"
          (float_of_int !cycles /. !run_seconds)
    end
  in
  Fun.protect ~finally:record_sim_metrics @@ fun () ->
  Trace.span trace "run" (fun () ->
      let t0 = Unix.gettimeofday () in
      while Vga_sink.count sink < expected && !cycles < budget do
        (match check with Some c -> c () | None -> ());
        Video_source.drive source;
        Vga_sink.drive sink;
        Cyclesim.cycle sim;
        Option.iter Vcd.sample vcd;
        Video_source.observe source;
        Vga_sink.observe sink;
        incr cycles
      done;
      run_seconds := Unix.gettimeofday () -. t0);
  (match (vcd, vcd_path) with
  | Some v, Some path -> Vcd.write_file v path
  | _ -> ());
  if Vga_sink.count sink < expected then begin
    let port name = Bits.to_bool !(Cyclesim.out_port sim name) in
    let in_port name = Bits.to_bool !(Cyclesim.in_port sim name) in
    raise
      (Timeout
         {
           design = Circuit.name circuit;
           cycles = !cycles;
           expected_pixels = expected;
           collected_pixels = Vga_sink.count sink;
           px_valid = in_port "px_valid";
           px_ready = port "px_ready";
           out_valid = port "out_valid";
           out_ready = in_port "out_ready";
         })
  end;
  {
    output =
      Vga_sink.to_frame sink ~width:out_width ~height:out_height
        ~depth:(Frame.depth input);
    cycles = !cycles;
    cycles_per_pixel = float_of_int !cycles /. float_of_int expected;
  }

type table3_row = {
  label : string;
  comparison : Hwpat_synthesis.Resource_report.comparison;
  paper_ffs : int * int;
  paper_luts : int * int;
  paper_brams : int * int;
  paper_clk : int * int;
  functional_match : bool;
}

let paper_numbers =
  [
    ("saa2vga 1", (147, 147), (169, 168), (2, 2), (98, 98));
    ("saa2vga 2", (69, 69), (127, 127), (0, 0), (96, 96));
    ("blur", (3145, 3145), (4170, 4169), (2, 2), (98, 98));
  ]

let find_paper label =
  let _, ffs, luts, brams, clk =
    List.find (fun (l, _, _, _, _) -> l = label) paper_numbers
  in
  (ffs, luts, brams, clk)

let table3 ?(board = Hwpat_synthesis.Board.default) ?(frame_width = 32)
    ?(frame_height = 32) () =
  let frame =
    Pattern.gradient ~width:frame_width ~height:frame_height ~depth:8
  in
  let copy_ref = Reference.copy frame in
  let blur_ref = Reference.blur frame in
  let check_copy circuit =
    let r =
      run_video_system circuit ~input:frame ~out_width:frame_width
        ~out_height:frame_height
    in
    Frame.equal r.output copy_ref
  in
  let check_blur circuit =
    let r =
      run_video_system circuit ~input:frame ~out_width:(frame_width - 2)
        ~out_height:(frame_height - 2)
    in
    Frame.equal r.output blur_ref
  in
  let row label pattern custom check =
    let ffs, luts, brams, clk = find_paper label in
    {
      label;
      comparison =
        Hwpat_synthesis.Resource_report.compare_pair ~board ~name:label pattern
          custom;
      paper_ffs = ffs;
      paper_luts = luts;
      paper_brams = brams;
      paper_clk = clk;
      functional_match = check pattern && check custom;
    }
  in
  [
    row "saa2vga 1"
      (Saa2vga.build ~substrate:Saa2vga.Fifo ~style:Saa2vga.Pattern ())
      (Saa2vga.build ~substrate:Saa2vga.Fifo ~style:Saa2vga.Custom ())
      check_copy;
    row "saa2vga 2"
      (Saa2vga.build ~depth:1024 ~substrate:Saa2vga.Sram ~style:Saa2vga.Pattern ())
      (Saa2vga.build ~depth:1024 ~substrate:Saa2vga.Sram ~style:Saa2vga.Custom ())
      check_copy;
    row "blur"
      (Blur_system.build ~image_width:frame_width ~max_rows:frame_height
         ~style:Blur_system.Pattern ())
      (Blur_system.build ~image_width:frame_width ~max_rows:frame_height
         ~style:Blur_system.Custom ())
      check_blur;
  ]

let render_table3 rows =
  let b = Buffer.create 1024 in
  let open Hwpat_synthesis.Resource_report in
  Buffer.add_string b
    "Table 3: pattern/custom resource comparison (ours vs paper)\n";
  Buffer.add_string b
    (Printf.sprintf "%-10s | %-13s | %-13s | %-9s | %-11s | %-5s\n" "Design"
       "FFs (p/c)" "LUTs (p/c)" "BRAM(p/c)" "clk MHz(p/c)" "func");
  Buffer.add_string b (String.make 78 '-');
  Buffer.add_char b '\n';
  List.iter
    (fun r ->
      let c = r.comparison in
      Buffer.add_string b
        (Printf.sprintf "%-10s | %5d/%-7d | %5d/%-7d | %3d/%-5d | %4.0f/%-6.0f | %s\n"
           r.label c.pattern.ffs c.custom.ffs c.pattern.luts c.custom.luts
           c.pattern.brams c.custom.brams c.pattern.clk_mhz c.custom.clk_mhz
           (if r.functional_match then "OK" else "FAIL"));
      Buffer.add_string b
        (Printf.sprintf "%-10s | %5d/%-7d | %5d/%-7d | %3d/%-5d | %4d/%-6d | (paper)\n"
           "" (fst r.paper_ffs) (snd r.paper_ffs) (fst r.paper_luts)
           (snd r.paper_luts) (fst r.paper_brams) (snd r.paper_brams)
           (fst r.paper_clk) (snd r.paper_clk)))
    rows;
  Buffer.contents b
