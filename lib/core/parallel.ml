(* Domain-parallel execution of independent shards (OCaml 5 stdlib
   only: [Domain] + [Atomic]).

   The model is deliberately minimal: [run n f] evaluates [f 0 .. f
   (n-1)], each exactly once, on a fixed pool of worker domains that
   claim shard indices from one atomic counter (work stealing without
   queues — claiming is a single [fetch_and_add]).  Results land in a
   pre-sized array slot per shard, so the merged output is in
   submission order and bit-identical to the serial run regardless of
   how shards interleave across domains.  The shard closures must be
   domain-safe: they may share immutable inputs but must not write
   shared mutable state (every campaign/sweep shard in this repository
   builds its own fresh circuit and simulator).

   Exceptions do not race either: each shard records its own failure
   and after all domains join the exception of the *lowest-numbered*
   failed shard is re-raised — with the backtrace captured at the
   failure site, not the join point — so error reporting is as
   deterministic as the results. *)

let max_jobs = 64

let clamp_jobs j = if j < 1 then 1 else if j > max_jobs then max_jobs else j

let default_jobs () = clamp_jobs (Domain.recommended_domain_count ())

let run ?jobs n f =
  if n < 0 then invalid_arg "Parallel.run: negative shard count";
  let jobs =
    match jobs with Some j -> clamp_jobs j | None -> default_jobs ()
  in
  let jobs = min jobs n in
  if jobs <= 1 then Array.init n f
  else begin
    let results = Array.make n None in
    let failures = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let running = ref true in
      while !running do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n then running := false
        else
          match f i with
          | v -> results.(i) <- Some v
          | exception e ->
            (* capture the backtrace at the failure site so the
               post-join re-raise does not report the join point *)
            failures.(i) <- Some (e, Printexc.get_raw_backtrace ())
      done
    in
    (* jobs - 1 helper domains; the calling domain works too. *)
    let helpers = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join helpers;
    Array.iter
      (function
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ())
      failures;
    Array.map
      (function Some v -> v | None -> assert false (* every shard ran *))
      results
  end

let map ?jobs f xs =
  let input = Array.of_list xs in
  Array.to_list (run ?jobs (Array.length input) (fun i -> f input.(i)))
