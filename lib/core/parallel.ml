(* Domain-parallel execution of independent shards (OCaml 5 stdlib
   only: [Domain] + [Atomic]).

   The model is deliberately minimal: [run n f] evaluates [f 0 .. f
   (n-1)] on a fixed pool of worker domains that claim shard indices
   from one atomic counter (work stealing without queues — claiming is
   a single [fetch_and_add]).  Results land in a pre-sized array slot
   per shard, so the merged output is in submission order and
   bit-identical to the serial run regardless of how shards interleave
   across domains.  The shard closures must be domain-safe: they may
   share immutable inputs but must not write shared mutable state
   (every campaign/sweep shard in this repository builds its own fresh
   circuit and simulator).

   Failure is fail-fast *and* deterministic.  When a shard raises, its
   index is recorded in an atomic low-water mark and workers stop
   claiming indices at or above it — the serial run would never have
   evaluated those either, so skipping them cannot change the outcome.
   Because indices are claimed in increasing order, every index below
   the final low-water mark was already claimed and fully evaluated by
   the time the mark settled; re-raising the failure at the mark (with
   the backtrace captured at the failure site) therefore reproduces
   exactly the exception the serial [Array.init] run raises, while a
   whole campaign is no longer burned evaluating shards whose results
   will be discarded.

   Cooperative cancellation uses the same claim gate: a fired [token]
   stops workers from claiming new indices, in-flight shards run to
   completion, and the skipped slots come back as [None] from
   [run_partial] — the mechanism behind SIGINT-graceful campaign
   shutdown. *)

let max_jobs = 64

let clamp_jobs j = if j < 1 then 1 else if j > max_jobs then max_jobs else j

let default_jobs () = clamp_jobs (Domain.recommended_domain_count ())

type token = bool Atomic.t

let token () = Atomic.make false
let cancel t = Atomic.set t true
let cancelled t = Atomic.get t

let run_partial ?jobs ?cancel n f =
  if n < 0 then invalid_arg "Parallel.run_partial: negative shard count";
  let jobs =
    match jobs with Some j -> clamp_jobs j | None -> default_jobs ()
  in
  let jobs = min jobs n in
  let is_cancelled () =
    match cancel with Some t -> Atomic.get t | None -> false
  in
  if jobs <= 1 then begin
    (* Serial: evaluate in order, stop at the first failure (raising
       with the natural backtrace) or at cancellation. *)
    let results = Array.make n None in
    let i = ref 0 in
    while !i < n && not (is_cancelled ()) do
      results.(!i) <- Some (f !i);
      incr i
    done;
    results
  end
  else begin
    let results = Array.make n None in
    let failures = Array.make n None in
    (* Lowest failed index seen so far; claims at or above it stop. *)
    let min_fail = Atomic.make max_int in
    let next = Atomic.make 0 in
    let record_failure i e bt =
      failures.(i) <- Some (e, bt);
      let rec lower () =
        let m = Atomic.get min_fail in
        if i < m && not (Atomic.compare_and_set min_fail m i) then lower ()
      in
      lower ()
    in
    let worker () =
      let running = ref true in
      while !running do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n || i >= Atomic.get min_fail || is_cancelled () then
          running := false
        else
          match f i with
          | v -> results.(i) <- Some v
          | exception e ->
            (* capture the backtrace at the failure site so the
               post-join re-raise does not report the join point *)
            record_failure i e (Printexc.get_raw_backtrace ())
      done
    in
    (* jobs - 1 helper domains; the calling domain works too. *)
    let helpers = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join helpers;
    (match Atomic.get min_fail with
    | m when m < n -> (
      match failures.(m) with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> assert false (* min_fail only moves to recorded failures *))
    | _ -> ());
    results
  end

let run ?jobs n f =
  let partial = run_partial ?jobs n f in
  Array.map
    (function
      | Some v -> v
      | None -> assert false (* no cancel token: every shard ran *))
    partial

let map ?jobs f xs =
  let input = Array.of_list xs in
  Array.to_list (run ?jobs (Array.length input) (fun i -> f input.(i)))
