(* Domain-parallel execution of independent shards (OCaml 5 stdlib
   only: [Domain] + [Atomic]).

   Work distribution is chunked work-stealing.  The index space
   [0, n) is pre-split into one contiguous chunk per worker; each
   worker owns a deque holding its remaining range, packed into a
   single atomic integer (head in the low bits, limit above).  Owners
   pop from the front of their own range; a worker whose range runs
   dry steals the back half of a victim's range and installs it as its
   own.  Claiming an item — whether by owner pop or by steal — is one
   compare-and-set on one word, so every index is claimed exactly
   once: a CAS succeeds only against the exact (head, limit) pair the
   claimant read, and a given pair can never recur once any index in
   it has been claimed (ranges only shrink, and stolen ranges are
   always sub-ranges of live ones).

   Compared to the previous single shared counter, workers touch only
   their own atomic in the common case — no cross-domain cache-line
   ping-pong per shard — and stealing in bulk keeps the synchronization
   cost amortized over whole chunks while still rebalancing uneven
   shard durations.

   Results land in a pre-sized array slot per shard, so the merged
   output is in submission order and bit-identical to the serial run
   regardless of how shards interleave across domains.  The shard
   closures must be domain-safe: they may share immutable inputs (for
   example a compiled {!Hwpat_rtl.Cyclesim} plan) but must not write
   shared mutable state.  [run_partial_local] additionally gives every
   worker domain a private state value built by [local] — the hook
   campaigns use to reuse one simulator instance across all the shards
   a domain executes.

   Failure is fail-fast *and* deterministic.  When a shard raises, its
   index is recorded in an atomic low-water mark; a popped or stolen
   index at or above the current mark is dropped without being
   evaluated.  The mark only ever decreases, so an index below the
   *final* mark was below the mark at every point in time — it can
   never have been dropped, and with all ranges drained at join it
   must have been evaluated.  Indices above the final mark would have
   been discarded by the serial run too, so skipping them cannot
   change the outcome; re-raising the failure recorded at the mark
   (with the backtrace captured at the failure site) reproduces
   exactly the exception the serial run raises, at any job count and
   under any stealing schedule.

   Cooperative cancellation uses the same claim gate: a fired [token]
   stops workers from claiming further items, in-flight shards run to
   completion, and the skipped slots come back as [None] from
   [run_partial] — the mechanism behind SIGINT-graceful campaign
   shutdown. *)

let max_jobs = 64

let clamp_jobs j = if j < 1 then 1 else if j > max_jobs then max_jobs else j

let default_jobs () = clamp_jobs (Domain.recommended_domain_count ())

type token = bool Atomic.t

let token () = Atomic.make false
let cancel t = Atomic.set t true
let cancelled t = Atomic.get t

(* A worker's remaining range [head, limit) packed into one int:
   head in the low 31 bits, limit above. Single-word CAS makes a
   claim (owner pop or steal) linearizable. *)
let range_bits = 31
let range_mask = (1 lsl range_bits) - 1
let pack ~head ~limit = head lor (limit lsl range_bits)
let head_of v = v land range_mask
let limit_of v = v lsr range_bits

let run_partial_local ?jobs ?cancel ~local n f =
  if n < 0 then invalid_arg "Parallel.run_partial: negative shard count";
  if n > range_mask then invalid_arg "Parallel.run_partial: shard count too large";
  let jobs =
    match jobs with Some j -> clamp_jobs j | None -> default_jobs ()
  in
  let jobs = min jobs n in
  let is_cancelled () =
    match cancel with Some t -> Atomic.get t | None -> false
  in
  if jobs <= 1 then begin
    (* Serial: evaluate in order, stop at the first failure (raising
       with the natural backtrace) or at cancellation. The worker-local
       state is built once, before the first shard. *)
    let results = Array.make n None in
    let st = ref None in
    let local_state () =
      match !st with
      | Some w -> w
      | None ->
        let w = local () in
        st := Some w;
        w
    in
    let i = ref 0 in
    while !i < n && not (is_cancelled ()) do
      results.(!i) <- Some (f (local_state ()) !i);
      incr i
    done;
    results
  end
  else begin
    let results = Array.make n None in
    let failures = Array.make n None in
    (* Lowest failed index seen so far; items at or above it are
       dropped instead of evaluated. *)
    let min_fail = Atomic.make max_int in
    (* Initial balanced split: worker [w] owns [w*n/jobs, (w+1)*n/jobs). *)
    let deques =
      Array.init jobs (fun w ->
          Atomic.make (pack ~head:(w * n / jobs) ~limit:((w + 1) * n / jobs)))
    in
    let record_failure i e bt =
      failures.(i) <- Some (e, bt);
      let rec lower () =
        let m = Atomic.get min_fail in
        if i < m && not (Atomic.compare_and_set min_fail m i) then lower ()
      in
      lower ()
    in
    (* Pop the front of [d]'s range. *)
    let rec pop d =
      let v = Atomic.get d in
      let head = head_of v and limit = limit_of v in
      if head >= limit then None
      else if Atomic.compare_and_set d v (pack ~head:(head + 1) ~limit) then
        Some head
      else pop d
    in
    (* Steal the back half of [d]'s range (at least one item). *)
    let rec steal d =
      let v = Atomic.get d in
      let head = head_of v and limit = limit_of v in
      let avail = limit - head in
      if avail <= 0 then None
      else begin
        let k = if avail = 1 then 1 else avail / 2 in
        if Atomic.compare_and_set d v (pack ~head ~limit:(limit - k)) then
          Some (limit - k, limit)
        else steal d
      end
    in
    let worker w () =
      let st = ref None in
      let local_state () =
        match !st with
        | Some x -> x
        | None ->
          let x = local () in
          st := Some x;
          x
      in
      let my = deques.(w) in
      let execute i =
        (* Drop (don't evaluate) items at or above the failure mark:
           the serial run would never have reached them. *)
        if i < Atomic.get min_fail then begin
          match f (local_state ()) i with
          | v -> results.(i) <- Some v
          | exception e ->
            (* capture the backtrace at the failure site so the
               post-join re-raise does not report the join point *)
            record_failure i e (Printexc.get_raw_backtrace ())
        end
      in
      let rec drain () =
        if not (is_cancelled ()) then
          match pop my with
          | Some i ->
            execute i;
            drain ()
          | None -> try_steal ()
      and try_steal () =
        if not (is_cancelled ()) then begin
          (* One full scan over the other workers. Observing every
             deque empty means every index has been claimed (a stolen
             chunk not yet re-installed is completed by its thief), so
             the worker can retire. *)
          let rec scan k =
            if k >= jobs then ()
            else
              match steal deques.((w + k) mod jobs) with
              | Some (a, b) ->
                (* Install the stolen range as our own. Plain set is
                   safe: our deque reads empty, so no concurrent CAS
                   can succeed against its current value. *)
                Atomic.set my (pack ~head:a ~limit:b);
                drain ()
              | None -> scan (k + 1)
          in
          scan 1
        end
      in
      drain ()
    in
    (* jobs - 1 helper domains; the calling domain works too. *)
    let helpers =
      List.init (jobs - 1) (fun h -> Domain.spawn (worker (h + 1)))
    in
    worker 0 ();
    List.iter Domain.join helpers;
    (match Atomic.get min_fail with
    | m when m < n -> (
      match failures.(m) with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> assert false (* min_fail only moves to recorded failures *))
    | _ -> ());
    results
  end

let run_partial ?jobs ?cancel n f =
  run_partial_local ?jobs ?cancel ~local:(fun () -> ()) n (fun () i -> f i)

(* A persistent worker pool for open-ended task streams.  The batch
   runners above own their domains for the duration of one call; a
   long-running service ([Hwpat_serve]) instead keeps a fixed set of
   worker domains alive across requests and feeds them through one
   mutex-guarded queue.  Throughput here is bounded by request
   execution time (milliseconds), not queue operations, so a simple
   lock beats a lock-free structure on clarity with no measurable
   cost.  Tasks must catch their own exceptions: a task that raises
   anyway is swallowed (after counting) rather than killing the
   worker, because one bad request must not take the pool down. *)
module Pool = struct
  type t = {
    m : Mutex.t;
    nonempty : Condition.t;
    idle : Condition.t;
    tasks : (unit -> unit) Queue.t;
    mutable stopping : bool;
    mutable running : int;  (* tasks popped and still executing *)
    mutable escaped : int;  (* tasks that raised (a task bug) *)
    mutable workers : unit Domain.t list;
    jobs : int;
  }

  let worker t () =
    let rec loop () =
      Mutex.lock t.m;
      while Queue.is_empty t.tasks && not t.stopping do
        Condition.wait t.nonempty t.m
      done;
      if Queue.is_empty t.tasks then Mutex.unlock t.m (* stopping: retire *)
      else begin
        let task = Queue.pop t.tasks in
        t.running <- t.running + 1;
        Mutex.unlock t.m;
        (try task ()
         with _ ->
           Mutex.lock t.m;
           t.escaped <- t.escaped + 1;
           Mutex.unlock t.m);
        Mutex.lock t.m;
        t.running <- t.running - 1;
        if t.running = 0 && Queue.is_empty t.tasks then
          Condition.broadcast t.idle;
        Mutex.unlock t.m;
        loop ()
      end
    in
    loop ()

  let create ?jobs () =
    let jobs =
      match jobs with Some j -> clamp_jobs j | None -> default_jobs ()
    in
    let t =
      {
        m = Mutex.create ();
        nonempty = Condition.create ();
        idle = Condition.create ();
        tasks = Queue.create ();
        stopping = false;
        running = 0;
        escaped = 0;
        workers = [];
        jobs;
      }
    in
    t.workers <- List.init jobs (fun _ -> Domain.spawn (worker t));
    t

  let jobs t = t.jobs

  let submit t task =
    Mutex.lock t.m;
    let accepted = not t.stopping in
    if accepted then begin
      Queue.add task t.tasks;
      Condition.signal t.nonempty
    end;
    Mutex.unlock t.m;
    accepted

  let pending t =
    Mutex.lock t.m;
    let n = Queue.length t.tasks in
    Mutex.unlock t.m;
    n

  let running t =
    Mutex.lock t.m;
    let n = t.running in
    Mutex.unlock t.m;
    n

  let escaped t =
    Mutex.lock t.m;
    let n = t.escaped in
    Mutex.unlock t.m;
    n

  let drain t =
    Mutex.lock t.m;
    while not (Queue.is_empty t.tasks && t.running = 0) do
      Condition.wait t.idle t.m
    done;
    Mutex.unlock t.m

  let shutdown t =
    Mutex.lock t.m;
    let workers = t.workers in
    t.stopping <- true;
    t.workers <- [];
    Condition.broadcast t.nonempty;
    Mutex.unlock t.m;
    List.iter Domain.join workers
end

let run ?jobs n f =
  let partial = run_partial ?jobs n f in
  Array.map
    (function
      | Some v -> v
      | None -> assert false (* no cancel token: every shard ran *))
    partial

let map ?jobs f xs =
  let input = Array.of_list xs in
  Array.to_list (run ?jobs (Array.length input) (fun i -> f input.(i)))
