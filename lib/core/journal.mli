(** Crash-safe checkpoint journal for resumable campaigns.

    Line-oriented JSON on disk: a header line binding the file to one
    campaign configuration (the [config] fingerprint — design, seed,
    fault count, frame size, …), then one record per completed shard,
    appended and flushed as each shard finishes.  Record keys are the
    campaigns' uid-independent shard descriptions
    ({!Hwpat_rtl.Fault.describe_event_in}, design-point labels,
    prove-obligation names), so a journal written by one process —
    serial or sharded, at any job count — replays in any other.

    Crash safety: records are appended and flushed one line at a time,
    so a SIGKILL tears at most the final line; the loader stops at the
    first unparseable line and keeps everything before it.  On open
    the journal is compacted through the atomic tmp+rename writer
    (dropping any torn tail) and reopened for appending.

    [record] takes the registry mutex, so shards running on different
    domains may journal concurrently. *)

type t

exception Config_mismatch of { path : string; expected : string; found : string }
(** Raised by {!start} when [resume] finds a journal whose header was
    written by a different campaign configuration — resuming it would
    silently mix incompatible results. *)

val start : path:string -> config:string -> resume:bool -> t
(** Open (or create) the journal at [path] for the campaign described
    by [config].  With [resume = false] any existing file is
    truncated.  With [resume = true] an existing file is loaded first:
    the header must match [config] (else {!Config_mismatch}), every
    intact record becomes available through {!find}, and a torn final
    line is dropped.  A missing file is simply created fresh.
    Raises [Failure] if the file exists but is not a checkpoint
    journal at all. *)

val find : t -> string -> string option
(** The journaled payload for a shard key, if that shard completed in
    a previous (or the current) run. *)

val record : t -> key:string -> string -> unit
(** Append one completed-shard record and flush it to disk.  [data]
    must not contain newlines (it is stored [%S]-escaped, so any
    string is safe in practice).  Thread-safe. *)

val resumed : t -> int
(** Number of distinct completed shards loaded from disk at {!start}
    time (0 unless resuming). *)

val note : t -> string option
(** A human-readable anomaly worth surfacing, or [None]. Currently set
    when [resume = true] found a zero-length checkpoint file: that is a
    crash before even the header flushed, so the run proceeds exactly
    like a fresh one (no {!Config_mismatch} — there is no config to
    mismatch), and the note says so. Also echoed to stderr at {!start}
    time so CLI users see it. *)

val completed : t -> int
(** Total distinct completed shards known (loaded + recorded). *)

val path : t -> string

val close : t -> unit
(** Flushes and closes the append channel; further {!record} calls
    are ignored. *)
