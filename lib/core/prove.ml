open Hwpat_formal

type result = {
  name : string;
  kind : string;
  ok : bool;
  unknown : bool;
  status : string;
  seconds : float;
}

(* [t_run] receives the supervision watchdog hook, threaded into the
   SAT solver's [?interrupt] so a wall-clock deadline can abandon a
   solve mid-search — plus the solve budget and the solver
   configuration, supplied per attempt so the portfolio driver can
   race the same obligation under different budgets and configs. *)
type task = {
  t_name : string;
  t_kind : string;
  t_run :
    budget:Solver.budget ->
    solver_config:Solver.config ->
    interrupt:(unit -> unit) ->
    bool * bool * string;
}

(* ---------------------------------------------------------------- *)
(* Obligations                                                      *)
(* ---------------------------------------------------------------- *)

(* (ok, unknown, status): an Unknown verdict is scored as not-proved
   but flagged so reports never conflate "refuted" with "gave up". *)
let equiv_status = function
  | Equiv.Proved -> (true, false, "proved")
  | Equiv.Counterexample cex ->
    (false, false, Printf.sprintf "counterexample(%d cycles)" (List.length cex))
  | Equiv.Unknown why -> (false, true, "unknown: " ^ why)

let bmc_status = function
  | Bmc.Holds d -> (true, false, Printf.sprintf "holds(%d)" d)
  | Bmc.Violation v ->
    (false, false,
     Printf.sprintf "violation of %s at cycle %d" v.Bmc.property v.Bmc.at)
  | Bmc.Unknown why -> (false, true, "unknown: " ^ why)

(* Paper designs at proof-sized parameters: the buffers shrink from
   512 to 16 elements so the memory state stays tractable for the SAT
   encoding; the control logic under proof is the same. *)
let paper_designs () =
  [
    ( "saa2vga_fifo",
      fun () ->
        Saa2vga.build ~depth:16 ~substrate:Saa2vga.Fifo ~style:Saa2vga.Pattern
          () );
    ( "saa2vga_sram",
      fun () ->
        Saa2vga.build ~depth:16 ~substrate:Saa2vga.Sram ~style:Saa2vga.Pattern
          () );
    ( "blur",
      fun () ->
        Blur_system.build ~image_width:8 ~max_rows:8 ~style:Blur_system.Pattern
          () );
  ]

let monitor_tasks ~trace ~metrics ~depth =
  List.map
    (fun (name, build) ->
      {
        t_name = name;
        t_kind = "monitor";
        t_run =
          (fun ~budget ~solver_config ~interrupt ->
            bmc_status
              (Bmc.check_auto ~trace ~metrics ~budget ~solver_config
                 ~interrupt ~depth (build ())));
      })
    (paper_designs ())

(* Optimizer equivalence on the paper designs themselves, not just
   random netlists: the handshake-heavy control is where candidate
   induction has to work hardest. *)
let design_equiv_tasks ~trace ~metrics () =
  List.map
    (fun (name, build) ->
      {
        t_name = name;
        t_kind = "equiv";
        t_run =
          (fun ~budget ~solver_config ~interrupt ->
            let c = build () in
            equiv_status
              (Equiv.check ~trace ~metrics ~budget ~solver_config ~interrupt
                 c
                 (Hwpat_rtl.Optimize.circuit c)));
      })
    (paper_designs ())

let optimize_tasks ~trace ~metrics ~seeds =
  List.map
    (fun seed ->
      {
        t_name = Printf.sprintf "random_seed_%d" seed;
        t_kind = "optimize";
        t_run =
          (fun ~budget ~solver_config ~interrupt ->
            let c, _ = Netgen.build_random_circuit ~seed in
            equiv_status
              (Equiv.check ~trace ~metrics ~budget ~solver_config ~interrupt
                 c
                 (Hwpat_rtl.Optimize.circuit c)));
      })
    seeds

let prune_pairs () =
  let open Hwpat_meta in
  let cfg ?(wait_states = 1) ~name ~kind ~target ~depth ~ops () =
    Config.make ~instance_name:name ~kind ~target ~elem_width:4 ~depth
      ~ops_used:ops ~wait_states ()
  in
  [
    cfg ~name:"q_fifo_put" ~kind:Metamodel.Queue ~target:Metamodel.Fifo_core
      ~depth:8 ~ops:[ Metamodel.Write ] ();
    cfg ~name:"q_bram_get" ~kind:Metamodel.Queue ~target:Metamodel.Block_ram
      ~depth:8 ~ops:[ Metamodel.Read ] ();
    cfg ~name:"q_sram_put" ~kind:Metamodel.Queue ~target:Metamodel.Ext_sram
      ~depth:4 ~ops:[ Metamodel.Write ] ();
    cfg ~name:"s_lifo_put" ~kind:Metamodel.Stack ~target:Metamodel.Lifo_core
      ~depth:8 ~ops:[ Metamodel.Write ] ();
    cfg ~name:"s_bram_get" ~kind:Metamodel.Stack ~target:Metamodel.Block_ram
      ~depth:8 ~ops:[ Metamodel.Read ] ();
    cfg ~name:"v_bram_read" ~kind:Metamodel.Vector ~target:Metamodel.Block_ram
      ~depth:8
      ~ops:[ Metamodel.Read; Metamodel.Index ]
      ();
    cfg ~name:"v_sram_write" ~kind:Metamodel.Vector ~target:Metamodel.Ext_sram
      ~depth:4
      ~ops:[ Metamodel.Write; Metamodel.Index ]
      ();
  ]

let prune_tasks ~trace ~metrics () =
  List.map
    (fun cfg ->
      {
        t_name = Hwpat_meta.Config.entity_name cfg;
        t_kind = "prune";
        t_run =
          (fun ~budget ~solver_config ~interrupt ->
            equiv_status
              (Equiv.check ~trace ~metrics ~budget ~solver_config ~interrupt
                 (Hwpat_containers.Elaborate.full ~trace cfg)
                 (Hwpat_containers.Elaborate.pruned ~trace cfg)));
      })
    (prune_pairs ())

let battery ?(trace = Hwpat_obs.Trace.null)
    ?(metrics = Hwpat_obs.Metrics.null) ~smoke () =
  let seq a b = List.init (b - a + 1) (fun i -> a + i) in
  if smoke then
    monitor_tasks ~trace ~metrics ~depth:10
    @ optimize_tasks ~trace ~metrics ~seeds:(seq 1 10)
  else
    monitor_tasks ~trace ~metrics ~depth:20
    @ design_equiv_tasks ~trace ~metrics ()
    @ optimize_tasks ~trace ~metrics ~seeds:(seq 1 40)
    @ prune_tasks ~trace ~metrics ()

(* ---------------------------------------------------------------- *)
(* Execution                                                        *)
(* ---------------------------------------------------------------- *)

let run_task ~trace ~budget ctx t =
  (* One span per obligation on its worker domain's lane; the Equiv/Bmc
     phase spans nest underneath it. *)
  Hwpat_obs.Trace.span trace (t.t_kind ^ ":" ^ t.t_name) @@ fun () ->
  let t0 = Unix.gettimeofday () in
  let ok, unknown, status =
    try
      t.t_run ~budget ~solver_config:Solver.default_config
        ~interrupt:(fun () -> Supervise.check ctx)
    with
    | e when Supervise.is_transient e ->
      (* Watchdog timeouts escape to the supervisor for retry /
         explicit Unfinished reporting; everything else is recorded as
         this obligation's own failure. *)
      raise e
    | e -> (false, false, "raised: " ^ Printexc.to_string e)
  in
  {
    name = t.t_name;
    kind = t.t_kind;
    ok;
    unknown;
    status;
    seconds = Unix.gettimeofday () -. t0;
  }

(* Journal payload for one completed obligation (name and kind are
   implied by the shard key).  Seconds round-trip through their IEEE
   bits so a resumed run reports the originally measured time. *)
let encode_result r =
  Printf.sprintf "%b %b %Lx %S" r.ok r.unknown
    (Int64.bits_of_float r.seconds)
    r.status

let decode_result t data =
  try
    Scanf.sscanf data "%B %B %Lx %S" (fun ok unknown bits status ->
        Some
          {
            name = t.t_name;
            kind = t.t_kind;
            ok;
            unknown;
            status;
            seconds = Int64.float_of_bits bits;
          })
  with Scanf.Scan_failure _ | Failure _ | End_of_file -> None

let unfinished_result t (reason, attempts) =
  {
    name = t.t_name;
    kind = t.t_kind;
    ok = false;
    unknown = true;
    status = Printf.sprintf "unfinished: %s (%d attempts)" reason attempts;
    seconds = 0.0;
  }

(* ---------------------------------------------------------------- *)
(* Portfolio racing                                                 *)
(* ---------------------------------------------------------------- *)

(* [--portfolio n] expands every obligation into [n] cells — one per
   solver configuration — and races them through {!Portfolio.rounds}'
   escalating budget ladder.  A cell's answer is *definitive* when it
   is anything other than a budget-capped Unknown before the final
   round; the obligation's verdict is the definitive answer with the
   smallest [(round, racer index)] key.  Round budgets count solver
   operations, so which cells answer at which round is a pure function
   of the battery: the winning cell is the same at any job count and
   under any scheduler.  Losers abort early ({!Portfolio.Beaten}, via
   the solver's interrupt hook) once a strictly smaller key has been
   posted — only an optimization, since every posted key belongs to a
   definitive answer and the winner holds the minimal one, so the
   winner itself is never aborted.  Aborted racers skip their solver
   stats merge exactly like watchdog-interrupted attempts do. *)

type cell_outcome = (int * result) option
(* [None] = beaten; [Some (key, r)] = definitive at [key]. *)

(* Key arithmetic uses the full racer keyspace (not [n]) so the same
   (round, racer) pair encodes identically at every portfolio width. *)
let cell_keyspace = Portfolio.max_racers

let rec post_best a k =
  let cur = Atomic.get a in
  if k < cur && not (Atomic.compare_and_set a cur k) then post_best a k

let run_cell ~trace ~best ~rounds ~racer ctx t : cell_outcome =
  Hwpat_obs.Trace.span trace
    (Printf.sprintf "%s:%s#%s" t.t_kind t.t_name racer.Portfolio.label)
  @@ fun () ->
  let t0 = Unix.gettimeofday () in
  let final = Array.length rounds - 1 in
  let rec attempt round =
    let ck = (round * cell_keyspace) + racer.Portfolio.index in
    if Atomic.get best < ck then None
    else begin
      let interrupt () =
        Supervise.check ctx;
        if Atomic.get best < ck then raise Portfolio.Beaten
      in
      match
        t.t_run ~budget:rounds.(round) ~solver_config:racer.Portfolio.config
          ~interrupt
      with
      | ok, unknown, status ->
        if unknown && Portfolio.budget_limited status && round < final then
          attempt (round + 1)
        else begin
          post_best best ck;
          Some
            ( ck,
              {
                name = t.t_name;
                kind = t.t_kind;
                ok;
                unknown;
                status;
                seconds = Unix.gettimeofday () -. t0;
              } )
        end
      | exception Portfolio.Beaten -> None
      | exception e when Supervise.is_transient e -> raise e
      | exception e ->
        (* An obligation-level crash is as config-dependent as any
           verdict, and as deterministic: definitive at this key. *)
        post_best best ck;
        Some
          ( ck,
            {
              name = t.t_name;
              kind = t.t_kind;
              ok = false;
              unknown = false;
              status = "raised: " ^ Printexc.to_string e;
              seconds = Unix.gettimeofday () -. t0;
            } )
    end
  in
  attempt 0

let encode_cell = function
  | None -> "beaten"
  | Some (ck, r) -> Printf.sprintf "%d %s" ck (encode_result r)

let decode_cell t data =
  if data = "beaten" then Some None
  else
    match String.index_opt data ' ' with
    | None -> None
    | Some sp -> (
      match int_of_string_opt (String.sub data 0 sp) with
      | None -> None
      | Some ck ->
        Option.map
          (fun r -> Some (ck, r))
          (decode_result t
             (String.sub data (sp + 1) (String.length data - sp - 1))))

let run ?(trace = Hwpat_obs.Trace.null) ?(metrics = Hwpat_obs.Metrics.null)
    ?jobs ?policy ?cancel ?checkpoint ?(resume = false)
    ?(budget = Hwpat_formal.Solver.no_budget) ?(smoke = false) ?portfolio () =
  let tasks = Array.of_list (battery ~trace ~metrics ~smoke ()) in
  let base_config =
    Printf.sprintf "prove smoke=%b budget=%d/%d" smoke
      budget.Hwpat_formal.Solver.max_conflicts
      budget.Hwpat_formal.Solver.max_propagations
  in
  let with_journal ~config f =
    let journal =
      Option.map (fun path -> Journal.start ~path ~config ~resume) checkpoint
    in
    Fun.protect
      ~finally:(fun () -> Option.iter Journal.close journal)
      (fun () -> f journal)
  in
  let results =
    match portfolio with
    | None ->
      with_journal ~config:base_config @@ fun journal ->
      let key i = tasks.(i).t_kind ^ ":" ^ tasks.(i).t_name in
      let outcomes =
        Supervise.run_shards ?jobs ?policy ~metrics ?cancel ?journal ~key
          ~encode:encode_result
          ~decode:(fun i data -> decode_result tasks.(i) data)
          (Array.length tasks)
          (fun ctx i -> run_task ~trace ~budget ctx tasks.(i))
      in
      Array.to_list
        (Array.mapi
           (fun i -> function
             | Supervise.Done r -> r
             | Supervise.Unfinished { reason; attempts } ->
               unfinished_result tasks.(i) (reason, attempts))
           outcomes)
    | Some n ->
      let racers = Array.of_list (Portfolio.racers ~n) in
      let rounds = Array.of_list (Portfolio.rounds ~cap:budget) in
      let nr = Array.length racers in
      let best =
        Array.init (Array.length tasks) (fun _ -> Atomic.make max_int)
      in
      (* The racer count is part of the journal config: a journal from
         a different portfolio width (or the single-solver path) names
         different shards and must not be resumed into this one. *)
      with_journal ~config:(Printf.sprintf "%s portfolio=%d" base_config n)
      @@ fun journal ->
      let key c =
        let t = tasks.(c / nr) in
        Printf.sprintf "%s:%s#%s" t.t_kind t.t_name
          racers.(c mod nr).Portfolio.label
      in
      let outcomes =
        Supervise.run_shards ?jobs ?policy ~metrics ?cancel ?journal ~key
          ~encode:encode_cell
          ~decode:(fun c data -> decode_cell tasks.(c / nr) data)
          (Array.length tasks * nr)
          (fun ctx c ->
            run_cell ~trace
              ~best:best.(c / nr)
              ~rounds
              ~racer:racers.(c mod nr)
              ctx
              tasks.(c / nr))
      in
      List.init (Array.length tasks) (fun ti ->
          let cells = List.init nr (fun ri -> outcomes.((ti * nr) + ri)) in
          let definitive =
            List.filter_map
              (function Supervise.Done (Some cell) -> Some cell | _ -> None)
              cells
          in
          match List.sort (fun (a, _) (b, _) -> compare a b) definitive with
          | (ck, r) :: _ ->
            Hwpat_obs.Metrics.incr metrics
              ("prove.portfolio.win."
              ^ racers.(ck mod cell_keyspace).Portfolio.label);
            r
          | [] -> (
            (* No definitive answer at all: the winning cell itself
               must have gone unfinished under supervision (every
               beaten cell implies a smaller posted — hence definitive
               and recorded — key somewhere).  Report its reason. *)
            match
              List.find_map
                (function
                  | Supervise.Unfinished { reason; attempts } ->
                    Some (reason, attempts)
                  | _ -> None)
                cells
            with
            | Some ra -> unfinished_result tasks.(ti) ra
            | None ->
              unfinished_result tasks.(ti) ("portfolio: all racers beaten", 0)))
  in
  List.iter
    (fun r ->
      Hwpat_obs.Metrics.incr metrics
        (if r.ok then "prove.proved"
         else if r.unknown then "prove.unknown"
         else "prove.failed"))
    results;
  results

let all_ok results = List.for_all (fun r -> r.ok) results

let to_json ~jobs ~smoke results =
  let buf = Buffer.create 1024 in
  let emit fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let proved = List.length (List.filter (fun r -> r.ok) results) in
  let unknown = List.length (List.filter (fun r -> r.unknown) results) in
  emit "{\n  \"section\": \"prove\",\n  \"jobs\": %d,\n  \"smoke\": %b,\n" jobs
    smoke;
  emit "  \"obligations\": %d,\n  \"proved\": %d,\n  \"failed\": %d,\n"
    (List.length results) proved
    (List.length results - proved - unknown);
  emit "  \"unknown\": %d,\n" unknown;
  emit "  \"total_seconds\": %.3f,\n"
    (List.fold_left (fun acc r -> acc +. r.seconds) 0.0 results);
  emit "  \"results\": [\n";
  List.iteri
    (fun i r ->
      emit
        "    {\"name\": %S, \"kind\": %S, \"ok\": %b, \"unknown\": %b, \
         \"status\": %S, \"seconds\": %.3f}%s\n"
        r.name r.kind r.ok r.unknown r.status r.seconds
        (if i = List.length results - 1 then "" else ","))
    results;
  emit "  ]\n}\n";
  Buffer.contents buf

let summary results =
  let buf = Buffer.create 1024 in
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "[%s] prove %s/%s: %s (%.2fs)\n"
           (if r.ok then "OK" else if r.unknown then "UNK" else "FAIL")
           r.kind r.name r.status r.seconds))
    results;
  let proved = List.length (List.filter (fun r -> r.ok) results) in
  let unknown = List.length (List.filter (fun r -> r.unknown) results) in
  Buffer.add_string buf
    (Printf.sprintf
       "prove: %d obligations, %d proved, %d failed, %d unknown\n"
       (List.length results) proved
       (List.length results - proved - unknown)
       unknown);
  Buffer.contents buf
