open Hwpat_formal

type result = {
  name : string;
  kind : string;
  ok : bool;
  unknown : bool;
  status : string;
  seconds : float;
}

(* [t_run] receives the supervision watchdog hook, threaded into the
   SAT solver's [?interrupt] so a wall-clock deadline can abandon a
   solve mid-search. *)
type task = {
  t_name : string;
  t_kind : string;
  t_run : interrupt:(unit -> unit) -> bool * bool * string;
}

(* ---------------------------------------------------------------- *)
(* Obligations                                                      *)
(* ---------------------------------------------------------------- *)

(* (ok, unknown, status): an Unknown verdict is scored as not-proved
   but flagged so reports never conflate "refuted" with "gave up". *)
let equiv_status = function
  | Equiv.Proved -> (true, false, "proved")
  | Equiv.Counterexample cex ->
    (false, false, Printf.sprintf "counterexample(%d cycles)" (List.length cex))
  | Equiv.Unknown why -> (false, true, "unknown: " ^ why)

let bmc_status = function
  | Bmc.Holds d -> (true, false, Printf.sprintf "holds(%d)" d)
  | Bmc.Violation v ->
    (false, false,
     Printf.sprintf "violation of %s at cycle %d" v.Bmc.property v.Bmc.at)
  | Bmc.Unknown why -> (false, true, "unknown: " ^ why)

(* Paper designs at proof-sized parameters: the buffers shrink from
   512 to 16 elements so the memory state stays tractable for the SAT
   encoding; the control logic under proof is the same. *)
let paper_designs () =
  [
    ( "saa2vga_fifo",
      fun () ->
        Saa2vga.build ~depth:16 ~substrate:Saa2vga.Fifo ~style:Saa2vga.Pattern
          () );
    ( "saa2vga_sram",
      fun () ->
        Saa2vga.build ~depth:16 ~substrate:Saa2vga.Sram ~style:Saa2vga.Pattern
          () );
    ( "blur",
      fun () ->
        Blur_system.build ~image_width:8 ~max_rows:8 ~style:Blur_system.Pattern
          () );
  ]

let monitor_tasks ~trace ~metrics ~budget ~depth =
  List.map
    (fun (name, build) ->
      {
        t_name = name;
        t_kind = "monitor";
        t_run =
          (fun ~interrupt ->
            bmc_status
              (Bmc.check_auto ~trace ~metrics ~budget ~interrupt ~depth
                 (build ())));
      })
    (paper_designs ())

(* Optimizer equivalence on the paper designs themselves, not just
   random netlists: the handshake-heavy control is where candidate
   induction has to work hardest. *)
let design_equiv_tasks ~trace ~metrics ~budget () =
  List.map
    (fun (name, build) ->
      {
        t_name = name;
        t_kind = "equiv";
        t_run =
          (fun ~interrupt ->
            let c = build () in
            equiv_status
              (Equiv.check ~trace ~metrics ~budget ~interrupt c
                 (Hwpat_rtl.Optimize.circuit c)));
      })
    (paper_designs ())

let optimize_tasks ~trace ~metrics ~budget ~seeds =
  List.map
    (fun seed ->
      {
        t_name = Printf.sprintf "random_seed_%d" seed;
        t_kind = "optimize";
        t_run =
          (fun ~interrupt ->
            let c, _ = Netgen.build_random_circuit ~seed in
            equiv_status
              (Equiv.check ~trace ~metrics ~budget ~interrupt c
                 (Hwpat_rtl.Optimize.circuit c)));
      })
    seeds

let prune_pairs () =
  let open Hwpat_meta in
  let cfg ?(wait_states = 1) ~name ~kind ~target ~depth ~ops () =
    Config.make ~instance_name:name ~kind ~target ~elem_width:4 ~depth
      ~ops_used:ops ~wait_states ()
  in
  [
    cfg ~name:"q_fifo_put" ~kind:Metamodel.Queue ~target:Metamodel.Fifo_core
      ~depth:8 ~ops:[ Metamodel.Write ] ();
    cfg ~name:"q_bram_get" ~kind:Metamodel.Queue ~target:Metamodel.Block_ram
      ~depth:8 ~ops:[ Metamodel.Read ] ();
    cfg ~name:"q_sram_put" ~kind:Metamodel.Queue ~target:Metamodel.Ext_sram
      ~depth:4 ~ops:[ Metamodel.Write ] ();
    cfg ~name:"s_lifo_put" ~kind:Metamodel.Stack ~target:Metamodel.Lifo_core
      ~depth:8 ~ops:[ Metamodel.Write ] ();
    cfg ~name:"s_bram_get" ~kind:Metamodel.Stack ~target:Metamodel.Block_ram
      ~depth:8 ~ops:[ Metamodel.Read ] ();
    cfg ~name:"v_bram_read" ~kind:Metamodel.Vector ~target:Metamodel.Block_ram
      ~depth:8
      ~ops:[ Metamodel.Read; Metamodel.Index ]
      ();
    cfg ~name:"v_sram_write" ~kind:Metamodel.Vector ~target:Metamodel.Ext_sram
      ~depth:4
      ~ops:[ Metamodel.Write; Metamodel.Index ]
      ();
  ]

let prune_tasks ~trace ~metrics ~budget () =
  List.map
    (fun cfg ->
      {
        t_name = Hwpat_meta.Config.entity_name cfg;
        t_kind = "prune";
        t_run =
          (fun ~interrupt ->
            equiv_status
              (Equiv.check ~trace ~metrics ~budget ~interrupt
                 (Hwpat_containers.Elaborate.full ~trace cfg)
                 (Hwpat_containers.Elaborate.pruned ~trace cfg)));
      })
    (prune_pairs ())

let battery ?(trace = Hwpat_obs.Trace.null)
    ?(metrics = Hwpat_obs.Metrics.null)
    ?(budget = Hwpat_formal.Solver.no_budget) ~smoke () =
  let seq a b = List.init (b - a + 1) (fun i -> a + i) in
  if smoke then
    monitor_tasks ~trace ~metrics ~budget ~depth:10
    @ optimize_tasks ~trace ~metrics ~budget ~seeds:(seq 1 10)
  else
    monitor_tasks ~trace ~metrics ~budget ~depth:20
    @ design_equiv_tasks ~trace ~metrics ~budget ()
    @ optimize_tasks ~trace ~metrics ~budget ~seeds:(seq 1 40)
    @ prune_tasks ~trace ~metrics ~budget ()

(* ---------------------------------------------------------------- *)
(* Execution                                                        *)
(* ---------------------------------------------------------------- *)

let run_task ~trace ctx t =
  (* One span per obligation on its worker domain's lane; the Equiv/Bmc
     phase spans nest underneath it. *)
  Hwpat_obs.Trace.span trace (t.t_kind ^ ":" ^ t.t_name) @@ fun () ->
  let t0 = Unix.gettimeofday () in
  let ok, unknown, status =
    try t.t_run ~interrupt:(fun () -> Supervise.check ctx)
    with
    | e when Supervise.is_transient e ->
      (* Watchdog timeouts escape to the supervisor for retry /
         explicit Unfinished reporting; everything else is recorded as
         this obligation's own failure. *)
      raise e
    | e -> (false, false, "raised: " ^ Printexc.to_string e)
  in
  {
    name = t.t_name;
    kind = t.t_kind;
    ok;
    unknown;
    status;
    seconds = Unix.gettimeofday () -. t0;
  }

(* Journal payload for one completed obligation (name and kind are
   implied by the shard key).  Seconds round-trip through their IEEE
   bits so a resumed run reports the originally measured time. *)
let encode_result r =
  Printf.sprintf "%b %b %Lx %S" r.ok r.unknown
    (Int64.bits_of_float r.seconds)
    r.status

let decode_result t data =
  try
    Scanf.sscanf data "%B %B %Lx %S" (fun ok unknown bits status ->
        Some
          {
            name = t.t_name;
            kind = t.t_kind;
            ok;
            unknown;
            status;
            seconds = Int64.float_of_bits bits;
          })
  with Scanf.Scan_failure _ | Failure _ | End_of_file -> None

let unfinished_result t (reason, attempts) =
  {
    name = t.t_name;
    kind = t.t_kind;
    ok = false;
    unknown = true;
    status = Printf.sprintf "unfinished: %s (%d attempts)" reason attempts;
    seconds = 0.0;
  }

let run ?(trace = Hwpat_obs.Trace.null) ?(metrics = Hwpat_obs.Metrics.null)
    ?jobs ?policy ?cancel ?checkpoint ?(resume = false)
    ?(budget = Hwpat_formal.Solver.no_budget) ?(smoke = false) () =
  let tasks = Array.of_list (battery ~trace ~metrics ~budget ~smoke ()) in
  let key i = tasks.(i).t_kind ^ ":" ^ tasks.(i).t_name in
  let config =
    Printf.sprintf "prove smoke=%b budget=%d/%d" smoke
      budget.Hwpat_formal.Solver.max_conflicts
      budget.Hwpat_formal.Solver.max_propagations
  in
  let journal =
    Option.map (fun path -> Journal.start ~path ~config ~resume) checkpoint
  in
  Fun.protect
    ~finally:(fun () -> Option.iter Journal.close journal)
  @@ fun () ->
  let outcomes =
    Supervise.run_shards ?jobs ?policy ~metrics ?cancel ?journal ~key
      ~encode:encode_result
      ~decode:(fun i data -> decode_result tasks.(i) data)
      (Array.length tasks)
      (fun ctx i -> run_task ~trace ctx tasks.(i))
  in
  let results =
    Array.to_list
      (Array.mapi
         (fun i -> function
           | Supervise.Done r -> r
           | Supervise.Unfinished { reason; attempts } ->
             unfinished_result tasks.(i) (reason, attempts))
         outcomes)
  in
  List.iter
    (fun r ->
      Hwpat_obs.Metrics.incr metrics
        (if r.ok then "prove.proved"
         else if r.unknown then "prove.unknown"
         else "prove.failed"))
    results;
  results

let all_ok results = List.for_all (fun r -> r.ok) results

let to_json ~jobs ~smoke results =
  let buf = Buffer.create 1024 in
  let emit fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let proved = List.length (List.filter (fun r -> r.ok) results) in
  let unknown = List.length (List.filter (fun r -> r.unknown) results) in
  emit "{\n  \"section\": \"prove\",\n  \"jobs\": %d,\n  \"smoke\": %b,\n" jobs
    smoke;
  emit "  \"obligations\": %d,\n  \"proved\": %d,\n  \"failed\": %d,\n"
    (List.length results) proved
    (List.length results - proved - unknown);
  emit "  \"unknown\": %d,\n" unknown;
  emit "  \"total_seconds\": %.3f,\n"
    (List.fold_left (fun acc r -> acc +. r.seconds) 0.0 results);
  emit "  \"results\": [\n";
  List.iteri
    (fun i r ->
      emit
        "    {\"name\": %S, \"kind\": %S, \"ok\": %b, \"unknown\": %b, \
         \"status\": %S, \"seconds\": %.3f}%s\n"
        r.name r.kind r.ok r.unknown r.status r.seconds
        (if i = List.length results - 1 then "" else ","))
    results;
  emit "  ]\n}\n";
  Buffer.contents buf

let summary results =
  let buf = Buffer.create 1024 in
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "[%s] prove %s/%s: %s (%.2fs)\n"
           (if r.ok then "OK" else if r.unknown then "UNK" else "FAIL")
           r.kind r.name r.status r.seconds))
    results;
  let proved = List.length (List.filter (fun r -> r.ok) results) in
  let unknown = List.length (List.filter (fun r -> r.unknown) results) in
  Buffer.add_string buf
    (Printf.sprintf
       "prove: %d obligations, %d proved, %d failed, %d unknown\n"
       (List.length results) proved
       (List.length results - proved - unknown)
       unknown);
  Buffer.contents buf
