open Hwpat_formal

type result = {
  name : string;
  kind : string;
  ok : bool;
  status : string;
  seconds : float;
}

type task = { t_name : string; t_kind : string; t_run : unit -> bool * string }

(* ---------------------------------------------------------------- *)
(* Obligations                                                      *)
(* ---------------------------------------------------------------- *)

let equiv_status = function
  | Equiv.Proved -> (true, "proved")
  | Equiv.Counterexample cex ->
    (false, Printf.sprintf "counterexample(%d cycles)" (List.length cex))
  | Equiv.Unknown why -> (false, "unknown: " ^ why)

let bmc_status = function
  | Bmc.Holds d -> (true, Printf.sprintf "holds(%d)" d)
  | Bmc.Violation v ->
    (false, Printf.sprintf "violation of %s at cycle %d" v.Bmc.property v.Bmc.at)

(* Paper designs at proof-sized parameters: the buffers shrink from
   512 to 16 elements so the memory state stays tractable for the SAT
   encoding; the control logic under proof is the same. *)
let paper_designs () =
  [
    ( "saa2vga_fifo",
      fun () ->
        Saa2vga.build ~depth:16 ~substrate:Saa2vga.Fifo ~style:Saa2vga.Pattern
          () );
    ( "saa2vga_sram",
      fun () ->
        Saa2vga.build ~depth:16 ~substrate:Saa2vga.Sram ~style:Saa2vga.Pattern
          () );
    ( "blur",
      fun () ->
        Blur_system.build ~image_width:8 ~max_rows:8 ~style:Blur_system.Pattern
          () );
  ]

let monitor_tasks ~trace ~metrics ~depth =
  List.map
    (fun (name, build) ->
      {
        t_name = name;
        t_kind = "monitor";
        t_run =
          (fun () ->
            bmc_status (Bmc.check_auto ~trace ~metrics ~depth (build ())));
      })
    (paper_designs ())

(* Optimizer equivalence on the paper designs themselves, not just
   random netlists: the handshake-heavy control is where candidate
   induction has to work hardest. *)
let design_equiv_tasks ~trace ~metrics () =
  List.map
    (fun (name, build) ->
      {
        t_name = name;
        t_kind = "equiv";
        t_run =
          (fun () ->
            let c = build () in
            equiv_status
              (Equiv.check ~trace ~metrics c (Hwpat_rtl.Optimize.circuit c)));
      })
    (paper_designs ())

let optimize_tasks ~trace ~metrics ~seeds =
  List.map
    (fun seed ->
      {
        t_name = Printf.sprintf "random_seed_%d" seed;
        t_kind = "optimize";
        t_run =
          (fun () ->
            let c, _ = Netgen.build_random_circuit ~seed in
            equiv_status
              (Equiv.check ~trace ~metrics c (Hwpat_rtl.Optimize.circuit c)));
      })
    seeds

let prune_pairs () =
  let open Hwpat_meta in
  let cfg ?(wait_states = 1) ~name ~kind ~target ~depth ~ops () =
    Config.make ~instance_name:name ~kind ~target ~elem_width:4 ~depth
      ~ops_used:ops ~wait_states ()
  in
  [
    cfg ~name:"q_fifo_put" ~kind:Metamodel.Queue ~target:Metamodel.Fifo_core
      ~depth:8 ~ops:[ Metamodel.Write ] ();
    cfg ~name:"q_bram_get" ~kind:Metamodel.Queue ~target:Metamodel.Block_ram
      ~depth:8 ~ops:[ Metamodel.Read ] ();
    cfg ~name:"q_sram_put" ~kind:Metamodel.Queue ~target:Metamodel.Ext_sram
      ~depth:4 ~ops:[ Metamodel.Write ] ();
    cfg ~name:"s_lifo_put" ~kind:Metamodel.Stack ~target:Metamodel.Lifo_core
      ~depth:8 ~ops:[ Metamodel.Write ] ();
    cfg ~name:"s_bram_get" ~kind:Metamodel.Stack ~target:Metamodel.Block_ram
      ~depth:8 ~ops:[ Metamodel.Read ] ();
    cfg ~name:"v_bram_read" ~kind:Metamodel.Vector ~target:Metamodel.Block_ram
      ~depth:8
      ~ops:[ Metamodel.Read; Metamodel.Index ]
      ();
    cfg ~name:"v_sram_write" ~kind:Metamodel.Vector ~target:Metamodel.Ext_sram
      ~depth:4
      ~ops:[ Metamodel.Write; Metamodel.Index ]
      ();
  ]

let prune_tasks ~trace ~metrics () =
  List.map
    (fun cfg ->
      {
        t_name = Hwpat_meta.Config.entity_name cfg;
        t_kind = "prune";
        t_run =
          (fun () ->
            equiv_status
              (Equiv.check ~trace ~metrics
                 (Hwpat_containers.Elaborate.full ~trace cfg)
                 (Hwpat_containers.Elaborate.pruned ~trace cfg)));
      })
    (prune_pairs ())

let battery ?(trace = Hwpat_obs.Trace.null)
    ?(metrics = Hwpat_obs.Metrics.null) ~smoke () =
  let seq a b = List.init (b - a + 1) (fun i -> a + i) in
  if smoke then
    monitor_tasks ~trace ~metrics ~depth:10
    @ optimize_tasks ~trace ~metrics ~seeds:(seq 1 10)
  else
    monitor_tasks ~trace ~metrics ~depth:20
    @ design_equiv_tasks ~trace ~metrics ()
    @ optimize_tasks ~trace ~metrics ~seeds:(seq 1 40)
    @ prune_tasks ~trace ~metrics ()

(* ---------------------------------------------------------------- *)
(* Execution                                                        *)
(* ---------------------------------------------------------------- *)

let run_task ~trace t =
  (* One span per obligation on its worker domain's lane; the Equiv/Bmc
     phase spans nest underneath it. *)
  Hwpat_obs.Trace.span trace (t.t_kind ^ ":" ^ t.t_name) @@ fun () ->
  let t0 = Unix.gettimeofday () in
  let ok, status =
    try t.t_run ()
    with e -> (false, "raised: " ^ Printexc.to_string e)
  in
  {
    name = t.t_name;
    kind = t.t_kind;
    ok;
    status;
    seconds = Unix.gettimeofday () -. t0;
  }

let run ?(trace = Hwpat_obs.Trace.null) ?(metrics = Hwpat_obs.Metrics.null)
    ?jobs ?(smoke = false) () =
  let tasks = Array.of_list (battery ~trace ~metrics ~smoke ()) in
  let results =
    Array.to_list
      (Parallel.run ?jobs (Array.length tasks) (fun i ->
           run_task ~trace tasks.(i)))
  in
  List.iter
    (fun r ->
      Hwpat_obs.Metrics.incr metrics
        (if r.ok then "prove.proved" else "prove.failed"))
    results;
  results

let all_ok results = List.for_all (fun r -> r.ok) results

let to_json ~jobs ~smoke results =
  let buf = Buffer.create 1024 in
  let emit fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let proved = List.length (List.filter (fun r -> r.ok) results) in
  emit "{\n  \"section\": \"prove\",\n  \"jobs\": %d,\n  \"smoke\": %b,\n" jobs
    smoke;
  emit "  \"obligations\": %d,\n  \"proved\": %d,\n  \"failed\": %d,\n"
    (List.length results) proved
    (List.length results - proved);
  emit "  \"total_seconds\": %.3f,\n"
    (List.fold_left (fun acc r -> acc +. r.seconds) 0.0 results);
  emit "  \"results\": [\n";
  List.iteri
    (fun i r ->
      emit "    {\"name\": %S, \"kind\": %S, \"ok\": %b, \"status\": %S, \"seconds\": %.3f}%s\n"
        r.name r.kind r.ok r.status r.seconds
        (if i = List.length results - 1 then "" else ","))
    results;
  emit "  ]\n}\n";
  Buffer.contents buf

let summary results =
  let buf = Buffer.create 1024 in
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "[%s] prove %s/%s: %s (%.2fs)\n"
           (if r.ok then "OK" else "FAIL")
           r.kind r.name r.status r.seconds))
    results;
  let proved = List.length (List.filter (fun r -> r.ok) results) in
  Buffer.add_string buf
    (Printf.sprintf "prove: %d obligations, %d proved, %d failed\n"
       (List.length results) proved
       (List.length results - proved));
  Buffer.contents buf
