open Hwpat_video

type flavor = Copy | Blur | Sobel

let names = [ "saa2vga-fifo"; "saa2vga-sram"; "blur"; "sobel" ]
let styles = [ "pattern"; "custom" ]
let patterns = [ "gradient"; "checker"; "random"; "bars" ]

let build ~design ~style ~frame_w ~frame_h =
  let style_s =
    match String.lowercase_ascii style with
    | "pattern" -> `Pattern
    | "custom" -> `Custom
    | other ->
      failwith (Printf.sprintf "unknown style %S (valid: pattern, custom)" other)
  in
  match (String.lowercase_ascii design, style_s) with
  | "saa2vga-fifo", `Pattern ->
    (Saa2vga.build ~substrate:Saa2vga.Fifo ~style:Saa2vga.Pattern (), Copy)
  | "saa2vga-fifo", `Custom ->
    (Saa2vga.build ~substrate:Saa2vga.Fifo ~style:Saa2vga.Custom (), Copy)
  | "saa2vga-sram", `Pattern ->
    (Saa2vga.build ~substrate:Saa2vga.Sram ~style:Saa2vga.Pattern (), Copy)
  | "saa2vga-sram", `Custom ->
    (Saa2vga.build ~substrate:Saa2vga.Sram ~style:Saa2vga.Custom (), Copy)
  | "blur", `Pattern ->
    (Blur_system.build ~image_width:frame_w ~max_rows:frame_h
       ~style:Blur_system.Pattern (), Blur)
  | "blur", `Custom ->
    (Blur_system.build ~image_width:frame_w ~max_rows:frame_h
       ~style:Blur_system.Custom (), Blur)
  | "sobel", `Pattern ->
    (Sobel_system.build ~image_width:frame_w ~max_rows:frame_h (), Sobel)
  | "sobel", `Custom -> failwith "sobel exists in pattern style only"
  | other, _ ->
    failwith
      (Printf.sprintf
         "unknown design %S (valid: saa2vga-fifo, saa2vga-sram, blur, sobel)"
         other)

let frame ~pattern ~width ~height =
  match String.lowercase_ascii pattern with
  | "gradient" -> Pattern.gradient ~width ~height ~depth:8
  | "checker" -> Pattern.checkerboard ~width ~height ~depth:8 ()
  | "random" -> Pattern.random ~width ~height ~depth:8 ()
  | "bars" -> Pattern.bars ~width ~height ~depth:8
  | other ->
    failwith
      (Printf.sprintf
         "unknown pattern %S (valid: gradient, checker, random, bars)" other)

let engine_of_string s =
  match String.lowercase_ascii s with
  | "compiled" -> Hwpat_rtl.Cyclesim.Compiled
  | "reference" -> Hwpat_rtl.Cyclesim.Reference
  | other ->
    failwith
      (Printf.sprintf "unknown engine %S (valid: compiled, reference)" other)

let output_shape flavor ~width ~height =
  match flavor with
  | Copy -> (width, height)
  | Blur | Sobel -> (width - 2, height - 2)

let reference flavor input =
  match flavor with
  | Copy -> Reference.copy input
  | Blur -> Reference.blur input
  | Sobel -> Reference.sobel input
