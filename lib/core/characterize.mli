(** Design-space characterisation of generated containers (§3.4).

    "Since components are generated automatically, it is feasible to
    generate versions of each one for every physical target and range
    of configuration parameters" — this module does exactly that:
    build each container for each legal target and parameter point,
    estimate area and timing, measure access latency and switching
    activity in simulation, and return {!Hwpat_synthesis.Design_space}
    candidates. *)

type point = {
  container : string;
  target : string;
  elem_width : int;
  depth : int;
  wait_states : int;
}

val default_points : point list
(** Queues and stacks over each legal target, widths 8 and 16, depths
    64 and 512, SRAM at 0–2 wait states. *)

val point_label : point -> string
(** "container/target/WxD" (plus "/wsN" for SRAM targets): the
    candidate label, and the point's checkpoint-journal identity. *)

val measure :
  ?check:(unit -> unit) ->
  Hwpat_rtl.Cyclesim.t ->
  float * Hwpat_synthesis.Power.monitor * bool
(** Drive the put/get ping-pong workload against a measurement harness
    simulator: (cycles per access, power monitor, timed out). Each
    handshake is bounded by a 200-cycle ack guard; when one trips the
    workload is aborted, cycles-per-access is [infinity] and the third
    component is [true] — the point must be reported as unmeasurable,
    never ranked. [check] is called once per cycle — the supervision
    watchdog hook. *)

val selfcheck : ?lanes:int -> ?cycles:int -> ?seed:int -> point -> int
(** Differential validation of the bit-parallel batched engine
    ({!Hwpat_rtl.Simbatch}) on this point's measurement harness: one
    batched simulation carries [lanes] (default 64) independent random
    stimulus streams, and the naive tree-walking interpreter replays
    every lane as the oracle.  Every output port of every lane is
    compared on every one of [cycles] (default 32) clock edges; the
    stimulus is deterministic in [seed].  Returns the number of
    per-lane port comparisons performed; raises [Failure] naming the
    point, lane, cycle and port on the first divergence.  The
    characterisation numbers themselves ({!measure}, {!sweep}) still
    come from the scalar engine — this check pins the batched engine
    to the trusted baseline on realistic container circuits. *)

val characterize :
  ?check:(unit -> unit) -> point -> Hwpat_synthesis.Design_space.candidate
(** Builds the container, synthesises a measurement harness, runs a
    put/get workload and fills in every candidate field. A point whose
    measurement times out comes back with [measured = false]. *)

val sweep :
  ?trace:Hwpat_obs.Trace.t ->
  ?metrics:Hwpat_obs.Metrics.t ->
  ?jobs:int ->
  ?policy:Supervise.policy ->
  ?cancel:Parallel.token ->
  ?checkpoint:string ->
  ?resume:bool ->
  ?points:point list -> unit ->
  Hwpat_synthesis.Design_space.candidate list
(** Characterise every point, sharded one point per job across [jobs]
    domains (default [Parallel.default_jobs ()]). Results are merged
    in point order: the candidate list is identical for any [jobs].
    [trace] (default disabled) records one span per point on its
    worker domain's lane.

    Execution is supervised ({!Supervise.run_shards}): [policy] sets
    per-point watchdog deadlines and retry counts, [cancel] stops
    further points from starting, and points the supervisor gives up
    on come back as unmeasurable candidates ([measured = false]),
    excluded from ranking like an ack-guard trip. [checkpoint]
    journals each measured point to the given path; with [resume]
    points already journaled under a matching point list are skipped
    and their recorded measurements replayed byte-identically. *)

val region_report :
  constraints:Hwpat_synthesis.Design_space.constraints ->
  Hwpat_synthesis.Design_space.candidate list ->
  string
(** Feasible + Pareto table rendering; unmeasurable points are listed
    and excluded from the ranking. *)
