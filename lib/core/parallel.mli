(** Domain-parallel execution of independent shards.

    The index space is pre-split into one contiguous chunk per worker
    domain; each worker pops from the front of its own chunk and, when
    it runs dry, steals the back half of a victim's remaining range —
    chunked work-stealing with a single packed-atomic range per
    worker, so the common case touches no shared cache line and uneven
    shard durations still rebalance.  Each shard's result is written
    to its own slot, so the merged output is in submission order —
    bit-identical to the serial run whatever the stealing schedule.
    Shard closures must be domain-safe: share immutable inputs (for
    example a compiled {!Hwpat_rtl.Cyclesim} plan) freely, keep
    mutable state private to the shard or to the worker (see
    {!run_partial_local}).  Circuit elaboration itself is domain-safe
    because {!Hwpat_rtl.Signal} uids come from an atomic counter.

    This is the execution layer behind [Faultsim.run_campaign ?jobs],
    [Characterize.sweep ?jobs], [Prove.run ?jobs] and the sharded
    differential test suite; {!Supervise} builds retry, watchdog and
    checkpoint discipline on top of {!run_partial_local}. *)

val max_jobs : int
(** Upper clamp on the pool size (64). *)

val clamp_jobs : int -> int
(** Clamp a requested job count into [\[1, max_jobs\]]. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()], clamped. *)

(** {1 Cooperative cancellation} *)

type token
(** A shared cancellation flag.  Firing it stops workers from claiming
    new shard indices; shards already in flight run to completion.
    Safe to fire from a signal handler (it is one atomic store). *)

val token : unit -> token
val cancel : token -> unit
val cancelled : token -> bool

(** {1 Runners} *)

val run : ?jobs:int -> int -> (int -> 'a) -> 'a array
(** [run ?jobs n f] is [[| f 0; ...; f (n-1) |]], evaluated across at
    most [jobs] domains (default {!default_jobs}; [jobs <= 1] runs
    serially in the calling domain with no domains spawned).

    Failure is fail-fast and deterministic: when a shard raises, its
    index becomes a low-water mark and indices claimed at or above it
    are dropped unevaluated (in-flight shards finish), so a whole
    campaign is not burned evaluating work whose results will be
    discarded.  The mark only decreases, so every index below the
    final mark was evaluated no matter how stealing interleaved; the
    exception re-raised after the join — with the backtrace captured
    at the failure site — is exactly the one the serial run would
    have raised. *)

val run_partial :
  ?jobs:int -> ?cancel:token -> int -> (int -> 'a) -> 'a option array
(** Like {!run}, but shards skipped because [cancel] fired (or, under
    failure fail-fast, shards above the failure mark when the failure
    is swallowed by the caller's shard closure) come back as [None]
    instead of the call raising.  A recorded shard failure is still
    re-raised as in {!run}.  This is the primitive {!Supervise} uses
    for graceful SIGINT shutdown: fire the token from a signal
    handler, collect the completed prefix, report the rest as
    unfinished. *)

val run_partial_local :
  ?jobs:int ->
  ?cancel:token ->
  local:(unit -> 'w) ->
  int ->
  ('w -> int -> 'a) ->
  'a option array
(** {!run_partial} with per-worker state: every worker domain calls
    [local ()] once, lazily before its first shard, and passes the
    value to each shard it executes.  The state never crosses domains,
    so it may be freely mutable — campaigns use it to instantiate one
    simulator per domain from a shared plan and reuse it (with a reset
    between shards) instead of rebuilding per shard.  Shards must not
    let per-worker state leak into results in a way that depends on
    which worker ran them: results must stay bit-identical to the
    serial run. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** List map over {!run}; order preserved. *)

(** {1 Persistent worker pool}

    The runners above spawn domains per call — right for batch
    campaigns, wrong for a long-running service taking an open-ended
    stream of requests.  A {!Pool.t} keeps a fixed set of worker
    domains alive and feeds them tasks through one mutex-guarded
    queue; [Hwpat_serve] dispatches every request through one.  Tasks
    are closures responsible for delivering their own results (write a
    response, fill a promise); a task that raises is counted in
    {!Pool.escaped} and swallowed, so one bad task can never kill a
    worker. *)

module Pool : sig
  type t

  val create : ?jobs:int -> unit -> t
  (** Spawn [jobs] worker domains (default {!default_jobs}, clamped
      into [\[1, max_jobs\]]). *)

  val jobs : t -> int

  val submit : t -> (unit -> unit) -> bool
  (** Enqueue a task; returns [false] (task dropped) after
      {!shutdown} began.  The queue is unbounded — admission control
      belongs to the caller, which can consult {!pending} before
      submitting. *)

  val pending : t -> int
  (** Tasks queued and not yet started. *)

  val running : t -> int
  (** Tasks currently executing. *)

  val escaped : t -> int
  (** Tasks that raised instead of handling their own errors. *)

  val drain : t -> unit
  (** Block until the queue is empty and no task is running. *)

  val shutdown : t -> unit
  (** Stop accepting, let queued tasks finish, join the workers.
      Idempotent. *)
end
