(** Domain-parallel execution of independent shards.

    A fixed pool of worker domains claims shard indices from one
    [Atomic] counter; each shard's result is written to its own slot,
    so the merged output is in submission order — bit-identical to the
    serial run whatever the interleaving.  Shard closures must be
    domain-safe: share immutable inputs freely, build any mutable
    state (circuits, simulators) fresh inside the shard.  Circuit
    elaboration itself is domain-safe because {!Hwpat_rtl.Signal} uids
    come from an atomic counter.

    This is the execution layer behind [Faultsim.run_campaign ?jobs],
    [Characterize.sweep ?jobs] and the sharded differential test
    suite. *)

val max_jobs : int
(** Upper clamp on the pool size (64). *)

val clamp_jobs : int -> int
(** Clamp a requested job count into [\[1, max_jobs\]]. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()], clamped. *)

val run : ?jobs:int -> int -> (int -> 'a) -> 'a array
(** [run ?jobs n f] is [[| f 0; ...; f (n-1) |]], evaluated across at
    most [jobs] domains (default {!default_jobs}; [jobs <= 1] runs
    serially in the calling domain with no domains spawned).  Each
    shard is evaluated exactly once.  If any shards raise, all shards
    still run and then the exception of the lowest-numbered failed
    shard is re-raised in the calling domain. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** List map over {!run}; order preserved. *)
