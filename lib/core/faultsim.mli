open Hwpat_rtl
open Hwpat_video

(** Seeded fault-injection campaigns over the video systems.

    Each fault from a deterministic {!Fault.random_campaign} runs in a
    fresh simulation with runtime {!Monitor}s auto-attached; the run is
    compared against the fault-free reference and classified:

    - [Detected] — a monitor flagged a protocol violation, or the
      design's own [err] output went high;
    - [Masked] — the run completed with bit-identical output and no
      flag: the fault had no observable effect;
    - [Silent] — wrong output or a hang with no flag raised (the
      dangerous case protection hardware is meant to eliminate);
    - [Unfinished] — the shard never produced a verdict: supervision
      retries were exhausted (watchdog timeout, transient failure) or
      the campaign was cancelled before the fault ran.  Unfinished
      faults are reported explicitly, excluded from {!coverage}, and
      never journaled — a resumed campaign runs them again. *)

type outcome = Detected | Masked | Silent | Unfinished

val outcome_name : outcome -> string

type result = {
  description : string;
      (** uid-independent rendering of the fault event against the
          campaign's master circuit ({!Fault.describe_event_in}):
          stable across reruns, processes and job counts — also the
          checkpoint-journal identity of the shard *)
  outcome : outcome;
  detail : string option;
      (** the first monitor violation (pre-rendered), or the reason a
          shard is [Unfinished] *)
  err_flag : bool;  (** the design's [err] output, if it has one *)
  completed : bool;  (** collected every expected pixel in budget *)
  cycles : int;
}

type summary = {
  design : string;
  seed : int;
  monitors : int;  (** monitors auto-attached by naming convention *)
  baseline_cycles : int;  (** fault-free run length *)
  results : result list;
}

val count : summary -> outcome -> int

val coverage : summary -> float
(** detected / (detected + silent); masked and unfinished faults are
    excluded since they have no (known) effect to detect. 1.0 when
    nothing was detectable. *)

val run_once :
  ?engine:Cyclesim.engine ->
  ?sim:Cyclesim.t ->
  ?events:Fault.event list ->
  ?check:(unit -> unit) ->
  budget:int ->
  frame:Frame.t ->
  Circuit.t ->
  int list * int * Monitor.t * int * bool
(** One simulation of a stream-copy circuit: collected pixels, cycles
    run, the monitor, monitors attached, and the [err] output state.
    [engine] selects the simulation engine (default compiled). [sim]
    reuses an existing simulator of the circuit instead of creating
    one — it is {!Cyclesim.reset} first, so the run is bit-identical
    to one on a fresh simulator; campaigns pass per-worker instances
    of a shared compiled plan. [check] is called once per cycle — the
    supervision watchdog hook. *)

val run_campaign :
  ?trace:Hwpat_obs.Trace.t ->
  ?metrics:Hwpat_obs.Metrics.t ->
  ?engine:Cyclesim.engine ->
  ?plan:Cyclesim.plan ->
  ?lanes:int ->
  ?jobs:int ->
  ?policy:Supervise.policy ->
  ?cancel:Parallel.token ->
  ?checkpoint:string ->
  ?resume:bool ->
  ?seed:int ->
  ?faults:int ->
  ?frame_width:int ->
  ?frame_height:int ->
  build:(unit -> Circuit.t) ->
  design:string ->
  unit ->
  summary
(** Defaults: [seed = 1], [faults = 20], 8x8 frame. Deterministic in
    [seed] (and independent of [engine] — the differential suite holds
    the classifications identical across engines). The circuit is
    elaborated and compiled once into a shared {!Cyclesim.plan} — or,
    when [plan] is given (the serve daemon's netlist cache), the
    supplied plan is used directly, its circuit is the campaign
    master, and [build] is never called (raises [Invalid_argument] if
    [engine] is also given and disagrees with the plan's); the
    campaign is sharded one fault per shard across [jobs] domains
    (default [Parallel.default_jobs ()]), each worker reusing one plan
    instance across its faults with a reset in between. Results merge
    in fault order and every fault starts from power-on state, so the
    summary — {!render} and {!summary_to_json} included — is
    bit-identical for any [jobs]. Raises [Invalid_argument] if the
    design fails or trips a monitor fault-free.

    Execution is supervised ({!Supervise.run_shards_local}): [policy] sets
    per-fault watchdog deadlines and retry counts, [cancel] stops
    further faults from starting, and shards that never complete are
    reported as [Unfinished] results.  [checkpoint] journals each
    completed fault to the given path as it finishes; with [resume]
    faults already journaled under a matching campaign configuration
    (design, seed, fault count, frame size — enforced, see
    {!Journal.Config_mismatch}) are skipped and their recorded results
    replayed, so an interrupted-then-resumed campaign renders
    byte-identically to an uninterrupted one.

    [lanes] switches to the bit-parallel batched engine ({!Simbatch}):
    pending faults are grouped [lanes] (1..64) at a time into one
    simulation whose machine words carry one fault per bit-lane, so a
    campaign of N faults runs ceil(N/lanes) simulations. Each lane's
    trajectory is bit-identical to its scalar run and classifications
    are demultiplexed per lane, so the summary stays byte-identical to
    the scalar engine's at any lane count and any [jobs]; lane batching
    composes with [jobs] (each worker domain runs whole batches) and
    with [checkpoint]/[resume] (faults journal individually under the
    same keys, so scalar and batched journals interoperate — the
    campaign configuration string does not include the engine or lane
    count). Requires the compiled engine (the default); raises
    [Invalid_argument] combined with [engine = Reference]. *)

val designs : (string * (unit -> Circuit.t)) list
(** Named builds for the CLI and benchmark harness: the Table 3
    saa2vga variants plus the protected design (and its
    fault-configurable twin). *)

val design_names : string list
val find_design : string -> unit -> Circuit.t

val render : summary -> string

val summary_to_json : summary -> string
(** Machine-readable summary; byte-stable across reruns and job counts
    (the parallel determinism tests compare these bytes). *)

val protection_overhead :
  ?board:Hwpat_synthesis.Board.t -> unit ->
  Hwpat_synthesis.Resource_report.comparison
(** Resource cost of the generated protection hardware: the SRAM
    pattern design vs {!Saa2vga.build_protected}, through the Table 3
    estimation pipeline. *)
