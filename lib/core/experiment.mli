open Hwpat_rtl
open Hwpat_video

(** Running the paper's experiments: simulate a video system on a test
    frame, check functional equivalence against the software reference,
    and produce the resource comparisons of Table 3. *)

type run = {
  output : Frame.t;
  cycles : int;
  cycles_per_pixel : float;
}

(** Snapshot of the video-system handshakes at the moment a simulation
    ran out of its cycle budget — enough to tell a stalled source
    (backpressure never released) from a silent sink. *)
type timeout_diagnosis = {
  design : string;
  cycles : int;
  expected_pixels : int;
  collected_pixels : int;
  px_valid : bool;
  px_ready : bool;
  out_valid : bool;
  out_ready : bool;
}

exception Timeout of timeout_diagnosis

val describe_timeout : timeout_diagnosis -> string
(** Multi-line human-readable diagnostic (also installed as the
    exception printer). *)

val run_video_system :
  ?trace:Hwpat_obs.Trace.t ->
  ?metrics:Hwpat_obs.Metrics.t ->
  ?engine:Cyclesim.engine ->
  ?sim:Cyclesim.t ->
  ?check:(unit -> unit) ->
  ?timeout_per_pixel:int ->
  ?vcd_path:string ->
  Circuit.t ->
  input:Frame.t ->
  out_width:int ->
  out_height:int ->
  run
(** Streams [input] through the circuit's [px_*] ports and collects
    [out_width * out_height] pixels from the [out_*] ports. Raises
    {!Timeout} with a handshake snapshot when the cycle budget runs
    out. [vcd_path] dumps a waveform of every named signal for the
    whole run. [engine] selects the simulation engine (default
    compiled).

    [sim] reuses an existing simulator of [circuit] instead of
    compiling one — it is {!Cyclesim.reset} first, so the run is
    bit-identical to one on a fresh simulator; the serve daemon passes
    instances of a cached compiled plan ([engine] is then ignored).
    [check] is called once per simulated cycle — the supervision
    watchdog hook ({!Supervise.check}).

    [trace] (default disabled) records [simulate] > [compile] / [run]
    spans; [metrics] (default disabled) receives the simulator's
    activity counters under [sim.*] — cycles, settles, node
    evaluations (total and per node kind), plus dirty-skip hit rate
    and cycles/sec gauges — even when the run raises {!Timeout}. *)

type table3_row = {
  label : string;                 (** e.g. "saa2vga 1" *)
  comparison : Hwpat_synthesis.Resource_report.comparison;
  paper_ffs : int * int;          (** pattern/custom, from the paper *)
  paper_luts : int * int;
  paper_brams : int * int;
  paper_clk : int * int;
  functional_match : bool;        (** pattern out = custom out = reference *)
}

val table3 :
  ?board:Hwpat_synthesis.Board.t -> ?frame_width:int -> ?frame_height:int ->
  unit -> table3_row list
(** Builds all six circuits (three designs × two styles), runs them on
    a gradient test frame, verifies outputs against
    {!Hwpat_video.Reference}, and estimates resources. Frame defaults:
    32×32 (the paper's board processed full video; any size exercises
    the same logic). *)

val render_table3 : table3_row list -> string
(** Paper-style table: each cell "pattern/custom", with the paper's
    reported numbers alongside. *)

val paper_numbers : (string * (int * int) * (int * int) * (int * int) * (int * int)) list
(** The verbatim contents of the paper's Table 3:
    (design, FFs p/c, LUTs p/c, BRAM p/c, clk p/c). *)
