open Hwpat_rtl

(** The paper's motivating design (Figures 1 and 3): a real-time video
    pipeline that copies a pixel stream from the video decoder to the
    VGA coder through an input and an output buffer.

    Two substrates reproduce Table 3's first two rows:
    - [Fifo] — "saa2vga 1": both buffers over on-chip FIFO cores
      (maximum performance, highest cost);
    - [Sram] — "saa2vga 2": both buffers over external static RAMs
      (much smaller, performance bound by memory access).

    Two styles make the comparison:
    - [Pattern] — containers + iterators + the generic copy algorithm;
    - [Custom] — an ad-hoc implementation written directly against the
      device ports, as a designer would without the library.

    All four circuits expose identical ports:
    inputs [px_valid], [px_data], [out_ready];
    outputs [px_ready], [out_valid], [out_data]. *)

type substrate =
  | Fifo
  | Sram
  | Sram_shared
      (** both buffers in ONE external SRAM behind the generated
          arbiter — the actual XSB-300E board has a single SRAM chip;
          §3.4 lists "automatic generation of arbitration logic for
          shared physical resources" as a generator duty. Pattern
          style only. *)

type style = Pattern | Custom

val build :
  ?depth:int -> ?width:int -> ?wait_states:int ->
  substrate:substrate -> style:style -> unit -> Circuit.t
(** Defaults: [depth = 512], [width = 8], [wait_states = 1]. *)

val build_protected :
  ?depth:int -> ?width:int -> ?wait_states:int ->
  ?op_timeout:int option -> ?retries:int -> ?faulty:bool ->
  unit -> Circuit.t
(** The SRAM-substrate pattern design with generated protection:
    parity on both buffer memories and a watchdog on each memory
    handshake ([op_timeout], default [Some 32]; [retries] default 1).
    Adds an [err] output — the sticky degradation flag. Once any
    protection layer fires, the output stage freezes on the last good
    pixel instead of emitting corrupt data or hanging.

    [faulty] (default false) inserts fault-configurable SRAM wrappers
    with [in_sram_fault_*] / [out_sram_fault_*] control inputs (all
    zero = fault-free) for campaign testing. *)

val name : substrate:substrate -> style:style -> string

val all_variants : (substrate * style) list
(** The four Table 3 variants (shared-SRAM excluded; it is an
    extension, compared separately). *)
