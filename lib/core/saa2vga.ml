open Hwpat_rtl
open Hwpat_rtl.Signal
open Hwpat_containers
open Hwpat_iterators
open Hwpat_algorithms

type substrate = Fifo | Sram | Sram_shared
type style = Pattern | Custom

let name ~substrate ~style =
  Printf.sprintf "saa2vga_%s_%s"
    (match substrate with
    | Fifo -> "fifo"
    | Sram -> "sram"
    | Sram_shared -> "sram_shared")
    (match style with Pattern -> "pattern" | Custom -> "custom")

let all_variants = [ (Fifo, Pattern); (Fifo, Custom); (Sram, Pattern); (Sram, Custom) ]

let io width =
  ( input "px_valid" 1,
    input "px_data" width,
    input "out_ready" 1 )

let close ~circuit_name ~px_ready ~out_valid ~out_data =
  Circuit.create_exn ~name:circuit_name
    [ ("px_ready", px_ready); ("out_valid", out_valid); ("out_data", out_data) ]

(* --- Pattern-based: the Figure 3 model --------------------------------- *)

(* For the shared-SRAM substrate the two containers become arbiter
   clients of one memory, each in its own half of the address space.
   The container FSMs are unchanged: only the Mem_target adapter
   differs — which is the paper's point about generated arbitration. *)
let shared_sram_targets ~depth ~width ~wait_states =
  let open Hwpat_devices in
  let mk_client abits =
    {
      Sram_arbiter.req = wire 1;
      we = wire 1;
      addr = wire (abits + 1);
      wr_data = wire width;
    }
  in
  let abits = Util.address_bits depth in
  let ca = mk_client abits and cb = mk_client abits in
  let arb =
    Sram_arbiter.create ~name:"shared" ~words:(2 * depth) ~width ~wait_states
      ~a:ca ~b:cb ()
  in
  let target (c : Sram_arbiter.client) (g : Sram_arbiter.grant) ~hi
      (r : Container_intf.mem_request) =
    c.Sram_arbiter.req <== r.Container_intf.mem_req;
    c.Sram_arbiter.we <== r.Container_intf.mem_we;
    c.Sram_arbiter.addr
    <== concat_msb
          [ (if hi then vdd else gnd); uresize r.Container_intf.mem_addr abits ];
    c.Sram_arbiter.wr_data <== r.Container_intf.mem_wdata;
    Mem_target.of_arbiter_grant g
  in
  (target ca arb.Sram_arbiter.a ~hi:false, target cb arb.Sram_arbiter.b ~hi:true)

let build_pattern ~substrate ~depth ~width ~wait_states =
  let px_valid, px_data, out_ready = io width in
  let stream = { Read_buffer.px_valid; px_data } in
  let copy = Copy.create ~width () in
  let shared =
    match substrate with
    | Sram_shared -> Some (shared_sram_targets ~depth ~width ~wait_states)
    | Fifo | Sram -> None
  in
  let src_it, px_ready =
    Seq_iterator.connect_input
      ~build:(fun ~get_req ->
        let rb =
          match (substrate, shared) with
          | Fifo, _ -> Read_buffer.over_fifo ~depth ~width ~stream ~get_req ()
          | Sram, _ ->
            Read_buffer.over_sram ~depth ~width ~wait_states ~stream ~get_req ()
          | Sram_shared, Some (target_a, _) ->
            Read_buffer.over_mem ~depth ~width ~target:target_a ~stream ~get_req ()
          | Sram_shared, None -> assert false
        in
        (rb.Read_buffer.seq, rb.Read_buffer.px_ready))
      copy.Transform.src_driver
  in
  let put_req = Seq_iterator.fused_put_req copy.Transform.dst_driver in
  let put_data = copy.Transform.dst_driver.Iterator_intf.write_data in
  let wb =
    match (substrate, shared) with
    | Fifo, _ -> Write_buffer.over_fifo ~depth ~width ~out_ready ~put_req ~put_data ()
    | Sram, _ ->
      Write_buffer.over_sram ~depth ~width ~wait_states ~out_ready ~put_req
        ~put_data ()
    | Sram_shared, Some (_, target_b) ->
      Write_buffer.over_mem ~depth ~width ~target:target_b ~out_ready ~put_req
        ~put_data ()
    | Sram_shared, None -> assert false
  in
  let dst_it = Seq_iterator.output wb.Write_buffer.seq copy.Transform.dst_driver in
  copy.Transform.connect ~src:src_it ~dst:dst_it;
  close
    ~circuit_name:(name ~substrate ~style:Pattern)
    ~px_ready
    ~out_valid:wb.Write_buffer.stream.Write_buffer.out_valid
    ~out_data:wb.Write_buffer.stream.Write_buffer.out_data

(* --- Custom, FIFO substrate: ad-hoc stream copy ------------------------- *)

let build_custom_fifo ~depth ~width =
  let px_valid, px_data, out_ready = io width in
  let open Hwpat_devices in
  (* Input buffer straight off the decoder. *)
  let copy_rd_en = wire 1 in
  let in_fifo =
    Fifo_core.create ~name:"infifo" ~depth ~width ~wr_en:px_valid
      ~wr_data:px_data ~rd_en:copy_rd_en ()
  in
  let px_ready = px_valid &: ~:(in_fifo.Fifo_core.full) in
  (* Output buffer feeding the VGA coder. *)
  let drain_rd_en = wire 1 in
  let out_fifo =
    Fifo_core.create ~name:"outfifo" ~depth ~width
      ~wr_en:in_fifo.Fifo_core.rd_valid ~wr_data:in_fifo.Fifo_core.rd_data
      ~rd_en:drain_rd_en ()
  in
  (* The hand-written copy machine: issue a read, wait for the word,
     which lands directly in the output FIFO. *)
  let fsm = Fsm.create ~name:"copy_state" ~states:2 () in
  let issuing = Fsm.is fsm 0 in
  let issue =
    issuing &: ~:(in_fifo.Fifo_core.empty) &: ~:(out_fifo.Fifo_core.full)
  in
  copy_rd_en <== issue;
  Fsm.transitions fsm [ (0, [ (issue, 1) ]); (1, [ (vdd, 0) ]) ];
  (* Drain side. *)
  let pending =
    reg_fb ~width:1 (fun q ->
        mux2 drain_rd_en vdd (mux2 out_fifo.Fifo_core.rd_valid gnd q))
  in
  drain_rd_en
  <== (out_ready &: ~:(out_fifo.Fifo_core.empty) &: ~:pending
      &: ~:(out_fifo.Fifo_core.rd_valid));
  close
    ~circuit_name:(name ~substrate:Fifo ~style:Custom)
    ~px_ready
    ~out_valid:out_fifo.Fifo_core.rd_valid ~out_data:out_fifo.Fifo_core.rd_data

(* --- Custom, SRAM substrate: one big ad-hoc FSM ------------------------- *)

let st_idle = 0
let st_in_wr = 1
let st_cp_rd = 2
let st_cp_wr = 3
let st_out_rd = 4
let st_out_show = 5

let build_custom_sram ~depth ~width ~wait_states =
  let px_valid, px_data, out_ready = io width in
  let open Hwpat_devices in
  let abits = Util.address_bits depth in
  let cbits = abits + 1 in
  let fsm = Fsm.create ~name:"sram_copy" ~states:6 () in
  let is = Fsm.is fsm in
  let in_ack = wire 1 and out_ack = wire 1 in
  (* Circular-buffer pointers for both memories. *)
  let bump ptr = ptr +: one abits in
  let in_wr_done = is st_in_wr &: in_ack in
  let cp_rd_done = is st_cp_rd &: in_ack in
  let cp_wr_done = is st_cp_wr &: out_ack in
  let out_rd_done = is st_out_rd &: out_ack in
  let in_end = reg_fb ~width:abits (fun q -> mux2 in_wr_done (bump q) q) in
  let in_begin = reg_fb ~width:abits (fun q -> mux2 cp_rd_done (bump q) q) in
  let out_end = reg_fb ~width:abits (fun q -> mux2 cp_wr_done (bump q) q) in
  let out_begin = reg_fb ~width:abits (fun q -> mux2 out_rd_done (bump q) q) in
  let in_count =
    reg_fb ~width:cbits (fun q ->
        q
        +: mux2 in_wr_done (one cbits) (zero cbits)
        -: mux2 cp_rd_done (one cbits) (zero cbits))
  in
  let out_count =
    reg_fb ~width:cbits (fun q ->
        q
        +: mux2 cp_wr_done (one cbits) (zero cbits)
        -: mux2 out_rd_done (one cbits) (zero cbits))
  in
  let in_full = in_count ==: of_int ~width:cbits depth in
  let out_full = out_count ==: of_int ~width:cbits depth in
  let in_some = in_count <>: zero cbits in
  let out_some = out_count <>: zero cbits in
  let in_sram =
    Sram.create ~name:"in_sram" ~words:depth ~width ~wait_states
      ~req:(is st_in_wr |: is st_cp_rd)
      ~we:(is st_in_wr)
      ~addr:(mux2 (is st_in_wr) in_end in_begin)
      ~wr_data:px_data ()
  in
  let out_sram =
    Sram.create ~name:"out_sram" ~words:depth ~width ~wait_states
      ~req:(is st_cp_wr |: is st_out_rd)
      ~we:(is st_cp_wr)
      ~addr:(mux2 (is st_cp_wr) out_end out_begin)
      ~wr_data:in_sram.Sram.rd_data ()
  in
  in_ack <== in_sram.Sram.ack;
  out_ack <== out_sram.Sram.ack;
  Fsm.transitions fsm
    [
      ( st_idle,
        [
          (px_valid &: ~:in_full, st_in_wr);
          (in_some &: ~:out_full, st_cp_rd);
          (out_ready &: out_some, st_out_rd);
        ] );
      (st_in_wr, [ (in_ack, st_idle) ]);
      (st_cp_rd, [ (in_ack, st_cp_wr) ]);
      (st_cp_wr, [ (out_ack, st_idle) ]);
      (st_out_rd, [ (out_ack, st_out_show) ]);
      (st_out_show, [ (vdd, st_idle) ]);
    ];
  close
    ~circuit_name:(name ~substrate:Sram ~style:Custom)
    ~px_ready:in_wr_done
    ~out_valid:(is st_out_show)
    ~out_data:out_sram.Sram.rd_data

(* --- Protected pattern variant (graceful degradation) ------------------- *)

(* The SRAM-substrate pattern copy with generated protection woven in:
   both buffers sit on private (optionally fault-wrapped) SRAMs behind
   parity and a handshake watchdog. On persistent SRAM failure the
   watchdog forces the pipeline onward and the output stage freezes on
   the last good pixel while the [err] port goes (and stays) high —
   degraded pictures instead of a hung system. *)
let build_protected ?(depth = 512) ?(width = 8) ?(wait_states = 1)
    ?(op_timeout = Some 32) ?(retries = 1) ?(faulty = false) () =
  let px_valid, px_data, out_ready = io width in
  let stream = { Read_buffer.px_valid; px_data } in
  let copy = Copy.create ~width () in
  let mk_target label =
    let builder w (r : Container_intf.mem_request) =
      let faults =
        if faulty then
          Hwpat_devices.Fault_wrap.inputs ~prefix:(label ^ "_fault") ~width:w ()
        else Hwpat_devices.Fault_wrap.no_faults ~width:w
      in
      let dev =
        Hwpat_devices.Fault_wrap.sram ~name:label ~words:depth ~width:w
          ~wait_states ~faults ~req:r.Container_intf.mem_req
          ~we:r.Container_intf.mem_we ~addr:r.Container_intf.mem_addr
          ~wr_data:r.Container_intf.mem_wdata ()
      in
      {
        Container_intf.mem_ack = dev.Hwpat_devices.Sram.ack;
        mem_rdata = dev.Hwpat_devices.Sram.rd_data;
      }
    in
    Protect.apply ~name:label ~width ~parity:true ~op_timeout ~retries builder
  in
  let target_in, errs_in = mk_target "in_sram" in
  let target_out, errs_out = mk_target "out_sram" in
  let src_it, px_ready =
    Seq_iterator.connect_input
      ~build:(fun ~get_req ->
        let rb =
          Read_buffer.over_mem ~depth ~width ~target:target_in ~stream ~get_req ()
        in
        (rb.Read_buffer.seq, rb.Read_buffer.px_ready))
      copy.Transform.src_driver
  in
  let put_req = Seq_iterator.fused_put_req copy.Transform.dst_driver in
  let put_data = copy.Transform.dst_driver.Iterator_intf.write_data in
  let wb =
    Write_buffer.over_mem ~depth ~width ~target:target_out ~out_ready ~put_req
      ~put_data ()
  in
  let dst_it = Seq_iterator.output wb.Write_buffer.seq copy.Transform.dst_driver in
  copy.Transform.connect ~src:src_it ~dst:dst_it;
  let any_err =
    errs_in.Protect.parity_err |: errs_in.Protect.timeout_err
    |: errs_out.Protect.parity_err |: errs_out.Protect.timeout_err
  in
  let degraded =
    Hwpat_devices.Handshake.sticky ~set:any_err ~clear:gnd -- "degraded"
  in
  let raw_valid = wb.Write_buffer.stream.Write_buffer.out_valid in
  let raw_data = wb.Write_buffer.stream.Write_buffer.out_data in
  let last_good = reg ~enable:(raw_valid &: ~:degraded) raw_data -- "last_good" in
  let out_data = mux2 degraded last_good raw_data in
  Circuit.create_exn ~name:"saa2vga_sram_protected"
    [
      ("px_ready", px_ready);
      ("out_valid", raw_valid);
      ("out_data", out_data);
      ("err", degraded);
    ]

let build ?(depth = 512) ?(width = 8) ?(wait_states = 1) ~substrate ~style () =
  match (substrate, style) with
  | (Fifo | Sram | Sram_shared), Pattern ->
    build_pattern ~substrate ~depth ~width ~wait_states
  | Fifo, Custom -> build_custom_fifo ~depth ~width
  | Sram, Custom -> build_custom_sram ~depth ~width ~wait_states
  | Sram_shared, Custom ->
    invalid_arg
      "Saa2vga.build: the shared-SRAM variant exists in pattern style only"
