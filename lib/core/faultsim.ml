open Hwpat_rtl
open Hwpat_video

(* Seeded fault-injection campaigns over the video systems: run each
   fault in a fresh simulation with runtime monitors attached, compare
   against the fault-free reference, and classify the outcome. *)

type outcome = Detected | Masked | Silent | Unfinished

let outcome_name = function
  | Detected -> "detected"
  | Masked -> "masked"
  | Silent -> "silent"
  | Unfinished -> "unfinished"

let outcome_of_name = function
  | "detected" -> Some Detected
  | "masked" -> Some Masked
  | "silent" -> Some Silent
  | "unfinished" -> Some Unfinished
  | _ -> None

type result = {
  description : string;
  outcome : outcome;
  detail : string option;
  err_flag : bool;
  completed : bool;
  cycles : int;
}

type summary = {
  design : string;
  seed : int;
  monitors : int;
  baseline_cycles : int;
  results : result list;
}

let count summary outcome =
  List.length (List.filter (fun r -> r.outcome = outcome) summary.results)

let coverage summary =
  (* Detection coverage over the faults that mattered: masked faults
     had no observable effect, so they need no detecting. *)
  let detected = count summary Detected and silent = count summary Silent in
  if detected + silent = 0 then 1.0
  else float_of_int detected /. float_of_int (detected + silent)

(* --- Single runs --------------------------------------------------------- *)

let has_output circuit port = List.mem_assoc port (Circuit.outputs circuit)

(* One simulation of a stream-copy circuit: feed [frame], collect the
   same number of pixels, stop at [budget] cycles. [events] are
   scheduled on a Fault injector; monitors are auto-attached by naming
   convention. [sim] reuses an existing simulator of [circuit] (it is
   reset first, which restores power-on state exactly — campaigns pass
   a per-worker instance of a shared compiled plan); otherwise a fresh
   simulator is created. Monitor, injector, source and sink are always
   fresh, so a reused simulator carries no residue between runs. *)
let run_once ?engine ?sim ?(events = []) ?(check = fun () -> ()) ~budget ~frame
    circuit =
  let expected = Frame.pixels frame in
  let sim =
    match sim with
    | Some sim ->
      Cyclesim.reset sim;
      sim
    | None -> Cyclesim.create ?engine circuit
  in
  let monitor = Monitor.create sim in
  let monitors = Monitor.add_auto monitor in
  let injector = Fault.create sim in
  List.iter
    (fun (e : Fault.event) -> Fault.schedule injector ~at:e.Fault.at e.Fault.fault)
    events;
  let source = Video_source.create sim frame in
  let sink = Vga_sink.create sim () in
  let cycles = ref 0 in
  while Vga_sink.count sink < expected && !cycles < budget do
    check ();
    Video_source.drive source;
    Vga_sink.drive sink;
    Fault.step injector;
    Cyclesim.cycle sim;
    Monitor.sample monitor;
    Video_source.observe source;
    Vga_sink.observe sink;
    incr cycles
  done;
  let err_flag =
    has_output circuit "err" && Bits.to_bool !(Cyclesim.out_port sim "err")
  in
  (Vga_sink.collected sink, !cycles, monitor, monitors, err_flag)

(* --- Campaigns ----------------------------------------------------------- *)

let classify ~reference ~expected ~collected ~cycles ~first_violation ~err_flag
    ~description =
  let completed = List.length collected = expected in
  let detected = first_violation <> None || err_flag in
  let outcome =
    if detected then Detected
    else if completed && collected = reference then Masked
    else Silent
  in
  {
    description;
    outcome;
    (* Pre-rendered at classification time: the violation text is
       uid-independent and journals as a plain string. *)
    detail =
      Option.map
        (fun v -> Format.asprintf "%a" Monitor.pp_violation v)
        first_violation;
    err_flag;
    completed;
    cycles;
  }

(* The campaign is trivially parallel: every fault runs against the
   shared (immutable) reference pixels. The circuit is elaborated and
   compiled exactly once, into a shared immutable [Cyclesim.plan];
   each worker domain instantiates one simulator from the plan and
   reuses it for every fault it executes, with [Cyclesim.reset]
   restoring power-on state between faults — elaborate/compile cost is
   paid once per campaign instead of once per fault. Fault events are
   drawn once from the master circuit and apply directly to any
   instance (instances share the master's signal graph read-only).
   Results merge in fault order and each fault starts from identical
   reset state, so the summary is bit-identical for any [jobs] and any
   work-stealing schedule. *)
let run_campaign ?(trace = Hwpat_obs.Trace.null)
    ?(metrics = Hwpat_obs.Metrics.null) ?engine ?plan ?lanes ?jobs ?policy
    ?cancel ?checkpoint ?(resume = false) ?(seed = 1) ?(faults = 20)
    ?(frame_width = 8) ?(frame_height = 8) ~build ~design () =
  let module Trace = Hwpat_obs.Trace in
  (match lanes with
  | Some l when l < 1 || l > Simbatch.lane_bits ->
    invalid_arg
      (Printf.sprintf "Faultsim: lanes must be in 1..%d" Simbatch.lane_bits)
  | Some _ when engine = Some Cyclesim.Reference ->
    invalid_arg "Faultsim: the reference engine has no batched form"
  | _ -> ());
  (match (plan, engine) with
  | Some p, Some e when Cyclesim.plan_engine p <> e ->
    invalid_arg "Faultsim: plan engine does not match requested engine"
  | _ -> ());
  Trace.span trace "faultsim"
    ~args:[ ("design", Trace.String design); ("faults", Trace.Int faults) ]
  @@ fun () ->
  let frame = Pattern.gradient ~width:frame_width ~height:frame_height ~depth:8 in
  let expected = Frame.pixels frame in
  (* A caller-supplied plan (the serve daemon's cache) stands in for
     elaboration and compilation both; its circuit is the campaign
     master and [build] is never called. *)
  let circuit, plan =
    match plan with
    | Some p -> (Cyclesim.plan_circuit p, p)
    | None ->
      let circuit = build () in
      ( circuit,
        Trace.span trace "compile" (fun () -> Cyclesim.plan ?engine circuit) )
  in
  (* Fault-free reference run: also sanity-checks that the monitors
     stay silent on the healthy design. *)
  let reference, baseline_cycles, base_monitor, monitors, _ =
    Trace.span trace "baseline" (fun () ->
        run_once ~sim:(Cyclesim.of_plan plan) ~budget:(400 * expected) ~frame
          circuit)
  in
  if List.length reference <> expected then
    invalid_arg
      (Printf.sprintf "Faultsim: %s does not complete fault-free" design);
  (match Monitor.first_violation base_monitor with
  | Some v ->
    invalid_arg
      (Printf.sprintf "Faultsim: %s violates protocol fault-free: %s" design
         (Format.asprintf "%a" Monitor.pp_violation v))
  | None -> ());
  let budget = (4 * baseline_cycles) + 64 in
  let events =
    Array.of_list
      (Fault.random_campaign ~seed ~n:faults ~max_cycle:baseline_cycles circuit)
  in
  let descriptions =
    Array.map (Fault.describe_event_in circuit) events
  in
  (* Checkpoint identity: the campaign parameters that determine every
     classification.  (The engine is deliberately excluded — the
     differential suite holds classifications identical across
     engines, so a journal from either replays in both.) *)
  let config =
    Printf.sprintf "faultsim design=%s seed=%d faults=%d frame=%dx%d" design
      seed faults frame_width frame_height
  in
  let journal =
    Option.map (fun path -> Journal.start ~path ~config ~resume) checkpoint
  in
  Fun.protect ~finally:(fun () -> Option.iter Journal.close journal)
  @@ fun () ->
  (* Journal keys are uid-independent: the fault index plus its
     describe_event_in rendering, stable across processes and jobs. *)
  let key k = Printf.sprintf "%d:%s" k descriptions.(k) in
  let encode r =
    Printf.sprintf "%s %b %b %d %S" (outcome_name r.outcome) r.err_flag
      r.completed r.cycles
      (match r.detail with Some d -> d | None -> "")
  in
  let decode k data =
    try
      Scanf.sscanf data "%s %B %B %d %S"
        (fun name err_flag completed cycles detail ->
          Option.map
            (fun outcome ->
              {
                description = descriptions.(k);
                outcome;
                detail = (if detail = "" then None else Some detail);
                err_flag;
                completed;
                cycles;
              })
            (outcome_of_name name))
    with Scanf.Scan_failure _ | Failure _ | End_of_file -> None
  in
  let unfinished k reason =
    {
      description = descriptions.(k);
      outcome = Unfinished;
      detail = Some reason;
      err_flag = false;
      completed = false;
      cycles = 0;
    }
  in
  let scalar_results () =
    let run_shard sim ctx k =
      (* One span per fault, recorded on the worker's own domain lane, so
         the trace shows worker utilization and straggler shards. The
         worker's simulator instance is reused; run_once resets it. *)
      Trace.span trace (Printf.sprintf "fault#%d" k) @@ fun () ->
      let collected, cycles, monitor, _, err_flag =
        run_once ~sim ~events:[ events.(k) ]
          ~check:(fun () -> Supervise.check ctx)
          ~budget ~frame circuit
      in
      let r =
        classify ~reference ~expected ~collected ~cycles
          ~first_violation:(Monitor.first_violation monitor)
          ~err_flag ~description:descriptions.(k)
      in
      Trace.annotate trace "outcome" (Trace.String (outcome_name r.outcome));
      r
    in
    let outcomes =
      Supervise.run_shards_local ?jobs ?policy ~metrics ?cancel ?journal ~key
        ~encode ~decode
        ~local:(fun () -> Cyclesim.of_plan plan)
        (Array.length events) run_shard
    in
    Array.to_list
      (Array.mapi
         (fun k -> function
           | Supervise.Done r -> r
           | Supervise.Unfinished { reason; attempts = _ } ->
             unfinished k reason)
         outcomes)
  in
  (* Batched path: faults are grouped [lanes] at a time into one
     bit-parallel simulation (ceil(pending/lanes) simulations instead
     of one per fault). Each lane gets its own fresh monitor, injector,
     source and sink over a lane view; the per-lane driver loop mirrors
     [run_once]'s exactly — per active lane: drive source, drive sink,
     step injector, then ONE global batch cycle, then sample monitor
     and observe, with the lane's result latched the moment its own
     while-condition (all pixels collected, or budget exhausted) goes
     false. All lanes of a batch start at cycle 0 together, so each
     lane's trajectory and classification are bit-identical to its
     scalar run, and the demultiplexed summary is byte-identical to the
     scalar engine's at any lane count and any job count. Journaling is
     manual here (batch membership depends on which faults were already
     journaled, so batches are not stable resume keys; individual
     faults are): journaled faults are decoded up front and only
     pending ones batched, and each completed batch records its faults
     under the same per-fault keys the scalar path uses — scalar and
     batched journals interoperate. *)
  let batched_results lanes =
    let n = Array.length events in
    let merged = Array.make n None in
    (match journal with
    | Some j ->
      for k = 0 to n - 1 do
        match Journal.find j (key k) with
        | Some data ->
          (match decode k data with
          | Some r ->
            merged.(k) <- Some r;
            Hwpat_obs.Metrics.incr metrics "supervise.skipped"
          | None -> ())
        | None -> ()
      done
    | None -> ());
    let pending =
      List.filter (fun k -> merged.(k) = None) (List.init n Fun.id)
    in
    let batches =
      let rec chunk = function
        | [] -> []
        | l ->
          let rec take i acc = function
            | x :: rest when i < lanes -> take (i + 1) (x :: acc) rest
            | rest -> (List.rev acc, rest)
          in
          let b, rest = take 0 [] l in
          Array.of_list b :: chunk rest
      in
      Array.of_list (chunk pending)
    in
    let run_batch batch ctx bi =
      let faults = batches.(bi) in
      let nb = Array.length faults in
      Trace.span trace (Printf.sprintf "batch#%d" bi)
        ~args:[ ("faults", Trace.Int nb) ]
      @@ fun () ->
      Simbatch.reset batch;
      (* The harness is plane-batched end to end: the monitor, source
         and sink each touch every lane with a handful of word
         operations per cycle, so the per-cycle cost no longer scales
         with the lane count. Only fault injection stays per-lane
         (each lane runs a different fault), through a lane view. *)
      let bmon = Monitor.Batch.create batch in
      ignore (Monitor.Batch.add_auto bmon);
      let injectors =
        Array.init nb (fun l ->
            let inj = Fault.create (Cyclesim.lane_view batch l) in
            let e = events.(faults.(l)) in
            Fault.schedule inj ~at:e.Fault.at e.Fault.fault;
            inj)
      in
      let source = Video_source.Batch.create batch frame in
      let sink = Vga_sink.Batch.create batch () in
      let err_node =
        if has_output circuit "err" then
          Some
            ( Simbatch.out_node batch "err",
              Signal.width (Circuit.find_output circuit "err") )
        else None
      in
      let cycles = Array.make nb 0 in
      let active = Array.make nb true in
      let err = Array.make nb false in
      let active_mask =
        ref (if nb >= 64 then -1L else Int64.sub (Int64.shift_left 1L nb) 1L)
      in
      let n_active = ref nb in
      let gcycle = ref 0 in
      while !n_active > 0 do
        Supervise.check ctx;
        Video_source.Batch.drive source ~mask:!active_mask;
        Vga_sink.Batch.drive sink ~mask:!active_mask;
        for l = 0 to nb - 1 do
          if active.(l) then Fault.step injectors.(l)
        done;
        Simbatch.cycle batch;
        Monitor.Batch.sample bmon ~active:!active_mask ~cycle:!gcycle;
        Video_source.Batch.observe source ~mask:!active_mask;
        Vga_sink.Batch.observe sink ~mask:!active_mask;
        incr gcycle;
        for l = 0 to nb - 1 do
          if active.(l) then begin
            cycles.(l) <- cycles.(l) + 1;
            if
              not (Vga_sink.Batch.count sink ~lane:l < expected
                  && cycles.(l) < budget)
            then begin
              active.(l) <- false;
              active_mask :=
                Int64.logand !active_mask
                  (Int64.lognot (Int64.shift_left 1L l));
              decr n_active;
              err.(l) <-
                (match err_node with
                | Some (i, w) ->
                  let any = ref 0L in
                  for b = 0 to w - 1 do
                    any :=
                      Int64.logor !any (Simbatch.read_plane batch i ~plane:b)
                  done;
                  Int64.logand (Int64.shift_right_logical !any l) 1L = 1L
                | None -> false)
            end
          end
        done
      done;
      Array.init nb (fun l ->
          let k = faults.(l) in
          let r =
            classify ~reference ~expected
              ~collected:(Vga_sink.Batch.collected sink ~lane:l)
              ~cycles:cycles.(l)
              ~first_violation:(Monitor.Batch.first_violation bmon ~lane:l)
              ~err_flag:err.(l) ~description:descriptions.(k)
          in
          (match journal with
          | Some j -> Journal.record j ~key:(key k) (encode r)
          | None -> ());
          (k, r))
    in
    let outcomes =
      Supervise.run_shards_local ?jobs ?policy ~metrics ?cancel
        ~key:(fun bi ->
          let faults = batches.(bi) in
          Printf.sprintf "batch:%d-%d" faults.(0)
            faults.(Array.length faults - 1))
        ~local:(fun () -> Cyclesim.instantiate_batched ~lanes plan)
        (Array.length batches) run_batch
    in
    Array.iteri
      (fun bi -> function
        | Supervise.Done pairs ->
          Array.iter (fun (k, r) -> merged.(k) <- Some r) pairs
        | Supervise.Unfinished { reason; attempts = _ } ->
          Array.iter
            (fun k -> merged.(k) <- Some (unfinished k reason))
            batches.(bi))
      outcomes;
    Array.to_list (Array.map Option.get merged)
  in
  let results =
    match lanes with
    | None -> scalar_results ()
    | Some lanes -> batched_results lanes
  in
  List.iter
    (fun r ->
      Hwpat_obs.Metrics.incr metrics
        ("faultsim." ^ String.lowercase_ascii (outcome_name r.outcome)))
    results;
  Hwpat_obs.Metrics.incr metrics ~by:baseline_cycles "faultsim.baseline_cycles";
  { design; seed; monitors; baseline_cycles; results }

(* --- Named designs (CLI / bench entry points) ---------------------------- *)

let designs =
  [
    ( "saa2vga_fifo_pattern",
      fun () -> Saa2vga.build ~substrate:Saa2vga.Fifo ~style:Saa2vga.Pattern () );
    ( "saa2vga_fifo_custom",
      fun () -> Saa2vga.build ~substrate:Saa2vga.Fifo ~style:Saa2vga.Custom () );
    ( "saa2vga_sram_pattern",
      fun () -> Saa2vga.build ~substrate:Saa2vga.Sram ~style:Saa2vga.Pattern () );
    ( "saa2vga_sram_custom",
      fun () -> Saa2vga.build ~substrate:Saa2vga.Sram ~style:Saa2vga.Custom () );
    ( "saa2vga_sram_shared_pattern",
      fun () ->
        Saa2vga.build ~substrate:Saa2vga.Sram_shared ~style:Saa2vga.Pattern () );
    ("saa2vga_sram_protected", fun () -> Saa2vga.build_protected ());
    ( "saa2vga_sram_protected_faulty",
      fun () -> Saa2vga.build_protected ~faulty:true () );
  ]

let design_names = List.map fst designs

let find_design name =
  match List.assoc_opt name designs with
  | Some build -> build
  | None ->
    invalid_arg
      (Printf.sprintf "Faultsim: unknown design %s (known: %s)" name
         (String.concat ", " design_names))

(* --- Reporting ----------------------------------------------------------- *)

let render summary =
  let buf = Buffer.create 1024 in
  let emit fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  emit "fault campaign: %s (seed %d)\n" summary.design summary.seed;
  emit "  monitors attached: %d, fault-free run: %d cycles\n" summary.monitors
    summary.baseline_cycles;
  emit "  faults: %d   detected: %d   masked: %d   silent: %d   unfinished: %d\n"
    (List.length summary.results)
    (count summary Detected) (count summary Masked) (count summary Silent)
    (count summary Unfinished);
  emit "  detection coverage (non-masked faults): %.0f%%\n"
    (100.0 *. coverage summary);
  List.iter
    (fun r ->
      emit "  %-10s %-44s %s\n" (outcome_name r.outcome) r.description
        (match r.detail with
        | Some d -> "[" ^ d ^ "]"
        | None when r.err_flag -> "[err output high]"
        | None when not r.completed -> "[hung]"
        | None -> ""))
    summary.results;
  Buffer.contents buf

(* Machine-readable summary. Only structurally stable data is emitted
   (descriptions label unnamed signals positionally, never by uid), so
   two campaigns with the same parameters — serial or sharded, in the
   same process or not — render to identical bytes. *)
let summary_to_json summary =
  let buf = Buffer.create 1024 in
  let emit fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  emit "{\n  \"design\": %S,\n  \"seed\": %d,\n  \"monitors\": %d,\n"
    summary.design summary.seed summary.monitors;
  emit "  \"baseline_cycles\": %d,\n" summary.baseline_cycles;
  emit "  \"faults\": %d,\n  \"detected\": %d,\n  \"masked\": %d,\n"
    (List.length summary.results)
    (count summary Detected) (count summary Masked);
  emit "  \"silent\": %d,\n  \"unfinished\": %d,\n  \"coverage\": %.4f,\n"
    (count summary Silent) (count summary Unfinished) (coverage summary);
  emit "  \"results\": [\n";
  List.iteri
    (fun i r ->
      emit
        "    {\"fault\": %S, \"outcome\": %S, \"detail\": %s, \
         \"err_flag\": %b, \"completed\": %b, \"cycles\": %d}%s\n"
        r.description (outcome_name r.outcome)
        (match r.detail with
        | Some d -> Printf.sprintf "%S" d
        | None -> "null")
        r.err_flag r.completed r.cycles
        (if i = List.length summary.results - 1 then "" else ","))
    summary.results;
  emit "  ]\n}\n";
  Buffer.contents buf

(* FF/LUT/fmax cost of the generated protection hardware, through the
   same estimation pipeline as Table 3. *)
let protection_overhead ?board () =
  Hwpat_synthesis.Resource_report.compare_pair ?board
    ~name:"saa2vga protection"
    (Saa2vga.build ~substrate:Saa2vga.Sram ~style:Saa2vga.Pattern ())
    (Saa2vga.build_protected ())
