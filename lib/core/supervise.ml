(* Supervised shard execution: bounded retry, watchdog deadlines and
   checkpoint/resume, layered over [Parallel.run_partial].

   The error taxonomy is deliberately binary.  [Transient] (and its
   watchdog cousin [Shard_timeout]) means "this shard might succeed if
   tried again" — a wall-clock overrun, a flaky external condition.
   Those are retried up to [policy.retries] times with deterministic
   backoff, and if they never succeed the shard is reported as an
   explicit [Unfinished] result rather than poisoning the campaign.
   Everything else is fatal: a fatal exception escapes the shard
   closure, [Parallel] stops claiming further shards, and the original
   exception (lowest shard index, original backtrace) is re-raised —
   the campaign fails fast exactly as the serial run would.

   Retries are deterministic in the only sense that matters here: a
   retried shard re-runs the same pure closure, so a retry that
   succeeds yields the same value a first-try success yields, and the
   merged summary is unchanged.  The backoff sleeps shape wall-clock
   behaviour only.

   Timeouts are polled cooperatively: shard closures call [check ctx]
   at convenient points (per simulated cycle, per solver conflict) and
   the context samples the clock every [poll_mask + 1] calls — cheap
   enough for inner loops, coarse enough that a deadline trips within
   a few dozen iterations of expiring. *)

exception Transient of string
exception Shard_timeout of float

let is_transient = function
  | Transient _ | Shard_timeout _ -> true
  | _ -> false

type policy = { retries : int; backoff_s : float; shard_timeout_s : float }

let default_policy = { retries = 1; backoff_s = 0.05; shard_timeout_s = 0.0 }

type ctx = {
  attempt : int;
  deadline : float; (* absolute; infinity when no timeout *)
  timeout_s : float;
  mutable polls : int;
}

let poll_mask = 31 (* sample the clock every 32 checks *)

let make_ctx ~policy ~attempt =
  let deadline =
    if policy.shard_timeout_s > 0.0 then
      Unix.gettimeofday () +. policy.shard_timeout_s
    else infinity
  in
  { attempt; deadline; timeout_s = policy.shard_timeout_s; polls = 0 }

let attempt ctx = ctx.attempt

let check ctx =
  if ctx.deadline < infinity then begin
    ctx.polls <- ctx.polls + 1;
    if
      ctx.polls land poll_mask = 0
      && Unix.gettimeofday () > ctx.deadline
    then raise (Shard_timeout ctx.timeout_s)
  end

let remaining ctx =
  if ctx.deadline = infinity then infinity
  else Float.max 0.0 (ctx.deadline -. Unix.gettimeofday ())

type 'a outcome = Done of 'a | Unfinished of { reason : string; attempts : int }

let outcome_value = function Done v -> Some v | Unfinished _ -> None

let unfinished_reason = function
  | Done _ -> None
  | Unfinished u -> Some u.reason

let reason_of_exn = function
  | Transient msg -> Printf.sprintf "transient: %s" msg
  | Shard_timeout s -> Printf.sprintf "timeout after %.3gs" s
  | e -> Printexc.to_string e (* unreachable for non-transient *)

let run_shards_local ?jobs ?(policy = default_policy)
    ?(metrics = Hwpat_obs.Metrics.null) ?cancel ?journal ~key ?encode ?decode
    ~local n f =
  let incr_m name = Hwpat_obs.Metrics.incr metrics ("supervise." ^ name) in
  let from_journal k =
    match (journal, decode) with
    | Some j, Some dec -> (
      match Journal.find j (key k) with
      | Some data -> dec k data
      | None -> None)
    | _ -> None
  in
  let to_journal k v =
    match (journal, encode) with
    | Some j, Some enc -> Journal.record j ~key:(key k) (enc v)
    | _ -> ()
  in
  let run_shard w k =
    match from_journal k with
    | Some v ->
      incr_m "skipped";
      Done v
    | None ->
      let rec go attempt =
        let ctx = make_ctx ~policy ~attempt in
        match f w ctx k with
        | v ->
          to_journal k v;
          Done v
        | exception e when is_transient e ->
          (match e with
          | Shard_timeout _ -> incr_m "timeouts"
          | _ -> ());
          if attempt <= policy.retries then begin
            incr_m "retries";
            if policy.backoff_s > 0.0 then
              (* exponential, deterministic in the attempt number *)
              Unix.sleepf
                (policy.backoff_s *. float_of_int (1 lsl (attempt - 1)));
            go (attempt + 1)
          end
          else begin
            incr_m "unfinished";
            Unfinished { reason = reason_of_exn e; attempts = attempt }
          end
      in
      go 1
  in
  let partial = Parallel.run_partial_local ?jobs ?cancel ~local n run_shard in
  Array.map
    (function
      | Some outcome -> outcome
      | None ->
        (* claim skipped: cancellation fired before this shard ran *)
        incr_m "cancelled";
        Unfinished { reason = "cancelled"; attempts = 0 })
    partial

(* One supervised unit of work in the calling domain — the per-request
   discipline of the serve daemon: same retry/deadline taxonomy as a
   campaign shard, no sharding, no journal. *)
let run_one ?(policy = default_policy) ?(metrics = Hwpat_obs.Metrics.null) f =
  let incr_m name = Hwpat_obs.Metrics.incr metrics ("supervise." ^ name) in
  let rec go attempt =
    let ctx = make_ctx ~policy ~attempt in
    match f ctx with
    | v -> Done v
    | exception e when is_transient e ->
      (match e with
      | Shard_timeout _ -> incr_m "timeouts"
      | _ -> ());
      if attempt <= policy.retries then begin
        incr_m "retries";
        if policy.backoff_s > 0.0 then
          Unix.sleepf (policy.backoff_s *. float_of_int (1 lsl (attempt - 1)));
        go (attempt + 1)
      end
      else begin
        incr_m "unfinished";
        Unfinished { reason = reason_of_exn e; attempts = attempt }
      end
  in
  go 1

let run_shards ?jobs ?policy ?metrics ?cancel ?journal ~key ?encode ?decode n
    f =
  run_shards_local ?jobs ?policy ?metrics ?cancel ?journal ~key ?encode
    ?decode
    ~local:(fun () -> ())
    n
    (fun () ctx k -> f ctx k)
