open Hwpat_rtl
open Hwpat_video

(** The named video-system designs shared by the CLI and the serve
    daemon: name/style selection, synthetic stimulus frames, and the
    software reference each design is checked against.

    Extracted from [bin/hwpat.ml] so the daemon dispatches the same
    designs (with the same error wording) as the command line instead
    of duplicating the catalog.  All lookup functions raise [Failure]
    with a one-line "unknown X (valid: ...)" diagnostic on a bad
    name — the CLI turns that into exit 2, the server into an
    [invalid-params] error response. *)

type flavor = Copy | Blur | Sobel
(** What the design computes, i.e. which software reference applies
    and how the output frame's dimensions relate to the input's. *)

val names : string list
(** ["saa2vga-fifo"; "saa2vga-sram"; "blur"; "sobel"]. *)

val styles : string list
(** ["pattern"; "custom"]. *)

val patterns : string list
(** ["gradient"; "checker"; "random"; "bars"]. *)

val build :
  design:string -> style:string -> frame_w:int -> frame_h:int ->
  Circuit.t * flavor
(** Build a named design in a named style.  Case-insensitive. *)

val frame : pattern:string -> width:int -> height:int -> Frame.t
(** A synthetic 8-bit test frame. *)

val engine_of_string : string -> Cyclesim.engine
(** ["compiled"] or ["reference"]. *)

val output_shape : flavor -> width:int -> height:int -> int * int
(** Output frame dimensions for an input of the given size (windowed
    designs shrink by the window border). *)

val reference : flavor -> Frame.t -> Frame.t
(** The software reference output for an input frame. *)
