(** Supervised shard execution: bounded retry, watchdog deadlines and
    checkpoint/resume, layered over {!Parallel.run_partial}.

    The error taxonomy is binary.  {!Transient} and {!Shard_timeout}
    mean "might succeed if tried again": the shard is retried up to
    [policy.retries] times with deterministic exponential backoff, and
    if it never succeeds it is reported as an explicit [Unfinished]
    outcome instead of poisoning the campaign.  Every other exception
    is fatal — it escapes to {!Parallel}, outstanding shard claims are
    cancelled fail-fast, and the exception the serial run would have
    raised (lowest shard index, original backtrace) is re-raised.

    With a {!Journal}, each completed shard is appended to the
    checkpoint as it finishes, and shards whose key is already
    journaled are skipped on resume — decoded back to the recorded
    value so a resumed run's summary is byte-identical to an
    uninterrupted one.  Only [Done] results are journaled: unfinished
    and cancelled shards re-run on resume. *)

exception Transient of string
(** A shard failure worth retrying.  Raise this from shard closures
    for conditions that are not the design's fault. *)

exception Shard_timeout of float
(** Raised by {!check} when the shard's wall-clock deadline passes;
    the payload is the configured timeout in seconds.  Treated as
    transient (retried, then [Unfinished]). *)

val is_transient : exn -> bool

type policy = {
  retries : int;  (** retry a transient failure this many times *)
  backoff_s : float;
      (** first retry delay; doubles per attempt. 0 disables sleeping *)
  shard_timeout_s : float;
      (** per-attempt wall-clock deadline; 0 disables the watchdog *)
}

val default_policy : policy
(** [{ retries = 1; backoff_s = 0.05; shard_timeout_s = 0.0 }] *)

(** {1 Shard context} *)

type ctx

val check : ctx -> unit
(** Cooperative watchdog poll: call from the shard's inner loop (per
    simulated cycle, per solver conflict).  Samples the clock every
    32nd call; raises {!Shard_timeout} once the attempt's deadline has
    passed.  Free when no timeout is configured. *)

val attempt : ctx -> int
(** 1 on the first try, incremented per retry. *)

val remaining : ctx -> float
(** Seconds left before this attempt's deadline trips (clamped at 0);
    [infinity] when no timeout is configured.  Handlers that launch a
    supervised sub-campaign use it to pass the enclosing request's
    remaining budget down as the sub-campaign's shard timeout. *)

(** {1 Outcomes} *)

type 'a outcome =
  | Done of 'a
  | Unfinished of { reason : string; attempts : int }
      (** retries exhausted ([attempts >= 1]) or the shard was never
          run because cancellation fired first ([attempts = 0],
          [reason = "cancelled"]) *)

val outcome_value : 'a outcome -> 'a option
val unfinished_reason : 'a outcome -> string option

val run_one :
  ?policy:policy ->
  ?metrics:Hwpat_obs.Metrics.t ->
  (ctx -> 'a) ->
  'a outcome
(** One supervised unit of work, evaluated in the calling domain: the
    same transient-retry / watchdog-deadline taxonomy as a campaign
    shard, without sharding or journaling.  The serve daemon wraps
    every request execution in [run_one] so a per-request deadline
    surfaces as an explicit [Unfinished] outcome (mapped to a
    [deadline] error response) instead of a hung worker.  Fatal
    exceptions propagate to the caller. *)

val run_shards :
  ?jobs:int ->
  ?policy:policy ->
  ?metrics:Hwpat_obs.Metrics.t ->
  ?cancel:Parallel.token ->
  ?journal:Journal.t ->
  key:(int -> string) ->
  ?encode:('a -> string) ->
  ?decode:(int -> string -> 'a option) ->
  int ->
  (ctx -> int -> 'a) ->
  'a outcome array
(** [run_shards n f] evaluates [f ctx 0 .. f ctx (n-1)] under
    supervision, sharded across [jobs] domains by {!Parallel}.

    [key k] must be a uid-independent description of shard [k], stable
    across processes and job counts — it is both the journal key and
    the config-independent identity used to skip completed work on
    resume.  [encode]/[decode] serialise shard results for the
    journal; a [decode] returning [None] (corrupt or stale payload)
    simply re-runs the shard.  Skipping, journaling and retries are
    counted on [metrics] under [supervise.skipped], [.retries],
    [.timeouts], [.unfinished] and [.cancelled]. *)

val run_shards_local :
  ?jobs:int ->
  ?policy:policy ->
  ?metrics:Hwpat_obs.Metrics.t ->
  ?cancel:Parallel.token ->
  ?journal:Journal.t ->
  key:(int -> string) ->
  ?encode:('a -> string) ->
  ?decode:(int -> string -> 'a option) ->
  local:(unit -> 'w) ->
  int ->
  ('w -> ctx -> int -> 'a) ->
  'a outcome array
(** {!run_shards} with per-worker state, via
    {!Parallel.run_partial_local}: each worker domain calls [local ()]
    once, lazily before its first shard, and the value is passed to
    every shard (and every retry) that worker executes.  Campaigns use
    it to instantiate one simulator per domain from a shared compiled
    plan and reuse it across shards; the shard closure must leave no
    state behind that could change a later shard's result (reset the
    simulator first), because results must stay bit-identical to the
    serial run. *)
