open Hwpat_rtl
open Hwpat_rtl.Signal
open Hwpat_containers
open Hwpat_synthesis

type point = {
  container : string;
  target : string;
  elem_width : int;
  depth : int;
  wait_states : int;
}

let default_points =
  let base container target =
    List.concat_map
      (fun elem_width ->
        List.map
          (fun depth -> { container; target; elem_width; depth; wait_states = 1 })
          [ 64; 512 ])
      [ 8; 16 ]
  in
  base "queue" "fifo" @ base "queue" "bram"
  @ List.concat_map
      (fun ws ->
        [ { container = "queue"; target = "sram"; elem_width = 8; depth = 512; wait_states = ws } ])
      [ 0; 1; 2 ]
  @ base "stack" "lifo" @ base "stack" "bram"
  @ [ { container = "stack"; target = "sram"; elem_width = 8; depth = 512; wait_states = 1 } ]
  @ [
      { container = "vector"; target = "bram"; elem_width = 8; depth = 256; wait_states = 1 };
      { container = "vector"; target = "sram"; elem_width = 8; depth = 256; wait_states = 1 };
      { container = "assoc"; target = "bram"; elem_width = 8; depth = 64; wait_states = 1 };
      { container = "assoc"; target = "sram"; elem_width = 8; depth = 64; wait_states = 1 };
    ]

let build_seq point driver =
  match (point.container, point.target) with
  | "queue", "fifo" ->
    Queue_c.over_fifo ~depth:point.depth ~width:point.elem_width driver
  | "queue", "bram" ->
    Queue_c.over_bram ~depth:point.depth ~width:point.elem_width driver
  | "queue", "sram" ->
    Queue_c.over_sram ~depth:point.depth ~width:point.elem_width
      ~wait_states:point.wait_states driver
  | "stack", "lifo" ->
    Stack_c.over_lifo ~depth:point.depth ~width:point.elem_width driver
  | "stack", "bram" ->
    Stack_c.over_bram ~depth:point.depth ~width:point.elem_width driver
  | "stack", "sram" ->
    Stack_c.over_sram ~depth:point.depth ~width:point.elem_width
      ~wait_states:point.wait_states driver
  | c, t -> invalid_arg (Printf.sprintf "Characterize: unknown point %s/%s" c t)

(* Vectors and associative arrays have their own functional
   interfaces; wrap each in a harness with uniform port names so one
   measurement loop drives all of them. *)
let vector_harness point =
  let driver =
    {
      Container_intf.read_req = input "get_req" 1;
      write_req = input "put_req" 1;
      addr = input "addr" (Util.address_bits point.depth);
      write_data = input "put_data" point.elem_width;
    }
  in
  let v =
    match point.target with
    | "bram" -> Vector_c.over_bram ~length:point.depth ~width:point.elem_width driver
    | "sram" ->
      Vector_c.over_sram ~length:point.depth ~width:point.elem_width
        ~wait_states:point.wait_states driver
    | t -> invalid_arg ("Characterize: vector over " ^ t)
  in
  Circuit.create_exn
    ~name:(Printf.sprintf "vector_%s_%dx%d" point.target point.elem_width point.depth)
    [
      ("get_ack", v.Container_intf.read_ack);
      ("get_data", v.Container_intf.read_data);
      ("put_ack", v.Container_intf.write_ack);
    ]

let assoc_harness point =
  let kw = Util.address_bits point.depth + 2 in
  let driver =
    {
      Container_intf.lookup_req = input "get_req" 1;
      insert_req = input "put_req" 1;
      delete_req = gnd;
      key = input "key" kw;
      value_in = input "put_data" point.elem_width;
    }
  in
  let a =
    match point.target with
    | "bram" ->
      Assoc_array.over_bram ~slots:point.depth ~key_width:kw
        ~value_width:point.elem_width driver
    | "sram" ->
      Assoc_array.over_sram ~slots:point.depth ~key_width:kw
        ~value_width:point.elem_width ~wait_states:point.wait_states driver
    | t -> invalid_arg ("Characterize: assoc over " ^ t)
  in
  Circuit.create_exn
    ~name:(Printf.sprintf "assoc_%s_%dx%d" point.target point.elem_width point.depth)
    [
      ("get_ack", a.Container_intf.lookup_ack);
      ("get_data", a.Container_intf.lookup_data);
      ("put_ack", a.Container_intf.insert_ack);
    ]

let harness point =
  if point.container = "vector" then vector_harness point
  else if point.container = "assoc" then assoc_harness point
  else
  let driver =
    {
      Container_intf.get_req = input "get_req" 1;
      put_req = input "put_req" 1;
      put_data = input "put_data" point.elem_width;
    }
  in
  let c = build_seq point driver in
  Circuit.create_exn
    ~name:(Printf.sprintf "%s_%s_%dx%d" point.container point.target
             point.elem_width point.depth)
    [
      ("get_ack", c.Container_intf.get_ack);
      ("get_data", c.Container_intf.get_data);
      ("put_ack", c.Container_intf.put_ack);
      ("empty", c.Container_intf.empty);
      ("full", c.Container_intf.full);
    ]

(* Run a put/get ping-pong workload and report (cycles per access,
   power monitor, whether an ack guard tripped).

   Each handshake is bounded by a 200-cycle guard. A tripped guard
   means the container never acknowledged — the point deadlocks under
   this workload — so the measurement is aborted and reported as timed
   out rather than folded into a bogus cycles-per-access figure (the
   old behaviour silently ranked such points in the design space). *)
let measure ?(check = fun () -> ()) sim =
  let set name v = Cyclesim.in_port sim name := Bits.of_int ~width:1 v in
  let setd v w = Cyclesim.in_port sim "put_data" := Bits.of_int ~width:w v in
  let out name = Bits.to_bool !(Cyclesim.out_port sim name) in
  let monitor = Power.monitor sim in
  let width = Bits.width !(Cyclesim.in_port sim "put_data") in
  let cycles = ref 0 in
  let step () =
    check ();
    Cyclesim.cycle sim;
    Power.sample monitor;
    incr cycles
  in
  let set_opt name v =
    match Cyclesim.in_port sim name with
    | r -> r := Bits.of_int ~width:(Bits.width !r) v
    | exception Invalid_argument _ -> ()
  in
  set "get_req" 0;
  set "put_req" 0;
  setd 0 width;
  step ();
  let timed_out = ref false in
  let await_ack name =
    let guard = ref 0 in
    step ();
    while (not (out name)) && !guard < 200 do
      step ();
      incr guard
    done;
    if not (out name) then timed_out := true
  in
  let accesses = 32 in
  (try
     for i = 1 to accesses do
       set_opt "addr" (i land 15);
       set_opt "key" (i land 15);
       set "put_req" 1;
       setd (i land 255) width;
       await_ack "put_ack";
       if !timed_out then raise Exit;
       set "put_req" 0;
       step ();
       set "get_req" 1;
       await_ack "get_ack";
       if !timed_out then raise Exit;
       set "get_req" 0;
       step ()
     done
   with Exit -> ());
  let per_access =
    if !timed_out then infinity
    else float_of_int !cycles /. float_of_int (2 * accesses)
  in
  (per_access, monitor, !timed_out)

let point_label point =
  Printf.sprintf "%s/%s/%dx%d%s" point.container point.target point.elem_width
    point.depth
    (if point.target = "sram" then Printf.sprintf "/ws%d" point.wait_states
     else "")

(* Differential validation of the bit-parallel batched engine: one
   batched simulation carries [lanes] independent random stimulus
   streams over the point's measurement harness, and the naive
   tree-walking interpreter replays every lane as the oracle — every
   output port must agree on every cycle.  This is deliberately *not*
   part of [measure]: the characterisation numbers come from the
   scalar engine as before, and this check exists to pin the batched
   engine to the trusted baseline on realistic container circuits
   (memories, handshakes, wait states), not just random netlists. *)
let selfcheck ?(lanes = Hwpat_rtl.Simbatch.lane_bits) ?(cycles = 32)
    ?(seed = 1) point =
  let circuit = harness point in
  let rng = Random.State.make [| 0xba7c4; seed |] in
  (* Uniform random vector of any width, 16 bits at a time. *)
  let random_bits ~width =
    let rec chunks w acc =
      if w = 0 then Bits.concat_msb acc
      else
        let k = min w 16 in
        chunks (w - k) (Bits.of_int ~width:k (Random.State.int rng (1 lsl k)) :: acc)
    in
    chunks width []
  in
  let plan = Cyclesim.plan circuit in
  let batch = Cyclesim.instantiate_batched ~lanes plan in
  let views = Array.init lanes (Cyclesim.lane_view batch) in
  let oracles =
    Array.init lanes (fun _ -> Cyclesim.create ~engine:Cyclesim.Reference circuit)
  in
  let inputs = List.map (fun (n, s) -> (n, Signal.width s)) (Circuit.inputs circuit) in
  let outputs = List.map fst (Circuit.outputs circuit) in
  let checks = ref 0 in
  for cyc = 1 to cycles do
    Array.iteri
      (fun l view ->
        List.iter
          (fun (name, w) ->
            let v = random_bits ~width:w in
            Cyclesim.drive view name v;
            Cyclesim.drive oracles.(l) name v)
          inputs)
      views;
    (* One clock for the whole batch (any lane view advances all
       lanes), one per scalar oracle. *)
    Cyclesim.cycle views.(0);
    Array.iter Cyclesim.cycle oracles;
    Array.iteri
      (fun l view ->
        List.iter
          (fun name ->
            let got = !(Cyclesim.out_port view name) in
            let want = !(Cyclesim.out_port oracles.(l) name) in
            incr checks;
            if not (Bits.equal got want) then
              failwith
                (Printf.sprintf
                   "Characterize.selfcheck: %s lane %d cycle %d port %s: \
                    batched %s, naive %s"
                   (point_label point) l cyc name (Bits.to_string got)
                   (Bits.to_string want)))
          outputs)
      views
  done;
  !checks

let characterize ?check point =
  let circuit = harness point in
  let resources = Techmap.estimate circuit in
  let timing = Timing.analyze circuit in
  let sim = Cyclesim.create circuit in
  let access_cycles, monitor, timed_out = measure ?check sim in
  let power = Power.estimate ~clock_mhz:timing.Timing.fmax_mhz monitor in
  {
    Design_space.label = point_label point;
    container = point.container;
    target = point.target;
    elem_width = point.elem_width;
    depth = point.depth;
    luts = resources.Techmap.luts;
    ffs = resources.Techmap.ffs;
    brams = resources.Techmap.brams;
    access_cycles;
    fmax_mhz = timing.Timing.fmax_mhz;
    power_mw = (if timed_out then infinity else power.Power.total_mw);
    measured = not timed_out;
  }

(* A point the supervisor gave up on (watchdog timeout, cancellation):
   reported as an unmeasurable candidate so the sweep output still
   lists every point, and ranking excludes it exactly like an
   ack-guard trip. *)
let unfinished_candidate point =
  {
    Design_space.label = point_label point;
    container = point.container;
    target = point.target;
    elem_width = point.elem_width;
    depth = point.depth;
    luts = 0;
    ffs = 0;
    brams = 0;
    access_cycles = infinity;
    fmax_mhz = 0.0;
    power_mw = infinity;
    measured = false;
  }

(* Journal payload for a measured point (identity lives in the shard
   key, which is the point label).  Floats round-trip through their
   IEEE bits so resumed sweeps reproduce the original bytes. *)
let encode_candidate (c : Design_space.candidate) =
  Printf.sprintf "%d %d %d %Lx %Lx %Lx %b" c.Design_space.luts c.ffs c.brams
    (Int64.bits_of_float c.access_cycles)
    (Int64.bits_of_float c.fmax_mhz)
    (Int64.bits_of_float c.power_mw)
    c.measured

let decode_candidate point data =
  try
    Scanf.sscanf data "%d %d %d %Lx %Lx %Lx %B"
      (fun luts ffs brams access fmax power measured ->
        Some
          {
            (unfinished_candidate point) with
            Design_space.luts;
            ffs;
            brams;
            access_cycles = Int64.float_of_bits access;
            fmax_mhz = Int64.float_of_bits fmax;
            power_mw = Int64.float_of_bits power;
            measured;
          })
  with Scanf.Scan_failure _ | Failure _ | End_of_file -> None

(* Each sweep point is an independent build+simulate job; shard them
   across domains with work-stealing rebalancing the uneven per-point
   costs. Every point is a *distinct* circuit configuration, so unlike
   a fault campaign there is no plan to share between shards: each
   shard elaborates and compiles its own point exactly once. Results
   are merged in point order, so the candidate list is identical
   whatever [jobs] is — and, via the checkpoint journal, whether or
   not the sweep was interrupted and resumed. *)
let sweep ?(trace = Hwpat_obs.Trace.null) ?(metrics = Hwpat_obs.Metrics.null)
    ?jobs ?policy ?cancel ?checkpoint ?(resume = false)
    ?(points = default_points) () =
  let module Trace = Hwpat_obs.Trace in
  Trace.span trace "sweep"
    ~args:[ ("points", Trace.Int (List.length points)) ]
  @@ fun () ->
  let pts = Array.of_list points in
  let labels = Array.map point_label pts in
  let config =
    "sweep " ^ String.concat "," (Array.to_list labels)
  in
  let journal =
    Option.map (fun path -> Journal.start ~path ~config ~resume) checkpoint
  in
  Fun.protect
    ~finally:(fun () -> Option.iter Journal.close journal)
  @@ fun () ->
  let outcomes =
    Supervise.run_shards ?jobs ?policy ~metrics ?cancel ?journal
      ~key:(fun i -> labels.(i))
      ~encode:encode_candidate
      ~decode:(fun i data -> decode_candidate pts.(i) data)
      (Array.length pts)
      (fun ctx i ->
        (* Per-point spans land on the worker domain's lane: straggler
           points are visible in the trace. *)
        Trace.span trace
          (Printf.sprintf "point:%s" labels.(i))
          (fun () ->
            characterize ~check:(fun () -> Supervise.check ctx) pts.(i)))
  in
  Array.to_list
    (Array.mapi
       (fun i -> function
         | Supervise.Done c -> c
         | Supervise.Unfinished _ -> unfinished_candidate pts.(i))
       outcomes)

let region_report ~constraints candidates =
  let unmeasurable = Design_space.unmeasurable candidates in
  let feasible = Design_space.feasible constraints candidates in
  let region = Design_space.region_of_interest constraints candidates in
  let header =
    Printf.sprintf "%d candidates, %d feasible, %d on the Pareto front:"
      (List.length candidates) (List.length feasible) (List.length region)
  in
  let unmeasured_note =
    match unmeasurable with
    | [] -> []
    | u ->
      [
        Printf.sprintf
          "%d point(s) unmeasurable (ack guard tripped or unfinished), \
           excluded from \
           ranking: %s"
          (List.length u)
          (String.concat ", "
             (List.map (fun c -> c.Design_space.label) u));
      ]
  in
  String.concat "\n" ((header :: unmeasured_note) @ [ Design_space.to_table region ])
