(** The proof campaign behind [hwpat prove] and [bench §prove]: a
    fixed battery of formal obligations over the paper designs, the
    optimizer, and the pruned container variants, shardable across
    domains with {!Parallel}.

    Four obligation families:
    - [monitor]: {!Hwpat_formal.Bmc.check_auto} on the paper designs —
      the protocol-monitor invariants (handshake, FIFO occupancy)
      proven to a bound instead of spot-checked in simulation;
    - [equiv]: {!Hwpat_formal.Equiv.check} of each paper design
      against its optimised form;
    - [optimize]: {!Hwpat_formal.Equiv.check} of random netlists
      ({!Hwpat_formal.Netgen}) against their optimised forms;
    - [prune]: {!Hwpat_formal.Equiv.check} of pruned container
      elaborations ({!Hwpat_containers.Elaborate}) against the full
      model on the retained interface.

    The smoke battery (CI) runs the three paper-design monitor proofs
    at a reduced bound plus ten optimizer-equivalence seeds; the full
    battery raises the bound to 20+, uses forty seeds, and adds the
    paper-design equivalence and pruned-pair obligations. *)

type result = {
  name : string;
  kind : string;  (** "monitor" | "equiv" | "optimize" | "prune" *)
  ok : bool;
  unknown : bool;
      (** the obligation was not decided — solver budget exhausted,
          or supervision gave up on it (never counted as proved
          {e or} refuted) *)
  status : string;  (** e.g. "proved", "holds(20)", "counterexample" *)
  seconds : float;
}

val run :
  ?trace:Hwpat_obs.Trace.t ->
  ?metrics:Hwpat_obs.Metrics.t ->
  ?jobs:int ->
  ?policy:Supervise.policy ->
  ?cancel:Parallel.token ->
  ?checkpoint:string ->
  ?resume:bool ->
  ?budget:Hwpat_formal.Solver.budget ->
  ?smoke:bool ->
  ?portfolio:int ->
  unit ->
  result list
(** Runs the battery ([smoke] defaults to false) across [jobs] domains
    (default {!Parallel.default_jobs}). Proof failures are reported in
    the result list, not raised; results are in a fixed deterministic
    order independent of [jobs].

    Execution is supervised ({!Supervise.run_shards}): [policy] sets
    per-obligation watchdog deadlines and retry counts (timeouts
    surface as [unknown] results with an [unfinished: ...] status,
    never as hangs); [cancel] stops further obligations from starting
    (the skipped ones also report [unfinished: cancelled]).
    [checkpoint] journals each completed obligation to the given path;
    with [resume] obligations already journaled under a matching
    battery configuration are skipped and their recorded results —
    originally measured seconds included — are reported as-is.

    [budget] caps each SAT solve inside every obligation
    (deterministically — operation counts, not wall clock); tripped
    obligations score [unknown] with an [unknown: ...] status.

    [portfolio] (2–4, see {!Hwpat_formal.Portfolio}) races each
    obligation under that many solver configurations through an
    escalating ladder of operation-count budgets, first definitive
    answer wins with ties broken by (round, racer index).  Because
    the round budgets are operation counts, the winning racer — and
    therefore every reported status — is identical across runs and
    job counts.  With a [budget] the ladder is capped at exactly that
    budget, so an obligation no racer can decide reports the same
    budget-exhausted [unknown: ...] status the single-solver path
    would.  Racer wins are counted under
    [prove.portfolio.win.<label>].

    [trace] (default disabled) records one span per obligation on its
    worker domain's lane, with the {!Hwpat_formal.Equiv} /
    {!Hwpat_formal.Bmc} phase spans nested underneath; [metrics]
    (default disabled) accumulates the SAT solver counters ([solver.*]),
    supervision counters ([supervise.*]) and proved/failed/unknown
    totals ([prove.*]). *)

val all_ok : result list -> bool
val to_json : jobs:int -> smoke:bool -> result list -> string
val summary : result list -> string
(** One line per obligation plus a final proved/failed count. *)
