(* Bounded model checking of monitor-style safety properties. The
   properties are compiled to single-bit "bad" signals on the circuit's
   own graph, the circuit is closed again with those bits as extra
   outputs, and the result is unrolled frame by frame from the power-on
   state. *)

open Hwpat_rtl
open Hwpat_rtl.Signal

type property = { name : string; bad : Signal.t }

type violation = {
  property : string;
  at : int;
  trace : (string * Bits.t) list list;
}

type result = Holds of int | Violation of violation | Unknown of string

(* --- Property derivation (mirror of Monitor.add_auto) -------------------- *)

let signals_by_name circuit =
  let tbl = Hashtbl.create 97 in
  let note n s = if not (Hashtbl.mem tbl n) then Hashtbl.replace tbl n s in
  List.iter
    (fun s -> List.iter (fun n -> note n s) (Signal.names s))
    (Circuit.signals circuit);
  List.iter (fun (n, s) -> note n s) (Circuit.inputs circuit);
  tbl

let strip_suffix ~suffix name =
  let nl = String.length name and sl = String.length suffix in
  if nl > sl && String.sub name (nl - sl) sl = suffix then
    Some (String.sub name 0 (nl - sl))
  else None

(* Monitor peeks are [Bits.to_bool]: any bit set. *)
let as_bool s = if width s = 1 then s else reduce_or s

(* The req/ack convention (Monitor.add_handshake): ack never fires
   without a request pending; a request is held until its ack. The
   previous-cycle values the runtime monitor keeps in refs become
   history registers here. *)
let handshake_properties base ~req ~ack =
  let r = as_bool req and a = as_bool ack in
  let prev_r = reg r and prev_a = reg a in
  [
    { name = base ^ ".ack"; bad = a &: ~:r };
    { name = base ^ ".req"; bad = prev_r &: ~:prev_a &: ~:r };
  ]

(* Occupancy invariants (Monitor.add_fifo): the empty flag tracks
   count=0, full and empty never hold together, and the count steps by
   at most one per cycle. The step check compares at width+1 bits so it
   matches the monitor's exact integer arithmetic, and a "started" flag
   reproduces the monitor skipping its first sample. *)
let fifo_properties base ?full ~count ~empty () =
  let w = width count in
  let cw = uresize count (w + 1) in
  let prev = reg count in
  let pw = uresize prev (w + 1) in
  let one1 = of_int ~width:(w + 1) 1 in
  let started = reg vdd in
  let e = as_bool empty in
  [ { name = base ^ ".empty"; bad = e ^: (count ==: zero w) } ]
  @ (match full with
    | Some f -> [ { name = base ^ ".full"; bad = as_bool f &: e } ]
    | None -> [])
  @ [
      {
        name = base ^ ".count";
        bad = started &: ((cw >: pw +: one1) |: (pw >: cw +: one1));
      };
    ]

let derive_properties circuit =
  let tbl = signals_by_name circuit in
  let names = Hashtbl.fold (fun n _ acc -> n :: acc) tbl [] in
  let names = List.sort_uniq compare names in
  let handshakes =
    List.concat_map
      (fun n ->
        match strip_suffix ~suffix:"_req" n with
        | Some base -> (
          match Hashtbl.find_opt tbl (base ^ "_ack") with
          | Some ack ->
            handshake_properties base ~req:(Hashtbl.find tbl n) ~ack
          | None -> [])
        | None -> [])
      names
  in
  let fifos =
    List.concat_map
      (fun n ->
        match strip_suffix ~suffix:"_count" n with
        | Some base -> (
          match Hashtbl.find_opt tbl (base ^ "_empty") with
          | Some empty ->
            fifo_properties base
              ?full:(Hashtbl.find_opt tbl (base ^ "_full"))
              ~count:(Hashtbl.find tbl n) ~empty ()
          | None -> [])
        | None -> [])
      names
  in
  handshakes @ fifos

(* --- Checking ------------------------------------------------------------ *)

let bad_output_name p = "__formal_bad__" ^ p.name

(* Replay the trace on a plain Cyclesim of the extended circuit: the
   bad output must actually rise at the reported cycle, or the
   encoding and the simulator disagree. *)
let confirm_on_sim extended ~bad_name ~at trace =
  let sim = Cyclesim.create extended in
  let seen = ref false in
  List.iteri
    (fun k assignment ->
      if k <= at then begin
        List.iter (fun (n, v) -> Cyclesim.drive sim n v) assignment;
        Cyclesim.cycle sim;
        if k = at then seen := Bits.to_bool !(Cyclesim.out_port sim bad_name)
      end)
    trace;
  if not !seen then
    failwith
      (Printf.sprintf
         "Bmc: SAT violation of %s does not replay in Cyclesim — the \
          encoding disagrees with the simulator"
         bad_name)

let check ?(trace = Hwpat_obs.Trace.null) ?(metrics = Hwpat_obs.Metrics.null)
    ?(budget = Solver.no_budget) ?interrupt ?(depth = 20) ?(strash = true)
    ?solver_config circuit properties =
  List.iter
    (fun p ->
      if Signal.width p.bad <> 1 then
        invalid_arg (Printf.sprintf "Bmc: property %s is not 1 bit" p.name))
    properties;
  if properties = [] then Holds depth
  else begin
    let extended =
      Circuit.create_exn
        ~name:(Circuit.name circuit ^ "_props")
        (Circuit.outputs circuit
        @ List.map (fun p -> (bad_output_name p, p.bad)) properties)
    in
    let elts = Blast.state_elements extended in
    let solver = Solver.create ?config:solver_config () in
    let e = Engine.make ~strash solver in
    (* Stats merge exactly once per solver instance: a check the
       [interrupt] hook abandons (a supervision watchdog about to
       retry the whole call) must not record its partial counts — the
       retry records its own complete run, and both together would
       double against a single uninterrupted run. *)
    let interrupted = ref false in
    let interrupt =
      match interrupt with
      | None -> None
      | Some hook ->
        Some
          (fun () ->
            try hook ()
            with exn ->
              interrupted := true;
              raise exn)
    in
    let search () =
    let inputs = List.map (fun (n, s) -> (n, Signal.width s)) (Circuit.inputs extended) in
    let st = ref (Array.map (fun elt -> e.Engine.constant (Blast.elt_init elt)) elts) in
    let frames = ref [] in
    let result = ref None in
    let k = ref 0 in
    while !result = None && !k < depth do
      let vecs =
        List.map (fun (n, w) -> (n, e.Engine.fresh_vector w)) inputs
      in
      let outputs, next =
        e.Engine.frame extended
          ~inputs:(fun n -> List.assoc n vecs)
          ~state:(fun i -> !st.(i))
      in
      st := next;
      frames := vecs :: !frames;
      let bads =
        List.map
          (fun p -> (p, (List.assoc (bad_output_name p) outputs).(0)))
          properties
      in
      let act = Solver.new_var solver in
      Solver.add_clause solver (-act :: List.map (fun (_, l) -> e.Engine.sl l) bads);
      (match Solver.solve ~assumptions:[ act ] ~budget ?interrupt solver with
      | Solver.Unknown ->
        (* Budget exhausted at this frame: report how far the search
           got — frames 0 .. k-1 are genuinely violation-free. *)
        result :=
          Some
            (Unknown
               (Printf.sprintf
                  "solver budget exhausted at frame %d (no violation in \
                   frames 0..%d)"
                  !k (!k - 1)))
      | Solver.Sat ->
        let violated, _ =
          List.find (fun (_, l) -> e.Engine.lit_value l) bads
        in
        let trace =
          List.rev_map
            (fun vecs ->
              List.map (fun (n, v) -> (n, e.Engine.model_bits v)) vecs)
            !frames
        in
        confirm_on_sim extended ~bad_name:(bad_output_name violated) ~at:!k
          trace;
        result := Some (Violation { property = violated.name; at = !k; trace })
      | Solver.Unsat -> ());
      incr k
    done;
    match !result with Some r -> r | None -> Holds depth
    in
    Fun.protect
      ~finally:(fun () ->
        if not !interrupted then Solver_obs.record metrics [ solver ])
      (fun () ->
        Hwpat_obs.Trace.span trace "bmc"
          ~args:
            [
              ("depth", Hwpat_obs.Trace.Int depth);
              ("properties", Hwpat_obs.Trace.Int (List.length properties));
            ]
          search)
  end

let check_auto ?trace ?metrics ?budget ?interrupt ?depth ?strash ?solver_config
    circuit =
  match derive_properties circuit with
  | [] ->
    invalid_arg
      (Printf.sprintf
         "Bmc.check_auto: %s has no monitored signal pairs (nothing to prove)"
         (Circuit.name circuit))
  | properties -> (
    match
      check ?trace ?metrics ?budget ?interrupt ?depth ?strash ?solver_config
        circuit properties
    with
    | Holds d -> Holds d
    | Unknown _ as r -> r
    | Violation v ->
      (* Cross-check the property compiler itself: the runtime monitor
         must flag the same trace on the original circuit. *)
      let sim = Cyclesim.create circuit in
      let monitor = Monitor.create sim in
      ignore (Monitor.add_auto monitor);
      List.iteri
        (fun k assignment ->
          if k <= v.at then begin
            List.iter
              (fun (n, value) ->
                if List.mem_assoc n (Circuit.inputs circuit) then
                  Cyclesim.drive sim n value)
              assignment;
            Cyclesim.cycle sim;
            Monitor.sample monitor
          end)
        v.trace;
      if Monitor.ok monitor then
        failwith
          (Printf.sprintf
             "Bmc: violation of %s not confirmed by the runtime monitor"
             v.property);
      Violation v)
