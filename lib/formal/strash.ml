(* Structural hashing: a hash-consed AIG-style netlist form (AND/XOR/MUX
   nodes over complemented edges) built before Tseitin blasting.
   Structurally identical subgraphs — including dissolved pattern-wrapper
   logic appearing on both sides of an equivalence miter, and repeated
   address decoders inside one frame — become literally the same node,
   and each node is emitted to CNF at most once per solver, however many
   times it occurs. *)

open Hwpat_rtl

type lit = int
(* lit = 2*node + phase; phase 1 is complemented. Node 0 is constant
   true, so [lit_true = 0] and [lit_false = 1]. *)

let lit_true = 0
let lit_false = 1
let snot l = l lxor 1
let node_of l = l lsr 1
let phase_of l = l land 1

(* Node kinds, packed as ints in [kind]. *)
let k_const = 0
let k_leaf = 1 (* payload in [fa]: a positive solver literal *)
let k_and = 2
let k_xor = 3 (* children stored phase-stripped; phase on the output *)
let k_mux = 4 (* fa = select, fb = then, fc = else *)

type t = {
  solver : Solver.t;
  mutable kind : int array;
  mutable fa : int array;
  mutable fb : int array;
  mutable fc : int array;
  mutable cnf : int array; (* node -> solver lit, 0 = not yet emitted *)
  mutable n : int;
  table : (int * int * int * int, int) Hashtbl.t; (* structural hash *)
  leaves : (int, int) Hashtbl.t; (* solver var -> node *)
}

let solver t = t.solver

let create solver =
  let cap = 1024 in
  let t =
    {
      solver;
      kind = Array.make cap k_const;
      fa = Array.make cap 0;
      fb = Array.make cap 0;
      fc = Array.make cap 0;
      cnf = Array.make cap 0;
      n = 1 (* node 0 = constant true *);
      table = Hashtbl.create 4096;
      leaves = Hashtbl.create 256;
    }
  in
  t.cnf.(0) <- Solver.true_lit solver;
  t

let grow t =
  let cap = 2 * Array.length t.kind in
  let extend a fill =
    let b = Array.make cap fill in
    Array.blit a 0 b 0 t.n;
    b
  in
  t.kind <- extend t.kind k_const;
  t.fa <- extend t.fa 0;
  t.fb <- extend t.fb 0;
  t.fc <- extend t.fc 0;
  t.cnf <- extend t.cnf 0

let new_node t kind a b c =
  if t.n = Array.length t.kind then grow t;
  let id = t.n in
  t.n <- t.n + 1;
  t.kind.(id) <- kind;
  t.fa.(id) <- a;
  t.fb.(id) <- b;
  t.fc.(id) <- c;
  id

(* Hash-consed node creation: one node per distinct (kind, children). *)
let hashed t kind a b c =
  let key = (kind, a, b, c) in
  match Hashtbl.find_opt t.table key with
  | Some id -> 2 * id
  | None ->
    let id = new_node t kind a b c in
    Hashtbl.add t.table key id;
    2 * id

let of_solver_lit t sl =
  if sl = Solver.true_lit t.solver then lit_true
  else if sl = -Solver.true_lit t.solver then lit_false
  else begin
    let v = abs sl in
    let id =
      match Hashtbl.find_opt t.leaves v with
      | Some id -> id
      | None ->
        let id = new_node t k_leaf v 0 0 in
        Hashtbl.add t.leaves v id;
        t.cnf.(id) <- v;
        id
    in
    if sl > 0 then 2 * id else (2 * id) + 1
  end

let fresh t = of_solver_lit t (Solver.new_var t.solver)
let fresh_vector t w = Array.init w (fun _ -> fresh t)

let constant t b =
  ignore t;
  Array.init (Bits.width b) (fun i -> if Bits.bit b i then lit_true else lit_false)

(* --- AND with constant propagation and two-level rewriting --------------- *)

(* Is [l] a plain (uncomplemented) AND node?  Its children, if so. *)
let as_and t l =
  if phase_of l = 0 && t.kind.(node_of l) = k_and then
    Some (t.fa.(node_of l), t.fb.(node_of l))
  else None

(* Is [l] a complemented AND (an OR of the complements)? *)
let as_nand t l =
  if phase_of l = 1 && t.kind.(node_of l) = k_and then
    Some (t.fa.(node_of l), t.fb.(node_of l))
  else None

let rec sand t a b =
  if a = lit_false || b = lit_false then lit_false
  else if a = lit_true then b
  else if b = lit_true then a
  else if a = b then a
  else if a = snot b then lit_false
  else begin
    (* Two-level rewriting (the classic strash rules): look one level
       into AND-shaped operands for contradictions, absorptions and
       substitutions before creating a node. *)
    let rewritten =
      match (as_and t a, as_and t b) with
      | Some (x, y), _ when b = x || b = y -> Some a (* (xy)·x = xy *)
      | Some (x, y), _ when b = snot x || b = snot y ->
        Some lit_false (* (xy)·¬x = 0 *)
      | _, Some (x, y) when a = x || a = y -> Some b
      | _, Some (x, y) when a = snot x || a = snot y -> Some lit_false
      | Some (x, y), Some (u, v)
        when x = snot u || x = snot v || y = snot u || y = snot v ->
        Some lit_false (* (xy)·(¬x z) = 0 *)
      | _ -> (
        match (as_nand t a, as_nand t b) with
        | Some (x, y), _ when b = x -> Some (sand t b (snot y))
          (* ¬(xy)·x = x·¬y *)
        | Some (x, y), _ when b = y -> Some (sand t b (snot x))
        | _, Some (x, y) when a = x -> Some (sand t a (snot y))
        | _, Some (x, y) when a = y -> Some (sand t a (snot x))
        | Some (x, y), _ when b = snot x || b = snot y ->
          Some b (* ¬(xy)·¬x = ¬x *)
        | _, Some (x, y) when a = snot x || a = snot y -> Some a
        | _ -> None)
    in
    match rewritten with
    | Some l -> l
    | None ->
      let a, b = if a <= b then (a, b) else (b, a) in
      hashed t k_and a b 0
  end

let sor t a b = snot (sand t (snot a) (snot b))

let sxor t a b =
  if a = lit_false then b
  else if b = lit_false then a
  else if a = lit_true then snot b
  else if b = lit_true then snot a
  else if a = b then lit_false
  else if a = snot b then lit_true
  else begin
    (* Canonical form: children phase-stripped and ordered, the parity
       of the stripped phases carried on the output edge. *)
    let ph = phase_of a lxor phase_of b in
    let a = a land lnot 1 and b = b land lnot 1 in
    let a, b = if a <= b then (a, b) else (b, a) in
    hashed t k_xor a b 0 lxor ph
  end

(* [c ? d1 : d0] *)
let rec smux t c d1 d0 =
  if c = lit_true then d1
  else if c = lit_false then d0
  else if d1 = d0 then d1
  else if phase_of c = 1 then smux t (snot c) d0 d1
  else if d1 = lit_true && d0 = lit_false then c
  else if d1 = lit_false && d0 = lit_true then snot c
  else if d1 = snot d0 then sxor t c d0
  else if d1 = lit_false then sand t (snot c) d0
  else if d1 = lit_true then sor t c d0
  else if d0 = lit_false then sand t c d1
  else if d0 = lit_true then sor t (snot c) d1
  else if d1 = c then sor t c d0 (* c ? c : d0 *)
  else if d1 = snot c then sand t (snot c) d0
  else if d0 = c then sand t c d1 (* c ? d1 : c *)
  else if d0 = snot c then sor t (snot c) d1
  else if phase_of d1 = 1 then snot (smux t c (snot d1) (snot d0))
  else hashed t k_mux c d1 d0

let and_list t = function
  | [] -> lit_true
  | l :: rest -> List.fold_left (sand t) l rest

let or_list t = function
  | [] -> lit_false
  | l :: rest -> List.fold_left (sor t) l rest

(* --- CNF emission -------------------------------------------------------- *)

(* Emit the Tseitin clauses for a node cone, once per node per manager
   lifetime; shared nodes cost one emission however many contexts use
   them.  Iterative so deeply unrolled frames cannot overflow the
   stack. *)
let emit t root =
  let stack = ref [ root ] in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | id :: rest ->
      if t.cnf.(id) <> 0 then stack := rest
      else begin
        let deps =
          if t.kind.(id) = k_mux then
            [ node_of t.fa.(id); node_of t.fb.(id); node_of t.fc.(id) ]
          else [ node_of t.fa.(id); node_of t.fb.(id) ]
        in
        let pending = List.filter (fun d -> t.cnf.(d) = 0) deps in
        if pending <> [] then stack := pending @ !stack
        else begin
          stack := rest;
          let s = t.solver in
          let sl l =
            let base = t.cnf.(node_of l) in
            if phase_of l = 1 then -base else base
          in
          let o = Solver.new_var s in
          t.cnf.(id) <- o;
          if t.kind.(id) = k_and then begin
            let a = sl t.fa.(id) and b = sl t.fb.(id) in
            Solver.add_clause s [ -o; a ];
            Solver.add_clause s [ -o; b ];
            Solver.add_clause s [ o; -a; -b ]
          end
          else if t.kind.(id) = k_xor then begin
            let a = sl t.fa.(id) and b = sl t.fb.(id) in
            Solver.add_clause s [ -o; a; b ];
            Solver.add_clause s [ -o; -a; -b ];
            Solver.add_clause s [ o; a; -b ];
            Solver.add_clause s [ o; -a; b ]
          end
          else begin
            let c = sl t.fa.(id) and d1 = sl t.fb.(id) and d0 = sl t.fc.(id) in
            Solver.add_clause s [ -c; -d1; o ];
            Solver.add_clause s [ -c; d1; -o ];
            Solver.add_clause s [ c; -d0; o ];
            Solver.add_clause s [ c; d0; -o ]
          end
        end
      end
  done

let to_solver_lit t l =
  let id = node_of l in
  if t.cnf.(id) = 0 then emit t id;
  let base = t.cnf.(id) in
  if phase_of l = 1 then -base else base

(* --- Model evaluation ---------------------------------------------------- *)

(* Value of a literal under the solver's current model.  Emitted nodes
   read their CNF variable; unemitted nodes (shared structure that no
   constraint happened to touch) are evaluated structurally, so callers
   may probe any vector after a Sat answer. *)
let value t l =
  let memo = Hashtbl.create 64 in
  let rec node id =
    if t.cnf.(id) <> 0 then Solver.value t.solver t.cnf.(id)
    else
      match Hashtbl.find_opt memo id with
      | Some v -> v
      | None ->
        let v =
          if t.kind.(id) = k_and then lit_v t.fa.(id) && lit_v t.fb.(id)
          else if t.kind.(id) = k_xor then lit_v t.fa.(id) <> lit_v t.fb.(id)
          else if lit_v t.fa.(id) then lit_v t.fb.(id)
          else lit_v t.fc.(id)
        in
        Hashtbl.add memo id v;
        v
  and lit_v l = node (node_of l) <> (phase_of l = 1) in
  lit_v l

let model_bits t v =
  let w = Array.length v in
  Bits.of_string (String.init w (fun i -> if value t v.(w - 1 - i) then '1' else '0'))

(* --- Vector helpers (mirrors of the Blast ones, over AIG lits) ----------- *)

let lits_equal t a b =
  if Array.length a <> Array.length b then
    invalid_arg "Strash.lits_equal: width mismatch";
  and_list t (Array.to_list (Array.map2 (fun x y -> snot (sxor t x y)) a b))

let bool_of_vec t v = or_list t (Array.to_list v)

let eq_const t v k =
  let w = Array.length v in
  if w < Sys.int_size - 1 && k lsr w <> 0 then lit_false
  else
    and_list t
      (List.init w (fun i -> if (k lsr i) land 1 = 1 then v.(i) else snot v.(i)))

let full_adder t a b cin =
  let ab = sxor t a b in
  let sum = sxor t ab cin in
  let carry = sor t (sand t a b) (sand t cin ab) in
  (sum, carry)

let add_vec t ?cin a b =
  let w = Array.length a in
  let carry = ref (match cin with Some c -> c | None -> lit_false) in
  Array.init w (fun i ->
      let sum, c = full_adder t a.(i) b.(i) !carry in
      carry := c;
      sum)

let sub_vec t a b = add_vec t ~cin:lit_true a (Array.map snot b)

let mul_vec t a b =
  let w = Array.length a in
  let acc = ref (Array.make w lit_false) in
  for i = 0 to w - 1 do
    let pp =
      Array.init w (fun j -> if j < i then lit_false else sand t a.(j - i) b.(i))
    in
    acc := add_vec t !acc pp
  done;
  !acc

let lt_vec t a b =
  let w = Array.length a in
  let lt = ref lit_false in
  for i = 0 to w - 1 do
    let bits_differ = sxor t a.(i) b.(i) in
    lt := smux t bits_differ (sand t (snot a.(i)) b.(i)) !lt
  done;
  !lt

let mux_cases t sel cases =
  match List.rev cases with
  | [] -> invalid_arg "Strash: empty mux"
  | last :: rev_rest ->
    let n = List.length cases in
    let result = ref last in
    List.iteri
      (fun j case ->
        let i = n - 2 - j in
        let hit = eq_const t sel i in
        result := Array.map2 (fun d1 d0 -> smux t hit d1 d0) case !result)
      rev_rest;
    !result

(* --- Frame --------------------------------------------------------------- *)

type frame = {
  value : Signal.t -> lit array;
  outputs : (string * lit array) list;
  next : lit array array;
}

(* One time-frame of a circuit over AIG literals — the settle-then-edge
   semantics of [Blast.frame], but hash-consed: a subgraph occurring on
   both sides of a miter (or repeated inside one side) is encoded
   once. *)
let frame t circuit ~inputs ~state =
  let elts = Blast.state_elements circuit in
  let pos = Hashtbl.create 97 in
  Array.iteri (fun i e -> Hashtbl.replace pos (Blast.elt_key e) i) elts;
  let state_of e = state (Hashtbl.find pos (Blast.elt_key e)) in
  let values : (int, lit array) Hashtbl.t = Hashtbl.create 997 in
  let get s =
    match Hashtbl.find_opt values (Signal.uid s) with
    | Some v -> v
    | None ->
      invalid_arg
        (Printf.sprintf "Strash.frame: signal #%d evaluated out of order"
           (Signal.uid s))
  in
  let read_mem m addr =
    let width = Signal.memory_width m in
    let result = ref (constant t (Bits.zero width)) in
    for i = Signal.memory_size m - 1 downto 0 do
      let word = state_of (Blast.Mem_word (m, i)) in
      let hit = eq_const t addr i in
      result := Array.map2 (fun d1 d0 -> smux t hit d1 d0) word !result
    done;
    !result
  in
  let encode s =
    match Signal.prim s with
    | Signal.Const b -> constant t b
    | Signal.Input name -> (
      let v = inputs name in
      if Array.length v <> Signal.width s then
        invalid_arg
          (Printf.sprintf "Strash.frame: input %s width mismatch" name);
      v)
    | Signal.Op2 (op, a, b) -> (
      let a = get a and b = get b in
      match op with
      | Signal.Add -> add_vec t a b
      | Signal.Sub -> sub_vec t a b
      | Signal.Mul -> mul_vec t a b
      | Signal.And -> Array.map2 (sand t) a b
      | Signal.Or -> Array.map2 (sor t) a b
      | Signal.Xor -> Array.map2 (sxor t) a b
      | Signal.Eq -> [| lits_equal t a b |]
      | Signal.Lt -> [| lt_vec t a b |])
    | Signal.Not a -> Array.map snot (get a)
    | Signal.Concat parts -> Array.concat (List.rev_map get parts)
    | Signal.Select { src; high; low } -> Array.sub (get src) low (high - low + 1)
    | Signal.Mux { select; cases } -> mux_cases t (get select) (List.map get cases)
    | Signal.Reg _ -> state_of (Blast.Reg_state s)
    | Signal.Mem_read_sync _ -> state_of (Blast.Read_state s)
    | Signal.Mem_read_async { memory; addr } -> read_mem memory (get addr)
    | Signal.Wire { driver = Some d } -> get d
    | Signal.Wire { driver = None } -> invalid_arg "Strash.frame: undriven wire"
  in
  List.iter
    (fun s -> Hashtbl.replace values (Signal.uid s) (encode s))
    (Circuit.signals circuit);
  let control opt ~default =
    match opt with Some c -> bool_of_vec t (get c) | None -> default
  in
  let next =
    Array.map
      (fun e ->
        let cur = state_of e in
        match e with
        | Blast.Reg_state s -> (
          match Signal.prim s with
          | Signal.Reg { d; enable; clear; clear_to; init = _ } ->
            let dl = get d in
            let en = control enable ~default:lit_true in
            let cl = control clear ~default:lit_false in
            let ct = constant t clear_to in
            Array.init (Array.length cur) (fun i ->
                smux t cl ct.(i) (smux t en dl.(i) cur.(i)))
          | _ -> assert false)
        | Blast.Read_state s -> (
          match Signal.prim s with
          | Signal.Mem_read_sync { memory; addr; enable } ->
            let en = control enable ~default:lit_true in
            let now = read_mem memory (get addr) in
            Array.init (Array.length cur) (fun i ->
                smux t en now.(i) cur.(i))
          | _ -> assert false)
        | Blast.Mem_word (m, w) ->
          List.fold_left
            (fun acc (en, addr, data) ->
              let hit =
                sand t (bool_of_vec t (get en)) (eq_const t (get addr) w)
              in
              Array.map2 (fun d a -> smux t hit d a) (get data) acc)
            cur
            (Signal.memory_write_ports m))
      elts
  in
  let outputs =
    List.map (fun (name, s) -> (name, get s)) (Circuit.outputs circuit)
  in
  { value = get; outputs; next }

let num_nodes t = t.n

(* --- Netlist-to-netlist rewrite ------------------------------------------ *)

(* Rebuild a circuit as its hash-consed bit-level form: every state
   element becomes 1-bit registers fed by the strashed next-state
   functions (memories flatten into their words), ports keep their
   names and widths.  The result is an ordinary circuit — simulatable
   by Cyclesim and provable by Equiv — whose cycle behaviour on the
   ports is identical to the original's; the differential test suite
   pins that down. *)
let rewrite circuit =
  let t = create (Solver.create ()) in
  let elts = Blast.state_elements circuit in
  (* Leaf literal -> the Signal that models it. *)
  let leaf_signal : (int, Signal.t) Hashtbl.t = Hashtbl.create 256 in
  let bind_leaves lits signals =
    Array.iteri (fun i l -> Hashtbl.replace leaf_signal (node_of l) signals.(i)) lits
  in
  let input_vecs =
    List.map
      (fun (name, s) ->
        let w = Signal.width s in
        let port = Signal.input name w in
        let lits = fresh_vector t w in
        bind_leaves lits (Array.init w (fun i -> Signal.bit port i));
        (name, lits))
      (Circuit.inputs circuit)
  in
  let state_vecs =
    Array.map
      (fun e ->
        let w = Blast.elt_width e in
        let lits = fresh_vector t w in
        let wires = Array.init w (fun _ -> Signal.wire 1) in
        bind_leaves lits wires;
        (lits, wires))
      elts
  in
  let f =
    frame t circuit
      ~inputs:(fun n -> List.assoc n input_vecs)
      ~state:(fun i -> fst state_vecs.(i))
  in
  (* AIG -> Signal graph, memoised per literal so complemented edges
     share their [~:] node too. *)
  let memo : (int, Signal.t) Hashtbl.t = Hashtbl.create 997 in
  let rec signal_of l =
    match Hashtbl.find_opt memo l with
    | Some s -> s
    | None ->
      let s =
        if l = lit_true then Signal.vdd
        else if l = lit_false then Signal.gnd
        else if phase_of l = 1 then Signal.( ~: ) (signal_of (snot l))
        else begin
          let id = node_of l in
          if t.kind.(id) = k_leaf then Hashtbl.find leaf_signal id
          else if t.kind.(id) = k_and then
            Signal.( &: ) (signal_of t.fa.(id)) (signal_of t.fb.(id))
          else if t.kind.(id) = k_xor then
            Signal.( ^: ) (signal_of t.fa.(id)) (signal_of t.fb.(id))
          else
            Signal.mux2 (signal_of t.fa.(id)) (signal_of t.fb.(id))
              (signal_of t.fc.(id))
        end
      in
      Hashtbl.add memo l s;
      s
  in
  Array.iteri
    (fun i e ->
      let _, wires = state_vecs.(i) in
      let init = Blast.elt_init e in
      Array.iteri
        (fun bit w ->
          let d = signal_of f.next.(i).(bit) in
          let init = Bits.of_string (if Bits.bit init bit then "1" else "0") in
          Signal.( <== ) w (Signal.reg ~init d))
        wires)
    elts;
  let outputs =
    List.map
      (fun (name, lits) ->
        let w = Array.length lits in
        ( name,
          Signal.concat_msb
            (List.init w (fun i -> signal_of lits.(w - 1 - i))) ))
      f.outputs
  in
  (* Constant propagation can sever an input (or a whole register cone)
     from every output, and [Circuit.create_exn] infers ports from
     reachability — so anchor one bit of every input port into the
     first output through an always-zero term, keeping the port set
     identical to the original's without disturbing any value. *)
  let outputs =
    match (outputs, List.map (fun (n, _) -> List.assoc n input_vecs) (Circuit.inputs circuit)) with
    | [], _ | _, [] -> outputs
    | (oname, o) :: rest, in_lits ->
      let touch =
        List.fold_left
          (fun acc lits -> Signal.( &: ) acc (Hashtbl.find leaf_signal (node_of lits.(0))))
          Signal.vdd in_lits
      in
      let anchor = Signal.( &: ) touch Signal.gnd in
      let w = Signal.width o in
      let pad =
        if w = 1 then anchor
        else Signal.concat_msb [ Signal.zero (w - 1); anchor ]
      in
      (oname, Signal.( ^: ) o pad) :: rest
  in
  Circuit.create_exn ~name:(Circuit.name circuit ^ "_strash") outputs
