open Hwpat_rtl

(** Deterministic random netlist generation.

    The seeded builder behind the random-circuit property tests, shared
    with the [hwpat prove] campaign so the CLI proves equivalence over
    exactly the circuits the test suite fuzzes. *)

val build_random_circuit : seed:int -> Circuit.t * (string * int) list
(** A pool-grown random circuit (mixed widths, all operators, muxes,
    selects/concats, registers with optional enable/clear) and its
    input ports as [(name, width)] — including ports a later
    optimisation pass may remove as dead, so stimulus streams can stay
    identical across variants. Deterministic in [seed]. *)
