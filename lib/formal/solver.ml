(* CDCL SAT solver: two-watched-literal propagation, first-UIP clause
   learning, VSIDS-style activity order, phase saving, geometric
   restarts. Clauses are int arrays whose first two slots are the
   watched literals; a reason clause always has its implied literal in
   slot 0. *)

type lit = int
type result = Sat | Unsat | Unknown

type budget = { max_conflicts : int; max_propagations : int }

let no_budget = { max_conflicts = 0; max_propagations = 0 }

(* Search-strategy knobs. Every field is deterministic (operation
   counts and exact float arithmetic, no wall clock), so two solvers
   with the same config replay identically — the portfolio racer
   contract. *)
type config = {
  restart_base : int;
  restart_factor : float;
  decay : float;
  init_phase : bool;
}

let default_config =
  { restart_base = 100; restart_factor = 1.5; decay = 0.95; init_phase = false }

type clause = int array

(* Growable clause list (a watch list). *)
module Cvec = struct
  type t = { mutable data : clause array; mutable size : int }

  let create () = { data = [||]; size = 0 }

  let push v c =
    if v.size = Array.length v.data then begin
      let d = Array.make (max 4 (2 * v.size)) c in
      Array.blit v.data 0 d 0 v.size;
      v.data <- d
    end;
    v.data.(v.size) <- c;
    v.size <- v.size + 1
end

type t = {
  config : config;
  mutable scopes : int list; (* activation vars of open scopes, innermost first *)
  mutable n_vars : int;
  mutable cap : int; (* current capacity of the per-var arrays *)
  mutable assigns : int array; (* var -> 0 unknown / 1 true / -1 false *)
  mutable level : int array;
  mutable reason : clause option array;
  mutable activity : float array;
  mutable polarity : bool array; (* saved phase *)
  mutable seen : bool array; (* analyze scratch *)
  mutable heap : int array; (* binary max-heap of vars by activity *)
  mutable heap_size : int;
  mutable heap_pos : int array; (* var -> heap slot, -1 if absent *)
  mutable watches : Cvec.t array; (* indexed by literal *)
  mutable trail : int array;
  mutable trail_size : int;
  mutable trail_lim : int array; (* trail size at the start of each level *)
  mutable n_levels : int;
  mutable qhead : int;
  mutable var_inc : float;
  mutable n_clauses : int;
  mutable conflicts_total : int;
  mutable decisions_total : int;
  mutable propagations_total : int;
  mutable restarts_total : int;
  mutable unknowns_total : int;
  mutable learned_total : int;
  mutable learned_literals : int;
  learned_size_buckets : int array;
      (* log2 buckets: index 0 for sizes <= 0 (never hit by learned
         clauses, which have >= 1 literal), else floor(log2 n) + 1,
         clamped into the last of [n_size_buckets] — exactly the
         Metrics.bucket_of convention (same bucket count, same clamp),
         kept here without depending on that library so obs histograms
         from the solver and the sim hot paths line up bucket for
         bucket *)
  mutable unsat : bool;
}

let lit_index l = if l > 0 then 2 * l else (2 * -l) + 1

let lit_value s l =
  let v = s.assigns.(abs l) in
  if v = 0 then 0 else if l > 0 then v else -v

(* --- Variable order ------------------------------------------------------ *)

let heap_swap s i j =
  let a = s.heap.(i) and b = s.heap.(j) in
  s.heap.(i) <- b;
  s.heap.(j) <- a;
  s.heap_pos.(b) <- i;
  s.heap_pos.(a) <- j

let rec sift_up s i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if s.activity.(s.heap.(i)) > s.activity.(s.heap.(p)) then begin
      heap_swap s i p;
      sift_up s p
    end
  end

let rec sift_down s i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < s.heap_size && s.activity.(s.heap.(l)) > s.activity.(s.heap.(!best))
  then best := l;
  if r < s.heap_size && s.activity.(s.heap.(r)) > s.activity.(s.heap.(!best))
  then best := r;
  if !best <> i then begin
    heap_swap s i !best;
    sift_down s !best
  end

let heap_insert s v =
  if s.heap_pos.(v) < 0 then begin
    s.heap.(s.heap_size) <- v;
    s.heap_pos.(v) <- s.heap_size;
    s.heap_size <- s.heap_size + 1;
    sift_up s (s.heap_size - 1)
  end

let heap_pop s =
  let v = s.heap.(0) in
  s.heap_size <- s.heap_size - 1;
  s.heap_pos.(v) <- -1;
  if s.heap_size > 0 then begin
    let last = s.heap.(s.heap_size) in
    s.heap.(0) <- last;
    s.heap_pos.(last) <- 0;
    sift_down s 0
  end;
  v

let bump s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then begin
    for u = 1 to s.n_vars do
      s.activity.(u) <- s.activity.(u) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end;
  if s.heap_pos.(v) >= 0 then sift_up s s.heap_pos.(v)

(* --- Setup --------------------------------------------------------------- *)

let grow s =
  let cap = 2 * s.cap in
  let copy_int a = Array.init (cap + 1) (fun i -> if i <= s.cap then a.(i) else 0) in
  s.assigns <- copy_int s.assigns;
  s.level <- copy_int s.level;
  s.heap_pos <-
    Array.init (cap + 1) (fun i -> if i <= s.cap then s.heap_pos.(i) else -1);
  s.reason <-
    Array.init (cap + 1) (fun i -> if i <= s.cap then s.reason.(i) else None);
  s.activity <-
    Array.init (cap + 1) (fun i -> if i <= s.cap then s.activity.(i) else 0.);
  s.polarity <-
    Array.init (cap + 1) (fun i ->
        if i <= s.cap then s.polarity.(i) else s.config.init_phase);
  s.seen <- Array.make (cap + 1) false;
  s.heap <- copy_int s.heap;
  s.trail <- copy_int s.trail;
  s.trail_lim <- Array.init (2 * (cap + 1)) (fun i ->
      if i < Array.length s.trail_lim then s.trail_lim.(i) else 0);
  s.watches <-
    Array.init (2 * (cap + 1)) (fun i ->
        if i < Array.length s.watches then s.watches.(i) else Cvec.create ());
  s.cap <- cap

let new_var s =
  if s.n_vars = s.cap then grow s;
  s.n_vars <- s.n_vars + 1;
  let v = s.n_vars in
  heap_insert s v;
  v

(* --- Assignment and backtracking ---------------------------------------- *)

let enqueue s l reason =
  let v = abs l in
  s.assigns.(v) <- (if l > 0 then 1 else -1);
  s.level.(v) <- s.n_levels;
  s.reason.(v) <- reason;
  s.polarity.(v) <- l > 0;
  s.trail.(s.trail_size) <- l;
  s.trail_size <- s.trail_size + 1

let new_level s =
  s.trail_lim.(s.n_levels) <- s.trail_size;
  s.n_levels <- s.n_levels + 1

let cancel_until s lvl =
  if s.n_levels > lvl then begin
    let bound = s.trail_lim.(lvl) in
    for i = s.trail_size - 1 downto bound do
      let v = abs s.trail.(i) in
      s.assigns.(v) <- 0;
      s.reason.(v) <- None;
      heap_insert s v
    done;
    s.trail_size <- bound;
    s.qhead <- bound;
    s.n_levels <- lvl
  end

(* --- Propagation --------------------------------------------------------- *)

let attach s c =
  Cvec.push s.watches.(lit_index (-c.(0))) c;
  Cvec.push s.watches.(lit_index (-c.(1))) c

let propagate s =
  let confl = ref None in
  while !confl = None && s.qhead < s.trail_size do
    let p = s.trail.(s.qhead) in
    s.qhead <- s.qhead + 1;
    (* Clauses in which [-p], now false, is watched. *)
    let wl = s.watches.(lit_index p) in
    let n = wl.Cvec.size in
    let keep = ref 0 in
    let i = ref 0 in
    while !i < n do
      let c = wl.Cvec.data.(!i) in
      incr i;
      let false_lit = -p in
      if c.(0) = false_lit then begin
        c.(0) <- c.(1);
        c.(1) <- false_lit
      end;
      if lit_value s c.(0) = 1 then begin
        wl.Cvec.data.(!keep) <- c;
        incr keep
      end
      else begin
        let len = Array.length c in
        let k = ref 2 in
        while !k < len && lit_value s c.(!k) = -1 do
          incr k
        done;
        if !k < len then begin
          (* Move the watch to a non-false literal. *)
          c.(1) <- c.(!k);
          c.(!k) <- false_lit;
          Cvec.push s.watches.(lit_index (-c.(1))) c
        end
        else if lit_value s c.(0) = -1 then begin
          (* Conflict: retain the rest of the list untouched. *)
          wl.Cvec.data.(!keep) <- c;
          incr keep;
          while !i < n do
            wl.Cvec.data.(!keep) <- wl.Cvec.data.(!i);
            incr keep;
            incr i
          done;
          confl := Some c
        end
        else begin
          wl.Cvec.data.(!keep) <- c;
          incr keep;
          s.propagations_total <- s.propagations_total + 1;
          enqueue s c.(0) (Some c)
        end
      end
    done;
    wl.Cvec.size <- !keep
  done;
  !confl

(* --- Conflict analysis (first UIP) --------------------------------------- *)

let analyze s confl =
  let seen = s.seen in
  let tail = ref [] in
  let btlevel = ref 0 in
  let counter = ref 0 in
  let p = ref 0 in
  let cur = ref confl in
  let idx = ref (s.trail_size - 1) in
  let stop = ref false in
  while not !stop do
    let c = !cur in
    let start = if !p = 0 then 0 else 1 in
    for i = start to Array.length c - 1 do
      let q = c.(i) in
      let v = abs q in
      if (not seen.(v)) && s.level.(v) > 0 then begin
        seen.(v) <- true;
        bump s v;
        if s.level.(v) >= s.n_levels then incr counter
        else begin
          tail := q :: !tail;
          if s.level.(v) > !btlevel then btlevel := s.level.(v)
        end
      end
    done;
    while not seen.(abs s.trail.(!idx)) do
      decr idx
    done;
    let pl = s.trail.(!idx) in
    decr idx;
    p := pl;
    seen.(abs pl) <- false;
    decr counter;
    if !counter = 0 then stop := true
    else
      cur :=
        (match s.reason.(abs pl) with
        | Some r -> r
        | None -> assert false (* a decision cannot be a non-UIP pivot *))
  done;
  List.iter (fun q -> seen.(abs q) <- false) !tail;
  (Array.of_list (- !p :: !tail), !btlevel)

(* Shared with Hwpat_obs.Metrics.bucket_of (64 buckets, clamp into the
   last): the cross-library agreement is pinned by a regression test in
   test_obs.ml, so a drift on either side fails loudly. *)
let n_size_buckets = 64

let size_bucket n =
  if n <= 0 then 0
  else
    let rec go v k = if v = 0 then k else go (v lsr 1) (k + 1) in
    min (n_size_buckets - 1) (go n 0)

let record s learnt btlevel =
  let len = Array.length learnt in
  s.learned_total <- s.learned_total + 1;
  s.learned_literals <- s.learned_literals + len;
  let b = size_bucket len in
  s.learned_size_buckets.(b) <- s.learned_size_buckets.(b) + 1;
  cancel_until s btlevel;
  if Array.length learnt = 1 then enqueue s learnt.(0) None
  else begin
    (* Slot 1 must hold a literal from the backtrack level so the
       watch invariant survives the next backtrack. *)
    let mi = ref 1 in
    for i = 2 to Array.length learnt - 1 do
      if s.level.(abs learnt.(i)) > s.level.(abs learnt.(!mi)) then mi := i
    done;
    let tmp = learnt.(1) in
    learnt.(1) <- learnt.(!mi);
    learnt.(!mi) <- tmp;
    attach s learnt;
    s.n_clauses <- s.n_clauses + 1;
    enqueue s learnt.(0) (Some learnt)
  end

(* --- Top level ----------------------------------------------------------- *)

let create ?(config = default_config) () =
  let cap = 16 in
  let s =
    {
      config;
      scopes = [];
      n_vars = 0;
      cap;
      assigns = Array.make (cap + 1) 0;
      level = Array.make (cap + 1) 0;
      reason = Array.make (cap + 1) None;
      activity = Array.make (cap + 1) 0.;
      polarity = Array.make (cap + 1) config.init_phase;
      seen = Array.make (cap + 1) false;
      heap = Array.make (cap + 1) 0;
      heap_size = 0;
      heap_pos = Array.make (cap + 1) (-1);
      watches = Array.init (2 * (cap + 1)) (fun _ -> Cvec.create ());
      trail = Array.make (cap + 1) 0;
      trail_size = 0;
      trail_lim = Array.make (2 * (cap + 1)) 0;
      n_levels = 0;
      qhead = 0;
      var_inc = 1.0;
      n_clauses = 0;
      conflicts_total = 0;
      decisions_total = 0;
      propagations_total = 0;
      restarts_total = 0;
      unknowns_total = 0;
      learned_total = 0;
      learned_literals = 0;
      learned_size_buckets = Array.make n_size_buckets 0;
      unsat = false;
    }
  in
  let tl = new_var s in
  enqueue s tl None;
  s

let true_lit _ = 1

let add_clause_unguarded s lits =
  if not s.unsat then begin
    cancel_until s 0;
    let lits = List.sort_uniq compare lits in
    let tautology = List.exists (fun l -> List.mem (-l) lits) lits in
    if not tautology then begin
      if List.exists (fun l -> lit_value s l = 1) lits then ()
      else
        match List.filter (fun l -> lit_value s l <> -1) lits with
        | [] -> s.unsat <- true
        | [ l ] -> (
          enqueue s l None;
          match propagate s with
          | Some _ -> s.unsat <- true
          | None -> ())
        | lits ->
          let c = Array.of_list lits in
          attach s c;
          s.n_clauses <- s.n_clauses + 1
    end
  end

(* A clause added inside an assumption scope is guarded by the
   innermost scope's activation literal: it (and every clause learned
   from it, which inherits the literal through conflict analysis) is
   live only while that scope is open, and dies for good when [pop]
   asserts the negation.  Guarding with just the innermost literal is
   enough because scopes pop in LIFO order. *)
let add_clause s lits =
  add_clause_unguarded s
    (match s.scopes with [] -> lits | act :: _ -> -act :: lits)

let push s =
  let act = new_var s in
  s.scopes <- act :: s.scopes

let pop s =
  match s.scopes with
  | [] -> invalid_arg "Solver.pop: no open scope"
  | act :: rest ->
    s.scopes <- rest;
    add_clause_unguarded s [ -act ]

let scope_depth s = List.length s.scopes

let pick_branch s =
  let rec go () =
    if s.heap_size = 0 then 0
    else
      let v = heap_pop s in
      if s.assigns.(v) = 0 then if s.polarity.(v) then v else -v else go ()
  in
  go ()

let solve ?(assumptions = []) ?(budget = no_budget) ?interrupt s =
  if s.unsat then Unsat
  else begin
    cancel_until s 0;
    (* Open scopes' activation literals are standing assumptions
       (outermost first, so a scope conflict reports deterministically),
       ahead of the caller's own. *)
    let assumps = Array.of_list (List.rev_append s.scopes assumptions) in
    let n_assumps = Array.length assumps in
    let restart_limit = ref s.config.restart_base in
    let conflicts = ref 0 in
    let result = ref None in
    (* Budget caps count work done by *this* call, so a budget-limited
       solve behaves identically whether the solver is fresh or has
       served earlier incremental calls. *)
    let start_conflicts = s.conflicts_total in
    let start_propagations = s.propagations_total in
    let over_budget () =
      (budget.max_conflicts > 0
      && s.conflicts_total - start_conflicts >= budget.max_conflicts)
      || budget.max_propagations > 0
         && s.propagations_total - start_propagations
            >= budget.max_propagations
    in
    while !result = None do
      (match interrupt with Some f -> f () | None -> ());
      if over_budget () then begin
        (* Deterministic give-up: the caps count solver operations, not
           wall clock, so the same instance trips at the same point in
           every run.  Back out to level 0 so the solver stays usable
           for later (incremental) calls. *)
        cancel_until s 0;
        s.unknowns_total <- s.unknowns_total + 1;
        result := Some Unknown
      end
      else
      match propagate s with
      | Some confl ->
        s.conflicts_total <- s.conflicts_total + 1;
        incr conflicts;
        if s.n_levels = 0 then begin
          (* Independent of assumptions: level-0 units never follow
             from assumption decisions. *)
          s.unsat <- true;
          result := Some Unsat
        end
        else begin
          let learnt, btlevel = analyze s confl in
          record s learnt btlevel;
          s.var_inc <- s.var_inc /. s.config.decay;
          if !conflicts >= !restart_limit then begin
            conflicts := 0;
            restart_limit :=
              max (!restart_limit + 1)
                (int_of_float
                   (float_of_int !restart_limit *. s.config.restart_factor));
            s.restarts_total <- s.restarts_total + 1;
            cancel_until s 0
          end
        end
      | None ->
        if s.n_levels < n_assumps then begin
          let a = assumps.(s.n_levels) in
          match lit_value s a with
          | 1 -> new_level s (* already implied; placeholder level *)
          | -1 -> result := Some Unsat
          | _ ->
            new_level s;
            enqueue s a None
        end
        else begin
          match pick_branch s with
          | 0 -> result := Some Sat
          | l ->
            s.decisions_total <- s.decisions_total + 1;
            new_level s;
            enqueue s l None
        end
    done;
    match !result with Some r -> r | None -> assert false
  end

let value s l = lit_value s l = 1
let num_vars s = s.n_vars
let num_clauses s = s.n_clauses
let num_conflicts s = s.conflicts_total

type stats = {
  decisions : int;
  propagations : int;
  conflicts : int;
  restarts : int;
  unknowns : int;
  learned_clauses : int;
  learned_literals : int;
  learned_size_buckets : int array;
}

let stats s =
  {
    decisions = s.decisions_total;
    propagations = s.propagations_total;
    conflicts = s.conflicts_total;
    restarts = s.restarts_total;
    unknowns = s.unknowns_total;
    learned_clauses = s.learned_total;
    learned_literals = s.learned_literals;
    learned_size_buckets = Array.copy s.learned_size_buckets;
  }
