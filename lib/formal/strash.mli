open Hwpat_rtl

(** Structural hashing: a hash-consed AIG-style intermediate form
    between the netlist and the Tseitin CNF.

    {!Blast} encodes every gate occurrence as fresh CNF variables, so
    the two sides of an equivalence miter — typically a dissolved
    pattern wrapper and a hand-written design over the same metamodel
    config, sharing most of their structure — pay for their common
    logic twice, and repeated subcircuits inside one side (address
    decoders, per-row blur taps) pay once per repetition.  This module
    instead builds the frame over hash-consed AND/XOR/MUX nodes with
    complemented edges: constant propagation and two-level rewriting
    run at construction, structurally identical subgraphs become the
    {e same node}, and each node is emitted to CNF at most once per
    manager lifetime, lazily, only when some constraint actually
    reaches it.

    The literal algebra is closed under negation at zero cost
    ([snot] flips a bit), so the rewriting rules fire across the
    miter seam as well as within one side. *)

type t
(** A strash manager bound to a {!Solver.t}.  All literals below are
    relative to one manager. *)

type lit = int
(** An AIG edge: node index with a complement bit.  Distinct from
    {!Solver.lit}; convert with {!to_solver_lit} /
    {!of_solver_lit}. *)

val create : Solver.t -> t
val solver : t -> Solver.t

val lit_true : lit
val lit_false : lit

val snot : lit -> lit
(** Complement, free (no node is created). *)

val sand : t -> lit -> lit -> lit
val sor : t -> lit -> lit -> lit
val sxor : t -> lit -> lit -> lit

val smux : t -> lit -> lit -> lit -> lit
(** [smux t c d1 d0] is [c ? d1 : d0]. *)

val and_list : t -> lit list -> lit
val or_list : t -> lit list -> lit

val fresh : t -> lit
(** A fresh unconstrained leaf (backed by a fresh solver variable). *)

val fresh_vector : t -> int -> lit array
val constant : t -> Bits.t -> lit array

val of_solver_lit : t -> Solver.lit -> lit
(** Wrap an existing solver literal as a leaf; the same variable
    always yields the same leaf node. *)

val to_solver_lit : t -> lit -> Solver.lit
(** CNF literal equisatisfiable with the cone of [lit], emitting the
    Tseitin clauses of any not-yet-emitted nodes in the cone (each
    node at most once per manager, ever). *)

(** {1 Vector helpers} — the {!Blast} operations over AIG literals,
    LSB-first, same semantics bit for bit. *)

val lits_equal : t -> lit array -> lit array -> lit
val bool_of_vec : t -> lit array -> lit
val eq_const : t -> lit array -> int -> lit
val add_vec : t -> ?cin:lit -> lit array -> lit array -> lit array
val sub_vec : t -> lit array -> lit array -> lit array
val mul_vec : t -> lit array -> lit array -> lit array
val lt_vec : t -> lit array -> lit array -> lit
val mux_cases : t -> lit array -> lit array list -> lit array

(** {1 Model evaluation} *)

val value : t -> lit -> bool
(** Value under the solver's current model after a [Sat] answer.
    Emitted nodes read their CNF variable; unemitted nodes evaluate
    structurally, so any vector built through the manager may be
    probed. *)

val model_bits : t -> lit array -> Bits.t

(** {1 Frames} *)

type frame = {
  value : Signal.t -> lit array;
      (** settled value of any signal in the circuit this frame *)
  outputs : (string * lit array) list;
  next : lit array array;
      (** post-edge state, indexed like {!Blast.state_elements} *)
}

val frame : t -> Circuit.t -> inputs:(string -> lit array) -> state:(int -> lit array) -> frame
(** One time-frame with the settle-then-edge semantics of
    {!Blast.frame}, built over hash-consed nodes: repeated structure
    within the frame, across frames, and across circuits sharing the
    manager is represented once. *)

val num_nodes : t -> int
(** Number of live AIG nodes (a sharing measure for diagnostics). *)

(** {1 Netlist-to-netlist rewrite} *)

val rewrite : Circuit.t -> Circuit.t
(** Rebuild a circuit as its hash-consed bit-level form: state
    flattens to 1-bit registers (memories into their words) fed by the
    strashed next-state functions; ports keep names and widths.  The
    result simulates cycle-accurately identically to the original on
    all ports (pinned by the differential suite) — usable as a
    standalone pre-pass for consumers that keep the {!Blast} path. *)
