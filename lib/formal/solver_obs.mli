(** Fold {!Solver.stats} into a metrics registry.

    Shared by {!Equiv} and {!Bmc}: each call merges the cumulative
    counters of every solver it created under [solver.*] names, and
    the learned-clause-size buckets into the
    [solver.learned_clause_size] histogram (the bucket conventions
    match by construction). *)

val record : Hwpat_obs.Metrics.t -> Solver.t list -> unit
