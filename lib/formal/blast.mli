open Hwpat_rtl

(** Tseitin bit-blasting of a {!Circuit.t} into SAT clauses.

    One call to {!frame} encodes a single time-frame of a circuit: given
    literal vectors for the input ports and for every state element
    (register, synchronous-read latch, memory word), it produces literal
    vectors for every signal's settled value, for the output ports, and
    for the next value of every state element — exactly the
    settle-then-clock-edge semantics of {!Cyclesim}. Equivalence
    checking, k-induction and bounded model checking all reduce to
    instantiating frames and constraining the seams.

    Covered primitives (everything both simulation engines execute):
    constants, inputs, [Add]/[Sub]/[Mul]/[And]/[Or]/[Xor]/[Eq]/[Lt],
    [Not], [Concat], [Select], [Mux] with the {!Signal.mux_index}
    out-of-range clamp to the last case, registers (clear priority over
    enable, power-on [init]), asynchronous and synchronous (read-first)
    memory reads with out-of-range addresses reading zero, and memory
    write ports applied in attachment order (later ports win) with
    out-of-range writes ignored. Literal vectors are LSB-first. *)

(** One bit of persistent state, in the fixed order of
    {!state_elements}. *)
type state_elt =
  | Reg_state of Signal.t  (** a [Reg] node's stored value *)
  | Read_state of Signal.t  (** a [Mem_read_sync] node's latch *)
  | Mem_word of Signal.memory * int  (** one word of a memory *)

val state_elements : Circuit.t -> state_elt array
(** All state of a circuit in a deterministic order: registers, then
    synchronous-read latches, then memory words. *)

val elt_width : state_elt -> int

val elt_init : state_elt -> Bits.t
(** Power-on value: a register's [init]; zeros for read latches and
    memory words (as {!Cyclesim.reset} establishes). *)

val elt_label : state_elt -> string
(** Human-readable identification for diagnostics. *)

val elt_key : state_elt -> int * int * int
(** Stable structural key of a state element (kind tag, owning signal
    or memory uid, word index) — usable as a hashtable key where the
    element itself is not (signals may be cyclic through wires). *)

type frame = {
  value : Signal.t -> Solver.lit array;
      (** settled value of any signal in the circuit this frame *)
  outputs : (string * Solver.lit array) list;
  next : Solver.lit array array;
      (** post-edge state, indexed like {!state_elements} *)
}

val frame :
  Solver.t ->
  Circuit.t ->
  inputs:(string -> Solver.lit array) ->
  state:(int -> Solver.lit array) ->
  frame
(** [frame solver circuit ~inputs ~state] adds the clauses for one time
    frame. [inputs name] supplies the literal vector of an input port;
    [state i] the current value of [state_elements circuit).(i)]. *)

(** {1 Vector helpers for the checkers} *)

val constant : Solver.t -> Bits.t -> Solver.lit array
val fresh_vector : Solver.t -> int -> Solver.lit array

val lits_equal : Solver.t -> Solver.lit array -> Solver.lit array -> Solver.lit
(** One literal true iff the two equal-width vectors are equal. *)

val or_list : Solver.t -> Solver.lit list -> Solver.lit
val and_list : Solver.t -> Solver.lit list -> Solver.lit
val xor2 : Solver.t -> Solver.lit -> Solver.lit -> Solver.lit

val model_bits : Solver.t -> Solver.lit array -> Bits.t
(** Read a vector's value out of a satisfying model. *)
