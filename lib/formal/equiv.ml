(* Equivalence checking: single-frame miter for combinational pairs;
   BMC + van-Eijk-style candidate-equivalence induction (with a plain
   k-induction fallback) for sequential pairs.

   One solver carries a whole check: the BMC sweep, every escalation
   attempt of the induction, phase B and the k-induction fallback all
   add clauses to the same instance, so lemmas learned in one stage
   prune the search of the next.  Frames are built either through
   {!Strash} (the default — hash-consed, so the structure the two
   sides share is encoded once) or through {!Blast} (the legacy
   per-occurrence encoding, kept as a differential oracle). *)

open Hwpat_rtl

type result =
  | Proved
  | Counterexample of (string * Bits.t) list list
  | Unknown of string

(* Raised (internally) when a budget-limited solve call returns
   [Solver.Unknown]; caught at the top of [check] and surfaced as an
   honest [Unknown] result.  The solve sites below match on [`Sat] /
   [`Unsat] only — the wrapper in [check] translates. *)
exception Out_of_budget

(* --- Port matching ------------------------------------------------------- *)

type plan = {
  a : Circuit.t;
  b : Circuit.t;
  union_inputs : (string * int * int) list;
      (* name, width, scope: 0 = shared, 1 = a-only, 2 = b-only *)
  shared_outputs : string list;
  elts_a : Blast.state_elt array;
  elts_b : Blast.state_elt array;
}

let make_plan a b =
  let ia = Circuit.inputs a and ib = Circuit.inputs b in
  let widths ports = List.map (fun (n, s) -> (n, Signal.width s)) ports in
  let wa = widths ia and wb = widths ib in
  let union_inputs =
    List.map
      (fun (n, w) ->
        match List.assoc_opt n wb with
        | Some w' when w' <> w ->
          invalid_arg
            (Printf.sprintf "Equiv: input %s has width %d vs %d" n w w')
        | Some _ -> (n, w, 0)
        | None -> (n, w, 1))
      wa
    @ List.filter_map
        (fun (n, w) ->
          if List.mem_assoc n wa then None else Some (n, w, 2))
        wb
  in
  let oa = widths (Circuit.outputs a) and ob = widths (Circuit.outputs b) in
  let shared_outputs =
    List.filter_map
      (fun (n, w) ->
        match List.assoc_opt n ob with
        | Some w' when w' <> w ->
          invalid_arg
            (Printf.sprintf "Equiv: output %s has width %d vs %d" n w w')
        | Some _ -> Some n
        | None -> None)
      oa
  in
  if shared_outputs = [] then
    invalid_arg "Equiv: the circuits share no output names";
  {
    a;
    b;
    union_inputs;
    shared_outputs;
    elts_a = Blast.state_elements a;
    elts_b = Blast.state_elements b;
  }

(* --- One joint frame ----------------------------------------------------- *)

type joint = {
  j_vecs : (string * int array) list;
  j_out_a : (string * int array) list;
  j_out_b : (string * int array) list;
  j_next_a : int array array;
  j_next_b : int array array;
  j_diff : int;  (** engine lit: some shared output differs *)
}

(* Inputs exclusive to one side are tied to zero: the convention that
   makes a pruned variant (requests tied off at elaboration) comparable
   to the full model on the retained interface.  Both sides read the
   {e same} input vectors, so under a strash engine any logic the two
   circuits share becomes the same nodes and output equality folds away
   structurally. *)
let instantiate (e : Engine.t) plan ~st_a ~st_b =
  let vecs =
    List.map
      (fun (name, w, scope) ->
        ( name,
          if scope = 0 then e.fresh_vector w else e.constant (Bits.zero w) ))
      plan.union_inputs
  in
  let input_fn name = List.assoc name vecs in
  let out_a, next_a = e.frame plan.a ~inputs:input_fn ~state:(fun i -> st_a.(i)) in
  let out_b, next_b = e.frame plan.b ~inputs:input_fn ~state:(fun i -> st_b.(i)) in
  let diff =
    e.eor_list
      (List.map
         (fun n -> e.enot (e.eq_vec (List.assoc n out_a) (List.assoc n out_b)))
         plan.shared_outputs)
  in
  {
    j_vecs = vecs;
    j_out_a = out_a;
    j_out_b = out_b;
    j_next_a = next_a;
    j_next_b = next_b;
    j_diff = diff;
  }

let init_state (e : Engine.t) elts = Array.map (fun elt -> e.constant (Blast.elt_init elt)) elts
let free_state (e : Engine.t) elts = Array.map (fun elt -> e.fresh_vector (Blast.elt_width elt)) elts

(* --- Counterexample search and replay ------------------------------------ *)

let extract_cex (e : Engine.t) frames_rev =
  List.rev_map
    (fun vecs -> List.map (fun (name, v) -> (name, e.model_bits v)) vecs)
    frames_rev

let counterexample_to_string cex =
  String.concat "\n"
    (List.mapi
       (fun k assignment ->
         Printf.sprintf "  cycle %d: %s" k
           (String.concat " "
              (List.map
                 (fun (n, v) -> Printf.sprintf "%s=%s" n (Bits.to_string v))
                 assignment)))
       cex)

(* Drive the assignment through both simulators; the first differing
   shared output confirms the counterexample is real. *)
let replay plan cex =
  let sa = Cyclesim.create plan.a and sb = Cyclesim.create plan.b in
  let diverged = ref None in
  List.iteri
    (fun k assignment ->
      if !diverged = None then begin
        List.iter
          (fun (name, v) ->
            if List.mem_assoc name (Circuit.inputs plan.a) then
              Cyclesim.drive sa name v;
            if List.mem_assoc name (Circuit.inputs plan.b) then
              Cyclesim.drive sb name v)
          assignment;
        Cyclesim.cycle sa;
        Cyclesim.cycle sb;
        List.iter
          (fun name ->
            let va = !(Cyclesim.out_port sa name)
            and vb = !(Cyclesim.out_port sb name) in
            if (not (Bits.equal va vb)) && !diverged = None then
              diverged := Some (k, name, va, vb))
          plan.shared_outputs
      end)
    cex;
  !diverged

let confirm_cex plan cex =
  match replay plan cex with
  | Some _ -> Counterexample cex
  | None ->
    failwith
      ("Equiv: SAT counterexample does not replay in Cyclesim — the \
        encoding disagrees with the simulator\n"
      ^ counterexample_to_string cex)

(* Unroll both circuits from their power-on state and look for a frame
   whose shared outputs can differ. The returned function is a
   resumable sweep: each call extends the unrolling up to the requested
   depth (frames already searched are not re-solved) and returns the
   first counterexample among the new frames, if any. Resumability
   lets [check] sweep shallowly before induction and return for a deep
   sweep only when induction stays undecided — the per-frame miter
   solves get exponentially harder with depth. *)
let bmc_sweep ~solve (e : Engine.t) plan =
  let st_a = ref (init_state e plan.elts_a) in
  let st_b = ref (init_state e plan.elts_b) in
  let frames = ref [] in
  let searched = ref 0 in
  fun ~depth ->
    let found = ref None in
    while !found = None && !searched < depth do
      let j = instantiate e plan ~st_a:!st_a ~st_b:!st_b in
      st_a := j.j_next_a;
      st_b := j.j_next_b;
      frames := j.j_vecs :: !frames;
      let act = Solver.new_var e.solver in
      Solver.add_clause e.solver [ -act; e.sl j.j_diff ];
      (match solve ~assumptions:[ act ] e.solver with
      | `Sat -> found := Some (extract_cex e !frames)
      | `Unsat -> ());
      incr searched
    done;
    !found

(* --- Candidate discovery by random simulation ---------------------------- *)

(* A state bit: (side, element index, bit index). *)
type side_bit = int * int * int

(* An equivalence class of state bits conjectured pairwise equal in
   every reachable state — and pinned to a constant when tagged. The
   class is the unit of hypothesis: keeping classes whole (rather than
   a flat list of pairwise candidates) lets the induction loop refine
   them against countermodels without losing relations that were only
   represented transitively. *)
type cls = { members : side_bit list; const : bool option }

let random_bits st ~width =
  let rec chunks w acc =
    if w <= 0 then acc
    else
      let k = min w 16 in
      chunks (w - k) (Bits.of_int ~width:k (Random.State.int st (1 lsl k)) :: acc)
  in
  Bits.concat_msb (chunks width [])

let state_bits_value sim elt =
  match elt with
  | Blast.Reg_state s | Blast.Read_state s -> Cyclesim.peek_state sim s
  | Blast.Mem_word (m, i) -> (Cyclesim.memory_contents sim m).(i)

(* Per-state-bit 0/1 signatures over a random run (the power-on state
   is sample 0). Identical signatures land in one equivalence class;
   all-zero / all-one signatures tag the class as constant. *)
let discover_classes plan ~sim_cycles =
  let sa = Cyclesim.create plan.a and sb = Cyclesim.create plan.b in
  let n_samples = sim_cycles + 1 in
  let make_sigs elts =
    Array.map (fun e -> Array.init (Blast.elt_width e) (fun _ -> Bytes.make n_samples '0')) elts
  in
  let sigs_a = make_sigs plan.elts_a and sigs_b = make_sigs plan.elts_b in
  let sample t =
    let one sim elts sigs =
      Array.iteri
        (fun i e ->
          let v = state_bits_value sim e in
          Array.iteri
            (fun bit sg ->
              Bytes.set sg t (if Bits.bit v bit then '1' else '0'))
            sigs.(i))
        elts
    in
    one sa plan.elts_a sigs_a;
    one sb plan.elts_b sigs_b
  in
  let rng = Random.State.make [| 0x51ac7 |] in
  sample 0;
  for t = 1 to sim_cycles do
    List.iter
      (fun (name, w, scope) ->
        if scope = 0 then begin
          let v = random_bits rng ~width:w in
          Cyclesim.drive sa name v;
          Cyclesim.drive sb name v
        end)
      plan.union_inputs;
    Cyclesim.cycle sa;
    Cyclesim.cycle sb;
    sample t
  done;
  let classes = Hashtbl.create 997 in
  let note side sigs =
    Array.iteri
      (fun i per_bit ->
        Array.iteri
          (fun bit sg ->
            let key = Bytes.to_string sg in
            Hashtbl.replace classes key
              ((side, i, bit) :: (try Hashtbl.find classes key with Not_found -> [])))
          per_bit)
      sigs
  in
  note 0 sigs_a;
  note 1 sigs_b;
  let zeros = String.make n_samples '0' and ones = String.make n_samples '1' in
  Hashtbl.fold
    (fun key members acc ->
      let members = List.rev members in
      let const =
        if key = zeros then Some false
        else if key = ones then Some true
        else None
      in
      match members with
      | _ :: _ :: _ -> { members; const } :: acc
      | [ _ ] when const <> None -> { members; const } :: acc
      | _ -> acc)
    classes []

let init_bit plan (side, e, bit) =
  let elts = if side = 0 then plan.elts_a else plan.elts_b in
  Bits.bit (Blast.elt_init elts.(e)) bit

(* --- Induction ----------------------------------------------------------- *)

let debug = Sys.getenv_opt "EQUIV_DEBUG" <> None

(* An encoded candidate class: its relations are assumed at time t
   through the selector literal [sel] and each [viols] literal is true
   iff one relation fails at time t+1.  Encoded once; a class only
   pays again if a countermodel actually splits it, in which case the
   stale selector is retired with a unit clause and the fragments are
   encoded fresh. *)
type enc_cls = { cls : cls; sel : Solver.lit; viols : Solver.lit list }

(* The joint induction frame over a free state, encoded once per check
   and shared by every escalation attempt, phase B included — the
   frame is the expensive part of the induction, and nothing about it
   depends on which candidate classes are currently conjectured. *)
type ind_ctx = {
  e : Engine.t;
  plan : plan;
  st_a : int array array;
  st_b : int array array;
  joint : joint;
  mutable live : enc_cls list;
}

let make_ind_ctx e plan =
  let st_a = free_state e plan.elts_a in
  let st_b = free_state e plan.elts_b in
  let joint = instantiate e plan ~st_a ~st_b in
  { e; plan; st_a; st_b; joint; live = [] }

let cur_lit ctx (side, elt, bit) =
  if side = 0 then ctx.st_a.(elt).(bit) else ctx.st_b.(elt).(bit)

let next_lit ctx (side, elt, bit) =
  if side = 0 then ctx.joint.j_next_a.(elt).(bit)
  else ctx.joint.j_next_b.(elt).(bit)

let encode_cls ctx c =
  let e = ctx.e in
  let solver = e.solver in
  match c.members with
  | [] -> None
  | rep :: rest ->
    let s = Solver.new_var solver in
    let member_viols =
      List.map
        (fun m ->
          Solver.add_clause solver
            [ -s; -e.sl (cur_lit ctx rep); e.sl (cur_lit ctx m) ];
          Solver.add_clause solver
            [ -s; e.sl (cur_lit ctx rep); -e.sl (cur_lit ctx m) ];
          e.sl (e.exor (next_lit ctx rep) (next_lit ctx m)))
        rest
    in
    let const_viols =
      match c.const with
      | Some v ->
        Solver.add_clause solver
          [ -s; (if v then e.sl (cur_lit ctx rep) else -e.sl (cur_lit ctx rep)) ];
        [ e.sl (if v then e.enot (next_lit ctx rep) else next_lit ctx rep) ]
      | None -> []
    in
    Some { cls = c; sel = s; viols = member_viols @ const_viols }

let retire ctx ec = Solver.add_clause ctx.e.solver [ -ec.sel ]

let install_classes ctx classes =
  List.iter (retire ctx) ctx.live;
  ctx.live <- List.filter_map (encode_cls ctx) classes

let dbg_side_bit plan (side, e, bit) =
  let elts = if side = 0 then plan.elts_a else plan.elts_b in
  let base =
    match elts.(e) with
    | Blast.Reg_state s | Blast.Read_state s -> Format.asprintf "%a" Signal.pp s
    | Blast.Mem_word (m, i) -> Printf.sprintf "%s[%d]" (Signal.memory_name m) i
  in
  Printf.sprintf "%c:%s.%d" (if side = 0 then 'a' else 'b') base bit

(* One induction frame over a free joint state: each class's relations
   are assumed at time t through a selector literal and checked at time
   t+1 (and on the outputs, at time t). When a check fails, the
   countermodel's next-state valuation acts as one more signature
   sample: every class is re-split by it. Refining — rather than
   dropping the violated pairs — is what keeps the genuine relations a
   class carried transitively: a spurious classmate separates out
   without severing, say, a.count == b.count, which may have been
   represented only through links to that classmate.

   The refinement is incremental: only classes the countermodel
   actually splits are re-encoded (old selector retired by unit
   clause, fragments encoded fresh); the surviving classes, the joint
   frame, and every lemma the solver learned along the way are carried
   into the next round untouched.  The historical encoding re-blasted
   every class every round — on the blur pair that was ~370 classes
   re-encoded per round for hundreds of rounds. *)
let prove_by_induction ctx ~solve ~classes ~bmc_depth ~max_induction
    ~with_fallback ~refine_budget =
  let e = ctx.e in
  let solver = e.solver in
  let plan = ctx.plan in
  install_classes ctx classes;
  (* Each refinement round pays one SAT solve, and typically separates
     only one spurious classmate. Classes discovered from a too-short
     simulation can need hundreds of rounds, so the budget bounds the
     work per attempt: on exhaustion the caller re-discovers from a
     longer simulation, which starts with far fewer spurious classes.
     Refinement itself always terminates — every round splits a class
     or drops a constant tag — so the final attempt runs with an
     effectively unlimited budget. *)
  let rec converge ~budget =
    if debug then
      Printf.eprintf "[equiv] converge: %d classes (budget %d)\n%!"
        (List.length ctx.live) budget;
    match List.concat_map (fun ec -> ec.viols) ctx.live with
    | [] -> true
    | viols -> (
      let act = Solver.new_var solver in
      Solver.add_clause solver (-act :: viols);
      let sels = List.map (fun ec -> ec.sel) ctx.live in
      match solve ~assumptions:(act :: sels) solver with
      | `Unsat -> true
      | `Sat when budget = 0 -> false
      | `Sat ->
        let progress = ref false in
        ctx.live <-
          List.concat_map
            (fun ec ->
              let c = ec.cls in
              let zero, one =
                List.partition
                  (fun m -> not (e.lit_value (next_lit ctx m)))
                  c.members
              in
              let sub members const =
                match members with
                | [] -> []
                | [ _ ] when const = None -> []
                | _ -> [ { members; const } ]
              in
              let fragments =
                match c.const with
                | Some v ->
                  let keep, lose = if v then (one, zero) else (zero, one) in
                  if lose = [] then None
                  else Some (sub keep c.const @ sub lose None)
                | None ->
                  if zero = [] || one = [] then None
                  else Some (sub zero None @ sub one None)
              in
              match fragments with
              | None -> [ ec ] (* untouched: keep the encoding *)
              | Some frags ->
                progress := true;
                retire ctx ec;
                List.filter_map (encode_cls ctx) frags)
            ctx.live;
        if not !progress then
          (* Cannot happen: a Sat answer violates some goal, and that
             goal's class must split (or lose its constant tag). *)
          failwith "Equiv: induction refinement made no progress";
        if debug then
          Printf.eprintf "[equiv] refine -> %d classes\n%!"
            (List.length ctx.live);
        converge ~budget:(budget - 1))
  in
  if not (converge ~budget:refine_budget) then
    Unknown "candidate refinement exceeded its budget"
  else begin
    (* The refined classes are sound only if the power-on state
       satisfies them; discovery sampled the power-on state and
       refinement only splits classes, so this cannot fire. *)
    List.iter
      (fun ec ->
        match ec.cls.members with
        | [] -> ()
        | rep :: rest ->
          let r = init_bit plan rep in
          if
            (match ec.cls.const with Some v -> r <> v | None -> false)
            || List.exists (fun m -> init_bit plan m <> r) rest
          then failwith "Equiv: invariant class false at the initial state")
      ctx.live;
    (* Phase B: outputs equal, given the proven invariants. *)
    if debug then
      Printf.eprintf "[equiv] induction closed with %d classes\n%!"
        (List.length ctx.live);
    let act = Solver.new_var solver in
    Solver.add_clause solver [ -act; e.sl ctx.joint.j_diff ];
    let sels = List.map (fun ec -> ec.sel) ctx.live in
    let phase_b = solve ~assumptions:(act :: sels) solver in
    (if debug && phase_b = `Sat then begin
       List.iter
         (fun nm ->
           let va = e.model_bits (List.assoc nm ctx.joint.j_out_a)
           and vb = e.model_bits (List.assoc nm ctx.joint.j_out_b) in
           if not (Bits.equal va vb) then
             Printf.eprintf "[equiv] phase B: output %s a=%s b=%s\n%!" nm
               (Bits.to_string va) (Bits.to_string vb))
         plan.shared_outputs;
       let dump side st =
         Array.iteri
           (fun elt lits ->
             Printf.eprintf "[equiv]   %s = %s\n%!"
               (dbg_side_bit plan (side, elt, 0))
               (Bits.to_string (e.model_bits lits)))
           st
       in
       dump 0 ctx.st_a;
       dump 1 ctx.st_b
     end);
    match phase_b with
    | `Unsat -> Proved
    | `Sat when not with_fallback ->
      (* The caller will retry discovery with a longer simulation before
         paying for k-induction. *)
      Unknown "candidate induction left outputs undecided"
    | `Sat ->
      (* Fallback: k-induction on output equality, strengthened with the
         proven invariants (soundly assertable at every frame). The base
         case is the BMC sweep, so k may not exceed its depth.

         The whole fallback runs inside one solver scope: its frame and
         invariant clauses are scoped and retired on pop (a later deep
         BMC sweep on the same solver must not drag their watch lists
         along), while every lemma the solver derives from unguarded
         clauses is retained.  Scoping the emission is sound here
         because the fallback's frames are built over fresh leaves —
         no node in their cones can be reached by any later stage. *)
      let invariants = List.map (fun ec -> ec.cls) ctx.live in
      Solver.push solver;
      Fun.protect
        ~finally:(fun () -> Solver.pop solver)
        (fun () ->
          let assert_invariants st_a st_b =
            let lit (side, elt, bit) =
              if side = 0 then st_a.(elt).(bit) else st_b.(elt).(bit)
            in
            List.iter
              (fun c ->
                match c.members with
                | [] -> ()
                | rep :: rest ->
                  List.iter
                    (fun m ->
                      Solver.add_clause solver [ -e.sl (lit rep); e.sl (lit m) ];
                      Solver.add_clause solver [ e.sl (lit rep); -e.sl (lit m) ])
                    rest;
                  (match c.const with
                  | Some v ->
                    Solver.add_clause solver
                      [ (if v then e.sl (lit rep) else -e.sl (lit rep)) ]
                  | None -> ()))
              invariants
          in
          let st_a = ref (free_state e plan.elts_a) in
          let st_b = ref (free_state e plan.elts_b) in
          assert_invariants !st_a !st_b;
          let diffs = ref [] in
          let proved = ref false in
          let k = ref 0 in
          let k_max = min max_induction bmc_depth in
          while (not !proved) && !k <= k_max do
            let j = instantiate e plan ~st_a:!st_a ~st_b:!st_b in
            st_a := j.j_next_a;
            st_b := j.j_next_b;
            assert_invariants !st_a !st_b;
            (* Assume equality at frames 0..k-1, require a difference
               at k. *)
            (match !diffs with
            | [] -> ()
            | earlier -> (
              let assumptions =
                e.sl j.j_diff :: List.map (fun d -> -e.sl d) earlier
              in
              match solve ~assumptions solver with
              | `Unsat -> proved := true
              | `Sat -> ()));
            diffs := j.j_diff :: !diffs;
            incr k
          done;
          if !proved then Proved
          else
            Unknown
              (Printf.sprintf
                 "candidate induction left outputs undecided and k-induction \
                  gave up at k=%d"
                 k_max))
  end

(* --- Top level ----------------------------------------------------------- *)

let check ?(trace = Hwpat_obs.Trace.null) ?(metrics = Hwpat_obs.Metrics.null)
    ?(budget = Solver.no_budget) ?interrupt ?(bmc_depth = 24)
    ?(max_induction = 20) ?(sim_cycles = 48) ?(strash = true) ?solver_config
    a b =
  let module Trace = Hwpat_obs.Trace in
  let solvers = ref [] in
  let register s =
    solvers := s :: !solvers;
    s
  in
  (* Distinguish an abandoned check (the interrupt hook raised — e.g. a
     supervision watchdog that will retry the whole call) from a
     completed one: stats are recorded only for completed checks, else
     the retry would merge the aborted attempt's partial counts on top
     of its own and the totals would double relative to a single
     uninterrupted run. *)
  let interrupted = ref false in
  let interrupt =
    match interrupt with
    | None -> None
    | Some hook ->
      Some
        (fun () ->
          try hook ()
          with exn ->
            interrupted := true;
            raise exn)
  in
  (* Every solve call in the proof shares the per-call budget and the
     interrupt hook.  A budget trip raises [Out_of_budget], caught
     below and reported as an honest [Unknown]; an [interrupt] raise
     (e.g. a supervision watchdog) propagates untouched. *)
  let solve ~assumptions solver =
    match Solver.solve ~assumptions ~budget ?interrupt solver with
    | Solver.Sat -> `Sat
    | Solver.Unsat -> `Unsat
    | Solver.Unknown -> raise Out_of_budget
  in
  let body () =
    let plan = make_plan a b in
    let stateless =
      Array.length plan.elts_a = 0 && Array.length plan.elts_b = 0
    in
    let solver = register (Solver.create ?config:solver_config ()) in
    let e = Engine.make ~strash solver in
    let sweep = bmc_sweep ~solve e plan in
    let sweep ~depth =
      Trace.span trace "bmc_sweep"
        ~args:[ ("depth", Trace.Int depth) ]
        (fun () -> sweep ~depth)
    in
    (* A shallow sweep catches real divergences cheaply; the full-depth
       sweep only runs when induction cannot settle the question, because
       miter solves on equivalent designs get dramatically harder with
       unrolling depth. *)
    let shallow = if stateless then 1 else min bmc_depth 12 in
    match sweep ~depth:shallow with
    | Some cex -> confirm_cex plan cex
    | None ->
      if stateless then Proved
      else
        (* Candidate quality is limited by how much of the state space
           the random run visits; handshake-heavy designs need thousands
           of cycles before pointers and latches decorrelate. Escalate
           the simulation length before paying for the k-induction
           fallback, which can be exponentially more expensive than a
           longer (linear-cost) simulation. The k-induction base case is
           the shallow sweep, so its k is bounded by [shallow]. *)
        let schedule =
          [ sim_cycles; max 512 (8 * sim_cycles); max 2048 (32 * sim_cycles) ]
        in
        let discover sc =
          Trace.span trace "discover"
            ~args:[ ("sim_cycles", Trace.Int sc) ]
            (fun () -> discover_classes plan ~sim_cycles:sc)
        in
        (* The joint induction frame is built on first use and shared
           by every escalation attempt: re-discovery replaces the
           candidate classes, not the frame. *)
        let ctx = lazy (make_ind_ctx e plan) in
        let induction ~classes ~with_fallback ~refine_budget =
          Trace.span trace "induction" (fun () ->
              prove_by_induction (Lazy.force ctx) ~solve ~classes
                ~bmc_depth:shallow ~max_induction ~with_fallback
                ~refine_budget)
        in
        let rec attempt = function
          | [] -> assert false
          | [ last ] ->
            induction ~classes:(discover last) ~with_fallback:true
              ~refine_budget:max_int
          | sc :: rest -> (
            match
              induction ~classes:(discover sc) ~with_fallback:false
                ~refine_budget:24
            with
            | Proved -> Proved
            | Unknown _ -> attempt rest
            | Counterexample _ as r -> r)
        in
        (match attempt schedule with
        | Proved -> Proved
        | Counterexample _ as r -> r
        | Unknown why -> (
          (* Induction gave up: resume the sweep to the full requested
             depth in case a deeper concrete divergence exists. *)
          match sweep ~depth:bmc_depth with
          | Some cex -> confirm_cex plan cex
          | None -> Unknown why))
  in
  let body () =
    try body ()
    with Out_of_budget ->
      Unknown
        (Printf.sprintf
           "solver budget exhausted (max %d conflicts / %d propagations per \
            solve)"
           budget.Solver.max_conflicts budget.Solver.max_propagations)
  in
  Fun.protect
    ~finally:(fun () ->
      if not !interrupted then Solver_obs.record metrics !solvers)
    (fun () -> Trace.span trace "equiv" body)

let assert_equivalent ?bmc_depth ?max_induction a b =
  match check ?bmc_depth ?max_induction a b with
  | Proved -> ()
  | Counterexample cex ->
    failwith
      (Printf.sprintf "Equiv: %s and %s differ; counterexample:\n%s"
         (Circuit.name a) (Circuit.name b)
         (counterexample_to_string cex))
  | Unknown why ->
    failwith
      (Printf.sprintf "Equiv: could not decide %s vs %s (%s)"
         (Circuit.name a) (Circuit.name b) why)

let optimize ?(verify = false) c =
  if verify then
    Optimize.run ~verify:(fun pre post -> assert_equivalent pre post) c
  else Optimize.run c
