(* Equivalence checking: single-frame miter for combinational pairs;
   BMC + van-Eijk-style candidate-equivalence induction (with a plain
   k-induction fallback) for sequential pairs. *)

open Hwpat_rtl

type result =
  | Proved
  | Counterexample of (string * Bits.t) list list
  | Unknown of string

(* Raised (internally) when a budget-limited solve call returns
   [Solver.Unknown]; caught at the top of [check] and surfaced as an
   honest [Unknown] result.  The solve sites below match on [`Sat] /
   [`Unsat] only — the wrapper in [check] translates. *)
exception Out_of_budget

(* --- Port matching ------------------------------------------------------- *)

type plan = {
  a : Circuit.t;
  b : Circuit.t;
  union_inputs : (string * int * int) list;
      (* name, width, scope: 0 = shared, 1 = a-only, 2 = b-only *)
  shared_outputs : string list;
  elts_a : Blast.state_elt array;
  elts_b : Blast.state_elt array;
}

let make_plan a b =
  let ia = Circuit.inputs a and ib = Circuit.inputs b in
  let widths ports = List.map (fun (n, s) -> (n, Signal.width s)) ports in
  let wa = widths ia and wb = widths ib in
  let union_inputs =
    List.map
      (fun (n, w) ->
        match List.assoc_opt n wb with
        | Some w' when w' <> w ->
          invalid_arg
            (Printf.sprintf "Equiv: input %s has width %d vs %d" n w w')
        | Some _ -> (n, w, 0)
        | None -> (n, w, 1))
      wa
    @ List.filter_map
        (fun (n, w) ->
          if List.mem_assoc n wa then None else Some (n, w, 2))
        wb
  in
  let oa = widths (Circuit.outputs a) and ob = widths (Circuit.outputs b) in
  let shared_outputs =
    List.filter_map
      (fun (n, w) ->
        match List.assoc_opt n ob with
        | Some w' when w' <> w ->
          invalid_arg
            (Printf.sprintf "Equiv: output %s has width %d vs %d" n w w')
        | Some _ -> Some n
        | None -> None)
      oa
  in
  if shared_outputs = [] then
    invalid_arg "Equiv: the circuits share no output names";
  {
    a;
    b;
    union_inputs;
    shared_outputs;
    elts_a = Blast.state_elements a;
    elts_b = Blast.state_elements b;
  }

(* --- One joint frame ----------------------------------------------------- *)

(* Inputs exclusive to one side are tied to zero: the convention that
   makes a pruned variant (requests tied off at elaboration) comparable
   to the full model on the retained interface. *)
let instantiate solver plan ~st_a ~st_b =
  let vecs =
    List.map
      (fun (name, w, scope) ->
        ( name,
          if scope = 0 then Blast.fresh_vector solver w
          else Blast.constant solver (Bits.zero w) ))
      plan.union_inputs
  in
  let input_fn name = List.assoc name vecs in
  let fa = Blast.frame solver plan.a ~inputs:input_fn ~state:(fun i -> st_a.(i)) in
  let fb = Blast.frame solver plan.b ~inputs:input_fn ~state:(fun i -> st_b.(i)) in
  let diff =
    Blast.or_list solver
      (List.map
         (fun n ->
           -Blast.lits_equal solver
              (List.assoc n fa.Blast.outputs)
              (List.assoc n fb.Blast.outputs))
         plan.shared_outputs)
  in
  (vecs, fa, fb, diff)

let init_state solver elts =
  Array.map (fun e -> Blast.constant solver (Blast.elt_init e)) elts

let free_state solver elts =
  Array.map (fun e -> Blast.fresh_vector solver (Blast.elt_width e)) elts

(* --- Counterexample search and replay ------------------------------------ *)

let extract_cex solver frames_rev =
  List.rev_map
    (fun vecs ->
      List.map (fun (name, v) -> (name, Blast.model_bits solver v)) vecs)
    frames_rev

let counterexample_to_string cex =
  String.concat "\n"
    (List.mapi
       (fun k assignment ->
         Printf.sprintf "  cycle %d: %s" k
           (String.concat " "
              (List.map
                 (fun (n, v) -> Printf.sprintf "%s=%s" n (Bits.to_string v))
                 assignment)))
       cex)

(* Drive the assignment through both simulators; the first differing
   shared output confirms the counterexample is real. *)
let replay plan cex =
  let sa = Cyclesim.create plan.a and sb = Cyclesim.create plan.b in
  let diverged = ref None in
  List.iteri
    (fun k assignment ->
      if !diverged = None then begin
        List.iter
          (fun (name, v) ->
            if List.mem_assoc name (Circuit.inputs plan.a) then
              Cyclesim.drive sa name v;
            if List.mem_assoc name (Circuit.inputs plan.b) then
              Cyclesim.drive sb name v)
          assignment;
        Cyclesim.cycle sa;
        Cyclesim.cycle sb;
        List.iter
          (fun name ->
            let va = !(Cyclesim.out_port sa name)
            and vb = !(Cyclesim.out_port sb name) in
            if (not (Bits.equal va vb)) && !diverged = None then
              diverged := Some (k, name, va, vb))
          plan.shared_outputs
      end)
    cex;
  !diverged

let confirm_cex plan cex =
  match replay plan cex with
  | Some _ -> Counterexample cex
  | None ->
    failwith
      ("Equiv: SAT counterexample does not replay in Cyclesim — the \
        encoding disagrees with the simulator\n"
      ^ counterexample_to_string cex)

(* Unroll both circuits from their power-on state and look for a frame
   whose shared outputs can differ. The returned function is a
   resumable sweep: each call extends the unrolling up to the requested
   depth (frames already searched are not re-solved) and returns the
   first counterexample among the new frames, if any. Resumability
   lets [check] sweep shallowly before induction and return for a deep
   sweep only when induction stays undecided — the per-frame miter
   solves get exponentially harder with depth. *)
let bmc_sweep ~solve solver plan =
  let st_a = ref (init_state solver plan.elts_a) in
  let st_b = ref (init_state solver plan.elts_b) in
  let frames = ref [] in
  let searched = ref 0 in
  fun ~depth ->
    let found = ref None in
    while !found = None && !searched < depth do
      let vecs, fa, fb, diff = instantiate solver plan ~st_a:!st_a ~st_b:!st_b in
      st_a := fa.Blast.next;
      st_b := fb.Blast.next;
      frames := vecs :: !frames;
      let act = Solver.new_var solver in
      Solver.add_clause solver [ -act; diff ];
      (match solve ~assumptions:[ act ] solver with
      | `Sat -> found := Some (extract_cex solver !frames)
      | `Unsat -> ());
      incr searched
    done;
    !found

(* --- Candidate discovery by random simulation ---------------------------- *)

(* A state bit: (side, element index, bit index). *)
type side_bit = int * int * int

(* An equivalence class of state bits conjectured pairwise equal in
   every reachable state — and pinned to a constant when tagged. The
   class is the unit of hypothesis: keeping classes whole (rather than
   a flat list of pairwise candidates) lets the induction loop refine
   them against countermodels without losing relations that were only
   represented transitively. *)
type cls = { members : side_bit list; const : bool option }

let random_bits st ~width =
  let rec chunks w acc =
    if w <= 0 then acc
    else
      let k = min w 16 in
      chunks (w - k) (Bits.of_int ~width:k (Random.State.int st (1 lsl k)) :: acc)
  in
  Bits.concat_msb (chunks width [])

let state_bits_value sim elt =
  match elt with
  | Blast.Reg_state s | Blast.Read_state s -> Cyclesim.peek_state sim s
  | Blast.Mem_word (m, i) -> (Cyclesim.memory_contents sim m).(i)

(* Per-state-bit 0/1 signatures over a random run (the power-on state
   is sample 0). Identical signatures land in one equivalence class;
   all-zero / all-one signatures tag the class as constant. *)
let discover_classes plan ~sim_cycles =
  let sa = Cyclesim.create plan.a and sb = Cyclesim.create plan.b in
  let n_samples = sim_cycles + 1 in
  let make_sigs elts =
    Array.map (fun e -> Array.init (Blast.elt_width e) (fun _ -> Bytes.make n_samples '0')) elts
  in
  let sigs_a = make_sigs plan.elts_a and sigs_b = make_sigs plan.elts_b in
  let sample t =
    let one sim elts sigs =
      Array.iteri
        (fun i e ->
          let v = state_bits_value sim e in
          Array.iteri
            (fun bit sg ->
              Bytes.set sg t (if Bits.bit v bit then '1' else '0'))
            sigs.(i))
        elts
    in
    one sa plan.elts_a sigs_a;
    one sb plan.elts_b sigs_b
  in
  let rng = Random.State.make [| 0x51ac7 |] in
  sample 0;
  for t = 1 to sim_cycles do
    List.iter
      (fun (name, w, scope) ->
        if scope = 0 then begin
          let v = random_bits rng ~width:w in
          Cyclesim.drive sa name v;
          Cyclesim.drive sb name v
        end)
      plan.union_inputs;
    Cyclesim.cycle sa;
    Cyclesim.cycle sb;
    sample t
  done;
  let classes = Hashtbl.create 997 in
  let note side sigs =
    Array.iteri
      (fun i per_bit ->
        Array.iteri
          (fun bit sg ->
            let key = Bytes.to_string sg in
            Hashtbl.replace classes key
              ((side, i, bit) :: (try Hashtbl.find classes key with Not_found -> [])))
          per_bit)
      sigs
  in
  note 0 sigs_a;
  note 1 sigs_b;
  let zeros = String.make n_samples '0' and ones = String.make n_samples '1' in
  Hashtbl.fold
    (fun key members acc ->
      let members = List.rev members in
      let const =
        if key = zeros then Some false
        else if key = ones then Some true
        else None
      in
      match members with
      | _ :: _ :: _ -> { members; const } :: acc
      | [ _ ] when const <> None -> { members; const } :: acc
      | _ -> acc)
    classes []

let init_bit plan (side, e, bit) =
  let elts = if side = 0 then plan.elts_a else plan.elts_b in
  Bits.bit (Blast.elt_init elts.(e)) bit

(* --- Induction ----------------------------------------------------------- *)

let debug = Sys.getenv_opt "EQUIV_DEBUG" <> None

(* One induction frame over a free joint state: each class's relations
   are assumed at time t through a selector literal and checked at time
   t+1 (and on the outputs, at time t). When a check fails, the
   countermodel's next-state valuation acts as one more signature
   sample: every class is re-split by it. Refining — rather than
   dropping the violated pairs — is what keeps the genuine relations a
   class carried transitively: a spurious classmate separates out
   without severing, say, a.count == b.count, which may have been
   represented only through links to that classmate. *)
let prove_by_induction plan ~solve ~register ~classes ~bmc_depth
    ~max_induction ~with_fallback ~refine_budget =
  let solver = register (Solver.create ()) in
  let st_a = free_state solver plan.elts_a in
  let st_b = free_state solver plan.elts_b in
  let _, fa, fb, out_viol = instantiate solver plan ~st_a ~st_b in
  let cur_lit (side, e, bit) =
    if side = 0 then st_a.(e).(bit) else st_b.(e).(bit)
  in
  let next_lit (side, e, bit) =
    if side = 0 then fa.Blast.next.(e).(bit) else fb.Blast.next.(e).(bit)
  in
  let dbg_side_bit (side, e, bit) =
    let elts = if side = 0 then plan.elts_a else plan.elts_b in
    let base =
      match elts.(e) with
      | Blast.Reg_state s | Blast.Read_state s ->
        Format.asprintf "%a" Signal.pp s
      | Blast.Mem_word (m, i) -> Printf.sprintf "%s[%d]" (Signal.memory_name m) i
    in
    Printf.sprintf "%c:%s.%d" (if side = 0 then 'a' else 'b') base bit
  in
  let classes = ref classes in
  let selectors = ref [] in
  (* Each refinement round re-encodes the class constraints and pays a
     SAT solve, and a round typically separates only one spurious
     classmate. Classes discovered from a too-short simulation can need
     hundreds of rounds, so the budget bounds the work per attempt: on
     exhaustion the caller re-discovers from a longer simulation, which
     starts with far fewer spurious classes. Refinement itself always
     terminates — every round splits a class or drops a constant tag —
     so the final attempt runs with an effectively unlimited budget. *)
  let rec converge ~budget =
    if debug then
      Printf.eprintf "[equiv] converge: %d classes (budget %d)\n%!"
        (List.length !classes) budget;
    let sels = ref [] and goals = ref [] in
    List.iter
      (fun c ->
        match c.members with
        | [] -> ()
        | rep :: rest ->
          let s = Solver.new_var solver in
          sels := s :: !sels;
          List.iter
            (fun m ->
              Solver.add_clause solver [ -s; -cur_lit rep; cur_lit m ];
              Solver.add_clause solver [ -s; cur_lit rep; -cur_lit m ];
              goals := Blast.xor2 solver (next_lit rep) (next_lit m) :: !goals)
            rest;
          (match c.const with
          | Some v ->
            Solver.add_clause solver
              [ -s; (if v then cur_lit rep else -cur_lit rep) ];
            goals := (if v then -next_lit rep else next_lit rep) :: !goals
          | None -> ()))
      !classes;
    selectors := !sels;
    match !goals with
    | [] -> true
    | goals -> (
      let act = Solver.new_var solver in
      Solver.add_clause solver (-act :: goals);
      match solve ~assumptions:(act :: !sels) solver with
      | `Unsat -> true
      | `Sat when budget = 0 -> false
      | `Sat ->
        let progress = ref false in
        classes :=
          List.concat_map
            (fun c ->
              let zero, one =
                List.partition
                  (fun m -> not (Solver.value solver (next_lit m)))
                  c.members
              in
              let sub members const =
                match members with
                | [] -> []
                | [ _ ] when const = None -> []
                | _ -> [ { members; const } ]
              in
              match c.const with
              | Some v ->
                let keep, lose = if v then (one, zero) else (zero, one) in
                if lose <> [] then progress := true;
                sub keep c.const @ sub lose None
              | None ->
                if zero <> [] && one <> [] then progress := true;
                sub zero None @ sub one None)
            !classes;
        if not !progress then
          (* Cannot happen: a Sat answer violates some goal, and that
             goal's class must split (or lose its constant tag). *)
          failwith "Equiv: induction refinement made no progress";
        if debug then
          Printf.eprintf "[equiv] refine -> %d classes\n%!"
            (List.length !classes);
        converge ~budget:(budget - 1))
  in
  if not (converge ~budget:refine_budget) then
    Unknown "candidate refinement exceeded its budget"
  else begin
  (* The refined classes are sound only if the power-on state satisfies
     them; discovery sampled the power-on state and refinement only
     splits classes, so this cannot fire. *)
  List.iter
    (fun c ->
      match c.members with
      | [] -> ()
      | rep :: rest ->
        let r = init_bit plan rep in
        if
          (match c.const with Some v -> r <> v | None -> false)
          || List.exists (fun m -> init_bit plan m <> r) rest
        then failwith "Equiv: invariant class false at the initial state")
    !classes;
  (* Phase B: outputs equal, given the proven invariants. *)
  if debug then
    Printf.eprintf "[equiv] induction closed with %d classes\n%!"
      (List.length !classes);
  let act = Solver.new_var solver in
  Solver.add_clause solver [ -act; out_viol ];
  let phase_b = solve ~assumptions:(act :: !selectors) solver in
  (if debug && phase_b = `Sat then begin
     List.iter
       (fun nm ->
         let va = Blast.model_bits solver (List.assoc nm fa.Blast.outputs)
         and vb = Blast.model_bits solver (List.assoc nm fb.Blast.outputs) in
         if not (Bits.equal va vb) then
           Printf.eprintf "[equiv] phase B: output %s a=%s b=%s\n%!" nm
             (Bits.to_string va) (Bits.to_string vb))
       plan.shared_outputs;
     let dump side st =
       Array.iteri
         (fun e lits ->
           Printf.eprintf "[equiv]   %s = %s\n%!"
             (dbg_side_bit (side, e, 0))
             (Bits.to_string (Blast.model_bits solver lits)))
         st
     in
     dump 0 st_a;
     dump 1 st_b
   end);
  match phase_b with
  | `Unsat -> Proved
  | `Sat when not with_fallback ->
    (* The caller will retry discovery with a longer simulation before
       paying for k-induction. *)
    Unknown "candidate induction left outputs undecided"
  | `Sat ->
    (* Fallback: k-induction on output equality, strengthened with the
       proven invariants (soundly assertable at every frame). The base
       case is the BMC sweep, so k may not exceed its depth. *)
    let invariants = !classes in
    let solver = register (Solver.create ()) in
    let assert_invariants st_a st_b =
      let lit (side, e, bit) =
        if side = 0 then st_a.(e).(bit) else st_b.(e).(bit)
      in
      List.iter
        (fun c ->
          match c.members with
          | [] -> ()
          | rep :: rest ->
            List.iter
              (fun m ->
                Solver.add_clause solver [ -lit rep; lit m ];
                Solver.add_clause solver [ lit rep; -lit m ])
              rest;
            (match c.const with
            | Some v ->
              Solver.add_clause solver [ (if v then lit rep else -lit rep) ]
            | None -> ()))
        invariants
    in
    let st_a = ref (free_state solver plan.elts_a) in
    let st_b = ref (free_state solver plan.elts_b) in
    assert_invariants !st_a !st_b;
    let diffs = ref [] in
    let proved = ref false in
    let k = ref 0 in
    let k_max = min max_induction bmc_depth in
    while (not !proved) && !k <= k_max do
      let _, fa, fb, diff = instantiate solver plan ~st_a:!st_a ~st_b:!st_b in
      st_a := fa.Blast.next;
      st_b := fb.Blast.next;
      assert_invariants !st_a !st_b;
      (* Assume equality at frames 0..k-1, require a difference at k. *)
      (match !diffs with
      | [] -> ()
      | earlier -> (
        let assumptions = diff :: List.map (fun d -> -d) earlier in
        match solve ~assumptions solver with
        | `Unsat -> proved := true
        | `Sat -> ()));
      diffs := diff :: !diffs;
      incr k
    done;
    if !proved then Proved
    else
      Unknown
        (Printf.sprintf
           "candidate induction left outputs undecided and k-induction gave \
            up at k=%d"
           k_max)
  end

(* --- Top level ----------------------------------------------------------- *)

let check ?(trace = Hwpat_obs.Trace.null) ?(metrics = Hwpat_obs.Metrics.null)
    ?(budget = Solver.no_budget) ?interrupt ?(bmc_depth = 24)
    ?(max_induction = 20) ?(sim_cycles = 48) a b =
  let module Trace = Hwpat_obs.Trace in
  let solvers = ref [] in
  let register s =
    solvers := s :: !solvers;
    s
  in
  (* Every solve call in the proof shares the per-call budget and the
     interrupt hook.  A budget trip raises [Out_of_budget], caught
     below and reported as an honest [Unknown]; an [interrupt] raise
     (e.g. a supervision watchdog) propagates untouched. *)
  let solve ~assumptions solver =
    match Solver.solve ~assumptions ~budget ?interrupt solver with
    | Solver.Sat -> `Sat
    | Solver.Unsat -> `Unsat
    | Solver.Unknown -> raise Out_of_budget
  in
  let body () =
    let plan = make_plan a b in
    let stateless =
      Array.length plan.elts_a = 0 && Array.length plan.elts_b = 0
    in
    let solver = register (Solver.create ()) in
    let sweep = bmc_sweep ~solve solver plan in
    let sweep ~depth =
      Trace.span trace "bmc_sweep"
        ~args:[ ("depth", Trace.Int depth) ]
        (fun () -> sweep ~depth)
    in
    (* A shallow sweep catches real divergences cheaply; the full-depth
       sweep only runs when induction cannot settle the question, because
       miter solves on equivalent designs get dramatically harder with
       unrolling depth. *)
    let shallow = if stateless then 1 else min bmc_depth 12 in
    match sweep ~depth:shallow with
    | Some cex -> confirm_cex plan cex
    | None ->
      if stateless then Proved
      else
        (* Candidate quality is limited by how much of the state space
           the random run visits; handshake-heavy designs need thousands
           of cycles before pointers and latches decorrelate. Escalate
           the simulation length before paying for the k-induction
           fallback, which can be exponentially more expensive than a
           longer (linear-cost) simulation. The k-induction base case is
           the shallow sweep, so its k is bounded by [shallow]. *)
        let schedule =
          [ sim_cycles; max 512 (8 * sim_cycles); max 2048 (32 * sim_cycles) ]
        in
        let discover sc =
          Trace.span trace "discover"
            ~args:[ ("sim_cycles", Trace.Int sc) ]
            (fun () -> discover_classes plan ~sim_cycles:sc)
        in
        let induction ~classes ~with_fallback ~refine_budget =
          Trace.span trace "induction" (fun () ->
              prove_by_induction plan ~solve ~register ~classes
                ~bmc_depth:shallow ~max_induction ~with_fallback
                ~refine_budget)
        in
        let rec attempt = function
          | [] -> assert false
          | [ last ] ->
            induction ~classes:(discover last) ~with_fallback:true
              ~refine_budget:max_int
          | sc :: rest -> (
            match
              induction ~classes:(discover sc) ~with_fallback:false
                ~refine_budget:24
            with
            | Proved -> Proved
            | Unknown _ -> attempt rest
            | Counterexample _ as r -> r)
        in
        (match attempt schedule with
        | Proved -> Proved
        | Counterexample _ as r -> r
        | Unknown why -> (
          (* Induction gave up: resume the sweep to the full requested
             depth in case a deeper concrete divergence exists. *)
          match sweep ~depth:bmc_depth with
          | Some cex -> confirm_cex plan cex
          | None -> Unknown why))
  in
  let body () =
    try body ()
    with Out_of_budget ->
      Unknown
        (Printf.sprintf
           "solver budget exhausted (max %d conflicts / %d propagations per \
            solve)"
           budget.Solver.max_conflicts budget.Solver.max_propagations)
  in
  Fun.protect
    ~finally:(fun () -> Solver_obs.record metrics !solvers)
    (fun () -> Trace.span trace "equiv" body)

let assert_equivalent ?bmc_depth ?max_induction a b =
  match check ?bmc_depth ?max_induction a b with
  | Proved -> ()
  | Counterexample cex ->
    failwith
      (Printf.sprintf "Equiv: %s and %s differ; counterexample:\n%s"
         (Circuit.name a) (Circuit.name b)
         (counterexample_to_string cex))
  | Unknown why ->
    failwith
      (Printf.sprintf "Equiv: could not decide %s vs %s (%s)"
         (Circuit.name a) (Circuit.name b) why)

let optimize ?(verify = false) c =
  if verify then
    Optimize.run ~verify:(fun pre post -> assert_equivalent pre post) c
  else Optimize.run c
