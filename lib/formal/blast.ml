(* Tseitin encoding of one time-frame of a circuit. Literal vectors
   are LSB-first. Gate constructors fold constants (the optimiser's
   output is full of them) so the CNF stays close to the live logic. *)

open Hwpat_rtl

type state_elt =
  | Reg_state of Signal.t
  | Read_state of Signal.t
  | Mem_word of Signal.memory * int

let state_elements circuit =
  let signals = Circuit.signals circuit in
  let regs =
    List.filter_map
      (fun s ->
        match Signal.prim s with Reg _ -> Some (Reg_state s) | _ -> None)
      signals
  in
  let reads =
    List.filter_map
      (fun s ->
        match Signal.prim s with
        | Mem_read_sync _ -> Some (Read_state s)
        | _ -> None)
      signals
  in
  let words =
    List.concat_map
      (fun m ->
        List.init (Signal.memory_size m) (fun i -> Mem_word (m, i)))
      (Circuit.memories circuit)
  in
  Array.of_list (regs @ reads @ words)

let elt_width = function
  | Reg_state s | Read_state s -> Signal.width s
  | Mem_word (m, _) -> Signal.memory_width m

let elt_init = function
  | Reg_state s -> (
    match Signal.prim s with
    | Reg { init; _ } -> init
    | _ -> assert false)
  | (Read_state _ | Mem_word _) as e -> Bits.zero (elt_width e)

let elt_label = function
  | Reg_state s -> (
    match Signal.names s with
    | n :: _ -> "reg " ^ n
    | [] -> Printf.sprintf "reg#%d" (Signal.uid s))
  | Read_state s -> (
    match Signal.names s with
    | n :: _ -> "read " ^ n
    | [] -> Printf.sprintf "read#%d" (Signal.uid s))
  | Mem_word (m, i) -> Printf.sprintf "%s[%d]" (Signal.memory_name m) i

let elt_key = function
  | Reg_state s -> (0, Signal.uid s, 0)
  | Read_state s -> (1, Signal.uid s, 0)
  | Mem_word (m, i) -> (2, Signal.memory_uid m, i)

(* --- Gate constructors --------------------------------------------------- *)

let tt s = Solver.true_lit s
let ff s = -(Solver.true_lit s)

let mk_and s a b =
  let t = tt s and f = ff s in
  if a = f || b = f then f
  else if a = t then b
  else if b = t then a
  else if a = b then a
  else if a = -b then f
  else begin
    let o = Solver.new_var s in
    Solver.add_clause s [ -o; a ];
    Solver.add_clause s [ -o; b ];
    Solver.add_clause s [ o; -a; -b ];
    o
  end

let mk_or s a b = -mk_and s (-a) (-b)

let xor2 s a b =
  let t = tt s and f = ff s in
  if a = f then b
  else if b = f then a
  else if a = t then -b
  else if b = t then -a
  else if a = b then f
  else if a = -b then t
  else begin
    let o = Solver.new_var s in
    Solver.add_clause s [ -o; a; b ];
    Solver.add_clause s [ -o; -a; -b ];
    Solver.add_clause s [ o; a; -b ];
    Solver.add_clause s [ o; -a; b ];
    o
  end

(* [c ? a : b] *)
let mk_mux s c a b =
  let t = tt s and f = ff s in
  if c = t then a
  else if c = f then b
  else if a = b then a
  else if a = t && b = f then c
  else if a = f && b = t then -c
  else begin
    let o = Solver.new_var s in
    Solver.add_clause s [ -c; -a; o ];
    Solver.add_clause s [ -c; a; -o ];
    Solver.add_clause s [ c; -b; o ];
    Solver.add_clause s [ c; b; -o ];
    o
  end

let and_list s = function
  | [] -> tt s
  | l :: rest -> List.fold_left (mk_and s) l rest

let or_list s = function
  | [] -> ff s
  | l :: rest -> List.fold_left (mk_or s) l rest

let constant s b =
  Array.init (Bits.width b) (fun i -> if Bits.bit b i then tt s else ff s)

let fresh_vector s w = Array.init w (fun _ -> Solver.new_var s)

let lits_equal s a b =
  if Array.length a <> Array.length b then
    invalid_arg "Blast.lits_equal: width mismatch";
  and_list s (Array.to_list (Array.map2 (fun x y -> -xor2 s x y) a b))

let model_bits s v =
  let w = Array.length v in
  Bits.of_string
    (String.init w (fun i -> if Solver.value s v.(w - 1 - i) then '1' else '0'))

(* Any-bit-set, matching [Bits.to_bool] on control inputs. *)
let bool_of_vec s v = or_list s (Array.to_list v)

(* Vector equals small constant [k] (false when [k] needs more bits
   than the vector has). *)
let eq_const s v k =
  let w = Array.length v in
  if w < Sys.int_size - 1 && k lsr w <> 0 then ff s
  else
    and_list s
      (List.init w (fun i ->
           if (k lsr i) land 1 = 1 then v.(i) else -v.(i)))

let full_adder s a b cin =
  let ab = xor2 s a b in
  let sum = xor2 s ab cin in
  let carry = mk_or s (mk_and s a b) (mk_and s cin ab) in
  (sum, carry)

let add_vec s ?cin a b =
  let w = Array.length a in
  let carry = ref (match cin with Some c -> c | None -> ff s) in
  Array.init w (fun i ->
      let sum, c = full_adder s a.(i) b.(i) !carry in
      carry := c;
      sum)

let sub_vec s a b = add_vec s ~cin:(tt s) a (Array.map (fun l -> -l) b)

let mul_vec s a b =
  let w = Array.length a in
  let acc = ref (Array.make w (ff s)) in
  for i = 0 to w - 1 do
    let pp =
      Array.init w (fun j -> if j < i then ff s else mk_and s a.(j - i) b.(i))
    in
    acc := add_vec s !acc pp
  done;
  !acc

(* Unsigned [a < b], LSB-up recurrence. *)
let lt_vec s a b =
  let w = Array.length a in
  let lt = ref (ff s) in
  for i = 0 to w - 1 do
    let bits_differ = xor2 s a.(i) b.(i) in
    lt := mk_mux s bits_differ (mk_and s (-a.(i)) b.(i)) !lt
  done;
  !lt

(* Mux with the out-of-range clamp of [Signal.mux_index]: the last case
   is the default, earlier cases override on an exact select match. *)
let mux_cases s sel cases =
  match List.rev cases with
  | [] -> invalid_arg "Blast: empty mux"
  | last :: rev_rest ->
    let n = List.length cases in
    let result = ref last in
    List.iteri
      (fun j case ->
        let i = n - 2 - j in
        let hit = eq_const s sel i in
        result := Array.map2 (fun t f -> mk_mux s hit t f) case !result)
      rev_rest;
    !result

(* --- Frame --------------------------------------------------------------- *)

type frame = {
  value : Signal.t -> Solver.lit array;
  outputs : (string * Solver.lit array) list;
  next : Solver.lit array array;
}

let frame solver circuit ~inputs ~state =
  let elts = state_elements circuit in
  let pos = Hashtbl.create 97 in
  Array.iteri (fun i e -> Hashtbl.replace pos (elt_key e) i) elts;
  let state_of e = state (Hashtbl.find pos (elt_key e)) in
  let values : (int, Solver.lit array) Hashtbl.t = Hashtbl.create 997 in
  let get s =
    match Hashtbl.find_opt values (Signal.uid s) with
    | Some v -> v
    | None ->
      invalid_arg
        (Printf.sprintf "Blast.frame: signal #%d evaluated out of order"
           (Signal.uid s))
  in
  (* Read of a memory's pre-edge contents: out-of-range reads zero. *)
  let read_mem m addr =
    let width = Signal.memory_width m in
    let result = ref (constant solver (Bits.zero width)) in
    for i = Signal.memory_size m - 1 downto 0 do
      let word = state_of (Mem_word (m, i)) in
      let hit = eq_const solver addr i in
      result := Array.map2 (fun t f -> mk_mux solver hit t f) word !result
    done;
    !result
  in
  let encode s =
    match Signal.prim s with
    | Const b -> constant solver b
    | Input name -> (
      let v = inputs name in
      if Array.length v <> Signal.width s then
        invalid_arg (Printf.sprintf "Blast.frame: input %s width mismatch" name);
      v)
    | Op2 (op, a, b) -> (
      let a = get a and b = get b in
      match op with
      | Signal.Add -> add_vec solver a b
      | Signal.Sub -> sub_vec solver a b
      | Signal.Mul -> mul_vec solver a b
      | Signal.And -> Array.map2 (mk_and solver) a b
      | Signal.Or -> Array.map2 (mk_or solver) a b
      | Signal.Xor -> Array.map2 (xor2 solver) a b
      | Signal.Eq -> [| lits_equal solver a b |]
      | Signal.Lt -> [| lt_vec solver a b |])
    | Not a -> Array.map (fun l -> -l) (get a)
    | Concat parts ->
      (* MSB first in the netlist; LSB-first vectors here. *)
      Array.concat (List.rev_map get parts)
    | Select { src; high; low } -> Array.sub (get src) low (high - low + 1)
    | Mux { select; cases } ->
      mux_cases solver (get select) (List.map get cases)
    | Reg _ -> state_of (Reg_state s)
    | Mem_read_sync _ -> state_of (Read_state s)
    | Mem_read_async { memory; addr } -> read_mem memory (get addr)
    | Wire { driver = Some d } -> get d
    | Wire { driver = None } -> invalid_arg "Blast.frame: undriven wire"
  in
  List.iter
    (fun s -> Hashtbl.replace values (Signal.uid s) (encode s))
    (Circuit.signals circuit);
  let control opt ~default =
    match opt with Some c -> bool_of_vec solver (get c) | None -> default
  in
  let next =
    Array.map
      (fun e ->
        let cur = state_of e in
        match e with
        | Reg_state s -> (
          match Signal.prim s with
          | Reg { d; enable; clear; clear_to; init = _ } ->
            let dl = get d in
            let en = control enable ~default:(tt solver) in
            let cl = control clear ~default:(ff solver) in
            let ct = constant solver clear_to in
            Array.init (Array.length cur) (fun i ->
                mk_mux solver cl ct.(i)
                  (mk_mux solver en dl.(i) cur.(i)))
          | _ -> assert false)
        | Read_state s -> (
          match Signal.prim s with
          | Mem_read_sync { memory; addr; enable } ->
            let en = control enable ~default:(tt solver) in
            let now = read_mem memory (get addr) in
            Array.init (Array.length cur) (fun i ->
                mk_mux solver en now.(i) cur.(i))
          | _ -> assert false)
        | Mem_word (m, w) ->
          (* Write ports in attachment order; a later matching port
             overwrites an earlier one (the Cyclesim rule). *)
          List.fold_left
            (fun acc (en, addr, data) ->
              let hit =
                mk_and solver
                  (bool_of_vec solver (get en))
                  (eq_const solver (get addr) w)
              in
              Array.map2 (fun d a -> mk_mux solver hit d a) (get data) acc)
            cur
            (Signal.memory_write_ports m))
      elts
  in
  let outputs =
    List.map (fun (name, s) -> (name, get s)) (Circuit.outputs circuit)
  in
  { value = get; outputs; next }
