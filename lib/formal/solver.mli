(** A self-contained CDCL SAT solver.

    Pure OCaml, no external dependencies: conflict-driven clause
    learning with two-watched-literal propagation, first-UIP learning,
    VSIDS-style activity branching, phase saving and geometric
    restarts. Small by design — the instances the formal layer
    produces (miters of structurally similar netlists plus candidate
    invariants) are propagation-dominated, so the classic algorithm
    with no clause-database reduction is plenty.

    Literals follow the DIMACS convention: a variable is a positive
    integer and its negation is the negative integer. The solver is
    incremental: clauses may be added between [solve] calls and
    [solve ~assumptions] checks satisfiability under a temporary set of
    unit assumptions without committing them. *)

type t

type lit = int
(** Non-zero; [-l] is the negation of [l]. *)

type result = Sat | Unsat | Unknown
(** [Unknown]: the solve call exhausted its {!budget} before deciding.
    Never returned without a budget. *)

type budget = { max_conflicts : int; max_propagations : int }
(** Per-[solve]-call caps on solver work; a cap of 0 (or negative)
    means unlimited.  The caps count operations, not wall clock, so a
    budget-limited solve is deterministic: the same instance trips (or
    completes) at exactly the same point in every run, process and job
    count. *)

val no_budget : budget
(** Both caps unlimited (the default). *)

(** {1 Search-strategy configuration}

    The portfolio racer knobs.  Every field is deterministic — restart
    pacing and activity decay are exact arithmetic on operation counts,
    never wall clock — so a given (instance, config) pair replays the
    same search in every run, process and job count. *)
type config = {
  restart_base : int;  (** conflicts before the first restart *)
  restart_factor : float;  (** geometric growth of the restart interval *)
  decay : float;  (** VSIDS activity decay (var bump divisor), in (0,1] *)
  init_phase : bool;  (** initial saved phase of every variable *)
}

val default_config : config
(** [{restart_base = 100; restart_factor = 1.5; decay = 0.95;
    init_phase = false}] — the historical behaviour. *)

val create : ?config:config -> unit -> t

val new_var : t -> lit
(** Fresh variable, returned as its positive literal. *)

val true_lit : t -> lit
(** A literal constrained true in every model (for constant folding in
    encoders). Its negation is constant false. *)

val add_clause : t -> lit list -> unit
(** Add a clause over existing literals. Tautologies are dropped;
    an empty (or all-false-at-level-0) clause makes the formula
    unsatisfiable for all future [solve] calls.  Inside an open
    {!push} scope the clause is scoped: it participates in every
    [solve] until the scope is popped, then disappears. *)

(** {1 Assumption scopes (push/pop-style incremental solving)}

    [push] opens a scope; clauses added while it is open are guarded
    by a fresh activation literal that every [solve] call assumes
    automatically, and [pop] retires them for good by asserting the
    literal's negation.  Clauses {e learned} while a scope is open
    inherit the guard through conflict analysis, so popping a scope
    soundly retires the lemmas that depended on it while every lemma
    derived from unguarded clauses is retained — the mechanism by
    which the BMC-sweep → candidate-induction → k-induction ladder
    shares one solver and keeps its accumulated clauses across
    stages.  Scopes nest and pop in LIFO order. *)

val push : t -> unit
val pop : t -> unit
(** Raises [Invalid_argument] with no open scope. *)

val scope_depth : t -> int
(** Number of currently open scopes. *)

val solve :
  ?assumptions:lit list -> ?budget:budget -> ?interrupt:(unit -> unit) -> t -> result
(** Decide satisfiability of the added clauses, under the given
    temporary assumptions (each forced true for this call only).

    [budget] bounds the work of this call; on exhaustion the solver
    backtracks to level 0 and returns [Unknown] (the solver stays
    usable for further [add_clause]/[solve] calls).  [interrupt] is
    polled once per search-loop iteration and may raise to abandon the
    call — the hook for {!Hwpat_core.Supervise}-style wall-clock
    watchdogs; after an interrupt raise the solver is still usable
    (the next call backtracks to level 0 first). *)

val value : t -> lit -> bool
(** Model value of a literal after a [Sat] answer. Unconstrained
    variables read as false. *)

val num_vars : t -> int
val num_clauses : t -> int

val num_conflicts : t -> int
(** Total conflicts across all [solve] calls (a work measure). *)

(** {1 Search statistics} *)

type stats = {
  decisions : int;  (** branching decisions *)
  propagations : int;  (** unit propagations (implied enqueues) *)
  conflicts : int;  (** same counter as {!num_conflicts} *)
  restarts : int;  (** geometric restarts taken *)
  unknowns : int;  (** solve calls that gave up on budget exhaustion *)
  learned_clauses : int;  (** non-unit learned clauses recorded *)
  learned_literals : int;  (** total literals across learned clauses *)
  learned_size_buckets : int array;
      (** learned-clause sizes in log2 buckets (index 0 unused, index
          [k >= 1] counts sizes in [2^(k-1) .. 2^k - 1]) — the exact
          [Hwpat_obs.Metrics.bucket_of] convention, including the
          bucket count and the clamp into the last bucket, so merging
          into a metrics histogram is index-for-index correct *)
}

val stats : t -> stats
(** Cumulative across all [solve] calls on this solver (a copy). *)

val size_bucket : int -> int
(** The bucket of {!stats.learned_size_buckets} a given size counts
    into.  Must agree with [Hwpat_obs.Metrics.bucket_of] on every
    input (pinned by a cross-library regression test); exposed so the
    agreement is testable without reflection on private state. *)
