(** A self-contained CDCL SAT solver.

    Pure OCaml, no external dependencies: conflict-driven clause
    learning with two-watched-literal propagation, first-UIP learning,
    VSIDS-style activity branching, phase saving and geometric
    restarts. Small by design — the instances the formal layer
    produces (miters of structurally similar netlists plus candidate
    invariants) are propagation-dominated, so the classic algorithm
    with no clause-database reduction is plenty.

    Literals follow the DIMACS convention: a variable is a positive
    integer and its negation is the negative integer. The solver is
    incremental: clauses may be added between [solve] calls and
    [solve ~assumptions] checks satisfiability under a temporary set of
    unit assumptions without committing them. *)

type t

type lit = int
(** Non-zero; [-l] is the negation of [l]. *)

type result = Sat | Unsat | Unknown
(** [Unknown]: the solve call exhausted its {!budget} before deciding.
    Never returned without a budget. *)

type budget = { max_conflicts : int; max_propagations : int }
(** Per-[solve]-call caps on solver work; a cap of 0 (or negative)
    means unlimited.  The caps count operations, not wall clock, so a
    budget-limited solve is deterministic: the same instance trips (or
    completes) at exactly the same point in every run, process and job
    count. *)

val no_budget : budget
(** Both caps unlimited (the default). *)

val create : unit -> t

val new_var : t -> lit
(** Fresh variable, returned as its positive literal. *)

val true_lit : t -> lit
(** A literal constrained true in every model (for constant folding in
    encoders). Its negation is constant false. *)

val add_clause : t -> lit list -> unit
(** Add a clause over existing literals. Tautologies are dropped;
    an empty (or all-false-at-level-0) clause makes the formula
    unsatisfiable for all future [solve] calls. *)

val solve :
  ?assumptions:lit list -> ?budget:budget -> ?interrupt:(unit -> unit) -> t -> result
(** Decide satisfiability of the added clauses, under the given
    temporary assumptions (each forced true for this call only).

    [budget] bounds the work of this call; on exhaustion the solver
    backtracks to level 0 and returns [Unknown] (the solver stays
    usable for further [add_clause]/[solve] calls).  [interrupt] is
    polled once per search-loop iteration and may raise to abandon the
    call — the hook for {!Hwpat_core.Supervise}-style wall-clock
    watchdogs; after an interrupt raise the solver is still usable
    (the next call backtracks to level 0 first). *)

val value : t -> lit -> bool
(** Model value of a literal after a [Sat] answer. Unconstrained
    variables read as false. *)

val num_vars : t -> int
val num_clauses : t -> int

val num_conflicts : t -> int
(** Total conflicts across all [solve] calls (a work measure). *)

(** {1 Search statistics} *)

type stats = {
  decisions : int;  (** branching decisions *)
  propagations : int;  (** unit propagations (implied enqueues) *)
  conflicts : int;  (** same counter as {!num_conflicts} *)
  restarts : int;  (** geometric restarts taken *)
  unknowns : int;  (** solve calls that gave up on budget exhaustion *)
  learned_clauses : int;  (** non-unit learned clauses recorded *)
  learned_literals : int;  (** total literals across learned clauses *)
  learned_size_buckets : int array;
      (** learned-clause sizes in log2 buckets (index 0 unused, index
          [k >= 1] counts sizes in [2^(k-1) .. 2^k - 1], last bucket
          clamps) — mergeable into [Hwpat_obs.Metrics] histograms,
          which use the same convention *)
}

val stats : t -> stats
(** Cumulative across all [solve] calls on this solver (a copy). *)
