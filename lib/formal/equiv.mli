open Hwpat_rtl

(** SAT-based equivalence checking of two circuits.

    Ports are matched by name. Input ports that exist in only one of
    the two circuits are constrained to zero — the convention under
    which a pruned variant (unused request ports tied to ground before
    optimisation) is compared against the full model on the retained
    interface. Output ports present in both circuits must agree;
    outputs exclusive to one side are ignored.

    Combinational circuits are checked with a single-frame miter.
    Sequential circuits are checked by (1) bounded search for a
    counterexample from the power-on state, then (2) proof by candidate
    equivalence induction in the style of van Eijk: random simulation
    groups state bits (registers, synchronous-read latches, memory
    words) of both circuits into candidate equality/constant classes,
    and an incremental induction loop drops candidates that fail their
    own induction step until the surviving set is closed; output
    equality is then checked relative to those proven invariants, with
    plain k-induction as a last resort. This is complete for the
    structural rewrites {!Optimize} performs; [Unknown] is possible for
    circuits that are equal for deeper reasons.

    Every counterexample is replayed through {!Cyclesim} before being
    reported; a divergence the simulator cannot reproduce raises
    (it would mean the encoding disagrees with the simulator). *)

type result =
  | Proved
  | Counterexample of (string * Bits.t) list list
      (** One input assignment per cycle (cycle 0 first) driving the
          matched circuits to differing outputs on the last cycle. *)
  | Unknown of string  (** not decided; the string says how far we got *)

val check :
  ?trace:Hwpat_obs.Trace.t ->
  ?metrics:Hwpat_obs.Metrics.t ->
  ?budget:Solver.budget ->
  ?interrupt:(unit -> unit) ->
  ?bmc_depth:int ->
  ?max_induction:int ->
  ?sim_cycles:int ->
  ?strash:bool ->
  ?solver_config:Solver.config ->
  Circuit.t ->
  Circuit.t ->
  result
(** Defaults: [bmc_depth = 24] (counterexample search bound, and the
    base-case bound for k-induction), [max_induction = 20],
    [sim_cycles = 48] (random-simulation length for candidate
    discovery).

    [strash] (default [true]) builds every time frame through the
    hash-consed {!Strash} form, so structure the two sides share —
    dissolved wrappers over the same metamodel config, repeated
    subcircuits within one side — is encoded once and only the cones
    some constraint actually reaches are blasted; [false] keeps the
    legacy per-occurrence {!Blast} encoding (the differential suite
    pins verdict equality between the two).  Either way one solver
    carries the whole check, so clauses learned during the BMC sweep
    prune the induction and so on down the ladder.

    [solver_config] (default {!Solver.default_config}) sets the
    search strategy of that solver — the portfolio racer knob.

    [budget] (default unlimited) caps every individual solve call in
    the proof; on exhaustion the check stops and returns an honest
    [Unknown] rather than running unboundedly.  The caps count solver
    operations, so a budget trip is deterministic — the same pair
    trips at the same point in every run.  [interrupt] is polled from
    inside SAT search and may raise to abandon the check (the hook for
    supervision watchdogs); its exception propagates to the caller.

    [trace] (default disabled) records spans for the proof phases
    ([equiv] > [bmc_sweep] / [discover] / [induction]); [metrics]
    (default disabled) accumulates the SAT statistics of every solver
    the call created under [solver.*] (see {!Solver.stats}).  Stats
    are recorded when the check completes — normally or by raising
    from its own body — but {e not} when the [interrupt] hook aborts
    it: an aborted check is one a supervisor retries, and recording
    the partial attempt would double-count its work against the
    retry's own record (each solver instance must merge exactly
    once). *)

val counterexample_to_string : (string * Bits.t) list list -> string

val assert_equivalent :
  ?bmc_depth:int -> ?max_induction:int -> Circuit.t -> Circuit.t -> unit
(** Raises [Failure] with a readable message (including the replayed
    counterexample, if any) unless [check] returns [Proved]. *)

val optimize : ?verify:bool -> Circuit.t -> Circuit.t
(** [Optimize.run] with the SAT checker plugged into its [verify]
    hook: when [verify] is true (default false), proves the optimised
    circuit equivalent to the original and raises otherwise. *)
