(** Deterministic solver-portfolio plumbing.

    A portfolio race runs the same obligation under 2–4 solver
    configurations ({!racers}) through an escalating ladder of
    operation-count budgets ({!rounds}).  Because the budgets count
    solver operations — never wall clock — whether a given racer
    answers within a given round is a pure function of the obligation,
    so "first answer wins, ties broken by (round, racer index)" names
    the same winner in every run, at every job count, under any
    scheduler.  The racing driver itself lives with the prove battery
    (it needs the parallel runner from the layer above); this module
    holds the pure ingredients. *)

type racer = { index : int; label : string; config : Solver.config }

val max_racers : int

val racers : n:int -> racer list
(** The first [n] standard racers, [2 <= n <= max_racers] (raises
    [Invalid_argument] otherwise).  Racer 0 is always
    {!Solver.default_config}, so a portfolio decides everything the
    single-solver path decides and its answers win ties. *)

val rounds : cap:Solver.budget -> Solver.budget list
(** The budget ladder, ending unlimited when [cap] is {!Solver.no_budget}
    and at exactly [cap] otherwise (intermediate rounds strictly
    lighter than the cap only) — so a capped portfolio's final-round
    verdicts are literally the single-solver ones, "budget exhausted"
    Unknowns included. *)

val budget_limited : string -> bool
(** Whether an [Unknown] status string means "ran out of this round's
    budget" (indefinitive — retry at the next rung) rather than a
    config-independent structural give-up (definitive). *)

exception Beaten
(** Raised from a racer's interrupt hook when it can no longer win the
    race.  Purely an optimization: the eventual winner never raises. *)
