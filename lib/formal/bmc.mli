open Hwpat_rtl

(** Bounded model checking of safety properties over a circuit.

    Properties are single-bit "bad" signals built on top of the
    circuit's own graph: a violation is a reachable cycle in which a
    bad signal settles to 1 under some input sequence from the power-on
    state. {!derive_properties} compiles the library's runtime protocol
    monitors ({!Monitor.add_auto}'s naming conventions) into such bad
    signals, so the same invariants that are spot-checked in simulation
    can be proven exhaustively to a bound, or refuted with a concrete
    input trace.

    Reported violations are replayed through {!Cyclesim} with a real
    {!Monitor} attached before being returned; a trace the monitor does
    not flag raises (it would mean the property compilation or the
    encoding is wrong). *)

type property = { name : string; bad : Signal.t }
(** [bad] must be 1 bit wide and live on the circuit's signal graph. *)

val derive_properties : Circuit.t -> property list
(** Mirror of {!Monitor.add_auto}: for every [X_req]/[X_ack] signal
    pair, "ack asserted with no request pending" and "request dropped
    before acknowledge"; for every [X_count]/[X_empty] pair (plus
    [X_full] when present), "empty flag inconsistent with count",
    "full and empty asserted together", and "occupancy stepped by more
    than one". History registers (previous-cycle values) are built into
    the property logic. *)

type violation = {
  property : string;
  at : int;  (** cycle index of the first violated frame *)
  trace : (string * Bits.t) list list;
      (** one input assignment per cycle, 0 .. [at] *)
}

type result =
  | Holds of int  (** no violation up to this depth *)
  | Violation of violation
  | Unknown of string
      (** the solver budget ran out before the search finished; the
          string records how many frames were fully searched *)

val check :
  ?trace:Hwpat_obs.Trace.t ->
  ?metrics:Hwpat_obs.Metrics.t ->
  ?budget:Solver.budget ->
  ?interrupt:(unit -> unit) ->
  ?depth:int ->
  ?strash:bool ->
  ?solver_config:Solver.config ->
  Circuit.t ->
  property list ->
  result
(** Unroll from the power-on state and search each frame for a
    violated property. Default [depth = 20] frames.  [strash] (default
    [true]) encodes frames through the hash-consed {!Strash} form
    (structure repeated across the unrolling is blasted once);
    [solver_config] sets the solver's search strategy (the portfolio
    racer knob).  [budget] (default unlimited) caps each per-frame
    solve; on exhaustion the result is an honest [Unknown] —
    deterministically, since the caps count solver operations rather
    than wall clock.  [interrupt] is polled from inside SAT search and
    may raise to abandon the check.  [trace] records one [bmc] span;
    [metrics] accumulates the solver's statistics under [solver.*]
    (see {!Solver.stats}) when the check completes — but {e not} when
    the [interrupt] hook aborts it, so a supervisor's retry cannot
    double-merge the aborted attempt's partial counts. *)

val check_auto :
  ?trace:Hwpat_obs.Trace.t ->
  ?metrics:Hwpat_obs.Metrics.t ->
  ?budget:Solver.budget ->
  ?interrupt:(unit -> unit) ->
  ?depth:int ->
  ?strash:bool ->
  ?solver_config:Solver.config ->
  Circuit.t ->
  result
(** [check] over [derive_properties]; raises [Invalid_argument] if the
    circuit has no monitored signal pairs at all (a vacuous proof). *)
