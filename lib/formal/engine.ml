(* The frame builders over one literal vocabulary, so the proof
   procedures (Equiv, Bmc) are written once and switch between the
   hash-consed Strash form and the legacy per-occurrence Blast
   encoding with a flag. *)

open Hwpat_rtl

type t = {
  solver : Solver.t;
  fresh_vector : int -> int array;
  constant : Bits.t -> int array;
  enot : int -> int;
  exor : int -> int -> int;
  eor_list : int list -> int;
  eq_vec : int array -> int array -> int;
  model_bits : int array -> Bits.t;
  lit_value : int -> bool;
  sl : int -> Solver.lit;
  frame :
    Circuit.t ->
    inputs:(string -> int array) ->
    state:(int -> int array) ->
    (string * int array) list * int array array;
}

let blast solver =
  {
    solver;
    fresh_vector = Blast.fresh_vector solver;
    constant = Blast.constant solver;
    enot = (fun l -> -l);
    exor = Blast.xor2 solver;
    eor_list = Blast.or_list solver;
    eq_vec = Blast.lits_equal solver;
    model_bits = Blast.model_bits solver;
    lit_value = Solver.value solver;
    sl = Fun.id;
    frame =
      (fun c ~inputs ~state ->
        let f = Blast.frame solver c ~inputs ~state in
        (f.Blast.outputs, f.Blast.next));
  }

let strash solver =
  let t = Strash.create solver in
  {
    solver;
    fresh_vector = Strash.fresh_vector t;
    constant = Strash.constant t;
    enot = Strash.snot;
    exor = Strash.sxor t;
    eor_list = (fun ls -> Strash.or_list t ls);
    eq_vec = Strash.lits_equal t;
    model_bits = Strash.model_bits t;
    lit_value = Strash.value t;
    sl = Strash.to_solver_lit t;
    frame =
      (fun c ~inputs ~state ->
        let f = Strash.frame t c ~inputs ~state in
        (f.Strash.outputs, f.Strash.next));
  }

let make ~strash:use_strash solver =
  if use_strash then strash solver else blast solver
