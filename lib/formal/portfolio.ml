(* Deterministic solver-portfolio plumbing: the racer configurations,
   the escalating budget ladder, and the result classification.  The
   actual racing driver lives with the prove battery (it needs the
   parallel runner, which layers above this library); everything here
   is pure so the driver's outcome is a function of the obligation
   alone, never of scheduling. *)

type racer = { index : int; label : string; config : Solver.config }

(* Racer 0 is always the default configuration, so a portfolio of n
   racers decides everything the single-solver path decides (and its
   answers win ties).  The others vary the restart pacing, the
   activity decay and the initial phase — cheap knobs that change
   which part of the search space is visited first, which is what a
   portfolio lives on. *)
let all_racers =
  [
    { index = 0; label = "default"; config = Solver.default_config };
    {
      index = 1;
      label = "agile";
      config =
        {
          Solver.restart_base = 50;
          restart_factor = 1.2;
          decay = 0.90;
          init_phase = false;
        };
    };
    {
      index = 2;
      label = "stable";
      config =
        {
          Solver.restart_base = 400;
          restart_factor = 2.0;
          decay = 0.99;
          init_phase = false;
        };
    };
    {
      index = 3;
      label = "flip";
      config =
        {
          Solver.restart_base = 100;
          restart_factor = 1.5;
          decay = 0.95;
          init_phase = true;
        };
    };
  ]

let max_racers = List.length all_racers

let racers ~n =
  if n < 2 || n > max_racers then
    invalid_arg
      (Printf.sprintf "Portfolio.racers: n must be 2..%d (got %d)" max_racers n);
  List.filteri (fun i _ -> i < n) all_racers

(* The budget ladder.  Rounds cap solver *operations*, so whether a
   racer answers within a round is a property of the instance and the
   config — every run, process and job count trips identically.  With
   no user cap the ladder ends unlimited (round 2 always answers);
   with a user cap the ladder is truncated to rounds strictly lighter
   than the cap and ends at exactly the cap, so the portfolio's
   final-round verdicts — including "budget exhausted" Unknowns — are
   literally the single-solver ones. *)
let default_rounds =
  [
    { Solver.max_conflicts = 20_000; max_propagations = 10_000_000 };
    { Solver.max_conflicts = 160_000; max_propagations = 80_000_000 };
    Solver.no_budget;
  ]

let field_lighter a b = a > 0 && (b <= 0 || a < b)

let lighter (r : Solver.budget) (cap : Solver.budget) =
  field_lighter r.Solver.max_conflicts cap.Solver.max_conflicts
  && field_lighter r.Solver.max_propagations cap.Solver.max_propagations

let unlimited (b : Solver.budget) =
  b.Solver.max_conflicts <= 0 && b.Solver.max_propagations <= 0

let rounds ~cap =
  if unlimited cap then default_rounds
  else
    List.filter (fun r -> lighter r cap && not (unlimited r)) default_rounds
    @ [ cap ]

(* An Unknown whose status carries this marker means "ran out of this
   round's budget" — indefinitive, retry at the next rung.  Any other
   verdict (proved, refuted, or an Unknown for structural reasons like
   k-induction giving up) is config-independent, so the first racer to
   reach it ends the race. *)
let budget_marker = "solver budget exhausted"

let budget_limited status =
  let sl = String.length status and ml = String.length budget_marker in
  let rec scan i =
    i + ml <= sl && (String.sub status i ml = budget_marker || scan (i + 1))
  in
  scan 0

exception Beaten
(** Raised from a racer's interrupt hook when a strictly better
    (earlier-round or lower-index) racer has already produced a
    definitive answer — this racer can no longer win, so its search is
    abandoned.  Only an optimization: the winner, by construction,
    never raises it. *)
