open Hwpat_rtl
open Hwpat_rtl.Signal

(* A deterministic random circuit builder. Produces a pool of signals
   of mixed widths, combining inputs, constants, operators, muxes,
   selects/concats and registers, then picks a few outputs. Moved
   verbatim from the random-circuit test suite so the prove campaign
   covers the same space; the seeded behaviour must not change. *)
let build_random_circuit ~seed =
  let rng = Random.State.make [| seed |] in
  let rand n = Random.State.int rng n in
  let widths = [| 1; 2; 3; 4; 8 |] in
  let random_width () = widths.(rand (Array.length widths)) in
  let inputs = ref [] in
  let input_counter = ref 0 in
  let new_input w =
    incr input_counter;
    let name = Printf.sprintf "in%d" !input_counter in
    let s = input name w in
    inputs := (name, w) :: !inputs;
    s
  in
  let pool = ref [] in
  let add s = pool := s :: !pool in
  (* Seed the pool. *)
  for _ = 1 to 4 do
    add (new_input (random_width ()))
  done;
  add (of_int ~width:8 (rand 256));
  add (of_int ~width:1 (rand 2));
  add vdd;
  add gnd;
  let pick () = List.nth !pool (rand (List.length !pool)) in
  let pick_width w =
    (* Find one of width w or adapt one. *)
    match List.find_opt (fun s -> width s = w) !pool with
    | Some s when rand 2 = 0 -> s
    | _ -> uresize (pick ()) w
  in
  for _ = 1 to 30 + rand 40 do
    let node =
      match rand 10 with
      | 0 ->
        let a = pick () in
        let b = pick_width (width a) in
        a +: b
      | 1 ->
        let a = pick () in
        a -: pick_width (width a)
      | 2 ->
        let a = pick () in
        a &: pick_width (width a)
      | 3 ->
        let a = pick () in
        a |: pick_width (width a)
      | 4 ->
        let a = pick () in
        a ^: pick_width (width a)
      | 5 -> ~:(pick ())
      | 6 ->
        let a = pick () in
        uresize (a ==: pick_width (width a)) (random_width ())
      | 7 ->
        let sel = pick_width 1 in
        let a = pick () in
        mux2 sel a (pick_width (width a))
      | 8 ->
        let a = pick () in
        let hi = rand (width a) in
        let lo = rand (hi + 1) in
        uresize (select a ~high:hi ~low:lo) (random_width ())
      | _ ->
        let d = pick () in
        let enable = if rand 2 = 0 then Some (pick_width 1) else None in
        let clear = if rand 3 = 0 then Some (pick_width 1) else None in
        let init = Bits.of_int ~width:(width d) (rand 200) in
        reg ?enable ?clear ~init d
    in
    add node
  done;
  let n_outputs = 2 + rand 3 in
  let outputs =
    List.init n_outputs (fun i -> (Printf.sprintf "out%d" i, pick ()))
  in
  (Circuit.create_exn ~name:(Printf.sprintf "rand%d" seed) outputs, !inputs)
