open Hwpat_obs

let record metrics solvers =
  List.iter
    (fun s ->
      let st = Solver.stats s in
      Metrics.incr metrics ~by:st.Solver.decisions "solver.decisions";
      Metrics.incr metrics ~by:st.Solver.propagations "solver.propagations";
      Metrics.incr metrics ~by:st.Solver.conflicts "solver.conflicts";
      Metrics.incr metrics ~by:st.Solver.restarts "solver.restarts";
      Metrics.incr metrics ~by:st.Solver.unknowns "solver.unknowns";
      Metrics.incr metrics ~by:st.Solver.learned_clauses
        "solver.learned_clauses";
      Metrics.add_histogram metrics "solver.learned_clause_size"
        ~count:st.Solver.learned_clauses ~sum:st.Solver.learned_literals
        st.Solver.learned_size_buckets)
    solvers
