open Hwpat_rtl

(** A frame-encoding engine: the operations {!Equiv} and {!Bmc} need,
    over one abstract literal vocabulary (plain [int]s — {!Strash}
    edges for the hash-consed engine, {!Solver.lit}s for the legacy
    {!Blast} one).  Engine literals enter the solver only through
    {!sl}, which for the strash engine is the point of lazy CNF
    emission. *)

type t = {
  solver : Solver.t;
  fresh_vector : int -> int array;
  constant : Bits.t -> int array;
  enot : int -> int;  (** negation in the engine's vocabulary *)
  exor : int -> int -> int;
  eor_list : int list -> int;
  eq_vec : int array -> int array -> int;
      (** one literal: the two equal-width vectors are equal *)
  model_bits : int array -> Bits.t;
      (** vector value after a [Sat] answer *)
  lit_value : int -> bool;
  sl : int -> Solver.lit;
      (** convert to a solver literal for clauses and assumptions *)
  frame :
    Circuit.t ->
    inputs:(string -> int array) ->
    state:(int -> int array) ->
    (string * int array) list * int array array;
      (** one time frame: (outputs, next state) —
          {!Blast.frame} semantics either way *)
}

val blast : Solver.t -> t
val strash : Solver.t -> t

val make : strash:bool -> Solver.t -> t
(** {!strash} when the flag is set, {!blast} otherwise. *)
