open Hwpat_rtl

type t = {
  sim : Cyclesim.t;
  valid_port : string;
  data_port : string;
  ready_port : string;
  ready_every : int;
  mutable tick : int;
  mutable captured : int list; (* newest first *)
}

let create ?(valid_port = "out_valid") ?(data_port = "out_data")
    ?(ready_port = "out_ready") ?(ready_every = 1) sim () =
  if ready_every < 1 then invalid_arg "Vga_sink.create: ready_every must be >= 1";
  { sim; valid_port; data_port; ready_port; ready_every; tick = 0; captured = [] }

let drive t =
  if t.ready_port <> "" then begin
    let ready = t.tick mod t.ready_every = 0 in
    Cyclesim.drive t.sim t.ready_port (Bits.of_bool ready)
  end;
  t.tick <- t.tick + 1

let observe t =
  if Bits.to_bool !(Cyclesim.out_port t.sim t.valid_port) then
    t.captured <-
      Bits.to_int !(Cyclesim.out_port t.sim t.data_port) :: t.captured

let collected t = List.rev t.captured
let count t = List.length t.captured

let to_frame t ~width ~height ~depth =
  Frame.of_row_major ~width ~height ~depth (collected t)

let clear t =
  t.captured <- [];
  t.tick <- 0
