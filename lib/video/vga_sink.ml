open Hwpat_rtl

type t = {
  sim : Cyclesim.t;
  valid_port : string;
  data_port : string;
  ready_port : string;
  ready_every : int;
  mutable tick : int;
  mutable captured : int list; (* newest first *)
}

let create ?(valid_port = "out_valid") ?(data_port = "out_data")
    ?(ready_port = "out_ready") ?(ready_every = 1) sim () =
  if ready_every < 1 then invalid_arg "Vga_sink.create: ready_every must be >= 1";
  { sim; valid_port; data_port; ready_port; ready_every; tick = 0; captured = [] }

let drive t =
  if t.ready_port <> "" then begin
    let ready = t.tick mod t.ready_every = 0 in
    Cyclesim.drive t.sim t.ready_port (Bits.of_bool ready)
  end;
  t.tick <- t.tick + 1

let observe t =
  if Bits.to_bool !(Cyclesim.out_port t.sim t.valid_port) then
    t.captured <-
      Bits.to_int !(Cyclesim.out_port t.sim t.data_port) :: t.captured

let collected t = List.rev t.captured
let count t = List.length t.captured

let to_frame t ~width ~height ~depth =
  Frame.of_row_major ~width ~height ~depth (collected t)

let clear t =
  t.captured <- [];
  t.tick <- 0

(* Plane-level variant over a whole batch: one valid-plane read per
   cycle, with per-lane extraction only for the lanes that pulsed
   valid. Per lane and cycle the ready waveform and captured words are
   exactly the scalar [drive]/[observe] above. *)
module Batch = struct
  type bt = {
    sb : Simbatch.t;
    valid_out : int;
    valid_w : int;
    data_out : int;
    data_w : int;
    ready_in : int option;
    ready_every : int;
    tick : int array;
    captured : int list array; (* newest first, per lane *)
    count : int array;
  }

  let create ?(valid_port = "out_valid") ?(data_port = "out_data")
      ?(ready_port = "out_ready") ?(ready_every = 1) sb () =
    if ready_every < 1 then
      invalid_arg "Vga_sink.create: ready_every must be >= 1";
    let lanes = Simbatch.lanes sb in
    let width_of p = Signal.width (Circuit.find_output (Simbatch.circuit sb) p) in
    {
      sb;
      valid_out = Simbatch.out_node sb valid_port;
      valid_w = width_of valid_port;
      data_out = Simbatch.out_node sb data_port;
      data_w = width_of data_port;
      ready_in =
        (if ready_port = "" then None
         else Some (Simbatch.input_index sb ready_port));
      ready_every;
      tick = Array.make lanes 0;
      captured = Array.make lanes [];
      count = Array.make lanes 0;
    }

  let drive t ~mask =
    match t.ready_in with
    | None ->
      for l = 0 to Simbatch.lanes t.sb - 1 do
        if Int64.logand (Int64.shift_right_logical mask l) 1L = 1L then
          t.tick.(l) <- t.tick.(l) + 1
      done
    | Some ready_in ->
      let bits = ref 0L in
      for l = 0 to Simbatch.lanes t.sb - 1 do
        if Int64.logand (Int64.shift_right_logical mask l) 1L = 1L then begin
          if t.tick.(l) mod t.ready_every = 0 then
            bits := Int64.logor !bits (Int64.shift_left 1L l);
          t.tick.(l) <- t.tick.(l) + 1
        end
      done;
      Simbatch.write_input_plane t.sb ready_in ~plane:0 ~mask ~bits:!bits

  let observe t ~mask =
    let valid = ref 0L in
    for b = 0 to t.valid_w - 1 do
      valid :=
        Int64.logor !valid (Simbatch.read_plane t.sb t.valid_out ~plane:b)
    done;
    let hit = Int64.logand mask !valid in
    if not (Int64.equal hit 0L) then
      for l = 0 to Simbatch.lanes t.sb - 1 do
        if Int64.logand (Int64.shift_right_logical hit l) 1L = 1L then begin
          let px = ref 0 in
          for b = 0 to t.data_w - 1 do
            if
              Int64.logand
                (Int64.shift_right_logical
                   (Simbatch.read_plane t.sb t.data_out ~plane:b)
                   l)
                1L
              = 1L
            then px := !px lor (1 lsl b)
          done;
          t.captured.(l) <- !px :: t.captured.(l);
          t.count.(l) <- t.count.(l) + 1
        end
      done

  let collected t ~lane = List.rev t.captured.(lane)
  let count t ~lane = t.count.(lane)
end
