open Hwpat_rtl

type t = {
  sim : Cyclesim.t;
  valid_port : string;
  data_port : string;
  ready_port : string;
  depth : int;
  mutable remaining : int list;
  mutable sent : int;
}

let create ?(valid_port = "px_valid") ?(data_port = "px_data")
    ?(ready_port = "px_ready") sim frame =
  {
    sim;
    valid_port;
    data_port;
    ready_port;
    depth = Frame.depth frame;
    remaining = Frame.to_row_major frame;
    sent = 0;
  }

let drive t =
  match t.remaining with
  | [] -> Cyclesim.drive t.sim t.valid_port (Bits.zero 1)
  | px :: _ ->
    Cyclesim.drive t.sim t.valid_port (Bits.one 1);
    Cyclesim.drive t.sim t.data_port (Bits.of_int ~width:t.depth px)

let observe t =
  match t.remaining with
  | [] -> ()
  | _ :: rest ->
    if Bits.to_bool !(Cyclesim.out_port t.sim t.ready_port) then begin
      t.remaining <- rest;
      t.sent <- t.sent + 1
    end

let exhausted t = t.remaining = []
let sent t = t.sent

let restart t frame =
  if Frame.depth frame <> t.depth then
    invalid_arg "Video_source.restart: depth mismatch";
  t.remaining <- Frame.to_row_major frame;
  t.sent <- 0

(* Plane-level variant over a whole batch: one [drive]/[observe] pair
   feeds every lane at once through {!Simbatch.write_input_plane} and
   a single ready-plane read, with per-lane stream positions so lanes
   desynchronized by fault effects keep their own pace. Per lane and
   cycle the driven values and advance decisions are exactly the
   scalar [drive]/[observe] above. *)
module Batch = struct
  type bt = {
    sb : Simbatch.t;
    valid_in : int;
    data_in : int;
    ready_out : int;
    ready_w : int;
    depth : int;
    pixels : int array;
    pos : int array; (* per lane *)
    sent : int array;
    data_planes : int64 array; (* scratch *)
  }

  let create ?(valid_port = "px_valid") ?(data_port = "px_data")
      ?(ready_port = "px_ready") sb frame =
    let lanes = Simbatch.lanes sb in
    {
      sb;
      valid_in = Simbatch.input_index sb valid_port;
      data_in = Simbatch.input_index sb data_port;
      ready_out = Simbatch.out_node sb ready_port;
      ready_w =
        Signal.width (Circuit.find_output (Simbatch.circuit sb) ready_port);
      depth = Frame.depth frame;
      pixels = Array.of_list (Frame.to_row_major frame);
      pos = Array.make lanes 0;
      sent = Array.make lanes 0;
      data_planes = Array.make (Frame.depth frame) 0L;
    }

  let drive t ~mask =
    let n = Array.length t.pixels in
    let lanes = Simbatch.lanes t.sb in
    Array.fill t.data_planes 0 t.depth 0L;
    let streaming = ref 0L in
    for l = 0 to lanes - 1 do
      if
        Int64.logand (Int64.shift_right_logical mask l) 1L = 1L
        && t.pos.(l) < n
      then begin
        streaming := Int64.logor !streaming (Int64.shift_left 1L l);
        let px = t.pixels.(t.pos.(l)) in
        for b = 0 to t.depth - 1 do
          if (px lsr b) land 1 = 1 then
            t.data_planes.(b) <-
              Int64.logor t.data_planes.(b) (Int64.shift_left 1L l)
        done
      end
    done;
    (* Every masked lane drives valid (0 once exhausted); data is only
       driven by still-streaming lanes, like the scalar source. *)
    Simbatch.write_input_plane t.sb t.valid_in ~plane:0 ~mask ~bits:!streaming;
    for b = 0 to t.depth - 1 do
      Simbatch.write_input_plane t.sb t.data_in ~plane:b ~mask:!streaming
        ~bits:t.data_planes.(b)
    done

  let observe t ~mask =
    let n = Array.length t.pixels in
    let ready = ref 0L in
    for b = 0 to t.ready_w - 1 do
      ready :=
        Int64.logor !ready (Simbatch.read_plane t.sb t.ready_out ~plane:b)
    done;
    let adv = Int64.logand mask !ready in
    if not (Int64.equal adv 0L) then
      for l = 0 to Simbatch.lanes t.sb - 1 do
        if
          Int64.logand (Int64.shift_right_logical adv l) 1L = 1L
          && t.pos.(l) < n
        then begin
          t.pos.(l) <- t.pos.(l) + 1;
          t.sent.(l) <- t.sent.(l) + 1
        end
      done

  let exhausted t ~lane = t.pos.(lane) >= Array.length t.pixels
  let sent t ~lane = t.sent.(lane)
end
