open Hwpat_rtl

type t = {
  sim : Cyclesim.t;
  valid_port : string;
  data_port : string;
  ready_port : string;
  depth : int;
  mutable remaining : int list;
  mutable sent : int;
}

let create ?(valid_port = "px_valid") ?(data_port = "px_data")
    ?(ready_port = "px_ready") sim frame =
  {
    sim;
    valid_port;
    data_port;
    ready_port;
    depth = Frame.depth frame;
    remaining = Frame.to_row_major frame;
    sent = 0;
  }

let drive t =
  match t.remaining with
  | [] -> Cyclesim.drive t.sim t.valid_port (Bits.zero 1)
  | px :: _ ->
    Cyclesim.drive t.sim t.valid_port (Bits.one 1);
    Cyclesim.drive t.sim t.data_port (Bits.of_int ~width:t.depth px)

let observe t =
  match t.remaining with
  | [] -> ()
  | _ :: rest ->
    if Bits.to_bool !(Cyclesim.out_port t.sim t.ready_port) then begin
      t.remaining <- rest;
      t.sent <- t.sent + 1
    end

let exhausted t = t.remaining = []
let sent t = t.sent

let restart t frame =
  if Frame.depth frame <> t.depth then
    invalid_arg "Video_source.restart: depth mismatch";
  t.remaining <- Frame.to_row_major frame;
  t.sent <- 0
