open Hwpat_rtl

(** Simulation-side VGA coder model: collects the output pixel stream.

    The sink holds its ready input high (optionally with a duty cycle
    to model a slower consumer) and captures a word whenever the
    circuit pulses its valid output. Call [drive] before each cycle
    and [observe] after it, like {!Video_source}. *)

type t

val create :
  ?valid_port:string ->
  ?data_port:string ->
  ?ready_port:string ->
  ?ready_every:int ->
  Cyclesim.t ->
  unit ->
  t
(** Defaults: ["out_valid"], ["out_data"], ["out_ready"],
    [ready_every = 1] (always ready). [ready_every = n] asserts ready
    one cycle in [n]. If the circuit has no ready input, pass
    [ready_port:""]. *)

val drive : t -> unit
val observe : t -> unit

val collected : t -> int list
(** Captured words, oldest first. *)

val count : t -> int

val to_frame : t -> width:int -> height:int -> depth:int -> Frame.t
(** Raises if the captured count does not equal [width * height]. *)

val clear : t -> unit

(** Plane-level sink over a whole {!Simbatch} batch: one valid-plane
    read per cycle, per-lane extraction only for lanes that pulsed
    valid. Per lane the ready waveform and captured words are exactly
    the scalar sink's — [mask] selects the lanes being driven. *)
module Batch : sig
  type bt

  val create :
    ?valid_port:string ->
    ?data_port:string ->
    ?ready_port:string ->
    ?ready_every:int ->
    Hwpat_rtl.Simbatch.t ->
    unit ->
    bt

  val drive : bt -> mask:int64 -> unit
  val observe : bt -> mask:int64 -> unit

  val collected : bt -> lane:int -> int list
  (** Captured words, oldest first. *)

  val count : bt -> lane:int -> int
end
