open Hwpat_rtl

(** Simulation-side video decoder model (the SAA7113 stand-in).

    Streams a frame's pixels into a circuit through a valid/ready
    handshake, one [drive]/[observe] pair per simulated cycle:

    {[ while not (Video_source.exhausted src) do
         Video_source.drive src;
         Cyclesim.cycle sim;
         Video_source.observe src
       done ]}

    [drive] presents the current pixel on the valid/data input ports;
    [observe] (after the cycle) checks the ready output and advances
    past consumed pixels. *)

type t

val create :
  ?valid_port:string ->
  ?data_port:string ->
  ?ready_port:string ->
  Cyclesim.t ->
  Frame.t ->
  t
(** Port-name defaults: ["px_valid"], ["px_data"], ["px_ready"]. *)

val drive : t -> unit
val observe : t -> unit
val exhausted : t -> bool
val sent : t -> int

val restart : t -> Frame.t -> unit
(** Start streaming a new frame (same dimensions). *)

(** Plane-level source over a whole {!Simbatch} batch: one
    [drive]/[observe] pair per cycle feeds every lane at once, with
    per-lane stream positions (fault effects can desynchronize lanes).
    Per lane the driven values and advance decisions are exactly the
    scalar source's — [mask] selects the lanes being driven; unmasked
    lanes keep their previous input values, like a scalar driver that
    is no longer called. *)
module Batch : sig
  type bt

  val create :
    ?valid_port:string ->
    ?data_port:string ->
    ?ready_port:string ->
    Hwpat_rtl.Simbatch.t ->
    Frame.t ->
    bt

  val drive : bt -> mask:int64 -> unit
  val observe : bt -> mask:int64 -> unit
  val exhausted : bt -> lane:int -> bool
  val sent : bt -> lane:int -> int
end
