type arg = Int of int | Float of float | String of string | Bool of bool

type event = {
  e_name : string;
  e_ph : char;  (* 'X' complete, 'i' instant, 'C' counter *)
  e_ts : float;  (* microseconds since the trace was created *)
  e_dur : float;  (* microseconds; 0 for non-span events *)
  e_tid : int;  (* domain id *)
  e_path : string;  (* parent/child aggregation path; spans only *)
  e_args : (string * arg) list;
}

type span = {
  s_name : string;
  s_path : string;
  s_start : float;
  mutable s_args : (string * arg) list;
}

type active = {
  mutex : Mutex.t;
  mutable events : event list;  (* newest first *)
  t0 : float;
  stack : span list ref Domain.DLS.key;
      (* each domain nests its own spans; only [events] is shared *)
}

type t = Null | Active of active

let null = Null

let create () =
  Active
    {
      mutex = Mutex.create ();
      events = [];
      t0 = Unix.gettimeofday ();
      stack = Domain.DLS.new_key (fun () -> ref []);
    }

let enabled = function Null -> false | Active _ -> true
let tid () = (Domain.self () :> int)
let us a now = (now -. a.t0) *. 1e6

let record a e =
  Mutex.lock a.mutex;
  a.events <- e :: a.events;
  Mutex.unlock a.mutex

let span t ?(args = []) name f =
  match t with
  | Null -> f ()
  | Active a ->
    let st = Domain.DLS.get a.stack in
    let path =
      match !st with [] -> name | p :: _ -> p.s_path ^ "/" ^ name
    in
    let s =
      { s_name = name; s_path = path;
        s_start = Unix.gettimeofday (); s_args = args }
    in
    st := s :: !st;
    let finish () =
      (match !st with [] -> () | _ :: rest -> st := rest);
      let stop = Unix.gettimeofday () in
      record a
        {
          e_name = s.s_name;
          e_ph = 'X';
          e_ts = us a s.s_start;
          e_dur = (stop -. s.s_start) *. 1e6;
          e_tid = tid ();
          e_path = path;
          e_args = List.rev s.s_args;
        }
    in
    Fun.protect ~finally:finish f

let instant t ?(args = []) name =
  match t with
  | Null -> ()
  | Active a ->
    record a
      {
        e_name = name;
        e_ph = 'i';
        e_ts = us a (Unix.gettimeofday ());
        e_dur = 0.0;
        e_tid = tid ();
        e_path = "";
        e_args = args;
      }

let annotate t key v =
  match t with
  | Null -> ()
  | Active a -> (
    match !(Domain.DLS.get a.stack) with
    | [] -> ()
    | s :: _ -> s.s_args <- (key, v) :: List.remove_assoc key s.s_args)

let counter t name series =
  match t with
  | Null -> ()
  | Active a ->
    record a
      {
        e_name = name;
        e_ph = 'C';
        e_ts = us a (Unix.gettimeofday ());
        e_dur = 0.0;
        e_tid = tid ();
        e_path = "";
        e_args = List.map (fun (k, v) -> (k, Float v)) series;
      }

(* ---------------------------------------------------------------- *)
(* Export                                                           *)
(* ---------------------------------------------------------------- *)

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float f =
  if Float.is_finite f then Printf.sprintf "%.12g" f else "null"

let arg_json = function
  | Int i -> string_of_int i
  | Float f -> json_float f
  | String s -> Printf.sprintf "\"%s\"" (escape s)
  | Bool b -> if b then "true" else "false"

let args_json args =
  String.concat ","
    (List.map
       (fun (k, v) -> Printf.sprintf "\"%s\":%s" (escape k) (arg_json v))
       args)

let events_of = function
  | Null -> []
  | Active a ->
    Mutex.lock a.mutex;
    let es = a.events in
    Mutex.unlock a.mutex;
    List.rev es

let to_chrome_json t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_string buf ",";
      Buffer.add_string buf
        (Printf.sprintf
           "\n{\"name\":\"%s\",\"ph\":\"%c\",\"ts\":%.3f,\"dur\":%.3f,\
            \"pid\":1,\"tid\":%d%s,\"args\":{%s}}"
           (escape e.e_name) e.e_ph e.e_ts e.e_dur e.e_tid
           (if e.e_ph = 'i' then ",\"s\":\"t\"" else "")
           (args_json e.e_args)))
    (events_of t);
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

let summary t =
  let agg = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun e ->
      if e.e_ph = 'X' then
        match Hashtbl.find_opt agg e.e_path with
        | Some (n, d) -> Hashtbl.replace agg e.e_path (n + 1, d +. e.e_dur)
        | None ->
          order := e.e_path :: !order;
          Hashtbl.add agg e.e_path (1, e.e_dur))
    (events_of t);
  let paths = List.sort compare (List.rev !order) in
  let buf = Buffer.create 1024 in
  List.iter
    (fun path ->
      let n, dur = Hashtbl.find agg path in
      let depth =
        String.fold_left (fun d c -> if c = '/' then d + 1 else d) 0 path
      in
      let name =
        match String.rindex_opt path '/' with
        | None -> path
        | Some i -> String.sub path (i + 1) (String.length path - i - 1)
      in
      Buffer.add_string buf
        (Printf.sprintf "%s%-*s %6d call%s %10.2f ms\n"
           (String.make (2 * depth) ' ')
           (max 1 (32 - (2 * depth)))
           name n
           (if n = 1 then " " else "s")
           (dur /. 1e3)))
    paths;
  Buffer.contents buf

(* Temp-file + rename so a crash mid-flush never leaves a truncated
   trace under the published name (same scheme as Hwpat_rtl.Util,
   duplicated here to keep this library dependency-free). *)
let write_file t path =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  match output_string oc (to_chrome_json t) with
  | () ->
    close_out oc;
    Sys.rename tmp path
  | exception e ->
    close_out_noerr oc;
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e
