let buckets = 64

(* Bucket 0 is the explicit zero-and-below bucket: log2 is undefined
   there, and negative observations (clock skew, subtraction underflow
   in a caller) must not index the array with a negative bucket or get
   scattered across the positive range. Everything else lands in
   [floor(log2 v) + 1], so bucket [k >= 1] covers [2^(k-1) .. 2^k - 1]
   and the boundaries are exact: bucket_of 1 = 1, bucket_of 2 = 2,
   bucket_of 3 = 2, bucket_of 4 = 3 — locked in by the regression
   tests in test_obs.ml. *)
let bucket_of v =
  if v <= 0 then 0
  else
    let rec go v k = if v = 0 then k else go (v lsr 1) (k + 1) in
    min (buckets - 1) (go v 0)

type hist = { mutable h_count : int; mutable h_sum : int; h_buckets : int array }

type active = {
  mutex : Mutex.t;
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, float ref) Hashtbl.t;
  hists : (string, hist) Hashtbl.t;
}

type t = Null | Active of active

let null = Null

let create () =
  Active
    {
      mutex = Mutex.create ();
      counters = Hashtbl.create 16;
      gauges = Hashtbl.create 16;
      hists = Hashtbl.create 16;
    }

let enabled = function Null -> false | Active _ -> true

let locked a f =
  Mutex.lock a.mutex;
  let r = f () in
  Mutex.unlock a.mutex;
  r

let incr t ?(by = 1) name =
  match t with
  | Null -> ()
  | Active a ->
    locked a (fun () ->
        match Hashtbl.find_opt a.counters name with
        | Some r -> r := !r + by
        | None -> Hashtbl.add a.counters name (ref by))

let gauge t name v =
  match t with
  | Null -> ()
  | Active a ->
    locked a (fun () ->
        match Hashtbl.find_opt a.gauges name with
        | Some r -> r := v
        | None -> Hashtbl.add a.gauges name (ref v))

let find_hist a name =
  match Hashtbl.find_opt a.hists name with
  | Some h -> h
  | None ->
    let h = { h_count = 0; h_sum = 0; h_buckets = Array.make buckets 0 } in
    Hashtbl.add a.hists name h;
    h

let observe t name v =
  match t with
  | Null -> ()
  | Active a ->
    locked a (fun () ->
        let h = find_hist a name in
        h.h_count <- h.h_count + 1;
        h.h_sum <- h.h_sum + v;
        let b = bucket_of v in
        h.h_buckets.(b) <- h.h_buckets.(b) + 1)

let add_histogram t name ~count ~sum bs =
  match t with
  | Null -> ()
  | Active a ->
    locked a (fun () ->
        let h = find_hist a name in
        h.h_count <- h.h_count + count;
        h.h_sum <- h.h_sum + sum;
        Array.iteri
          (fun i n ->
            let i = min i (buckets - 1) in
            h.h_buckets.(i) <- h.h_buckets.(i) + n)
          bs)

let counter_value t name =
  match t with
  | Null -> 0
  | Active a ->
    locked a (fun () ->
        match Hashtbl.find_opt a.counters name with
        | Some r -> !r
        | None -> 0)

(* ---------------------------------------------------------------- *)
(* Export                                                           *)
(* ---------------------------------------------------------------- *)

let sorted_keys tbl =
  List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) tbl [])

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let trimmed_buckets h =
  let last = ref (-1) in
  Array.iteri (fun i n -> if n > 0 then last := i) h.h_buckets;
  Array.to_list (Array.sub h.h_buckets 0 (!last + 1))

let json_float f =
  if Float.is_finite f then Printf.sprintf "%.12g" f else "null"

let to_json t =
  match t with
  | Null -> "{\"counters\":{},\"gauges\":{},\"histograms\":{}}\n"
  | Active a ->
    locked a (fun () ->
        let buf = Buffer.create 1024 in
        let emit fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
        let obj keys f =
          List.iteri
            (fun i k ->
              if i > 0 then emit ",";
              emit "\n    \"%s\": %s" (escape k) (f k))
            keys
        in
        emit "{\n  \"counters\": {";
        obj (sorted_keys a.counters) (fun k ->
            string_of_int !(Hashtbl.find a.counters k));
        emit "\n  },\n  \"gauges\": {";
        obj (sorted_keys a.gauges) (fun k ->
            json_float !(Hashtbl.find a.gauges k));
        emit "\n  },\n  \"histograms\": {";
        obj (sorted_keys a.hists) (fun k ->
            let h = Hashtbl.find a.hists k in
            Printf.sprintf "{\"count\": %d, \"sum\": %d, \"buckets\": [%s]}"
              h.h_count h.h_sum
              (String.concat ", "
                 (List.map string_of_int (trimmed_buckets h))));
        emit "\n  }\n}\n";
        Buffer.contents buf)

let summary t =
  match t with
  | Null -> ""
  | Active a ->
    locked a (fun () ->
        let buf = Buffer.create 1024 in
        List.iter
          (fun k ->
            Buffer.add_string buf
              (Printf.sprintf "%-40s %12d\n" k !(Hashtbl.find a.counters k)))
          (sorted_keys a.counters);
        List.iter
          (fun k ->
            Buffer.add_string buf
              (Printf.sprintf "%-40s %12.3f\n" k !(Hashtbl.find a.gauges k)))
          (sorted_keys a.gauges);
        List.iter
          (fun k ->
            let h = Hashtbl.find a.hists k in
            Buffer.add_string buf
              (Printf.sprintf "%-40s count=%d sum=%d mean=%.2f\n" k h.h_count
                 h.h_sum
                 (if h.h_count = 0 then 0.0
                  else float_of_int h.h_sum /. float_of_int h.h_count)))
          (sorted_keys a.hists);
        Buffer.contents buf)

(* Temp-file + rename, like Trace.write_file: the published path only
   ever holds a complete JSON document. *)
let write_file t path =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  match output_string oc (to_json t) with
  | () ->
    close_out oc;
    Sys.rename tmp path
  | exception e ->
    close_out_noerr oc;
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e
