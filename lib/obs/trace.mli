(** Nestable timed spans, exported as Chrome [trace_event] JSON.

    A trace is either {!null} — every hook is a near-no-op, so
    instrumented hot paths cost nothing when profiling is off — or an
    active recorder.  Spans nest per {e domain}: each domain keeps its
    own stack of open spans (via [Domain.DLS]), so the workers of
    {!Hwpat_core.Parallel} record into separate lanes of the same
    trace without coordinating, and the shared event list is the only
    synchronised state (one mutex acquisition per completed span).

    The export target is the Chrome trace-event format
    ([chrome://tracing] / Perfetto): each completed span becomes a
    complete event ([ph:"X"]) with microsecond [ts]/[dur] and
    [tid] = domain id, so shard utilization and straggler shards are
    visible as lanes. *)

type t

type arg =
  | Int of int
  | Float of float
  | String of string
  | Bool of bool

val null : t
(** The disabled trace: every operation returns immediately. *)

val create : unit -> t
(** A fresh active trace; timestamps are relative to this call. *)

val enabled : t -> bool

val span : t -> ?args:(string * arg) list -> string -> (unit -> 'a) -> 'a
(** [span t name f] runs [f ()] inside a timed span.  Spans opened by
    [f] (on the same domain) nest under it.  The span is recorded even
    if [f] raises; the exception is re-raised with its backtrace. *)

val instant : t -> ?args:(string * arg) list -> string -> unit
(** A zero-duration marker event ([ph:"i"]). *)

val annotate : t -> string -> arg -> unit
(** Attach an argument to the innermost span currently open on the
    calling domain; silently ignored when no span is open (or the
    trace is {!null}).  Later annotations with the same key win. *)

val counter : t -> string -> (string * float) list -> unit
(** A counter sample ([ph:"C"]) — series name to value, plotted as a
    stacked chart by the trace viewer. *)

val to_chrome_json : t -> string
(** The whole trace as [{"traceEvents": [...]}].  For {!null} this is
    an empty event list. *)

val summary : t -> string
(** Human-readable tree: spans aggregated by path (parent/child names
    joined with [/]), with call counts and total wall time, children
    indented under parents. *)

val write_file : t -> string -> unit
(** [to_chrome_json] to a file (closed on raise). *)
