(** Monotonic counters, float gauges and log2-bucket histograms.

    Like {!Trace}, a metrics registry is either {!null} (every hook
    returns immediately) or active; active registries are guarded by
    one mutex so shards can record concurrently.

    Histograms use fixed log2 buckets: an observation [v] lands in
    bucket 0 when [v <= 0] and in bucket [floor(log2 v) + 1]
    otherwise — i.e. bucket [k >= 1] covers [2^(k-1) .. 2^k - 1].
    {!bucket_of} is exposed so producers that pre-aggregate (the SAT
    solver keeps its learned-clause-size buckets without depending on
    this library) use the same convention and can be merged in with
    {!add_histogram}. *)

type t

val buckets : int
(** Number of histogram buckets (observations clamp into the last). *)

val bucket_of : int -> int
(** The bucket index an observation falls in; total in [0..buckets-1].
    The zero/negative boundary is part of the contract: every [v <= 0]
    (zero durations, negative deltas from clock skew or underflowing
    subtraction) lands in bucket 0, never a negative index; [v = 1] is
    the first value in bucket 1. *)

val null : t
val create : unit -> t
val enabled : t -> bool

val incr : t -> ?by:int -> string -> unit
(** Add [by] (default 1) to a monotonic counter, creating it at 0. *)

val gauge : t -> string -> float -> unit
(** Set a float gauge (last write wins). *)

val observe : t -> string -> int -> unit
(** Record one observation into a histogram. *)

val add_histogram : t -> string -> count:int -> sum:int -> int array -> unit
(** Merge pre-aggregated buckets (the {!bucket_of} convention; arrays
    shorter or longer than {!buckets} are padded / clamped into the
    last bucket) into a histogram. *)

val counter_value : t -> string -> int
(** Current value of a counter; 0 when absent or {!null}. *)

val to_json : t -> string
(** [{"counters": {...}, "gauges": {...}, "histograms": {name:
    {"count": n, "sum": s, "buckets": [...]}}}] with trailing zero
    buckets trimmed.  Keys are emitted in sorted order so the output
    is deterministic. *)

val summary : t -> string
(** Human-readable listing of every counter, gauge and histogram. *)

val write_file : t -> string -> unit
(** [to_json] to a file (closed on raise). *)
