open Hwpat_rtl

(** Fault-configurable wrappers for {!Sram} and {!Fifo_core}.

    Each wrapper takes a {!controls} record of live fault-control
    signals; with both controls low the wrapped device is functionally
    identical to the bare one. Testbenches usually build the controls
    with {!inputs} so faults can be scheduled per cycle from the
    simulator:

    - [drop_ack] suppresses the device's acknowledge ([ack] for the
      SRAM, [rd_valid] for the FIFO). Pulsing it adds wait-state
      jitter — the SRAM controller simply re-runs the access while the
      client holds its request — and holding it models a hung device.
    - [corrupt] is XORed onto the read data, so any nonzero mask during
      an acknowledge cycle delivers corrupted data. *)

type controls = { drop_ack : Signal.t; corrupt : Signal.t }

val no_faults : width:int -> controls
(** Constant-low controls: the wrapper reduces to the bare device. *)

val inputs : ?prefix:string -> width:int -> unit -> controls
(** Fresh circuit inputs [<prefix>_drop_ack] and [<prefix>_corrupt];
    simulator inputs default to zero, so an undriven wrapper is
    fault-free. *)

val sram :
  ?name:string ->
  words:int ->
  width:int ->
  wait_states:int ->
  faults:controls ->
  req:Signal.t ->
  we:Signal.t ->
  addr:Signal.t ->
  wr_data:Signal.t ->
  unit ->
  Sram.t

val fifo :
  ?name:string ->
  depth:int ->
  width:int ->
  faults:controls ->
  wr_en:Signal.t ->
  wr_data:Signal.t ->
  rd_en:Signal.t ->
  unit ->
  Fifo_core.t
