open Hwpat_rtl
open Hwpat_rtl.Signal

(* Fault-configurable wrappers for the memory-side devices. The
   wrapped device behaves identically while both control signals are
   low; driving them from circuit inputs (see [inputs]) lets a
   testbench induce protocol and data faults at chosen cycles without
   rebuilding the design. *)

type controls = { drop_ack : Signal.t; corrupt : Signal.t }

let validate ~width c =
  if Signal.width c.drop_ack <> 1 then
    invalid_arg "Fault_wrap: drop_ack must be 1 bit wide";
  if Signal.width c.corrupt <> width then
    invalid_arg
      (Printf.sprintf "Fault_wrap: corrupt mask is %d bits, data is %d"
         (Signal.width c.corrupt) width)

let no_faults ~width = { drop_ack = gnd; corrupt = zero width }

let inputs ?(prefix = "fault") ~width () =
  {
    drop_ack = input (prefix ^ "_drop_ack") 1;
    corrupt = input (prefix ^ "_corrupt") width;
  }

(* Masking [ack] while the client holds its request models both lost
   acknowledgements and arbitrary extra wait states: the Sram FSM
   returns to idle after the (suppressed) done state and simply re-runs
   the access, so pulsing [drop_ack] jitters latency while holding it
   starves the client outright. [corrupt] XORs the read data — any
   nonzero mask during the ack cycle delivers a corrupted word. *)
let sram ?name ~words ~width ~wait_states ~faults ~req ~we ~addr ~wr_data () =
  validate ~width faults;
  let dev = Sram.create ?name ~words ~width ~wait_states ~req ~we ~addr ~wr_data () in
  {
    Sram.ack = dev.Sram.ack &: ~:(faults.drop_ack);
    rd_data = dev.Sram.rd_data ^: faults.corrupt;
    busy = dev.Sram.busy;
  }

(* For a FIFO, [drop_ack] suppresses [rd_valid]: the popped word is
   silently lost, which downstream monitors observe as a count/flag
   inconsistency or a stalled consumer. *)
let fifo ?name ~depth ~width ~faults ~wr_en ~wr_data ~rd_en () =
  validate ~width faults;
  let dev = Fifo_core.create ?name ~depth ~width ~wr_en ~wr_data ~rd_en () in
  {
    Fifo_core.rd_data = dev.Fifo_core.rd_data ^: faults.corrupt;
    rd_valid = dev.Fifo_core.rd_valid &: ~:(faults.drop_ack);
    empty = dev.Fifo_core.empty;
    full = dev.Fifo_core.full;
    count = dev.Fifo_core.count;
  }
