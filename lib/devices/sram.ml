open Hwpat_rtl
open Hwpat_rtl.Signal

type t = { ack : Signal.t; rd_data : Signal.t; busy : Signal.t }

let access_cycles ~wait_states = wait_states + 3

let st_idle = 0
let st_access = 1
let st_done = 2

let create ?(name = "sram") ~words ~width ~wait_states ~req ~we ~addr ~wr_data () =
  if wait_states < 0 then invalid_arg "Sram.create: negative wait states";
  if Signal.width wr_data <> width then
    invalid_arg "Sram.create: wr_data width mismatch";
  if Signal.width addr < Util.address_bits words then
    invalid_arg "Sram.create: address too narrow";
  (* Name the request so runtime monitors can auto-attach to the
     req/ack pair (see Monitor.add_auto). *)
  let req = req -- (name ^ "_req") in
  let mem = create_memory ~size:words ~width ~name:(name ^ "_array") ~external_:true () in
  let fsm = Fsm.create ~name:(name ^ "_state") ~states:3 () in
  let in_access = Fsm.is fsm st_access in
  let cbits = Util.bits_to_represent (max 1 wait_states) in
  let counter =
    Handshake.pulse_counter ~width:cbits ~enable:in_access ~clear:~:in_access
    -- (name ^ "_waits")
  in
  let waits_met = counter ==: of_int ~width:cbits wait_states in
  let last_access_cycle = in_access &: waits_met in
  Fsm.transitions fsm
    [
      (st_idle, [ (req, st_access) ]);
      (st_access, [ (waits_met, st_done) ]);
      (st_done, [ (vdd, st_idle) ]);
    ];
  let addr_trunc = select addr ~high:(Util.address_bits words - 1) ~low:0 in
  mem_write_port mem ~enable:(last_access_cycle &: we) ~addr:addr_trunc ~data:wr_data;
  let rd_latch =
    reg ~enable:(last_access_cycle &: ~:we) (mem_read_async mem ~addr:addr_trunc)
    -- (name ^ "_rd_data")
  in
  let ack = Fsm.is fsm st_done -- (name ^ "_ack") in
  { ack; rd_data = rd_latch; busy = in_access |: ack }
