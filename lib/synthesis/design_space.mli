(** Design-space characterisation (§3.4 of the paper).

    Since components are generated automatically, every container can
    be generated for every physical target and parameter range and
    characterised for area, access time and power. Given a set of
    constraints, the feasible candidates delimit the region of
    interest; the Pareto front over (area, latency, power) ranks them. *)

type candidate = {
  label : string;             (** e.g. "queue/fifo/8x512" *)
  container : string;
  target : string;
  elem_width : int;
  depth : int;
  luts : int;
  ffs : int;
  brams : int;
  access_cycles : float;      (** average cycles per element access *)
  fmax_mhz : float;
  power_mw : float;
  measured : bool;
      (** false when the characterisation workload tripped its ack
          guard: the access/power figures are untrustworthy and the
          candidate is excluded from {!feasible} and {!pareto_front} *)
}

type constraints = {
  max_luts : int option;
  max_brams : int option;
  max_access_cycles : float option;
  min_fmax_mhz : float option;
  max_power_mw : float option;
}

val no_constraints : constraints

val unmeasurable : candidate list -> candidate list
(** The candidates whose measurement timed out ([not measured]), for
    reporting alongside the ranked table. *)

val feasible : constraints -> candidate list -> candidate list
(** Candidates meeting every constraint. Unmeasurable candidates are
    never feasible. *)

val dominates : candidate -> candidate -> bool
(** [dominates a b] when [a] is no worse than [b] on area (LUTs +
    BRAM-weighted), access latency (cycles / fmax) and power, and
    strictly better on at least one. *)

val pareto_front : candidate list -> candidate list
(** Non-dominated measured candidates, preserving input order. *)

val region_of_interest : constraints -> candidate list -> candidate list
(** Feasible candidates that are also Pareto-optimal. *)

val to_table : candidate list -> string
(** Render candidates as an aligned text table; unmeasurable points
    show [timeout] in the cycles-per-access column. *)

val to_json : candidate list -> string
(** Machine-readable rendering (a JSON array, one object per
    candidate, [null] access/power for unmeasurable points). Field
    formatting is fixed so equal candidate lists render to identical
    bytes — the sharded-sweep determinism tests compare these. *)
