type candidate = {
  label : string;
  container : string;
  target : string;
  elem_width : int;
  depth : int;
  luts : int;
  ffs : int;
  brams : int;
  access_cycles : float;
  fmax_mhz : float;
  power_mw : float;
  measured : bool;
}

type constraints = {
  max_luts : int option;
  max_brams : int option;
  max_access_cycles : float option;
  min_fmax_mhz : float option;
  max_power_mw : float option;
}

let no_constraints =
  {
    max_luts = None;
    max_brams = None;
    max_access_cycles = None;
    min_fmax_mhz = None;
    max_power_mw = None;
  }

let within le limit value = match limit with None -> true | Some l -> le value l

let unmeasurable = List.filter (fun cand -> not cand.measured)

(* Candidates whose measurement tripped the characterisation guard
   carry no trustworthy access-time/power figures; they are excluded
   from feasibility and Pareto ranking rather than ranked on garbage
   (report them via [unmeasurable]). *)
let feasible c candidates =
  List.filter
    (fun cand ->
      cand.measured
      && within ( <= ) c.max_luts cand.luts
      && within ( <= ) c.max_brams cand.brams
      && within ( <= ) c.max_access_cycles cand.access_cycles
      && within ( >= ) c.min_fmax_mhz cand.fmax_mhz
      && within ( <= ) c.max_power_mw cand.power_mw)
    candidates

(* Block RAMs are scarce (16 on the board) so weight them against LUT
   area when ranking: one BRAM ~ 256 LUTs of storage equivalent. *)
let area c = float_of_int c.luts +. (256.0 *. float_of_int c.brams)
let latency_ns c = c.access_cycles /. c.fmax_mhz *. 1000.0

let dominates a b =
  let better_or_equal =
    area a <= area b && latency_ns a <= latency_ns b && a.power_mw <= b.power_mw
  in
  let strictly =
    area a < area b || latency_ns a < latency_ns b || a.power_mw < b.power_mw
  in
  better_or_equal && strictly

let pareto_front candidates =
  let candidates = List.filter (fun c -> c.measured) candidates in
  List.filter
    (fun c -> not (List.exists (fun other -> dominates other c) candidates))
    candidates

let region_of_interest constraints candidates =
  pareto_front (feasible constraints candidates)

let to_table candidates =
  let header =
    Printf.sprintf "%-24s | %6s | %5s | %5s | %7s | %6s | %7s" "candidate" "LUTs"
      "FFs" "BRAM" "cyc/acc" "MHz" "mW"
  in
  let sep = String.make (String.length header) '-' in
  let rows =
    List.map
      (fun c ->
        if c.measured then
          Printf.sprintf "%-24s | %6d | %5d | %5d | %7.2f | %6.1f | %7.2f"
            c.label c.luts c.ffs c.brams c.access_cycles c.fmax_mhz c.power_mw
        else
          Printf.sprintf "%-24s | %6d | %5d | %5d | %7s | %6.1f | %7s" c.label
            c.luts c.ffs c.brams "timeout" c.fmax_mhz "-")
      candidates
  in
  String.concat "\n" (header :: sep :: rows)

let to_json candidates =
  let buf = Buffer.create 1024 in
  let emit fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  emit "[\n";
  List.iteri
    (fun i c ->
      emit
        "  {\"label\": %S, \"container\": %S, \"target\": %S, \"elem_width\": \
         %d, \"depth\": %d, \"luts\": %d, \"ffs\": %d, \"brams\": %d, \
         \"measured\": %b, \"access_cycles\": %s, \"fmax_mhz\": %.2f, \
         \"power_mw\": %s}%s\n"
        c.label c.container c.target c.elem_width c.depth c.luts c.ffs c.brams
        c.measured
        (if c.measured then Printf.sprintf "%.4f" c.access_cycles else "null")
        c.fmax_mhz
        (if c.measured then Printf.sprintf "%.4f" c.power_mw else "null")
        (if i = List.length candidates - 1 then "" else ","))
    candidates;
  emit "]\n";
  Buffer.contents buf
